package hotg_test

import (
	"fmt"

	"hotg"
)

// Example_obscure reproduces the paper's introductory claim: dynamic test
// generation cracks a hash guard that static test generation cannot touch.
func Example_obscure() {
	prog, _ := hotg.Compile(`
fn main(x int, y int) {
	if (x == hash(y)) {
		error("guarded");
	}
}`, hotg.DefaultNatives())

	static := hotg.Explore(hotg.NewEngine(prog, hotg.ModeStatic),
		hotg.SearchOptions{MaxRuns: 20, Seeds: [][]int64{{33, 42}}})
	dynamic := hotg.Explore(hotg.NewEngine(prog, hotg.ModeHigherOrder),
		hotg.SearchOptions{MaxRuns: 20, Seeds: [][]int64{{33, 42}}})

	fmt.Println("static found bugs:", len(static.ErrorSitesFound()))
	fmt.Println("dynamic found bugs:", len(dynamic.ErrorSitesFound()))
	// Output:
	// static found bugs: 0
	// dynamic found bugs: 1
}

// Example_multistep shows Example 7's two-step generation: the strategy
// produced by the validity proof needs a sample the program has not yet
// computed, so resolution reports a probe.
func Example_multistep() {
	prog, _ := hotg.Compile(`
fn main(x int, y int) {
	if (x == hash(y)) {
		if (y == 10) {
			error("deep");
		}
	}
}`, hotg.DefaultNatives())

	eng := hotg.NewEngine(prog, hotg.ModeHigherOrder)
	hv, _ := eng.NativeEval("hash", []int64{42})
	ex := eng.Run([]int64{hv, 42}) // then-branch of the first guard

	alt := ex.Alt(len(ex.PC) - 1) // flip y ≠ 10
	strat, outcome := hotg.ProveValidity(alt, eng.Samples, hotg.ProveOptions{
		Pool:     eng.Pool,
		Fallback: map[int]int64{eng.InputVars[0].ID: hv, eng.InputVars[1].ID: 42},
	})
	fmt.Println("outcome:", outcome)
	fmt.Println("strategy:", strat)

	res := strat.Resolve(eng.Samples)
	fmt.Println("resolved:", res.Complete)
	fmt.Println("needs:", res.Probes[0])
	// Output:
	// outcome: proved
	// strategy: y := 10; x := hash(10)
	// resolved: false
	// needs: hash(10)=?
}

// Example_workloads runs the paper's bar() example, where higher-order
// generation correctly proves the guard unreachable-for-all-hashes instead
// of generating a divergent test.
func Example_workloads() {
	w, _ := hotg.GetWorkload("bar")
	eng := hotg.NewEngine(w.Build(), hotg.ModeHigherOrder)
	st := hotg.Explore(eng, hotg.SearchOptions{
		MaxRuns: 20, Seeds: w.Seeds, Refute: true,
	})
	fmt.Println("bugs:", len(st.ErrorSitesFound()))
	fmt.Println("divergences:", st.Divergences)
	fmt.Println("invalidity proofs:", st.ProverInvalid > 0)
	// Output:
	// bugs: 0
	// divergences: 0
	// invalidity proofs: true
}
