GO ?= go

.PHONY: all build lint vet test race bench bench-json tables verify

all: build lint vet test

build:
	$(GO) build ./...

# lint fails if any file is not gofmt-clean, printing the offenders.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# The parallel search coordinator, sample-store overlays, and proof fan-out
# are exercised under the race detector; this is part of the verified path.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x

# bench-json captures the quick experiment suite with per-experiment metric
# snapshots (workers, proof-cache traffic, wall/solve seconds, full registry).
bench-json:
	$(GO) run ./cmd/benchtab -quick -json > BENCH_search.json

tables:
	$(GO) run ./cmd/benchtab -quick

verify: lint vet test race
