GO ?= go

.PHONY: build test race bench tables verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The parallel search coordinator, sample-store overlays, and proof fan-out
# are exercised under the race detector; this is part of the verified path.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x

tables:
	$(GO) run ./cmd/benchtab -quick

verify: test race
