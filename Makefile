GO ?= go

.PHONY: all build lint vet test race test-faults test-campaign test-difftest test-fleet test-serve test-higher load-serve fuzz-smoke bench bench-smoke bench-json bench-diff tables verify

all: build lint vet test

build:
	$(GO) build ./...

# lint fails if any file is not gofmt-clean (printing the offenders), or if
# any package lacks a package comment, or if any exported symbol in the public
# facade (the root package, api.go) lacks godoc. See cmd/doclint.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	$(GO) run ./cmd/doclint .

vet:
	$(GO) vet ./...

test: build
	$(GO) test -timeout 10m ./...

# The parallel search coordinator, sample-store overlays, and proof fan-out
# are exercised under the race detector; this is part of the verified path.
race:
	$(GO) test -race -timeout 10m ./...

# Fault-injection drills (internal/faults): forced prover panics, solver
# timeouts, and executor crashes must be contained and accounted, under the
# race detector. See DESIGN.md §8.
test-faults:
	$(GO) test -race -timeout 10m -run 'Injected|Fault|Budget|Degrade|Cancel|Timeout' ./internal/search/ ./internal/faults/...

# Campaign persistence drills: kill-and-resume determinism (resumed searches
# must be bit-identical to uninterrupted ones at any worker count), corpus
# integrity, and cross-session triage dedup, under the race detector. See
# DESIGN.md §9.
test-campaign:
	$(GO) test -race -timeout 15m -run 'Checkpoint|Resume|Snapshot|Campaign' ./internal/search/ ./internal/campaign/ ./cmd/hotg/

# Differential-oracle pass: the deterministic seeded O1–O3 suite (prover
# verdicts vs exhaustive enumeration, cross-technique replay, metamorphic
# relations) plus the committed regression corpus, under the race detector.
# See DESIGN.md §10.
test-difftest:
	$(GO) test -race -timeout 15m ./internal/difftest/ ./cmd/difftest/

# Fleet drills: the coordinator/worker protocol under the race detector —
# canonical-stats determinism across fleet sizes {1,2,4}, a kill -9'd worker
# recovered by lease expiry, and the zero-worker local-fallback degradation.
# See DESIGN.md §13.
test-fleet:
	$(GO) test -race -timeout 15m ./internal/fleet/ ./cmd/hotg-fleet/

# Campaign-server drills under the race detector: admission/backpressure,
# per-corpus lock scoping, memory-budget eviction with disk recovery,
# drain-resume canonical determinism, goroutine-leak checks, and the full
# REST surface. See DESIGN.md §14.
test-serve:
	$(GO) test -race -timeout 15m ./internal/serve/ ./internal/obshttp/

# Higher-order drills under the race detector: function-value synthesis and
# replay across the whole stack — mini round trips, randprog determinism,
# callback workload searches, the 1000-seed replay property, kill-and-resume
# with decision tables, and the cmd/hotg golden rendering. See DESIGN.md §15.
test-higher:
	$(GO) test -race -timeout 15m -short -run 'Callback|FuncVal|FuncValue|FuncParams|HigherOrder' ./internal/mini/ ./internal/sym/ ./internal/search/ ./internal/concolic/ ./internal/difftest/ ./cmd/hotg/

# load-serve is the campaign-server load harness: hundreds of concurrent
# small campaigns through a real hotg-server subprocess, SIGTERM'd and
# restarted mid-flood; zero lost sessions required, p50/p99 submit-to-done
# latency printed as one JSON line.
load-serve:
	$(GO) run ./cmd/hotg-server -loadtest -sessions 200 -runs 12

# Short native-fuzz smoke: each entry point gets a few seconds from its seed
# corpus. `go test -fuzz` accepts one target per invocation, hence the list.
fuzz-smoke:
	$(GO) test ./internal/mini/ -run '^$$' -fuzz 'FuzzParser$$' -fuzztime 10s
	$(GO) test ./internal/mini/ -run '^$$' -fuzz 'FuzzLexRoundTrip$$' -fuzztime 5s
	$(GO) test ./internal/mini/ -run '^$$' -fuzz 'FuzzFunctionValueRoundTrip$$' -fuzztime 5s
	$(GO) test ./internal/smt/ -run '^$$' -fuzz 'FuzzSolveConjunction$$' -fuzztime 10s
	$(GO) test ./internal/smt/ -run '^$$' -fuzz 'FuzzIncrementalSolve$$' -fuzztime 10s

bench:
	$(GO) test -bench . -benchtime 1x

# bench-smoke compiles and runs the incremental-solver benchmark family once
# per benchmark, so the session workload shape (shared prefix, sibling
# targets, warm refutation) cannot bit-rot between full benchmark runs.
bench-smoke:
	$(GO) test ./internal/smt/ -run '^$$' -bench SolveIncremental -benchtime 1x

# bench-json captures the quick experiment suite with per-experiment metric
# snapshots (workers, proof-cache traffic, wall/solve seconds, full registry).
bench-json:
	$(GO) run ./cmd/benchtab -quick -json > BENCH_search.json

# bench-diff is the perf-regression gate: a fresh quick run compared against
# the committed baseline, failing on >25% solver-time regression in any
# experiment (with an absolute noise floor for sub-measurable deltas; see
# `benchtab -diff -h`). Regenerate the baseline with `make bench-json` when a
# slowdown is intentional.
bench-diff:
	$(GO) run ./cmd/benchtab -quick -json > BENCH_new.json
	$(GO) run ./cmd/benchtab -diff -threshold 0.25 -min-seconds 0.25 BENCH_search.json BENCH_new.json

tables:
	$(GO) run ./cmd/benchtab -quick

verify: lint vet test race test-faults test-campaign test-difftest test-fleet test-serve test-higher
