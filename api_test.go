package hotg_test

import (
	"bytes"
	"strings"
	"testing"

	"hotg"
	"hotg/internal/mini"
)

const apiFooSrc = `
fn main(x int, y int) {
	if (x == hash(y)) {
		if (y == 10) {
			error("deep");
		}
	}
}`

func TestAPICompileAndRun(t *testing.T) {
	prog, err := hotg.Compile(apiFooSrc, hotg.DefaultNatives())
	if err != nil {
		t.Fatal(err)
	}
	res := hotg.Run(prog, []int64{0, 0})
	if res.Kind != mini.StopReturn {
		t.Fatalf("res = %+v", res)
	}
	if _, err := hotg.Compile("not a program", hotg.DefaultNatives()); err == nil {
		t.Fatal("bad source must not compile")
	}
	if _, err := hotg.Compile(`fn main() { nosuch(); }`, hotg.DefaultNatives()); err == nil {
		t.Fatal("undefined call must not check")
	}
}

func TestAPIExploreFindsDeepBug(t *testing.T) {
	prog, err := hotg.Compile(apiFooSrc, hotg.DefaultNatives())
	if err != nil {
		t.Fatal(err)
	}
	eng := hotg.NewEngine(prog, hotg.ModeHigherOrder)
	stats := hotg.Explore(eng, hotg.SearchOptions{MaxRuns: 30, Seeds: [][]int64{{33, 42}}})
	if len(stats.ErrorSitesFound()) != 1 {
		t.Fatalf("deep bug not found: %s", stats.Summary())
	}
	if stats.Divergences != 0 {
		t.Fatalf("diverged: %s", stats.Summary())
	}
	if !strings.Contains(stats.Summary(), "higher-order") {
		t.Fatalf("summary = %q", stats.Summary())
	}
}

func TestAPIFuzz(t *testing.T) {
	prog, err := hotg.Compile(apiFooSrc, hotg.DefaultNatives())
	if err != nil {
		t.Fatal(err)
	}
	st := hotg.Fuzz(prog, hotg.FuzzOptions{MaxRuns: 50})
	if st.Runs != 50 {
		t.Fatalf("runs = %d", st.Runs)
	}
}

func TestAPISamplePersistence(t *testing.T) {
	prog, err := hotg.Compile(apiFooSrc, hotg.DefaultNatives())
	if err != nil {
		t.Fatal(err)
	}
	e1 := hotg.NewEngine(prog, hotg.ModeHigherOrder)
	e1.Run([]int64{1, 5})
	e1.Run([]int64{1, 9})
	var buf bytes.Buffer
	if err := hotg.SaveSamples(e1, &buf); err != nil {
		t.Fatal(err)
	}
	e2 := hotg.NewEngine(prog, hotg.ModeHigherOrder)
	n, err := hotg.LoadSamples(e2, &buf)
	if err != nil || n != e1.Samples.Len() {
		t.Fatalf("loaded %d of %d samples, err=%v", n, e1.Samples.Len(), err)
	}
}

func TestAPIProveValidity(t *testing.T) {
	prog, err := hotg.Compile(apiFooSrc, hotg.DefaultNatives())
	if err != nil {
		t.Fatal(err)
	}
	eng := hotg.NewEngine(prog, hotg.ModeHigherOrder)
	ex := eng.Run([]int64{33, 42})
	alt := ex.Alt(len(ex.PC) - 1) // flip x == hash(y)
	fb := map[int]int64{eng.InputVars[0].ID: 33, eng.InputVars[1].ID: 42}
	strat, out := hotg.ProveValidity(alt, eng.Samples, hotg.ProveOptions{Pool: eng.Pool, Fallback: fb})
	if out != hotg.OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	res := strat.Resolve(eng.Samples)
	if !res.Complete {
		t.Fatalf("resolution = %+v", res)
	}
	desc := hotg.PostDescription(alt, eng.Samples)
	if !strings.Contains(desc, "∀hash") || !strings.Contains(desc, "⇒") {
		t.Fatalf("PostDescription = %q", desc)
	}
}

func TestAPIWorkloadsAndExperiments(t *testing.T) {
	if len(hotg.Workloads()) < 12 {
		t.Fatalf("workloads = %d", len(hotg.Workloads()))
	}
	w, ok := hotg.GetWorkload("lexer")
	if !ok || w.Build().Main() == nil {
		t.Fatal("lexer workload missing")
	}
	if len(hotg.Experiments()) < 15 {
		t.Fatalf("experiments = %d", len(hotg.Experiments()))
	}
	e, ok := hotg.GetExperiment("E1")
	if !ok {
		t.Fatal("E1 missing")
	}
	tab := e.Run(hotg.ExperimentConfig{Quick: true})
	if len(tab.Failed()) != 0 {
		t.Fatalf("E1 claims failed: %v", tab.Failed())
	}
}

func TestAPISummaries(t *testing.T) {
	w, _ := hotg.GetWorkload("scanner")
	prog := w.Build()
	eng := hotg.NewEngine(prog, hotg.ModeHigherOrder)
	eng.Summaries = hotg.NewSummaryCache()
	st := hotg.Explore(eng, hotg.SearchOptions{MaxRuns: 50, Seeds: w.Seeds, Bounds: w.Bounds})
	if st.Divergences != 0 {
		t.Fatalf("diverged: %s", st.Summary())
	}
	if eng.Summaries.Hits == 0 {
		t.Fatal("summary cache never hit")
	}
}
