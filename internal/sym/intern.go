package sym

import "sync"

// Interner hash-conses expressions so that structurally equal expressions
// become pointer-equal: Intern(a) == Intern(b) iff a.Key() == b.Key(). It
// doubles as an arena — the canonical node for every key seen is retained for
// the interner's lifetime, so long-lived consumers (an incremental solver
// session, the proof cache) can key maps by pointer and share subterm memory
// across formulas instead of re-allocating equal structure per solve.
//
// Interning is recursive: the canonical node's children are themselves
// canonical, so equal subterms of different formulas collapse to one object.
// An Interner is safe for concurrent use.
type Interner struct {
	mu    sync.Mutex
	exprs map[string]Expr
	atoms map[string]Atom
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{
		exprs: make(map[string]Expr),
		atoms: make(map[string]Atom),
	}
}

// Len returns the number of distinct expressions retained (formula and
// integer-term nodes; atoms are accounted separately).
func (in *Interner) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.exprs)
}

// Intern returns the canonical representative of e, inserting e's structure
// on first sight. The result is structurally equal to e (same Key).
func (in *Interner) Intern(e Expr) Expr {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.intern(e)
}

// InternSum is Intern specialized to integer terms.
func (in *Interner) InternSum(s *Sum) *Sum {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.internSum(s)
}

func (in *Interner) intern(e Expr) Expr {
	if got, ok := in.exprs[e.Key()]; ok {
		return got
	}
	var canon Expr
	switch x := e.(type) {
	case *Bool:
		canon = x
	case *Sum:
		return in.internSum(x)
	case *Cmp:
		canon = &Cmp{Op: x.Op, S: in.internSum(x.S)}
	case *Not:
		canon = &Not{X: in.intern(x.X)}
	case *And:
		ys := make([]Expr, len(x.Xs))
		for i, y := range x.Xs {
			ys[i] = in.intern(y)
		}
		canon = &And{Xs: ys}
	case *Or:
		ys := make([]Expr, len(x.Xs))
		for i, y := range x.Xs {
			ys[i] = in.intern(y)
		}
		canon = &Or{Xs: ys}
	default:
		canon = e
	}
	in.exprs[e.Key()] = canon
	return canon
}

func (in *Interner) internSum(s *Sum) *Sum {
	if got, ok := in.exprs[s.Key()]; ok {
		return got.(*Sum)
	}
	canon := s
	var terms []Term
	for i, t := range s.Terms {
		na := in.internAtom(t.Atom)
		if na != t.Atom && terms == nil {
			terms = make([]Term, len(s.Terms))
			copy(terms, s.Terms[:i])
		}
		if terms != nil {
			terms[i] = Term{Coef: t.Coef, Atom: na}
		}
	}
	if terms != nil {
		canon = &Sum{Const: s.Const, Terms: terms}
	}
	in.exprs[s.Key()] = canon
	return canon
}

func (in *Interner) internAtom(a Atom) Atom {
	if got, ok := in.atoms[a.Key()]; ok {
		return got
	}
	canon := a
	if app, ok := a.(*Apply); ok {
		var args []*Sum
		for i, arg := range app.Args {
			na := in.internSum(arg)
			if na != arg && args == nil {
				args = make([]*Sum, len(app.Args))
				copy(args, app.Args[:i])
			}
			if args != nil {
				args[i] = na
			}
		}
		if args != nil {
			canon = &Apply{Fn: app.Fn, Args: args}
		}
	}
	in.atoms[a.Key()] = canon
	return canon
}
