package sym

import (
	"fmt"
	"strings"
)

// Sample is one recorded input–output pair of an uninterpreted function: the
// paper's IOF entry (c, f(evalConcrete(args))), meaning f(Args) = Out was
// observed at execution time.
type Sample struct {
	Fn   *Func
	Args []int64
	Out  int64
}

func (s Sample) String() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return fmt.Sprintf("%s(%s)=%d", s.Fn.Name, strings.Join(parts, ","), s.Out)
}

func argsKey(args []int64) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return strings.Join(parts, ",")
}

// SampleStore is the IOF table of Figure 3: concrete input–output samples of
// uninterpreted functions, recorded during dynamic symbolic execution. The
// store can persist across runs ("include ... all value pairs observed during
// all previous runs", Section 5.3), which is what makes hard-coded keyword
// hashes learnable over a testing session (Section 7).
type SampleStore struct {
	byFn  map[*Func]map[string]Sample
	order []Sample // insertion order, for deterministic iteration
}

// NewSampleStore returns an empty store.
func NewSampleStore() *SampleStore {
	return &SampleStore{byFn: make(map[*Func]map[string]Sample)}
}

// Add records f(args)=out. It returns true if the pair was new. Recording a
// conflicting output for already-seen arguments panics: unknown functions are
// assumed deterministic (Theorem 3).
func (s *SampleStore) Add(f *Func, args []int64, out int64) bool {
	if len(args) != f.Arity {
		panic(fmt.Sprintf("sym: sample for %s has %d args, want %d", f.Name, len(args), f.Arity))
	}
	m := s.byFn[f]
	if m == nil {
		m = make(map[string]Sample)
		s.byFn[f] = m
	}
	k := argsKey(args)
	if prev, ok := m[k]; ok {
		if prev.Out != out {
			panic(fmt.Sprintf("sym: nondeterministic unknown function %s: %s gave both %d and %d",
				f.Name, k, prev.Out, out))
		}
		return false
	}
	cp := make([]int64, len(args))
	copy(cp, args)
	smp := Sample{Fn: f, Args: cp, Out: out}
	m[k] = smp
	s.order = append(s.order, smp)
	return true
}

// Lookup returns the recorded output of f on args.
func (s *SampleStore) Lookup(f *Func, args []int64) (int64, bool) {
	if m := s.byFn[f]; m != nil {
		if smp, ok := m[argsKey(args)]; ok {
			return smp.Out, true
		}
	}
	return 0, false
}

// ForFunc returns all samples of f in insertion order.
func (s *SampleStore) ForFunc(f *Func) []Sample {
	var out []Sample
	for _, smp := range s.order {
		if smp.Fn == f {
			out = append(out, smp)
		}
	}
	return out
}

// All returns every sample in insertion order.
func (s *SampleStore) All() []Sample {
	out := make([]Sample, len(s.order))
	copy(out, s.order)
	return out
}

// Len reports the number of recorded samples.
func (s *SampleStore) Len() int { return len(s.order) }

// Clone returns an independent copy of the store.
func (s *SampleStore) Clone() *SampleStore {
	c := NewSampleStore()
	for _, smp := range s.order {
		c.Add(smp.Fn, smp.Args, smp.Out)
	}
	return c
}

// Merge adds every sample of other into s.
func (s *SampleStore) Merge(other *SampleStore) {
	for _, smp := range other.order {
		s.Add(smp.Fn, smp.Args, smp.Out)
	}
}

// FnEval adapts the store to the evaluation interface of Env.
func (s *SampleStore) FnEval(f *Func, args []int64) (int64, bool) {
	return s.Lookup(f, args)
}
