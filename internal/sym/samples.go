package sym

import (
	"fmt"
	"strings"
	"sync"
)

// Sample is one recorded input–output pair of an uninterpreted function: the
// paper's IOF entry (c, f(evalConcrete(args))), meaning f(Args) = Out was
// observed at execution time.
type Sample struct {
	Fn   *Func
	Args []int64
	Out  int64
}

func (s Sample) String() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return fmt.Sprintf("%s(%s)=%d", s.Fn.Name, strings.Join(parts, ","), s.Out)
}

func argsKey(args []int64) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return strings.Join(parts, ",")
}

// SampleStore is the IOF table of Figure 3: concrete input–output samples of
// uninterpreted functions, recorded during dynamic symbolic execution. The
// store can persist across runs ("include ... all value pairs observed during
// all previous runs", Section 5.3), which is what makes hard-coded keyword
// hashes learnable over a testing session (Section 7).
//
// A store is safe for concurrent use. A store may also be an *overlay* over a
// base store (NewOverlay): reads fall through to the base, writes stay local.
// The parallel search gives each worker an overlay over the shared store and
// merges the overlays back in deterministic batch order, so the merged store
// is sample-for-sample identical to what a sequential search would build.
type SampleStore struct {
	mu    sync.RWMutex
	base  *SampleStore // read-through parent; nil for a root store
	byFn  map[*Func]map[string]Sample
	order []Sample // insertion order, for deterministic iteration
}

// NewSampleStore returns an empty store.
func NewSampleStore() *SampleStore {
	return &SampleStore{byFn: make(map[*Func]map[string]Sample)}
}

// NewOverlay returns an empty store layered over base: lookups read through
// to base, additions are recorded locally (duplicates of base entries are
// dropped, conflicting outputs panic as in Add). The overlay never writes to
// base; merge it back explicitly with base.Merge(overlay).
func NewOverlay(base *SampleStore) *SampleStore {
	return &SampleStore{base: base, byFn: make(map[*Func]map[string]Sample)}
}

// Add records f(args)=out. It returns true if the pair was new. Recording a
// conflicting output for already-seen arguments panics: unknown functions are
// assumed deterministic (Theorem 3).
func (s *SampleStore) Add(f *Func, args []int64, out int64) bool {
	if len(args) != f.Arity {
		panic(fmt.Sprintf("sym: sample for %s has %d args, want %d", f.Name, len(args), f.Arity))
	}
	if s.base != nil {
		if prev, ok := s.base.Lookup(f, args); ok {
			if prev != out {
				panic(fmt.Sprintf("sym: nondeterministic unknown function %s: %s gave both %d and %d",
					f.Name, argsKey(args), prev, out))
			}
			return false
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.byFn[f]
	if m == nil {
		m = make(map[string]Sample)
		s.byFn[f] = m
	}
	k := argsKey(args)
	if prev, ok := m[k]; ok {
		if prev.Out != out {
			panic(fmt.Sprintf("sym: nondeterministic unknown function %s: %s gave both %d and %d",
				f.Name, k, prev.Out, out))
		}
		return false
	}
	cp := make([]int64, len(args))
	copy(cp, args)
	smp := Sample{Fn: f, Args: cp, Out: out}
	m[k] = smp
	s.order = append(s.order, smp)
	return true
}

// Lookup returns the recorded output of f on args.
func (s *SampleStore) Lookup(f *Func, args []int64) (int64, bool) {
	s.mu.RLock()
	if m := s.byFn[f]; m != nil {
		if smp, ok := m[argsKey(args)]; ok {
			s.mu.RUnlock()
			return smp.Out, true
		}
	}
	s.mu.RUnlock()
	if s.base != nil {
		return s.base.Lookup(f, args)
	}
	return 0, false
}

// ForFunc returns all samples of f in insertion order (base entries first for
// an overlay).
func (s *SampleStore) ForFunc(f *Func) []Sample {
	var out []Sample
	if s.base != nil {
		out = s.base.ForFunc(f)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, smp := range s.order {
		if smp.Fn == f {
			out = append(out, smp)
		}
	}
	return out
}

// All returns every sample in insertion order (base entries first for an
// overlay).
func (s *SampleStore) All() []Sample {
	var out []Sample
	if s.base != nil {
		out = s.base.All()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append(out, s.order...)
}

// Len reports the number of recorded samples (including base entries for an
// overlay).
func (s *SampleStore) Len() int {
	n := 0
	if s.base != nil {
		n = s.base.Len()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return n + len(s.order)
}

// MemBytes returns a rough accounting of the bytes the store retains
// (including base entries for an overlay): per-sample argument storage plus
// fixed map/slice overhead. An estimate for budget accounting, not an exact
// heap measurement.
func (s *SampleStore) MemBytes() int64 {
	var n int64
	if s.base != nil {
		n = s.base.MemBytes()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, smp := range s.order {
		// Each sample is stored twice (byFn map + order slice): args, output,
		// the map key string, and node overhead.
		n += 2*8*int64(len(smp.Args)) + 8 + int64(3*len(smp.Args)) + 96
	}
	return n
}

// LocalLen reports the number of samples recorded in this store itself,
// excluding any base store.
func (s *SampleStore) LocalLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.order)
}

// Local returns the samples recorded in this store itself (excluding any
// base store), in insertion order. For an overlay this is exactly what
// MergeLocal would merge — the unit a fleet worker ships back to the
// coordinator after a dispatched execution.
func (s *SampleStore) Local() []Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Sample(nil), s.order...)
}

// Clone returns an independent (root) copy of the store.
func (s *SampleStore) Clone() *SampleStore {
	c := NewSampleStore()
	for _, smp := range s.All() {
		c.Add(smp.Fn, smp.Args, smp.Out)
	}
	return c
}

// Merge adds every sample of other into s, in other's insertion order.
func (s *SampleStore) Merge(other *SampleStore) {
	for _, smp := range other.All() {
		s.Add(smp.Fn, smp.Args, smp.Out)
	}
}

// MergeLocal adds only other's locally recorded samples into s (skipping
// other's base), in insertion order. This is the merge step of the parallel
// search: each worker overlay's new samples land in the shared store exactly
// once, in batch order.
func (s *SampleStore) MergeLocal(other *SampleStore) {
	other.mu.RLock()
	local := append([]Sample(nil), other.order...)
	other.mu.RUnlock()
	for _, smp := range local {
		s.Add(smp.Fn, smp.Args, smp.Out)
	}
}

// FnEval adapts the store to the evaluation interface of Env.
func (s *SampleStore) FnEval(f *Func, args []int64) (int64, bool) {
	return s.Lookup(f, args)
}
