package sym

import (
	"fmt"
	"sort"
)

// Vars returns the free variables of e, deduplicated and ordered by ID.
func Vars(e Expr) []*Var {
	seen := make(map[int]*Var)
	collectVars(e, seen)
	out := make([]*Var, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func collectVars(e Expr, seen map[int]*Var) {
	switch x := e.(type) {
	case *Sum:
		for _, t := range x.Terms {
			switch a := t.Atom.(type) {
			case *Var:
				seen[a.ID] = a
			case *Apply:
				for _, arg := range a.Args {
					collectVars(arg, seen)
				}
			}
		}
	case *Cmp:
		collectVars(x.S, seen)
	case *Not:
		collectVars(x.X, seen)
	case *And:
		for _, y := range x.Xs {
			collectVars(y, seen)
		}
	case *Or:
		for _, y := range x.Xs {
			collectVars(y, seen)
		}
	case *Bool:
	default:
		panic(fmt.Sprintf("sym: collectVars: unexpected %T", e))
	}
}

// Applies returns every uninterpreted function application occurring in e
// (including applications nested inside arguments of other applications),
// deduplicated by canonical key and ordered by key.
func Applies(e Expr) []*Apply {
	seen := make(map[string]*Apply)
	collectApplies(e, seen)
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Apply, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

func collectApplies(e Expr, seen map[string]*Apply) {
	switch x := e.(type) {
	case *Sum:
		for _, t := range x.Terms {
			if a, ok := t.Atom.(*Apply); ok {
				seen[a.Key()] = a
				for _, arg := range a.Args {
					collectApplies(arg, seen)
				}
			}
		}
	case *Cmp:
		collectApplies(x.S, seen)
	case *Not:
		collectApplies(x.X, seen)
	case *And:
		for _, y := range x.Xs {
			collectApplies(y, seen)
		}
	case *Or:
		for _, y := range x.Xs {
			collectApplies(y, seen)
		}
	case *Bool:
	default:
		panic(fmt.Sprintf("sym: collectApplies: unexpected %T", e))
	}
}

// OccursVar reports whether the variable with the given ID occurs in e.
// Unlike collecting Vars and scanning, it allocates nothing and stops at the
// first occurrence, which matters on the prover's occurs-check hot path.
func OccursVar(e Expr, id int) bool {
	switch x := e.(type) {
	case *Sum:
		return occursVarSum(x, id)
	case *Cmp:
		return occursVarSum(x.S, id)
	case *Not:
		return OccursVar(x.X, id)
	case *And:
		for _, y := range x.Xs {
			if OccursVar(y, id) {
				return true
			}
		}
		return false
	case *Or:
		for _, y := range x.Xs {
			if OccursVar(y, id) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

func occursVarSum(s *Sum, id int) bool {
	for _, t := range s.Terms {
		switch a := t.Atom.(type) {
		case *Var:
			if a.ID == id {
				return true
			}
		case *Apply:
			for _, arg := range a.Args {
				if occursVarSum(arg, id) {
					return true
				}
			}
		}
	}
	return false
}

// HasApply reports whether e contains any uninterpreted function application.
func HasApply(e Expr) bool {
	switch x := e.(type) {
	case *Sum:
		for _, t := range x.Terms {
			if _, ok := t.Atom.(*Apply); ok {
				return true
			}
		}
		return false
	case *Cmp:
		return HasApply(x.S)
	case *Not:
		return HasApply(x.X)
	case *And:
		for _, y := range x.Xs {
			if HasApply(y) {
				return true
			}
		}
		return false
	case *Or:
		for _, y := range x.Xs {
			if HasApply(y) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// Env supplies concrete meanings for variables and uninterpreted functions
// during evaluation.
type Env struct {
	// Vars maps Var.ID to its concrete value.
	Vars map[int]int64
	// Fn gives the concrete interpretation of uninterpreted functions; it
	// reports false when the value of f on args is not known.
	Fn func(f *Func, args []int64) (int64, bool)
}

// EvalSum evaluates the integer term s under env.
func EvalSum(s *Sum, env Env) (int64, error) {
	total := s.Const
	for _, t := range s.Terms {
		var av int64
		switch a := t.Atom.(type) {
		case *Var:
			v, ok := env.Vars[a.ID]
			if !ok {
				return 0, fmt.Errorf("sym: no value for variable %s", a)
			}
			av = v
		case *Apply:
			args := make([]int64, len(a.Args))
			for i, arg := range a.Args {
				v, err := EvalSum(arg, env)
				if err != nil {
					return 0, err
				}
				args[i] = v
			}
			if env.Fn == nil {
				return 0, fmt.Errorf("sym: no interpretation for function %s", a.Fn)
			}
			v, ok := env.Fn(a.Fn, args)
			if !ok {
				return 0, fmt.Errorf("sym: %s not defined on %v", a.Fn, args)
			}
			av = v
		}
		total += t.Coef * av
	}
	return total, nil
}

// EvalBool evaluates the boolean formula e under env.
func EvalBool(e Expr, env Env) (bool, error) {
	switch x := e.(type) {
	case *Bool:
		return x.V, nil
	case *Cmp:
		v, err := EvalSum(x.S, env)
		if err != nil {
			return false, err
		}
		switch x.Op {
		case OpEq:
			return v == 0, nil
		case OpNe:
			return v != 0, nil
		case OpLe:
			return v <= 0, nil
		}
		panic("sym: bad CmpOp")
	case *Not:
		v, err := EvalBool(x.X, env)
		return !v, err
	case *And:
		for _, y := range x.Xs {
			v, err := EvalBool(y, env)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case *Or:
		for _, y := range x.Xs {
			v, err := EvalBool(y, env)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	}
	return false, fmt.Errorf("sym: EvalBool: unexpected %T", e)
}

// SubstVars substitutes terms for variables throughout e. Variables without
// a binding are left untouched. When no binding applies anywhere inside e the
// original expression is returned unchanged — callers may rely on pointer
// identity (and the already-memoized keys) of untouched subtrees.
func SubstVars(e Expr, binding map[int]*Sum) Expr {
	switch x := e.(type) {
	case *Sum:
		return SubstVarsSum(x, binding)
	case *Bool:
		return x
	case *Cmp:
		ns := SubstVarsSum(x.S, binding)
		if ns == x.S {
			return x
		}
		return cmp(x.Op, ns)
	case *Not:
		ny := SubstVars(x.X, binding)
		if ny == x.X {
			return x
		}
		return NotExpr(ny)
	case *And:
		ys := substVarsSlice(x.Xs, binding)
		if ys == nil {
			return x
		}
		return AndExpr(ys...)
	case *Or:
		ys := substVarsSlice(x.Xs, binding)
		if ys == nil {
			return x
		}
		return OrExpr(ys...)
	}
	panic(fmt.Sprintf("sym: SubstVars: unexpected %T", e))
}

// substVarsSlice substitutes through each element, returning nil when every
// element came back pointer-unchanged (so the caller can keep the original).
func substVarsSlice(xs []Expr, binding map[int]*Sum) []Expr {
	var ys []Expr
	for i, y := range xs {
		ny := SubstVars(y, binding)
		if ny != y && ys == nil {
			ys = make([]Expr, len(xs))
			copy(ys, xs[:i])
		}
		if ys != nil {
			ys[i] = ny
		}
	}
	return ys
}

// SubstVarsSum substitutes terms for variables throughout the integer term s.
// Returns s itself when no binding applies.
func SubstVarsSum(s *Sum, binding map[int]*Sum) *Sum {
	var out *Sum
	for i, t := range s.Terms {
		switch a := t.Atom.(type) {
		case *Var:
			repl, ok := binding[a.ID]
			if !ok {
				if out != nil {
					out = AddSum(out, &Sum{Terms: s.Terms[i : i+1]})
				}
				continue
			}
			if out == nil {
				out = &Sum{Const: s.Const, Terms: append([]Term(nil), s.Terms[:i]...)}
			}
			out = AddSum(out, ScaleSum(t.Coef, repl))
		case *Apply:
			na := substVarsApply(a, binding)
			if na == a {
				if out != nil {
					out = AddSum(out, &Sum{Terms: s.Terms[i : i+1]})
				}
				continue
			}
			if out == nil {
				out = &Sum{Const: s.Const, Terms: append([]Term(nil), s.Terms[:i]...)}
			}
			out = AddSum(out, ScaleSum(t.Coef, AtomTerm(na)))
		}
	}
	if out == nil {
		return s
	}
	return out
}

func substVarsApply(a *Apply, binding map[int]*Sum) *Apply {
	var args []*Sum
	for i, arg := range a.Args {
		na := SubstVarsSum(arg, binding)
		if na != arg && args == nil {
			args = make([]*Sum, len(a.Args))
			copy(args, a.Args[:i])
		}
		if args != nil {
			args[i] = na
		}
	}
	if args == nil {
		return a
	}
	return &Apply{Fn: a.Fn, Args: args}
}

// RewriteApplies rewrites e bottom-up, replacing each uninterpreted function
// application a for which repl returns (t, true) by the term t. Arguments are
// rewritten before the application itself, so a sample lookup sees fully
// simplified arguments.
// When no application is replaced and no argument changes, the original
// expression is returned unchanged (pointer-identical). repl is still invoked
// exactly once per application occurrence either way, so replacement functions
// with side effects (Ackermannization) observe the same call sequence.
func RewriteApplies(e Expr, repl func(*Apply) (*Sum, bool)) Expr {
	switch x := e.(type) {
	case *Sum:
		return RewriteAppliesSum(x, repl)
	case *Bool:
		return x
	case *Cmp:
		ns := RewriteAppliesSum(x.S, repl)
		if ns == x.S {
			return x
		}
		return cmp(x.Op, ns)
	case *Not:
		ny := RewriteApplies(x.X, repl)
		if ny == x.X {
			return x
		}
		return NotExpr(ny)
	case *And:
		ys := rewriteAppliesSlice(x.Xs, repl)
		if ys == nil {
			return x
		}
		return AndExpr(ys...)
	case *Or:
		ys := rewriteAppliesSlice(x.Xs, repl)
		if ys == nil {
			return x
		}
		return OrExpr(ys...)
	}
	panic(fmt.Sprintf("sym: RewriteApplies: unexpected %T", e))
}

func rewriteAppliesSlice(xs []Expr, repl func(*Apply) (*Sum, bool)) []Expr {
	var ys []Expr
	for i, y := range xs {
		ny := RewriteApplies(y, repl)
		if ny != y && ys == nil {
			ys = make([]Expr, len(xs))
			copy(ys, xs[:i])
		}
		if ys != nil {
			ys[i] = ny
		}
	}
	return ys
}

// RewriteAppliesSum is RewriteApplies specialized to integer terms. Returns
// s itself when nothing inside changed.
func RewriteAppliesSum(s *Sum, repl func(*Apply) (*Sum, bool)) *Sum {
	var out *Sum
	for i, t := range s.Terms {
		a, isApp := t.Atom.(*Apply)
		if !isApp {
			if out != nil {
				out = AddSum(out, &Sum{Terms: s.Terms[i : i+1]})
			}
			continue
		}
		na := rewriteAppliesApply(a, repl)
		if r, ok := repl(na); ok {
			if out == nil {
				out = &Sum{Const: s.Const, Terms: append([]Term(nil), s.Terms[:i]...)}
			}
			out = AddSum(out, ScaleSum(t.Coef, r))
			continue
		}
		if na == a {
			if out != nil {
				out = AddSum(out, &Sum{Terms: s.Terms[i : i+1]})
			}
			continue
		}
		if out == nil {
			out = &Sum{Const: s.Const, Terms: append([]Term(nil), s.Terms[:i]...)}
		}
		out = AddSum(out, ScaleSum(t.Coef, AtomTerm(na)))
	}
	if out == nil {
		return s
	}
	return out
}

func rewriteAppliesApply(a *Apply, repl func(*Apply) (*Sum, bool)) *Apply {
	var args []*Sum
	for i, arg := range a.Args {
		na := RewriteAppliesSum(arg, repl)
		if na != arg && args == nil {
			args = make([]*Sum, len(a.Args))
			copy(args, a.Args[:i])
		}
		if args != nil {
			args[i] = na
		}
	}
	if args == nil {
		return a
	}
	return &Apply{Fn: a.Fn, Args: args}
}

// Conjuncts flattens e into a list of conjuncts (e itself if it is not a
// conjunction; nothing if it is the constant true).
func Conjuncts(e Expr) []Expr {
	switch x := e.(type) {
	case *And:
		var out []Expr
		for _, y := range x.Xs {
			out = append(out, Conjuncts(y)...)
		}
		return out
	case *Bool:
		if x.V {
			return nil
		}
		return []Expr{x}
	default:
		return []Expr{e}
	}
}
