package sym

import (
	"fmt"
	"sort"
)

// Vars returns the free variables of e, deduplicated and ordered by ID.
func Vars(e Expr) []*Var {
	seen := make(map[int]*Var)
	collectVars(e, seen)
	out := make([]*Var, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func collectVars(e Expr, seen map[int]*Var) {
	switch x := e.(type) {
	case *Sum:
		for _, t := range x.Terms {
			switch a := t.Atom.(type) {
			case *Var:
				seen[a.ID] = a
			case *Apply:
				for _, arg := range a.Args {
					collectVars(arg, seen)
				}
			}
		}
	case *Cmp:
		collectVars(x.S, seen)
	case *Not:
		collectVars(x.X, seen)
	case *And:
		for _, y := range x.Xs {
			collectVars(y, seen)
		}
	case *Or:
		for _, y := range x.Xs {
			collectVars(y, seen)
		}
	case *Bool:
	default:
		panic(fmt.Sprintf("sym: collectVars: unexpected %T", e))
	}
}

// Applies returns every uninterpreted function application occurring in e
// (including applications nested inside arguments of other applications),
// deduplicated by canonical key and ordered by key.
func Applies(e Expr) []*Apply {
	seen := make(map[string]*Apply)
	collectApplies(e, seen)
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Apply, 0, len(keys))
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out
}

func collectApplies(e Expr, seen map[string]*Apply) {
	switch x := e.(type) {
	case *Sum:
		for _, t := range x.Terms {
			if a, ok := t.Atom.(*Apply); ok {
				seen[a.Key()] = a
				for _, arg := range a.Args {
					collectApplies(arg, seen)
				}
			}
		}
	case *Cmp:
		collectApplies(x.S, seen)
	case *Not:
		collectApplies(x.X, seen)
	case *And:
		for _, y := range x.Xs {
			collectApplies(y, seen)
		}
	case *Or:
		for _, y := range x.Xs {
			collectApplies(y, seen)
		}
	case *Bool:
	default:
		panic(fmt.Sprintf("sym: collectApplies: unexpected %T", e))
	}
}

// HasApply reports whether e contains any uninterpreted function application.
func HasApply(e Expr) bool {
	switch x := e.(type) {
	case *Sum:
		for _, t := range x.Terms {
			if _, ok := t.Atom.(*Apply); ok {
				return true
			}
		}
		return false
	case *Cmp:
		return HasApply(x.S)
	case *Not:
		return HasApply(x.X)
	case *And:
		for _, y := range x.Xs {
			if HasApply(y) {
				return true
			}
		}
		return false
	case *Or:
		for _, y := range x.Xs {
			if HasApply(y) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// Env supplies concrete meanings for variables and uninterpreted functions
// during evaluation.
type Env struct {
	// Vars maps Var.ID to its concrete value.
	Vars map[int]int64
	// Fn gives the concrete interpretation of uninterpreted functions; it
	// reports false when the value of f on args is not known.
	Fn func(f *Func, args []int64) (int64, bool)
}

// EvalSum evaluates the integer term s under env.
func EvalSum(s *Sum, env Env) (int64, error) {
	total := s.Const
	for _, t := range s.Terms {
		var av int64
		switch a := t.Atom.(type) {
		case *Var:
			v, ok := env.Vars[a.ID]
			if !ok {
				return 0, fmt.Errorf("sym: no value for variable %s", a)
			}
			av = v
		case *Apply:
			args := make([]int64, len(a.Args))
			for i, arg := range a.Args {
				v, err := EvalSum(arg, env)
				if err != nil {
					return 0, err
				}
				args[i] = v
			}
			if env.Fn == nil {
				return 0, fmt.Errorf("sym: no interpretation for function %s", a.Fn)
			}
			v, ok := env.Fn(a.Fn, args)
			if !ok {
				return 0, fmt.Errorf("sym: %s not defined on %v", a.Fn, args)
			}
			av = v
		}
		total += t.Coef * av
	}
	return total, nil
}

// EvalBool evaluates the boolean formula e under env.
func EvalBool(e Expr, env Env) (bool, error) {
	switch x := e.(type) {
	case *Bool:
		return x.V, nil
	case *Cmp:
		v, err := EvalSum(x.S, env)
		if err != nil {
			return false, err
		}
		switch x.Op {
		case OpEq:
			return v == 0, nil
		case OpNe:
			return v != 0, nil
		case OpLe:
			return v <= 0, nil
		}
		panic("sym: bad CmpOp")
	case *Not:
		v, err := EvalBool(x.X, env)
		return !v, err
	case *And:
		for _, y := range x.Xs {
			v, err := EvalBool(y, env)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case *Or:
		for _, y := range x.Xs {
			v, err := EvalBool(y, env)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	}
	return false, fmt.Errorf("sym: EvalBool: unexpected %T", e)
}

// SubstVars substitutes terms for variables throughout e. Variables without
// a binding are left untouched.
func SubstVars(e Expr, binding map[int]*Sum) Expr {
	switch x := e.(type) {
	case *Sum:
		return SubstVarsSum(x, binding)
	case *Bool:
		return x
	case *Cmp:
		return cmp(x.Op, SubstVarsSum(x.S, binding))
	case *Not:
		return NotExpr(SubstVars(x.X, binding))
	case *And:
		ys := make([]Expr, len(x.Xs))
		for i, y := range x.Xs {
			ys[i] = SubstVars(y, binding)
		}
		return AndExpr(ys...)
	case *Or:
		ys := make([]Expr, len(x.Xs))
		for i, y := range x.Xs {
			ys[i] = SubstVars(y, binding)
		}
		return OrExpr(ys...)
	}
	panic(fmt.Sprintf("sym: SubstVars: unexpected %T", e))
}

// SubstVarsSum substitutes terms for variables throughout the integer term s.
func SubstVarsSum(s *Sum, binding map[int]*Sum) *Sum {
	out := Int(s.Const)
	for _, t := range s.Terms {
		switch a := t.Atom.(type) {
		case *Var:
			if repl, ok := binding[a.ID]; ok {
				out = AddSum(out, ScaleSum(t.Coef, repl))
			} else {
				out = AddSum(out, &Sum{Terms: []Term{t}})
			}
		case *Apply:
			args := make([]*Sum, len(a.Args))
			for i, arg := range a.Args {
				args[i] = SubstVarsSum(arg, binding)
			}
			out = AddSum(out, ScaleSum(t.Coef, ApplyTerm(a.Fn, args...)))
		}
	}
	return out
}

// RewriteApplies rewrites e bottom-up, replacing each uninterpreted function
// application a for which repl returns (t, true) by the term t. Arguments are
// rewritten before the application itself, so a sample lookup sees fully
// simplified arguments.
func RewriteApplies(e Expr, repl func(*Apply) (*Sum, bool)) Expr {
	switch x := e.(type) {
	case *Sum:
		return RewriteAppliesSum(x, repl)
	case *Bool:
		return x
	case *Cmp:
		return cmp(x.Op, RewriteAppliesSum(x.S, repl))
	case *Not:
		return NotExpr(RewriteApplies(x.X, repl))
	case *And:
		ys := make([]Expr, len(x.Xs))
		for i, y := range x.Xs {
			ys[i] = RewriteApplies(y, repl)
		}
		return AndExpr(ys...)
	case *Or:
		ys := make([]Expr, len(x.Xs))
		for i, y := range x.Xs {
			ys[i] = RewriteApplies(y, repl)
		}
		return OrExpr(ys...)
	}
	panic(fmt.Sprintf("sym: RewriteApplies: unexpected %T", e))
}

// RewriteAppliesSum is RewriteApplies specialized to integer terms.
func RewriteAppliesSum(s *Sum, repl func(*Apply) (*Sum, bool)) *Sum {
	out := Int(s.Const)
	for _, t := range s.Terms {
		switch a := t.Atom.(type) {
		case *Var:
			out = AddSum(out, &Sum{Terms: []Term{t}})
		case *Apply:
			args := make([]*Sum, len(a.Args))
			for i, arg := range a.Args {
				args[i] = RewriteAppliesSum(arg, repl)
			}
			rebuilt := &Apply{Fn: a.Fn, Args: args}
			if r, ok := repl(rebuilt); ok {
				out = AddSum(out, ScaleSum(t.Coef, r))
			} else {
				out = AddSum(out, ScaleSum(t.Coef, AtomTerm(rebuilt)))
			}
		}
	}
	return out
}

// Conjuncts flattens e into a list of conjuncts (e itself if it is not a
// conjunction; nothing if it is the constant true).
func Conjuncts(e Expr) []Expr {
	switch x := e.(type) {
	case *And:
		var out []Expr
		for _, y := range x.Xs {
			out = append(out, Conjuncts(y)...)
		}
		return out
	case *Bool:
		if x.V {
			return nil
		}
		return []Expr{x}
	default:
		return []Expr{e}
	}
}
