package sym

import (
	"bytes"
	"strings"
	"testing"
)

// encodedFixture returns a store with a few samples and its encoding.
func encodedFixture(t *testing.T) ([]byte, *SampleStore) {
	t.Helper()
	var p Pool
	h := p.FuncSym("hash", 1)
	g := p.FuncSym("hashstr", 3)
	s := NewSampleStore()
	s.Add(h, []int64{42}, 567)
	s.Add(h, []int64{-3}, 12)
	s.Add(g, []int64{105, 102, 0}, 52)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), s
}

// TestDecodeSamplesTruncated: a sample file cut off at any byte boundary is
// rejected with an error, never a panic or a silent partial load that claims
// success.
func TestDecodeSamplesTruncated(t *testing.T) {
	data, _ := encodedFixture(t)
	for _, frac := range []int{0, 1, 2, 3} {
		cut := len(data) * frac / 4
		if cut == len(data) {
			continue
		}
		var p Pool
		_, err := DecodeSamples(bytes.NewReader(data[:cut]), NewSampleStore(), &p)
		if err == nil {
			t.Errorf("truncation at byte %d/%d decoded without error", cut, len(data))
		} else if !strings.Contains(err.Error(), "sym:") {
			t.Errorf("truncation error lacks package context: %v", err)
		}
	}
}

// TestDecodeSamplesCorrupted: structurally damaged files fail with an error
// naming the problem; the store is never left observably half-poisoned with
// values from rejected records' functions.
func TestDecodeSamplesCorrupted(t *testing.T) {
	data, _ := encodedFixture(t)
	mutations := []struct {
		name string
		old  string
		new  string
	}{
		{"string-out", `"out": 567`, `"out": "567"`},
		{"null-args", "\"args\": [\n      42\n    ]", `"args": null`},
		{"float-arg", `42`, `42.5`},
		{"object-root", `[`, `{`},
	}
	for _, m := range mutations {
		mut := strings.Replace(string(data), m.old, m.new, 1)
		if mut == string(data) {
			t.Fatalf("%s: mutation %q not applied (fixture format changed?)", m.name, m.old)
		}
		var p Pool
		if _, err := DecodeSamples(strings.NewReader(mut), NewSampleStore(), &p); err == nil {
			t.Errorf("%s: corrupted file decoded without error", m.name)
		}
	}
}

// TestDecodeSamplesDuplicateKeysInStream: two records for the same (fn, args)
// key inside one file — agreeing duplicates collapse silently, conflicting
// ones are rejected with an error that names the sample and both values'
// context.
func TestDecodeSamplesDuplicateKeysInStream(t *testing.T) {
	agreeing := `[
  {"fn":"h","arity":1,"args":[1],"out":5},
  {"fn":"h","arity":1,"args":[1],"out":5}
]`
	var p Pool
	dst := NewSampleStore()
	added, err := DecodeSamples(strings.NewReader(agreeing), dst, &p)
	if err != nil {
		t.Fatalf("agreeing duplicate rejected: %v", err)
	}
	if added != 1 || dst.Len() != 1 {
		t.Errorf("agreeing duplicate: added=%d len=%d, want 1/1", added, dst.Len())
	}

	conflicting := `[
  {"fn":"h","arity":1,"args":[1],"out":5},
  {"fn":"h","arity":1,"args":[1],"out":6}
]`
	var p2 Pool
	_, err = DecodeSamples(strings.NewReader(conflicting), NewSampleStore(), &p2)
	if err == nil {
		t.Fatal("conflicting in-stream duplicate accepted")
	}
	if !strings.Contains(err.Error(), "conflict") {
		t.Errorf("conflict error unclear: %v", err)
	}
}

// TestSamplesSaveLoadSaveByteStable: save → load → save reproduces the file
// byte for byte — insertion order and all values survive, so campaign
// artifacts containing embedded sample stores are content-stable.
func TestSamplesSaveLoadSaveByteStable(t *testing.T) {
	first, _ := encodedFixture(t)
	var p Pool
	dst := NewSampleStore()
	if _, err := DecodeSamples(bytes.NewReader(first), dst, &p); err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := dst.Encode(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second.Bytes()) {
		t.Errorf("save→load→save not byte-stable:\nfirst:  %s\nsecond: %s", first, second.Bytes())
	}
	// And once more through a second generation, from the reloaded store.
	var p2 Pool
	dst2 := NewSampleStore()
	if _, err := DecodeSamples(bytes.NewReader(second.Bytes()), dst2, &p2); err != nil {
		t.Fatal(err)
	}
	var third bytes.Buffer
	if err := dst2.Encode(&third); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(second.Bytes(), third.Bytes()) {
		t.Error("second-generation reload changed the encoding")
	}
}
