package sym

import "fmt"

// This file is the serialization layer for symbolic expressions: a JSON-shaped
// record tree mirroring the Expr structure, plus a Resolver that reattaches
// decoded atoms to a live Pool. It exists for the campaign subsystem's
// checkpoints (internal/search.Snapshot), where queued targets and proved
// strategies must survive a process restart bit-identically: the decoded
// expression must have the same canonical Key() as the original, and decoded
// function applications must resolve to the *same* *Func pointers the engine
// uses (the sample store indexes by pointer identity).
//
// Variables are resolved by ID: a Resolver seeded with the engine's input
// variables returns the engine's own *Var for known IDs and a detached
// (but identity-stable within one Resolver) *Var otherwise. Nothing in the
// pipeline compares Var pointers — lookups key on Var.ID — so detached
// variables are safe; they occur only for prover-internal temporaries, which
// checkpointed state does not normally contain.

// VarRec is the serialized form of a *Var.
type VarRec struct {
	ID   int    `json:"id"`
	Name string `json:"n"`
}

// AppRec is the serialized form of an *Apply. The function symbol travels as
// name+arity and is re-interned through the Pool on decode.
type AppRec struct {
	Fn    string    `json:"fn"`
	Arity int       `json:"a"`
	Input bool      `json:"in,omitempty"` // function-valued input (InputFuncSym)
	Args  []*SumRec `json:"args"`
}

// TermRec is the serialized form of one Term: exactly one of Var and App is
// set.
type TermRec struct {
	Coef int64   `json:"k"`
	Var  *VarRec `json:"v,omitempty"`
	App  *AppRec `json:"f,omitempty"`
}

// SumRec is the serialized form of a *Sum.
type SumRec struct {
	Const int64     `json:"c,omitempty"`
	Terms []TermRec `json:"ts,omitempty"`
}

// ExprRec is the serialized form of an Expr: a tagged union over the formula
// node kinds, with *Sum doubling as the integer-sorted leaf.
type ExprRec struct {
	Kind string     `json:"k"`            // "bool", "cmp", "not", "and", "or", "sum"
	B    bool       `json:"b,omitempty"`  // Kind "bool": the constant
	Op   string     `json:"op,omitempty"` // Kind "cmp": "=", "!=", "<="
	Sum  *SumRec    `json:"s,omitempty"`  // Kind "cmp" or "sum"
	Xs   []*ExprRec `json:"xs,omitempty"` // Kind "not" (1), "and", "or"
}

// EncodeSum serializes a canonical linear term.
func EncodeSum(s *Sum) (*SumRec, error) {
	rec := &SumRec{Const: s.Const}
	for _, t := range s.Terms {
		tr := TermRec{Coef: t.Coef}
		switch a := t.Atom.(type) {
		case *Var:
			tr.Var = &VarRec{ID: a.ID, Name: a.Name}
		case *Apply:
			app := &AppRec{Fn: a.Fn.Name, Arity: a.Fn.Arity, Input: a.Fn.Input}
			for _, arg := range a.Args {
				ar, err := EncodeSum(arg)
				if err != nil {
					return nil, err
				}
				app.Args = append(app.Args, ar)
			}
			tr.App = app
		default:
			return nil, fmt.Errorf("sym: cannot encode atom %T", t.Atom)
		}
		rec.Terms = append(rec.Terms, tr)
	}
	return rec, nil
}

// EncodeExpr serializes an expression tree.
func EncodeExpr(e Expr) (*ExprRec, error) {
	switch x := e.(type) {
	case *Bool:
		return &ExprRec{Kind: "bool", B: x.V}, nil
	case *Cmp:
		s, err := EncodeSum(x.S)
		if err != nil {
			return nil, err
		}
		return &ExprRec{Kind: "cmp", Op: x.Op.String(), Sum: s}, nil
	case *Not:
		inner, err := EncodeExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &ExprRec{Kind: "not", Xs: []*ExprRec{inner}}, nil
	case *And:
		rec := &ExprRec{Kind: "and"}
		for _, sub := range x.Xs {
			r, err := EncodeExpr(sub)
			if err != nil {
				return nil, err
			}
			rec.Xs = append(rec.Xs, r)
		}
		return rec, nil
	case *Or:
		rec := &ExprRec{Kind: "or"}
		for _, sub := range x.Xs {
			r, err := EncodeExpr(sub)
			if err != nil {
				return nil, err
			}
			rec.Xs = append(rec.Xs, r)
		}
		return rec, nil
	case *Sum:
		s, err := EncodeSum(x)
		if err != nil {
			return nil, err
		}
		return &ExprRec{Kind: "sum", Sum: s}, nil
	default:
		return nil, fmt.Errorf("sym: cannot encode expression %T", e)
	}
}

// Resolver reattaches decoded records to a live Pool: function symbols are
// re-interned by name (so decoded applications share the engine's *Func
// pointers), and variables are resolved by ID against the seeded set, with
// identity-stable detached fallbacks for unknown IDs.
type Resolver struct {
	pool *Pool
	vars map[int]*Var
}

// NewResolver returns a Resolver over pool that resolves the given variables
// by ID (typically the engine's input variables).
func NewResolver(pool *Pool, vars []*Var) *Resolver {
	r := &Resolver{pool: pool, vars: make(map[int]*Var, len(vars))}
	for _, v := range vars {
		r.vars[v.ID] = v
	}
	return r
}

// DecodeVar returns the live variable for a record (exported for the codecs
// of dependent packages, e.g. fol strategy defs).
func (r *Resolver) DecodeVar(rec *VarRec) (*Var, error) {
	if rec == nil {
		return nil, fmt.Errorf("sym: missing variable record")
	}
	return r.resolveVar(rec), nil
}

// resolveVar returns the live variable for a record, creating (and caching) a
// detached one when the ID is not seeded.
func (r *Resolver) resolveVar(rec *VarRec) *Var {
	if v, ok := r.vars[rec.ID]; ok {
		return v
	}
	v := &Var{ID: rec.ID, Name: rec.Name}
	r.vars[rec.ID] = v
	return v
}

// DecodeSum rebuilds a canonical linear term. The result is renormalized, so
// even a hand-edited record yields a Sum honoring the package invariants.
func DecodeSum(rec *SumRec, r *Resolver) (*Sum, error) {
	if rec == nil {
		return nil, fmt.Errorf("sym: missing sum record")
	}
	terms := make([]Term, 0, len(rec.Terms))
	for i, tr := range rec.Terms {
		switch {
		case tr.Var != nil && tr.App == nil:
			terms = append(terms, Term{Coef: tr.Coef, Atom: r.resolveVar(tr.Var)})
		case tr.App != nil && tr.Var == nil:
			app := tr.App
			if len(app.Args) != app.Arity {
				return nil, fmt.Errorf("sym: application %s has %d args, declared arity %d",
					app.Fn, len(app.Args), app.Arity)
			}
			fn, err := safeFuncSym(r.pool, app.Fn, app.Arity, app.Input)
			if err != nil {
				return nil, err
			}
			args := make([]*Sum, len(app.Args))
			for j, ar := range app.Args {
				arg, err := DecodeSum(ar, r)
				if err != nil {
					return nil, err
				}
				args[j] = arg
			}
			terms = append(terms, Term{Coef: tr.Coef, Atom: &Apply{Fn: fn, Args: args}})
		default:
			return nil, fmt.Errorf("sym: term %d must have exactly one of var/app", i)
		}
	}
	if len(terms) == 0 {
		return &Sum{Const: rec.Const}, nil
	}
	// Serialized terms are not trusted to be sorted or duplicate-free, so
	// re-canonicalize by folding each term through AddSum.
	out := &Sum{Const: rec.Const}
	for _, t := range terms {
		out = AddSum(out, &Sum{Terms: []Term{t}})
	}
	return out, nil
}

// parseCmpOp inverts CmpOp.String.
func parseCmpOp(s string) (CmpOp, bool) {
	switch s {
	case "=":
		return OpEq, true
	case "!=":
		return OpNe, true
	case "<=":
		return OpLe, true
	default:
		return 0, false
	}
}

// DecodeExpr rebuilds an expression tree. Decoded expressions have the same
// canonical Key() as the originals they were encoded from.
func DecodeExpr(rec *ExprRec, r *Resolver) (Expr, error) {
	if rec == nil {
		return nil, fmt.Errorf("sym: missing expression record")
	}
	switch rec.Kind {
	case "bool":
		if rec.B {
			return True, nil
		}
		return False, nil
	case "cmp":
		op, ok := parseCmpOp(rec.Op)
		if !ok {
			return nil, fmt.Errorf("sym: unknown comparison operator %q", rec.Op)
		}
		s, err := DecodeSum(rec.Sum, r)
		if err != nil {
			return nil, err
		}
		return &Cmp{Op: op, S: s}, nil
	case "not":
		if len(rec.Xs) != 1 {
			return nil, fmt.Errorf("sym: negation must have exactly one operand, got %d", len(rec.Xs))
		}
		inner, err := DecodeExpr(rec.Xs[0], r)
		if err != nil {
			return nil, err
		}
		return &Not{X: inner}, nil
	case "and", "or":
		xs := make([]Expr, len(rec.Xs))
		for i, sub := range rec.Xs {
			x, err := DecodeExpr(sub, r)
			if err != nil {
				return nil, err
			}
			xs[i] = x
		}
		if rec.Kind == "and" {
			return &And{Xs: xs}, nil
		}
		return &Or{Xs: xs}, nil
	case "sum":
		return DecodeSum(rec.Sum, r)
	default:
		return nil, fmt.Errorf("sym: unknown expression kind %q", rec.Kind)
	}
}
