package sym

import (
	"fmt"
	"sync"
	"testing"
)

// TestSampleStoreConcurrentStress hammers one shared store from many
// goroutines mixing writers (Add) and readers (Lookup, ForFunc, All, Len).
// Run under -race this is the safety net for the store's locking; the final
// assertions check no sample was lost or duplicated.
func TestSampleStoreConcurrentStress(t *testing.T) {
	store := NewSampleStore()
	var pool Pool
	fns := make([]*Func, 4)
	for i := range fns {
		fns[i] = pool.FuncSym(fmt.Sprintf("f%d", i), 1)
	}
	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			fn := fns[g%len(fns)]
			for i := 0; i < perG; i++ {
				// Half the goroutines per function write overlapping ranges,
				// so Add races on duplicate keys (must dedup, never panic:
				// the recorded output for a key is always the same).
				arg := int64(i)
				store.Add(fn, []int64{arg}, arg*7)
				if _, ok := store.Lookup(fn, []int64{arg}); !ok {
					t.Error("lost a sample that was just added")
					return
				}
				store.ForFunc(fn)
				if g == 0 && i%50 == 0 {
					store.All()
					store.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if got, want := store.Len(), len(fns)*perG; got != want {
		t.Fatalf("store has %d samples, want %d", got, want)
	}
	for _, fn := range fns {
		if got := len(store.ForFunc(fn)); got != perG {
			t.Fatalf("%s has %d samples, want %d", fn.Name, got, perG)
		}
	}
}

// TestSampleStoreOverlayStress mirrors the search's worker pattern: several
// goroutines each build a private overlay over one shared base store while
// others read the base, then the overlays merge back sequentially. Under
// -race this covers NewOverlay/Add/Lookup/LocalLen/MergeLocal.
func TestSampleStoreOverlayStress(t *testing.T) {
	base := NewSampleStore()
	var pool Pool
	fn := pool.FuncSym("g", 2)
	for i := int64(0); i < 50; i++ {
		base.Add(fn, []int64{i, 0}, i)
	}
	const goroutines = 8
	overlays := make([]*SampleStore, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			ov := NewOverlay(base)
			overlays[g] = ov
			for i := int64(0); i < 100; i++ {
				// Base hits must resolve through the overlay without copying.
				if out, ok := ov.Lookup(fn, []int64{i % 50, 0}); !ok || out != i%50 {
					t.Errorf("overlay missed base sample %d", i%50)
					return
				}
				// Overlapping local writes across overlays (same args, same
				// out) — each overlay records its own copy.
				ov.Add(fn, []int64{i % 20, int64(g%2) + 1}, (i%20)*10)
			}
			if ov.LocalLen() != 20 {
				t.Errorf("overlay %d has %d local samples, want 20", g, ov.LocalLen())
			}
		}(g)
	}
	wg.Wait()
	for _, ov := range overlays {
		base.MergeLocal(ov)
	}
	// 50 base + 20 args × 2 distinct second-arg values from the overlays.
	if got, want := base.Len(), 50+40; got != want {
		t.Fatalf("merged base has %d samples, want %d", got, want)
	}
}
