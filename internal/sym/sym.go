// Package sym implements the symbolic expression language used by the
// concolic execution engine and the constraint solvers.
//
// The theory T is quantifier-free linear integer arithmetic with equality and
// order, extended with applications of uninterpreted functions (the theory
// T ∪ T_EUF of the paper). Integer terms are kept in a canonical linear form
//
//	c0 + c1*a1 + c2*a2 + ... + cn*an
//
// where each atom ai is either a program-input variable or an uninterpreted
// function application f(t1,...,tk). Canonicalization means that syntactic
// equality of the printed form coincides with equality of the normal form,
// which the solver layers rely on. Anything that cannot be expressed linearly
// (a product of two symbolic terms, a symbolic division, ...) is *not*
// representable here on purpose: such operations are "unknown instructions"
// in the sense of the paper and must go through the executor's imprecision
// channel (concretization or a fresh uninterpreted function).
package sym

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Sort identifies the sort of an expression.
type Sort int

const (
	// SortInt is the sort of integer-valued terms.
	SortInt Sort = iota
	// SortBool is the sort of boolean-valued formulas.
	SortBool
)

func (s Sort) String() string {
	switch s {
	case SortInt:
		return "Int"
	case SortBool:
		return "Bool"
	default:
		return fmt.Sprintf("Sort(%d)", int(s))
	}
}

// Expr is a symbolic expression: either an integer term (*Sum) or a boolean
// formula (*Bool, *Cmp, *Not, *And, *Or). Atoms (*Var, *Apply) appear only
// inside a *Sum; the constructor functions maintain this invariant.
type Expr interface {
	Sort() Sort
	// Key returns a canonical string; two expressions are structurally
	// equal iff their keys are equal.
	Key() string
}

// Atom is a non-constant leaf of an integer term: a variable or an
// uninterpreted function application.
type Atom interface {
	Key() string
	atom()
}

// Var is a symbolic variable standing for one program input parameter
// (the x_i of the paper). Vars are compared by identity; create them through
// a Pool so that IDs are unique.
type Var struct {
	ID   int
	Name string

	key string // memoized canonical form
}

func (v *Var) atom() {}

// Key implements Atom.
func (v *Var) Key() string {
	if v.key == "" {
		v.key = v.Name + "#" + strconv.Itoa(v.ID)
	}
	return v.key
}

func (v *Var) String() string { return v.Name }

// Func is an uninterpreted function symbol. Funcs are compared by identity;
// create them through a Pool.
type Func struct {
	ID    int
	Name  string
	Arity int
	// Input marks the symbol as a function-valued *input* of the program (a
	// callback parameter) rather than an environment unknown. Input symbols
	// have no fixed ground truth: search is free to invent any decision
	// table for them, which is what makes ∃-synthesis sound for callbacks.
	Input bool
}

func (f *Func) String() string { return f.Name }

// Apply is the application of an uninterpreted function to integer argument
// terms. It is an integer-sorted atom.
type Apply struct {
	Fn   *Func
	Args []*Sum

	key string // memoized canonical form
}

func (a *Apply) atom() {}

// Key implements Atom. Function symbols are unique per name within a Pool
// (FuncSym deduplicates), so the name alone identifies the symbol — unlike
// variables, whose names may repeat and which therefore carry their ID.
func (a *Apply) Key() string {
	if a.key == "" {
		var b strings.Builder
		b.WriteString(a.Fn.Name)
		b.WriteByte('(')
		for i, arg := range a.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(arg.Key())
		}
		b.WriteByte(')')
		a.key = b.String()
	}
	return a.key
}

func (a *Apply) String() string {
	parts := make([]string, len(a.Args))
	for i, arg := range a.Args {
		parts[i] = arg.String()
	}
	return fmt.Sprintf("%s(%s)", a.Fn.Name, strings.Join(parts, ","))
}

// Term is one scaled atom inside a Sum.
type Term struct {
	Coef int64
	Atom Atom
}

// Sum is the canonical linear integer term Const + Σ Coef_i * Atom_i.
// Invariants: no zero coefficients, atoms strictly ordered by Key, each atom
// occurs at most once. A Sum with no terms is an integer constant.
type Sum struct {
	Const int64
	Terms []Term

	key string // memoized canonical form
}

// Sort implements Expr.
func (s *Sum) Sort() Sort { return SortInt }

// Key implements Expr.
func (s *Sum) Key() string {
	if s.key == "" {
		b := make([]byte, 0, 16+24*len(s.Terms))
		b = strconv.AppendInt(b, s.Const, 10)
		for _, t := range s.Terms {
			b = append(b, '+')
			b = strconv.AppendInt(b, t.Coef, 10)
			b = append(b, '*')
			b = append(b, t.Atom.Key()...)
		}
		s.key = string(b)
	}
	return s.key
}

func (s *Sum) String() string {
	if len(s.Terms) == 0 {
		return fmt.Sprintf("%d", s.Const)
	}
	var b strings.Builder
	for i, t := range s.Terms {
		var at string
		switch a := t.Atom.(type) {
		case *Var:
			at = a.String()
		case *Apply:
			at = a.String()
		}
		switch {
		case i == 0 && t.Coef == 1:
			b.WriteString(at)
		case i == 0 && t.Coef == -1:
			b.WriteString("-" + at)
		case i == 0:
			fmt.Fprintf(&b, "%d*%s", t.Coef, at)
		case t.Coef == 1:
			b.WriteString(" + " + at)
		case t.Coef == -1:
			b.WriteString(" - " + at)
		case t.Coef > 0:
			fmt.Fprintf(&b, " + %d*%s", t.Coef, at)
		default:
			fmt.Fprintf(&b, " - %d*%s", -t.Coef, at)
		}
	}
	switch {
	case s.Const > 0:
		fmt.Fprintf(&b, " + %d", s.Const)
	case s.Const < 0:
		fmt.Fprintf(&b, " - %d", -s.Const)
	}
	return b.String()
}

// IsConst reports whether s is an integer constant, and returns its value.
func (s *Sum) IsConst() (int64, bool) {
	if len(s.Terms) == 0 {
		return s.Const, true
	}
	return 0, false
}

// IsVar reports whether s is exactly one variable with coefficient 1 and no
// constant part, and returns it.
func (s *Sum) IsVar() (*Var, bool) {
	if s.Const == 0 && len(s.Terms) == 1 && s.Terms[0].Coef == 1 {
		if v, ok := s.Terms[0].Atom.(*Var); ok {
			return v, true
		}
	}
	return nil, false
}

// IsApply reports whether s is exactly one function application with
// coefficient 1 and no constant part, and returns it.
func (s *Sum) IsApply() (*Apply, bool) {
	if s.Const == 0 && len(s.Terms) == 1 && s.Terms[0].Coef == 1 {
		if a, ok := s.Terms[0].Atom.(*Apply); ok {
			return a, true
		}
	}
	return nil, false
}

// Pool creates variables and function symbols with unique identities.
// The zero value is ready to use. Pool is safe for concurrent use; note that
// under concurrent allocation the numeric IDs handed to each goroutine depend
// on scheduling, so nothing observable may be derived from fresh-variable ID
// values (the engine and solvers only rely on IDs for identity and for the
// per-goroutine monotonic ordering of allocations).
type Pool struct {
	mu       sync.Mutex
	nextVar  int
	nextFunc int
	funcs    map[string]*Func
}

// NewVar returns a fresh symbolic variable named name. The canonical key is
// precomputed here so that concurrent readers of Key() never race on the memo
// field (workers only read keys; all writes happen at allocation or on the
// search coordinator before fan-out).
func (p *Pool) NewVar(name string) *Var {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextVar++
	v := &Var{ID: p.nextVar, Name: name}
	v.key = name + "#" + strconv.Itoa(v.ID)
	return v
}

// FuncSym returns the uninterpreted function symbol with the given name and
// arity, creating it on first use. The same (name) always yields the same
// symbol; requesting it with a different arity is a programming error and
// panics, since unknown functions are assumed to have a fixed signature
// (assumption of Theorem 3).
func (p *Pool) FuncSym(name string, arity int) *Func {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.funcs == nil {
		p.funcs = make(map[string]*Func)
	}
	if f, ok := p.funcs[name]; ok {
		if f.Arity != arity {
			panic(fmt.Sprintf("sym: function %s redeclared with arity %d (was %d)", name, arity, f.Arity))
		}
		if f.Input {
			panic(fmt.Sprintf("sym: input function %s redeclared as an environment symbol", name))
		}
		return f
	}
	p.nextFunc++
	f := &Func{ID: p.nextFunc, Name: name, Arity: arity}
	p.funcs[name] = f
	return f
}

// InputFuncSym is FuncSym for function-valued inputs: the returned symbol has
// Input set. Requesting a name already registered as a non-input symbol (or
// vice versa) panics — a symbol is either an environment unknown or an input,
// never both.
func (p *Pool) InputFuncSym(name string, arity int) *Func {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.funcs == nil {
		p.funcs = make(map[string]*Func)
	}
	if f, ok := p.funcs[name]; ok {
		if f.Arity != arity {
			panic(fmt.Sprintf("sym: function %s redeclared with arity %d (was %d)", name, arity, f.Arity))
		}
		if !f.Input {
			panic(fmt.Sprintf("sym: function %s redeclared as an input symbol", name))
		}
		return f
	}
	p.nextFunc++
	f := &Func{ID: p.nextFunc, Name: name, Arity: arity, Input: true}
	p.funcs[name] = f
	return f
}

// Int returns the constant integer term v.
func Int(v int64) *Sum { return &Sum{Const: v} }

// VarTerm returns the term consisting of the single variable v.
func VarTerm(v *Var) *Sum { return &Sum{Terms: []Term{{Coef: 1, Atom: v}}} }

// ApplyTerm returns the term f(args). It panics if the arity does not match.
func ApplyTerm(f *Func, args ...*Sum) *Sum {
	if len(args) != f.Arity {
		panic(fmt.Sprintf("sym: %s expects %d arguments, got %d", f.Name, f.Arity, len(args)))
	}
	cp := make([]*Sum, len(args))
	copy(cp, args)
	return &Sum{Terms: []Term{{Coef: 1, Atom: &Apply{Fn: f, Args: cp}}}}
}

// AtomTerm returns the term consisting of the single atom a.
func AtomTerm(a Atom) *Sum { return &Sum{Terms: []Term{{Coef: 1, Atom: a}}} }

// AddSum returns a + b in canonical form. Both inputs are canonical (terms
// strictly ordered by atom key), so the result is a linear-time sorted merge;
// when one side contributes nothing the other is returned as-is, preserving
// pointer identity (and the memoized key) of the shared structure.
func AddSum(a, b *Sum) *Sum {
	if len(b.Terms) == 0 {
		if b.Const == 0 {
			return a
		}
		return &Sum{Const: a.Const + b.Const, Terms: a.Terms}
	}
	if len(a.Terms) == 0 {
		if a.Const == 0 {
			return b
		}
		return &Sum{Const: a.Const + b.Const, Terms: b.Terms}
	}
	terms := make([]Term, 0, len(a.Terms)+len(b.Terms))
	i, j := 0, 0
	for i < len(a.Terms) && j < len(b.Terms) {
		ta, tb := a.Terms[i], b.Terms[j]
		if ta.Atom == tb.Atom {
			if c := ta.Coef + tb.Coef; c != 0 {
				terms = append(terms, Term{Coef: c, Atom: ta.Atom})
			}
			i++
			j++
			continue
		}
		switch ka, kb := ta.Atom.Key(), tb.Atom.Key(); {
		case ka < kb:
			terms = append(terms, ta)
			i++
		case ka > kb:
			terms = append(terms, tb)
			j++
		default:
			if c := ta.Coef + tb.Coef; c != 0 {
				terms = append(terms, Term{Coef: c, Atom: ta.Atom})
			}
			i++
			j++
		}
	}
	terms = append(terms, a.Terms[i:]...)
	terms = append(terms, b.Terms[j:]...)
	return &Sum{Const: a.Const + b.Const, Terms: terms}
}

// SubSum returns a - b in canonical form.
func SubSum(a, b *Sum) *Sum { return AddSum(a, ScaleSum(-1, b)) }

// ScaleSum returns k * a in canonical form.
func ScaleSum(k int64, a *Sum) *Sum {
	if k == 0 {
		return Int(0)
	}
	terms := make([]Term, 0, len(a.Terms))
	for _, t := range a.Terms {
		terms = append(terms, Term{Coef: k * t.Coef, Atom: t.Atom})
	}
	return &Sum{Const: k * a.Const, Terms: terms}
}

// MulSum returns a * b if at least one side is constant; ok is false when both
// sides are symbolic (a nonlinear product, which the theory cannot express).
func MulSum(a, b *Sum) (res *Sum, ok bool) {
	if k, isC := a.IsConst(); isC {
		return ScaleSum(k, b), true
	}
	if k, isC := b.IsConst(); isC {
		return ScaleSum(k, a), true
	}
	return nil, false
}

// NegSum returns -a.
func NegSum(a *Sum) *Sum { return ScaleSum(-1, a) }
