package sym

import (
	"bytes"
	"strings"
	"testing"
)

func TestSampleStoreBasics(t *testing.T) {
	var p Pool
	h := p.FuncSym("h", 1)
	g := p.FuncSym("g", 2)
	s := NewSampleStore()

	if !s.Add(h, []int64{42}, 567) {
		t.Fatal("first add should be new")
	}
	if s.Add(h, []int64{42}, 567) {
		t.Fatal("duplicate add should not be new")
	}
	s.Add(h, []int64{10}, 66)
	s.Add(g, []int64{1, 2}, 3)

	if v, ok := s.Lookup(h, []int64{42}); !ok || v != 567 {
		t.Fatalf("lookup h(42) = %d %v", v, ok)
	}
	if _, ok := s.Lookup(h, []int64{99}); ok {
		t.Fatal("h(99) should be unknown")
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := len(s.ForFunc(h)); got != 2 {
		t.Fatalf("ForFunc(h) = %d", got)
	}
	if got := len(s.All()); got != 3 {
		t.Fatalf("All() = %d", got)
	}
	if v, ok := s.FnEval(g, []int64{1, 2}); !ok || v != 3 {
		t.Fatalf("FnEval = %d %v", v, ok)
	}
}

func TestSampleStoreDeterminismPanic(t *testing.T) {
	var p Pool
	h := p.FuncSym("h", 1)
	s := NewSampleStore()
	s.Add(h, []int64{1}, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting sample should panic")
		}
	}()
	s.Add(h, []int64{1}, 6)
}

func TestSampleStoreArityPanic(t *testing.T) {
	var p Pool
	h := p.FuncSym("h", 1)
	s := NewSampleStore()
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity should panic")
		}
	}()
	s.Add(h, []int64{1, 2}, 5)
}

func TestSampleStoreCloneAndMerge(t *testing.T) {
	var p Pool
	h := p.FuncSym("h", 1)
	a := NewSampleStore()
	a.Add(h, []int64{1}, 10)
	b := a.Clone()
	b.Add(h, []int64{2}, 20)
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatalf("clone isolation: a=%d b=%d", a.Len(), b.Len())
	}
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merge: %d", a.Len())
	}
}

func TestSampleStoreArgsCopied(t *testing.T) {
	var p Pool
	h := p.FuncSym("h", 1)
	s := NewSampleStore()
	args := []int64{7}
	s.Add(h, args, 1)
	args[0] = 99 // must not corrupt the store
	if _, ok := s.Lookup(h, []int64{7}); !ok {
		t.Fatal("stored args were aliased")
	}
}

func TestSampleEncodeDecodeRoundTrip(t *testing.T) {
	var p Pool
	h := p.FuncSym("hash", 1)
	g := p.FuncSym("hashstr", 3)
	s := NewSampleStore()
	s.Add(h, []int64{42}, 567)
	s.Add(h, []int64{-3}, 12)
	s.Add(g, []int64{105, 102, 0}, 52)

	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}

	var p2 Pool
	dst := NewSampleStore()
	added, err := DecodeSamples(&buf, dst, &p2)
	if err != nil || added != 3 {
		t.Fatalf("decode: added=%d err=%v", added, err)
	}
	h2 := p2.FuncSym("hash", 1)
	if v, ok := dst.Lookup(h2, []int64{42}); !ok || v != 567 {
		t.Fatalf("round-trip lost hash(42): %d %v", v, ok)
	}
	g2 := p2.FuncSym("hashstr", 3)
	if v, ok := dst.Lookup(g2, []int64{105, 102, 0}); !ok || v != 52 {
		t.Fatalf("round-trip lost hashstr: %d %v", v, ok)
	}
}

func TestDecodeSamplesDuplicatesAndConflicts(t *testing.T) {
	var p Pool
	h := p.FuncSym("hash", 1)
	s := NewSampleStore()
	s.Add(h, []int64{1}, 5)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// Decoding into a store that already has the sample: zero added, no error.
	var p2 Pool
	dst := NewSampleStore()
	dst.Add(p2.FuncSym("hash", 1), []int64{1}, 5)
	added, err := DecodeSamples(bytes.NewReader(buf.Bytes()), dst, &p2)
	if err != nil || added != 0 {
		t.Fatalf("idempotent decode: added=%d err=%v", added, err)
	}
	// Conflicting value: error, no panic.
	var p3 Pool
	dst3 := NewSampleStore()
	dst3.Add(p3.FuncSym("hash", 1), []int64{1}, 6)
	if _, err := DecodeSamples(bytes.NewReader(buf.Bytes()), dst3, &p3); err == nil {
		t.Fatal("conflicting decode should error")
	}
}

func TestDecodeSamplesMalformed(t *testing.T) {
	cases := []string{
		`not json`,
		`[{"fn":"","arity":1,"args":[1],"out":2}]`,
		`[{"fn":"h","arity":2,"args":[1],"out":2}]`,
		`[{"fn":"h","arity":0,"args":[],"out":2}]`,
	}
	for _, c := range cases {
		var p Pool
		if _, err := DecodeSamples(strings.NewReader(c), NewSampleStore(), &p); err == nil {
			t.Fatalf("decode %q should fail", c)
		}
	}
	// Arity clash with an existing symbol.
	var p Pool
	p.FuncSym("h", 3)
	if _, err := DecodeSamples(strings.NewReader(`[{"fn":"h","arity":1,"args":[1],"out":2}]`),
		NewSampleStore(), &p); err == nil {
		t.Fatal("arity clash should fail")
	}
}

func TestSampleString(t *testing.T) {
	var p Pool
	g := p.FuncSym("g", 2)
	smp := Sample{Fn: g, Args: []int64{1, -2}, Out: 7}
	if got := smp.String(); got != "g(1,-2)=7" {
		t.Fatalf("String = %q", got)
	}
}
