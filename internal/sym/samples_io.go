package sym

import (
	"encoding/json"
	"fmt"
	"io"
)

// sampleRecord is the on-disk form of one IOF entry. Input marks samples of
// function-valued *inputs* (callback parameters): their symbols resolve
// through InputFuncSym, which a plain FuncSym lookup would reject.
type sampleRecord struct {
	Fn    string  `json:"fn"`
	Arity int     `json:"arity"`
	Args  []int64 `json:"args"`
	Out   int64   `json:"out"`
	Input bool    `json:"input,omitempty"`
}

// Encode writes the store as JSON (one array of records, insertion order
// preserved). This is the persistence layer behind the paper's suggestion to
// use "all the input-output value pairs observed during all previous runs"
// (Section 5.3) across testing sessions (Section 7).
func (s *SampleStore) Encode(w io.Writer) error {
	all := s.All()
	records := make([]sampleRecord, 0, len(all))
	for _, smp := range all {
		records = append(records, sampleRecord{
			Fn: smp.Fn.Name, Arity: smp.Fn.Arity, Args: smp.Args, Out: smp.Out,
			Input: smp.Fn.Input,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// DecodeSamples reads records written by Encode into dst, resolving function
// names through the given pool (so the samples attach to the same symbols
// the engine uses). Records for functions with a conflicting arity are
// rejected.
func DecodeSamples(r io.Reader, dst *SampleStore, pool *Pool) (int, error) {
	var records []sampleRecord
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return 0, fmt.Errorf("sym: decoding samples: %w", err)
	}
	added := 0
	for i, rec := range records {
		if rec.Fn == "" || rec.Arity <= 0 || len(rec.Args) != rec.Arity {
			return added, fmt.Errorf("sym: sample %d is malformed (fn=%q arity=%d args=%d)",
				i, rec.Fn, rec.Arity, len(rec.Args))
		}
		fn, err := safeFuncSym(pool, rec.Fn, rec.Arity, rec.Input)
		if err != nil {
			return added, fmt.Errorf("sym: sample %d: %w", i, err)
		}
		if prev, ok := dst.Lookup(fn, rec.Args); ok && prev != rec.Out {
			return added, fmt.Errorf("sym: sample %d conflicts with recorded %s(%v)=%d",
				i, rec.Fn, rec.Args, prev)
		}
		if dst.Add(fn, rec.Args, rec.Out) {
			added++
		}
	}
	return added, nil
}

// safeFuncSym resolves a function symbol without panicking on arity or
// input-kind clashes.
func safeFuncSym(pool *Pool, name string, arity int, input bool) (fn *Func, err error) {
	defer func() {
		if recover() != nil {
			err = fmt.Errorf("function %s redeclared with different arity %d", name, arity)
		}
	}()
	if input {
		return pool.InputFuncSym(name, arity), nil
	}
	return pool.FuncSym(name, arity), nil
}
