package sym

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestInputFuncValSamplesRoundTrip pins the Input flag through the samples
// codec: samples of a function-valued input (InputFuncSym) must decode back
// onto an Input symbol in a fresh pool — a plain FuncSym lookup would reject
// the name — while environment unknowns stay non-input. Re-encoding must be
// byte-stable.
func TestInputFuncValSamplesRoundTrip(t *testing.T) {
	var p Pool
	f0 := p.InputFuncSym("f0", 1)
	hash := p.FuncSym("hash", 1)
	s := NewSampleStore()
	s.Add(f0, []int64{0}, 1)
	s.Add(f0, []int64{7}, -2)
	s.Add(hash, []int64{3}, 42)

	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}

	var fresh Pool
	dst := NewSampleStore()
	added, err := DecodeSamples(bytes.NewReader(buf.Bytes()), dst, &fresh)
	if err != nil {
		t.Fatal(err)
	}
	if added != 3 {
		t.Fatalf("added %d samples, want 3", added)
	}
	rf0 := fresh.InputFuncSym("f0", 1)
	if !rf0.Input {
		t.Fatal("decoded f0 lost its Input flag")
	}
	if v, ok := dst.Lookup(rf0, []int64{7}); !ok || v != -2 {
		t.Fatalf("f0(7) = %d %v after round trip", v, ok)
	}
	rhash := fresh.FuncSym("hash", 1)
	if rhash.Input {
		t.Fatal("decoded hash gained an Input flag")
	}
	if v, ok := dst.Lookup(rhash, []int64{3}); !ok || v != 42 {
		t.Fatalf("hash(3) = %d %v after round trip", v, ok)
	}

	var buf2 bytes.Buffer
	if err := dst.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-encode not byte-stable:\n%s\n---\n%s", buf.Bytes(), buf2.Bytes())
	}
}

// TestInputFuncValExprRoundTrip pins the Input flag through the expression
// codec: an Apply of a function-valued input survives EncodeSum → JSON →
// DecodeSum into a fresh pool with Input intact.
func TestInputFuncValExprRoundTrip(t *testing.T) {
	var p Pool
	f0 := p.InputFuncSym("f0", 2)
	x := p.NewVar("x")
	sum := ApplyTerm(f0, VarTerm(x), &Sum{Const: 3})

	rec, err := EncodeSum(sum)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back SumRec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}

	var fresh Pool
	got, err := DecodeSum(&back, NewResolver(&fresh, []*Var{x}))
	if err != nil {
		t.Fatal(err)
	}
	app, ok := got.IsApply()
	if !ok {
		t.Fatalf("decoded sum is not an apply: %s", got)
	}
	if !app.Fn.Input {
		t.Fatal("decoded apply lost the Input flag on its function symbol")
	}
	if app.Fn.Name != "f0" || app.Fn.Arity != 2 {
		t.Fatalf("decoded symbol is %s/%d, want f0/2", app.Fn.Name, app.Fn.Arity)
	}
	if got.String() != sum.String() {
		t.Fatalf("round trip changed the term: %s vs %s", got.String(), sum.String())
	}
}
