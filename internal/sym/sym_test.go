package sym

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntConst(t *testing.T) {
	s := Int(7)
	if v, ok := s.IsConst(); !ok || v != 7 {
		t.Fatalf("Int(7).IsConst() = %d, %v", v, ok)
	}
	if got := s.String(); got != "7" {
		t.Fatalf("Int(7).String() = %q", got)
	}
}

func TestAddSumFoldsConstants(t *testing.T) {
	s := AddSum(Int(3), Int(4))
	if v, ok := s.IsConst(); !ok || v != 7 {
		t.Fatalf("3+4 = %v (const=%v)", s, ok)
	}
}

func TestAddSumMergesAtoms(t *testing.T) {
	var p Pool
	x := p.NewVar("x")
	s := AddSum(VarTerm(x), VarTerm(x)) // x + x = 2x
	if len(s.Terms) != 1 || s.Terms[0].Coef != 2 {
		t.Fatalf("x+x = %v", s)
	}
	z := SubSum(s, ScaleSum(2, VarTerm(x))) // 2x - 2x = 0
	if v, ok := z.IsConst(); !ok || v != 0 {
		t.Fatalf("2x-2x = %v", z)
	}
}

func TestNormalizationIsCanonical(t *testing.T) {
	var p Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	a := AddSum(VarTerm(x), VarTerm(y))
	b := AddSum(VarTerm(y), VarTerm(x))
	if a.Key() != b.Key() {
		t.Fatalf("x+y and y+x have different keys: %q vs %q", a.Key(), b.Key())
	}
}

func TestMulSumLinearOnly(t *testing.T) {
	var p Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	if _, ok := MulSum(VarTerm(x), VarTerm(y)); ok {
		t.Fatal("x*y should be rejected as nonlinear")
	}
	s, ok := MulSum(Int(3), VarTerm(x))
	if !ok || s.Terms[0].Coef != 3 {
		t.Fatalf("3*x = %v, ok=%v", s, ok)
	}
	s, ok = MulSum(VarTerm(x), Int(-2))
	if !ok || s.Terms[0].Coef != -2 {
		t.Fatalf("x*-2 = %v, ok=%v", s, ok)
	}
}

func TestIsVarIsApply(t *testing.T) {
	var p Pool
	x := p.NewVar("x")
	h := p.FuncSym("h", 1)
	if v, ok := VarTerm(x).IsVar(); !ok || v != x {
		t.Fatal("VarTerm(x).IsVar failed")
	}
	app := ApplyTerm(h, VarTerm(x))
	if a, ok := app.IsApply(); !ok || a.Fn != h {
		t.Fatal("ApplyTerm(h,x).IsApply failed")
	}
	if _, ok := AddSum(app, Int(1)).IsApply(); ok {
		t.Fatal("h(x)+1 should not be IsApply")
	}
}

func TestFuncSymIdentity(t *testing.T) {
	var p Pool
	h1 := p.FuncSym("h", 1)
	h2 := p.FuncSym("h", 1)
	if h1 != h2 {
		t.Fatal("FuncSym should return identical symbols for the same name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch should panic")
		}
	}()
	p.FuncSym("h", 2)
}

func TestCmpFolding(t *testing.T) {
	if Eq(Int(1), Int(1)) != True {
		t.Fatal("1=1 should fold to true")
	}
	if Ne(Int(1), Int(1)) != False {
		t.Fatal("1≠1 should fold to false")
	}
	if Lt(Int(1), Int(2)) != True {
		t.Fatal("1<2 should fold to true")
	}
	if Le(Int(3), Int(2)) != False {
		t.Fatal("3≤2 should fold to false")
	}
	if Gt(Int(3), Int(2)) != True {
		t.Fatal("3>2 should fold to true")
	}
	if Ge(Int(2), Int(2)) != True {
		t.Fatal("2≥2 should fold to true")
	}
}

func TestNotExprFolding(t *testing.T) {
	var p Pool
	x := p.NewVar("x")
	c := Eq(VarTerm(x), Int(5)).(*Cmp)
	n := NotExpr(c)
	nc, ok := n.(*Cmp)
	if !ok || nc.Op != OpNe {
		t.Fatalf("¬(x=5) = %v", n)
	}
	if NotExpr(True) != False || NotExpr(False) != True {
		t.Fatal("constant negation failed")
	}
	and := AndExpr(c, Le(VarTerm(x), Int(3)))
	if got := NotExpr(NotExpr(and)); got.Key() != and.Key() {
		t.Fatalf("double negation: %v", got)
	}
}

func TestAndOrFolding(t *testing.T) {
	var p Pool
	x := p.NewVar("x")
	c := Eq(VarTerm(x), Int(1))
	if AndExpr() != True {
		t.Fatal("empty And should be true")
	}
	if OrExpr() != False {
		t.Fatal("empty Or should be false")
	}
	if AndExpr(c, False) != False {
		t.Fatal("And with false should fold")
	}
	if OrExpr(c, True) != True {
		t.Fatal("Or with true should fold")
	}
	if AndExpr(True, c) != c {
		t.Fatal("And(true, c) should be c")
	}
	nested := AndExpr(AndExpr(c, c), c)
	if a, ok := nested.(*And); !ok || len(a.Xs) != 3 {
		t.Fatalf("nested And not flattened: %v", nested)
	}
}

func TestCmpNegateSemantics(t *testing.T) {
	var p Pool
	x := p.NewVar("x")
	cases := []Expr{
		Eq(VarTerm(x), Int(5)),
		Ne(VarTerm(x), Int(5)),
		Le(VarTerm(x), Int(5)),
		Lt(VarTerm(x), Int(5)),
		Ge(VarTerm(x), Int(5)),
		Gt(VarTerm(x), Int(5)),
	}
	for _, c := range cases {
		for v := int64(-10); v <= 10; v++ {
			env := Env{Vars: map[int]int64{x.ID: v}}
			a, err := EvalBool(c, env)
			if err != nil {
				t.Fatal(err)
			}
			b, err := EvalBool(NotExpr(c), env)
			if err != nil {
				t.Fatal(err)
			}
			if a == b {
				t.Fatalf("negation of %v agrees at x=%d", c, v)
			}
		}
	}
}

func TestEvalApply(t *testing.T) {
	var p Pool
	x := p.NewVar("x")
	h := p.FuncSym("h", 1)
	e := AddSum(ApplyTerm(h, VarTerm(x)), Int(1)) // h(x)+1
	env := Env{
		Vars: map[int]int64{x.ID: 4},
		Fn: func(f *Func, args []int64) (int64, bool) {
			return args[0] * 10, true
		},
	}
	v, err := EvalSum(e, env)
	if err != nil || v != 41 {
		t.Fatalf("h(4)+1 = %d, err=%v", v, err)
	}
}

func TestEvalMissing(t *testing.T) {
	var p Pool
	x := p.NewVar("x")
	if _, err := EvalSum(VarTerm(x), Env{}); err == nil {
		t.Fatal("missing variable should error")
	}
	h := p.FuncSym("h", 1)
	env := Env{Vars: map[int]int64{x.ID: 1}, Fn: func(*Func, []int64) (int64, bool) { return 0, false }}
	if _, err := EvalSum(ApplyTerm(h, VarTerm(x)), env); err == nil {
		t.Fatal("unsampled function should error")
	}
}

func TestVarsAndApplies(t *testing.T) {
	var p Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	g := p.FuncSym("g", 2)
	e := AndExpr(
		Eq(VarTerm(x), ApplyTerm(h, VarTerm(y))),
		Le(ApplyTerm(g, VarTerm(x), ApplyTerm(h, Int(3))), Int(0)),
	)
	vs := Vars(e)
	if len(vs) != 2 || vs[0] != x || vs[1] != y {
		t.Fatalf("Vars = %v", vs)
	}
	apps := Applies(e)
	if len(apps) != 3 {
		t.Fatalf("Applies = %v (want h(y), h(3), g(x,h(3)))", apps)
	}
	if !HasApply(e) {
		t.Fatal("HasApply should be true")
	}
	if HasApply(Eq(VarTerm(x), Int(1))) {
		t.Fatal("HasApply on pure formula should be false")
	}
}

func TestSubstVars(t *testing.T) {
	var p Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	// x + h(y)  with  x := 2y+1
	e := AddSum(VarTerm(x), ApplyTerm(h, VarTerm(y)))
	got := SubstVarsSum(e, map[int]*Sum{x.ID: AddSum(ScaleSum(2, VarTerm(y)), Int(1))})
	env := Env{
		Vars: map[int]int64{y.ID: 3},
		Fn:   func(f *Func, args []int64) (int64, bool) { return args[0] + 100, true },
	}
	v, err := EvalSum(got, env)
	if err != nil || v != 2*3+1+103 {
		t.Fatalf("subst eval = %d, err=%v", v, err)
	}
	// Substitution must reach inside application arguments.
	e2 := ApplyTerm(h, VarTerm(x))
	got2 := SubstVarsSum(e2, map[int]*Sum{x.ID: Int(9)})
	a, ok := got2.IsApply()
	if !ok {
		t.Fatalf("subst inside apply = %v", got2)
	}
	if v, ok := a.Args[0].IsConst(); !ok || v != 9 {
		t.Fatalf("apply arg after subst = %v", a.Args[0])
	}
}

func TestRewriteApplies(t *testing.T) {
	var p Pool
	x := p.NewVar("x")
	h := p.FuncSym("h", 1)
	// h(h(x)): rewrite inner h(x)→5 first, then outer h(5)→7.
	e := ApplyTerm(h, ApplyTerm(h, VarTerm(x)))
	e = SubstVarsSum(e, map[int]*Sum{x.ID: Int(1)}) // h(h(1))
	got := RewriteAppliesSum(e, func(a *Apply) (*Sum, bool) {
		if v, ok := a.Args[0].IsConst(); ok {
			switch v {
			case 1:
				return Int(5), true
			case 5:
				return Int(7), true
			}
		}
		return nil, false
	})
	if v, ok := got.IsConst(); !ok || v != 7 {
		t.Fatalf("h(h(1)) rewrote to %v", got)
	}
}

func TestConjuncts(t *testing.T) {
	var p Pool
	x := p.NewVar("x")
	a := Eq(VarTerm(x), Int(1))
	b := Ne(VarTerm(x), Int(2))
	c := Le(VarTerm(x), Int(3))
	e := AndExpr(a, AndExpr(b, c))
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %v", cs)
	}
	if len(Conjuncts(True)) != 0 {
		t.Fatal("Conjuncts(true) should be empty")
	}
	if len(Conjuncts(a)) != 1 {
		t.Fatal("Conjuncts(atom) should be singleton")
	}
}

// randSum builds a random linear term over the given variables.
func randSum(r *rand.Rand, vars []*Var) *Sum {
	s := Int(int64(r.Intn(21) - 10))
	for _, v := range vars {
		if r.Intn(2) == 0 {
			s = AddSum(s, ScaleSum(int64(r.Intn(7)-3), VarTerm(v)))
		}
	}
	return s
}

// TestQuickSumAlgebra checks, by random evaluation, that the canonical-form
// constructors respect integer arithmetic: (a+b)-b = a, k*(a+b) = k*a + k*b.
func TestQuickSumAlgebra(t *testing.T) {
	var p Pool
	vars := []*Var{p.NewVar("a"), p.NewVar("b"), p.NewVar("c")}
	r := rand.New(rand.NewSource(1))
	f := func(va, vb, vc int8, k int8) bool {
		env := Env{Vars: map[int]int64{
			vars[0].ID: int64(va), vars[1].ID: int64(vb), vars[2].ID: int64(vc),
		}}
		a, b := randSum(r, vars), randSum(r, vars)
		ev := func(s *Sum) int64 {
			v, err := EvalSum(s, env)
			if err != nil {
				t.Fatal(err)
			}
			return v
		}
		if ev(SubSum(AddSum(a, b), b)) != ev(a) {
			return false
		}
		lhs := ScaleSum(int64(k), AddSum(a, b))
		rhs := AddSum(ScaleSum(int64(k), a), ScaleSum(int64(k), b))
		if ev(lhs) != ev(rhs) {
			return false
		}
		if lhs.Key() != rhs.Key() {
			return false // canonical forms must coincide, not just values
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNormalInvariant checks the Sum invariants on random combinations:
// atoms sorted strictly by key and no zero coefficients.
func TestQuickNormalInvariant(t *testing.T) {
	var p Pool
	vars := []*Var{p.NewVar("a"), p.NewVar("b"), p.NewVar("c"), p.NewVar("d")}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		s := randSum(r, vars)
		for j := 0; j < 3; j++ {
			s = AddSum(s, randSum(r, vars))
		}
		for j, tm := range s.Terms {
			if tm.Coef == 0 {
				t.Fatalf("zero coefficient in %v", s)
			}
			if j > 0 && s.Terms[j-1].Atom.Key() >= tm.Atom.Key() {
				t.Fatalf("atoms out of order in %v", s)
			}
		}
	}
}
