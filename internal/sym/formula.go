package sym

import (
	"fmt"
	"strings"
)

// CmpOp is a comparison operator of a normalized atomic constraint.
// Every comparison a ⋈ b is normalized to (a-b) ⋈' 0 where ⋈' ∈ {=, ≠, ≤}:
// strict < is folded into ≤ by adding 1 (integers), and >,≥ by negating the
// left-hand side.
type CmpOp int

const (
	// OpEq asserts S = 0.
	OpEq CmpOp = iota
	// OpNe asserts S ≠ 0.
	OpNe
	// OpLe asserts S ≤ 0.
	OpLe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLe:
		return "<="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Bool is the boolean constant true or false.
type Bool struct{ V bool }

// True and False are the two boolean constants.
var (
	True  = &Bool{V: true}
	False = &Bool{V: false}
)

// Sort implements Expr.
func (b *Bool) Sort() Sort { return SortBool }

// Key implements Expr.
func (b *Bool) Key() string {
	if b.V {
		return "true"
	}
	return "false"
}

func (b *Bool) String() string { return b.Key() }

// Cmp is the normalized atomic constraint S op 0.
type Cmp struct {
	Op CmpOp
	S  *Sum

	key string
}

// Sort implements Expr.
func (c *Cmp) Sort() Sort { return SortBool }

// Key implements Expr.
func (c *Cmp) Key() string {
	if c.key == "" {
		c.key = "(" + c.S.Key() + " " + c.Op.String() + " 0)"
	}
	return c.key
}

func (c *Cmp) String() string { return fmt.Sprintf("%s %s 0", c.S, c.Op) }

// Negate returns the complement of the atomic constraint c.
func (c *Cmp) Negate() Expr {
	switch c.Op {
	case OpEq:
		return &Cmp{Op: OpNe, S: c.S}
	case OpNe:
		return &Cmp{Op: OpEq, S: c.S}
	case OpLe:
		// ¬(S ≤ 0)  ⇔  S > 0  ⇔  S ≥ 1  ⇔  1-S ≤ 0.
		return &Cmp{Op: OpLe, S: AddSum(Int(1), NegSum(c.S))}
	}
	panic("sym: bad CmpOp")
}

// Not is boolean negation.
type Not struct {
	X Expr

	key string
}

// Sort implements Expr.
func (n *Not) Sort() Sort { return SortBool }

// Key implements Expr.
func (n *Not) Key() string {
	if n.key == "" {
		n.key = "(not " + n.X.Key() + ")"
	}
	return n.key
}

func (n *Not) String() string { return "!(" + fmt.Sprint(n.X) + ")" }

// And is n-ary conjunction.
type And struct {
	Xs []Expr

	key string
}

// Sort implements Expr.
func (a *And) Sort() Sort { return SortBool }

// Key implements Expr.
func (a *And) Key() string {
	if a.key == "" {
		parts := make([]string, len(a.Xs))
		for i, x := range a.Xs {
			parts[i] = x.Key()
		}
		a.key = "(and " + strings.Join(parts, " ") + ")"
	}
	return a.key
}

func (a *And) String() string { return joinBool(a.Xs, " && ") }

// Or is n-ary disjunction.
type Or struct {
	Xs []Expr

	key string
}

// Sort implements Expr.
func (o *Or) Sort() Sort { return SortBool }

// Key implements Expr.
func (o *Or) Key() string {
	if o.key == "" {
		parts := make([]string, len(o.Xs))
		for i, x := range o.Xs {
			parts[i] = x.Key()
		}
		o.key = "(or " + strings.Join(parts, " ") + ")"
	}
	return o.key
}

func (o *Or) String() string { return joinBool(o.Xs, " || ") }

func joinBool(xs []Expr, sep string) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = "(" + fmt.Sprint(x) + ")"
	}
	return strings.Join(parts, sep)
}

func cmp(op CmpOp, s *Sum) Expr {
	if v, ok := s.IsConst(); ok {
		var hold bool
		switch op {
		case OpEq:
			hold = v == 0
		case OpNe:
			hold = v != 0
		case OpLe:
			hold = v <= 0
		}
		if hold {
			return True
		}
		return False
	}
	return &Cmp{Op: op, S: s}
}

// Eq returns the formula a = b.
func Eq(a, b *Sum) Expr { return cmp(OpEq, SubSum(a, b)) }

// Ne returns the formula a ≠ b.
func Ne(a, b *Sum) Expr { return cmp(OpNe, SubSum(a, b)) }

// Le returns the formula a ≤ b.
func Le(a, b *Sum) Expr { return cmp(OpLe, SubSum(a, b)) }

// Lt returns the formula a < b (folded to a+1 ≤ b over the integers).
func Lt(a, b *Sum) Expr { return cmp(OpLe, AddSum(SubSum(a, b), Int(1))) }

// Ge returns the formula a ≥ b.
func Ge(a, b *Sum) Expr { return Le(b, a) }

// Gt returns the formula a > b.
func Gt(a, b *Sum) Expr { return Lt(b, a) }

// NotExpr returns the negation of x, folding constants and atomic constraints.
func NotExpr(x Expr) Expr {
	switch e := x.(type) {
	case *Bool:
		if e.V {
			return False
		}
		return True
	case *Cmp:
		return e.Negate()
	case *Not:
		return e.X
	}
	return &Not{X: x}
}

// AndExpr returns the conjunction of xs, flattening nested conjunctions and
// folding constants.
func AndExpr(xs ...Expr) Expr {
	out := make([]Expr, 0, len(xs))
	for _, x := range xs {
		switch e := x.(type) {
		case *Bool:
			if !e.V {
				return False
			}
		case *And:
			out = append(out, e.Xs...)
		default:
			out = append(out, x)
		}
	}
	switch len(out) {
	case 0:
		return True
	case 1:
		return out[0]
	}
	return &And{Xs: out}
}

// OrExpr returns the disjunction of xs, flattening nested disjunctions and
// folding constants.
func OrExpr(xs ...Expr) Expr {
	out := make([]Expr, 0, len(xs))
	for _, x := range xs {
		switch e := x.(type) {
		case *Bool:
			if e.V {
				return True
			}
		case *Or:
			out = append(out, e.Xs...)
		default:
			out = append(out, x)
		}
	}
	switch len(out) {
	case 0:
		return False
	case 1:
		return out[0]
	}
	return &Or{Xs: out}
}

// Implies returns a ⇒ b.
func Implies(a, b Expr) Expr { return OrExpr(NotExpr(a), b) }
