package eval

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"

	"hotg/internal/campaign"
	"hotg/internal/concolic"
	"hotg/internal/lexapp"
	"hotg/internal/obs"
	"hotg/internal/search"
)

// scanFlushedTrace validates a kill -9 survivor's trace file: every line must
// parse as an obs.Event with ascending sequence numbers — except the final
// line, which may be a truncated tail if the kill landed between buffered
// writes. It returns the number of checkpoint events on disk and whether the
// tail was truncated.
func scanFlushedTrace(path string) (checkpoints int, truncated bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 1<<20)
	var lastSeq int64
	var pendingErr error
	for sc.Scan() {
		if pendingErr != nil {
			// A malformed line followed by more lines is corruption, not a
			// truncated tail.
			return checkpoints, false, pendingErr
		}
		var ev obs.Event
		if e := json.Unmarshal(sc.Bytes(), &ev); e != nil {
			pendingErr = fmt.Errorf("line after seq %d: %w", lastSeq, e)
			continue
		}
		if ev.Seq <= lastSeq {
			return checkpoints, false, fmt.Errorf("sequence not ascending: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Kind == "checkpoint" {
			checkpoints++
		}
	}
	if err := sc.Err(); err != nil {
		return checkpoints, false, err
	}
	return checkpoints, pendingErr != nil, nil
}

// A5CampaignResume measures the persistent-campaign guarantee on the
// Section 7 lexer: a campaign killed at an arbitrary checkpoint and resumed
// in a new session reproduces the uninterrupted run exactly — same final
// statistics byte for byte, same bug buckets — and a later session re-running
// over the saved corpus reports every previously found bug exactly once per
// bucket (triage deduplication across sessions).
func A5CampaignResume(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "A5",
		Title: "persistent campaigns: kill, resume, and triage across sessions (§7 lexer)",
		PaperClaim: "\"the test generation process can be run over a long period of time\" (§7): " +
			"persisted samples — and here the whole search state — let testing sessions stop and " +
			"resume without losing or double-counting results",
		Columns: []string{"session", "runs", "tests", "bugs", "buckets (new)", "corpus", "checkpoints"},
	}
	budget := cfg.Budget
	if budget > 300 {
		budget = 300 // the guarantee is budget-independent; keep A5 cheap
	}
	w := lexapp.Lexer()
	mode := concolic.ModeHigherOrder
	every := budget / 10
	if every < 2 {
		every = 2
	}

	tmp, err := os.MkdirTemp("", "hotg-a5-")
	if err != nil {
		t.claim(false, "create campaign directories: %v", err)
		return t
	}
	defer os.RemoveAll(tmp)

	row := func(name string, st *search.Stats, c *campaign.Campaign) {
		buckets, entries := "—", "—"
		if c != nil {
			buckets = fmt.Sprintf("%d (%d)", len(c.Buckets()), c.NewBuckets())
			entries = fmt.Sprintf("%d", len(c.Entries()))
		}
		t.addRow(name, fmt.Sprintf("%d", st.Runs), fmt.Sprintf("%d", st.TestsGenerated),
			fmt.Sprintf("%d", len(st.Bugs)), buckets, entries, fmt.Sprintf("%d", st.Checkpoints))
	}
	fail := func(format string, args ...interface{}) *Table {
		t.claim(false, format, args...)
		return t
	}

	// Uninterrupted reference campaign.
	refDir := tmp + "/ref"
	refCamp, err := campaign.Open(refDir, w.Name, mode.String(), cfg.Obs)
	if err != nil {
		return fail("open reference campaign: %v", err)
	}
	ref := runSearch(cfg, w, mode, search.Options{MaxRuns: budget, OnRun: refCamp.RecordRun})
	if err := refCamp.Commit(); err != nil {
		return fail("commit reference campaign: %v", err)
	}
	row("uninterrupted", ref, refCamp)
	refCanon, err := ref.Canonical()
	if err != nil {
		return fail("canonicalize reference stats: %v", err)
	}

	// Session 1: killed (context cancellation) after its second checkpoint.
	// It streams a JSONL trace to disk and is never Closed — simulating a
	// kill -9 — to check the checkpoint-boundary Flush guarantee: the on-disk
	// prefix stays valid JSONL through the last checkpoint.
	dir := tmp + "/camp"
	c1, err := campaign.Open(dir, w.Name, mode.String(), cfg.Obs)
	if err != nil {
		return fail("open campaign: %v", err)
	}
	tracePath := tmp + "/session1-trace.jsonl"
	traceFile, err := os.Create(tracePath)
	if err != nil {
		return fail("create session 1 trace: %v", err)
	}
	var reg *obs.Registry
	if cfg.Obs != nil {
		reg = cfg.Obs.Metrics
	}
	o1 := &obs.Obs{Metrics: reg, Trace: obs.NewTracer(traceFile)}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	saved := 0
	st1 := runSearch(cfg, w, mode, search.Options{
		MaxRuns: budget, OnRun: c1.RecordRun, Ctx: ctx, Obs: o1,
		Checkpoint: search.CheckpointOptions{Every: every, Sink: func(s *search.Snapshot) error {
			if err := c1.SaveCheckpoint(s); err != nil {
				return err
			}
			if saved++; saved == 2 {
				cancel()
			}
			return nil
		}},
	})
	if err := c1.Commit(); err != nil {
		return fail("commit interrupted session: %v", err)
	}
	// No tracer Close, no final flush: only what checkpoint-boundary flushes
	// (and bufio overflow) pushed out is on disk, as after a real kill -9.
	if err := traceFile.Close(); err != nil {
		return fail("close session 1 trace file: %v", err)
	}
	row("1: killed mid-search", st1, c1)
	t.claim(st1.Budget.Cancelled && st1.Runs < ref.Runs,
		"session 1 was killed mid-search (%d of %d runs)", st1.Runs, ref.Runs)

	ckpts, truncated, parseErr := scanFlushedTrace(tracePath)
	t.claim(parseErr == nil,
		"the killed session's on-disk trace is valid JSONL through the last flushed event "+
			"(only the final unflushed line may be cut short; truncated tail: %v)", truncated)
	t.claim(ckpts >= 2,
		"the flushed prefix includes every checkpoint boundary event (%d checkpoints on disk, %d taken)",
		ckpts, st1.Checkpoints)

	// Session 2: resume from the campaign's latest checkpoint.
	c2, err := campaign.Open(dir, w.Name, mode.String(), cfg.Obs)
	if err != nil {
		return fail("reopen campaign: %v", err)
	}
	snap, err := c2.LatestCheckpoint()
	if err != nil || snap == nil {
		return fail("load latest checkpoint: snap=%v err=%v", snap != nil, err)
	}
	eng := concolic.New(w.Build(), mode)
	if err := snap.Validate(eng); err != nil {
		return fail("validate checkpoint: %v", err)
	}
	st2 := search.Run(eng, search.Options{
		MaxRuns: budget, Seeds: w.Seeds, Bounds: w.Bounds, Obs: cfg.Obs,
		Restore: snap, OnRun: c2.RecordRun,
		Checkpoint: search.CheckpointOptions{Every: every, Sink: c2.SaveCheckpoint},
	})
	if err := c2.Commit(); err != nil {
		return fail("commit resumed session: %v", err)
	}
	row(fmt.Sprintf("2: resumed at run %d", snap.Runs), st2, c2)

	gotCanon, err := st2.Canonical()
	if err != nil {
		return fail("canonicalize resumed stats: %v", err)
	}
	t.claim(string(gotCanon) == string(refCanon),
		"the resumed session's final state is bit-identical to the uninterrupted run "+
			"(runs %d, tests %d, coverage %d/%d)",
		st2.Runs, st2.TestsGenerated, st2.BranchSidesCovered(), st2.BranchSidesTotal())

	refBuckets, gotBuckets := refCamp.Buckets(), c2.Buckets()
	sameBuckets := len(refBuckets) == len(gotBuckets)
	if sameBuckets {
		for i := range refBuckets {
			if refBuckets[i].Signature != gotBuckets[i].Signature {
				sameBuckets = false
				break
			}
		}
	}
	t.claim(sameBuckets && len(gotBuckets) > 0,
		"the interrupted-and-resumed campaign found the same %d bug buckets as the uninterrupted one",
		len(refBuckets))

	// Session 3: a fresh run over the saved corpus — every bug deduplicates
	// into its existing bucket.
	c3, err := campaign.Open(dir, w.Name, mode.String(), cfg.Obs)
	if err != nil {
		return fail("reopen campaign for session 3: %v", err)
	}
	seeds := c3.SeedInputs(0)
	if len(seeds) == 0 {
		return fail("saved corpus yielded no seeds")
	}
	entriesBefore := len(c3.Entries())
	before := map[string]int{}
	for _, b := range c3.Buckets() {
		before[b.Signature] = b.Session
	}
	st3 := runSearch(cfg, w, mode, search.Options{MaxRuns: budget, Seeds: seeds, OnRun: c3.RecordRun})
	if err := c3.Commit(); err != nil {
		return fail("commit session 3: %v", err)
	}
	row("3: re-run over corpus", st3, c3)
	// Every bucket known before session 3 keeps its original first-discovery
	// session: rediscovered bugs deduplicate into existing buckets instead of
	// being reported as new. Buckets the session did create are genuinely new
	// failure classes (first seen in session 3).
	dedupOK := true
	newOK := 0
	for _, b := range c3.Buckets() {
		if sess, known := before[b.Signature]; known {
			if b.Session != sess {
				dedupOK = false
			}
		} else {
			if b.Session != c3.Session {
				dedupOK = false
			}
			newOK++
		}
	}
	t.claim(len(st3.Bugs) > 0 && dedupOK && newOK == c3.NewBuckets(),
		"re-running over the saved corpus re-found bugs (%d occurrences): every known bug "+
			"deduplicated into its existing bucket, and only never-seen failure classes (%d) opened new ones",
		len(st3.Bugs), c3.NewBuckets())
	t.note("corpus entries before session 3: %d, after: %d (content addressing deduplicates re-found inputs)",
		entriesBefore, len(c3.Entries()))
	t.note("the determinism guarantee and its caveats (matching options, timing fields) are spelled out in DESIGN.md §9")
	return t
}
