package eval

import (
	"fmt"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/faults"
	"hotg/internal/lexapp"
	"hotg/internal/search"
)

// A4BudgetedSearch measures what budgeted search gives up — and keeps — on the
// Section 7 lexer when validity proofs are cut short. Four higher-order
// configurations bracket the design space:
//
//   - unbudgeted: the reference trajectory;
//   - generous: a per-proof deadline so large it never fires, which must be
//     bit-identical to unbudgeted (budgets are pay-when-fired);
//   - ladder: every proof forced to time out (fault injection, so the row is
//     deterministic on any machine), with degradation enabled — all tests then
//     come from the quantifier-free and concretization rungs;
//   - tight 1ms: a real wall-clock deadline, illustrative rather than
//     machine-checked since its numbers depend on host speed.
//
// The paper's §5 precision ladder predicts the shape: the ladder row loses
// the proof rung entirely yet still beats plain DART on coverage, because
// even option (1)–(2) reasoning over the recorded samples outperforms never
// negating unknown-function constraints at all.
func A4BudgetedSearch(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "A4",
		Title: "budgeted search: degradation down the precision ladder (§7 lexer)",
		PaperClaim: "\"options (1) (concretization, unsound) … (2) sound but weak quantifier-free " +
			"reasoning … (3) validity proofs\" (§5): when proofs exceed their budget, falling to " +
			"the lower options should degrade precision gracefully, not collapse to zero",
		Columns: []string{"configuration", "runs", "tests", "proof/qf/conc", "degraded", "timeouts", "branch sides", "bug found"},
	}
	budget := cfg.Budget
	if budget > 300 {
		budget = 300 // the shape shows at CI size; keep A4 cheap
	}
	w := lexapp.Lexer()
	row := func(name string, st *search.Stats) {
		bs := st.Budget
		t.addRow(name, fmt.Sprintf("%d", st.Runs), fmt.Sprintf("%d", st.TestsGenerated),
			fmt.Sprintf("%d/%d/%d", bs.TestsByRung[search.RungProof], bs.TestsByRung[search.RungQF],
				bs.TestsByRung[search.RungConcretize]),
			fmt.Sprintf("%d", bs.Degraded()), fmt.Sprintf("%d", bs.ProofTimeouts),
			fmt.Sprintf("%d/%d", st.BranchSidesCovered(), st.BranchSidesTotal()), foundBug(st))
	}

	dart := runSearch(cfg, lexapp.Lexer(), concolic.ModeUnsound, search.Options{MaxRuns: budget})
	row("dart-unsound (floor)", dart)

	ref := runSearch(cfg, w, concolic.ModeHigherOrder, search.Options{MaxRuns: budget})
	row("higher-order, unbudgeted", ref)

	generous := runSearch(cfg, lexapp.Lexer(), concolic.ModeHigherOrder, search.Options{
		MaxRuns: budget, Budget: search.Budget{ProofTimeout: time.Hour},
	})
	row("higher-order, generous budget", generous)
	t.claim(generous.TestsGenerated == ref.TestsGenerated &&
		generous.BranchSidesCovered() == ref.BranchSidesCovered() &&
		generous.Paths() == ref.Paths() &&
		generous.ProverProved == ref.ProverProved,
		"a budget that never fires is bit-identical to no budget (tests %d, coverage %d, paths %d)",
		generous.TestsGenerated, generous.BranchSidesCovered(), generous.Paths())
	t.claim(generous.Budget.ProofTimeouts == 0 && generous.Budget.Degraded() == 0,
		"the generous deadline never fired")

	// Force every proof to time out, deterministically, via fault injection;
	// the degradation ladder must carry the whole search.
	restore := faults.Set(&faults.Plan{ProveTimeout: true})
	ladder := runSearch(cfg, lexapp.Lexer(), concolic.ModeHigherOrder, search.Options{
		MaxRuns: budget, Budget: search.Budget{Degrade: true},
	})
	restore()
	row("higher-order, all proofs cut (ladder)", ladder)
	t.claim(ladder.Budget.ProofTimeouts > 0 && ladder.ProverProved == 0,
		"every validity proof was cut short (%d timeouts, 0 proved)", ladder.Budget.ProofTimeouts)
	t.claim(ladder.Budget.TestsByRung[search.RungProof] == 0 &&
		ladder.Budget.TestsByRung[search.RungQF]+ladder.Budget.TestsByRung[search.RungConcretize] == ladder.TestsGenerated,
		"all %d tests came from the qf/concretize rungs (%d/%d)", ladder.TestsGenerated,
		ladder.Budget.TestsByRung[search.RungQF], ladder.Budget.TestsByRung[search.RungConcretize])
	t.claim(ladder.BranchSidesCovered() >= dart.BranchSidesCovered(),
		"the degraded ladder still covers at least plain DART (%d vs %d branch sides)",
		ladder.BranchSidesCovered(), dart.BranchSidesCovered())

	tight := runSearch(cfg, lexapp.Lexer(), concolic.ModeHigherOrder, search.Options{
		MaxRuns: budget, Budget: search.Budget{ProofTimeout: time.Millisecond, Degrade: true},
	})
	row("higher-order, 1ms proofs + degrade", tight)
	t.claim(tight.Runs <= budget && tight.Budget.Configured,
		"the tight-budget run completes within its execution budget and reports budget activity")
	t.note("the 1ms row depends on host speed (its timeout/degradation split is illustrative); " +
		"the ladder row injects timeouts so its claims are machine-independent")
	t.note("degradation keeps DART's floor because rung 2 still reasons over recorded samples " +
		"and rung 1 replicates DART's concretization exactly (DESIGN.md §8)")
	return t
}
