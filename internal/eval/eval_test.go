package eval

import (
	"strings"
	"testing"
)

// quick config for CI-speed experiment regression.
func quick() Config { return Config{Quick: true, Budget: 300, Seed: 1} }

// TestAllExperimentsClaimsHold runs every experiment in quick mode and
// asserts that each machine-checked paper claim holds.
func TestAllExperimentsClaimsHold(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(quick())
			if tab.ID != e.ID {
				t.Fatalf("table ID %s != %s", tab.ID, e.ID)
			}
			for _, c := range tab.Failed() {
				t.Errorf("claim failed: %s", c.Text)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			if out := tab.Render(); !strings.Contains(out, tab.Title) {
				t.Fatal("render missing title")
			}
		})
	}
}

func TestGetExperiment(t *testing.T) {
	if _, ok := Get("E12"); !ok {
		t.Fatal("E12 missing")
	}
	if _, ok := Get("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Columns: []string{"a", "bbb"}}
	tab.addRow("xxxx", "y")
	tab.note("hello %d", 7)
	tab.claim(true, "fine")
	tab.claim(false, "broken")
	out := tab.Render()
	for _, want := range []string{"T — demo", "xxxx", "note: hello 7", "[PASS]: fine", "[FAIL]: broken"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
	if len(tab.Failed()) != 1 {
		t.Fatalf("Failed() = %v", tab.Failed())
	}
}
