package eval

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"

	"hotg/internal/concolic"
	"hotg/internal/fol"
	"hotg/internal/fuzz"
	"hotg/internal/lexapp"
	"hotg/internal/mini"
	"hotg/internal/search"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// dynamicModes are the four execution-based techniques plus the static
// baseline, in report order.
var allModes = []concolic.Mode{
	concolic.ModeStatic,
	concolic.ModeUnsound,
	concolic.ModeSound,
	concolic.ModeSoundDelayed,
	concolic.ModeHigherOrder,
}

func runSearch(cfg Config, w *lexapp.Workload, mode concolic.Mode, opts search.Options) *search.Stats {
	eng := concolic.New(w.Build(), mode)
	if opts.Seeds == nil {
		opts.Seeds = w.Seeds
	}
	if opts.Bounds == nil {
		opts.Bounds = w.Bounds
	}
	if opts.Obs == nil {
		opts.Obs = cfg.Obs
	}
	if !opts.Budget.Active() && (cfg.ProofTimeout > 0 || cfg.Degrade) {
		opts.Budget = search.Budget{ProofTimeout: cfg.ProofTimeout, Degrade: cfg.Degrade}
	}
	return search.Run(eng, opts)
}

func foundBug(st *search.Stats) string {
	if n := len(st.ErrorSitesFound()); n > 0 {
		return fmt.Sprintf("yes (%d)", n)
	}
	return "no"
}

func firstBugRun(st *search.Stats) string {
	best := -1
	for _, b := range st.Bugs {
		if b.Kind == mini.StopError && (best == -1 || b.Run < best) {
			best = b.Run
		}
	}
	if best == -1 {
		return "—"
	}
	return fmt.Sprintf("%d", best)
}

// E1Obscure reproduces the introduction: on obscure(), static test generation
// cannot generate tests for either branch, while every dynamic technique
// covers both branches within a couple of runs.
func E1Obscure(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E1",
		Title: "obscure(): static vs dynamic test generation",
		PaperClaim: "\"static test generation is unable to generate test inputs to control the " +
			"execution of the program obscure, while dynamic test generation can easily drive " +
			"the executions of that same program through all its feasible program paths\" (§1)",
		Columns: []string{"technique", "bug found", "first-bug run", "runs", "branch sides", "incomplete"},
	}
	w := lexapp.Obscure()
	st := fuzz.Run(w.Build(), fuzz.Options{MaxRuns: 50, Seeds: w.Seeds, Rand: rand.New(rand.NewSource(cfg.Seed))})
	t.addRow("blackbox-random", foundBug(st), firstBugRun(st), fmt.Sprintf("%d", st.Runs),
		fmt.Sprintf("%d/%d", st.BranchSidesCovered(), st.BranchSidesTotal()), "-")
	t.claim(len(st.ErrorSitesFound()) == 0, "blackbox random testing cannot crack the hash guard")

	for _, mode := range allModes {
		st := runSearch(cfg, lexapp.Obscure(), mode, search.Options{MaxRuns: 50})
		t.addRow(mode.String(), foundBug(st), firstBugRun(st), fmt.Sprintf("%d", st.Runs),
			fmt.Sprintf("%d/%d", st.BranchSidesCovered(), st.BranchSidesTotal()),
			fmt.Sprintf("%v", st.Incomplete))
		found := len(st.ErrorSitesFound()) > 0
		if mode == concolic.ModeStatic {
			t.claim(!found && st.Incomplete, "static test generation is helpless on obscure()")
		} else {
			t.claim(found && st.Runs <= 3, "%v finds the bug within 3 runs", mode)
		}
	}
	return t
}

// E2PathConstraints reproduces Sections 3.2, 3.3 and 4.1 on foo(): the exact
// path constraints of each technique, the fate of the alternate constraint,
// and whether negating it diverges.
func E2PathConstraints(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E2",
		Title: "foo(): path constraints, soundness, divergence (covers E3)",
		PaperClaim: "unsound pc \"x=567 ∧ y≠10\" diverges when negated (§3.2); sound pc " +
			"\"y=42 ∧ x=567 ∧ y≠10\" has an unsatisfiable ALT (Example 1); higher-order pc is " +
			"\"x=h(y) ∧ y≠10\" (§4.1)",
		Columns: []string{"mode", "path constraint", "ALT(last)", "negation outcome"},
	}
	w := lexapp.Foo()
	h42 := lexapp.ScrambledHash([]int64{42})
	seed := w.Seeds[0]

	// Unsound concretization.
	eng := concolic.New(w.Build(), concolic.ModeUnsound)
	ex := eng.Run(seed)
	t.claim(len(ex.PC) == 2 && !ex.PC[0].IsConcretization,
		"unsound pc is x=%d ∧ y≠10 with no concretization record", h42)
	alt := ex.Alt(len(ex.PC) - 1)
	st, model := smt.Solve(alt, smt.Options{Pool: eng.Pool})
	negOutcome := "—"
	if st == smt.StatusSat {
		in := []int64{seed[0], seed[1]}
		for i, v := range eng.InputVars {
			if val, ok := model.Vars[v.ID]; ok {
				in[i] = val
			}
		}
		ex2 := eng.Run(in)
		if ex2.Result.Path() != "11" { // predicted: both guards taken
			negOutcome = fmt.Sprintf("divergence (input x=%d y=%d)", in[0], in[1])
		} else {
			negOutcome = "reached target"
		}
	}
	t.addRow("dart-unsound", fmt.Sprint(ex.Formula()), st.String(), negOutcome)
	t.claim(st == smt.StatusSat && negOutcome != "reached target",
		"negating the unsound pc yields a divergent test")

	// Sound concretization.
	engS := concolic.New(w.Build(), concolic.ModeSound)
	exS := engS.Run(seed)
	altS := exS.Alt(len(exS.PC) - 1)
	stS, _ := smt.Solve(altS, smt.Options{Pool: engS.Pool})
	t.addRow("dart-sound", fmt.Sprint(exS.Formula()), stS.String(), "no test generated")
	t.claim(len(exS.PC) == 3 && exS.PC[0].IsConcretization,
		"sound pc records the concretization constraint y=42 first")
	t.claim(stS == smt.StatusUnsat, "the sound ALT is unsatisfiable (Example 1): no divergence possible")

	// Higher-order.
	engH := concolic.New(w.Build(), concolic.ModeHigherOrder)
	exH := engH.Run(seed)
	altH := exH.Alt(len(exH.PC) - 1)
	strat, out := fol.Prove(altH, engH.Samples, fol.Options{
		Pool: engH.Pool, Fallback: map[int]int64{engH.InputVars[0].ID: seed[0], engH.InputVars[1].ID: seed[1]},
	})
	hoOutcome := out.String()
	if out == fol.OutcomeProved {
		res := strat.Resolve(engH.Samples)
		if !res.Complete {
			hoOutcome = fmt.Sprintf("proved; needs sample %v (two-step)", res.Probes)
		}
	}
	t.addRow("higher-order", fmt.Sprint(exH.Formula()), "validity check", hoOutcome)
	t.claim(len(exH.PC) == 2 && exH.UFApps == 1,
		"higher-order pc is x=h(y) ∧ y≠10 with one uninterpreted application")
	t.claim(out == fol.OutcomeProved, "POST(ALT) is proved valid")
	t.note("POST(ALT) = %s", fol.PostString(altH, engH.Samples))
	return t
}

// E4GoodDivergence reproduces Example 2 on foo-bis.
func E4GoodDivergence(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E4",
		Title: "foo-bis(): the good divergence",
		PaperClaim: "\"no new test is generated ... and the error is missed [by sound " +
			"concretization]. In contrast, unsound concretization ... is likely (but not " +
			"guaranteed) to hit the error\" (Example 2)",
		Columns: []string{"mode", "bug found", "divergences", "runs"},
	}
	for _, mode := range []concolic.Mode{concolic.ModeSound, concolic.ModeUnsound, concolic.ModeHigherOrder} {
		st := runSearch(cfg, lexapp.FooBis(), mode, search.Options{MaxRuns: 50})
		t.addRow(mode.String(), foundBug(st), fmt.Sprintf("%d", st.Divergences), fmt.Sprintf("%d", st.Runs))
		found := len(st.ErrorSitesFound()) > 0
		switch mode {
		case concolic.ModeSound:
			t.claim(!found, "sound concretization misses the bug")
			t.claim(st.Divergences == 0, "sound concretization never diverges")
		case concolic.ModeUnsound:
			t.claim(found, "unsound concretization finds the bug (a good divergence)")
		case concolic.ModeHigherOrder:
			t.claim(found && st.Divergences == 0, "higher-order finds the bug without diverging")
		}
	}
	return t
}

// E5Incomparable reproduces Example 3 on bar.
func E5Incomparable(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E5",
		Title: "bar(): higher-order vs unsound concretization are incomparable",
		PaperClaim: "\"unsound concretization will generate an unsound path constraint ... which " +
			"will likely lead to a divergence. In contrast, ... no new test will be generated " +
			"since this formula is invalid\" (Example 3)",
		Columns: []string{"mode", "bug found", "divergences", "invalid verdicts"},
	}
	un := runSearch(cfg, lexapp.Bar(), concolic.ModeUnsound, search.Options{MaxRuns: 50})
	t.addRow("dart-unsound", foundBug(un), fmt.Sprintf("%d", un.Divergences), "-")
	t.claim(un.Divergences > 0, "unsound concretization diverges on bar")

	ho := runSearch(cfg, lexapp.Bar(), concolic.ModeHigherOrder, search.Options{MaxRuns: 50, Refute: true})
	t.addRow("higher-order", foundBug(ho), fmt.Sprintf("%d", ho.Divergences), fmt.Sprintf("%d", ho.ProverInvalid))
	t.claim(ho.ProverInvalid > 0, "higher-order proves ∃x,y: x=h(y) ∧ y=h(x) invalid")
	t.claim(ho.Divergences == 0 && len(ho.ErrorSitesFound()) == 0,
		"higher-order generates no bogus test and never diverges")
	return t
}

// E6SamplesNeeded reproduces Example 4: without the sample antecedent the
// post-processed formula is invalid; with h(1)=5 recorded it is proved.
func E6SamplesNeeded(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E6",
		Title: "pub(): uninterpreted function samples are necessary",
		PaperClaim: "\"no new test will be generated since this formula is invalid (... h(x)=0 for " +
			"all x) ... with uninterpreted function samples, we then obtain ... which is valid\" (Example 4)",
		Columns: []string{"antecedent", "formula", "outcome", "witness"},
	}
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	pc := sym.AndExpr(
		sym.Gt(sym.ApplyTerm(h, sym.VarTerm(x)), sym.Int(0)),
		sym.Eq(sym.VarTerm(y), sym.Int(10)),
	)

	empty := sym.NewSampleStore()
	_, out := fol.Prove(pc, empty, fol.Options{Pool: &p})
	t.addRow("(none)", fol.PostString(pc, empty), out.String(), "—")
	t.claim(out == fol.OutcomeInvalid, "without samples the formula is invalid (h ≡ 0 refutes it)")

	withS := sym.NewSampleStore()
	withS.Add(h, []int64{1}, 5)
	strat, out2 := fol.Prove(pc, withS, fol.Options{Pool: &p})
	witness := "—"
	if out2 == fol.OutcomeProved {
		res := strat.Resolve(withS)
		witness = fmt.Sprintf("x=%d y=%d", res.Values[x.ID], res.Values[y.ID])
	}
	t.addRow("h(1)=5", fol.PostString(pc, withS), out2.String(), witness)
	t.claim(out2 == fol.OutcomeProved && witness == "x=1 y=10",
		"with the sample antecedent the formula is valid with witness (x=1, y=10)")

	// End-to-end: the pub program under higher-order search.
	st := runSearch(cfg, lexapp.Pub(), concolic.ModeHigherOrder, search.Options{MaxRuns: 50})
	t.note("end-to-end on pub(): %s", st.Summary())
	t.claim(len(st.ErrorSitesFound()) == 1, "higher-order search reaches pub's error site")
	return t
}

// E7EUFEquality reproduces Example 5.
func E7EUFEquality(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E7",
		Title: "∃x,y: f(x)=f(y) — validity via EUF",
		PaperClaim: "\"Higher-order test generation can generate tests from validity proofs of ... " +
			"∃x,y: f(x)=f(y) ... (Solution strategy: set x = y). In contrast, sound concretization " +
			"... would not be able to generate a test\" (Example 5)",
		Columns: []string{"technique", "outcome", "strategy / result"},
	}
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	f := p.FuncSym("f", 1)
	pc := sym.Eq(sym.ApplyTerm(f, sym.VarTerm(x)), sym.ApplyTerm(f, sym.VarTerm(y)))
	strat, out := fol.Prove(pc, sym.NewSampleStore(), fol.Options{Pool: &p})
	desc := "—"
	ok := false
	if out == fol.OutcomeProved {
		res := strat.Resolve(sym.NewSampleStore())
		ok = res.Complete && res.Values[x.ID] == res.Values[y.ID]
		desc = fmt.Sprintf("%v ⇒ x=%d y=%d", strat, res.Values[x.ID], res.Values[y.ID])
	}
	t.addRow("higher-order (fol)", out.String(), desc)
	t.claim(ok, "validity proved with strategy x := y")

	so := runSearch(cfg, lexapp.EqPair(), concolic.ModeSound, search.Options{MaxRuns: 50})
	t.addRow("dart-sound (search)", foundBug(so), so.Summary())
	t.claim(len(so.ErrorSitesFound()) == 0, "sound concretization cannot reach the hash(x)==hash(y) branch")

	ho := runSearch(cfg, lexapp.EqPair(), concolic.ModeHigherOrder, search.Options{MaxRuns: 50})
	t.addRow("higher-order (search)", foundBug(ho), ho.Summary())
	t.claim(len(ho.ErrorSitesFound()) == 1 && ho.Divergences == 0,
		"higher-order search reaches it divergence-free")
	return t
}

// E8SamplePairs reproduces Example 6.
func E8SamplePairs(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E8",
		Title: "∃x,y: f(x)=f(y)+1 — the antecedent enables validity",
		PaperClaim: "\"This formula is in general invalid ... assume that it is dynamically observed " +
			"that f(0)=0 and f(1)=1 ... This formula is valid (solution strategy: set x=1 and y=0)\" (Example 6)",
		Columns: []string{"antecedent", "outcome", "witness"},
	}
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	f := p.FuncSym("f", 1)
	pc := sym.Eq(sym.ApplyTerm(f, sym.VarTerm(x)), sym.AddSum(sym.ApplyTerm(f, sym.VarTerm(y)), sym.Int(1)))

	_, out := fol.Prove(pc, sym.NewSampleStore(), fol.Options{Pool: &p})
	t.addRow("(none)", out.String(), "—")
	t.claim(out == fol.OutcomeInvalid, "without samples the formula is invalid (f ≡ 0 refutes it)")

	samples := sym.NewSampleStore()
	samples.Add(f, []int64{0}, 0)
	samples.Add(f, []int64{1}, 1)
	strat, out2 := fol.Prove(pc, samples, fol.Options{Pool: &p})
	witness := "—"
	if out2 == fol.OutcomeProved {
		res := strat.Resolve(samples)
		witness = fmt.Sprintf("x=%d y=%d", res.Values[x.ID], res.Values[y.ID])
	}
	t.addRow("f(0)=0 ∧ f(1)=1", out2.String(), witness)
	t.claim(out2 == fol.OutcomeProved && witness == "x=1 y=0",
		"with samples the formula is valid with witness (x=1, y=0)")

	ho := runSearch(cfg, lexapp.SuccPair(), concolic.ModeHigherOrder, search.Options{MaxRuns: 50})
	t.note("end-to-end on succ-pair: %s", ho.Summary())
	t.claim(len(ho.ErrorSitesFound()) == 1, "higher-order search reaches hash(x)==hash(y)+1")
	return t
}

// E9MultiStep reproduces Example 7 and its k-step generalization.
func E9MultiStep(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E9",
		Title: "multi-step test generation",
		PaperClaim: "\"A new intermediate test ... is necessary to learn the value of h(10) ... This " +
			"is an example of two-step test generation. Of course, such examples can easily be " +
			"generalized to k-step test generation\" (Example 7)",
		Columns: []string{"workload", "bug found", "first-bug run", "multi-step chains", "intermediate tests", "divergences"},
	}
	for _, w := range []*lexapp.Workload{lexapp.Foo(), lexapp.KStep(3)} {
		st := runSearch(cfg, w, concolic.ModeHigherOrder, search.Options{MaxRuns: 200, MaxMultiStep: 4})
		t.addRow(w.Name, foundBug(st), firstBugRun(st),
			fmt.Sprintf("%d", st.MultiStepChains), fmt.Sprintf("%d", st.IntermediateTests),
			fmt.Sprintf("%d", st.Divergences))
		t.claim(len(st.ErrorSitesFound()) == 1, "%s: the deep bug is reached", w.Name)
		t.claim(st.MultiStepChains > 0 && st.IntermediateTests > 0,
			"%s: intermediate sample-collecting tests were needed", w.Name)
		t.claim(st.Divergences == 0, "%s: no divergence", w.Name)
	}
	return t
}

// E10Soundness measures Theorems 2 and 3 empirically: the fraction of
// path-constraint models whose replay follows the original path.
func E10Soundness(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E10",
		Title: "path-constraint soundness rates (Theorems 2 and 3)",
		PaperClaim: "\"The algorithm ... with sound concretization ... generates sound path " +
			"constraints\" (Thm 2); \"The algorithm of Figure 3 generates sound path constraints\" (Thm 3)",
		Columns: []string{"mode", "programs", "models checked", "replays on-path", "soundness rate"},
	}
	nProgs := 30
	if cfg.Quick {
		nProgs = 12
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	natives := mini.Natives{}
	natives.Register("hash", 1, lexapp.ScrambledHash)

	type progCase struct {
		prog *mini.Program
		in   []int64
	}
	var cases []progCase
	// The foo program guarantees at least one deterministic unsoundness
	// witness for the unsound mode.
	fooW := lexapp.Foo()
	cases = append(cases, progCase{fooW.Build(), fooW.Seeds[0]})
	for i := 0; i < nProgs; i++ {
		src := mini.GenProgram(r, mini.GenConfig{Natives: []string{"hash"}})
		p := mini.MustCheck(mini.MustParse(src), natives)
		cases = append(cases, progCase{p, []int64{int64(r.Intn(21) - 10), int64(r.Intn(21) - 10), int64(r.Intn(21) - 10)}})
	}

	for _, mode := range []concolic.Mode{concolic.ModeUnsound, concolic.ModeSound, concolic.ModeSoundDelayed, concolic.ModeHigherOrder} {
		checked, onPath := 0, 0
		for _, c := range cases {
			eng := concolic.New(c.prog, mode)
			ex := eng.Run(c.in)
			if ex.Result.Kind == mini.StopRuntime {
				continue
			}
			if mode == concolic.ModeHigherOrder {
				// Sample mutants filtered through the pc under the real
				// native interpretation.
				f := ex.Formula()
				for trial := 0; trial < 20; trial++ {
					in2 := make([]int64, len(c.in))
					copy(in2, c.in)
					for k := range in2 {
						if r.Intn(2) == 0 {
							in2[k] = int64(r.Intn(21) - 10)
						}
					}
					env := sym.Env{Vars: map[int]int64{}, Fn: func(fn *sym.Func, args []int64) (int64, bool) {
						return eng.NativeEval(fn.Name, args)
					}}
					for i, v := range eng.InputVars {
						env.Vars[v.ID] = in2[i]
					}
					holds, err := sym.EvalBool(f, env)
					if err != nil || !holds {
						continue
					}
					checked++
					if eng.Run(in2).Result.Path() == ex.Result.Path() {
						onPath++
					}
				}
				continue
			}
			st, m := smt.Solve(ex.Formula(), smt.Options{Pool: eng.Pool})
			if st != smt.StatusSat {
				continue
			}
			in2 := make([]int64, len(c.in))
			copy(in2, c.in)
			for i, v := range eng.InputVars {
				if val, ok := m.Vars[v.ID]; ok {
					in2[i] = val
				}
			}
			checked++
			if eng.Run(in2).Result.Path() == ex.Result.Path() {
				onPath++
			}
		}
		rate := "—"
		if checked > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*float64(onPath)/float64(checked))
		}
		t.addRow(mode.String(), fmt.Sprintf("%d", len(cases)), fmt.Sprintf("%d", checked),
			fmt.Sprintf("%d", onPath), rate)
		switch mode {
		case concolic.ModeUnsound:
			t.claim(onPath < checked, "unsound concretization produces unsound path constraints")
		default:
			t.claim(checked > 0 && onPath == checked, "%v path constraints are sound (100%% replay)", mode)
		}
	}
	return t
}

// E11Simulation checks Theorem 4: whenever sound concretization can flip a
// constraint (ALT satisfiable), higher-order test generation proves the
// corresponding POST(ALT) valid.
func E11Simulation(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E11",
		Title: "Theorem 4 (simulation): higher-order subsumes sound concretization",
		PaperClaim: "\"If ALT(pc_SC) is satisfiable, then POST(ALT(pc_UF)) is valid\" (Theorem 4, " +
			"with samples recorded)",
		Columns: []string{"suite", "targets", "sound-ALT sat", "higher-order proved", "violations"},
	}
	natives := mini.Natives{}
	natives.Register("hash", 1, lexapp.ScrambledHash)
	r := rand.New(rand.NewSource(cfg.Seed))

	nProgs := 25
	if cfg.Quick {
		nProgs = 10
	}
	type suite struct {
		name  string
		progs []*mini.Program
		ins   [][]int64
	}
	var suites []suite
	paper := suite{name: "paper examples"}
	for _, w := range []*lexapp.Workload{lexapp.Obscure(), lexapp.Foo(), lexapp.FooBis(), lexapp.Bar(), lexapp.Pub()} {
		paper.progs = append(paper.progs, w.Build())
		paper.ins = append(paper.ins, w.Seeds[0])
	}
	suites = append(suites, paper)
	random := suite{name: "random programs"}
	for i := 0; i < nProgs; i++ {
		src := mini.GenProgram(r, mini.GenConfig{Natives: []string{"hash"}})
		random.progs = append(random.progs, mini.MustCheck(mini.MustParse(src), natives))
		random.ins = append(random.ins, []int64{int64(r.Intn(21) - 10), int64(r.Intn(21) - 10), int64(r.Intn(21) - 10)})
	}
	suites = append(suites, random)

	for _, su := range suites {
		targets, satALT, proved, violations := 0, 0, 0, 0
		for pi, prog := range su.progs {
			in := su.ins[pi]
			engS := concolic.New(prog, concolic.ModeSound)
			exS := engS.Run(in)
			engH := concolic.New(prog, concolic.ModeHigherOrder)
			exH := engH.Run(in)

			// Index higher-order constraints by branch-event position.
			hoByEvent := map[int]int{}
			for k, c := range exH.PC {
				if !c.IsConcretization {
					hoByEvent[c.EventIndex] = k
				}
			}
			fb := map[int]int64{}
			for i, v := range engH.InputVars {
				fb[v.ID] = in[i]
			}
			for k, c := range exS.PC {
				if c.IsConcretization {
					continue
				}
				targets++
				st, _ := smt.Solve(exS.Alt(k), smt.Options{Pool: engS.Pool})
				if st != smt.StatusSat {
					continue
				}
				satALT++
				kh, ok := hoByEvent[c.EventIndex]
				if !ok {
					violations++
					continue
				}
				_, out := fol.Prove(exH.Alt(kh), engH.Samples, fol.Options{
					Pool: engH.Pool, Fallback: fb, NoRefute: true,
				})
				if out == fol.OutcomeProved {
					proved++
				} else {
					violations++
				}
			}
		}
		t.addRow(su.name, fmt.Sprintf("%d", targets), fmt.Sprintf("%d", satALT),
			fmt.Sprintf("%d", proved), fmt.Sprintf("%d", violations))
		t.claim(violations == 0 && satALT > 0,
			"%s: every satisfiable sound ALT has a valid higher-order POST (%d/%d)", su.name, proved, satALT)
	}
	return t
}

// lexerRow runs one technique on a lexer workload and renders its row.
func lexerRow(t *Table, w *lexapp.Workload, name string, st *search.Stats) {
	kwIDs := lexapp.KeywordBranchIDs(w.Build())
	kw := 0
	for _, id := range kwIDs {
		if st.SideCovered(id, true) {
			kw++
		}
	}
	t.addRow(name,
		fmt.Sprintf("%d", st.Runs),
		fmt.Sprintf("%d/%d", st.BranchSidesCovered(), st.BranchSidesTotal()),
		fmt.Sprintf("%d/%d", kw, len(kwIDs)),
		fmt.Sprintf("%d", st.Paths()),
		fmt.Sprintf("%d", len(st.ErrorSitesFound())),
		fmt.Sprintf("%d", st.Divergences))
}

func keywordSides(w *lexapp.Workload, st *search.Stats) int {
	kw := 0
	for _, id := range lexapp.KeywordBranchIDs(w.Build()) {
		if st.SideCovered(id, true) {
			kw++
		}
	}
	return kw
}

func covSeries(st *search.Stats) string {
	checkpoints := []int{10, 25, 50, 100, 200, 400, 800, 1500}
	out := ""
	for _, c := range checkpoints {
		if c > len(st.CovTrace) {
			break
		}
		out += fmt.Sprintf(" %d:%d", c, st.CovTrace[c-1])
	}
	return out
}

// E12LexerStudy is the headline Section 7 experiment.
func E12LexerStudy(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E12",
		Title: fmt.Sprintf("Section 7 lexer study (budget %d executions)", cfg.Budget),
		PaperClaim: "\"this partial implementation of higher-order test generation is sufficient to " +
			"accurately drive program executions through the lexer. In contrast, regular dynamic " +
			"test generation is no better than blackbox random testing\" (§7)",
		Columns: []string{"technique", "runs", "branch sides", "keywords hit", "paths", "parser bugs", "divergences"},
	}
	w := lexapp.Lexer()

	fz := fuzz.Run(w.Build(), fuzz.Options{MaxRuns: cfg.Budget, Seeds: w.Seeds, Bounds: w.Bounds,
		Rand: rand.New(rand.NewSource(cfg.Seed))})
	lexerRow(t, w, "blackbox-random", fz)
	t.note("coverage-vs-runs (figure series) blackbox-random:%s", covSeries(fz))

	results := map[concolic.Mode]*search.Stats{}
	for _, mode := range allModes {
		wm := lexapp.Lexer()
		st := runSearch(cfg, wm, mode, search.Options{MaxRuns: cfg.Budget})
		results[mode] = st
		lexerRow(t, wm, mode.String(), st)
		t.note("coverage-vs-runs (figure series) %s:%s", mode, covSeries(st))
	}

	// Random byte strings can, very rarely, contain a two-letter keyword, so
	// the robust baseline claims are: at most a stray short keyword, no
	// parser bug, and (far) fewer keywords than higher-order generation.
	t.claim(keywordSides(w, fz) <= 2,
		"blackbox random testing recognizes at most a stray short keyword (got %d)", keywordSides(w, fz))
	t.claim(len(fz.ErrorSitesFound()) == 0, "blackbox random testing finds no parser bug")
	for _, m := range []concolic.Mode{concolic.ModeStatic, concolic.ModeUnsound, concolic.ModeSound, concolic.ModeSoundDelayed} {
		t.claim(keywordSides(w, results[m]) == 0,
			"%v never recognizes a keyword (defeated by the hash)", m)
		t.claim(len(results[m].ErrorSitesFound()) == 0, "%v finds no parser bug", m)
	}
	ho := results[concolic.ModeHigherOrder]
	minKw := 4
	minBugs := 1
	if cfg.Budget < 500 {
		minKw = 2
	}
	t.claim(keywordSides(w, ho) >= minKw,
		"higher-order recognizes ≥%d keywords (got %d/8)", minKw, keywordSides(w, ho))
	t.claim(len(ho.ErrorSitesFound()) >= minBugs,
		"higher-order reaches ≥%d deep parser bug(s) (got %d)", minBugs, len(ho.ErrorSitesFound()))
	t.claim(ho.Divergences == 0, "higher-order never diverges")
	t.claim(ho.BranchSidesCovered() > results[concolic.ModeUnsound].BranchSidesCovered(),
		"higher-order coverage strictly exceeds DART's")
	t.claim(keywordSides(w, ho) > keywordSides(w, fz),
		"higher-order recognizes strictly more keywords than random testing")
	return t
}

// E13SamplePersistence is the hard-coded-hash variant: keyword hashes can
// only be learned by lexing well-formed inputs.
func E13SamplePersistence(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E13",
		Title: fmt.Sprintf("hard-coded hashes: learning samples from well-formed seeds (budget %d)", cfg.Budget),
		PaperClaim: "\"such input-output pairs could still be learned over time by starting the " +
			"testing session with a representative set of well-formed inputs, observing the hash " +
			"values of all the language keywords those inputs contain\" (§7)",
		Columns: []string{"seed corpus", "keywords hit", "samples learned", "parser bugs", "branch sides"},
	}
	w := lexapp.LexerHardcoded()

	junk := runSearch(cfg, lexapp.LexerHardcoded(), concolic.ModeHigherOrder,
		search.Options{MaxRuns: cfg.Budget, Seeds: lexapp.JunkSeeds()})
	t.addRow("junk only", fmt.Sprintf("%d/8", keywordSides(w, junk)),
		fmt.Sprintf("%d", junk.SamplesLearned), fmt.Sprintf("%d", len(junk.ErrorSitesFound())),
		fmt.Sprintf("%d/%d", junk.BranchSidesCovered(), junk.BranchSidesTotal()))
	t.claim(keywordSides(w, junk) == 0,
		"with hard-coded hashes and junk seeds, even higher-order cannot recognize keywords")

	full := runSearch(cfg, lexapp.LexerHardcoded(), concolic.ModeHigherOrder,
		search.Options{MaxRuns: cfg.Budget})
	t.addRow("junk + well-formed", fmt.Sprintf("%d/8", keywordSides(w, full)),
		fmt.Sprintf("%d", full.SamplesLearned), fmt.Sprintf("%d", len(full.ErrorSitesFound())),
		fmt.Sprintf("%d/%d", full.BranchSidesCovered(), full.BranchSidesTotal()))
	t.claim(keywordSides(w, full) == 8,
		"the benign well-formed corpus teaches all 8 keyword hashes")
	if cfg.Budget >= 500 {
		t.claim(len(full.ErrorSitesFound()) >= 1,
			"higher-order composes new bug-triggering keyword sequences from learned samples")
	}
	t.note("no well-formed seed triggers a parser bug itself; composed inputs are new")

	// Cross-session persistence: session 1 only lexes the benign corpus and
	// saves its IOF store; session 2 starts fresh with junk seeds but imports
	// the saved samples — keyword recognition works again.
	sess1 := concolic.New(lexapp.LexerHardcoded().Build(), concolic.ModeHigherOrder)
	for _, seed := range lexapp.WellFormedSeeds() {
		sess1.Run(seed)
	}
	var buf bytes.Buffer
	if err := sess1.Samples.Encode(&buf); err != nil {
		t.claim(false, "session store encodes: %v", err)
		return t
	}
	w2 := lexapp.LexerHardcoded()
	sess2 := concolic.New(w2.Build(), concolic.ModeHigherOrder)
	imported, err := sym.DecodeSamples(&buf, sess2.Samples, sess2.Pool)
	if err != nil {
		t.claim(false, "session store decodes: %v", err)
		return t
	}
	st2 := search.Run(sess2, search.Options{MaxRuns: cfg.Budget, Seeds: lexapp.JunkSeeds(), Bounds: w2.Bounds, Obs: cfg.Obs})
	t.addRow("junk + imported session", fmt.Sprintf("%d/8", keywordSides(w2, st2)),
		fmt.Sprintf("%d", st2.SamplesLearned), fmt.Sprintf("%d", len(st2.ErrorSitesFound())),
		fmt.Sprintf("%d/%d", st2.BranchSidesCovered(), st2.BranchSidesTotal()))
	t.claim(imported >= len(lexapp.Keywords),
		"the saved session carries ≥%d samples (got %d)", len(lexapp.Keywords), imported)
	t.claim(keywordSides(w2, st2) >= 4,
		"imported samples restore keyword recognition in a fresh session (got %d/8)", keywordSides(w2, st2))
	return t
}

// A1DelayedConc is the Section 3.3 variant ablation.
func A1DelayedConc(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "A1",
		Title: "ablation: delayed injection of concretization constraints",
		PaperClaim: "\"the injection of concretization constraints ... could be delayed ... This way, " +
			"examples such as x := hash(y); if (y == 10) ... could be handled with sound " +
			"concretization\" (§3.3)",
		Columns: []string{"mode", "bug found", "divergences"},
	}
	for _, mode := range []concolic.Mode{concolic.ModeSound, concolic.ModeSoundDelayed, concolic.ModeHigherOrder} {
		st := runSearch(cfg, lexapp.Delayed(), mode, search.Options{MaxRuns: 20})
		t.addRow(mode.String(), foundBug(st), fmt.Sprintf("%d", st.Divergences))
		found := len(st.ErrorSitesFound()) > 0
		switch mode {
		case concolic.ModeSound:
			t.claim(!found, "eager sound concretization pins y and misses the bug")
		case concolic.ModeSoundDelayed:
			t.claim(found && st.Divergences == 0, "delayed injection recovers the flip, still soundly")
		case concolic.ModeHigherOrder:
			t.claim(found && st.Divergences == 0, "higher-order handles it too")
		}
	}
	return t
}

// A2DivergenceRates aggregates divergences per mode over the whole workload
// suite.
func A2DivergenceRates(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "A2",
		Title: "divergence and bug totals across all paper workloads",
		PaperClaim: "\"Sound concretization generates sound path constraints and eliminates " +
			"divergences\" (§3.3); unsound concretization risks divergences (§3.2)",
		Columns: []string{"mode", "total tests", "total divergences", "error sites found", "workloads"},
	}
	workloads := lexapp.PaperExamples()
	for _, mode := range allModes {
		tests, div, sites := 0, 0, 0
		for _, w := range workloads {
			st := runSearch(cfg, w, mode, search.Options{MaxRuns: 60})
			tests += st.TestsGenerated
			div += st.Divergences
			sites += len(st.ErrorSitesFound())
		}
		t.addRow(mode.String(), fmt.Sprintf("%d", tests), fmt.Sprintf("%d", div),
			fmt.Sprintf("%d", sites), fmt.Sprintf("%d", len(workloads)))
		switch mode {
		case concolic.ModeUnsound:
			t.claim(div > 0, "unsound concretization diverges somewhere in the suite")
		case concolic.ModeSound, concolic.ModeSoundDelayed, concolic.ModeHigherOrder:
			t.claim(div == 0, "%v never diverges across the suite", mode)
		}
		if mode == concolic.ModeHigherOrder {
			t.claim(sites >= 8, "higher-order finds the most error sites (got %d)", sites)
		}
	}
	return t
}

// E14PacketParser is the second application: a checksummed packet parser
// where every deep bug couples payload content with a CRC-validated header.
func E14PacketParser(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E14",
		Title: "checksummed packet parser: content coupled with a CRC",
		PaperClaim: "\"complex functions (for hashing, encrypting, compressing, encoding, CRC-ing " +
			"data)\" are sources of imprecision (§6); higher-order generation handles them where " +
			"concretization pins (sound) or diverges (unsound)",
		Columns: []string{"technique", "runs", "bugs found", "divergences", "multi-step chains", "branch sides"},
	}
	w := lexapp.Packet()
	fz := fuzz.Run(w.Build(), fuzz.Options{MaxRuns: 400, Seeds: w.Seeds, Bounds: w.Bounds,
		Rand: rand.New(rand.NewSource(cfg.Seed))})
	t.addRow("blackbox-random", fmt.Sprintf("%d", fz.Runs), fmt.Sprintf("%d", len(fz.ErrorSitesFound())),
		"-", "-", fmt.Sprintf("%d/%d", fz.BranchSidesCovered(), fz.BranchSidesTotal()))
	t.claim(len(fz.ErrorSitesFound()) == 0, "random testing finds no packet bug in 400 runs")

	for _, mode := range []concolic.Mode{concolic.ModeUnsound, concolic.ModeSound, concolic.ModeHigherOrder} {
		wm := lexapp.Packet()
		st := runSearch(cfg, wm, mode, search.Options{MaxRuns: 400})
		t.addRow(mode.String(), fmt.Sprintf("%d", st.Runs), fmt.Sprintf("%d", len(st.ErrorSitesFound())),
			fmt.Sprintf("%d", st.Divergences), fmt.Sprintf("%d", st.MultiStepChains),
			fmt.Sprintf("%d/%d", st.BranchSidesCovered(), st.BranchSidesTotal()))
		switch mode {
		case concolic.ModeUnsound:
			t.claim(st.Divergences > 0,
				"unsound concretization diverges when payload flips invalidate the checksum")
		case concolic.ModeSound:
			t.claim(st.Divergences == 0 && len(st.ErrorSitesFound()) == 0,
				"sound concretization pins the payload and misses every bug")
		case concolic.ModeHigherOrder:
			t.claim(len(st.ErrorSitesFound()) == 3,
				"higher-order reaches all 3 deep bugs (got %d)", len(st.ErrorSitesFound()))
			t.claim(st.Divergences == 0 && st.MultiStepChains > 0,
				"…divergence-free, via multi-step CRC resampling")
		}
	}
	return t
}

// E15GrammarBaseline compares higher-order test generation against the
// grammar-based whitebox fuzzing of [14], the alternative Section 7
// discusses: bypass the lexer, search over token sequences, then unlift the
// findings through a user-supplied grammar.
func E15GrammarBaseline(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E15",
		Title: "grammar-based whitebox fuzzing [14] vs higher-order test generation",
		PaperClaim: "\"it is shown how such a problematic lexer can be bypassed altogether ... " +
			"Unfortunately, instrumenting a lexer this way can be problematic ... and this approach " +
			"requires a user-supplied input-grammar specification. In contrast, higher-order test " +
			"generation provides a more automated approach\" (§7)",
		Columns: []string{"technique", "runs", "parser bugs", "validated end-to-end", "needs"},
	}

	// Grammar-based: search the token-level program (plain sound DART — no
	// unknown functions remain once the lexer is bypassed), then unlift each
	// bug through the grammar and replay it on the real lexer.
	tp := lexapp.TokenParser()
	gb := runSearch(cfg, tp, concolic.ModeSound, search.Options{MaxRuns: cfg.Budget})
	validated := 0
	for _, b := range gb.Bugs {
		if b.Kind == mini.StopError && lexapp.ValidateOnLexer(b.Input, b.Msg) {
			validated++
		}
	}
	t.addRow("grammar-based [14]", fmt.Sprintf("%d", gb.Runs),
		fmt.Sprintf("%d", len(gb.ErrorSitesFound())), fmt.Sprintf("%d", validated),
		"lexer bypass + grammar spec")
	t.claim(len(gb.ErrorSitesFound()) == 5,
		"token-level search covers all 5 parser bugs (got %d)", len(gb.ErrorSitesFound()))
	t.claim(validated == 5,
		"every token-level bug unlifts through the grammar and reproduces on the real lexer (got %d)", validated)

	// Higher-order generation on the unmodified program.
	w := lexapp.Lexer()
	ho := runSearch(cfg, w, concolic.ModeHigherOrder, search.Options{MaxRuns: cfg.Budget})
	t.addRow("higher-order", fmt.Sprintf("%d", ho.Runs),
		fmt.Sprintf("%d", len(ho.ErrorSitesFound())), fmt.Sprintf("%d", len(ho.ErrorSitesFound())),
		"only the hash function's name")
	minBugs := 1
	if cfg.Budget >= 1500 {
		minBugs = 3
	}
	t.claim(len(ho.ErrorSitesFound()) >= minBugs,
		"higher-order reaches ≥%d of the same bugs with no instrumentation or grammar (got %d)",
		minBugs, len(ho.ErrorSitesFound()))
	t.note("higher-order inputs are real byte strings by construction — no unlifting step exists or is needed")
	return t
}

// A3Summaries is the compositional-summary ablation: higher-order search with
// and without the Section 8 summary cache must be observationally identical,
// with the cache absorbing the callee's symbolic re-execution.
func A3Summaries(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "A3",
		Title: "ablation: higher-order compositional summaries (Section 8)",
		PaperClaim: "\"Both types of uninterpreted functions could actually be used simultaneously, " +
			"as they are orthogonal, for higher-order compositional test generation\" (§8)",
		Columns: []string{"configuration", "runs", "bugs", "coverage", "divergences", "summary hits", "misses", "cases"},
	}
	budget := 200

	w1 := lexapp.Scanner()
	plain := runSearch(cfg, w1, concolic.ModeHigherOrder, search.Options{MaxRuns: budget})
	t.addRow("inlining", fmt.Sprintf("%d", plain.Runs), fmt.Sprintf("%d", len(plain.ErrorSitesFound())),
		fmt.Sprintf("%d/%d", plain.BranchSidesCovered(), plain.BranchSidesTotal()),
		fmt.Sprintf("%d", plain.Divergences), "-", "-", "-")

	w2 := lexapp.Scanner()
	eng := concolic.New(w2.Build(), concolic.ModeHigherOrder)
	eng.Summaries = concolic.NewSummaryCache()
	summ := search.Run(eng, search.Options{MaxRuns: budget, Seeds: w2.Seeds, Bounds: w2.Bounds, Obs: cfg.Obs})
	t.addRow("summaries", fmt.Sprintf("%d", summ.Runs), fmt.Sprintf("%d", len(summ.ErrorSitesFound())),
		fmt.Sprintf("%d/%d", summ.BranchSidesCovered(), summ.BranchSidesTotal()),
		fmt.Sprintf("%d", summ.Divergences),
		fmt.Sprintf("%d", eng.Summaries.Hits), fmt.Sprintf("%d", eng.Summaries.Misses),
		fmt.Sprintf("%d", eng.Summaries.Cases()))

	t.claim(len(plain.ErrorSitesFound()) == len(summ.ErrorSitesFound()) &&
		plain.BranchSidesCovered() == summ.BranchSidesCovered() &&
		plain.Paths() == summ.Paths(),
		"summaries change nothing observable (bugs %d=%d, coverage %d=%d, paths %d=%d)",
		len(plain.ErrorSitesFound()), len(summ.ErrorSitesFound()),
		plain.BranchSidesCovered(), summ.BranchSidesCovered(), plain.Paths(), summ.Paths())
	t.claim(summ.Divergences == 0, "summaries preserve soundness (no divergences)")
	t.claim(eng.Summaries.Hits > 5*eng.Summaries.Misses,
		"the cache absorbs the callee work (hits %d ≫ misses %d)", eng.Summaries.Hits, eng.Summaries.Misses)
	t.claim(len(summ.ErrorSitesFound()) >= 2,
		"the hash-guarded scanner bugs are reached (got %d)", len(summ.ErrorSitesFound()))
	return t
}

// E16Callbacks measures function-valued inputs: on each callback workload the
// bug hides behind a branch on a callback's output, so the higher-order
// searcher — which constructs concrete decision-table functions as part of the
// test input — must strictly dominate the DART-style baselines (which can only
// concretize callback results under the default function) on branch-side
// coverage, and must be the only configuration to reach the bug.
func E16Callbacks(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E16",
		Title: "function-valued inputs: synthesis vs concretization",
		PaperClaim: "\"our approach consists in representing [unknown] functions as uninterpreted " +
			"functions\" (§1) — taken to inputs themselves: when the function IS the input, the " +
			"searcher can construct it instead of concretizing around it",
		Columns: []string{"workload", "mode", "runs", "coverage", "bug", "function inputs"},
	}
	budget := 60
	modes := []concolic.Mode{concolic.ModeUnsound, concolic.ModeSound, concolic.ModeHigherOrder}
	for _, w := range lexapp.CallbackWorkloads() {
		sides := make(map[concolic.Mode]map[[2]int]bool, len(modes))
		numBranches := w.Build().NumBranches
		for _, mode := range modes {
			st := runSearch(cfg, w, mode, search.Options{MaxRuns: budget})
			cover := make(map[[2]int]bool)
			for id := 0; id < numBranches; id++ {
				for side := 0; side < 2; side++ {
					if st.SideCovered(id, side == 1) {
						cover[[2]int{id, side}] = true
					}
				}
			}
			sides[mode] = cover
			funcsNote := "-"
			if mode == concolic.ModeHigherOrder {
				funcsNote = "none synthesized"
				for _, bug := range st.Bugs {
					if len(bug.Funcs) > 0 {
						funcsNote = strings.Join(bug.Funcs, "; ")
						break
					}
				}
				t.claim(len(st.ErrorSitesFound()) > 0,
					"%s: higher-order synthesis reaches the callback-guarded bug", w.Name)
				for _, bug := range st.Bugs {
					t.claim(len(bug.Funcs) > 0,
						"%s: every reported bug carries a concrete function input", w.Name)
				}
			} else {
				t.claim(len(st.ErrorSitesFound()) == 0,
					"%s: %v cannot reach a bug guarded by a callback's output", w.Name, mode)
			}
			t.addRow(w.Name, mode.String(), fmt.Sprintf("%d", st.Runs),
				fmt.Sprintf("%d/%d", st.BranchSidesCovered(), st.BranchSidesTotal()),
				foundBug(st), funcsNote)
		}
		ho := sides[concolic.ModeHigherOrder]
		for _, mode := range modes[:2] {
			base := sides[mode]
			superset := true
			for s := range base {
				if !ho[s] {
					superset = false
				}
			}
			t.claim(superset && len(ho) > len(base),
				"%s: higher-order branch-side coverage strictly dominates %v (%d > %d)",
				w.Name, mode, len(ho), len(base))
		}
	}
	t.note("baselines run the callback through its default decision table (every application 0) and " +
		"concretize its results; only higher-order search treats the table itself as solvable input")
	return t
}

// E17Verification reproduces Theorem 1: on a pure bounded program (sound and
// complete constraint generation), an exhausted directed search has exercised
// every feasible path exactly once, so it *verifies* the unreachability of
// error sites it never hit — while any source of incompleteness (an unknown
// function under static execution) voids the claim.
func E17Verification(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "E17",
		Title: "Theorem 1: exhaustive search as verification",
		PaperClaim: "\"a directed search using a path constraint generation and a constraint solver " +
			"that are both sound and complete exercises all feasible program paths exactly once. " +
			"Thus, if a program statement has not been executed when the search is over, this " +
			"statement is not executable in any context\" (Theorem 1)",
		Columns: []string{"program", "mode", "exhausted", "runs", "distinct paths", "sites found", "verdict"},
	}

	pureSrc := `
fn main(x int, y int) {
	if (x > 5 && x < 3) {
		error("unreachable-interval");
	}
	if (x + y == 10 && x - y == 4) {
		if (x != 7) {
			error("unreachable-arith");
		}
		error("reachable-deep");
	}
}`
	natives := mini.Natives{}
	natives.Register("hash", 1, lexapp.ScrambledHash)
	pure := mini.MustCheck(mini.MustParse(pureSrc), natives)
	bounds := []smt.Bound{
		{Lo: -16, Hi: 16, HasLo: true, HasHi: true},
		{Lo: -16, Hi: 16, HasLo: true, HasHi: true},
	}
	eng := concolic.New(pure, concolic.ModeSound)
	st := search.Run(eng, search.Options{MaxRuns: 500, Seeds: [][]int64{{0, 0}}, Bounds: bounds, Obs: cfg.Obs})
	verdict := "bugs remain"
	if st.Exhausted {
		verdict = "VERIFIED: unhit sites unreachable"
	}
	t.addRow("pure arith", "dart-sound", fmt.Sprintf("%v", st.Exhausted), fmt.Sprintf("%d", st.Runs),
		fmt.Sprintf("%d", st.Paths()), fmt.Sprintf("%v", st.ErrorSitesFound()), verdict)
	t.claim(st.Exhausted, "the search drains its worklist well inside the budget (%d runs)", st.Runs)
	t.claim(st.Paths() == st.Runs, "every feasible path is exercised exactly once (%d paths in %d runs)",
		st.Paths(), st.Runs)
	found := st.ErrorSitesFound()
	t.claim(len(found) == 1 && pure.ErrorSites[found[0]] == "reachable-deep",
		"exactly the reachable site is hit; the two unreachable sites are verified so")

	// Contrast: with an unknown function under static execution the pc is
	// incomplete — exhaustion proves nothing.
	obscure := lexapp.Obscure()
	engS := concolic.New(obscure.Build(), concolic.ModeStatic)
	stS := search.Run(engS, search.Options{MaxRuns: 500, Seeds: obscure.Seeds, Obs: cfg.Obs})
	t.addRow("obscure (hash)", "static", fmt.Sprintf("%v", stS.Exhausted), fmt.Sprintf("%d", stS.Runs),
		fmt.Sprintf("%d", stS.Paths()), fmt.Sprintf("%v", stS.ErrorSitesFound()),
		"no verification (incomplete pc)")
	t.claim(stS.Exhausted && stS.Incomplete && len(stS.ErrorSitesFound()) == 0,
		"static execution exhausts without covering the feasible error branch — incompleteness voids Theorem 1's premise")
	return t
}
