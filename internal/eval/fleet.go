package eval

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/fleet"
	"hotg/internal/lexapp"
	"hotg/internal/search"
)

// serveCoordinator binds a loopback port for a coordinator's fleet endpoints
// and returns the base URL plus a shutdown function.
func serveCoordinator(c *fleet.Coordinator) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: c.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// fleetRun executes one search with n in-process workers attached and
// reports the stats plus every worker's exit error.
func fleetRun(w *lexapp.Workload, opts search.Options, n int) (*search.Stats, []error, error) {
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	coord := fleet.NewCoordinator(eng, fleet.CoordinatorOptions{
		Workload: w.Name, Shards: n, Bounds: w.Bounds,
		LeaseTimeout: 250 * time.Millisecond,
	})
	base, stop, err := serveCoordinator(coord)
	if err != nil {
		return nil, nil, err
	}
	defer stop()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs[slot] = fleet.RunWorker(fleet.WorkerOptions{
				Coordinator: base, JoinTimeout: 5 * time.Second,
			})
		}(i)
	}
	st := coord.Run(opts)
	wg.Wait()
	return st, errs, nil
}

// A7FleetDeterminism measures the distributed-campaign guarantee on the
// Section 7 lexer: a coordinator-driven fleet produces canonical statistics
// bit-identical to the single-process search at every fleet size, and a
// worker lost to kill -9 mid-run changes nothing — its leased tasks are
// reassigned or absorbed, with no bug lost and none double-counted.
func A7FleetDeterminism(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "A7",
		Title: "fleet determinism: canonical stats across fleet sizes, kill -9 drill (§7 lexer)",
		PaperClaim: "\"the search is parallelizable\" generalized across processes: the coordinator " +
			"keeps the canonical trajectory and ships only pure compute, so sharded workers, work " +
			"stealing, and worker crashes are invisible in the merged result (DESIGN.md §13)",
		Columns: []string{"configuration", "runs", "tests", "bugs", "proofs", "canonical"},
	}
	budget := cfg.Budget
	if budget > 120 {
		budget = 120 // the guarantee is budget-independent; keep A7 cheap
	}
	w := lexapp.Lexer()
	opts := search.Options{MaxRuns: budget, Seeds: w.Seeds, Bounds: w.Bounds, Workers: 1, Obs: cfg.Obs}
	fail := func(format string, args ...interface{}) *Table {
		t.claim(false, format, args...)
		return t
	}

	ref := search.Run(concolic.New(w.Build(), concolic.ModeHigherOrder), opts)
	refCanon, err := ref.Canonical()
	if err != nil {
		return fail("canonicalize reference stats: %v", err)
	}
	row := func(name string, st *search.Stats, same bool) {
		mark := "=="
		if !same {
			mark = "DIVERGED"
		}
		t.addRow(name, fmt.Sprintf("%d", st.Runs), fmt.Sprintf("%d", st.TestsGenerated),
			fmt.Sprintf("%d", len(st.Bugs)), fmt.Sprintf("%d", st.ProverCalls), mark)
	}
	row("single process", ref, true)

	for _, n := range []int{1, 2, 4} {
		st, workerErrs, err := fleetRun(w, opts, n)
		if err != nil {
			return fail("fleet of %d: %v", n, err)
		}
		canon, err := st.Canonical()
		if err != nil {
			return fail("canonicalize fleet-of-%d stats: %v", n, err)
		}
		same := string(canon) == string(refCanon)
		row(fmt.Sprintf("fleet of %d", n), st, same)
		t.claim(same && st.DispatchError == "",
			"a fleet of %d workers reproduces the single-process canonical stats byte for byte", n)
		retired := 0
		for _, e := range workerErrs {
			if e == nil {
				retired++
			}
		}
		t.claim(retired == n, "all %d workers retired cleanly on budget exhaustion (%d did)", n, retired)
	}

	// Kill drill: two workers, one reaching the coordinator only through a
	// proxy that is torn down mid-run — connections die with no goodbye,
	// exactly like SIGKILL. Lease expiry must hand its tasks to the survivor
	// (or local fallback) without changing the trajectory.
	st, err := killDrill(w, opts)
	if err != nil {
		return fail("kill drill: %v", err)
	}
	canon, err := st.Canonical()
	if err != nil {
		return fail("canonicalize kill-drill stats: %v", err)
	}
	same := string(canon) == string(refCanon)
	row("fleet of 2, one killed", st, same)
	t.claim(same && st.DispatchError == "",
		"killing one of two workers mid-run loses no result and double-counts none: "+
			"canonical stats (bugs included: %d) stay bit-identical", len(st.Bugs))
	t.note("worker loss is recovered by lease expiry + reassignment; a fleet with zero live workers degrades to local compute on the coordinator")
	return t
}

// killDrill runs a two-worker fleet and severs one worker's link once it has
// handled traffic, returning the coordinator's final stats.
func killDrill(w *lexapp.Workload, opts search.Options) (*search.Stats, error) {
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	coord := fleet.NewCoordinator(eng, fleet.CoordinatorOptions{
		Workload: w.Name, Shards: 2, Bounds: w.Bounds,
		LeaseTimeout: 150 * time.Millisecond,
	})
	base, stop, err := serveCoordinator(coord)
	if err != nil {
		return nil, err
	}
	defer stop()

	target, err := url.Parse(base)
	if err != nil {
		return nil, err
	}
	var forwarded atomic.Int64
	rp := httputil.NewSingleHostReverseProxy(target)
	// The teardown mid-request is the point of the drill; don't log it.
	rp.ErrorLog = log.New(io.Discard, "", 0)
	proxyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	proxySrv := &http.Server{Handler: http.HandlerFunc(func(wr http.ResponseWriter, r *http.Request) {
		forwarded.Add(1)
		rp.ServeHTTP(wr, r)
	})}
	go func() { _ = proxySrv.Serve(proxyLn) }()
	defer proxySrv.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = fleet.RunWorker(fleet.WorkerOptions{Coordinator: base, JoinTimeout: 5 * time.Second})
	}()
	go func() {
		defer wg.Done()
		// The victim: its only route is the proxy; the error return is the
		// point (it must NOT retire cleanly).
		_ = fleet.RunWorker(fleet.WorkerOptions{Coordinator: "http://" + proxyLn.Addr().String(), JoinTimeout: time.Second})
	}()
	go func() {
		for forwarded.Load() < 5 {
			time.Sleep(10 * time.Millisecond)
		}
		_ = proxySrv.Close()
	}()

	st := coord.Run(opts)
	wg.Wait()
	return st, nil
}
