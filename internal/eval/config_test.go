package eval

import "testing"

// TestConfigDefaults pins the normalization every experiment relies on:
// unset (zero) and nonsense (negative) budgets and seeds become the
// defaults, and Quick clamps the budget to CI size.
func TestConfigDefaults(t *testing.T) {
	cases := []struct {
		name       string
		in         Config
		wantBudget int
		wantSeed   int64
	}{
		{"zero value", Config{}, 1500, 1},
		{"negative budget", Config{Budget: -100}, 1500, 1},
		{"negative seed", Config{Seed: -7}, 1500, 1},
		{"explicit values kept", Config{Budget: 42, Seed: 9}, 42, 9},
		{"quick clamps large budgets", Config{Quick: true, Budget: 5000}, 300, 1},
		{"quick keeps small budgets", Config{Quick: true, Budget: 120}, 120, 1},
		{"quick applies to the default too", Config{Quick: true}, 300, 1},
	}
	for _, tc := range cases {
		got := tc.in.defaults()
		if got.Budget != tc.wantBudget || got.Seed != tc.wantSeed {
			t.Errorf("%s: defaults() = {Budget: %d, Seed: %d}, want {%d, %d}",
				tc.name, got.Budget, got.Seed, tc.wantBudget, tc.wantSeed)
		}
	}
}

// TestConfigDefaultsPreserveFlags checks defaults() does not disturb the
// pass-through fields.
func TestConfigDefaultsPreserveFlags(t *testing.T) {
	in := Config{Quick: true, Degrade: true, ProofTimeout: 1}
	got := in.defaults()
	if !got.Quick || !got.Degrade || got.ProofTimeout != 1 {
		t.Errorf("defaults() dropped pass-through fields: %+v", got)
	}
}

// TestExperimentRegistryWellFormed checks the registry invariants benchtab
// depends on: unique IDs, titles, and runnable entries, and Get agreement.
func TestExperimentRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v is incomplete", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
		if got, ok := Get(e.ID); !ok || got.ID != e.ID {
			t.Errorf("Get(%q) does not round-trip", e.ID)
		}
	}
	if _, ok := Get("nonsense"); ok {
		t.Error("Get accepted an unknown ID")
	}
}
