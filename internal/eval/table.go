// Package eval is the experiment harness: one runner per table/figure of
// EXPERIMENTS.md, each reproducing a claim of the paper (the worked examples,
// the theorems' measurable consequences, and the Section 7 lexer study).
// Every runner returns a Table carrying both the rendered rows and a list of
// machine-checked Claims, so the regression suite can assert the paper's
// qualitative shape — who finds which bug, who diverges, who is defeated —
// on every run.
package eval

import (
	"fmt"
	"strings"
	"time"

	"hotg/internal/obs"
)

// Claim is one machine-checked assertion about an experiment's outcome,
// mirroring a sentence of the paper.
type Claim struct {
	Text string
	OK   bool
}

// Table is the result of one experiment.
type Table struct {
	ID         string // e.g. "E12"
	Title      string
	PaperClaim string // the sentence(s) of the paper being reproduced
	Columns    []string
	Rows       [][]string
	Notes      []string
	Claims     []Claim
}

func (t *Table) addRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

func (t *Table) claim(ok bool, format string, args ...interface{}) {
	t.Claims = append(t.Claims, Claim{Text: fmt.Sprintf(format, args...), OK: ok})
}

func (t *Table) note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Failed returns the claims that did not hold.
func (t *Table) Failed() []Claim {
	var out []Claim
	for _, c := range t.Claims {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, c := range t.Claims {
		mark := "PASS"
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "claim [%s]: %s\n", mark, c.Text)
	}
	return b.String()
}

// Config tunes experiment budgets.
type Config struct {
	// Budget is the execution budget for the large (lexer) experiments
	// (default 1500; Quick reduces it).
	Budget int
	// Seed drives all randomized parts.
	Seed int64
	// Quick shrinks every experiment for CI-speed runs.
	Quick bool
	// Obs, when non-nil, collects metrics across every search the experiment
	// runs (benchtab -json snapshots it per experiment). Nil disables
	// observability.
	Obs *obs.Obs
	// ProofTimeout, when positive, applies a per-proof wall-clock deadline to
	// every search the experiments run (benchtab -proof-timeout). Tight
	// values can defeat paper claims — that is the point of setting it.
	ProofTimeout time.Duration
	// Degrade enables the precision-degradation ladder (benchtab -degrade)
	// on every search the experiments run.
	Degrade bool
}

func (c Config) defaults() Config {
	// Zero and negative values both mean "unset": experiments must never see
	// a non-positive budget or seed (benchtab passes flag values through).
	if c.Budget <= 0 {
		c.Budget = 1500
	}
	if c.Seed <= 0 {
		c.Seed = 1
	}
	if c.Quick && c.Budget > 300 {
		c.Budget = 300
	}
	return c
}

// Experiment is one registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) *Table
}

// Experiments returns every registered experiment in report order.
func Experiments() []Experiment {
	return []Experiment{
		{"E1", "obscure: static vs dynamic test generation", E1Obscure},
		{"E2", "foo: unsound concretization and divergence", E2PathConstraints},
		{"E4", "foo-bis: the good divergence", E4GoodDivergence},
		{"E5", "bar: higher-order vs unsound are incomparable", E5Incomparable},
		{"E6", "pub: the sample antecedent is needed", E6SamplesNeeded},
		{"E7", "EUF validity: f(x)=f(y)", E7EUFEquality},
		{"E8", "sample pairs: f(x)=f(y)+1", E8SamplePairs},
		{"E9", "multi-step test generation", E9MultiStep},
		{"E10", "Theorem 2/3: path-constraint soundness rates", E10Soundness},
		{"E11", "Theorem 4: higher-order simulates sound concretization", E11Simulation},
		{"E12", "Section 7: lexer study (headline)", E12LexerStudy},
		{"E13", "Section 7: hard-coded hashes and sample persistence", E13SamplePersistence},
		{"E14", "checksummed packet parser (second application)", E14PacketParser},
		{"E15", "grammar-based whitebox fuzzing baseline", E15GrammarBaseline},
		{"E16", "function-valued inputs: synthesis vs concretization", E16Callbacks},
		{"E17", "Theorem 1: exhaustive search as verification", E17Verification},
		{"A1", "ablation: delayed concretization constraints", A1DelayedConc},
		{"A2", "ablation: divergence rates by mode", A2DivergenceRates},
		{"A3", "ablation: compositional summaries", A3Summaries},
		{"A4", "budgeted search: degradation down the precision ladder", A4BudgetedSearch},
		{"A5", "persistent campaigns: kill, resume, and triage across sessions", A5CampaignResume},
		{"A6", "differential oracle campaign: clean sweep and fault drill", A6OracleCampaign},
		{"A7", "fleet determinism: canonical stats across fleet sizes, kill -9 drill", A7FleetDeterminism},
		{"A8", "campaign service: concurrent sessions, drain-resume, eviction", A8ServeCampaigns},
	}
}

// Get returns an experiment by ID.
func Get(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
