package eval

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/lexapp"
	"hotg/internal/obs"
	"hotg/internal/search"
	"hotg/internal/serve"
)

// A8ServeCampaigns measures the campaign-service guarantees: a flood of
// concurrent sessions through the server completes with zero lost campaigns
// across a mid-flood drain and restart (each interrupted session resumes
// from its last checkpoint), memory-budget eviction reclaims retained
// results without losing the on-disk campaign, and a server session with a
// tightly capped proof cache stays bit-identical in canonical stats to an
// uncapped in-process search.
func A8ServeCampaigns(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "A8",
		Title: "campaign service: concurrent sessions, drain-resume, memory-budget eviction",
		PaperClaim: "test generation as a long-running service: session isolation plus the " +
			"deterministic checkpoint/resume machinery make a drained-and-restarted server " +
			"indistinguishable from an uninterrupted one, and cache eviction under a memory " +
			"budget costs wall clock but never changes results (DESIGN.md §14)",
		Columns: []string{"phase", "sessions", "completed", "lost", "p50 ms", "p99 ms"},
	}
	fail := func(format string, args ...interface{}) *Table {
		t.claim(false, format, args...)
		return t
	}
	// Serve metrics must be readable even without benchtab's registry.
	o := cfg.Obs
	if o == nil {
		o = obs.New()
	}
	tmp, err := os.MkdirTemp("", "hotg-a8-")
	if err != nil {
		return fail("create server directories: %v", err)
	}
	defer os.RemoveAll(tmp)

	nSessions := 200
	if cfg.Quick {
		nSessions = 40
	}
	workloads := []string{"foo", "bar", "obscure", "foo-bis"}

	// Phase 1: flood, drain mid-flight, restart, require every campaign to
	// finish. Everything is admitted up front (the queue is sized for the
	// flood), so the drain catches a mix of running, queued, and finished
	// sessions.
	dir := filepath.Join(tmp, "flood")
	opts := serve.Options{
		Dir: dir, MaxConcurrent: 8, MaxQueue: nSessions + 8,
		CheckpointEvery: 3, DefaultWorkers: 1, Obs: o,
	}
	srv, err := serve.New(opts)
	if err != nil {
		return fail("start server: %v", err)
	}
	for i := 0; i < nSessions; i++ {
		_, err := srv.Submit(serve.Spec{
			Workload: workloads[i%len(workloads)], MaxRuns: 12, Workers: 1,
			CorpusID: fmt.Sprintf("a8-%04d", i),
		})
		if err != nil {
			return fail("submit %d: %v", i, err)
		}
	}
	// Drain once a slice of the flood has finished — the rest is caught
	// queued or mid-run.
	deadline := time.Now().Add(2 * time.Minute)
	for srv.Info()["sessions_done"] < int64(nSessions/10) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := srv.Drain(time.Minute); err != nil {
		return fail("drain: %v", err)
	}
	info := srv.Info()
	t.note("drain caught %d done, %d interrupted, %d queued of %d sessions",
		info["sessions_done"], info["sessions_interrupted"], info["sessions_queued"], nSessions)

	srv2, err := serve.New(opts)
	if err != nil {
		return fail("restart server: %v", err)
	}
	defer srv2.Close()
	deadline = time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		in := srv2.Info()
		if in["sessions_queued"] == 0 && in["sessions_running"] == 0 && in["sessions_interrupted"] == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	completed, lost, resumed := 0, 0, 0
	for _, ses := range srv2.List() {
		switch ses.State() {
		case serve.StateDone, serve.StateEvicted:
			completed++
			if ses.Status().Resumed {
				resumed++
			}
		default:
			lost++
		}
	}
	m := o.Metrics
	p50, p99 := m.Get("serve.p50_ms"), m.Get("serve.p99_ms")
	t.addRow("flood + drain/restart", fmt.Sprintf("%d", nSessions), fmt.Sprintf("%d", completed),
		fmt.Sprintf("%d", lost), fmt.Sprintf("%d", p50), fmt.Sprintf("%d", p99))
	t.claim(lost == 0 && completed == nSessions,
		"all %d concurrent campaigns complete across a SIGTERM-style drain and restart (%d lost)",
		nSessions, lost)
	t.claim(resumed > 0 || info["sessions_interrupted"]+info["sessions_queued"] == 0,
		"%d sessions caught by the drain resumed from their checkpoints after restart", resumed)
	t.claim(p99 >= p50 && p99 > 0,
		"submit-to-done latency published: p50=%dms p99=%dms (serve.p50_ms/serve.p99_ms)", p50, p99)

	// Phase 2: memory-budget eviction. A 1-byte budget evicts every retained
	// result but the newest; the evicted campaign recovers from disk when
	// resubmitted under its corpus ID.
	evDir := filepath.Join(tmp, "evict")
	evSrv, err := serve.New(serve.Options{
		Dir: evDir, MaxConcurrent: 1, MemoryBudget: 1, DefaultWorkers: 1, Obs: o,
	})
	if err != nil {
		return fail("start eviction server: %v", err)
	}
	defer evSrv.Close()
	var evSessions []*serve.Session
	for i := 0; i < 3; i++ {
		ses, err := evSrv.Submit(serve.Spec{
			Workload: "foo", MaxRuns: 12, Workers: 1, CorpusID: fmt.Sprintf("ev-%d", i),
		})
		if err != nil {
			return fail("eviction submit %d: %v", i, err)
		}
		evSessions = append(evSessions, ses)
	}
	deadline = time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		settled := true
		for _, ses := range evSessions {
			if st := ses.State(); st == serve.StateQueued || st == serve.StateRunning {
				settled = false
			}
		}
		if settled {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	evicted := m.Get("serve.evicted")
	t.addRow("memory-budget eviction", "3", "3", "0", "-", "-")
	t.claim(evicted > 0, "a 1-byte retention budget evicted %d finished sessions (serve.evicted)", evicted)
	rec, err := evSrv.Submit(serve.Spec{Workload: "foo", MaxRuns: 12, Workers: 1, CorpusID: "ev-0"})
	if err != nil {
		return fail("recovery submit: %v", err)
	}
	recState := waitTerminal(rec, time.Minute)
	recResult, ok := evSrv.Result(rec.ID)
	t.claim(recState == serve.StateDone && ok && recResult.Resumed,
		"an evicted campaign recovers from disk when resubmitted under its corpus ID")

	// Phase 3: capped-cache determinism through the server. A session with a
	// tiny proof-cache cap must canonicalize identically to an uncapped
	// in-process run — eviction costs recomputation, never results.
	w, _ := lexapp.Get("lexer")
	runs := 120
	if cfg.Quick {
		runs = 60
	}
	ref := search.Run(concolic.New(w.Build(), concolic.ModeHigherOrder), search.Options{
		MaxRuns: runs, Seeds: w.Seeds, Bounds: w.Bounds, Workers: 1,
		Ctx: context.Background(), Obs: cfg.Obs,
	})
	refCanon, err := ref.Canonical()
	if err != nil {
		return fail("canonicalize reference: %v", err)
	}
	capSrv, err := serve.New(serve.Options{
		Dir: filepath.Join(tmp, "capped"), CacheCap: 8, SummaryCap: 8, DefaultWorkers: 1, Obs: o,
	})
	if err != nil {
		return fail("start capped server: %v", err)
	}
	defer capSrv.Close()
	capSes, err := capSrv.Submit(serve.Spec{Workload: "lexer", MaxRuns: runs, Workers: 1})
	if err != nil {
		return fail("capped submit: %v", err)
	}
	if st := waitTerminal(capSes, 5*time.Minute); st != serve.StateDone {
		return fail("capped session ended %s", st)
	}
	capRes, _ := capSrv.Result(capSes.ID)
	same := capRes != nil && string(capRes.CanonicalStats) == string(refCanon)
	mark := "=="
	if !same {
		mark = "DIVERGED"
	}
	t.addRow("capped-cache determinism", "1", "1", "0", "-", mark)
	t.claim(same,
		"a server session with an 8-entry proof-cache cap is bit-identical in canonical stats to an uncapped in-process search")
	return t
}

// waitTerminal polls a session until it leaves queued/running, returning the
// settled state ("" on timeout).
func waitTerminal(ses *serve.Session, timeout time.Duration) string {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := ses.State()
		if st != serve.StateQueued && st != serve.StateRunning {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	return ""
}
