package eval

import (
	"fmt"

	"hotg/internal/difftest"
	"hotg/internal/faults"
)

// A6OracleCampaign runs the differential/metamorphic oracle (DESIGN.md §10)
// as an experiment: a clean sweep of seeded random cases across every
// technique must produce zero findings, and a drill with the injected
// floored-modulo VM defect must be caught and delta-debugged to a
// small reproducer — the paper's soundness theorems and the pipeline's
// cross-layer invariants exercised as one standing campaign.
func A6OracleCampaign(cfg Config) *Table {
	cfg = cfg.defaults()
	t := &Table{
		ID:    "A6",
		Title: "differential oracle campaign: clean sweep and fault drill (§4–§6 theorems, executable)",
		PaperClaim: "\"higher-order test generation ... is grounded in a validity-preserving proof " +
			"system\" (Theorems 1–4): prover verdicts must match exhaustive finite-domain ground " +
			"truth, generated tests must replay, and every technique must agree with concrete execution",
		Columns: []string{"phase", "cases", "findings", "detail"},
	}

	progSeeds, folSeeds := int64(20), int64(60)
	if cfg.Quick {
		progSeeds, folSeeds = 6, 20
	}
	dcfg := difftest.Config{}

	// Phase 1: O2 — prover verdicts vs exhaustive enumeration over all
	// inputs and all uninterpreted-function tables.
	folFindings := 0
	for seed := int64(1); seed <= folSeeds; seed++ {
		folFindings += len(difftest.CheckO2(difftest.NewFolCase(seed)))
	}
	t.addRow("O2 formulas", fmt.Sprintf("%d", folSeeds), fmt.Sprintf("%d", folFindings),
		"Prove vs ground-truth enumeration + strategy replay")
	t.claim(folFindings == 0, "prover verdicts match exhaustive enumeration on %d seeded formulas", folSeeds)

	// Phase 2: O1+O3 — every technique end-to-end on random programs, with
	// the metamorphic relations (workers, renaming, checkpoint/kill/resume).
	progFindings := 0
	for seed := int64(1); seed <= progSeeds; seed++ {
		progFindings += len(difftest.CheckCase(difftest.NewCase(seed), dcfg))
	}
	t.addRow("O1+O3 programs", fmt.Sprintf("%d", progSeeds), fmt.Sprintf("%d", progFindings),
		"replay, interp/VM agreement, metamorphic relations")
	t.claim(progFindings == 0, "all techniques agree with concrete execution on %d seeded programs", progSeeds)

	// Phase 3: fault drill — the injected silent VM defect (floored modulo)
	// must be caught by the differential oracle and shrink to a small
	// reproducer. This is the oracle's own positive control.
	caught := difftest.Finding{}
	drillCases := int64(0)
	restore := faults.Set(&faults.Plan{VMWrongMod: true})
	for seed := int64(1); seed <= 50; seed++ {
		drillCases++
		if fs := difftest.CheckO1(difftest.NewCase(seed), dcfg); len(fs) > 0 {
			caught = fs[0]
			caught.Fault = "vm-wrong-mod"
			break
		}
	}
	restore()
	if caught.Oracle == "" {
		t.addRow("fault drill", fmt.Sprintf("%d", drillCases), "0", "vm-wrong-mod NOT caught")
		t.claim(false, "injected floored-modulo VM defect is caught by the oracle")
		return t
	}
	min, stmts, err := difftest.MinimizeFinding(caught, dcfg, 400)
	if err != nil {
		t.addRow("fault drill", fmt.Sprintf("%d", drillCases), "1", "shrink failed: "+err.Error())
		t.claim(false, "caught finding shrinks: %v", err)
		return t
	}
	t.addRow("fault drill", fmt.Sprintf("%d", drillCases), "1",
		fmt.Sprintf("caught at seed %d, shrunk to %d stmts", caught.Seed, stmts))
	t.claim(true, "injected floored-modulo VM defect is caught by the oracle")
	t.claim(stmts <= 10, "reproducer delta-debugs to <= 10 statements (got %d)", stmts)
	t.note("minimized reproducer:\n%s", min)
	return t
}
