package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"hotg/internal/campaign"
	"hotg/internal/concolic"
	"hotg/internal/obs"
	"hotg/internal/search"
)

// runSession executes one admitted session end to end: compile the spec,
// lock the corpus, build the per-session observability stack, run (or
// resume) the search, commit the corpus, and finalize. It owns the
// session's slot; releasing it re-pumps the queue.
func (s *Server) runSession(ses *Session) {
	defer s.wg.Done()
	st, err := s.execute(ses)
	s.finalize(ses, st, err)
	s.mu.Lock()
	s.running--
	s.pumpLocked()
	s.publishGauges()
	s.persistLocked()
	s.mu.Unlock()
}

// execute runs the search for one session. It returns the (possibly
// partial) stats and the first error encountered; both may be non-nil —
// a commit failure after a successful search still has stats worth keeping.
func (s *Server) execute(ses *Session) (st *search.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: session panicked: %v", r)
		}
	}()

	r, err := resolveSpec(ses.spec)
	if err != nil {
		return nil, err
	}
	ses.mu.Lock()
	ses.workload, ses.mode = r.name, r.mode.String()
	ses.mu.Unlock()

	dir := s.corpusDir(ses.CorpusID)
	lock, err := campaign.AcquireLock(dir)
	if err != nil {
		return nil, err
	}
	defer lock.Release()

	// Per-session observability: an isolated registry, a recorder-only
	// tracer (no writer — events live in the ring, streamed by /events).
	rec := obs.NewFlightRecorder(s.opts.FlightRecorderSize)
	tracer := obs.NewTracer(nil).WithRecorder(rec)
	defer tracer.Close()
	o := obs.New()
	o.Trace = tracer

	ctx, cancel := context.WithCancel(s.baseCtx)
	if s.opts.SessionTimeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, s.opts.SessionTimeout)
	}
	defer cancel()
	ses.mu.Lock()
	ses.o, ses.rec, ses.cancel = o, rec, cancel
	ses.mu.Unlock()

	camp, err := campaign.Open(dir, r.name, r.mode.String(), o)
	if err != nil {
		return nil, err
	}

	eng := concolic.New(r.prog, r.mode)
	if eng.Summaries != nil {
		eng.Summaries.MaxCases = s.opts.SummaryCap
	}

	maxRuns := ses.spec.MaxRuns
	if maxRuns <= 0 {
		maxRuns = s.opts.DefaultMaxRuns
	}
	workers := ses.spec.Workers
	if workers <= 0 {
		workers = s.opts.DefaultWorkers
	}
	every := ses.spec.CheckpointEvery
	if every <= 0 {
		every = s.opts.CheckpointEvery
	}

	opts := search.Options{
		MaxRuns:  maxRuns,
		Workers:  workers,
		Bounds:   r.bounds,
		Obs:      o,
		Ctx:      ctx,
		CacheCap: s.opts.CacheCap,
		Budget: search.Budget{
			SearchTimeout: time.Duration(ses.spec.BudgetMS) * time.Millisecond,
			ProofTimeout:  time.Duration(ses.spec.ProofTimeoutMS) * time.Millisecond,
			Degrade:       ses.spec.Degrade,
		},
		Checkpoint: search.CheckpointOptions{Every: every, Sink: camp.SaveCheckpoint},
	}
	// Submit-to-first-test latency: stamp the first non-seed,
	// non-intermediate applied run, then hand off to the corpus recorder.
	opts.OnRun = func(rr search.RunRecord) {
		if !rr.Seed && !rr.Intermediate {
			ses.mu.Lock()
			if ses.firstTestMS < 0 {
				ses.firstTestMS = time.Since(ses.submitted).Milliseconds()
			}
			ses.mu.Unlock()
		}
		camp.RecordRun(rr)
	}

	// Resume from the corpus's latest checkpoint when one fits this
	// engine; a valid snapshot overrides MaxRuns so the continuation is
	// bit-identical to the interrupted session's remainder. Without a
	// checkpoint, a reused corpus still warm-starts from its best inputs.
	if snap, cerr := camp.LatestCheckpoint(); cerr == nil && snap != nil {
		if verr := snap.Validate(eng); verr == nil {
			opts.Restore = snap
			opts.MaxRuns = snap.MaxRuns
			ses.mu.Lock()
			ses.resumed = true
			ses.mu.Unlock()
		}
	}
	if opts.Restore == nil {
		switch {
		case len(r.seeds) > 0:
			opts.Seeds = r.seeds
		default:
			opts.Seeds = [][]int64{make([]int64, len(eng.InputVars))}
		}
		if seeded := camp.SeedInputs(8); len(seeded) > 0 {
			opts.Seeds = seeded
			ses.mu.Lock()
			ses.resumed = true
			ses.mu.Unlock()
		}
	}

	st = search.Run(eng, opts)
	if cerr := camp.Commit(); cerr != nil {
		return st, fmt.Errorf("serve: corpus commit: %w", cerr)
	}
	return st, nil
}

// finalize transitions a session out of running: map the outcome to a
// terminal (or interrupted) state, build and persist the result, record
// latencies, and charge the retained bytes against the memory budget.
func (s *Server) finalize(ses *Session, st *search.Stats, err error) {
	ses.mu.Lock()
	cancelReq := ses.cancelReq
	firstTest := ses.firstTestMS
	doneMS := time.Since(ses.submitted).Milliseconds()
	resumed := ses.resumed
	ses.cancel = nil
	ses.mu.Unlock()

	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()

	state := StateDone
	errMsg := ""
	switch {
	case err != nil:
		state, errMsg = StateFailed, err.Error()
	case st != nil && st.Budget.Cancelled && cancelReq:
		state = StateCancelled
	case st != nil && st.Budget.Cancelled && draining:
		// Drain, not a user cancel: the last periodic checkpoint is on
		// disk and the restarted server resumes this session.
		state = StateInterrupted
	case st != nil && st.Budget.Cancelled:
		// Base-context cancellation without drain (e.g. tests closing the
		// server) — treat like a drain.
		state = StateInterrupted
	}

	res := &Result{
		ID: ses.ID, CorpusID: ses.CorpusID, State: state, Error: errMsg,
		Resumed: resumed, FirstTestMS: firstTest, DoneMS: doneMS,
	}
	ses.mu.Lock()
	res.Workload, res.Mode = ses.workload, ses.mode
	ses.mu.Unlock()
	if st != nil {
		res.Summary = st.Summary()
		res.Runs, res.TestsGenerated, res.Bugs = st.Runs, st.TestsGenerated, len(st.Bugs)
		if canon, cerr := st.Canonical(); cerr == nil {
			res.CanonicalStats = canon
		}
	}
	s.fillResultFromCorpus(res)

	var counter string
	switch state {
	case StateDone:
		counter = "serve.completed"
	case StateFailed:
		counter = "serve.failed"
	case StateCancelled:
		counter = "serve.cancelled"
	case StateInterrupted:
		counter = "serve.interrupted"
	}
	s.obs.Counter(counter).Inc()

	data, merr := json.MarshalIndent(res, "", "  ")
	if merr == nil && state != StateInterrupted {
		_ = campaign.WriteFileAtomic(s.corpusDir(ses.CorpusID)+"/result.json", data, 0o644)
	}

	ses.mu.Lock()
	ses.state = state
	ses.errMsg = errMsg
	if state != StateInterrupted {
		ses.result = res
	}
	// Observability handles stay attached while the result is retained so
	// /events can still serve the flight dump; eviction drops both.
	ses.mu.Unlock()

	if state == StateDone || state == StateCancelled {
		s.recordLatencies(firstTest, doneMS)
	}
	if state != StateInterrupted {
		s.mu.Lock()
		s.retainLocked(ses, int64(len(data))+int64(s.opts.FlightRecorderSize)*128)
		s.mu.Unlock()
	}
}

// fillResultFromCorpus loads the committed corpus entries and triage
// buckets into a result. The corpus is the durable source of truth — a
// resumed session's result covers the whole campaign, not just its slice.
func (s *Server) fillResultFromCorpus(res *Result) {
	camp, err := campaign.Open(s.corpusDir(res.CorpusID), res.Workload, res.Mode, nil)
	if err != nil {
		return
	}
	for _, e := range camp.Entries() {
		if e.Rung == "seed" {
			continue
		}
		res.Tests = append(res.Tests, TestCase{
			Input: e.Input, Rung: e.Rung, Run: e.Run, Bug: e.Bug,
		})
	}
	res.Buckets = camp.Buckets()
}
