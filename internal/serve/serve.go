// Package serve is the multi-tenant campaign server: test generation as a
// service. It accepts campaign submissions over HTTP, runs each as an
// isolated session — its own obs registry and flight recorder, its own
// locked corpus root, its own cancellation context, LRU-capped proof and
// summary caches — under bounded concurrency with a submission queue and
// backpressure, a server-wide memory budget with LRU eviction of retained
// results, and graceful drain: on SIGTERM in-flight sessions stop at their
// last periodic checkpoint and a restarted server resumes them
// bit-identically by corpus ID. See DESIGN.md §14 for the lifecycle state
// machine and the determinism argument.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"hotg/internal/campaign"
	"hotg/internal/concolic"
	"hotg/internal/fleet"
	"hotg/internal/lexapp"
	"hotg/internal/mini"
	"hotg/internal/obs"
	"hotg/internal/obshttp"
	"hotg/internal/smt"
)

// Submission errors, mapped to HTTP statuses by the handler layer.
var (
	// ErrQueueFull means both the running slots and the admission queue are
	// at capacity; the client should retry after backoff (429).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining means the server is shutting down and admits nothing (503).
	ErrDraining = errors.New("serve: server is draining")
	// ErrCorpusBusy means a live session already owns the requested corpus
	// ID (409); wait for it or pick another corpus.
	ErrCorpusBusy = errors.New("serve: corpus is in use by a live session")
)

// Options configures a Server. The zero value is usable: defaults are
// applied by New.
type Options struct {
	// Dir is the data root: sessions.json plus one corpus directory per
	// corpus ID under Dir/corpus/. Required.
	Dir string
	// MaxConcurrent bounds simultaneously running sessions (default 4).
	MaxConcurrent int
	// MaxQueue bounds sessions waiting for a slot (default 256). A
	// submission past both bounds is rejected with ErrQueueFull.
	MaxQueue int
	// MemoryBudget bounds the bytes of retained finished-session state
	// (results, flight recorders). Exceeding it evicts the
	// least-recently-used finished sessions — their results remain on disk
	// and resubmitting with the same corpus ID recovers the campaign.
	// Default 256 MiB.
	MemoryBudget int64
	// CacheCap is the per-session proof-cache LRU bound, in entries per
	// map (search.Options.CacheCap); default 4096, -1 disables capping.
	CacheCap int
	// SummaryCap is the per-session compositional-summary LRU bound
	// (concolic.SummaryCache.MaxCases); default 1024, -1 disables capping.
	SummaryCap int
	// DefaultMaxRuns is the execution budget for specs that set none
	// (default 150).
	DefaultMaxRuns int
	// DefaultWorkers is the per-session worker count for specs that set
	// none (default 2).
	DefaultWorkers int
	// CheckpointEvery is the default checkpoint cadence in runs (default
	// 20) — the upper bound on replayed work after a drain.
	CheckpointEvery int
	// SessionTimeout caps each session's wall clock (0 = none).
	SessionTimeout time.Duration
	// FlightRecorderSize is the per-session event ring capacity (default
	// 512).
	FlightRecorderSize int
	// Obs receives the server-wide serve.* metrics (admissions, evictions,
	// latency histograms). May be nil.
	Obs *obs.Obs
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 4
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 256
	}
	if o.MemoryBudget <= 0 {
		o.MemoryBudget = 256 << 20
	}
	if o.CacheCap == 0 {
		o.CacheCap = 4096
	}
	if o.CacheCap < 0 {
		o.CacheCap = 0
	}
	if o.SummaryCap == 0 {
		o.SummaryCap = 1024
	}
	if o.SummaryCap < 0 {
		o.SummaryCap = 0
	}
	if o.DefaultMaxRuns <= 0 {
		o.DefaultMaxRuns = 150
	}
	if o.DefaultWorkers <= 0 {
		o.DefaultWorkers = 2
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 20
	}
	if o.FlightRecorderSize <= 0 {
		o.FlightRecorderSize = 512
	}
	return o
}

// Server runs campaign sessions. Create with New, serve its Handler, and
// shut down with Drain (graceful; checkpointed sessions resume on restart)
// or Close (Drain with a default timeout).
type Server struct {
	opts Options
	obs  *obs.Obs

	baseCtx    context.Context
	cancelBase context.CancelFunc

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string   // submission order, for listing and persistence
	queue    []*Session // admission queue, FIFO
	lruDone  []string   // finished sessions retaining results, LRU first
	running  int
	retained int64
	seq      int
	draining bool

	persistMu sync.Mutex
	wg        sync.WaitGroup
}

// New opens (creating if needed) the data directory, recovers the session
// index from a previous process — re-queuing interrupted sessions for
// checkpoint resume and reloading finished results from disk — and returns
// a server ready to admit submissions.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("serve: Options.Dir is required")
	}
	if err := os.MkdirAll(filepath.Join(opts.Dir, "corpus"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts: opts, obs: opts.Obs,
		baseCtx: ctx, cancelBase: cancel,
		sessions: make(map[string]*Session),
	}
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	s.mu.Lock()
	s.pumpLocked()
	s.publishGauges()
	s.mu.Unlock()
	return s, nil
}

// Submit validates and admits one campaign submission. It returns the
// session immediately (202-style): progress streams from /events and the
// result appears when the state turns terminal. Errors: ErrDraining,
// ErrQueueFull, ErrCorpusBusy, or a validation error.
func (s *Server) Submit(spec Spec) (*Session, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs.Counter("serve.submitted").Inc()
	if s.draining {
		s.obs.Counter("serve.rejected.draining").Inc()
		return nil, ErrDraining
	}
	// Conflict before capacity: holding a busy corpus is the more specific
	// rejection, and it should not depend on queue pressure.
	if spec.CorpusID != "" {
		for _, other := range s.sessions {
			if other.CorpusID == spec.CorpusID && !terminalState(other.State()) {
				s.obs.Counter("serve.rejected.conflict").Inc()
				return nil, fmt.Errorf("%w: corpus %q is held by %s", ErrCorpusBusy, spec.CorpusID, other.ID)
			}
		}
	}
	if len(s.queue) >= s.opts.MaxQueue {
		s.obs.Counter("serve.rejected.queue_full").Inc()
		return nil, ErrQueueFull
	}
	s.seq++
	id := fmt.Sprintf("s%06d", s.seq)
	corpusID := spec.CorpusID
	if corpusID == "" {
		corpusID = id
	}
	ses := &Session{
		ID: id, CorpusID: corpusID, srv: s, spec: spec,
		state: StateQueued, submitted: time.Now(), firstTestMS: -1,
	}
	s.sessions[id] = ses
	s.order = append(s.order, id)
	s.queue = append(s.queue, ses)
	s.obs.Counter("serve.admitted").Inc()
	s.pumpLocked()
	s.publishGauges()
	s.persistLocked()
	return ses, nil
}

// Get returns a session by ID.
func (s *Server) Get(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ses, ok := s.sessions[id]
	return ses, ok
}

// List returns every session in submission order.
func (s *Server) List() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.sessions[id])
	}
	return out
}

// Cancel stops a session: a queued one is removed from the queue and marked
// cancelled; a running one has its context cancelled and finishes with
// partial (valid) results. Returns false for unknown or already-terminal
// sessions.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	ses, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	ses.mu.Lock()
	switch ses.state {
	case StateQueued:
		ses.state = StateCancelled
		ses.mu.Unlock()
		for i, q := range s.queue {
			if q == ses {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.obs.Counter("serve.cancelled").Inc()
		s.publishGauges()
		s.persistLocked()
		s.mu.Unlock()
		return true
	case StateRunning:
		ses.mu.Unlock()
		s.mu.Unlock()
		ses.requestCancel()
		return true
	}
	ses.mu.Unlock()
	s.mu.Unlock()
	return false
}

// Result returns a finished session's retained result, touching its
// eviction recency. ok is false while the session is still queued/running
// or after eviction (state says which).
func (s *Server) Result(id string) (*Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ses, ok := s.sessions[id]
	if !ok {
		return nil, false
	}
	ses.mu.Lock()
	res := ses.result
	ses.mu.Unlock()
	if res == nil {
		return nil, false
	}
	s.touchLocked(id)
	return res, true
}

// Drain stops admission, cancels running sessions (their last periodic
// checkpoint stays on disk; they are marked interrupted and resume on the
// next start), waits up to timeout for them to settle, and persists the
// session index. Queued sessions stay queued in the index and run after a
// restart. Safe to call more than once.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	s.draining = true
	var live []*Session
	for _, ses := range s.sessions {
		if ses.State() == StateRunning {
			live = append(live, ses)
		}
	}
	s.mu.Unlock()
	for _, ses := range live {
		ses.mu.Lock()
		cancel := ses.cancel
		ses.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-time.After(timeout):
		err = fmt.Errorf("serve: drain timed out after %v with sessions still running", timeout)
	}
	s.cancelBase()
	s.mu.Lock()
	s.persistLocked()
	s.mu.Unlock()
	return err
}

// Close drains with a 30-second timeout.
func (s *Server) Close() error { return s.Drain(30 * time.Second) }

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Info returns the /statusz headline contribution: session counts by state
// and the retained-memory figure.
func (s *Server) Info() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	counts := map[string]int64{}
	for _, ses := range s.sessions {
		counts["sessions_"+ses.State()]++
	}
	counts["sessions_total"] = int64(len(s.sessions))
	counts["retained_bytes"] = s.retained
	counts["queue_len"] = int64(len(s.queue))
	return counts
}

// SessionStatuses returns one /statusz row per session, in submission
// order — each backed by that session's own registry.
func (s *Server) SessionStatuses() []obshttp.SessionStatus {
	sessions := s.List()
	out := make([]obshttp.SessionStatus, 0, len(sessions))
	for _, ses := range sessions {
		out = append(out, obshttp.SessionStatus{
			ID: ses.ID, State: ses.State(), Headline: ses.headline(),
		})
	}
	return out
}

// pumpLocked starts queued sessions while running slots are free. Caller
// holds s.mu.
func (s *Server) pumpLocked() {
	for s.running < s.opts.MaxConcurrent && len(s.queue) > 0 && !s.draining {
		ses := s.queue[0]
		s.queue = s.queue[1:]
		ses.mu.Lock()
		ses.state = StateRunning
		ses.mu.Unlock()
		s.running++
		s.wg.Add(1)
		go s.runSession(ses)
	}
}

// touchLocked refreshes a finished session's LRU recency. Caller holds s.mu.
func (s *Server) touchLocked(id string) {
	for i, d := range s.lruDone {
		if d == id {
			s.lruDone = append(s.lruDone[:i], s.lruDone[i+1:]...)
			s.lruDone = append(s.lruDone, id)
			return
		}
	}
}

// retainLocked charges a finished session's result against the memory
// budget and evicts the least-recently-used finished sessions past it.
// Caller holds s.mu.
func (s *Server) retainLocked(ses *Session, bytes int64) {
	ses.mu.Lock()
	ses.resultBytes = bytes
	ses.mu.Unlock()
	s.retained += bytes
	s.lruDone = append(s.lruDone, ses.ID)
	for s.retained > s.opts.MemoryBudget && len(s.lruDone) > 1 {
		victimID := s.lruDone[0]
		s.lruDone = s.lruDone[1:]
		victim := s.sessions[victimID]
		victim.mu.Lock()
		s.retained -= victim.resultBytes
		victim.resultBytes = 0
		victim.result = nil
		victim.o = nil
		victim.rec = nil
		victim.state = StateEvicted
		victim.errMsg = "evicted under the server memory budget; resubmit with corpus_id " +
			victim.CorpusID + " to recover the campaign from disk"
		victim.mu.Unlock()
		s.obs.Counter("serve.evicted").Inc()
	}
	s.publishGauges()
}

// publishGauges refreshes the serve.* gauges. Caller holds s.mu.
func (s *Server) publishGauges() {
	if !s.obs.Enabled() {
		return
	}
	s.obs.Gauge("serve.sessions.running").Set(int64(s.running))
	s.obs.Gauge("serve.sessions.queued").Set(int64(len(s.queue)))
	s.obs.Gauge("serve.retained_bytes").Set(s.retained)
	s.obs.Gauge("serve.sessions.total").Set(int64(len(s.sessions)))
}

// recordLatencies observes one finished session in the server-wide
// histograms and republishes the p50/p99 gauges benchtab reads.
func (s *Server) recordLatencies(firstTestMS, doneMS int64) {
	if !s.obs.Enabled() {
		return
	}
	if firstTestMS >= 0 {
		s.obs.Histogram("serve.submit_to_first_test_ms").Observe(firstTestMS)
	}
	h := s.obs.Histogram("serve.submit_to_done_ms")
	h.Observe(doneMS)
	s.obs.Gauge("serve.p50_ms").Set(h.Quantile(0.50))
	s.obs.Gauge("serve.p99_ms").Set(h.Quantile(0.99))
	if fh := s.obs.Histogram("serve.submit_to_first_test_ms"); firstTestMS >= 0 {
		s.obs.Gauge("serve.first_test_p50_ms").Set(fh.Quantile(0.50))
		s.obs.Gauge("serve.first_test_p99_ms").Set(fh.Quantile(0.99))
	}
}

// corpusDir returns the on-disk root for a corpus ID.
func (s *Server) corpusDir(corpusID string) string {
	return filepath.Join(s.opts.Dir, "corpus", corpusID)
}

func (s *Server) sessionsPath() string { return filepath.Join(s.opts.Dir, "sessions.json") }

// persistLocked serializes the session index. Caller holds s.mu; the disk
// write itself is serialized by persistMu so concurrent finalizers cannot
// interleave.
func (s *Server) persistLocked() {
	rows := make([]persistRec, 0, len(s.order))
	for _, id := range s.order {
		rows = append(rows, s.sessions[id].persistRec())
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return
	}
	s.persistMu.Lock()
	_ = campaign.WriteFileAtomic(s.sessionsPath(), data, 0o644)
	s.persistMu.Unlock()
}

// persist snapshots and writes the index without the caller holding s.mu.
func (s *Server) persist() {
	s.mu.Lock()
	s.persistLocked()
	s.mu.Unlock()
}

// recover rebuilds the session index from a previous process: terminal
// sessions reload their persisted results (missing results degrade to
// evicted — the corpus is still on disk), and queued/running/interrupted
// sessions are re-queued, resuming from their latest campaign checkpoint.
func (s *Server) recover() error {
	data, err := os.ReadFile(s.sessionsPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	var rows []persistRec
	if err := json.Unmarshal(data, &rows); err != nil {
		return fmt.Errorf("serve: corrupt %s: %w", s.sessionsPath(), err)
	}
	for _, row := range rows {
		ses := &Session{
			ID: row.ID, CorpusID: row.CorpusID, srv: s, spec: row.Spec,
			submitted: time.Now(), firstTestMS: -1,
			workload: row.Spec.Workload, mode: row.Spec.Mode,
		}
		var n int
		if _, err := fmt.Sscanf(row.ID, "s%d", &n); err == nil && n > s.seq {
			s.seq = n
		}
		switch row.State {
		case StateDone, StateFailed, StateCancelled:
			res, bytes := s.loadResult(row.CorpusID)
			if res == nil {
				ses.state = StateEvicted
				ses.errMsg = "result not retained across restart; resubmit with corpus_id " +
					row.CorpusID + " to recover the campaign from disk"
			} else {
				ses.state = row.State
				ses.errMsg = row.Error
				ses.resumed = row.Resumed
				ses.result = res
				s.sessions[row.ID] = ses
				s.order = append(s.order, row.ID)
				s.retainLocked(ses, bytes)
				continue
			}
		case StateEvicted:
			ses.state = StateEvicted
			ses.errMsg = row.Error
		default:
			// queued, running, interrupted: run (again); the campaign
			// checkpoint makes the resume bit-identical to the lost
			// session's continuation.
			ses.state = StateQueued
			ses.resumed = true
			s.queue = append(s.queue, ses)
			s.obs.Counter("serve.resumed").Inc()
		}
		s.sessions[row.ID] = ses
		s.order = append(s.order, row.ID)
	}
	return nil
}

// loadResult reads a persisted result.json from a corpus directory.
func (s *Server) loadResult(corpusID string) (*Result, int64) {
	data, err := os.ReadFile(filepath.Join(s.corpusDir(corpusID), "result.json"))
	if err != nil {
		return nil, 0
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, 0
	}
	return &res, int64(len(data))
}

// validateSpec rejects malformed submissions before admission.
func validateSpec(spec Spec) error {
	if (spec.Workload == "") == (spec.Source == "") {
		return errors.New("serve: exactly one of workload or source is required")
	}
	if spec.Workload != "" {
		if _, ok := lexapp.Get(spec.Workload); !ok {
			return fmt.Errorf("serve: unknown workload %q", spec.Workload)
		}
	}
	if spec.Mode != "" {
		if _, err := fleet.ParseMode(spec.Mode); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	if spec.CorpusID != "" && !validCorpusID(spec.CorpusID) {
		return fmt.Errorf("serve: corpus_id %q must match [a-zA-Z0-9._-]{1,128} and not start with a dot", spec.CorpusID)
	}
	if spec.MaxRuns < 0 || spec.Workers < 0 || spec.BudgetMS < 0 || spec.ProofTimeoutMS < 0 {
		return errors.New("serve: negative budgets are invalid")
	}
	return nil
}

// validCorpusID keeps corpus IDs safe as single path components.
func validCorpusID(id string) bool {
	if id == "" || len(id) > 128 || id[0] == '.' {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// resolved is a compiled submission: the program, its identity, and the
// search configuration derived from the spec and server defaults.
type resolved struct {
	prog   *mini.Program
	name   string
	mode   concolic.Mode
	seeds  [][]int64
	bounds []smt.Bound
}

// resolveSpec compiles the submission. Workload specs reuse the registered
// program; source specs compile against the default natives ("hash",
// "hashstr") and are named by content hash so equal sources share nothing
// but their text.
func resolveSpec(spec Spec) (resolved, error) {
	var r resolved
	r.mode = concolic.ModeHigherOrder
	if spec.Mode != "" {
		m, err := fleet.ParseMode(spec.Mode)
		if err != nil {
			return r, err
		}
		r.mode = m
	}
	if spec.Workload != "" {
		w, ok := lexapp.Get(spec.Workload)
		if !ok {
			return r, fmt.Errorf("serve: unknown workload %q", spec.Workload)
		}
		r.prog, r.name, r.seeds, r.bounds = w.Build(), w.Name, w.Seeds, w.Bounds
	} else {
		prog, err := mini.Parse(spec.Source)
		if err != nil {
			return r, fmt.Errorf("serve: parse: %w", err)
		}
		ns := mini.Natives{}
		ns.Register("hash", 1, lexapp.ScrambledHash)
		ns.Register("hashstr", lexapp.ChunkLen, lexapp.HashStr)
		if err := mini.Check(prog, ns); err != nil {
			return r, fmt.Errorf("serve: check: %w", err)
		}
		sum := sha256.Sum256([]byte(spec.Source))
		r.prog, r.name = prog, "inline-"+hex.EncodeToString(sum[:6])
	}
	if len(spec.Seeds) > 0 {
		r.seeds = spec.Seeds
	}
	return r, nil
}

// sortedStates is a debugging helper used by tests: the states of every
// session, sorted.
func (s *Server) sortedStates() []string {
	var out []string
	for _, ses := range s.List() {
		out = append(out, ses.State())
	}
	sort.Strings(out)
	return out
}
