package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
)

// Handler returns the campaign API, rooted at /api/v1/:
//
//	POST   /api/v1/campaigns          submit a Spec            → 202 + Status
//	GET    /api/v1/campaigns          list sessions            → []Status
//	GET    /api/v1/campaigns/{id}     session status           → Status
//	GET    /api/v1/campaigns/{id}/events   flight dump (JSONL); ?follow=1 tails
//	GET    /api/v1/campaigns/{id}/result   retained result     → Result
//	DELETE /api/v1/campaigns/{id}     cancel a queued/running session
//
// Error mapping: full queue → 429 with Retry-After, corpus conflict → 409,
// draining → 503 with Retry-After, evicted result → 410 Gone (the corpus is
// still on disk; resubmit with the same corpus_id to recover), bad spec →
// 400, unknown ID → 404. Mount it on an obshttp.Server via Mounts["/api/"]
// so one port serves campaigns, /statusz, /metrics, and pprof.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/campaigns", s.handleCampaigns)
	mux.HandleFunc("/api/v1/campaigns/", s.handleCampaign)
	return mux
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, apiError{Error: msg})
}

func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, "invalid spec: "+err.Error())
			return
		}
		ses, err := s.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "2")
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "10")
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, ErrCorpusBusy):
			writeError(w, http.StatusConflict, err.Error())
		case err != nil:
			writeError(w, http.StatusBadRequest, err.Error())
		default:
			w.Header().Set("Location", "/api/v1/campaigns/"+ses.ID)
			writeJSON(w, http.StatusAccepted, ses.Status())
		}
	case http.MethodGet:
		sessions := s.List()
		out := make([]Status, 0, len(sessions))
		for _, ses := range sessions {
			out = append(out, ses.Status())
		}
		writeJSON(w, http.StatusOK, out)
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/campaigns/")
	id, sub, _ := strings.Cut(rest, "/")
	ses, ok := s.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no session "+strconv.Quote(id))
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, ses.Status())
	case sub == "" && r.Method == http.MethodDelete:
		if !s.Cancel(id) {
			writeError(w, http.StatusConflict, "session "+id+" is already "+ses.State())
			return
		}
		writeJSON(w, http.StatusOK, ses.Status())
	case sub == "result" && r.Method == http.MethodGet:
		res, ok := s.Result(id)
		if !ok {
			st := ses.State()
			switch st {
			case StateEvicted:
				writeError(w, http.StatusGone,
					"result evicted; resubmit with corpus_id "+ses.CorpusID+" to recover the campaign")
			case StateQueued, StateRunning, StateInterrupted:
				writeError(w, http.StatusConflict, "session is "+st+"; result not ready")
			default:
				writeError(w, http.StatusNotFound, "no result for session "+id)
			}
			return
		}
		writeJSON(w, http.StatusOK, res)
	case sub == "events" && r.Method == http.MethodGet:
		s.handleSessionEvents(w, r, ses)
	default:
		writeError(w, http.StatusNotFound, "unknown resource "+strconv.Quote(sub))
	}
}

// handleSessionEvents serves the session's flight recorder as JSONL: the
// retained window first, then — with ?follow=1 — a live tail until the
// client disconnects, the session's recorder closes, or ?max=N events have
// streamed. The event schema is the stable obs.Tracer schema; a session's
// stream here is byte-compatible with a file trace of the same run.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request, ses *Session) {
	rec := ses.recorder()
	if rec == nil {
		st := ses.State()
		if st == StateEvicted {
			writeError(w, http.StatusGone, "events evicted with the session result")
			return
		}
		writeError(w, http.StatusConflict, "session is "+st+"; no events yet")
		return
	}
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	enc := json.NewEncoder(w)
	for _, ev := range rec.Snapshot() {
		_ = enc.Encode(ev)
	}
	if r.URL.Query().Get("follow") == "" {
		return
	}
	maxEvents := int64(1 << 62)
	if v := r.URL.Query().Get("max"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= 0 {
			maxEvents = n
		}
	}
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	ch, cancel := rec.Subscribe(256)
	defer cancel()
	ctx := r.Context()
	var streamed int64
	for streamed < maxEvents {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			streamed++
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
