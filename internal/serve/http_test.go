package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hotg/internal/obs"
	"hotg/internal/obshttp"
	"hotg/internal/serve"
)

// newHTTPServer mounts the campaign API on an introspection server, the
// production wiring: one port serves /api/v1/, /statusz, and /metrics.
func newHTTPServer(t *testing.T, opts serve.Options) (*serve.Server, *httptest.Server) {
	t.Helper()
	if opts.Obs == nil {
		opts.Obs = obs.New()
	}
	s := newServer(t, opts)
	intro := obshttp.New(opts.Obs)
	intro.Info = s.Info
	intro.Sessions = s.SessionStatuses
	intro.Mounts = map[string]http.Handler{"/api/": s.Handler()}
	ts := httptest.NewServer(intro.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postCampaign(t *testing.T, ts *httptest.Server, spec serve.Spec) (serve.Status, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Status
	_ = json.NewDecoder(resp.Body).Decode(&st)
	return st, resp
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		_ = json.NewDecoder(resp.Body).Decode(v)
	}
	return resp
}

// TestHTTPLifecycle drives one campaign through the REST API: submit (202),
// poll status, fetch the result, read the flight events, and see the
// session on /statusz.
func TestHTTPLifecycle(t *testing.T) {
	_, ts := newHTTPServer(t, serve.Options{})

	st, resp := postCampaign(t, ts, serve.Spec{Workload: "foo", MaxRuns: 25, Workers: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if loc == "" || st.ID == "" {
		t.Fatalf("submit response missing Location/ID: %+v", st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur serve.Status
		getJSON(t, ts.URL+loc, &cur)
		if cur.State == serve.StateDone {
			break
		}
		if cur.State == serve.StateFailed {
			t.Fatalf("session failed: %s", cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var res serve.Result
	if resp := getJSON(t, ts.URL+loc+"/result", &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	if res.TestsGenerated == 0 || len(res.Tests) == 0 {
		t.Fatalf("empty result over HTTP: %+v", res)
	}

	// Events: the JSONL dump must parse line by line as obs events.
	evResp, err := http.Get(ts.URL + loc + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	sc := bufio.NewScanner(evResp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("no flight events for a finished session")
	}

	// /statusz carries the per-session row.
	var statusz obshttp.Statusz
	getJSON(t, ts.URL+"/statusz", &statusz)
	if len(statusz.Sessions) != 1 || statusz.Sessions[0].ID != st.ID {
		t.Fatalf("statusz sessions = %+v", statusz.Sessions)
	}
	if statusz.Headline["sessions_total"] != 1 {
		t.Fatalf("statusz headline = %+v", statusz.Headline)
	}
}

// TestHTTPErrorMapping checks each error path's status code: 400 bad spec,
// 404 unknown session, 409 conflict, 429 queue full with Retry-After, and
// 410 for evicted results.
func TestHTTPErrorMapping(t *testing.T) {
	s, ts := newHTTPServer(t, serve.Options{MaxConcurrent: 1, MaxQueue: 1, MemoryBudget: 1})

	if _, resp := postCampaign(t, ts, serve.Spec{Workload: "no-such"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/api/v1/campaigns/s999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}

	// Fill the slot and the queue with a slow session and a queued one.
	slow, _ := postCampaign(t, ts, serve.Spec{Workload: "lexer", MaxRuns: 3000, Workers: 1, CorpusID: "slot"})
	if _, resp := postCampaign(t, ts, serve.Spec{Workload: "foo", MaxRuns: 5, Workers: 1}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: status %d", resp.StatusCode)
	}
	if _, resp := postCampaign(t, ts, serve.Spec{Workload: "bar", MaxRuns: 5, Workers: 1}); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-queue submit: status %d, want 429", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if _, resp := postCampaign(t, ts, serve.Spec{Workload: "lexer", CorpusID: "slot"}); resp.StatusCode != http.StatusConflict {
		t.Errorf("corpus conflict: status %d, want 409", resp.StatusCode)
	}

	// Result before done: 409.
	if resp := getJSON(t, ts.URL+"/api/v1/campaigns/"+slow.ID+"/result", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("early result: status %d, want 409", resp.StatusCode)
	}

	// Cancel the slow session over HTTP and let the queue drain.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/campaigns/"+slow.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %v status %d", err, resp.StatusCode)
	}
	var sessions []serve.Status
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		getJSON(t, ts.URL+"/api/v1/campaigns", &sessions)
		settled := true
		for _, cur := range sessions {
			if cur.State == serve.StateQueued || cur.State == serve.StateRunning {
				settled = false
			}
		}
		if settled && len(sessions) == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Memory budget 1 byte: all but the newest finisher evicted → 410 with
	// a recovery hint.
	evictedID := ""
	for _, cur := range sessions {
		if cur.State == serve.StateEvicted {
			evictedID = cur.ID
		}
	}
	if evictedID == "" {
		t.Fatalf("no evicted session among %+v", sessions)
	}
	resp := getJSON(t, ts.URL+"/api/v1/campaigns/"+evictedID+"/result", nil)
	if resp.StatusCode != http.StatusGone {
		t.Errorf("evicted result: status %d, want 410", resp.StatusCode)
	}

	// Draining: all submissions bounce with 503.
	go s.Drain(time.Minute)
	deadline = time.Now().Add(10 * time.Second)
	for !s.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, resp := postCampaign(t, ts, serve.Spec{Workload: "foo"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("drain submit: status %d, want 503", resp.StatusCode)
	}
}

// TestHTTPFollowEvents streams a live session's events with ?follow=1 and
// sees at least one event arrive after the dump.
func TestHTTPFollowEvents(t *testing.T) {
	_, ts := newHTTPServer(t, serve.Options{})
	st, _ := postCampaign(t, ts, serve.Spec{Workload: "lexer", MaxRuns: 400, Workers: 1})

	// Wait for the session to start so the recorder exists.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		var cur serve.Status
		getJSON(t, ts.URL+"/api/v1/campaigns/"+st.ID, &cur)
		if cur.State == serve.StateRunning || cur.State == serve.StateDone {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/api/v1/campaigns/" + st.ID + "/events?follow=1&max=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "jsonl") {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() && lines < 5 {
		lines++
	}
	if lines == 0 {
		t.Fatal("followed stream delivered nothing")
	}
}
