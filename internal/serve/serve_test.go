package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"hotg/internal/campaign"
	"hotg/internal/concolic"
	"hotg/internal/lexapp"
	"hotg/internal/search"
	"hotg/internal/serve"
)

// waitState polls until the session reaches a terminal state (or interrupted)
// and returns it.
func waitState(t *testing.T, ses *serve.Session, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := ses.State()
		switch st {
		case serve.StateDone, serve.StateFailed, serve.StateCancelled,
			serve.StateEvicted, serve.StateInterrupted:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s did not settle within %v (state %s)", ses, timeout, ses.State())
	return ""
}

func newServer(t *testing.T, opts serve.Options) *serve.Server {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSubmitToDone runs one small campaign end to end and checks the result
// carries tests, canonical stats, and latency stamps.
func TestSubmitToDone(t *testing.T) {
	s := newServer(t, serve.Options{})
	defer s.Close()
	ses, err := s.Submit(serve.Spec{Workload: "foo", MaxRuns: 30, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, ses, 30*time.Second); st != serve.StateDone {
		t.Fatalf("state = %s, want done", st)
	}
	res, ok := s.Result(ses.ID)
	if !ok {
		t.Fatal("no retained result")
	}
	if res.Runs == 0 || res.TestsGenerated == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if len(res.CanonicalStats) == 0 {
		t.Fatal("result has no canonical stats")
	}
	if len(res.Tests) == 0 {
		t.Fatal("result has no test cases")
	}
	if res.FirstTestMS < 0 || res.DoneMS < res.FirstTestMS {
		t.Fatalf("latency stamps out of order: first=%d done=%d", res.FirstTestMS, res.DoneMS)
	}
	if res.Mode != "higher-order" {
		t.Fatalf("mode = %q, want higher-order default", res.Mode)
	}
}

// TestInlineSource compiles and runs a submitted program rather than a
// registered workload.
func TestInlineSource(t *testing.T) {
	s := newServer(t, serve.Options{})
	defer s.Close()
	src := `
fn main(x int, y int) {
	if (x == hash(y)) {
		if (y == 7) {
			error("inline-bug");
		}
	}
}`
	ses, err := s.Submit(serve.Spec{Source: src, MaxRuns: 20, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, ses, 30*time.Second); st != serve.StateDone {
		t.Fatalf("state = %s, want done", st)
	}
	res, _ := s.Result(ses.ID)
	if res == nil || res.TestsGenerated == 0 {
		t.Fatalf("inline source produced no tests: %+v", res)
	}
	if !strings.HasPrefix(res.Workload, "inline-") {
		t.Fatalf("workload = %q, want inline-<hash>", res.Workload)
	}
}

// TestSpecValidation rejects malformed submissions before admission.
func TestSpecValidation(t *testing.T) {
	s := newServer(t, serve.Options{})
	defer s.Close()
	for _, spec := range []serve.Spec{
		{},                                    // neither workload nor source
		{Workload: "foo", Source: "func m"},   // both
		{Workload: "no-such-workload"},        // unknown workload
		{Workload: "foo", Mode: "warp-speed"}, // unknown mode
		{Workload: "foo", CorpusID: "../out"}, // path escape
		{Workload: "foo", CorpusID: ".hide"},  // dotfile
		{Workload: "foo", MaxRuns: -1},        // negative budget
	} {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted, want error", spec)
		}
	}
}

// TestBackpressure fills the running slots and the queue, then expects
// ErrQueueFull — the 429 path.
func TestBackpressure(t *testing.T) {
	s := newServer(t, serve.Options{MaxConcurrent: 1, MaxQueue: 2})
	defer s.Close()
	var sessions []*serve.Session
	for i := 0; i < 3; i++ {
		ses, err := s.Submit(serve.Spec{Workload: "foo", MaxRuns: 25, Workers: 1})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		sessions = append(sessions, ses)
	}
	// Slots: 1 running + 2 queued. The next must bounce.
	if _, err := s.Submit(serve.Spec{Workload: "foo", MaxRuns: 5}); !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("4th submit: err = %v, want ErrQueueFull", err)
	}
	for _, ses := range sessions {
		if st := waitState(t, ses, 60*time.Second); st != serve.StateDone {
			t.Fatalf("%s: state %s, want done", ses, st)
		}
	}
}

// TestCorpusConflict: a corpus ID held by a live session is rejected (409),
// and two sessions on different corpus roots run concurrently without lock
// contention — the per-directory lock scope.
func TestCorpusConflict(t *testing.T) {
	s := newServer(t, serve.Options{MaxConcurrent: 2})
	defer s.Close()
	a, err := s.Submit(serve.Spec{Workload: "lexer", MaxRuns: 120, Workers: 1, CorpusID: "shared"})
	if err != nil {
		t.Fatal(err)
	}
	// Same corpus while a is live: conflict.
	if _, err := s.Submit(serve.Spec{Workload: "lexer", CorpusID: "shared"}); !errors.Is(err, serve.ErrCorpusBusy) {
		t.Fatalf("same-corpus submit: err = %v, want ErrCorpusBusy", err)
	}
	// Different corpus root: admitted and runs concurrently.
	b, err := s.Submit(serve.Spec{Workload: "foo", MaxRuns: 20, Workers: 1, CorpusID: "other"})
	if err != nil {
		t.Fatalf("different-corpus submit: %v", err)
	}
	if st := waitState(t, b, 30*time.Second); st != serve.StateDone {
		t.Fatalf("b: state %s, want done", st)
	}
	if st := waitState(t, a, 60*time.Second); st != serve.StateDone {
		t.Fatalf("a: state %s, want done", st)
	}
	// After a finishes, the corpus is free: resubmitting resumes it.
	c, err := s.Submit(serve.Spec{Workload: "lexer", MaxRuns: 10, Workers: 1, CorpusID: "shared"})
	if err != nil {
		t.Fatalf("resubmit after done: %v", err)
	}
	if st := waitState(t, c, 30*time.Second); st != serve.StateDone {
		t.Fatalf("c: state %s, want done", st)
	}
}

// TestExternalLockConflict: a corpus directory locked by another live
// process (simulated by holding the lock in-test) fails the session with
// the campaign lock error rather than corrupting the corpus.
func TestExternalLockConflict(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, serve.Options{Dir: dir})
	defer s.Close()
	lock, err := campaign.AcquireLock(filepath.Join(dir, "corpus", "held"))
	if err != nil {
		t.Fatal(err)
	}
	defer lock.Release()
	ses, err := s.Submit(serve.Spec{Workload: "foo", MaxRuns: 5, CorpusID: "held"})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, ses, 30*time.Second); st != serve.StateFailed {
		t.Fatalf("state = %s, want failed", st)
	}
	if status := ses.Status(); !strings.Contains(status.Error, "locked by live session") {
		t.Fatalf("error = %q, want lock-held message", status.Error)
	}
}

// TestCancel cancels a running session; it finishes with partial, valid
// results in state cancelled.
func TestCancel(t *testing.T) {
	s := newServer(t, serve.Options{})
	defer s.Close()
	ses, err := s.Submit(serve.Spec{Workload: "lexer", MaxRuns: 5000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Let it get going, then cancel.
	deadline := time.Now().Add(20 * time.Second)
	for ses.Status().Runs < 5 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !s.Cancel(ses.ID) {
		t.Fatalf("Cancel returned false in state %s", ses.State())
	}
	if st := waitState(t, ses, 30*time.Second); st != serve.StateCancelled {
		t.Fatalf("state = %s, want cancelled", st)
	}
	res, ok := s.Result(ses.ID)
	if !ok || res.Runs == 0 {
		t.Fatalf("cancelled session kept no partial result: %+v", res)
	}
	if res.Runs >= 5000 {
		t.Fatalf("session ran to completion (%d runs) despite cancel", res.Runs)
	}
}

// TestEvictionAndRecovery: a tiny memory budget evicts the oldest finished
// session; its result is gone from memory (410 path) but resubmitting with
// the same corpus ID recovers the campaign from disk.
func TestEvictionAndRecovery(t *testing.T) {
	s := newServer(t, serve.Options{MemoryBudget: 1, MaxConcurrent: 1})
	defer s.Close()
	first, err := s.Submit(serve.Spec{Workload: "foo", MaxRuns: 25, Workers: 1, CorpusID: "evictme"})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, first, 30*time.Second); st != serve.StateDone {
		t.Fatalf("first: state %s", st)
	}
	second, err := s.Submit(serve.Spec{Workload: "bar", MaxRuns: 25, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, second, 30*time.Second); st != serve.StateDone {
		t.Fatalf("second: state %s", st)
	}
	// Budget 1 byte: finishing the second evicts the first (LRU keeps the
	// newest).
	if st := first.State(); st != serve.StateEvicted {
		t.Fatalf("first: state %s, want evicted", st)
	}
	if _, ok := s.Result(first.ID); ok {
		t.Fatal("evicted session still served a result")
	}
	if msg := first.Status().Error; !strings.Contains(msg, "evictme") {
		t.Fatalf("eviction message %q does not name the corpus to resubmit", msg)
	}
	// Recovery: resubmit with the corpus ID; the corpus (and its result
	// history) is still on disk.
	again, err := s.Submit(serve.Spec{Workload: "foo", MaxRuns: 10, Workers: 1, CorpusID: "evictme"})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, again, 30*time.Second); st != serve.StateDone {
		t.Fatalf("recovered: state %s", st)
	}
	res, ok := s.Result(again.ID)
	if !ok {
		t.Fatal("recovered session has no result")
	}
	if !res.Resumed {
		t.Fatal("recovered session did not mark itself resumed")
	}
}

// TestDrainResumeDeterminism is the tentpole acceptance test: interrupt a
// running session with a drain, restart the server on the same directory,
// let the re-queued session finish, and compare its canonical stats to an
// uninterrupted reference run — they must be bit-identical.
func TestDrainResumeDeterminism(t *testing.T) {
	w, _ := lexapp.Get("lexer")
	const maxRuns = 140

	// Reference: one uninterrupted run, same knobs as the server's —
	// including a cancellation context, which flags Budget.Configured.
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	ref := search.Run(eng, search.Options{
		MaxRuns: maxRuns, Seeds: w.Seeds, Bounds: w.Bounds, Workers: 1,
		Ctx: context.Background(),
	})
	refCanon, err := ref.Canonical()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	opts := serve.Options{Dir: dir, CheckpointEvery: 10, DefaultWorkers: 1}
	s := newServer(t, opts)
	ses, err := s.Submit(serve.Spec{Workload: "lexer", MaxRuns: maxRuns, Workers: 1, CorpusID: "drainme"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is demonstrably past the first checkpoint, then drain.
	deadline := time.Now().Add(30 * time.Second)
	for ses.Status().Runs < 25 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Drain(30 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	interrupted := ses.State() == serve.StateInterrupted
	if !interrupted && ses.State() != serve.StateDone {
		t.Fatalf("after drain: state %s", ses.State())
	}
	if !interrupted {
		t.Log("session finished before the drain landed; resume path not exercised")
	}

	// Restart on the same directory: the interrupted session is re-queued
	// and resumes from its last checkpoint.
	s2 := newServer(t, opts)
	defer s2.Close()
	resumed, ok := s2.Get(ses.ID)
	if !ok {
		t.Fatalf("restarted server lost session %s", ses.ID)
	}
	if st := waitState(t, resumed, 60*time.Second); st != serve.StateDone {
		t.Fatalf("resumed session: state %s, want done", st)
	}
	res, ok := s2.Result(ses.ID)
	if !ok {
		t.Fatal("resumed session has no result")
	}
	if interrupted && !res.Resumed {
		t.Fatal("resumed session did not mark itself resumed")
	}
	if string(res.CanonicalStats) != string(refCanon) {
		t.Errorf("canonical stats diverge across drain/resume:\nref:     %s\nresumed: %s",
			refCanon, res.CanonicalStats)
	}
}

// TestRestartReloadsResults: finished sessions survive a restart — their
// results reload from result.json on disk.
func TestRestartReloadsResults(t *testing.T) {
	dir := t.TempDir()
	s := newServer(t, serve.Options{Dir: dir})
	ses, err := s.Submit(serve.Spec{Workload: "foo", MaxRuns: 20, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitState(t, ses, 30*time.Second); st != serve.StateDone {
		t.Fatalf("state %s", st)
	}
	res1, _ := s.Result(ses.ID)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newServer(t, serve.Options{Dir: dir})
	defer s2.Close()
	res2, ok := s2.Result(ses.ID)
	if !ok {
		t.Fatal("restarted server lost the finished result")
	}
	b1, _ := json.Marshal(res1)
	b2, _ := json.Marshal(res2)
	if string(b1) != string(b2) {
		t.Errorf("result changed across restart:\nbefore: %s\nafter:  %s", b1, b2)
	}
	// New IDs continue past recovered ones.
	ses2, err := s2.Submit(serve.Spec{Workload: "foo", MaxRuns: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ses2.ID == ses.ID {
		t.Fatalf("session ID %s reused after restart", ses2.ID)
	}
}

// TestGoroutineRelease: completed, cancelled, and evicted sessions release
// their workers, tracer, and recorder subscribers — the goroutine count
// returns to its baseline (with retry tolerance for runtime background
// goroutines).
func TestGoroutineRelease(t *testing.T) {
	s := newServer(t, serve.Options{MaxConcurrent: 2, MemoryBudget: 1})
	before := runtime.NumGoroutine()

	var sessions []*serve.Session
	for i := 0; i < 4; i++ {
		ses, err := s.Submit(serve.Spec{Workload: "foo", MaxRuns: 20, Workers: 2,
			CorpusID: fmt.Sprintf("leak-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, ses)
	}
	// One long session cancelled mid-flight.
	long, err := s.Submit(serve.Spec{Workload: "lexer", MaxRuns: 5000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, ses := range sessions {
		if st := waitState(t, ses, 60*time.Second); st != serve.StateDone && st != serve.StateEvicted {
			t.Fatalf("%s: state %s", ses, st)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for long.Status().Runs < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s.Cancel(long.ID)
	if st := waitState(t, long, 30*time.Second); st != serve.StateCancelled {
		t.Fatalf("long: state %s, want cancelled", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The eviction drill must have fired (budget is 1 byte).
	evicted := 0
	for _, ses := range sessions {
		if ses.State() == serve.StateEvicted {
			evicted++
		}
	}
	if evicted == 0 {
		t.Error("memory budget of 1 byte evicted nothing")
	}

	// Goroutines drain asynchronously; retry with tolerance.
	tolerance := 3
	var after int
	for i := 0; i < 100; i++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before+tolerance {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after sessions finished (tolerance %d)", before, after, tolerance)
}

// TestStatuszRows: every session reports a statusz row backed by its own
// registry.
func TestStatuszRows(t *testing.T) {
	s := newServer(t, serve.Options{})
	defer s.Close()
	ses, err := s.Submit(serve.Spec{Workload: "foo", MaxRuns: 15, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, ses, 30*time.Second)
	rows := s.SessionStatuses()
	if len(rows) != 1 || rows[0].ID != ses.ID {
		t.Fatalf("statusz rows = %+v", rows)
	}
	if rows[0].Headline["runs"] == 0 {
		t.Fatalf("session row has empty headline: %+v", rows[0])
	}
	info := s.Info()
	if info["sessions_total"] != 1 {
		t.Fatalf("Info() = %+v", info)
	}
}
