package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"hotg/internal/campaign"
	"hotg/internal/obs"
)

// Session states. The lifecycle is a straight line with three exits:
//
//	queued → running → done | failed | cancelled | interrupted
//	(done | failed | cancelled) → evicted        [memory budget]
//	interrupted → queued                          [server restart]
//
// done/failed/cancelled/evicted are terminal for this server process;
// interrupted is the drain state — the session's last periodic checkpoint is
// on disk and a restarted server re-queues it for a bit-identical resume.
// See DESIGN.md §14.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCancelled   = "cancelled"
	StateInterrupted = "interrupted"
	StateEvicted     = "evicted"
)

// terminalState reports whether a state will never change again on this
// server (interrupted sessions resume after a restart, so it is not
// terminal).
func terminalState(st string) bool {
	switch st {
	case StateDone, StateFailed, StateCancelled, StateEvicted:
		return true
	}
	return false
}

// Spec is one campaign submission: what to test, under which mode, and with
// how much budget. Exactly one of Workload (a registered lexapp program) or
// Source (inline mini source compiled with the default natives) must be set.
type Spec struct {
	// Workload names a registered program under test (e.g. "lexer", "foo").
	Workload string `json:"workload,omitempty"`
	// Source is inline mini source, compiled against the default natives
	// ("hash", "hashstr"). Mutually exclusive with Workload.
	Source string `json:"source,omitempty"`
	// Mode is the execution mode ("higher-order" by default; also "static",
	// "dart-unsound", "dart-sound", "dart-sound-delayed").
	Mode string `json:"mode,omitempty"`
	// MaxRuns is the execution budget (server default applies when 0).
	MaxRuns int `json:"max_runs,omitempty"`
	// Workers is the per-session worker count (server default when 0).
	// Results are bit-identical at any value; this is a wall-clock knob.
	Workers int `json:"workers,omitempty"`
	// CorpusID selects the on-disk corpus root. Submitting a new session
	// with the CorpusID of a finished or evicted one resumes that campaign:
	// the corpus, triage buckets, and latest checkpoint carry over. Defaults
	// to the session ID (a fresh corpus).
	CorpusID string `json:"corpus_id,omitempty"`
	// Seeds overrides the initial inputs (workload seeds by default; a zero
	// vector for inline sources).
	Seeds [][]int64 `json:"seeds,omitempty"`
	// BudgetMS caps the session's search wall clock, in milliseconds.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// ProofTimeoutMS caps each validity proof, in milliseconds.
	ProofTimeoutMS int64 `json:"proof_timeout_ms,omitempty"`
	// Degrade enables the precision-degradation ladder under tight budgets.
	Degrade bool `json:"degrade,omitempty"`
	// CheckpointEvery overrides the server's checkpoint cadence (runs).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// TestCase is one generated test in a session result.
type TestCase struct {
	Input []int64 `json:"input"`
	Rung  string  `json:"rung"`
	Run   int     `json:"run"`
	Bug   bool    `json:"bug,omitempty"`
}

// Result is the retained outcome of a finished session, served at
// /api/v1/campaigns/{id}/result and persisted as result.json in the
// session's corpus directory.
type Result struct {
	ID             string             `json:"id"`
	CorpusID       string             `json:"corpus_id"`
	State          string             `json:"state"`
	Error          string             `json:"error,omitempty"`
	Workload       string             `json:"workload"`
	Mode           string             `json:"mode"`
	Summary        string             `json:"summary"`
	Runs           int                `json:"runs"`
	TestsGenerated int                `json:"tests_generated"`
	Bugs           int                `json:"bugs"`
	Resumed        bool               `json:"resumed,omitempty"`
	CanonicalStats json.RawMessage    `json:"canonical_stats,omitempty"`
	Tests          []TestCase         `json:"tests,omitempty"`
	Buckets        []*campaign.Bucket `json:"buckets,omitempty"`
	FirstTestMS    int64              `json:"submit_to_first_test_ms"`
	DoneMS         int64              `json:"submit_to_done_ms"`
}

// Status is the live view of a session, served at /api/v1/campaigns/{id}.
type Status struct {
	ID        string `json:"id"`
	CorpusID  string `json:"corpus_id"`
	State     string `json:"state"`
	Error     string `json:"error,omitempty"`
	Workload  string `json:"workload,omitempty"`
	Mode      string `json:"mode,omitempty"`
	Runs      int64  `json:"runs"`
	Tests     int64  `json:"tests"`
	Bugs      int64  `json:"bugs"`
	Remaining int64  `json:"runs_remaining"`
	Resumed   bool   `json:"resumed,omitempty"`
	AgeMS     int64  `json:"age_ms"`
}

// Session is one isolated campaign inside the server: its own obs registry,
// tracer and flight recorder, its own corpus root (locked for the duration
// of the run), and its own cancellation context.
type Session struct {
	ID       string
	CorpusID string

	srv  *Server
	spec Spec

	mu        sync.Mutex
	state     string
	errMsg    string
	workload  string
	mode      string
	submitted time.Time
	resumed   bool
	cancelReq bool
	cancel    context.CancelFunc
	// o and rec are the per-session observability handles, nil before the
	// session starts and after eviction.
	o   *obs.Obs
	rec *obs.FlightRecorder
	// result is retained for terminal sessions until eviction; resultBytes
	// is its serialized size, charged against the server memory budget.
	result      *Result
	resultBytes int64
	firstTestMS int64 // -1 until the first generated test is applied
}

// State returns the session's current lifecycle state.
func (s *Session) State() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Status snapshots the live view. Progress numbers come from the session's
// own registry (the search publishes search.live.* gauges between batches).
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		ID: s.ID, CorpusID: s.CorpusID, State: s.state, Error: s.errMsg,
		Workload: s.workload, Mode: s.mode, Resumed: s.resumed,
		AgeMS: time.Since(s.submitted).Milliseconds(),
	}
	if s.o != nil {
		reg := s.o.Metrics
		st.Runs = reg.Get("search.live.runs")
		st.Tests = reg.Get("search.live.tests")
		st.Bugs = reg.Get("search.live.bugs")
		st.Remaining = reg.Get("search.live.runs_remaining")
	} else if s.result != nil {
		st.Runs = int64(s.result.Runs)
		st.Tests = int64(s.result.TestsGenerated)
		st.Bugs = int64(s.result.Bugs)
	}
	return st
}

// Headline renders the per-session /statusz row.
func (s *Session) headline() map[string]int64 {
	st := s.Status()
	return map[string]int64{
		"runs": st.Runs, "tests": st.Tests, "bugs": st.Bugs,
		"runs_remaining": st.Remaining, "age_ms": st.AgeMS,
	}
}

// recorder returns the session's flight recorder, or nil if the session has
// not started or was evicted.
func (s *Session) recorder() *obs.FlightRecorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}

// requestCancel cancels a running session's context (idempotent). The caller
// transitions queued sessions directly.
func (s *Session) requestCancel() {
	s.mu.Lock()
	s.cancelReq = true
	cancel := s.cancel
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// persistRec is the sessions.json row for one session — enough to rebuild
// the index and resume non-terminal sessions after a restart.
type persistRec struct {
	ID       string `json:"id"`
	CorpusID string `json:"corpus_id"`
	Spec     Spec   `json:"spec"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	Resumed  bool   `json:"resumed,omitempty"`
}

func (s *Session) persistRec() persistRec {
	s.mu.Lock()
	defer s.mu.Unlock()
	return persistRec{
		ID: s.ID, CorpusID: s.CorpusID, Spec: s.spec,
		State: s.state, Error: s.errMsg, Resumed: s.resumed,
	}
}

func (s *Session) String() string {
	return fmt.Sprintf("session %s (%s, corpus %s)", s.ID, s.State(), s.CorpusID)
}
