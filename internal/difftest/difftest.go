// Package difftest is the standing correctness harness of the pipeline: a
// differential + metamorphic oracle over randomly generated mini programs and
// randomly generated POST formulas. It checks the cross-cutting invariants no
// single package's unit tests see (DESIGN.md §10):
//
//	O1 — replay and differential execution: every input a search executed
//	     replays concretely along its recorded path, and every reported bug
//	     reproduces in both the tree-walking interpreter and the bytecode VM.
//	O2 — ground truth on finite domains: fol.Prove verdicts for
//	     POST(pc) = ∃X: A ⇒ pc are cross-checked against exhaustive
//	     enumeration over all input values and all uninterpreted-function
//	     tables of a finite domain, making Theorems 1–4 executable.
//	O3 — metamorphic relations: variable renaming, conjunct reordering,
//	     sample-set supersets, and checkpoint/kill/resume never change
//	     verdicts, bug buckets, or canonical stats at any worker count.
//
// Failing programs are auto-minimized by the delta-debugging shrinker
// (shrink.go) and persisted as regression corpus entries under
// testdata/regress/ so a defect, once seen, is pinned forever. The cmd/difftest
// driver runs bounded oracle campaigns for CI and operators.
package difftest

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"hotg/internal/lexapp"
	"hotg/internal/mini"
	"hotg/internal/smt"
)

// Finding is one oracle violation. The zero Detail is never valid: every
// finding names the relation that broke and the evidence.
type Finding struct {
	// Oracle is "O1", "O2", or "O3".
	Oracle string `json:"oracle"`
	// Relation names the specific invariant: "replay-path", "interp-vm",
	// "bug-reproduce", "enum-proved", "enum-invalid", "strategy-table",
	// "conjunct-reorder", "sample-superset", "prove-deterministic",
	// "rename-canonical", "rename-buckets", "workers-canonical",
	// "checkpoint-resume".
	Relation string `json:"relation"`
	// Detail is the human-readable evidence.
	Detail string `json:"detail"`
	// Seed identifies the generated case.
	Seed int64 `json:"seed"`
	// Source is the failing program (program-level findings only).
	Source string `json:"source,omitempty"`
	// Minimized is the shrunk reproducer, when the shrinker ran.
	Minimized string `json:"minimized,omitempty"`
	// Formula is the POST(pc) under test (formula-level findings only).
	Formula string `json:"formula,omitempty"`
	// Fault names the installed fault plan ("" = none).
	Fault string `json:"fault,omitempty"`
	// Input is the concrete input vector that witnessed the violation.
	Input []int64 `json:"input,omitempty"`
}

func (f Finding) String() string {
	b, err := json.Marshal(f)
	if err != nil {
		return fmt.Sprintf("%s/%s seed=%d: %s", f.Oracle, f.Relation, f.Seed, f.Detail)
	}
	return string(b)
}

// Config tunes one oracle pass.
type Config struct {
	// MaxRuns is the per-technique execution budget (default 30).
	MaxRuns int
	// Workers lists the worker counts O3 compares (default {1, 2}).
	Workers []int
}

func (c Config) defaults() Config {
	if c.MaxRuns <= 0 {
		c.MaxRuns = 30
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2}
	}
	return c
}

// Case is one generated program under test, with the fixed native registry,
// seed inputs, and input bounds every technique shares.
type Case struct {
	Seed    int64
	Src     string
	Prog    *mini.Program
	Natives mini.Natives
	Seeds   [][]int64
	Bounds  []smt.Bound
}

// CaseNatives returns the native registry oracle cases are checked against:
// the scrambled hash of the lexer study, the pipeline's canonical "unknown
// function".
func CaseNatives() mini.Natives {
	ns := mini.Natives{}
	ns.Register("hash", 1, lexapp.ScrambledHash)
	return ns
}

// NewCase deterministically generates the program case for a seed: a random
// always-terminating mini program (every other case with a helper function),
// one random seed input, and the [-10, 10] input box the experiments use.
func NewCase(seed int64) *Case {
	r := rand.New(rand.NewSource(seed))
	cfg := mini.GenConfig{Natives: []string{"hash"}, NumHelpers: r.Intn(2)}
	src := mini.GenProgram(r, cfg)
	natives := CaseNatives()
	prog := mini.MustCheck(mini.MustParse(src), natives)

	n := len(prog.Shape().Names)
	in := make([]int64, n)
	bounds := make([]smt.Bound, n)
	for i := range in {
		in[i] = int64(r.Intn(21) - 10)
		bounds[i] = smt.Bound{Lo: -10, Hi: 10, HasLo: true, HasHi: true}
	}
	return &Case{
		Seed: seed, Src: src, Prog: prog, Natives: natives,
		Seeds: [][]int64{in}, Bounds: bounds,
	}
}

// NewCallbackCase deterministically generates a higher-order program case:
// main takes one or two fn(int) int parameters the generated body calls
// through, so the higher-order searcher must construct function inputs and
// every recorded run may carry decision tables.
func NewCallbackCase(seed int64) *Case {
	r := rand.New(rand.NewSource(seed))
	cfg := mini.GenConfig{
		Natives:    []string{"hash"},
		NumHelpers: r.Intn(2),
		NumInputs:  2,
		FuncParams: 1 + r.Intn(2),
	}
	src := mini.GenProgram(r, cfg)
	natives := CaseNatives()
	prog := mini.MustCheck(mini.MustParse(src), natives)

	n := len(prog.Shape().Names)
	in := make([]int64, n)
	bounds := make([]smt.Bound, n)
	for i := range in {
		in[i] = int64(r.Intn(21) - 10)
		bounds[i] = smt.Bound{Lo: -10, Hi: 10, HasLo: true, HasHi: true}
	}
	return &Case{
		Seed: seed, Src: src, Prog: prog, Natives: natives,
		Seeds: [][]int64{in}, Bounds: bounds,
	}
}

// CaseFromSource builds a case from explicit source text (regression corpus
// replay, shrinker candidates). The seed input is the zero vector plus the
// case bounds, so replay is fully deterministic given the source alone.
func CaseFromSource(src string, seed int64) (*Case, error) {
	natives := CaseNatives()
	prog, err := mini.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := mini.Check(prog, natives); err != nil {
		return nil, err
	}
	n := len(prog.Shape().Names)
	in := make([]int64, n)
	bounds := make([]smt.Bound, n)
	for i := range in {
		bounds[i] = smt.Bound{Lo: -10, Hi: 10, HasLo: true, HasHi: true}
	}
	return &Case{
		Seed: seed, Src: src, Prog: prog, Natives: natives,
		Seeds: [][]int64{in}, Bounds: bounds,
	}, nil
}

// CheckCase runs the full program-level oracle suite (O1 + O3) on one case.
func CheckCase(c *Case, cfg Config) []Finding {
	cfg = cfg.defaults()
	findings := CheckO1(c, cfg)
	findings = append(findings, CheckO3(c, cfg)...)
	return findings
}
