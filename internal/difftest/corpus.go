package difftest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hotg/internal/campaign"
	"hotg/internal/faults"
	"hotg/internal/mini"
)

// Regression is one minimized reproducer pinned in the corpus: enough to
// replay the violation — the shrunk source, the fault plan that was
// installed (if any), and the oracle relation that fired. Regression files
// live under internal/difftest/testdata/regress and are replayed by the
// seeded oracle test on every `make test-difftest` run.
type Regression struct {
	// Name is the stable human-readable identity ("vm-wrong-mod").
	Name string `json:"name"`
	// Oracle and Relation identify the violated invariant.
	Oracle   string `json:"oracle"`
	Relation string `json:"relation"`
	// Fault names the faults.Plan to install during replay ("" = none).
	Fault string `json:"fault,omitempty"`
	// Source is the minimized program.
	Source string `json:"source"`
	// Stmts is the statement count of Source at commit time.
	Stmts int `json:"stmts"`
	// Seed is the generator seed the original failing program came from.
	Seed int64 `json:"seed"`
	// Detail preserves the original finding's evidence.
	Detail string `json:"detail,omitempty"`
}

// FaultPlan maps a regression's fault name to an installable plan. Unknown
// names return an error so corpus entries cannot silently replay without
// their fault.
func FaultPlan(name string) (*faults.Plan, error) {
	switch name {
	case "":
		return nil, nil
	case "vm-wrong-mod":
		return &faults.Plan{VMWrongMod: true}, nil
	}
	return nil, fmt.Errorf("difftest: unknown fault plan %q", name)
}

// WriteRegression persists one corpus entry atomically, named by the entry
// name and a content hash of the minimized source, and returns the path.
func WriteRegression(dir string, reg Regression) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(reg.Source))
	name := fmt.Sprintf("%s-%s.json", reg.Name, hex.EncodeToString(sum[:6]))
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(reg, "", "  ")
	if err != nil {
		return "", err
	}
	return path, campaign.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

// LoadRegressions reads every corpus entry under dir, sorted by filename.
// A missing directory is an empty corpus.
func LoadRegressions(dir string) ([]Regression, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []Regression
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		var reg Regression
		if err := json.Unmarshal(data, &reg); err != nil {
			return nil, fmt.Errorf("difftest: corpus entry %s: %w", n, err)
		}
		out = append(out, reg)
	}
	return out, nil
}

// ReplayRegression re-runs the O1 oracle on a corpus entry under its fault
// plan and reports the findings. An entry that no longer reproduces returns
// no findings — the regression test treats that as failure (the pinned
// defect must stay caught as long as its fault is injectable).
func ReplayRegression(reg Regression, cfg Config) ([]Finding, error) {
	c, err := CaseFromSource(reg.Source, reg.Seed)
	if err != nil {
		return nil, fmt.Errorf("difftest: corpus entry %s does not check: %w", reg.Name, err)
	}
	plan, err := FaultPlan(reg.Fault)
	if err != nil {
		return nil, err
	}
	if plan != nil {
		defer faults.Set(plan)()
	}
	return CheckO1(c, cfg), nil
}

// MinimizeFinding shrinks a failing program-level finding: the predicate
// re-runs the O1 oracle (under the finding's fault plan, when set) and keeps
// any source that still produces a finding for the same oracle. The
// minimized source and its statement count are returned.
func MinimizeFinding(f Finding, cfg Config, maxTries int) (string, int, error) {
	plan, err := FaultPlan(f.Fault)
	if err != nil {
		return "", 0, err
	}
	natives := CaseNatives()
	keep := func(src string) bool {
		c, err := CaseFromSource(src, f.Seed)
		if err != nil {
			return false
		}
		if plan != nil {
			defer faults.Set(plan)()
		}
		return len(CheckO1(c, cfg)) > 0
	}
	if !keep(f.Source) {
		return "", 0, fmt.Errorf("difftest: finding does not reproduce from source; cannot shrink")
	}
	min := Shrink(f.Source, natives, keep, maxTries)
	prog, err := mini.Parse(min)
	if err != nil {
		return "", 0, err
	}
	return min, CountStmts(prog), nil
}
