package difftest

import (
	"hotg/internal/mini"
)

// The shrinker is a hierarchical delta debugger over mini ASTs. Given a
// failing program and a predicate that re-runs the oracle, it repeatedly
// applies the single reduction (statement deletion, branch splicing, or
// expression simplification) with the lowest index that keeps the program
// (a) statically valid — every candidate is re-parsed and re-checked — and
// (b) still failing, until no reduction applies. Each accepted candidate is
// strictly smaller, so termination is by node count.

// Shrink minimizes src while keep(src) stays true. keep is only called on
// programs that parse and check against the natives; the returned source
// always satisfies keep (at worst it is the input). maxTries bounds the
// total number of candidate evaluations (0 = a generous default), since
// keep typically re-runs whole searches.
func Shrink(src string, natives mini.Natives, keep func(string) bool, maxTries int) string {
	if maxTries <= 0 {
		maxTries = 2000
	}
	best := src
	tries := 0
	for {
		prog, err := mini.Parse(best)
		if err != nil {
			return best
		}
		n := countEdits(prog)
		improved := false
		for i := 0; i < n && tries < maxTries; i++ {
			cand, ok := editedSource(best, i)
			if !ok || cand == best {
				continue
			}
			reparsed, err := mini.Parse(cand)
			if err != nil {
				continue
			}
			if mini.Check(reparsed, natives) != nil {
				continue
			}
			tries++
			if keep(cand) {
				best = cand
				improved = true
				break
			}
		}
		if !improved || tries >= maxTries {
			return best
		}
	}
}

// CountStmts counts statement nodes across all functions — the size metric
// of the regression corpus ("shrunk to ≤ N statements").
func CountStmts(prog *mini.Program) int {
	n := 0
	var walk func(s mini.Stmt)
	walkBlock := func(b *mini.Block) {
		for _, s := range b.Stmts {
			walk(s)
		}
	}
	walk = func(s mini.Stmt) {
		n++
		switch x := s.(type) {
		case *mini.If:
			walkBlock(x.Then)
			if x.Else != nil {
				walk(x.Else)
			}
		case *mini.While:
			walkBlock(x.Body)
		case *mini.Block:
			n-- // a bare block is structure, not a statement
			walkBlock(x)
		}
	}
	for _, name := range prog.Order {
		walkBlock(prog.Funcs[name].Body)
	}
	return n
}

// editor enumerates reduction points in a deterministic pre-order walk.
// With target < 0 it only counts; otherwise the target-th point applies its
// reduction and the walk keeps rebuilding the rest of the tree unmodified.
type editor struct {
	n      int
	target int
}

func (e *editor) hit() bool {
	e.n++
	return e.n-1 == e.target
}

// countEdits returns the number of reduction points in the program.
func countEdits(prog *mini.Program) int {
	e := &editor{target: -1}
	e.program(prog)
	return e.n
}

// editedSource applies reduction point target to a fresh parse of src and
// returns the formatted result. ok is false when the point does not exist
// or the edit had no effect.
func editedSource(src string, target int) (out string, ok bool) {
	prog, err := mini.Parse(src)
	if err != nil {
		return "", false
	}
	e := &editor{target: target}
	e.program(prog)
	if e.n <= target {
		return "", false
	}
	return mini.Format(prog), true
}

func (e *editor) program(prog *mini.Program) {
	for _, name := range prog.Order {
		fn := prog.Funcs[name]
		fn.Body.Stmts = e.stmts(fn.Body.Stmts)
	}
}

// stmts rebuilds a statement list, offering one deletion point per statement
// and splice points for control flow, then descending into what remains.
func (e *editor) stmts(in []mini.Stmt) []mini.Stmt {
	var out []mini.Stmt
	for _, s := range in {
		if e.hit() { // delete the statement outright
			continue
		}
		switch x := s.(type) {
		case *mini.If:
			if e.hit() { // replace the if with its then-arm
				out = append(out, e.stmts(x.Then.Stmts)...)
				continue
			}
			if x.Else != nil && e.hit() { // replace the if with its else-arm
				switch alt := x.Else.(type) {
				case *mini.Block:
					out = append(out, e.stmts(alt.Stmts)...)
				default:
					out = append(out, e.stmt(alt))
				}
				continue
			}
			if x.Else != nil && e.hit() { // drop just the else-arm
				x.Else = nil
			}
		case *mini.While:
			if e.hit() { // replace the loop with one body pass
				out = append(out, e.stmts(x.Body.Stmts)...)
				continue
			}
		}
		out = append(out, e.stmt(s))
	}
	return out
}

// stmt descends into one statement's children.
func (e *editor) stmt(s mini.Stmt) mini.Stmt {
	switch x := s.(type) {
	case *mini.VarDecl:
		e.expr(&x.Init, false)
	case *mini.Assign:
		e.expr(&x.Val, false)
	case *mini.IndexAssign:
		e.expr(&x.Idx, false)
		e.expr(&x.Val, false)
	case *mini.If:
		e.expr(&x.Cond, true)
		x.Then.Stmts = e.stmts(x.Then.Stmts)
		if x.Else != nil {
			x.Else = e.stmt(x.Else)
		}
	case *mini.While:
		e.expr(&x.Cond, true)
		x.Body.Stmts = e.stmts(x.Body.Stmts)
	case *mini.Return:
		if x.Val != nil {
			e.expr(&x.Val, false)
		}
	case *mini.ExprStmt:
		e.expr(&x.X, false)
	case *mini.Block:
		x.Stmts = e.stmts(x.Stmts)
	}
	return s
}

// boolOp reports whether the binary operator yields a bool.
func boolOp(op mini.TokKind) bool {
	switch op {
	case mini.TokEq, mini.TokNe, mini.TokLt, mini.TokLe, mini.TokGt, mini.TokGe,
		mini.TokAndAnd, mini.TokOrOr:
		return true
	}
	return false
}

// expr offers replacement points for one expression slot, then descends.
// isBool tracks the type the slot demands so replacements stay well-typed
// (the re-check is still the authority; typing here just avoids wasted
// candidates).
func (e *editor) expr(p *mini.Expr, isBool bool) {
	switch x := (*p).(type) {
	case *mini.IntLit, *mini.BoolLit, *mini.Ident:
		return // already minimal
	case *mini.Unary:
		if e.hit() { // strip the operator
			*p = x.X
			return
		}
		e.expr(&x.X, x.Op == mini.TokBang)
	case *mini.Binary:
		opBool := boolOp(x.Op)
		sameType := !opBool || x.Op == mini.TokAndAnd || x.Op == mini.TokOrOr
		if sameType {
			if e.hit() { // keep only the left operand
				*p = x.X
				return
			}
			if e.hit() { // keep only the right operand
				*p = x.Y
				return
			}
		}
		if isBool {
			if e.hit() {
				*p = &mini.BoolLit{P: x.P, V: true}
				return
			}
			if e.hit() {
				*p = &mini.BoolLit{P: x.P, V: false}
				return
			}
		} else if e.hit() {
			*p = &mini.IntLit{P: x.P}
			return
		}
		operandBool := x.Op == mini.TokAndAnd || x.Op == mini.TokOrOr
		e.expr(&x.X, operandBool)
		e.expr(&x.Y, operandBool)
	case *mini.Call:
		if !isBool && e.hit() { // replace the call with zero
			*p = &mini.IntLit{P: x.P}
			return
		}
		for i := range x.Args {
			e.expr(&x.Args[i], false)
		}
	case *mini.Index:
		if !isBool && e.hit() {
			*p = &mini.IntLit{P: x.P}
			return
		}
		e.expr(&x.Idx, false)
	}
}
