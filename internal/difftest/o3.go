package difftest

import (
	"context"
	"fmt"
	"sort"

	"hotg/internal/campaign"
	"hotg/internal/concolic"
	"hotg/internal/search"
)

// canonical returns the scheduling-independent fingerprint of a search
// (Stats.Canonical): equal fingerprints mean the same explored trajectory —
// runs, tests, coverage, bugs, samples, and prover verdicts.
func canonical(s *search.Stats) (string, error) {
	b, err := s.Canonical()
	return string(b), err
}

// buckets returns the sorted triage-bucket signatures of a search's bugs,
// the identity under which the campaign subsystem deduplicates crashes.
func buckets(s *search.Stats) []string {
	var out []string
	seen := map[string]bool{}
	for _, b := range s.Bugs {
		sig := campaign.SignatureFor("difftest", b)
		if !seen[sig] {
			seen[sig] = true
			out = append(out, sig)
		}
	}
	sort.Strings(out)
	return out
}

func sameBuckets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckO3 checks the program-level metamorphic relations on the higher-order
// search (the mode with the most machinery in play): worker-count invariance,
// variable-renaming invariance, and checkpoint/kill/resume invariance, all
// compared by canonical stats and triage buckets.
func CheckO3(c *Case, cfg Config) []Finding {
	cfg = cfg.defaults()
	var findings []Finding
	report := func(relation, detail string) {
		findings = append(findings, Finding{
			Oracle: "O3", Relation: relation, Detail: detail,
			Seed: c.Seed, Source: c.Src,
		})
	}

	mode := concolic.ModeHigherOrder
	ref := c.runSearch(mode, cfg, searchParams{workers: 1})
	refC, err := canonical(ref)
	if err != nil {
		report("workers-canonical", fmt.Sprintf("reference run has no canonical form: %v", err))
		return findings
	}
	refB := buckets(ref)

	// Worker counts: the coordinator's canonical apply order makes every
	// worker count explore the identical trajectory.
	for _, w := range cfg.Workers {
		if w == 1 {
			continue
		}
		s := c.runSearch(mode, cfg, searchParams{workers: w})
		sc, err := canonical(s)
		if err != nil || sc != refC {
			report("workers-canonical", fmt.Sprintf(
				"canonical stats at %d workers differ from 1 worker (err=%v)", w, err))
		}
		if !sameBuckets(buckets(s), refB) {
			report("workers-canonical", fmt.Sprintf("bug buckets at %d workers differ from 1 worker", w))
		}
	}

	// Variable renaming: names never steer the search, so a consistent
	// alpha-renaming of every program identifier leaves the trajectory
	// untouched.
	renamed, err := RenameSource(c.Src, c.Natives)
	if err != nil {
		report("rename-canonical", fmt.Sprintf("renamer broke the program: %v", err))
	} else {
		rc := &Case{Seed: c.Seed, Src: renamed, Prog: c.Prog, Natives: c.Natives,
			Seeds: c.Seeds, Bounds: c.Bounds}
		s := rc.runSearch(mode, cfg, searchParams{workers: 1})
		sc, err := canonical(s)
		if err != nil || sc != refC {
			report("rename-canonical", fmt.Sprintf(
				"canonical stats changed under alpha-renaming (err=%v)", err))
		}
		if !sameBuckets(buckets(s), refB) {
			report("rename-buckets", "bug buckets changed under alpha-renaming")
		}
	}

	// Checkpoint/kill/resume: a checkpointed run matches the uninterrupted
	// one; killing a session mid-flight and resuming its last snapshot — at
	// a different worker count — still lands on the identical trajectory.
	var snaps []*search.Snapshot
	cp := c.runSearch(mode, cfg, searchParams{
		workers: 2,
		checkpoint: search.CheckpointOptions{
			Every: 3,
			Sink:  func(s *search.Snapshot) error { snaps = append(snaps, s); return nil },
		},
	})
	if sc, err := canonical(cp); err != nil || sc != refC {
		report("checkpoint-resume", fmt.Sprintf(
			"checkpointing perturbed the search (err=%v)", err))
	}
	if len(snaps) > 0 {
		snap := snaps[len(snaps)/2]
		s := c.runSearch(mode, cfg, searchParams{workers: 2, restore: snap})
		if sc, err := canonical(s); err != nil || sc != refC {
			report("checkpoint-resume", fmt.Sprintf(
				"resume from snapshot at run %d diverged from the uninterrupted search (err=%v)",
				snap.Runs, err))
		}
	}

	// The kill: cancel after the first checkpoint lands, then resume the
	// last delivered snapshot to completion.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var killSnaps []*search.Snapshot
	c.runSearch(mode, cfg, searchParams{
		workers: 2,
		ctx:     ctx,
		checkpoint: search.CheckpointOptions{
			Every: 2,
			Sink: func(s *search.Snapshot) error {
				killSnaps = append(killSnaps, s)
				if len(killSnaps) >= 2 {
					cancel()
				}
				return nil
			},
		},
	})
	if len(killSnaps) > 0 {
		snap := killSnaps[len(killSnaps)-1]
		s := c.runSearch(mode, cfg, searchParams{workers: 2, restore: snap})
		if sc, err := canonical(s); err != nil || sc != refC {
			report("checkpoint-resume", fmt.Sprintf(
				"resume after kill (snapshot at run %d) diverged from the uninterrupted search (err=%v)",
				snap.Runs, err))
		}
	}
	return findings
}
