package difftest

import (
	"fmt"
	"math/rand"

	"hotg/internal/fol"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// O2 makes the paper's theorems executable on a finite domain. A FolCase is
// a random POST(pc) = ∃X: A ⇒ pc instance over two integer variables and one
// unary uninterpreted function h, constructed so that every h application's
// argument is a plain variable or a constant of the finite domain folDomain.
// The prover runs with VarBounds restricting X to folDomain, so for any
// fixed table every pc evaluation only ever consults h on folDomain, and
// "for all interpretations of h" becomes an exhaustive loop over the finite
// set folRange^folDomain. The two verdict directions are checked by the two
// mechanisms that are actually sound for them:
//
//   - OutcomeInvalid comes from fol.Refute, whose completion witnesses
//     (constants 0 and 1, projection, successor, and -1-x over folDomain
//     arguments) all have ranges inside folRange; a completion with no
//     witness inside the box restricts to an enumerated table with no
//     witness. Invalid with every enumerated table satisfiable is therefore
//     a genuine refuter bug ("enum-invalid").
//   - OutcomeProved is constructive: the strategy must build a concrete
//     witness for EVERY interpretation. The oracle replays it against every
//     enumerated table — totalized outside folDomain, since strategy values
//     are not box-clamped — and checks pc holds ("strategy-table",
//     Theorems 1, 2 and 4 as executable checks). Enumeration alone cannot
//     check this direction: a proved witness may lie outside any finite box.
//   - OutcomeUnknown/OutcomeTimeout claim nothing and are not checked.
var (
	folDomain = []int64{-1, 0, 1, 2}
	folRange  = []int64{-3, -2, -1, 0, 1, 2, 3}
)

// folBounds is the VarBounds box matching folDomain.
func folBounds(c *FolCase) map[int]smt.Bound {
	lo, hi := folDomain[0], folDomain[len(folDomain)-1]
	b := smt.Bound{Lo: lo, Hi: hi, HasLo: true, HasHi: true}
	return map[int]smt.Bound{c.X.ID: b, c.Y.ID: b}
}

// FolCase is one generated O2 instance.
type FolCase struct {
	Seed    int64
	Pool    *sym.Pool
	X, Y    *sym.Var
	H       *sym.Func
	Conjs   []sym.Expr
	PC      sym.Expr
	Samples *sym.SampleStore
}

// String renders the case as the POST formula under its antecedent.
func (c *FolCase) String() string { return fol.PostString(c.PC, c.Samples) }

// NewFolCase deterministically generates the formula case for a seed: one to
// three conjuncts of linear atoms over x, y, and h applications (arguments
// restricted to variables and folDomain constants), occasionally disjoined
// pairwise, plus zero to two h samples with folDomain arguments and folRange
// values.
func NewFolCase(seed int64) *FolCase {
	r := rand.New(rand.NewSource(seed))
	c := &FolCase{Seed: seed, Pool: &sym.Pool{}}
	c.X = c.Pool.NewVar("x")
	c.Y = c.Pool.NewVar("y")
	c.H = c.Pool.FuncSym("h", 1)

	coef := func() int64 { return int64(r.Intn(5) - 2) } // -2..2
	coefNZ := func() int64 {
		for {
			if v := coef(); v != 0 {
				return v
			}
		}
	}
	arg := func() *sym.Sum {
		switch r.Intn(3) {
		case 0:
			return sym.VarTerm(c.X)
		case 1:
			return sym.VarTerm(c.Y)
		}
		return sym.Int(folDomain[r.Intn(len(folDomain))])
	}
	term := func() *sym.Sum {
		s := sym.Int(int64(r.Intn(7) - 3))
		if r.Intn(2) == 0 {
			s = sym.AddSum(s, sym.ScaleSum(coefNZ(), sym.VarTerm(c.X)))
		}
		if r.Intn(2) == 0 {
			s = sym.AddSum(s, sym.ScaleSum(coefNZ(), sym.VarTerm(c.Y)))
		}
		if r.Intn(2) == 0 {
			s = sym.AddSum(s, sym.ScaleSum(coefNZ(), sym.ApplyTerm(c.H, arg())))
		}
		return s
	}
	atom := func() sym.Expr {
		a, b := term(), term()
		switch r.Intn(4) {
		case 0:
			return sym.Eq(a, b)
		case 1:
			return sym.Ne(a, b)
		case 2:
			return sym.Le(a, b)
		}
		return sym.Lt(a, b)
	}

	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		if r.Intn(10) < 3 {
			c.Conjs = append(c.Conjs, sym.OrExpr(atom(), atom()))
		} else {
			c.Conjs = append(c.Conjs, atom())
		}
	}
	c.PC = sym.AndExpr(c.Conjs...)

	c.Samples = sym.NewSampleStore()
	perm := r.Perm(len(folDomain))
	for i := 0; i < r.Intn(3); i++ {
		a := folDomain[perm[i]]
		v := folRange[r.Intn(len(folRange))]
		c.Samples.Add(c.H, []int64{a}, v)
	}
	return c
}

// table is one total interpretation of h over folDomain.
type table map[int64]int64

func (t table) String() string {
	s := ""
	for _, a := range folDomain {
		s += fmt.Sprintf("h(%d)=%d ", a, t[a])
	}
	return s
}

// forEachTable enumerates every folRange-valued table over folDomain that is
// consistent with the samples, calling fn until it returns false. It reports
// whether enumeration ran to completion.
func forEachTable(samples *sym.SampleStore, h *sym.Func, fn func(table) bool) bool {
	pinned := map[int64]int64{}
	for _, s := range samples.All() {
		if s.Fn == h && len(s.Args) == 1 {
			pinned[s.Args[0]] = s.Out
		}
	}
	var free []int64
	for _, a := range folDomain {
		if _, ok := pinned[a]; !ok {
			free = append(free, a)
		}
	}
	idx := make([]int, len(free))
	for {
		t := table{}
		for a, v := range pinned {
			t[a] = v
		}
		for i, a := range free {
			t[a] = folRange[idx[i]]
		}
		if !fn(t) {
			return false
		}
		// Odometer step.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(folRange) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			return true
		}
	}
}

// witness reports whether some assignment of the variables over folDomain
// satisfies pc under the table.
func (c *FolCase) witness(pc sym.Expr, t table) bool {
	env := sym.Env{
		Vars: map[int]int64{},
		Fn: func(f *sym.Func, args []int64) (int64, bool) {
			v, ok := t[args[0]]
			return v, ok
		},
	}
	for _, vx := range folDomain {
		for _, vy := range folDomain {
			env.Vars[c.X.ID] = vx
			env.Vars[c.Y.ID] = vy
			if v, err := sym.EvalBool(pc, env); err == nil && v {
				return true
			}
		}
	}
	return false
}

// groundValid exhaustively decides POST(pc) over the finite domain: true iff
// every consistent table admits a witness assignment. The second result is a
// counterexample table when the first is false.
func (c *FolCase) groundValid(pc sym.Expr, samples *sym.SampleStore) (bool, table) {
	var cex table
	complete := forEachTable(samples, c.H, func(t table) bool {
		if !c.witness(pc, t) {
			cex = t
			return false
		}
		return true
	})
	return complete, cex
}

// tableStore materializes a table as a sample store (a total record of h on
// folDomain), the form strategy resolution consumes.
func (c *FolCase) tableStore(t table) *sym.SampleStore {
	st := sym.NewSampleStore()
	for _, a := range folDomain {
		st.Add(c.H, []int64{a}, t[a])
	}
	return st
}

// prove runs the validity prover exactly as the search does — refutation
// enabled, input domains bounded to the finite box.
func (c *FolCase) prove(pc sym.Expr, samples *sym.SampleStore) (*fol.Strategy, fol.Outcome) {
	return fol.Prove(pc, samples, fol.Options{Pool: c.Pool, VarBounds: folBounds(c)})
}

// replayStrategy resolves the strategy under one enumerated table and checks
// pc at the resolved witness. Strategy values are not clamped to the box, so
// the table is totalized on demand: any probe outside folDomain is answered
// by the identity extension h(a)=a (a legal interpretation consistent with
// every sample, whose folDomain restriction is the enumerated table as far
// as box-bounded evaluation can observe). Returns "" on success.
func (c *FolCase) replayStrategy(st *fol.Strategy, t table) string {
	ext := func(a int64) int64 {
		if v, ok := t[a]; ok {
			return v
		}
		return a
	}
	store := c.tableStore(t)
	var res *fol.Resolution
	for iter := 0; ; iter++ {
		res = st.Resolve(store)
		if res.Complete {
			break
		}
		if len(res.Probes) == 0 || iter > 64 {
			return fmt.Sprintf("strategy %v does not resolve under table %s", st, t)
		}
		for _, pb := range res.Probes {
			store.Add(pb.Fn, pb.Args, ext(pb.Args[0]))
		}
	}
	for iter := 0; ; iter++ {
		holds, probes := fol.Holds(c.PC, res.Values, store)
		if len(probes) > 0 && iter <= 64 {
			for _, pb := range probes {
				store.Add(pb.Fn, pb.Args, ext(pb.Args[0]))
			}
			continue
		}
		if len(probes) > 0 || !holds {
			return fmt.Sprintf("strategy witness %v fails pc under table %s", res.Values, t)
		}
		return ""
	}
}

// CheckO2 cross-checks the prover verdict for the case against exhaustive
// enumeration, and — on OutcomeProved — replays the returned strategy against
// every enumerated table (the constructive content of Theorems 1–4).
func CheckO2(c *FolCase) []Finding {
	var findings []Finding
	report := func(relation, detail string) {
		findings = append(findings, Finding{
			Oracle: "O2", Relation: relation, Detail: detail,
			Seed: c.Seed, Formula: c.String(),
		})
	}

	st, out := c.prove(c.PC, c.Samples)

	switch out {
	case fol.OutcomeProved:
		forEachTable(c.Samples, c.H, func(t table) bool {
			if msg := c.replayStrategy(st, t); msg != "" {
				report("strategy-table", msg)
				return false
			}
			return true
		})
	case fol.OutcomeInvalid:
		if valid, _ := c.groundValid(c.PC, c.Samples); valid {
			report("enum-invalid",
				"prover claims invalidity but every enumerated table has a witness")
		}
	}

	findings = append(findings, checkFolMetamorphic(c, out)...)
	return findings
}

// checkFolMetamorphic checks the formula-level O3 relations: determinism,
// conjunct reordering, and sample-set supersets.
func checkFolMetamorphic(c *FolCase, out fol.Outcome) []Finding {
	var findings []Finding
	report := func(relation, detail string) {
		findings = append(findings, Finding{
			Oracle: "O3", Relation: relation, Detail: detail,
			Seed: c.Seed, Formula: c.String(),
		})
	}

	// Determinism: the prover is a pure function of (pc, samples, options).
	if _, out2 := c.prove(c.PC, c.Samples); out2 != out {
		report("prove-deterministic", fmt.Sprintf("verdict %v then %v on identical input", out, out2))
	}

	// Conjunct reordering: POST(pc) is conjunction over a set; rotating the
	// conjuncts must not change the verdict.
	if len(c.Conjs) > 1 {
		rot := make([]sym.Expr, 0, len(c.Conjs))
		rot = append(rot, c.Conjs[1:]...)
		rot = append(rot, c.Conjs[0])
		if _, outR := c.prove(sym.AndExpr(rot...), c.Samples); outR != out {
			report("conjunct-reorder", fmt.Sprintf("verdict %v, reordered verdict %v", out, outR))
		}
	}

	// Sample supersets: adding a consistent sample strengthens the
	// antecedent, so validity is monotone — Proved must never flip to
	// Invalid, and the ground-truth enumeration must agree with itself.
	r := rand.New(rand.NewSource(c.Seed ^ 0x5eed))
	super := c.Samples.Clone()
	added := false
	for _, a := range folDomain {
		if _, ok := super.Lookup(c.H, []int64{a}); !ok {
			super.Add(c.H, []int64{a}, folRange[r.Intn(len(folRange))])
			added = true
			break
		}
	}
	if added {
		_, outS := c.prove(c.PC, super)
		if out == fol.OutcomeProved && outS == fol.OutcomeInvalid {
			report("sample-superset", "Proved under A flipped to Invalid under a consistent superset A'")
		}
		valid, _ := c.groundValid(c.PC, c.Samples)
		validS, _ := c.groundValid(c.PC, super)
		if valid && !validS {
			report("sample-superset", "ground enumeration is not monotone under a sample superset")
		}
	}
	return findings
}
