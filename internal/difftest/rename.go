package difftest

import (
	"fmt"

	"hotg/internal/mini"
)

// RenameSource alpha-renames every program identifier — function names
// (except main), parameters, and locals — by prefixing "r", leaving native
// names untouched, and returns the re-formatted source. The renamed program
// is re-checked before being returned, so callers always receive a valid
// program. Used by the O3 rename-invariance relation: identifiers never
// steer the search, so the renamed program must explore the identical
// trajectory.
func RenameSource(src string, natives mini.Natives) (string, error) {
	prog, err := mini.Parse(src)
	if err != nil {
		return "", fmt.Errorf("difftest: rename parse: %w", err)
	}
	ren := func(name string) string {
		if name == "main" {
			return name
		}
		if _, ok := natives[name]; ok {
			return name
		}
		return "r" + name
	}

	var renameExpr func(e mini.Expr)
	renameExpr = func(e mini.Expr) {
		switch x := e.(type) {
		case *mini.Ident:
			x.Name = ren(x.Name)
		case *mini.Unary:
			renameExpr(x.X)
		case *mini.Binary:
			renameExpr(x.X)
			renameExpr(x.Y)
		case *mini.Call:
			x.Name = ren(x.Name)
			for _, a := range x.Args {
				renameExpr(a)
			}
		case *mini.Index:
			x.Name = ren(x.Name)
			renameExpr(x.Idx)
		}
	}
	var renameStmt func(s mini.Stmt)
	renameBlock := func(b *mini.Block) {
		for _, s := range b.Stmts {
			renameStmt(s)
		}
	}
	renameStmt = func(s mini.Stmt) {
		switch x := s.(type) {
		case *mini.VarDecl:
			x.Name = ren(x.Name)
			renameExpr(x.Init)
		case *mini.ArrDecl:
			x.Name = ren(x.Name)
		case *mini.Assign:
			x.Name = ren(x.Name)
			renameExpr(x.Val)
		case *mini.IndexAssign:
			x.Name = ren(x.Name)
			renameExpr(x.Idx)
			renameExpr(x.Val)
		case *mini.If:
			renameExpr(x.Cond)
			renameBlock(x.Then)
			if x.Else != nil {
				renameStmt(x.Else)
			}
		case *mini.While:
			renameExpr(x.Cond)
			renameBlock(x.Body)
		case *mini.Return:
			if x.Val != nil {
				renameExpr(x.Val)
			}
		case *mini.ExprStmt:
			renameExpr(x.X)
		case *mini.Block:
			renameBlock(x)
		}
	}

	funcs := map[string]*mini.FuncDecl{}
	order := make([]string, 0, len(prog.Order))
	for _, name := range prog.Order {
		fn := prog.Funcs[name]
		fn.Name = ren(fn.Name)
		for i := range fn.Params {
			fn.Params[i].Name = ren(fn.Params[i].Name)
		}
		renameBlock(fn.Body)
		funcs[fn.Name] = fn
		order = append(order, fn.Name)
	}
	prog.Funcs, prog.Order = funcs, order

	out := mini.Format(prog)
	reparsed, err := mini.Parse(out)
	if err != nil {
		return "", fmt.Errorf("difftest: renamed program does not reparse: %w", err)
	}
	if err := mini.Check(reparsed, natives); err != nil {
		return "", fmt.Errorf("difftest: renamed program does not check: %w", err)
	}
	return out, nil
}
