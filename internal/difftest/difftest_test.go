package difftest

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/faults"
	"hotg/internal/fol"
	"hotg/internal/mini"
	"hotg/internal/search"
	"hotg/internal/sym"
)

// quickCfg keeps the seeded pass fast enough for `make verify` under -race.
var quickCfg = Config{MaxRuns: 25, Workers: []int{1, 2}}

// TestFolOracleSeededPass is the deterministic O2/O3 formula pass: prover
// verdicts against exhaustive finite-domain enumeration, strategy replay per
// table, and the formula-level metamorphic relations. Every seed must be
// clean — any finding is a real prover/refuter bug.
func TestFolOracleSeededPass(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 20
	}
	for seed := int64(1); seed <= n; seed++ {
		c := NewFolCase(seed)
		for _, f := range CheckO2(c) {
			t.Errorf("seed %d: %s", seed, f)
		}
	}
}

// TestFolOracleKnownVerdicts anchors the enumeration on the worked examples:
// ∃x,y: h(x)=h(y) is valid (pick x=y — Example 5's EUF shape), and
// h(x) ≠ h(x) is invalid (any constant completion refutes it).
func TestFolOracleKnownVerdicts(t *testing.T) {
	c := &FolCase{Seed: 0, Pool: &sym.Pool{}}
	c.X = c.Pool.NewVar("x")
	c.Y = c.Pool.NewVar("y")
	c.H = c.Pool.FuncSym("h", 1)
	c.Samples = sym.NewSampleStore()

	hx := sym.ApplyTerm(c.H, sym.VarTerm(c.X))
	hy := sym.ApplyTerm(c.H, sym.VarTerm(c.Y))

	c.Conjs = []sym.Expr{sym.Eq(hx, hy)}
	c.PC = sym.AndExpr(c.Conjs...)
	if _, out := c.prove(c.PC, c.Samples); out != fol.OutcomeProved {
		t.Errorf("h(x)=h(y): got %v, want Proved", out)
	}
	if valid, _ := c.groundValid(c.PC, c.Samples); !valid {
		t.Error("h(x)=h(y): enumeration disagrees with validity")
	}
	for _, f := range CheckO2(c) {
		t.Errorf("h(x)=h(y): %s", f)
	}

	c.Conjs = []sym.Expr{sym.Ne(hx, hx)}
	c.PC = sym.AndExpr(c.Conjs...)
	if _, out := c.prove(c.PC, c.Samples); out != fol.OutcomeInvalid {
		t.Errorf("h(x)!=h(x): got %v, want Invalid", out)
	}
	if valid, _ := c.groundValid(c.PC, c.Samples); valid {
		t.Error("h(x)!=h(x): enumeration found a witness for an unsatisfiable pc")
	}
	for _, f := range CheckO2(c) {
		t.Errorf("h(x)!=h(x): %s", f)
	}
}

// TestProgramOracleSeededPass is the deterministic O1/O3 program pass: every
// technique end-to-end on generated programs, replay and interpreter/VM
// agreement, and the metamorphic relations (workers, renaming,
// checkpoint/kill/resume).
func TestProgramOracleSeededPass(t *testing.T) {
	n := int64(6)
	if testing.Short() {
		n = 2
	}
	for seed := int64(1); seed <= n; seed++ {
		c := NewCase(seed)
		for _, f := range CheckCase(c, quickCfg) {
			t.Errorf("seed %d: %s", seed, f)
		}
	}
}

// TestCallbackReplayProperty is the function-input replay property at scale:
// over 1000 generated higher-order programs, every run executed under
// synthesized function values replays — through the interpreter AND the
// compiled VM — to the exact recorded path and verdict. This is the
// soundness half of witness construction: a decision table the search
// invented is only a test input if it deterministically reproduces the run
// that reported it.
func TestCallbackReplayProperty(t *testing.T) {
	n := int64(1000)
	if testing.Short() {
		n = 100
	}
	replayed := 0
	for seed := int64(1); seed <= n; seed++ {
		c := NewCallbackCase(seed)
		var recs []search.RunRecord
		// A tight per-proof deadline keeps the 1000-seed sweep bounded: a
		// timed-out target just generates no test, and replay fidelity is
		// checked on whatever tests the search did construct.
		eng := concolic.New(c.Prog, concolic.ModeHigherOrder)
		search.Run(eng, search.Options{
			MaxRuns: 8, Seeds: c.Seeds, Bounds: c.Bounds,
			OnRun:  func(r search.RunRecord) { recs = append(recs, r) },
			Budget: search.Budget{ProofTimeout: 50 * time.Millisecond, Degrade: true},
		})
		compiled := mini.CompileVM(c.Prog)
		for _, rec := range recs {
			synthesized := false
			for _, s := range rec.Funcs {
				if s != "" {
					synthesized = true
				}
			}
			if !synthesized {
				continue
			}
			replayed++
			opts, err := replayOpts(rec.Funcs)
			if err != nil {
				t.Fatalf("seed %d run %d: %v", seed, rec.Run, err)
			}
			interp := mini.Run(c.Prog, rec.Input, opts)
			if interp.Path() != rec.Path {
				t.Errorf("seed %d run %d: recorded path %q, interpreter replays %q under funcs %v",
					seed, rec.Run, rec.Path, interp.Path(), rec.Funcs)
				continue
			}
			vmres := mini.RunVM(compiled, rec.Input, opts)
			if d := diffResults(interp, vmres); d != "" {
				t.Errorf("seed %d run %d: %s (funcs %v)", seed, rec.Run, d, rec.Funcs)
			}
			for _, bug := range rec.Bugs {
				if d := diffBug(bug, interp); d != "" {
					t.Errorf("seed %d run %d: interpreter verdict: %s", seed, rec.Run, d)
				}
				if d := diffBug(bug, vmres); d != "" {
					t.Errorf("seed %d run %d: vm verdict: %s", seed, rec.Run, d)
				}
			}
		}
	}
	min := 200
	if testing.Short() {
		min = 20
	}
	if replayed < min {
		t.Fatalf("property is close to vacuous: only %d runs carried synthesized functions", replayed)
	}
}

// TestCallbackOracleSeededPass extends the O1 pass with a callback-workload
// row: the full replay and differential oracle on generated higher-order
// programs. Every seed must be clean.
func TestCallbackOracleSeededPass(t *testing.T) {
	n := int64(6)
	if testing.Short() {
		n = 2
	}
	for seed := int64(1); seed <= n; seed++ {
		c := NewCallbackCase(seed)
		for _, f := range CheckO1(c, quickCfg) {
			t.Errorf("seed %d: %s", seed, f)
		}
	}
}

// huntVMWrongMod finds the first generated program on which the injected
// silent VM defect (floored modulo) is caught by the O1 differential oracle.
func huntVMWrongMod(t *testing.T, maxSeed int64) (*Case, Finding) {
	t.Helper()
	for seed := int64(1); seed <= maxSeed; seed++ {
		c := NewCase(seed)
		restore := faults.Set(&faults.Plan{VMWrongMod: true})
		findings := CheckO1(c, quickCfg)
		restore()
		if len(findings) > 0 {
			f := findings[0]
			f.Fault = "vm-wrong-mod"
			return c, f
		}
	}
	t.Fatalf("no generated program up to seed %d exposes VMWrongMod", maxSeed)
	return nil, Finding{}
}

// TestInjectedVMFaultCaughtAndShrunk is the acceptance check of the whole
// subsystem: a seeded known-bad program (the VMWrongMod silent
// miscompilation) is caught by the oracle and the shrinker reduces the
// reproducer to at most 10 statements.
//
// Run with DIFFTEST_REGEN=1 to regenerate the committed corpus entry under
// testdata/regress.
func TestInjectedVMFaultCaughtAndShrunk(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking re-runs searches; skipped in -short")
	}
	_, f := huntVMWrongMod(t, 50)

	min, stmts, err := MinimizeFinding(f, quickCfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stmts > 10 {
		t.Errorf("shrunk reproducer has %d statements, want <= 10:\n%s", stmts, min)
	}

	// The minimized program must still be caught, and must be clean without
	// the fault.
	reg := Regression{
		Name: "vm-wrong-mod", Oracle: f.Oracle, Relation: f.Relation,
		Fault: "vm-wrong-mod", Source: min, Stmts: stmts, Seed: f.Seed,
		Detail: f.Detail,
	}
	got, err := ReplayRegression(reg, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("minimized reproducer no longer triggers the oracle under the fault")
	}
	clean, err := ReplayRegression(Regression{Name: reg.Name, Source: min, Seed: f.Seed}, quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean) != 0 {
		t.Fatalf("minimized reproducer fails the oracle even without the fault: %v", clean)
	}

	if os.Getenv("DIFFTEST_REGEN") != "" {
		path, err := WriteRegression(filepath.Join("testdata", "regress"), reg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d statements)", path, stmts)
	}
}

// TestRegressionCorpusReplays pins every committed reproducer: each corpus
// entry must still trigger its oracle under its fault plan, must be clean
// without it, and must respect the <= 10 statement bound.
func TestRegressionCorpusReplays(t *testing.T) {
	regs, err := LoadRegressions(filepath.Join("testdata", "regress"))
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) == 0 {
		t.Fatal("regression corpus is empty; run with DIFFTEST_REGEN=1 to seed it")
	}
	foundInjected := false
	for _, reg := range regs {
		if reg.Fault == "vm-wrong-mod" {
			foundInjected = true
		}
		prog, err := mini.Parse(reg.Source)
		if err != nil {
			t.Errorf("%s: does not parse: %v", reg.Name, err)
			continue
		}
		if n := CountStmts(prog); n != reg.Stmts {
			t.Errorf("%s: statement count drifted: recorded %d, counted %d", reg.Name, reg.Stmts, n)
		}
		if reg.Stmts > 10 {
			t.Errorf("%s: corpus entry has %d statements, want <= 10", reg.Name, reg.Stmts)
		}
		findings, err := ReplayRegression(reg, quickCfg)
		if err != nil {
			t.Errorf("%s: %v", reg.Name, err)
			continue
		}
		if reg.Fault != "" {
			if len(findings) == 0 {
				t.Errorf("%s: no longer triggers the oracle under fault %q", reg.Name, reg.Fault)
			}
			clean, err := ReplayRegression(Regression{Name: reg.Name, Source: reg.Source, Seed: reg.Seed}, quickCfg)
			if err != nil {
				t.Errorf("%s: %v", reg.Name, err)
			} else if len(clean) != 0 {
				t.Errorf("%s: fails the oracle even without its fault: %v", reg.Name, clean)
			}
		} else if len(findings) == 0 {
			t.Errorf("%s: pinned genuine defect no longer reproduces", reg.Name)
		}
	}
	if !foundInjected {
		t.Error("corpus has no vm-wrong-mod entry (the seeded known-bad program)")
	}
}

// TestRenameSourcePreservesBehavior checks the renamer itself: the renamed
// program runs identically on a few inputs.
func TestRenameSourcePreservesBehavior(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c := NewCase(seed)
		renamed, err := RenameSource(c.Src, c.Natives)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog2 := mini.MustCheck(mini.MustParse(renamed), c.Natives)
		for _, in := range [][]int64{c.Seeds[0], make([]int64, len(c.Seeds[0]))} {
			a := mini.Run(c.Prog, in, mini.RunOptions{})
			b := mini.Run(prog2, in, mini.RunOptions{})
			if d := diffResults(a, b); d != "" {
				t.Errorf("seed %d input %v: %s", seed, in, d)
			}
		}
	}
}
