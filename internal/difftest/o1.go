package difftest

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"hotg/internal/concolic"
	"hotg/internal/fuzz"
	"hotg/internal/mini"
	"hotg/internal/search"
)

// Techniques are the end-to-end test-generation techniques the oracle
// cross-checks, in the vocabulary of the paper's evaluation: blackbox random
// testing, DART with unsound constraint dropping, DART with sound
// concretization, and higher-order test generation.
var Techniques = []string{"random", "dart-unsound", "dart-concretize", "higher-order"}

// techMode maps a technique name to its concolic mode ("random" has none).
func techMode(name string) (concolic.Mode, bool) {
	switch name {
	case "dart-unsound":
		return concolic.ModeUnsound, true
	case "dart-concretize":
		return concolic.ModeSound, true
	case "higher-order":
		return concolic.ModeHigherOrder, true
	}
	return 0, false
}

// searchParams bundles the per-run knobs of runSearch; the zero value is a
// plain sequential search.
type searchParams struct {
	workers    int
	checkpoint search.CheckpointOptions
	restore    *search.Snapshot
	ctx        context.Context
	onRun      func(search.RunRecord)
}

// runSearch executes one directed search on a fresh engine built from the
// case source (re-parsing keeps engines independent, as snapshot restore
// requires).
func (c *Case) runSearch(mode concolic.Mode, cfg Config, p searchParams) *search.Stats {
	prog := mini.MustCheck(mini.MustParse(c.Src), c.Natives)
	eng := concolic.New(prog, mode)
	workers := p.workers
	if workers <= 0 {
		workers = 1
	}
	return search.Run(eng, search.Options{
		MaxRuns:    cfg.MaxRuns,
		Seeds:      c.Seeds,
		Bounds:     c.Bounds,
		Workers:    workers,
		Checkpoint: p.checkpoint,
		Restore:    p.restore,
		Ctx:        p.ctx,
		OnRun:      p.onRun,
	})
}

// runRandom executes the blackbox fuzzing baseline with the case seed.
func (c *Case) runRandom(cfg Config) *search.Stats {
	return fuzz.Run(c.Prog, fuzz.Options{
		MaxRuns: cfg.MaxRuns,
		Seeds:   c.Seeds,
		Bounds:  c.Bounds,
		Rand:    rand.New(rand.NewSource(c.Seed)),
	})
}

// CheckO1 runs every technique end-to-end and checks the replay and
// differential-execution invariants: each recorded input replays along its
// recorded path in the interpreter, interpreter and VM agree on every
// executed input, and every reported bug reproduces in both.
func CheckO1(c *Case, cfg Config) []Finding {
	cfg = cfg.defaults()
	var findings []Finding
	compiled := mini.CompileVM(c.Prog)
	optimized := mini.CompileVM(c.Prog).Optimize()

	report := func(relation, detail string, input []int64) {
		findings = append(findings, Finding{
			Oracle: "O1", Relation: relation, Detail: detail,
			Seed: c.Seed, Source: c.Src, Input: input,
		})
	}

	for _, tech := range Techniques {
		mode, ok := techMode(tech)
		var stats *search.Stats
		var recs []search.RunRecord
		if ok {
			stats = c.runSearch(mode, cfg, searchParams{
				onRun: func(r search.RunRecord) { recs = append(recs, r) },
			})
		} else {
			stats = c.runRandom(cfg)
		}

		for _, rec := range recs {
			opts, err := replayOpts(rec.Funcs)
			if err != nil {
				report("replay-funcs", fmt.Sprintf("%s run %d: %v", tech, rec.Run, err), rec.Input)
				continue
			}
			interp := mini.Run(c.Prog, rec.Input, opts)
			if interp.Path() != rec.Path {
				report("replay-path", fmt.Sprintf("%s run %d: recorded path %q, interpreter replays %q",
					tech, rec.Run, rec.Path, interp.Path()), rec.Input)
				continue
			}
			vmres := mini.RunVM(compiled, rec.Input, opts)
			if d := diffResults(interp, vmres); d != "" {
				report("interp-vm", fmt.Sprintf("%s run %d: %s", tech, rec.Run, d), rec.Input)
			}
			optres := mini.RunVM(optimized, rec.Input, opts)
			if d := diffResults(interp, optres); d != "" {
				report("interp-vm", fmt.Sprintf("%s run %d (optimized): %s", tech, rec.Run, d), rec.Input)
			}
		}

		for _, bug := range stats.Bugs {
			opts, err := replayOpts(bug.Funcs)
			if err != nil {
				report("replay-funcs", fmt.Sprintf("%s bug: %v", tech, err), bug.Input)
				continue
			}
			interp := mini.Run(c.Prog, bug.Input, opts)
			if d := diffBug(bug, interp); d != "" {
				report("bug-reproduce", fmt.Sprintf("%s: interpreter: %s", tech, d), bug.Input)
			}
			vmres := mini.RunVM(compiled, bug.Input, opts)
			if d := diffBug(bug, vmres); d != "" {
				report("bug-reproduce", fmt.Sprintf("%s: vm: %s", tech, d), bug.Input)
			}
		}
	}
	return findings
}

// replayOpts builds the replay options for a recorded run: the canonical
// function-input texts decode back into the decision tables the run executed
// under ("" entries are the default function).
func replayOpts(texts []string) (mini.RunOptions, error) {
	if len(texts) == 0 {
		return mini.RunOptions{}, nil
	}
	funcs := make([]*mini.FuncValue, len(texts))
	for i, s := range texts {
		if s == "" {
			continue
		}
		fv, err := mini.ParseFuncValue(s)
		if err != nil {
			return mini.RunOptions{}, err
		}
		funcs[i] = fv
	}
	return mini.RunOptions{Funcs: funcs}, nil
}

// faultCategory normalizes a runtime-fault message to its class, since the
// interpreter reports source positions and the VM does not.
func faultCategory(msg string) string {
	switch {
	case strings.Contains(msg, "division by zero"):
		return "div0"
	case strings.Contains(msg, "modulo by zero"):
		return "mod0"
	case strings.Contains(msg, "out of bounds"):
		return "oob"
	case strings.Contains(msg, "step budget"):
		return "steps"
	case strings.Contains(msg, "recursion"):
		return "depth"
	}
	return msg
}

// budgetLimited reports a result cut short by a step or recursion budget;
// the interpreter and VM count steps differently, so such runs are excluded
// from strict comparison.
func budgetLimited(r *mini.Result) bool {
	return r.Kind == mini.StopRuntime &&
		(faultCategory(r.RuntimeMsg) == "steps" || faultCategory(r.RuntimeMsg) == "depth")
}

// diffResults compares an interpreter and a VM result for observable
// equivalence, returning "" on agreement.
func diffResults(interp, vm *mini.Result) string {
	if budgetLimited(interp) || budgetLimited(vm) {
		return ""
	}
	if interp.Kind != vm.Kind {
		return fmt.Sprintf("interp stopped with %v, vm with %v", interp.Kind, vm.Kind)
	}
	if interp.Path() != vm.Path() {
		return fmt.Sprintf("interp path %q, vm path %q", interp.Path(), vm.Path())
	}
	switch interp.Kind {
	case mini.StopReturn:
		if interp.Return != vm.Return {
			return fmt.Sprintf("interp returned %d, vm returned %d", interp.Return, vm.Return)
		}
	case mini.StopError:
		if interp.ErrorSite != vm.ErrorSite || interp.ErrorMsg != vm.ErrorMsg {
			return fmt.Sprintf("interp error site %d %q, vm site %d %q",
				interp.ErrorSite, interp.ErrorMsg, vm.ErrorSite, vm.ErrorMsg)
		}
	case mini.StopRuntime:
		if faultCategory(interp.RuntimeMsg) != faultCategory(vm.RuntimeMsg) {
			return fmt.Sprintf("interp fault %q, vm fault %q", interp.RuntimeMsg, vm.RuntimeMsg)
		}
	}
	return ""
}

// diffBug checks that a replayed result reproduces a recorded bug,
// returning "" when it does.
func diffBug(bug search.Bug, res *mini.Result) string {
	if res.Kind != bug.Kind {
		return fmt.Sprintf("recorded %v %q, replay stopped with %v", bug.Kind, bug.Msg, res.Kind)
	}
	switch bug.Kind {
	case mini.StopError:
		if res.ErrorSite != bug.Site {
			return fmt.Sprintf("recorded error site %d, replay hit site %d", bug.Site, res.ErrorSite)
		}
	case mini.StopRuntime:
		if faultCategory(res.RuntimeMsg) != faultCategory(bug.Msg) {
			return fmt.Sprintf("recorded fault %q, replay faulted %q", bug.Msg, res.RuntimeMsg)
		}
	}
	return ""
}
