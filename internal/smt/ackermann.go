package smt

import (
	"sort"

	"hotg/internal/sym"
)

// AckermannResult is the outcome of Ackermann's reduction: an apply-free
// formula equisatisfiable (over the integers) with the original.
type AckermannResult struct {
	// Formula is the rewritten input with every uninterpreted application
	// replaced by a fresh variable.
	Formula sym.Expr
	// Consistency is the conjunction of functional-consistency side
	// conditions: for every pair of applications f(s̄), f(t̄),
	// s̄ = t̄ ⇒ v_{f(s̄)} = v_{f(t̄)}.
	Consistency sym.Expr
	// AppVars maps the canonical key of each application (with rewritten,
	// apply-free arguments) to its stand-in variable, so a model value for
	// that variable can be read back as a witness interpretation.
	AppVars map[string]*sym.Var
	// Apps records, per key, the rewritten application itself.
	Apps map[string]*sym.Apply
}

// Ackermannize eliminates uninterpreted function applications from e,
// creating fresh stand-in variables from pool. Applications are processed
// innermost-first, so arguments of recorded applications are themselves
// apply-free.
func Ackermannize(e sym.Expr, pool *sym.Pool) *AckermannResult {
	res := &AckermannResult{
		AppVars: make(map[string]*sym.Var),
		Apps:    make(map[string]*sym.Apply),
	}
	repl := func(a *sym.Apply) (*sym.Sum, bool) {
		// Arguments have already been rewritten bottom-up by
		// RewriteApplies, but they may still mention stand-in variables —
		// which is exactly what we want (f(g(x)) becomes f(v_g) with
		// v_g standing for g(x)).
		key := a.Key()
		if v, ok := res.AppVars[key]; ok {
			return sym.VarTerm(v), true
		}
		v := pool.NewVar("$" + a.Fn.Name)
		res.AppVars[key] = v
		res.Apps[key] = a
		return sym.VarTerm(v), true
	}
	res.Formula = sym.RewriteApplies(e, repl)

	// Functional consistency for every same-symbol pair.
	keys := make([]string, 0, len(res.Apps))
	for k := range res.Apps {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var side []sym.Expr
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			a, b := res.Apps[keys[i]], res.Apps[keys[j]]
			if a.Fn != b.Fn {
				continue
			}
			eqArgs := make([]sym.Expr, len(a.Args))
			for k := range a.Args {
				// The recorded args may themselves contain nested
				// applies replaced by stand-ins; rewrite once more so the
				// side condition is apply-free.
				la := sym.RewriteAppliesSum(a.Args[k], func(x *sym.Apply) (*sym.Sum, bool) {
					if v, ok := res.AppVars[x.Key()]; ok {
						return sym.VarTerm(v), true
					}
					return nil, false
				})
				lb := sym.RewriteAppliesSum(b.Args[k], func(x *sym.Apply) (*sym.Sum, bool) {
					if v, ok := res.AppVars[x.Key()]; ok {
						return sym.VarTerm(v), true
					}
					return nil, false
				})
				eqArgs[k] = sym.Eq(la, lb)
			}
			side = append(side, sym.Implies(
				sym.AndExpr(eqArgs...),
				sym.Eq(sym.VarTerm(res.AppVars[keys[i]]), sym.VarTerm(res.AppVars[keys[j]])),
			))
		}
	}
	res.Consistency = sym.AndExpr(side...)
	return res
}

// ackState carries Ackermann expansion state across the checks of one solver
// session: stand-in variables and functional-consistency side conditions are
// allocated once per application (pair) and reused by every later check that
// mentions it. Reuse is sound and exact because the reduction's output
// depends only on which stand-in variable represents which application key —
// never on the numeric IDs of those variables (see sym.Pool's documentation)
// — so a check on formula f produces the same verdict and witness structure
// whether the stand-ins are freshly allocated or session-cached.
type ackState struct {
	pool     *sym.Pool
	appVars  map[string]*sym.Var
	apps     map[string]*sym.Apply
	pairMemo map[string]sym.Expr // "key1|key2" → consistency implication
}

func newAckState(pool *sym.Pool) *ackState {
	return &ackState{
		pool:     pool,
		appVars:  make(map[string]*sym.Var),
		apps:     make(map[string]*sym.Apply),
		pairMemo: make(map[string]sym.Expr),
	}
}

// reduce ackermannizes e against the session cache. It returns the rewritten
// formula conjoined with the consistency conditions for the applications of
// *this* formula (matching what Ackermannize would build), plus the stand-in
// variables for exactly those applications, for witness extraction.
func (st *ackState) reduce(e sym.Expr) (sym.Expr, map[string]*sym.Var) {
	cur := make(map[string]*sym.Var)
	var curKeys []string
	repl := func(a *sym.Apply) (*sym.Sum, bool) {
		key := a.Key()
		v, ok := st.appVars[key]
		if !ok {
			v = st.pool.NewVar("$" + a.Fn.Name)
			st.appVars[key] = v
			st.apps[key] = a
		}
		if _, seen := cur[key]; !seen {
			cur[key] = v
			curKeys = append(curKeys, key)
		}
		return sym.VarTerm(v), true
	}
	formula := sym.RewriteApplies(e, repl)

	sort.Strings(curKeys)
	standIn := func(x *sym.Apply) (*sym.Sum, bool) {
		if v, ok := st.appVars[x.Key()]; ok {
			return sym.VarTerm(v), true
		}
		return nil, false
	}
	var side []sym.Expr
	for i := 0; i < len(curKeys); i++ {
		for j := i + 1; j < len(curKeys); j++ {
			a, b := st.apps[curKeys[i]], st.apps[curKeys[j]]
			if a.Fn != b.Fn {
				continue
			}
			pk := curKeys[i] + "|" + curKeys[j]
			imp, ok := st.pairMemo[pk]
			if !ok {
				eqArgs := make([]sym.Expr, len(a.Args))
				for k := range a.Args {
					la := sym.RewriteAppliesSum(a.Args[k], standIn)
					lb := sym.RewriteAppliesSum(b.Args[k], standIn)
					eqArgs[k] = sym.Eq(la, lb)
				}
				imp = sym.Implies(
					sym.AndExpr(eqArgs...),
					sym.Eq(sym.VarTerm(st.appVars[curKeys[i]]), sym.VarTerm(st.appVars[curKeys[j]])),
				)
				st.pairMemo[pk] = imp
			}
			side = append(side, imp)
		}
	}
	return sym.AndExpr(formula, sym.AndExpr(side...)), cur
}
