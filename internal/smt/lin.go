package smt

import (
	"fmt"
	"sort"
	"strings"
)

// IVTerm is one scaled variable of a linear inequality, with variables
// identified by dense internal indices.
type IVTerm struct {
	Var  int
	Coef int64
}

// Ineq is the weak linear inequality Σ Coef_i · x_i ≤ B. It is the only kind
// of theory atom the arithmetic solver sees: equalities and disequalities are
// compiled away before CNF conversion, and strict inequalities are folded
// using integrality.
type Ineq struct {
	Terms []IVTerm
	B     int64
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// Normalize sorts the terms, merges duplicates, drops zero coefficients, and
// divides through by the gcd of the coefficients (floor-dividing the bound,
// which is sound and strengthening over the integers). A trivially true or
// false inequality is reported via the second return value: +1 for valid,
// -1 for unsatisfiable, 0 for a genuine constraint.
func (q Ineq) Normalize() (Ineq, int) {
	terms := make([]IVTerm, len(q.Terms))
	copy(terms, q.Terms)
	sort.Slice(terms, func(i, j int) bool { return terms[i].Var < terms[j].Var })
	out := terms[:0]
	for _, t := range terms {
		if n := len(out); n > 0 && out[n-1].Var == t.Var {
			out[n-1].Coef += t.Coef
		} else {
			out = append(out, t)
		}
	}
	kept := make([]IVTerm, 0, len(out))
	var g int64
	for _, t := range out {
		if t.Coef != 0 {
			kept = append(kept, t)
			g = gcd64(g, t.Coef)
		}
	}
	if len(kept) == 0 {
		if q.B >= 0 {
			return Ineq{B: q.B}, 1
		}
		return Ineq{B: q.B}, -1
	}
	b := q.B
	if g > 1 {
		for i := range kept {
			kept[i].Coef /= g
		}
		b = floorDiv(b, g)
	}
	return Ineq{Terms: kept, B: b}, 0
}

// Negated returns the integer negation of q: ¬(Σcx ≤ B) ⇔ Σ(-c)x ≤ -B-1.
func (q Ineq) Negated() Ineq {
	terms := make([]IVTerm, len(q.Terms))
	for i, t := range q.Terms {
		terms[i] = IVTerm{Var: t.Var, Coef: -t.Coef}
	}
	return Ineq{Terms: terms, B: -q.B - 1}
}

// Key returns a canonical identifier for the (normalized) inequality.
func (q Ineq) Key() string {
	var b strings.Builder
	for _, t := range q.Terms {
		fmt.Fprintf(&b, "%d*v%d+", t.Coef, t.Var)
	}
	fmt.Fprintf(&b, "<=%d", q.B)
	return b.String()
}

func (q Ineq) String() string {
	if len(q.Terms) == 0 {
		return fmt.Sprintf("0 <= %d", q.B)
	}
	var b strings.Builder
	for i, t := range q.Terms {
		if i > 0 && t.Coef >= 0 {
			b.WriteString("+")
		}
		fmt.Fprintf(&b, "%d*v%d", t.Coef, t.Var)
	}
	fmt.Fprintf(&b, " <= %d", q.B)
	return b.String()
}

// Eval reports whether the inequality holds under the given assignment.
func (q Ineq) Eval(assign []int64) bool {
	var s int64
	for _, t := range q.Terms {
		s += t.Coef * assign[t.Var]
	}
	return s <= q.B
}
