package smt

// ParseStatus inverts Status.String, for checkpoint decoding: the search's
// solve cache persists across campaign sessions (internal/search.Snapshot)
// with statuses stored as their canonical strings. Note that "unknown" is the
// String of every unrecognized Status value; ParseStatus maps it back to
// StatusUnknown, which is the only value the search ever caches with that
// rendering.
func ParseStatus(s string) (Status, bool) {
	switch s {
	case "unknown":
		return StatusUnknown, true
	case "sat":
		return StatusSat, true
	case "unsat":
		return StatusUnsat, true
	case "timeout":
		return StatusTimeout, true
	default:
		return 0, false
	}
}
