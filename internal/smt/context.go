package smt

import (
	"context"
	"time"

	"hotg/internal/faults"
	"hotg/internal/sym"
)

// ContextOptions configures an incremental solver session.
type ContextOptions struct {
	// Options configures every check of the session exactly as it would a
	// one-shot Solve. VarBounds in particular must stay fixed for the
	// session's lifetime: retained theory lemmas are consequences of the
	// theory *plus these bounds*, so changing bounds mid-session would
	// invalidate them.
	Options

	// Retain enables warm-start mode: the session keeps one SAT solver and
	// CNF compiler alive across checks, so clauses compiled for outer frames
	// are reused by every sibling check, theory lemmas learned in one check
	// survive pops into the next (when their literals are still live), and
	// VSIDS activity plus saved phases carry over. Warm checks are
	// *status-exact* but may return a different (equally valid) model than a
	// fresh Solve, so Retain is for status-only queries (refutation). It
	// engages only while every asserted conjunct is apply-free; a stack with
	// uninterpreted applications falls back to the exact path until the
	// offending frame is popped.
	Retain bool

	// MemoSize, when positive, caps a per-session result memo keyed by the
	// asserted conjunction: re-checking an identical stack returns the
	// recorded Status+Model without re-solving. Timeout/Unknown results are
	// never memoized. The memo only serves checks on the exact path.
	MemoSize int
}

// ctxFrame is one push/pop frame of a session.
type ctxFrame struct {
	start    int // index into conjs of this frame's first conjunct
	marked   bool
	satMark  SATMark
	compMark compMark
}

// ContextStats counts session activity; read it via Stats.
type ContextStats struct {
	Pushes          int
	Pops            int
	Checks          int
	WarmStartHits   int
	ClausesRetained int
	MemoHits        int
}

type ctxResult struct {
	st Status
	m  *Model
}

// Context is an incremental solver session: a push/pop stack of asserted
// formulas with a Check that decides the conjunction of everything currently
// asserted. The default (exact) mode recompiles per check but shares the
// session's Ackermann expansion across checks, and guarantees the same
// Status and Model as a fresh Solve of the same conjunction. Retain mode
// additionally keeps SAT/CNF state warm across checks — see ContextOptions.
//
// A Context is not safe for concurrent use; sessions are cheap, so give each
// goroutine its own.
type Context struct {
	opts   ContextOptions
	frames []ctxFrame
	conjs  []sym.Expr
	ack    *ackState
	memo   map[string]ctxResult

	// Warm-start state (Retain mode).
	sat         *SAT
	comp        *compiler
	syncedConjs int // prefix of conjs compiled into the warm solver

	stats ContextStats
}

// NewContext starts an empty session.
func NewContext(opts ContextOptions) *Context {
	c := &Context{opts: opts}
	if opts.Pool != nil {
		c.ack = newAckState(opts.Pool)
	}
	if opts.MemoSize > 0 {
		c.memo = make(map[string]ctxResult, opts.MemoSize)
	}
	if opts.Retain {
		c.sat = NewSAT(opts.MaxConflicts)
		c.sat.SavePhase(true)
		c.comp = newCompiler(c.sat)
		c.comp.journal = true
		// Allocate the constant-true literal before any frame mark so it is
		// never popped out from under a memoized *sym.Bool.
		c.comp.constLit(true)
	}
	return c
}

// Depth returns the number of open frames.
func (c *Context) Depth() int { return len(c.frames) }

// Stats returns the session's activity counters.
func (c *Context) Stats() ContextStats { return c.stats }

// Push opens a new assertion frame.
func (c *Context) Push() {
	c.frames = append(c.frames, ctxFrame{start: len(c.conjs)})
	c.stats.Pushes++
	c.opts.Obs.Counter("smt.ctx.pushes").Inc()
}

// Pop discards the newest frame and every assertion made in it. Theory
// lemmas learned during the frame survive when all their literals predate it.
func (c *Context) Pop() {
	n := len(c.frames) - 1
	if n < 0 {
		panic("smt: Context.Pop on empty frame stack")
	}
	fr := c.frames[n]
	c.frames = c.frames[:n]
	c.conjs = c.conjs[:fr.start]
	if fr.marked {
		retained := c.sat.PopTo(fr.satMark)
		c.comp.popTo(fr.compMark)
		if c.syncedConjs > fr.start {
			c.syncedConjs = fr.start
		}
		c.stats.ClausesRetained += retained
		if retained > 0 {
			c.opts.Obs.Counter("smt.ctx.clauses_retained").Add(int64(retained))
		}
	}
	c.stats.Pops++
	c.opts.Obs.Counter("smt.ctx.pops").Inc()
}

// Assert adds f to the newest frame (or to the session base when no frame is
// open). Conjunctions are flattened so per-conjunct state can be shared.
func (c *Context) Assert(f sym.Expr) {
	c.conjs = append(c.conjs, sym.Conjuncts(f)...)
}

// Check decides the conjunction of all current assertions under the
// session's options.
func (c *Context) Check() (Status, *Model) {
	return c.CheckUnder(c.opts.Ctx, c.opts.Deadline)
}

// CheckUnder is Check with a per-call cancellation context and deadline
// overriding the session defaults (zero values fall back to them).
func (c *Context) CheckUnder(ctx context.Context, deadline time.Time) (Status, *Model) {
	if faults.Active().FireSolveTimeout() {
		return StatusTimeout, nil
	}
	opts := c.opts.Options
	if ctx != nil {
		opts.Ctx = ctx
	}
	if !deadline.IsZero() {
		opts.Deadline = deadline
	}
	c.stats.Checks++
	o := opts.Obs
	if !o.Enabled() {
		return c.check(opts)
	}
	t0 := time.Now()
	st, m := c.check(opts)
	o.Counter("smt.ctx.checks").Inc()
	o.Histogram("smt.ctx.check.ns").Observe(int64(time.Since(t0)))
	o.Counter("smt.ctx.check." + st.String()).Inc()
	// A session check answers the same question a one-shot Solve would, so it
	// feeds the same headline metrics — dashboards and the trace tests see
	// solver activity regardless of which path served it.
	o.Histogram("smt.solve.ns").Observe(int64(time.Since(t0)))
	o.Counter("smt.solve.calls").Inc()
	o.Counter("smt.solve." + st.String()).Inc()
	return st, m
}

// SolveUnder decides f in the current session context: push, assert, check,
// pop. It is the session drop-in for a one-shot Solve(f) call.
func (c *Context) SolveUnder(f sym.Expr, ctx context.Context, deadline time.Time) (Status, *Model) {
	c.Push()
	c.Assert(f)
	st, m := c.CheckUnder(ctx, deadline)
	c.Pop()
	return st, m
}

func (c *Context) check(opts Options) (Status, *Model) {
	if c.opts.Retain && c.syncWarm() {
		return c.checkWarm(opts)
	}
	f := sym.AndExpr(c.conjs...)
	var key string
	if c.memo != nil {
		key = f.Key()
		if r, ok := c.memo[key]; ok {
			c.stats.MemoHits++
			opts.Obs.Counter("smt.ctx.memo_hits").Inc()
			return r.st, copyModel(r.m)
		}
	}
	st, m := solveWith(f, opts, c.ack)
	if c.memo != nil && st != StatusTimeout && st != StatusUnknown && len(c.memo) < c.opts.MemoSize {
		c.memo[key] = ctxResult{st: st, m: copyModel(m)}
	}
	return st, m
}

// syncWarm brings the warm solver up to date with the assertion stack,
// compiling any conjuncts pushed or asserted since the last check. It
// reports whether the stack is fully represented; a conjunct containing an
// uninterpreted application stops the sync, sending this check down the
// exact path instead.
func (c *Context) syncWarm() bool {
	c.sat.Reset() // marks must be taken at decision level 0
	reused := c.syncedConjs > 0
	// Compile conjuncts in stack order, taking each frame's mark just before
	// its first conjunct so Pop can restore the solver to that point.
	sync := func(end int) bool {
		for c.syncedConjs < end {
			e := c.conjs[c.syncedConjs]
			if sym.HasApply(e) {
				return false
			}
			top := c.comp.compile(e)
			c.sat.AddClause(top)
			c.syncedConjs++
		}
		return true
	}
	for fi := range c.frames {
		fr := &c.frames[fi]
		if !sync(fr.start) {
			return false
		}
		if !fr.marked {
			fr.satMark = c.sat.Mark()
			fr.compMark = c.comp.mark()
			fr.marked = true
		}
	}
	if !sync(len(c.conjs)) {
		return false
	}
	if reused {
		c.stats.WarmStartHits++
		c.opts.Obs.Counter("smt.ctx.warmstart_hits").Inc()
	}
	return true
}

// checkWarm runs the lazy SAT↔theory loop on the persistent solver. Blocking
// clauses from minimized theory cores are installed as retained theory
// lemmas; each check gets a fresh conflict budget but inherits clauses,
// lemmas, activity and phases from its predecessors.
func (c *Context) checkWarm(opts Options) (Status, *Model) {
	o := opts.Obs
	sat, comp := c.sat, c.comp
	stop := opts.stopProbe()
	sat.SetStop(stop)
	sat.ResetSearch()

	maxRounds := opts.MaxTheoryRounds
	if maxRounds <= 0 {
		maxRounds = 200
	}
	nvars := len(comp.varList)
	bounds := make([]Bound, nvars)
	for i, v := range comp.varList {
		if b, ok := opts.VarBounds[v.ID]; ok {
			bounds[i] = clampBound(b)
		} else {
			bounds[i] = Bound{Lo: -DefaultDomain, Hi: DefaultDomain, HasLo: true, HasHi: true}
		}
	}

	for round := 0; round < maxRounds; round++ {
		var tSAT time.Time
		if o.Enabled() {
			tSAT = time.Now()
		}
		satRes := sat.Solve()
		if o.Enabled() {
			o.Histogram("smt.sat.ns").Observe(int64(time.Since(tSAT)))
		}
		switch satRes {
		case SATUnsat:
			return StatusUnsat, nil
		case SATUnknown:
			if stop != nil && stop() {
				return StatusTimeout, nil
			}
			return StatusUnknown, nil
		}
		ineqs, lits := comp.assertedIneqs()
		var tLIA time.Time
		if o.Enabled() {
			tLIA = time.Now()
		}
		model, st := solveLIA(nvars, ineqs, bounds, opts.MaxNodes, stop)
		if o.Enabled() {
			o.Histogram("smt.lia.ns").Observe(int64(time.Since(tLIA)))
		}
		switch st {
		case StatusSat:
			m := &Model{Vars: make(map[int]int64, nvars), Funcs: map[string]int64{}}
			for i, v := range comp.varList {
				m.Vars[v.ID] = model[i]
			}
			return StatusSat, m
		case StatusUnknown, StatusTimeout:
			return st, nil
		}
		o.Counter("smt.theory_conflicts").Inc()
		core := minimizeCore(nvars, ineqs, bounds, opts.MaxNodes)
		if stop != nil && stop() {
			return StatusTimeout, nil
		}
		block := make([]Lit, 0, len(core))
		for _, idx := range core {
			block = append(block, lits[idx].Flip())
		}
		sat.Reset()
		if !sat.AddTheoryLemma(block...) {
			return StatusUnsat, nil
		}
	}
	return StatusUnknown, nil
}

func copyModel(m *Model) *Model {
	if m == nil {
		return nil
	}
	cp := &Model{Vars: make(map[int]int64, len(m.Vars)), Funcs: make(map[string]int64, len(m.Funcs))}
	for k, v := range m.Vars {
		cp.Vars[k] = v
	}
	for k, v := range m.Funcs {
		cp.Funcs[k] = v
	}
	return cp
}
