package smt

import (
	"math/big"
	"math/rand"
	"testing"
)

func rat(v int64) *big.Rat { return new(big.Rat).SetInt64(v) }

func TestSimplexSingleVarBounds(t *testing.T) {
	s := newSimplex(1)
	if !s.assertLower(0, rat(3)) {
		t.Fatal("lower bound rejected")
	}
	if !s.assertUpper(0, rat(10)) {
		t.Fatal("upper bound rejected")
	}
	if !s.check() {
		t.Fatal("3 ≤ x ≤ 10 should be feasible")
	}
	if s.val[0].Cmp(rat(3)) < 0 || s.val[0].Cmp(rat(10)) > 0 {
		t.Fatalf("assignment %v out of bounds", s.val[0])
	}
	if s.assertUpper(0, rat(2)) {
		t.Fatal("upper 2 clashes with lower 3")
	}
}

func TestSimplexSlackRow(t *testing.T) {
	// x + y ≤ 4, x ≥ 3, y ≥ 3: infeasible.
	s := newSimplex(2)
	y := s.defineSlack(map[int]*big.Rat{0: rat(1), 1: rat(1)})
	if !s.assertUpper(y, rat(4)) {
		t.Fatal("slack bound rejected")
	}
	if !s.assertLower(0, rat(3)) || !s.assertLower(1, rat(3)) {
		t.Fatal("var bounds rejected")
	}
	if s.check() {
		t.Fatal("x+y ≤ 4 with x,y ≥ 3 should be infeasible")
	}
}

func TestSimplexPivoting(t *testing.T) {
	// 2x + y ≤ 10, x - y ≥ -2, x ≥ 4 → feasible, e.g. x=4, y ∈ [?]
	s := newSimplex(2)
	s1 := s.defineSlack(map[int]*big.Rat{0: rat(2), 1: rat(1)})
	s2 := s.defineSlack(map[int]*big.Rat{0: rat(1), 1: rat(-1)})
	if !s.assertUpper(s1, rat(10)) || !s.assertLower(s2, rat(-2)) || !s.assertLower(0, rat(4)) {
		t.Fatal("bounds rejected")
	}
	if !s.check() {
		t.Fatal("system should be feasible")
	}
	// Verify the assignment satisfies the original constraints.
	x, y := s.val[0], s.val[1]
	lhs1 := new(big.Rat).Add(new(big.Rat).Mul(rat(2), x), y)
	if lhs1.Cmp(rat(10)) > 0 {
		t.Fatalf("2x+y = %v > 10", lhs1)
	}
	lhs2 := new(big.Rat).Sub(x, y)
	if lhs2.Cmp(rat(-2)) < 0 {
		t.Fatalf("x-y = %v < -2", lhs2)
	}
	if x.Cmp(rat(4)) < 0 {
		t.Fatalf("x = %v < 4", x)
	}
}

func TestSimplexNestedSlacks(t *testing.T) {
	// defineSlack over an expression involving an existing basic variable.
	s := newSimplex(2)
	u := s.defineSlack(map[int]*big.Rat{0: rat(1), 1: rat(1)}) // u = x+y
	v := s.defineSlack(map[int]*big.Rat{u: rat(2), 0: rat(1)}) // v = 2u+x = 3x+2y
	if !s.assertLower(v, rat(12)) || !s.assertUpper(0, rat(2)) || !s.assertUpper(1, rat(3)) {
		t.Fatal("bounds rejected")
	}
	if !s.check() {
		t.Fatal("3x+2y ≥ 12, x ≤ 2, y ≤ 3 should be feasible (x=2,y=3)")
	}
	got := new(big.Rat).Add(
		new(big.Rat).Mul(rat(3), s.val[0]),
		new(big.Rat).Mul(rat(2), s.val[1]))
	if got.Cmp(rat(12)) < 0 {
		t.Fatalf("3x+2y = %v < 12", got)
	}
}

// TestSimplexRandomVsBruteForce cross-checks rational feasibility against a
// small integer grid (a rational-feasible system may have no grid point, so
// only one direction is checked: grid-feasible ⇒ simplex-feasible).
func TestSimplexRandomVsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for iter := 0; iter < 400; iter++ {
		n := 2
		m := 1 + r.Intn(4)
		type ineq struct {
			c []int64
			b int64
		}
		sys := make([]ineq, m)
		for i := range sys {
			sys[i] = ineq{c: []int64{int64(r.Intn(7) - 3), int64(r.Intn(7) - 3)}, b: int64(r.Intn(15) - 5)}
		}
		gridFeasible := false
		for x := int64(-6); x <= 6 && !gridFeasible; x++ {
			for y := int64(-6); y <= 6; y++ {
				ok := true
				for _, q := range sys {
					if q.c[0]*x+q.c[1]*y > q.b {
						ok = false
						break
					}
				}
				if ok {
					gridFeasible = true
					break
				}
			}
		}
		s := newSimplex(n)
		feasible := true
		for v := 0; v < n; v++ {
			if !s.assertLower(v, rat(-6)) || !s.assertUpper(v, rat(6)) {
				feasible = false
			}
		}
		for _, q := range sys {
			y := s.defineSlack(map[int]*big.Rat{0: rat(q.c[0]), 1: rat(q.c[1])})
			if !s.assertUpper(y, rat(q.b)) {
				feasible = false
			}
		}
		if feasible {
			feasible = s.check()
		}
		if gridFeasible && !feasible {
			t.Fatalf("iter %d: grid point exists but simplex says infeasible: %+v", iter, sys)
		}
	}
}

func TestRatFloor(t *testing.T) {
	cases := []struct {
		num, den, want int64
	}{
		{7, 2, 3}, {-7, 2, -4}, {6, 3, 2}, {-6, 3, -2}, {0, 5, 0}, {1, 3, 0}, {-1, 3, -1},
	}
	for _, c := range cases {
		r := new(big.Rat).SetFrac64(c.num, c.den)
		if got := ratFloor(r); got != c.want {
			t.Fatalf("ratFloor(%v) = %d, want %d", r, got, c.want)
		}
	}
}

func TestLIABounded(t *testing.T) {
	// x + y = 7 with x ∈ [0,3], y ∈ [0,3]: infeasible over the ints and rats.
	ineqs := []Ineq{
		{Terms: []IVTerm{{0, 1}, {1, 1}}, B: 7},
		{Terms: []IVTerm{{0, -1}, {1, -1}}, B: -7},
	}
	bounds := []Bound{{Lo: 0, Hi: 3, HasLo: true, HasHi: true}, {Lo: 0, Hi: 3, HasLo: true, HasHi: true}}
	if _, st := SolveLIA(2, ineqs, bounds, 0); st != StatusUnsat {
		t.Fatalf("status %v", st)
	}
	// Widen one bound: feasible.
	bounds[0].Hi = 4
	m, st := SolveLIA(2, ineqs, bounds, 0)
	if st != StatusSat || m[0]+m[1] != 7 {
		t.Fatalf("status %v model %v", st, m)
	}
}

// TestLIABranchAndBoundDeep forces fractional vertices: 7x - 3y = 1 over a
// box has integer solutions (x=1,y=2) that need branching to find.
func TestLIABranchAndBoundDeep(t *testing.T) {
	ineqs := []Ineq{
		{Terms: []IVTerm{{0, 7}, {1, -3}}, B: 1},
		{Terms: []IVTerm{{0, -7}, {1, 3}}, B: -1},
	}
	bounds := []Bound{{Lo: -10, Hi: 10, HasLo: true, HasHi: true}, {Lo: -10, Hi: 10, HasLo: true, HasHi: true}}
	m, st := SolveLIA(2, ineqs, bounds, 0)
	if st != StatusSat {
		t.Fatalf("status %v", st)
	}
	if 7*m[0]-3*m[1] != 1 {
		t.Fatalf("model %v violates 7x-3y=1", m)
	}
}

func TestLIANodeBudget(t *testing.T) {
	ineqs := []Ineq{
		{Terms: []IVTerm{{0, 2}}, B: 1},
		{Terms: []IVTerm{{0, -2}}, B: -1},
	}
	// Budget of 1 node cannot complete the branch: expect unknown, not a
	// wrong verdict.
	if _, st := SolveLIA(1, ineqs, nil, 1); st == StatusSat {
		t.Fatal("tiny budget must not fabricate a model")
	}
}
