package smt

import (
	"fmt"

	"hotg/internal/sym"
)

// compiler translates an apply-free sym formula into SAT clauses whose atoms
// are linear inequalities, via Tseitin encoding.
type compiler struct {
	sat *SAT

	varIndex map[int]int // sym Var.ID → dense LIA variable index
	varList  []*sym.Var  // dense index → sym variable

	atomVar  map[string]int // normalized ineq key → SAT variable
	atomIneq map[int]Ineq   // SAT variable → inequality (positive polarity)

	memo    map[string]Lit // expr key → literal
	trueLit Lit
	hasTrue bool

	// Journal of insertions, kept only when journaling is on (incremental
	// sessions): popTo replays it backwards to drop frame-local state. Map
	// entries reused by a later frame produce no new journal record, so they
	// survive pops of that frame — which is right, since the SAT variables
	// they map to predate the frame's mark.
	journal bool
	memoLog []string
	atomLog []string
}

func newCompiler(sat *SAT) *compiler {
	return &compiler{
		sat:      sat,
		varIndex: make(map[int]int),
		atomVar:  make(map[string]int),
		atomIneq: make(map[int]Ineq),
		memo:     make(map[string]Lit),
	}
}

// compMark snapshots compiler extent for popTo, mirroring SATMark.
type compMark struct {
	nVars  int
	nMemo  int
	nAtoms int
}

func (c *compiler) mark() compMark {
	return compMark{nVars: len(c.varList), nMemo: len(c.memoLog), nAtoms: len(c.atomLog)}
}

// popTo removes every dense variable, Tseitin memo entry and theory atom
// registered since the mark. Requires journaling.
func (c *compiler) popTo(m compMark) {
	for _, v := range c.varList[m.nVars:] {
		delete(c.varIndex, v.ID)
	}
	c.varList = c.varList[:m.nVars]
	for _, k := range c.memoLog[m.nMemo:] {
		delete(c.memo, k)
	}
	c.memoLog = c.memoLog[:m.nMemo]
	for _, k := range c.atomLog[m.nAtoms:] {
		delete(c.atomIneq, c.atomVar[k])
		delete(c.atomVar, k)
	}
	c.atomLog = c.atomLog[:m.nAtoms]
}

func (c *compiler) constLit(v bool) Lit {
	if !c.hasTrue {
		tv := c.sat.NewVar()
		c.sat.AddClause(MkLit(tv, false))
		c.trueLit = MkLit(tv, false)
		c.hasTrue = true
	}
	if v {
		return c.trueLit
	}
	return c.trueLit.Flip()
}

func (c *compiler) denseVar(v *sym.Var) int {
	if i, ok := c.varIndex[v.ID]; ok {
		return i
	}
	i := len(c.varList)
	c.varIndex[v.ID] = i
	c.varList = append(c.varList, v)
	return i
}

// Note: varList doubles as its own journal (popTo truncates it), so denseVar
// needs no explicit log entry.

// sumToIneq converts the constraint s ≤ 0 into an Ineq over dense variables.
// s must be apply-free.
func (c *compiler) sumToIneq(s *sym.Sum) Ineq {
	terms := make([]IVTerm, 0, len(s.Terms))
	for _, t := range s.Terms {
		v, ok := t.Atom.(*sym.Var)
		if !ok {
			panic(fmt.Sprintf("smt: formula contains uninterpreted application %v; ackermannize first", t.Atom))
		}
		terms = append(terms, IVTerm{Var: c.denseVar(v), Coef: t.Coef})
	}
	return Ineq{Terms: terms, B: -s.Const}
}

// atomLit returns the literal asserting q (Σcx ≤ b).
func (c *compiler) atomLit(q Ineq) Lit {
	nq, triv := q.Normalize()
	switch triv {
	case 1:
		return c.constLit(true)
	case -1:
		return c.constLit(false)
	}
	key := nq.Key()
	if v, ok := c.atomVar[key]; ok {
		return MkLit(v, false)
	}
	v := c.sat.NewVar()
	c.atomVar[key] = v
	c.atomIneq[v] = nq
	if c.journal {
		c.atomLog = append(c.atomLog, key)
	}
	return MkLit(v, false)
}

func (c *compiler) and(lits []Lit) Lit {
	z := c.sat.NewVar()
	zl := MkLit(z, false)
	all := make([]Lit, 0, len(lits)+1)
	for _, l := range lits {
		c.sat.AddClause(zl.Flip(), l)
		all = append(all, l.Flip())
	}
	all = append(all, zl)
	c.sat.AddClause(all...)
	return zl
}

func (c *compiler) or(lits []Lit) Lit {
	z := c.sat.NewVar()
	zl := MkLit(z, false)
	all := make([]Lit, 0, len(lits)+1)
	for _, l := range lits {
		c.sat.AddClause(zl, l.Flip())
		all = append(all, l)
	}
	all = append(all, zl.Flip())
	c.sat.AddClause(all...)
	return zl
}

// compile returns a literal equisatisfiably representing e.
func (c *compiler) compile(e sym.Expr) Lit {
	key := e.Key()
	if l, ok := c.memo[key]; ok {
		return l
	}
	var l Lit
	switch x := e.(type) {
	case *sym.Bool:
		l = c.constLit(x.V)
	case *sym.Cmp:
		switch x.Op {
		case sym.OpLe:
			l = c.atomLit(c.sumToIneq(x.S))
		case sym.OpEq:
			// S = 0  ⇔  S ≤ 0 ∧ -S ≤ 0.
			a := c.atomLit(c.sumToIneq(x.S))
			b := c.atomLit(c.sumToIneq(sym.NegSum(x.S)))
			l = c.and([]Lit{a, b})
		case sym.OpNe:
			// S ≠ 0  ⇔  S ≤ -1 ∨ -S ≤ -1.
			a := c.atomLit(c.sumToIneq(sym.AddSum(x.S, sym.Int(1))))
			b := c.atomLit(c.sumToIneq(sym.AddSum(sym.NegSum(x.S), sym.Int(1))))
			l = c.or([]Lit{a, b})
		}
	case *sym.Not:
		l = c.compile(x.X).Flip()
	case *sym.And:
		lits := make([]Lit, len(x.Xs))
		for i, y := range x.Xs {
			lits[i] = c.compile(y)
		}
		l = c.and(lits)
	case *sym.Or:
		lits := make([]Lit, len(x.Xs))
		for i, y := range x.Xs {
			lits[i] = c.compile(y)
		}
		l = c.or(lits)
	default:
		panic(fmt.Sprintf("smt: compile: unexpected %T", e))
	}
	c.memo[key] = l
	if c.journal {
		c.memoLog = append(c.memoLog, key)
	}
	return l
}

// assertedIneqs reads the SAT model and returns, for every theory atom, the
// inequality asserted by its polarity, paired with the literal that asserts
// it (used to build blocking clauses).
func (c *compiler) assertedIneqs() ([]Ineq, []Lit) {
	ineqs := make([]Ineq, 0, len(c.atomIneq))
	lits := make([]Lit, 0, len(c.atomIneq))
	// Deterministic order: by SAT variable index.
	for v := 0; v < c.sat.NumVars(); v++ {
		q, ok := c.atomIneq[v]
		if !ok {
			continue
		}
		if c.sat.Value(v) {
			ineqs = append(ineqs, q)
			lits = append(lits, MkLit(v, false))
		} else {
			ineqs = append(ineqs, q.Negated())
			lits = append(lits, MkLit(v, true))
		}
	}
	return ineqs, lits
}
