package smt

import (
	"math/rand"
	"testing"

	"hotg/internal/sym"
)

func TestEUFBasics(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)

	e := NewEUF()
	tx, ty := e.InternVar(x), e.InternVar(y)
	hx := e.InternApp(h, []int{tx})
	hy := e.InternApp(h, []int{ty})

	if e.Equal(hx, hy) {
		t.Fatal("h(x) and h(y) should not start equal")
	}
	if !e.AssertEq(tx, ty) {
		t.Fatal("x=y should not conflict")
	}
	if !e.Equal(hx, hy) {
		t.Fatal("congruence: x=y should imply h(x)=h(y)")
	}
	if e.AssertNe(hx, hy) {
		t.Fatal("h(x)≠h(y) must now conflict")
	}
	if !e.Conflict() {
		t.Fatal("conflict flag")
	}
}

func TestEUFConstants(t *testing.T) {
	e := NewEUF()
	c5, c7 := e.InternConst(5), e.InternConst(7)
	if e.AssertEq(c5, c7) {
		t.Fatal("5 = 7 must conflict")
	}

	e = NewEUF()
	var p sym.Pool
	x := p.NewVar("x")
	tx := e.InternVar(x)
	if !e.AssertEq(tx, e.InternConst(5)) {
		t.Fatal("x = 5 fine")
	}
	if e.AssertEq(tx, e.InternConst(7)) {
		t.Fatal("x = 5 ∧ x = 7 must conflict")
	}
}

func TestEUFTransitiveCongruence(t *testing.T) {
	// f(f(a)) = a ∧ f(f(f(a))) = a  ⇒  f(a) = a.
	var p sym.Pool
	a := p.NewVar("a")
	f := p.FuncSym("f", 1)
	e := NewEUF()
	ta := e.InternVar(a)
	fa := e.InternApp(f, []int{ta})
	ffa := e.InternApp(f, []int{fa})
	fffa := e.InternApp(f, []int{ffa})
	if !e.AssertEq(ffa, ta) || !e.AssertEq(fffa, ta) {
		t.Fatal("assertions should not conflict")
	}
	if !e.Equal(fa, ta) {
		t.Fatal("f(a) = a should follow")
	}
	if e.AssertNe(fa, ta) {
		t.Fatal("f(a) ≠ a must conflict")
	}
}

func TestEUFMultiArg(t *testing.T) {
	var p sym.Pool
	x, y, z := p.NewVar("x"), p.NewVar("y"), p.NewVar("z")
	g := p.FuncSym("g", 2)
	e := NewEUF()
	tx, ty, tz := e.InternVar(x), e.InternVar(y), e.InternVar(z)
	gxy := e.InternApp(g, []int{tx, ty})
	gzy := e.InternApp(g, []int{tz, ty})
	if !e.AssertNe(gxy, gzy) {
		t.Fatal("g(x,y) ≠ g(z,y) alone is fine")
	}
	if e.AssertEq(tx, tz) {
		t.Fatal("x = z now forces g(x,y) = g(z,y): conflict expected")
	}
}

func TestSolveEUFFragmentDetection(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)

	// In fragment: x = y ∧ h(x) ≠ h(y).
	f := sym.AndExpr(
		sym.Eq(sym.VarTerm(x), sym.VarTerm(y)),
		sym.Ne(sym.ApplyTerm(h, sym.VarTerm(x)), sym.ApplyTerm(h, sym.VarTerm(y))),
	)
	st, ok := SolveEUF(f)
	if !ok || st != StatusUnsat {
		t.Fatalf("SolveEUF = %v, %v", st, ok)
	}

	// Out of fragment: arithmetic on terms.
	g := sym.Eq(sym.AddSum(sym.VarTerm(x), sym.VarTerm(y)), sym.Int(3))
	if _, ok := SolveEUF(g); ok {
		t.Fatal("x+y=3 is not pure EUF")
	}
	// Out of fragment: inequality.
	le := sym.Le(sym.VarTerm(x), sym.VarTerm(y))
	if _, ok := SolveEUF(le); ok {
		t.Fatal("x≤y is not pure EUF")
	}
	// Out of fragment: offset equality between two atoms.
	off := sym.Eq(sym.VarTerm(x), sym.AddSum(sym.VarTerm(y), sym.Int(1)))
	if _, ok := SolveEUF(off); ok {
		t.Fatal("x = y+1 is not pure EUF")
	}
	// In fragment: atom-vs-constant.
	ac := sym.Eq(sym.ApplyTerm(h, sym.Int(3)), sym.Int(7))
	if st, ok := SolveEUF(ac); !ok || st != StatusSat {
		t.Fatalf("h(3)=7: %v %v", st, ok)
	}
}

// randEUFFormula builds a random conjunction in the pure-EUF fragment.
func randEUFFormula(r *rand.Rand, p *sym.Pool, vars []*sym.Var, fns []*sym.Func) sym.Expr {
	term := func() *sym.Sum {
		switch r.Intn(4) {
		case 0:
			return sym.Int(int64(r.Intn(3)))
		case 1, 2:
			return sym.VarTerm(vars[r.Intn(len(vars))])
		default:
			f := fns[r.Intn(len(fns))]
			args := make([]*sym.Sum, f.Arity)
			for i := range args {
				if r.Intn(2) == 0 {
					args[i] = sym.VarTerm(vars[r.Intn(len(vars))])
				} else {
					args[i] = sym.Int(int64(r.Intn(3)))
				}
			}
			return sym.ApplyTerm(f, args...)
		}
	}
	n := 2 + r.Intn(6)
	parts := make([]sym.Expr, 0, n)
	for i := 0; i < n; i++ {
		a, b := term(), term()
		if r.Intn(2) == 0 {
			parts = append(parts, sym.Eq(a, b))
		} else {
			parts = append(parts, sym.Ne(a, b))
		}
	}
	return sym.AndExpr(parts...)
}

// TestEUFAgreesWithAckermann cross-checks congruence closure against the
// Ackermann-reduction pipeline on random pure-EUF conjunctions.
func TestEUFAgreesWithAckermann(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for iter := 0; iter < 300; iter++ {
		var p sym.Pool
		vars := []*sym.Var{p.NewVar("x"), p.NewVar("y"), p.NewVar("z")}
		fns := []*sym.Func{p.FuncSym("f", 1), p.FuncSym("g", 2)}
		f := randEUFFormula(r, &p, vars, fns)
		if f == sym.True || f == sym.False {
			continue
		}

		ccSt, ok := SolveEUF(f)
		if !ok {
			t.Fatalf("iter %d: generated formula left the fragment: %v", iter, f)
		}

		// Full pipeline (without the fast path interfering: replicate its
		// internals by calling Solve, which only short-circuits on unsat —
		// agreement on unsat is exactly what we are checking).
		ackSt, m := Solve(f, Options{Pool: &p})
		if ackSt == StatusUnknown {
			continue
		}
		if ccSt != ackSt {
			t.Fatalf("iter %d: congruence closure says %v, Ackermann pipeline says %v\n%v",
				iter, ccSt, ackSt, f)
		}
		// For apply-free formulas the model is directly checkable; with
		// applications the witness interpretation lives in m.Funcs under
		// syntactic keys, so only the verdicts are compared (which is the
		// point of the cross-check).
		if ackSt == StatusSat && !sym.HasApply(f) {
			okM, err := CheckModel(f, m, nil)
			if err != nil || !okM {
				t.Fatalf("iter %d: model check failed: %v %v", iter, okM, err)
			}
		}
	}
}
