package smt

import (
	"fmt"

	"hotg/internal/sym"
)

// EUF is an incremental congruence-closure decision procedure for the theory
// of equality with uninterpreted functions over ground terms (constants,
// variables, applications). It is the classic Nelson–Oppen/Downey–Sethi–
// Tarjan construction: a union–find over term IDs with use-lists and a
// signature table, processing merges through a pending queue so congruence
// (s̄ = t̄ ⇒ f(s̄) = f(t̄)) propagates to fixpoint.
//
// The full solver (Solve) uses it as a fast path for purely equational
// conjunctions, which also serves as an independent cross-check of the
// Ackermann-reduction pipeline; the property tests in euf_test.go compare
// the two on random instances.
type EUF struct {
	parent []int
	rank   []int

	// Per representative: the constant value its class is known to equal,
	// if any.
	hasConst []bool
	constVal []int64

	// apps[i] describes term i when it is an application.
	apps map[int]eufApp
	// uses[r] lists application terms having a member of class r as an
	// argument (kept on representatives, merged on union).
	uses map[int][]int
	// sig maps an application signature (fn, representative args) to a
	// term ID currently carrying it.
	sig map[string]int

	// interning
	byKey map[string]int

	// disequalities to re-check after merges: pairs of term IDs.
	diseqs [][2]int

	conflict bool
}

type eufApp struct {
	fn   *sym.Func
	args []int
}

// NewEUF returns an empty congruence-closure solver.
func NewEUF() *EUF {
	return &EUF{
		apps:  make(map[int]eufApp),
		uses:  make(map[int][]int),
		sig:   make(map[string]int),
		byKey: make(map[string]int),
	}
}

func (e *EUF) newTerm(key string) int {
	id := len(e.parent)
	e.parent = append(e.parent, id)
	e.rank = append(e.rank, 0)
	e.hasConst = append(e.hasConst, false)
	e.constVal = append(e.constVal, 0)
	e.byKey[key] = id
	return id
}

func (e *EUF) find(x int) int {
	for e.parent[x] != x {
		e.parent[x] = e.parent[e.parent[x]]
		x = e.parent[x]
	}
	return x
}

// InternConst interns an integer constant.
func (e *EUF) InternConst(v int64) int {
	key := fmt.Sprintf("#%d", v)
	if id, ok := e.byKey[key]; ok {
		return id
	}
	id := e.newTerm(key)
	e.hasConst[id] = true
	e.constVal[id] = v
	return id
}

// InternVar interns a variable.
func (e *EUF) InternVar(v *sym.Var) int {
	key := "v" + v.Key()
	if id, ok := e.byKey[key]; ok {
		return id
	}
	return e.newTerm(key)
}

// InternApp interns an application of fn to already-interned argument terms,
// merging with an existing congruent application if one exists.
func (e *EUF) InternApp(fn *sym.Func, args []int) int {
	key := fmt.Sprintf("a%d(", fn.ID)
	for _, a := range args {
		key += fmt.Sprintf("%d,", a)
	}
	key += ")"
	if id, ok := e.byKey[key]; ok {
		return id
	}
	id := e.newTerm(key)
	cp := make([]int, len(args))
	copy(cp, args)
	e.apps[id] = eufApp{fn: fn, args: cp}
	for _, a := range cp {
		r := e.find(a)
		e.uses[r] = append(e.uses[r], id)
	}
	// Congruence with an existing application.
	s := e.signature(id)
	if other, ok := e.sig[s]; ok {
		e.merge(id, other)
	} else {
		e.sig[s] = id
	}
	return id
}

func (e *EUF) signature(app int) string {
	a := e.apps[app]
	s := fmt.Sprintf("%d(", a.fn.ID)
	for _, arg := range a.args {
		s += fmt.Sprintf("%d,", e.find(arg))
	}
	return s + ")"
}

// AssertEq asserts a = b; it returns false on conflict.
func (e *EUF) AssertEq(a, b int) bool {
	if e.conflict {
		return false
	}
	e.merge(a, b)
	e.checkDiseqs()
	return !e.conflict
}

// AssertNe asserts a ≠ b; it returns false on conflict.
func (e *EUF) AssertNe(a, b int) bool {
	if e.conflict {
		return false
	}
	e.diseqs = append(e.diseqs, [2]int{a, b})
	e.checkDiseqs()
	return !e.conflict
}

// Equal reports whether the two terms are currently known equal.
func (e *EUF) Equal(a, b int) bool { return e.find(a) == e.find(b) }

func (e *EUF) checkDiseqs() {
	for _, d := range e.diseqs {
		ra, rb := e.find(d[0]), e.find(d[1])
		if ra == rb {
			e.conflict = true
			return
		}
		// Two classes pinned to the same constant are equal even without an
		// explicit merge; two pinned to different constants are fine.
		if e.hasConst[ra] && e.hasConst[rb] && e.constVal[ra] == e.constVal[rb] {
			e.conflict = true
			return
		}
	}
}

// merge unions the classes of a and b and propagates congruences through a
// pending queue.
func (e *EUF) merge(a, b int) {
	pending := [][2]int{{a, b}}
	for len(pending) > 0 {
		x, y := pending[0][0], pending[0][1]
		pending = pending[1:]
		rx, ry := e.find(x), e.find(y)
		if rx == ry {
			continue
		}
		// Distinct constants cannot be equal.
		if e.hasConst[rx] && e.hasConst[ry] && e.constVal[rx] != e.constVal[ry] {
			e.conflict = true
			return
		}
		if e.rank[rx] < e.rank[ry] {
			rx, ry = ry, rx
		}
		// ry joins rx.
		e.parent[ry] = rx
		if e.rank[rx] == e.rank[ry] {
			e.rank[rx]++
		}
		if e.hasConst[ry] {
			e.hasConst[rx] = true
			e.constVal[rx] = e.constVal[ry]
		}
		// Recompute signatures of applications using the absorbed class.
		moved := e.uses[ry]
		delete(e.uses, ry)
		for _, app := range moved {
			s := e.signature(app)
			if other, ok := e.sig[s]; ok && e.find(other) != e.find(app) {
				pending = append(pending, [2]int{app, other})
			} else if !ok {
				e.sig[s] = app
			}
		}
		e.uses[rx] = append(e.uses[rx], moved...)
	}
}

// Conflict reports whether the asserted constraints are unsatisfiable.
func (e *EUF) Conflict() bool { return e.conflict }

// ---- Fast-path integration with Solve ----

// eufLiteral is one conjunct of a pure-EUF problem: t1 (= | ≠) t2.
type eufLiteral struct {
	t1, t2 *sym.Sum
	eq     bool
}

// pureEUFConjuncts decomposes f into equational literals if and only if f is
// a conjunction of (dis)equalities between EUF terms (constants, variables,
// applications with EUF-term arguments) — no real arithmetic.
func pureEUFConjuncts(f sym.Expr) ([]eufLiteral, bool) {
	var out []eufLiteral
	for _, c := range sym.Conjuncts(f) {
		cmp, ok := c.(*sym.Cmp)
		if !ok || cmp.Op == sym.OpLe {
			return nil, false
		}
		t1, t2, ok := splitEUFEquality(cmp.S)
		if !ok {
			return nil, false
		}
		out = append(out, eufLiteral{t1: t1, t2: t2, eq: cmp.Op == sym.OpEq})
	}
	return out, true
}

// splitEUFEquality decomposes the normalized S of "S ⋈ 0" into two EUF
// terms t1, t2 with S = t1 - t2, when possible.
func splitEUFEquality(s *sym.Sum) (*sym.Sum, *sym.Sum, bool) {
	switch len(s.Terms) {
	case 1:
		// ±atom + c ⋈ 0  →  atom = ∓c.
		t := s.Terms[0]
		if t.Coef != 1 && t.Coef != -1 {
			return nil, nil, false
		}
		if !isEUFAtom(t.Atom) {
			return nil, nil, false
		}
		return sym.AtomTerm(t.Atom), sym.Int(-t.Coef * s.Const), true
	case 2:
		// atom1 - atom2 ⋈ 0 (no constant offset).
		if s.Const != 0 {
			return nil, nil, false
		}
		a, b := s.Terms[0], s.Terms[1]
		if a.Coef+b.Coef != 0 || (a.Coef != 1 && a.Coef != -1) {
			return nil, nil, false
		}
		if !isEUFAtom(a.Atom) || !isEUFAtom(b.Atom) {
			return nil, nil, false
		}
		return sym.AtomTerm(a.Atom), sym.AtomTerm(b.Atom), true
	}
	return nil, nil, false
}

func isEUFAtom(a sym.Atom) bool {
	app, ok := a.(*sym.Apply)
	if !ok {
		return true // variables are EUF terms
	}
	for _, arg := range app.Args {
		if !isEUFSum(arg) {
			return false
		}
	}
	return true
}

func isEUFSum(s *sym.Sum) bool {
	if _, ok := s.IsConst(); ok {
		return true
	}
	if len(s.Terms) != 1 || s.Const != 0 || s.Terms[0].Coef != 1 {
		return false
	}
	return isEUFAtom(s.Terms[0].Atom)
}

// internSum interns a (pure EUF) term, returning its ID.
func (e *EUF) internSum(s *sym.Sum) int {
	if v, ok := s.IsConst(); ok {
		return e.InternConst(v)
	}
	switch a := s.Terms[0].Atom.(type) {
	case *sym.Var:
		return e.InternVar(a)
	case *sym.Apply:
		args := make([]int, len(a.Args))
		for i, arg := range a.Args {
			args[i] = e.internSum(arg)
		}
		return e.InternApp(a.Fn, args)
	}
	panic("smt: internSum: not an EUF term")
}

// SolveEUF decides a pure-EUF conjunction with congruence closure. The
// second result is false when f is not in the pure-EUF fragment.
func SolveEUF(f sym.Expr) (Status, bool) {
	lits, ok := pureEUFConjuncts(f)
	if !ok {
		return StatusUnknown, false
	}
	e := NewEUF()
	// Assert equalities first: congruence closure is order-insensitive but
	// asserting Ne after Eq lets checkDiseqs see the final classes.
	for _, l := range lits {
		if l.eq {
			if !e.AssertEq(e.internSum(l.t1), e.internSum(l.t2)) {
				return StatusUnsat, true
			}
		}
	}
	for _, l := range lits {
		if !l.eq {
			if !e.AssertNe(e.internSum(l.t1), e.internSum(l.t2)) {
				return StatusUnsat, true
			}
		}
	}
	return StatusSat, true
}
