package smt

import (
	"math/rand"
	"testing"
	"time"

	"hotg/internal/sym"
)

// TestSATResetContract pins down the exact post-Reset contract documented on
// SAT.Reset: clauses, activity, phases and level-0 facts survive; everything
// above level 0 is unwound; the conflict counter is not reset.
func TestSATResetContract(t *testing.T) {
	s := NewSAT(0)
	s.SavePhase(true)
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// Unit fact: a is true at level 0.
	if !s.AddClause(MkLit(a, false)) {
		t.Fatal("unit clause rejected")
	}
	// Force a conflict so activity moves and a clause is learned:
	// (¬a ∨ b ∨ c) ∧ (¬b ∨ ¬c) ∧ (¬b ∨ c) ∧ (b ∨ ¬c)
	s.AddClause(MkLit(a, true), MkLit(b, false), MkLit(c, false))
	s.AddClause(MkLit(b, true), MkLit(c, true))
	s.AddClause(MkLit(b, true), MkLit(c, false))
	s.AddClause(MkLit(b, false), MkLit(c, true))
	if res := s.Solve(); res != SATUnsat {
		t.Fatalf("expected UNSAT, got %v", res)
	}

	s2 := NewSAT(0)
	s2.SavePhase(true)
	v := s2.NewVar()
	w := s2.NewVar()
	s2.AddClause(MkLit(v, false))                // level-0 fact
	s2.AddClause(MkLit(v, true), MkLit(w, true)) // forces ¬w
	if res := s2.Solve(); res != SATSat {
		t.Fatalf("expected SAT, got %v", res)
	}
	clausesBefore := s2.NumClauses()
	activityBefore := append([]float64(nil), s2.activity...)
	conflictsBefore := s2.nConflicts

	s2.Reset()

	if s2.NumClauses() != clausesBefore {
		t.Errorf("Reset dropped clauses: %d -> %d", clausesBefore, s2.NumClauses())
	}
	if s2.assign[v] != lTrue {
		t.Errorf("Reset lost the level-0 fact on v: %v", s2.assign[v])
	}
	for i, act := range s2.activity {
		if act != activityBefore[i] {
			t.Errorf("Reset changed activity[%d]: %v -> %v", i, activityBefore[i], act)
		}
	}
	if s2.nConflicts != conflictsBefore {
		t.Errorf("Reset cleared the conflict counter: %d -> %d", conflictsBefore, s2.nConflicts)
	}
	// Re-solving after Reset succeeds and w keeps its saved phase usable.
	if res := s2.Solve(); res != SATSat {
		t.Fatalf("re-solve after Reset: %v", res)
	}
	// ResetSearch additionally clears the conflict budget.
	s2.nConflicts = 17
	s2.ResetSearch()
	if s2.nConflicts != 0 {
		t.Errorf("ResetSearch kept nConflicts=%d", s2.nConflicts)
	}
}

// TestSATPopToRetainsTheoryLemmas exercises Mark/PopTo directly: originals
// past the mark disappear, theory lemmas over still-live variables survive,
// CDCL-learned clauses past the mark are dropped.
func TestSATPopToRetainsTheoryLemmas(t *testing.T) {
	s := NewSAT(0)
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	m := s.Mark()

	c := s.NewVar()
	s.AddClause(MkLit(c, false), MkLit(a, true)) // frame-local original
	if !s.AddTheoryLemma(MkLit(a, true), MkLit(b, true)) {
		t.Fatal("lemma over live vars rejected")
	}
	if !s.AddTheoryLemma(MkLit(c, true), MkLit(b, true)) {
		t.Fatal("lemma over frame var rejected")
	}

	retained := s.PopTo(m)
	if retained != 1 {
		t.Fatalf("retained %d lemmas, want 1 (the a∨b lemma)", retained)
	}
	if s.NumVars() != 2 {
		t.Fatalf("NumVars=%d after pop, want 2", s.NumVars())
	}
	if s.NumClauses() != 2 { // original + retained lemma
		t.Fatalf("NumClauses=%d after pop, want 2", s.NumClauses())
	}
	// The surviving formula is (a∨b) ∧ (¬a∨¬b): still satisfiable.
	if res := s.Solve(); res != SATSat {
		t.Fatalf("post-pop solve: %v", res)
	}
	if s.Value(a) == s.Value(b) {
		t.Fatalf("model violates retained lemma: a=%v b=%v", s.Value(a), s.Value(b))
	}
}

// genStack builds a random assertion stack: a list of frames, each a list of
// conjuncts over vars, using only apply-free linear constraints.
func genStack(rng *rand.Rand, vars []*sym.Var) [][]sym.Expr {
	nFrames := 1 + rng.Intn(4)
	stack := make([][]sym.Expr, nFrames)
	for f := range stack {
		nConj := 1 + rng.Intn(3)
		conjs := make([]sym.Expr, nConj)
		for i := range conjs {
			conjs[i] = genConstraint(rng, vars)
		}
		stack[f] = conjs
	}
	return stack
}

func genConstraint(rng *rand.Rand, vars []*sym.Var) sym.Expr {
	atom := func() sym.Expr {
		s := sym.Int(int64(rng.Intn(11) - 5))
		for _, v := range vars {
			if rng.Intn(2) == 0 {
				s = sym.AddSum(s, sym.ScaleSum(int64(rng.Intn(7)-3), sym.VarTerm(v)))
			}
		}
		k := sym.Int(int64(rng.Intn(9) - 4))
		switch rng.Intn(3) {
		case 0:
			return sym.Eq(s, k)
		case 1:
			return sym.Ne(s, k)
		default:
			return sym.Le(s, k)
		}
	}
	if rng.Intn(4) == 0 {
		return sym.OrExpr(atom(), atom())
	}
	return atom()
}

// TestIncrementalEquivalence is the incremental-equivalence property from the
// issue: on 1k seeded random conjunction stacks, Context push/assert/check/pop
// in exact mode returns the same Status and Model as a fresh Solve of the
// accumulated conjunction; Retain (warm) mode returns the same Status and a
// model that satisfies the conjunction.
func TestIncrementalEquivalence(t *testing.T) {
	for seed := int64(0); seed < 1000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var p sym.Pool
		vars := []*sym.Var{p.NewVar("x"), p.NewVar("y"), p.NewVar("z")}
		bounds := map[int]Bound{}
		for _, v := range vars {
			bounds[v.ID] = Bound{Lo: -10, Hi: 10, HasLo: true, HasHi: true}
		}
		opts := Options{Pool: &p, VarBounds: bounds}
		checkStack(t, seed, genStack(rng, vars), opts)
	}
}

func checkStack(t *testing.T, seed int64, stack [][]sym.Expr, opts Options) {
	t.Helper()
	exact := NewContext(ContextOptions{Options: opts})
	warm := NewContext(ContextOptions{Options: opts, Retain: true})
	var acc []sym.Expr
	for _, frame := range stack {
		exact.Push()
		warm.Push()
		for _, e := range frame {
			exact.Assert(e)
			warm.Assert(e)
			acc = append(acc, e)
		}
		f := sym.AndExpr(acc...)
		wantSt, wantM := Solve(f, opts)

		gotSt, gotM := exact.Check()
		if gotSt != wantSt {
			t.Fatalf("seed %d: exact Check=%v, fresh Solve=%v for %v", seed, gotSt, wantSt, f)
		}
		if !modelsEqual(gotM, wantM) {
			t.Fatalf("seed %d: exact model %v, fresh model %v for %v", seed, gotM, wantM, f)
		}

		warmSt, warmM := warm.Check()
		if warmSt != wantSt {
			t.Fatalf("seed %d: warm Check=%v, fresh Solve=%v for %v", seed, warmSt, wantSt, f)
		}
		if warmSt == StatusSat {
			if ok, err := CheckModel(f, warmM, nil); err != nil || !ok {
				t.Fatalf("seed %d: warm model %v invalid for %v (err %v)", seed, warmM, f, err)
			}
		}
	}
	// Unwind with intermediate checks: after each pop the session must agree
	// with a fresh solve of the shortened stack.
	for i := len(stack) - 1; i >= 0; i-- {
		exact.Pop()
		warm.Pop()
		acc = acc[:len(acc)-len(stack[i])]
		f := sym.AndExpr(acc...)
		wantSt, wantM := Solve(f, opts)
		gotSt, gotM := exact.Check()
		if gotSt != wantSt || !modelsEqual(gotM, wantM) {
			t.Fatalf("seed %d: post-pop exact (%v,%v) vs fresh (%v,%v)", seed, gotSt, gotM, wantSt, wantM)
		}
		warmSt, warmM := warm.Check()
		if warmSt != wantSt {
			t.Fatalf("seed %d: post-pop warm %v vs fresh %v", seed, warmSt, wantSt)
		}
		if warmSt == StatusSat {
			if ok, err := CheckModel(f, warmM, nil); err != nil || !ok {
				t.Fatalf("seed %d: post-pop warm model %v invalid (err %v)", seed, warmM, err)
			}
		}
	}
}

func modelsEqual(a, b *Model) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.Vars) != len(b.Vars) || len(a.Funcs) != len(b.Funcs) {
		return false
	}
	for k, v := range a.Vars {
		if b.Vars[k] != v {
			return false
		}
	}
	for k, v := range a.Funcs {
		if b.Funcs[k] != v {
			return false
		}
	}
	return true
}

// TestContextApplyFormulas covers session checks on formulas with
// uninterpreted applications: statuses must match a fresh Solve, witnesses
// must cover the same applications, and the warm session must fall back to
// the exact path transparently.
func TestContextApplyFormulas(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	bounds := map[int]Bound{
		x.ID: {Lo: -16, Hi: 16, HasLo: true, HasHi: true},
		y.ID: {Lo: -16, Hi: 16, HasLo: true, HasHi: true},
	}
	opts := Options{Pool: &p, VarBounds: bounds}

	base := sym.Eq(sym.ApplyTerm(h, sym.VarTerm(x)), sym.Int(7))
	cases := []sym.Expr{
		sym.Eq(sym.ApplyTerm(h, sym.VarTerm(y)), sym.Int(7)),
		sym.AndExpr(sym.Eq(sym.VarTerm(x), sym.VarTerm(y)),
			sym.Ne(sym.ApplyTerm(h, sym.VarTerm(y)), sym.Int(7))), // violates congruence
		sym.Ne(sym.ApplyTerm(h, sym.Int(3)), sym.ApplyTerm(h, sym.Int(3))),
	}

	for _, mode := range []bool{false, true} {
		ctx := NewContext(ContextOptions{Options: opts, Retain: mode})
		ctx.Assert(base)
		for i, extra := range cases {
			f := sym.AndExpr(base, extra)
			wantSt, wantM := Solve(f, opts)
			gotSt, gotM := ctx.SolveUnder(extra, nil, time.Time{})
			if gotSt != wantSt {
				t.Fatalf("retain=%v case %d: session %v, fresh %v", mode, i, gotSt, wantSt)
			}
			if wantSt == StatusSat {
				if len(gotM.Funcs) != len(wantM.Funcs) {
					t.Fatalf("retain=%v case %d: witness keys %v vs %v", mode, i, gotM.Funcs, wantM.Funcs)
				}
				if ok, err := CheckModel(f, gotM, funcsEval(gotM)); err != nil || !ok {
					t.Fatalf("retain=%v case %d: model %v invalid (err %v)", mode, i, gotM, err)
				}
			}
		}
	}
}

// funcsEval builds a CheckModel evaluator from a model's witness map: it is
// only consulted for applications whose arguments are concrete, which all
// post-Ackermann checks satisfy here because the formulas pin the arguments.
func funcsEval(m *Model) func(string, []int64) (int64, bool) {
	return func(name string, args []int64) (int64, bool) {
		// The witness map is keyed by canonical application keys over the
		// *rewritten* arguments, which tests cannot reconstruct in general;
		// for the single-value interpretations used here, any recorded value
		// for the function works for validity checking.
		for _, v := range m.Funcs {
			return v, true
		}
		return 0, false
	}
}

// TestContextStats checks the session counters that feed the obs layer and
// benchtab: pushes, pops, retained lemmas and warm-start hits.
func TestContextStats(t *testing.T) {
	var p sym.Pool
	x := p.NewVar("x")
	bounds := map[int]Bound{x.ID: {Lo: -100, Hi: 100, HasLo: true, HasHi: true}}
	ctx := NewContext(ContextOptions{Options: Options{Pool: &p, VarBounds: bounds}, Retain: true})

	ctx.Assert(sym.Le(sym.VarTerm(x), sym.Int(50)))
	for i := 0; i < 3; i++ {
		ctx.Push()
		ctx.Assert(sym.Ge(sym.VarTerm(x), sym.Int(int64(i))))
		if st, _ := ctx.Check(); st != StatusSat {
			t.Fatalf("check %d: %v", i, st)
		}
		ctx.Pop()
	}
	st := ctx.Stats()
	if st.Pushes != 3 || st.Pops != 3 || st.Checks != 3 {
		t.Fatalf("stats %+v: want 3 pushes/pops/checks", st)
	}
	if st.WarmStartHits < 2 {
		t.Fatalf("stats %+v: want >=2 warm-start hits", st)
	}
}

// FuzzIncrementalSolve drives TestIncrementalEquivalence's property from
// fuzzed seeds: a byte string selects the random stack, and the session
// verdicts must match fresh solves at every depth. Wired into `make
// fuzz-smoke`.
func FuzzIncrementalSolve(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(424242))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		var p sym.Pool
		vars := []*sym.Var{p.NewVar("x"), p.NewVar("y"), p.NewVar("z")}
		bounds := map[int]Bound{}
		for _, v := range vars {
			bounds[v.ID] = Bound{Lo: -10, Hi: 10, HasLo: true, HasHi: true}
		}
		opts := Options{Pool: &p, VarBounds: bounds}
		checkStack(t, seed, genStack(rng, vars), opts)
	})
}
