package smt

import (
	"math/rand"
	"testing"

	"hotg/internal/sym"
)

func TestSATBasics(t *testing.T) {
	s := NewSAT(0)
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a ∨ b
	s.AddClause(MkLit(a, true))                   // ¬a
	if s.Solve() != SATSat {
		t.Fatal("expected SAT")
	}
	if s.Value(a) || !s.Value(b) {
		t.Fatalf("model a=%v b=%v", s.Value(a), s.Value(b))
	}
}

func TestSATUnsat(t *testing.T) {
	s := NewSAT(0)
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if !s.AddClause(MkLit(a, true)) {
		return // detected at add time
	}
	if s.Solve() != SATUnsat {
		t.Fatal("expected UNSAT")
	}
}

// TestSATPigeonhole checks a nontrivial UNSAT instance that requires real
// conflict-driven search: 4 pigeons in 3 holes.
func TestSATPigeonhole(t *testing.T) {
	const P, H = 4, 3
	s := NewSAT(0)
	v := make([][]int, P)
	for p := 0; p < P; p++ {
		v[p] = make([]int, H)
		for h := 0; h < H; h++ {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < P; p++ {
		lits := make([]Lit, H)
		for h := 0; h < H; h++ {
			lits[h] = MkLit(v[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < H; h++ {
		for p1 := 0; p1 < P; p1++ {
			for p2 := p1 + 1; p2 < P; p2++ {
				s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
			}
		}
	}
	if s.Solve() != SATUnsat {
		t.Fatal("pigeonhole should be UNSAT")
	}
}

// TestSATRandom3CNF cross-checks CDCL against brute force on random 3-CNF.
func TestSATRandom3CNF(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 3 + r.Intn(6) // 3..8 vars
		m := 2 + r.Intn(4*n)
		clauses := make([][]Lit, m)
		for i := range clauses {
			cl := make([]Lit, 3)
			for j := range cl {
				cl[j] = MkLit(r.Intn(n), r.Intn(2) == 0)
			}
			clauses[i] = cl
		}
		// Brute force.
		bruteSat := false
		for mask := 0; mask < 1<<n && !bruteSat; mask++ {
			ok := true
			for _, cl := range clauses {
				cok := false
				for _, l := range cl {
					val := mask>>(l.Var())&1 == 1
					if l.Neg() {
						val = !val
					}
					if val {
						cok = true
						break
					}
				}
				if !cok {
					ok = false
					break
				}
			}
			if ok {
				bruteSat = true
			}
		}
		s := NewSAT(0)
		for i := 0; i < n; i++ {
			s.NewVar()
		}
		addOK := true
		for _, cl := range clauses {
			if !s.AddClause(cl...) {
				addOK = false
				break
			}
		}
		var got SATResult
		if !addOK {
			got = SATUnsat
		} else {
			got = s.Solve()
		}
		want := SATUnsat
		if bruteSat {
			want = SATSat
		}
		if got != want {
			t.Fatalf("iter %d: CDCL=%v brute=%v (n=%d m=%d)", iter, got, want, n, m)
		}
		if got == SATSat {
			for _, cl := range clauses {
				cok := false
				for _, l := range cl {
					val := s.Value(l.Var())
					if l.Neg() {
						val = !val
					}
					if val {
						cok = true
					}
				}
				if !cok {
					t.Fatalf("iter %d: model violates clause", iter)
				}
			}
		}
	}
}

func TestLIASimple(t *testing.T) {
	// x + y ≤ 3, -x ≤ 0, -y ≤ 0, -x-y ≤ -3  (i.e. x+y=3, x,y ≥ 0)
	ineqs := []Ineq{
		{Terms: []IVTerm{{0, 1}, {1, 1}}, B: 3},
		{Terms: []IVTerm{{0, -1}}, B: 0},
		{Terms: []IVTerm{{1, -1}}, B: 0},
		{Terms: []IVTerm{{0, -1}, {1, -1}}, B: -3},
	}
	m, st := SolveLIA(2, ineqs, nil, 0)
	if st != StatusSat {
		t.Fatalf("status %v", st)
	}
	if m[0]+m[1] != 3 || m[0] < 0 || m[1] < 0 {
		t.Fatalf("model %v", m)
	}
}

func TestLIAInfeasible(t *testing.T) {
	// x ≤ 0 ∧ -x ≤ -1  (x ≥ 1): empty.
	ineqs := []Ineq{
		{Terms: []IVTerm{{0, 1}}, B: 0},
		{Terms: []IVTerm{{0, -1}}, B: -1},
	}
	if _, st := SolveLIA(1, ineqs, nil, 0); st != StatusUnsat {
		t.Fatalf("status %v", st)
	}
}

func TestLIAIntegrality(t *testing.T) {
	// 2x = 1 has a rational solution but no integer one: 2x ≤ 1 ∧ -2x ≤ -1.
	ineqs := []Ineq{
		{Terms: []IVTerm{{0, 2}}, B: 1},
		{Terms: []IVTerm{{0, -2}}, B: -1},
	}
	if _, st := SolveLIA(1, ineqs, nil, 0); st != StatusUnsat {
		t.Fatalf("2x=1 over ints should be unsat, got %v", st)
	}
	// 3x - 3y = 1 likewise (gcd argument), needs normalization or branching.
	ineqs = []Ineq{
		{Terms: []IVTerm{{0, 3}, {1, -3}}, B: 1},
		{Terms: []IVTerm{{0, -3}, {1, 3}}, B: -1},
	}
	bounds := []Bound{{Lo: -10, Hi: 10, HasLo: true, HasHi: true}, {Lo: -10, Hi: 10, HasLo: true, HasHi: true}}
	if _, st := SolveLIA(2, ineqs, bounds, 0); st != StatusUnsat {
		t.Fatalf("3x-3y=1 over ints should be unsat, got %v", st)
	}
}

func TestSolveConjunction(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	f := sym.AndExpr(
		sym.Eq(sym.AddSum(sym.VarTerm(x), sym.VarTerm(y)), sym.Int(10)),
		sym.Lt(sym.VarTerm(x), sym.VarTerm(y)),
		sym.Ge(sym.VarTerm(x), sym.Int(0)),
	)
	st, m := Solve(f, Options{})
	if st != StatusSat {
		t.Fatalf("status %v", st)
	}
	ok, err := CheckModel(f, m, nil)
	if err != nil || !ok {
		t.Fatalf("model check: %v %v (%v)", ok, err, m)
	}
}

func TestSolveDisjunctionAndNegation(t *testing.T) {
	var p sym.Pool
	x := p.NewVar("x")
	// (x = 3 ∨ x = 7) ∧ x ≠ 3  →  x = 7.
	f := sym.AndExpr(
		sym.OrExpr(sym.Eq(sym.VarTerm(x), sym.Int(3)), sym.Eq(sym.VarTerm(x), sym.Int(7))),
		sym.Ne(sym.VarTerm(x), sym.Int(3)),
	)
	st, m := Solve(f, Options{})
	if st != StatusSat {
		t.Fatalf("status %v", st)
	}
	if m.Vars[x.ID] != 7 {
		t.Fatalf("x = %d, want 7", m.Vars[x.ID])
	}
}

func TestSolveUnsat(t *testing.T) {
	var p sym.Pool
	x := p.NewVar("x")
	f := sym.AndExpr(
		sym.Lt(sym.VarTerm(x), sym.Int(0)),
		sym.Gt(sym.VarTerm(x), sym.Int(0)),
	)
	if st, _ := Solve(f, Options{}); st != StatusUnsat {
		t.Fatalf("status %v", st)
	}
}

func TestSolveRespectsBounds(t *testing.T) {
	var p sym.Pool
	x := p.NewVar("x")
	f := sym.Ge(sym.VarTerm(x), sym.Int(10))
	st, _ := Solve(f, Options{VarBounds: map[int]Bound{x.ID: {Lo: 0, Hi: 5, HasLo: true, HasHi: true}}})
	if st != StatusUnsat {
		t.Fatalf("x≥10 with x∈[0,5] should be unsat, got %v", st)
	}
}

func TestSolveEUFCongruence(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	hx := sym.ApplyTerm(h, sym.VarTerm(x))
	hy := sym.ApplyTerm(h, sym.VarTerm(y))

	// x = y ∧ h(x) ≠ h(y): violates functional consistency.
	f := sym.AndExpr(sym.Eq(sym.VarTerm(x), sym.VarTerm(y)), sym.Ne(hx, hy))
	if st, _ := Solve(f, Options{Pool: &p}); st != StatusUnsat {
		t.Fatalf("congruence violation should be unsat, got %v", st)
	}

	// x ≠ y ∧ h(x) ≠ h(y): satisfiable (h injective on {x,y}).
	f = sym.AndExpr(sym.Ne(sym.VarTerm(x), sym.VarTerm(y)), sym.Ne(hx, hy))
	st, m := Solve(f, Options{Pool: &p})
	if st != StatusSat {
		t.Fatalf("status %v", st)
	}
	if m.Vars[x.ID] == m.Vars[y.ID] {
		t.Fatalf("model x=y=%d", m.Vars[x.ID])
	}

	// h(x) = h(y) ∧ x ≠ y: satisfiable (h constant, for instance) — this is
	// precisely the "invented function" hazard of Section 4.2.
	f = sym.AndExpr(sym.Eq(hx, hy), sym.Ne(sym.VarTerm(x), sym.VarTerm(y)))
	st, m = Solve(f, Options{Pool: &p})
	if st != StatusSat {
		t.Fatalf("status %v", st)
	}
	if len(m.Funcs) == 0 {
		t.Fatal("expected witness interpretations for h")
	}
}

func TestSolveEUFNested(t *testing.T) {
	var p sym.Pool
	x := p.NewVar("x")
	h := p.FuncSym("h", 1)
	// h(h(x)) = x ∧ h(x) ≠ x: satisfiable (h an involution without fixpoint at x).
	hhx := sym.ApplyTerm(h, sym.ApplyTerm(h, sym.VarTerm(x)))
	f := sym.AndExpr(
		sym.Eq(hhx, sym.VarTerm(x)),
		sym.Ne(sym.ApplyTerm(h, sym.VarTerm(x)), sym.VarTerm(x)),
	)
	if st, _ := Solve(f, Options{Pool: &p}); st != StatusSat {
		t.Fatalf("involution should be sat, got %v", st)
	}
	// h(h(x)) ≠ h(h(x)) is unsat regardless of h.
	f = sym.Ne(hhx, hhx)
	// Ne folds syntactically to false already; exercise the path through Solve.
	if st, _ := Solve(sym.AndExpr(f), Options{Pool: &p}); st != StatusUnsat {
		t.Fatal("expected unsat")
	}
}

// randFormula builds a random boolean combination of linear atoms over vars.
func randFormula(r *rand.Rand, vars []*sym.Var, depth int) sym.Expr {
	if depth == 0 || r.Intn(3) == 0 {
		s := sym.Int(int64(r.Intn(9) - 4))
		for _, v := range vars {
			if r.Intn(2) == 0 {
				s = sym.AddSum(s, sym.ScaleSum(int64(r.Intn(5)-2), sym.VarTerm(v)))
			}
		}
		switch r.Intn(4) {
		case 0:
			return sym.Eq(s, sym.Int(0))
		case 1:
			return sym.Ne(s, sym.Int(0))
		case 2:
			return sym.Le(s, sym.Int(0))
		default:
			return sym.Lt(s, sym.Int(int64(r.Intn(5))))
		}
	}
	a := randFormula(r, vars, depth-1)
	b := randFormula(r, vars, depth-1)
	switch r.Intn(3) {
	case 0:
		return sym.AndExpr(a, b)
	case 1:
		return sym.OrExpr(a, b)
	default:
		return sym.NotExpr(a)
	}
}

// TestSolveVsBruteForce cross-checks the full SMT pipeline against exhaustive
// enumeration over a small integer domain.
func TestSolveVsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var p sym.Pool
	vars := []*sym.Var{p.NewVar("a"), p.NewVar("b")}
	const lo, hi = -4, 4
	bounds := map[int]Bound{
		vars[0].ID: {Lo: lo, Hi: hi, HasLo: true, HasHi: true},
		vars[1].ID: {Lo: lo, Hi: hi, HasLo: true, HasHi: true},
	}
	for iter := 0; iter < 150; iter++ {
		f := randFormula(r, vars, 3)
		bruteSat := false
		for a := int64(lo); a <= hi && !bruteSat; a++ {
			for b := int64(lo); b <= hi; b++ {
				env := sym.Env{Vars: map[int]int64{vars[0].ID: a, vars[1].ID: b}}
				ok, err := sym.EvalBool(f, env)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					bruteSat = true
					break
				}
			}
		}
		st, m := Solve(f, Options{VarBounds: bounds})
		want := StatusUnsat
		if bruteSat {
			want = StatusSat
		}
		if st != want {
			t.Fatalf("iter %d: Solve=%v brute=%v for %v", iter, st, want, f)
		}
		if st == StatusSat {
			ok, err := CheckModel(f, m, nil)
			if err != nil || !ok {
				t.Fatalf("iter %d: bad model %v for %v (err %v)", iter, m, f, err)
			}
			for _, v := range vars {
				if val, present := m.Vars[v.ID]; present && (val < lo || val > hi) {
					t.Fatalf("iter %d: model out of bounds: %s=%d", iter, v.Name, val)
				}
			}
		}
	}
}

func TestMinimizeCore(t *testing.T) {
	// {x ≤ 0, -x ≤ -5, y ≤ 3}: core is the first two.
	ineqs := []Ineq{
		{Terms: []IVTerm{{0, 1}}, B: 0},
		{Terms: []IVTerm{{0, -1}}, B: -5},
		{Terms: []IVTerm{{1, 1}}, B: 3},
	}
	core := minimizeCore(2, ineqs, []Bound{{}, {}}, 0)
	if len(core) != 2 || core[0] != 0 || core[1] != 1 {
		t.Fatalf("core = %v", core)
	}
}

func TestIneqNormalize(t *testing.T) {
	q := Ineq{Terms: []IVTerm{{0, 2}, {0, 2}, {1, 0}}, B: 5}
	nq, triv := q.Normalize()
	if triv != 0 {
		t.Fatalf("triv = %d", triv)
	}
	// 4x ≤ 5 → x ≤ 1 (floor).
	if len(nq.Terms) != 1 || nq.Terms[0].Coef != 1 || nq.B != 1 {
		t.Fatalf("normalized = %v", nq)
	}
	q = Ineq{Terms: []IVTerm{{0, 1}, {0, -1}}, B: -1}
	if _, triv := q.Normalize(); triv != -1 {
		t.Fatal("0 ≤ -1 should be trivially false")
	}
	q = Ineq{B: 3}
	if _, triv := q.Normalize(); triv != 1 {
		t.Fatal("0 ≤ 3 should be trivially true")
	}
}

func TestIneqNegated(t *testing.T) {
	q := Ineq{Terms: []IVTerm{{0, 1}}, B: 4} // x ≤ 4
	n := q.Negated()                         // x ≥ 5 i.e. -x ≤ -5
	for v := int64(-10); v <= 10; v++ {
		a := q.Eval([]int64{v})
		b := n.Eval([]int64{v})
		if a == b {
			t.Fatalf("negation overlap at %d", v)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {7, -2, -4}, {-7, -2, 3}, {6, 3, 2}, {-6, 3, -2},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Fatalf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestSATConflictBudget: a hard UNSAT instance under a one-conflict budget
// must come back unknown, and Solve must propagate that as StatusUnknown.
func TestSATConflictBudget(t *testing.T) {
	build := func(budget int) (*SAT, [][]Lit) {
		const P, H = 6, 5 // pigeonhole, hard enough to need many conflicts
		s := NewSAT(budget)
		v := make([][]int, P)
		for p := 0; p < P; p++ {
			v[p] = make([]int, H)
			for h := 0; h < H; h++ {
				v[p][h] = s.NewVar()
			}
		}
		var clauses [][]Lit
		for p := 0; p < P; p++ {
			lits := make([]Lit, H)
			for h := 0; h < H; h++ {
				lits[h] = MkLit(v[p][h], false)
			}
			clauses = append(clauses, lits)
		}
		for h := 0; h < H; h++ {
			for p1 := 0; p1 < P; p1++ {
				for p2 := p1 + 1; p2 < P; p2++ {
					clauses = append(clauses, []Lit{MkLit(v[p1][h], true), MkLit(v[p2][h], true)})
				}
			}
		}
		return s, clauses
	}
	s, clauses := build(1)
	ok := true
	for _, cl := range clauses {
		ok = ok && s.AddClause(cl...)
	}
	if ok && s.Solve() != SATUnknown {
		t.Fatal("one-conflict budget should exhaust on pigeonhole 6/5")
	}
	s2, clauses2 := build(0) // generous default
	ok = true
	for _, cl := range clauses2 {
		ok = ok && s2.AddClause(cl...)
	}
	if ok && s2.Solve() != SATUnsat {
		t.Fatal("pigeonhole 6/5 should be UNSAT with a real budget")
	}
}

// TestSolveUnknownPropagation: a SAT-level unknown surfaces as StatusUnknown.
func TestSolveUnknownPropagation(t *testing.T) {
	var p sym.Pool
	// A formula whose boolean skeleton needs real search: pairwise distinct
	// x1..x5 in a domain of size 4 (unsat) with a tiny conflict budget.
	vars := make([]*sym.Var, 5)
	parts := []sym.Expr{}
	bounds := map[int]Bound{}
	for i := range vars {
		vars[i] = p.NewVar("v")
		bounds[vars[i].ID] = Bound{Lo: 0, Hi: 3, HasLo: true, HasHi: true}
	}
	for i := range vars {
		for j := i + 1; j < len(vars); j++ {
			parts = append(parts, sym.Ne(sym.VarTerm(vars[i]), sym.VarTerm(vars[j])))
		}
	}
	f := sym.AndExpr(parts...)
	st, _ := Solve(f, Options{VarBounds: bounds, MaxTheoryRounds: 1})
	if st == smtStatusSatAlias() {
		t.Fatal("5 distinct values cannot fit in a 4-element domain")
	}
	// With full budgets the verdict is a definite unsat.
	st, _ = Solve(f, Options{VarBounds: bounds})
	if st != StatusUnsat {
		t.Fatalf("full-budget verdict = %v", st)
	}
}

func smtStatusSatAlias() Status { return StatusSat }
