package smt

import (
	"testing"

	"hotg/internal/sym"
)

// FuzzSolveConjunction decodes a byte string into a small linear-arithmetic
// formula over three bounded variables, solves it, and checks any model by
// evaluation; SAT/UNSAT verdicts are cross-checked against brute force over
// the domain. This drives the whole pipeline — CNF, CDCL, simplex, B&B —
// from arbitrary inputs.
func FuzzSolveConjunction(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x10})
	f.Add([]byte{0xff, 0x00, 0x13, 0x27, 0x99})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 24 {
			return
		}
		var p sym.Pool
		vars := []*sym.Var{p.NewVar("a"), p.NewVar("b"), p.NewVar("c")}
		const lo, hi = -3, 3
		bounds := map[int]Bound{}
		for _, v := range vars {
			bounds[v.ID] = Bound{Lo: lo, Hi: hi, HasLo: true, HasHi: true}
		}

		// Decode: every 3 bytes become one atomic constraint
		// c1·a + c2·b ⋈ k, chained with ∧ / ∨ by the byte's low bits.
		var formula sym.Expr = sym.True
		for i := 0; i+2 < len(data); i += 3 {
			c1 := int64(int8(data[i])) % 3
			c2 := int64(int8(data[i+1])) % 3
			k := int64(int8(data[i+2])) % 5
			s := sym.AddSum(sym.ScaleSum(c1, sym.VarTerm(vars[0])), sym.ScaleSum(c2, sym.VarTerm(vars[1])))
			s = sym.AddSum(s, sym.VarTerm(vars[2]))
			var atom sym.Expr
			switch data[i] & 3 {
			case 0:
				atom = sym.Eq(s, sym.Int(k))
			case 1:
				atom = sym.Ne(s, sym.Int(k))
			case 2:
				atom = sym.Le(s, sym.Int(k))
			default:
				atom = sym.Gt(s, sym.Int(k))
			}
			if data[i+1]&1 == 0 {
				formula = sym.AndExpr(formula, atom)
			} else {
				formula = sym.OrExpr(formula, atom)
			}
		}

		st, m := Solve(formula, Options{VarBounds: bounds})
		if st == StatusUnknown {
			return
		}

		bruteSat := false
		for a := int64(lo); a <= hi && !bruteSat; a++ {
			for b := int64(lo); b <= hi && !bruteSat; b++ {
				for c := int64(lo); c <= hi; c++ {
					env := sym.Env{Vars: map[int]int64{vars[0].ID: a, vars[1].ID: b, vars[2].ID: c}}
					ok, err := sym.EvalBool(formula, env)
					if err != nil {
						t.Fatal(err)
					}
					if ok {
						bruteSat = true
						break
					}
				}
			}
		}
		if bruteSat != (st == StatusSat) {
			t.Fatalf("solver %v but brute force says sat=%v for %v", st, bruteSat, formula)
		}
		if st == StatusSat {
			ok, err := CheckModel(formula, m, nil)
			if err != nil || !ok {
				t.Fatalf("bad model %v for %v (err %v)", m, formula, err)
			}
		}
	})
}
