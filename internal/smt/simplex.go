package smt

import (
	"math/big"
)

// simplex is a general simplex solver in the style of Dutertre & de Moura
// ("A Fast Linear-Arithmetic Solver for DPLL(T)", CAV 2006): every constraint
// Σcᵢxᵢ ≤ b is turned into a slack variable s := Σcᵢxᵢ with an upper bound b,
// so the solver only manipulates variable bounds plus a tableau expressing
// each basic variable as a linear combination of nonbasic ones. Feasibility
// search uses Bland's rule (smallest index first), which guarantees
// termination. All arithmetic is exact over big.Rat.
type simplex struct {
	n       int                // number of variables (problem + slack)
	lower   []*big.Rat         // nil = -∞
	upper   []*big.Rat         // nil = +∞
	val     []*big.Rat         // current assignment β
	rowOf   []int              // var → row index, or -1 if nonbasic
	basicOf []int              // row → var
	rows    []map[int]*big.Rat // row → {nonbasic var → coefficient}
	// conflict holds the variables of the failing row after check() returns
	// false: the violated basic variable plus every nonbasic in its row. Each
	// of those is pinned at the bound that blocked the pivot (otherwise a
	// pivot would have been possible), so their bounds form an infeasibility
	// explanation in the sense of Dutertre & de Moura §4.
	conflict []int
}

func newSimplex(n int) *simplex {
	s := &simplex{
		n:     n,
		lower: make([]*big.Rat, n),
		upper: make([]*big.Rat, n),
		val:   make([]*big.Rat, n),
		rowOf: make([]int, n),
	}
	for i := 0; i < n; i++ {
		s.val[i] = new(big.Rat)
		s.rowOf[i] = -1
	}
	return s
}

// addVar appends a fresh variable and returns its index.
func (s *simplex) addVar() int {
	i := s.n
	s.n++
	s.lower = append(s.lower, nil)
	s.upper = append(s.upper, nil)
	s.val = append(s.val, new(big.Rat))
	s.rowOf = append(s.rowOf, -1)
	return i
}

// defineSlack introduces a basic variable y := Σ combo[x]·x over currently
// nonbasic or basic variables, substituting any basic variables by their rows
// so the tableau invariant (rows mention only nonbasic variables) holds.
func (s *simplex) defineSlack(combo map[int]*big.Rat) int {
	y := s.addVar()
	row := make(map[int]*big.Rat)
	add := func(x int, c *big.Rat) {
		if cur, ok := row[x]; ok {
			cur.Add(cur, c)
			if cur.Sign() == 0 {
				delete(row, x)
			}
		} else if c.Sign() != 0 {
			row[x] = new(big.Rat).Set(c)
		}
	}
	for x, c := range combo {
		if r := s.rowOf[x]; r >= 0 {
			for z, cz := range s.rows[r] {
				t := new(big.Rat).Mul(c, cz)
				add(z, t)
			}
		} else {
			add(x, c)
		}
	}
	s.rowOf[y] = len(s.rows)
	s.basicOf = append(s.basicOf, y)
	s.rows = append(s.rows, row)
	// β(y) = Σ row · β
	v := new(big.Rat)
	for x, c := range row {
		v.Add(v, new(big.Rat).Mul(c, s.val[x]))
	}
	s.val[y] = v
	return y
}

// assertUpper tightens the upper bound of x to at most b.
// It returns false on an immediate bound clash (lower > upper).
func (s *simplex) assertUpper(x int, b *big.Rat) bool {
	if s.upper[x] != nil && s.upper[x].Cmp(b) <= 0 {
		return true
	}
	if s.lower[x] != nil && s.lower[x].Cmp(b) > 0 {
		return false
	}
	s.upper[x] = new(big.Rat).Set(b)
	if s.rowOf[x] == -1 && s.val[x].Cmp(b) > 0 {
		s.update(x, b)
	}
	return true
}

// assertLower tightens the lower bound of x to at least b.
func (s *simplex) assertLower(x int, b *big.Rat) bool {
	if s.lower[x] != nil && s.lower[x].Cmp(b) >= 0 {
		return true
	}
	if s.upper[x] != nil && s.upper[x].Cmp(b) < 0 {
		return false
	}
	s.lower[x] = new(big.Rat).Set(b)
	if s.rowOf[x] == -1 && s.val[x].Cmp(b) < 0 {
		s.update(x, b)
	}
	return true
}

// update sets the nonbasic variable x to v and adjusts all dependent basics.
func (s *simplex) update(x int, v *big.Rat) {
	delta := new(big.Rat).Sub(v, s.val[x])
	for r, row := range s.rows {
		if c, ok := row[x]; ok {
			y := s.basicOf[r]
			s.val[y].Add(s.val[y], new(big.Rat).Mul(c, delta))
		}
	}
	s.val[x] = new(big.Rat).Set(v)
}

// pivotAndUpdate makes basic xi take value v by moving nonbasic xj, then
// swaps their roles.
func (s *simplex) pivotAndUpdate(xi, xj int, v *big.Rat) {
	r := s.rowOf[xi]
	aij := s.rows[r][xj]
	theta := new(big.Rat).Sub(v, s.val[xi])
	theta.Quo(theta, aij)
	s.val[xi] = new(big.Rat).Set(v)
	s.val[xj] = new(big.Rat).Add(s.val[xj], theta)
	for r2, row := range s.rows {
		if r2 == r {
			continue
		}
		if c, ok := row[xj]; ok {
			y := s.basicOf[r2]
			s.val[y].Add(s.val[y], new(big.Rat).Mul(c, theta))
		}
	}
	s.pivot(xi, xj)
}

// pivot exchanges basic xi with nonbasic xj.
func (s *simplex) pivot(xi, xj int) {
	r := s.rowOf[xi]
	row := s.rows[r]
	aij := row[xj]
	// Solve row (xi = Σ a·x) for xj: xj = xi/aij − Σ_{k≠j} (a_k/aij)·x_k.
	newRow := make(map[int]*big.Rat, len(row))
	inv := new(big.Rat).Inv(aij)
	newRow[xi] = inv
	for k, c := range row {
		if k == xj {
			continue
		}
		t := new(big.Rat).Mul(c, inv)
		t.Neg(t)
		newRow[k] = t
	}
	s.rows[r] = newRow
	s.basicOf[r] = xj
	s.rowOf[xj] = r
	s.rowOf[xi] = -1
	// Substitute xj in all other rows.
	for r2 := range s.rows {
		if r2 == r {
			continue
		}
		row2 := s.rows[r2]
		c, ok := row2[xj]
		if !ok {
			continue
		}
		delete(row2, xj)
		for k, ck := range newRow {
			t := new(big.Rat).Mul(c, ck)
			if cur, ok := row2[k]; ok {
				cur.Add(cur, t)
				if cur.Sign() == 0 {
					delete(row2, k)
				}
			} else if t.Sign() != 0 {
				row2[k] = t
			}
		}
	}
}

// check restores feasibility, returning true if a feasible assignment exists
// under the current bounds.
func (s *simplex) check() bool {
	for {
		// Bland's rule: smallest violating basic variable.
		xi, belowLower := -1, false
		for _, y := range s.basicOf {
			if s.lower[y] != nil && s.val[y].Cmp(s.lower[y]) < 0 {
				if xi == -1 || y < xi {
					xi, belowLower = y, true
				}
			} else if s.upper[y] != nil && s.val[y].Cmp(s.upper[y]) > 0 {
				if xi == -1 || y < xi {
					xi, belowLower = y, false
				}
			}
		}
		if xi == -1 {
			return true
		}
		row := s.rows[s.rowOf[xi]]
		xj := -1
		for x, c := range row {
			var ok bool
			if belowLower {
				// Need to increase xi.
				ok = (c.Sign() > 0 && (s.upper[x] == nil || s.val[x].Cmp(s.upper[x]) < 0)) ||
					(c.Sign() < 0 && (s.lower[x] == nil || s.val[x].Cmp(s.lower[x]) > 0))
			} else {
				// Need to decrease xi.
				ok = (c.Sign() < 0 && (s.upper[x] == nil || s.val[x].Cmp(s.upper[x]) < 0)) ||
					(c.Sign() > 0 && (s.lower[x] == nil || s.val[x].Cmp(s.lower[x]) > 0))
			}
			if ok && (xj == -1 || x < xj) {
				xj = x
			}
		}
		if xj == -1 {
			s.conflict = s.conflict[:0]
			s.conflict = append(s.conflict, xi)
			for x := range row {
				s.conflict = append(s.conflict, x)
			}
			return false
		}
		if belowLower {
			s.pivotAndUpdate(xi, xj, s.lower[xi])
		} else {
			s.pivotAndUpdate(xi, xj, s.upper[xi])
		}
	}
}
