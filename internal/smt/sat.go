// Package smt implements a small Satisfiability-Modulo-Theories solver for
// quantifier-free linear integer arithmetic with uninterpreted functions
// (QF_UFLIA), the theory T ∪ T_EUF used by higher-order test generation.
//
// Architecture (offline lazy SMT):
//
//   - uninterpreted function applications are removed up front by Ackermann's
//     reduction (ackermann.go);
//   - equalities and disequalities are rewritten to conjunctions/disjunctions
//     of weak inequalities Σ cᵢxᵢ ≤ b, the only theory atoms (cnf.go);
//   - the boolean skeleton is Tseitin-encoded and handed to a CDCL SAT solver
//     (this file);
//   - each complete propositional model is checked for arithmetic consistency
//     by a rational simplex with branch-and-bound for integrality (simplex.go,
//     lia.go); inconsistent models yield learned blocking clauses built from a
//     greedily minimized unsatisfiable core (solver.go).
//
// The solver is deliberately simple — path constraints produced by concolic
// execution are small, conjunction-heavy formulas — but it is a complete
// decision procedure on the bounded integer domains used throughout this
// repository.
package smt

// Lit is a propositional literal: variable v with polarity encoded as
// v<<1 (positive) or v<<1|1 (negative). Variables are numbered from 0.
type Lit int

// MkLit builds a literal for variable v; neg selects the negative polarity.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negative.
func (l Lit) Neg() bool { return l&1 == 1 }

// Flip returns the literal with the opposite polarity.
func (l Lit) Flip() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) flip() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	}
	return lUndef
}

type clause struct {
	lits    []Lit
	learned bool
	theory  bool // theory lemma (globally valid); survives PopTo when its vars do
	act     float64
}

// SAT is a CDCL propositional solver with two-watched-literal propagation,
// first-UIP conflict learning, VSIDS-style branching, and geometric restarts.
// The zero value is an empty solver ready for NewVar/AddClause.
type SAT struct {
	clauses  []*clause
	watches  [][]*clause // literal → watching clauses
	assign   []lbool     // variable → value
	level    []int       // variable → decision level
	reason   []*clause   // variable → antecedent clause
	trail    []Lit
	trailLim []int // decision-level boundaries in trail
	qhead    int

	activity []float64
	varInc   float64
	order    []int // lazily re-sorted variable order heap (simple)

	// phase holds the last value each variable was assigned before a
	// backtrack; consulted by branching only when savePhase is set, so the
	// one-shot solve path keeps its historical false-first polarity.
	phase     []lbool
	savePhase bool

	nConflicts   int
	maxConflicts int

	// stop, when non-nil, is polled on every conflict and every decision;
	// when it reports true the search abandons work with SATUnknown. It is
	// how wall-clock deadlines and context cancellation reach the inner
	// CDCL loop (see SetStop).
	stop func() bool

	unsat bool
}

// NewSAT returns an empty SAT solver with the given conflict budget
// (0 means a generous default).
func NewSAT(maxConflicts int) *SAT {
	if maxConflicts <= 0 {
		maxConflicts = 1 << 20
	}
	return &SAT{varInc: 1.0, maxConflicts: maxConflicts}
}

// NewVar introduces a fresh propositional variable and returns its index.
func (s *SAT) NewVar() int {
	v := len(s.assign)
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, -1)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, lUndef)
	s.watches = append(s.watches, nil, nil)
	s.order = append(s.order, v)
	return v
}

// SavePhase toggles phase saving: with it on, branching reuses the last value
// a variable held before a backtrack instead of always trying false first.
// Incremental sessions enable it so sibling checks start from the previous
// check's polarity; the one-shot path leaves it off.
func (s *SAT) SavePhase(on bool) { s.savePhase = on }

// NumVars returns the number of propositional variables.
func (s *SAT) NumVars() int { return len(s.assign) }

// NumClauses returns how many clauses (original and learned) the solver
// currently holds; used by the observability layer as the CNF-size metric.
func (s *SAT) NumClauses() int { return len(s.clauses) }

func (s *SAT) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if l.Neg() {
		return v.flip()
	}
	return v
}

// AddClause installs a clause. It returns false if the clause makes the
// formula trivially unsatisfiable. Must be called at decision level 0.
func (s *SAT) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	// Simplify: drop false literals, detect satisfied/duplicate.
	seen := make(map[Lit]bool, len(lits))
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue
		}
		if seen[l] {
			continue
		}
		if seen[l.Flip()] {
			return true // tautology
		}
		seen[l] = true
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.enqueue(out[0], nil)
		if s.propagate() != nil {
			s.unsat = true
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *SAT) watch(c *clause) {
	s.watches[c.lits[0].Flip()] = append(s.watches[c.lits[0].Flip()], c)
	s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], c)
}

func (s *SAT) enqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *SAT) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; it returns a conflicting clause or nil.
func (s *SAT) propagate() *clause {
	for s.qhead < len(s.trail) {
		l := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[l]
		s.watches[l] = ws[:0:0] // will re-add survivors
		kept := s.watches[l]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure the false literal is at position 1.
			if c.lits[0] == l.Flip() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Look for a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, c)
			if s.value(c.lits[0]) == lFalse {
				// Conflict: re-add remaining watchers and report.
				kept = append(kept, ws[i+1:]...)
				s.watches[l] = kept
				s.qhead = len(s.trail)
				return c
			}
			s.enqueue(c.lits[0], c)
		}
		s.watches[l] = kept
	}
	return nil
}

func (s *SAT) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze performs first-UIP conflict analysis. It returns the learned clause
// (asserting literal first) and the backjump level.
func (s *SAT) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // placeholder for the asserting literal
	seen := make([]bool, len(s.assign))
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	c := confl
	for {
		for _, q := range c.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !seen[v] && s.level[v] > 0 {
				seen[v] = true
				s.bumpVar(v)
				if s.level[v] == s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find the next trail literal to resolve on.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		c = s.reason[p.Var()]
	}
	learnt[0] = p.Flip()

	// Backjump level = max level among the other literals.
	back := 0
	for i := 1; i < len(learnt); i++ {
		if lv := s.level[learnt[i].Var()]; lv > back {
			back = lv
		}
	}
	// Move one literal of the backjump level to position 1 (watch invariant).
	for i := 1; i < len(learnt); i++ {
		if s.level[learnt[i].Var()] == back {
			learnt[1], learnt[i] = learnt[i], learnt[1]
			break
		}
	}
	return learnt, back
}

func (s *SAT) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var()
		if s.savePhase {
			s.phase[v] = s.assign[v]
		}
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.level[v] = -1
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *SAT) pickBranchVar() int {
	best, bestAct := -1, -1.0
	for v := 0; v < len(s.assign); v++ {
		if s.assign[v] == lUndef && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// SATResult is the outcome of a propositional search.
type SATResult int

const (
	// SATUnknown means the conflict budget was exhausted.
	SATUnknown SATResult = iota
	// SATSat means a satisfying assignment was found.
	SATSat
	// SATUnsat means the formula is unsatisfiable.
	SATUnsat
)

// SetStop installs a cooperative cancellation probe, polled on every conflict
// and every decision. When it reports true, Solve returns SATUnknown at the
// next poll; the caller decides whether that is a timeout or a budget stop.
func (s *SAT) SetStop(stop func() bool) { s.stop = stop }

// Solve runs the CDCL search. On SATSat the model is available via Value.
func (s *SAT) Solve() SATResult {
	if s.unsat {
		return SATUnsat
	}
	if c := s.propagate(); c != nil {
		s.unsat = true
		return SATUnsat
	}
	for {
		confl := s.propagate()
		if confl != nil {
			s.nConflicts++
			if s.nConflicts > s.maxConflicts {
				return SATUnknown
			}
			if s.stop != nil && s.stop() {
				return SATUnknown
			}
			if s.decisionLevel() == 0 {
				s.unsat = true
				return SATUnsat
			}
			learnt, back := s.analyze(confl)
			s.cancelUntil(back)
			if len(learnt) == 1 {
				s.enqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learned: true}
				s.clauses = append(s.clauses, c)
				s.watch(c)
				s.enqueue(learnt[0], c)
			}
			s.varInc /= 0.95
			continue
		}
		if s.stop != nil && s.stop() {
			return SATUnknown
		}
		v := s.pickBranchVar()
		if v == -1 {
			return SATSat
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		neg := true // branch false first: biases toward sparse models
		if s.savePhase && s.phase[v] == lTrue {
			neg = false
		}
		s.enqueue(MkLit(v, neg), nil)
	}
}

// Value returns the model value of variable v after a SATSat result.
func (s *SAT) Value(v int) bool { return s.assign[v] == lTrue }

// Reset clears the search state but keeps accumulated knowledge. Its exact
// post-Reset contract, which incremental sessions and the lazy theory loop
// both depend on (see TestSATResetContract):
//
//   - all clauses survive, original and learned alike;
//   - the trail is unwound to decision level 0: level-0 units (facts) keep
//     their assignments, every other variable returns to unassigned;
//   - VSIDS activity scores and the activity increment survive, so branching
//     order in the next Solve reflects conflicts seen in earlier ones;
//   - saved phases survive (when SavePhase is on) and are refreshed by the
//     unwind itself, so the next Solve re-tries the last polarities;
//   - the conflict counter is NOT reset: the conflict budget spans every
//     Solve since construction (or since ResetSearch, which does reset it);
//   - an unsat verdict is permanent: once the solver derived level-0 unsat,
//     Reset does not clear it (only PopTo can, by removing the clauses that
//     caused it).
func (s *SAT) Reset() {
	s.cancelUntil(0)
}

// ResetSearch is Reset plus a fresh conflict budget. Incremental sessions use
// it between Checks so each check gets the full budget, matching what a fresh
// solver would have been given.
func (s *SAT) ResetSearch() {
	s.cancelUntil(0)
	s.nConflicts = 0
}

// SATMark is a snapshot of solver extent, taken at decision level 0, that
// PopTo can later restore. Everything allocated or asserted after the mark is
// removed on pop, with one exception: theory lemmas (AddTheoryLemma) whose
// variables all predate the mark are retained, because they are consequences
// of the theory alone and remain valid in any assertion context.
type SATMark struct {
	NumVars    int
	NumClauses int
	TrailLen   int
	Unsat      bool
}

// Mark snapshots the current solver extent. Must be taken at decision level 0
// (callers unwind with Reset first).
func (s *SAT) Mark() SATMark {
	if s.decisionLevel() != 0 {
		panic("smt: SAT.Mark at non-zero decision level")
	}
	return SATMark{
		NumVars:    len(s.assign),
		NumClauses: len(s.clauses),
		TrailLen:   len(s.trail),
		Unsat:      s.unsat,
	}
}

// PopTo unwinds the solver to a previous Mark: clauses, variables and level-0
// facts added since the mark are dropped; theory lemmas over still-live
// variables are kept (their count is returned). CDCL-learned clauses past the
// mark are dropped too — they may depend on popped clauses or on level-0
// facts that no longer hold. Watches are rebuilt and the propagation queue is
// rewound so the next Solve re-propagates the surviving trail.
func (s *SAT) PopTo(m SATMark) (retained int) {
	s.cancelUntil(0)
	// Filter clauses in place: originals up to the mark stay, and theory
	// lemmas added later stay when every literal predates the mark.
	kept := s.clauses[:m.NumClauses]
	for _, c := range s.clauses[m.NumClauses:] {
		if !c.theory {
			continue
		}
		live := true
		for _, l := range c.lits {
			if l.Var() >= m.NumVars {
				live = false
				break
			}
		}
		if live {
			kept = append(kept, c)
			retained++
		}
	}
	for i := len(kept); i < len(s.clauses); i++ {
		s.clauses[i] = nil
	}
	s.clauses = kept
	// Unassign level-0 facts recorded after the mark.
	for i := len(s.trail) - 1; i >= m.TrailLen; i-- {
		v := s.trail[i].Var()
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.level[v] = -1
	}
	s.trail = s.trail[:m.TrailLen]
	// Drop variables allocated after the mark.
	s.assign = s.assign[:m.NumVars]
	s.level = s.level[:m.NumVars]
	s.reason = s.reason[:m.NumVars]
	s.activity = s.activity[:m.NumVars]
	s.phase = s.phase[:m.NumVars]
	s.order = s.order[:m.NumVars]
	s.watches = s.watches[:2*m.NumVars]
	for i := range s.watches {
		s.watches[i] = nil
	}
	s.unsat = m.Unsat
	// Rebuild watches from scratch and replay propagation from the start of
	// the trail so the two-watch invariant is restored for every clause.
	s.qhead = 0
	for _, c := range s.clauses {
		s.rewatch(c)
	}
	return retained
}

// rewatch re-registers a clause after PopTo, selecting non-false watches so
// the two-watched-literal invariant holds under the surviving level-0 facts.
func (s *SAT) rewatch(c *clause) {
	w := 0
	for i := 0; i < len(c.lits) && w < 2; i++ {
		if s.value(c.lits[i]) != lFalse {
			c.lits[w], c.lits[i] = c.lits[i], c.lits[w]
			w++
		}
	}
	if len(c.lits) == 1 {
		switch s.value(c.lits[0]) {
		case lUndef:
			s.enqueue(c.lits[0], nil)
		case lFalse:
			s.unsat = true
		}
		return
	}
	switch w {
	case 0:
		s.unsat = true
		s.watch(c)
	case 1:
		// Exactly one non-false literal (now at position 0): either the
		// clause is already satisfied by a level-0 fact, or that literal is
		// forced. A false co-watch is harmless in both cases — level-0 facts
		// only change via PopTo, which rebuilds watches again.
		s.watch(c)
		if s.value(c.lits[0]) == lUndef {
			s.enqueue(c.lits[0], c)
		}
	default:
		s.watch(c)
	}
}

// AddTheoryLemma installs a clause that is valid in the theory itself (e.g. a
// blocking clause derived from an arithmetic conflict core), tagging it so
// PopTo may retain it across frames. Unlike AddClause it performs no
// simplification against the current level-0 facts: a lemma simplified
// against a fact would become unsound the moment that fact is popped. Must be
// called at decision level 0. Returns false when the lemma is empty or
// immediately contradicts the surviving facts.
func (s *SAT) AddTheoryLemma(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	seen := make(map[Lit]bool, len(lits))
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if seen[l] {
			continue
		}
		if seen[l.Flip()] {
			return true // tautology: valid, nothing to record
		}
		seen[l] = true
		out = append(out, l)
	}
	if len(out) == 0 {
		s.unsat = true
		return false
	}
	c := &clause{lits: out, theory: true}
	s.clauses = append(s.clauses, c)
	s.rewatch(c)
	if s.unsat {
		return false
	}
	if s.propagate() != nil {
		s.unsat = true
		return false
	}
	return true
}
