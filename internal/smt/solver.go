package smt

import (
	"context"
	"fmt"
	"sort"
	"time"

	"hotg/internal/faults"
	"hotg/internal/obs"
	"hotg/internal/sym"
)

// DefaultDomain bounds every integer variable to [-DefaultDomain, DefaultDomain]
// unless the caller supplies tighter bounds. Bounding the domain makes the
// branch-and-bound integer search a decision procedure; all workloads in this
// repository live comfortably inside it.
const DefaultDomain = int64(1) << 31

// Options configures a Solve call.
type Options struct {
	// Pool supplies fresh variables for Ackermann's reduction. Required
	// only when the formula contains uninterpreted applications.
	Pool *sym.Pool
	// VarBounds gives per-variable domains, keyed by sym Var ID.
	VarBounds map[int]Bound
	// MaxConflicts caps the SAT search (0 = default).
	MaxConflicts int
	// MaxNodes caps branch-and-bound nodes per theory check (0 = default).
	MaxNodes int
	// MaxTheoryRounds caps lazy SAT↔theory iterations (0 = default 200).
	MaxTheoryRounds int
	// Obs, when non-nil, collects solver metrics: per-theory solve latency
	// (smt.sat.ns, smt.lia.ns, smt.euf.ns), CNF size, Ackermann expansion
	// counts, and verdict counters. Never affects solver results.
	Obs *obs.Obs
	// Ctx, when non-nil, cancels the solve cooperatively: the SAT loop and
	// the branch-and-bound search poll it and unwind with StatusTimeout.
	Ctx context.Context
	// Deadline, when non-zero, is an absolute wall-clock cutoff for this
	// call; past it the solve unwinds with StatusTimeout. Combined with Ctx
	// when both are set (whichever fires first wins).
	Deadline time.Time
}

// stopProbe builds the cooperative cancellation probe for one solve call, or
// nil when neither a deadline nor a context is configured. The probe latches:
// once it fires it stays fired, so a deep unwind never re-checks the clock.
func (o Options) stopProbe() func() bool {
	if o.Ctx == nil && o.Deadline.IsZero() {
		return nil
	}
	fired := false
	return func() bool {
		if fired {
			return true
		}
		if !o.Deadline.IsZero() && !time.Now().Before(o.Deadline) {
			fired = true
		} else if o.Ctx != nil && o.Ctx.Err() != nil {
			fired = true
		}
		return fired
	}
}

// Model is a satisfying assignment: concrete values for the input variables
// and, when the formula contained uninterpreted applications, witness values
// for each application (keyed by the application's canonical key). Witness
// values show *one* interpretation under which the formula holds — they are
// exactly the "invented function" of Section 4.2 of the paper, which is why
// satisfiability alone is unusable for higher-order test generation.
type Model struct {
	Vars  map[int]int64
	Funcs map[string]int64
	// FuncRows are the witness interpretations in concrete decision-table
	// form: one row per application, with the argument terms *evaluated*
	// under the model (nested applications resolved through their stand-in
	// values). This is the form higher-order test generation reads the
	// invented function off — Funcs keys embed Ackermann stand-in variable
	// IDs for nested applications and cannot be matched against source-level
	// application keys. Rows are sorted by (Fn, Args) for determinism.
	FuncRows []FuncRow
}

// FuncRow is one concrete sample of a model's witness interpretation:
// Fn(Args) = Out under the satisfying assignment.
type FuncRow struct {
	Fn   string
	Args []int64
	Out  int64
}

// Solve decides satisfiability of the quantifier-free formula f over
// T ∪ T_EUF and returns a model when satisfiable. When Options.Obs is set the
// call is accounted in the metrics registry (smt.solve.* and the per-theory
// latency histograms); a nil Obs adds a single branch of overhead.
func Solve(f sym.Expr, opts Options) (Status, *Model) {
	if faults.Active().FireSolveTimeout() {
		return StatusTimeout, nil
	}
	o := opts.Obs
	if !o.Enabled() {
		return solve(f, opts)
	}
	t0 := time.Now()
	st, m := solve(f, opts)
	o.Histogram("smt.solve.ns").Observe(int64(time.Since(t0)))
	o.Counter("smt.solve.calls").Inc()
	o.Counter("smt.solve." + st.String()).Inc()
	return st, m
}

func solve(f sym.Expr, opts Options) (Status, *Model) {
	return solveWith(f, opts, nil)
}

// solveWith is the solve engine shared by the one-shot path (ack == nil) and
// incremental sessions in exact mode (ack carries the session's Ackermann
// expansion cache). Apart from where stand-in variables come from, the two
// paths execute identically.
func solveWith(f sym.Expr, opts Options, ack *ackState) (Status, *Model) {
	o := opts.Obs
	// Fast path: purely equational conjunctions are decided by congruence
	// closure directly (euf.go). Only the unsat verdict short-circuits —
	// satisfiable formulas continue to the full pipeline, which constructs
	// the model; this also keeps the two decision procedures cross-checking
	// each other in the property tests.
	if o.Enabled() {
		t0 := time.Now()
		st, ok := SolveEUF(f)
		o.Histogram("smt.euf.ns").Observe(int64(time.Since(t0)))
		if ok && st == StatusUnsat {
			o.Counter("smt.euf.fastpath_unsat").Inc()
			return StatusUnsat, nil
		}
	} else if st, ok := SolveEUF(f); ok && st == StatusUnsat {
		return StatusUnsat, nil
	}

	funcs := map[string]int64{}
	appVars := map[string]*sym.Var{}
	apps := map[string]*sym.Apply{}
	// The pre-reduction variable set: Ackermann's reduction can erase a
	// variable that occurs only inside an application's arguments (f(x)==1
	// becomes v_f==1), but the model must still assign it — the witness rows
	// evaluate those arguments, and a test built from the model pairs the
	// variable's value with the invented function's table.
	origVars := sym.Vars(f)
	if sym.HasApply(f) {
		if ack != nil {
			reduced, cur := ack.reduce(f)
			if o.Enabled() {
				o.Counter("smt.ackermann.apps").Add(int64(len(cur)))
			}
			f = reduced
			appVars = cur
			for k := range cur {
				apps[k] = ack.apps[k]
			}
		} else {
			if opts.Pool == nil {
				panic("smt: formula contains uninterpreted applications but Options.Pool is nil")
			}
			ar := Ackermannize(f, opts.Pool)
			if o.Enabled() {
				o.Counter("smt.ackermann.apps").Add(int64(len(ar.AppVars)))
				o.Counter("smt.ackermann.consistency").Add(int64(len(sym.Conjuncts(ar.Consistency))))
			}
			f = sym.AndExpr(ar.Formula, ar.Consistency)
			appVars = ar.AppVars
			apps = ar.Apps
		}
	}

	maxRounds := opts.MaxTheoryRounds
	if maxRounds <= 0 {
		maxRounds = 200
	}
	stop := opts.stopProbe()

	sat := NewSAT(opts.MaxConflicts)
	sat.SetStop(stop)
	comp := newCompiler(sat)
	top := comp.compile(f)
	if !sat.AddClause(top) {
		return StatusUnsat, nil
	}
	if o.Enabled() {
		o.Histogram("smt.cnf.clauses").Observe(int64(sat.NumClauses()))
		o.Histogram("smt.cnf.vars").Observe(int64(sat.NumVars()))
	}

	// Make sure every free variable of f has a dense index so it receives a
	// model value even if it occurs in no surviving atom, including variables
	// the Ackermann rewrite left only inside recorded application arguments.
	for _, v := range sym.Vars(f) {
		comp.denseVar(v)
	}
	for _, v := range origVars {
		comp.denseVar(v)
	}

	nvars := len(comp.varList)
	bounds := make([]Bound, nvars)
	for i, v := range comp.varList {
		if b, ok := opts.VarBounds[v.ID]; ok {
			bounds[i] = clampBound(b)
		} else {
			bounds[i] = Bound{Lo: -DefaultDomain, Hi: DefaultDomain, HasLo: true, HasHi: true}
		}
	}

	for round := 0; round < maxRounds; round++ {
		var tSAT time.Time
		if o.Enabled() {
			tSAT = time.Now()
		}
		satRes := sat.Solve()
		if o.Enabled() {
			o.Histogram("smt.sat.ns").Observe(int64(time.Since(tSAT)))
		}
		switch satRes {
		case SATUnsat:
			return StatusUnsat, nil
		case SATUnknown:
			if stop != nil && stop() {
				return StatusTimeout, nil
			}
			return StatusUnknown, nil
		}
		ineqs, lits := comp.assertedIneqs()
		var tLIA time.Time
		if o.Enabled() {
			tLIA = time.Now()
		}
		model, st := solveLIA(nvars, ineqs, bounds, opts.MaxNodes, stop)
		if o.Enabled() {
			o.Histogram("smt.lia.ns").Observe(int64(time.Since(tLIA)))
		}
		switch st {
		case StatusSat:
			m := &Model{Vars: make(map[int]int64, nvars), Funcs: funcs}
			for i, v := range comp.varList {
				m.Vars[v.ID] = model[i]
			}
			for key, av := range appVars {
				if val, ok := m.Vars[av.ID]; ok {
					m.Funcs[key] = val
				}
			}
			// Concrete witness rows: the recorded applications are apply-free
			// (nested applications already replaced by stand-ins), so each
			// argument evaluates directly under the full assignment — which
			// still includes the stand-in values at this point.
			for key, a := range apps {
				out, ok := m.Funcs[key]
				if !ok || a == nil {
					continue
				}
				args := make([]int64, len(a.Args))
				for i, arg := range a.Args {
					args[i] = evalSumUnder(arg, m.Vars)
				}
				m.FuncRows = append(m.FuncRows, FuncRow{Fn: a.Fn.Name, Args: args, Out: out})
			}
			sort.Slice(m.FuncRows, func(i, j int) bool {
				a, b := m.FuncRows[i], m.FuncRows[j]
				if a.Fn != b.Fn {
					return a.Fn < b.Fn
				}
				for k := range a.Args {
					if k >= len(b.Args) {
						return false
					}
					if a.Args[k] != b.Args[k] {
						return a.Args[k] < b.Args[k]
					}
				}
				return len(a.Args) < len(b.Args)
			})
			for _, av := range appVars {
				delete(m.Vars, av.ID)
			}
			return StatusSat, m
		case StatusUnknown, StatusTimeout:
			return st, nil
		}
		// Theory conflict: shrink to a small core and block it.
		o.Counter("smt.theory_conflicts").Inc()
		core := minimizeCore(nvars, ineqs, bounds, opts.MaxNodes)
		if stop != nil && stop() {
			return StatusTimeout, nil
		}
		block := make([]Lit, 0, len(core))
		for _, idx := range core {
			block = append(block, lits[idx].Flip())
		}
		sat.Reset()
		if !sat.AddClause(block...) {
			return StatusUnsat, nil
		}
	}
	return StatusUnknown, nil
}

// evalSumUnder evaluates an apply-free linear term under a variable
// assignment (unassigned variables count as 0).
func evalSumUnder(s *sym.Sum, vars map[int]int64) int64 {
	v := s.Const
	for _, t := range s.Terms {
		if a, ok := t.Atom.(*sym.Var); ok {
			v += t.Coef * vars[a.ID]
		}
	}
	return v
}

func clampBound(b Bound) Bound {
	if !b.HasLo {
		b.Lo, b.HasLo = -DefaultDomain, true
	}
	if !b.HasHi {
		b.Hi, b.HasHi = DefaultDomain, true
	}
	return b
}

// minimizeCore shrinks an infeasible inequality set to an irreducible core,
// returning indices into ineqs. It first seeds the core from the simplex's own
// infeasibility certificate — the bounds pinning the failing row — which
// typically narrows dozens of asserted inequalities to a handful before the
// greedy deletion pass runs, so the O(core) verification solves operate on
// tiny subsets instead of the full assertment.
func minimizeCore(nvars int, ineqs []Ineq, bounds []Bound, maxNodes int) []int {
	active := conflictSeed(nvars, ineqs, bounds, maxNodes)
	if active == nil {
		active = make([]int, len(ineqs))
		for i := range active {
			active[i] = i
		}
	}
	for i := 0; i < len(active); {
		trial := make([]Ineq, 0, len(active)-1)
		for j, idx := range active {
			if j == i {
				continue
			}
			trial = append(trial, ineqs[idx])
		}
		if _, st := SolveLIA(nvars, trial, bounds, maxNodes); st == StatusUnsat {
			active = append(active[:i], active[i+1:]...)
		} else {
			i++
		}
	}
	return active
}

// conflictSeed re-runs the infeasible solve with certificate collection and
// returns a sorted, *verified-unsat* subset of ineq indices, or nil when no
// narrowing was achieved (budget exhaustion, or the certificate spans the
// whole set). The verification solve is cheap insurance: the greedy pass in
// minimizeCore assumes its starting set is unsatisfiable, and the blocking
// clause built from the core would be unsound if it were not.
func conflictSeed(nvars int, ineqs []Ineq, bounds []Bound, maxNodes int) []int {
	cert := make(map[int]bool)
	budget := maxNodes
	if budget <= 0 {
		budget = 20000
	}
	extra := make([]Bound, nvars)
	copy(extra, bounds)
	if _, st := bnb(nvars, ineqs, extra, &budget, nil, cert); st != StatusUnsat {
		return nil
	}
	if len(cert) >= len(ineqs) {
		return nil
	}
	seed := make([]int, 0, len(cert))
	for i := range cert {
		seed = append(seed, i)
	}
	sort.Ints(seed)
	trial := make([]Ineq, 0, len(seed))
	for _, i := range seed {
		trial = append(trial, ineqs[i])
	}
	if _, st := SolveLIA(nvars, trial, bounds, maxNodes); st != StatusUnsat {
		return nil
	}
	return seed
}

// CheckModel verifies that the model satisfies the original formula; it is
// used by tests and as an internal sanity check by callers that need
// certainty (e.g. before reporting a generated test input).
func CheckModel(f sym.Expr, m *Model, fnEval func(name string, args []int64) (int64, bool)) (bool, error) {
	env := sym.Env{
		Vars: m.Vars,
		Fn: func(fn *sym.Func, args []int64) (int64, bool) {
			if fnEval != nil {
				if v, ok := fnEval(fn.Name, args); ok {
					return v, ok
				}
			}
			return 0, false
		},
	}
	return sym.EvalBool(f, env)
}

// String renders a model deterministically for diagnostics.
func (m *Model) String() string {
	if m == nil {
		return "<nil model>"
	}
	return fmt.Sprintf("vars=%v funcs=%v", m.Vars, m.Funcs)
}
