package smt

import (
	"testing"

	"hotg/internal/sym"
)

// The SolveIncremental benchmark family measures the win of incremental
// sessions on the workload shape the search coordinator produces: one shared
// path prefix and a batch of sibling ALT(pc) targets, each differing from its
// siblings only in the negated branch constraint. CI runs these with
// -benchtime=1x (bench-smoke) so they cannot bit-rot.

const benchSiblings = 12

// benchPrefix builds a chained prefix x_{i+1} = x_i + i with a few
// inequalities thrown in, returning the pool, variables, bounds and conjuncts.
func benchPrefix() (*sym.Pool, []*sym.Var, map[int]Bound, []sym.Expr) {
	p := &sym.Pool{}
	n := 10
	vars := make([]*sym.Var, n)
	for i := range vars {
		vars[i] = p.NewVar("x")
	}
	bounds := map[int]Bound{}
	for _, v := range vars {
		bounds[v.ID] = Bound{Lo: -1000, Hi: 1000, HasLo: true, HasHi: true}
	}
	var conjs []sym.Expr
	for i := 0; i+1 < n; i++ {
		conjs = append(conjs, sym.Eq(sym.VarTerm(vars[i+1]),
			sym.AddSum(sym.VarTerm(vars[i]), sym.Int(int64(i)))))
	}
	conjs = append(conjs, sym.Le(sym.VarTerm(vars[0]), sym.Int(100)))
	conjs = append(conjs, sym.Ge(sym.VarTerm(vars[0]), sym.Int(-100)))
	return p, vars, bounds, conjs
}

// benchTarget returns the i-th sibling constraint: alternately satisfiable
// and arithmetically conflicting, so the theory loop and core minimizer run.
func benchTarget(vars []*sym.Var, i int) sym.Expr {
	last := sym.VarTerm(vars[len(vars)-1])
	first := sym.VarTerm(vars[0])
	if i%2 == 0 {
		return sym.Eq(last, sym.Int(int64(36+i)))
	}
	// x_last = x_0 + 36 by the chain; demanding x_last < x_0 + i conflicts in
	// the theory, not in the boolean skeleton.
	return sym.Lt(last, sym.AddSum(first, sym.Int(int64(i%5))))
}

func BenchmarkSolveIncrementalOneShot(b *testing.B) {
	p, vars, bounds, conjs := benchPrefix()
	opts := Options{Pool: p, VarBounds: bounds}
	prefix := sym.AndExpr(conjs...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < benchSiblings; t++ {
			Solve(sym.AndExpr(prefix, benchTarget(vars, t)), opts)
		}
	}
}

func BenchmarkSolveIncrementalExact(b *testing.B) {
	p, vars, bounds, conjs := benchPrefix()
	ctx := NewContext(ContextOptions{Options: Options{Pool: p, VarBounds: bounds}, MemoSize: 64})
	ctx.Assert(sym.AndExpr(conjs...))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < benchSiblings; t++ {
			ctx.Push()
			ctx.Assert(benchTarget(vars, t))
			ctx.Check()
			ctx.Pop()
		}
	}
}

func BenchmarkSolveIncrementalWarm(b *testing.B) {
	p, vars, bounds, conjs := benchPrefix()
	ctx := NewContext(ContextOptions{Options: Options{Pool: p, VarBounds: bounds}, Retain: true})
	ctx.Assert(sym.AndExpr(conjs...))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < benchSiblings; t++ {
			ctx.Push()
			ctx.Assert(benchTarget(vars, t))
			ctx.Check()
			ctx.Pop()
		}
	}
}

// BenchmarkSolveIncrementalWarmRefute mirrors the Refute shape: a shared base
// with the same theory conflict recurring across sibling checks, where
// retained lemmas pay off most.
func BenchmarkSolveIncrementalWarmRefute(b *testing.B) {
	p, vars, bounds, conjs := benchPrefix()
	ctx := NewContext(ContextOptions{Options: Options{Pool: p, VarBounds: bounds}, Retain: true})
	ctx.Assert(sym.AndExpr(conjs...))
	last := sym.VarTerm(vars[len(vars)-1])
	first := sym.VarTerm(vars[0])
	ctx.Assert(sym.Lt(last, first)) // unsat against the chain, found via theory cores
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < benchSiblings; t++ {
			ctx.Push()
			ctx.Assert(sym.Eq(sym.VarTerm(vars[t%len(vars)]), sym.Int(int64(t))))
			ctx.Check()
			ctx.Pop()
		}
	}
}
