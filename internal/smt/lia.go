package smt

import (
	"math/big"
)

// Status is the outcome of a (sub)solver query.
type Status int

const (
	// StatusUnknown means the search budget was exhausted before a verdict.
	StatusUnknown Status = iota
	// StatusSat means satisfiable; a model is available.
	StatusSat
	// StatusUnsat means unsatisfiable.
	StatusUnsat
	// StatusTimeout means the wall-clock deadline (Options.Deadline) expired
	// or the context (Options.Ctx) was cancelled before a verdict. Like
	// StatusUnknown it is inconclusive, but callers distinguish the two: a
	// timeout is a budget event the search may degrade on, not an intrinsic
	// limit of the solver.
	StatusTimeout
)

func (s Status) String() string {
	switch s {
	case StatusSat:
		return "sat"
	case StatusUnsat:
		return "unsat"
	case StatusTimeout:
		return "timeout"
	default:
		return "unknown"
	}
}

// Bound is an optional closed interval constraint on one integer variable.
type Bound struct {
	Lo, Hi       int64
	HasLo, HasHi bool
}

// SolveLIA decides feasibility of the conjunction of the inequalities over
// integer variables 0..nvars-1 subject to per-variable bounds, using rational
// simplex relaxations refined by branch-and-bound. maxNodes caps the number
// of explored branch nodes (0 means a generous default).
func SolveLIA(nvars int, ineqs []Ineq, bounds []Bound, maxNodes int) ([]int64, Status) {
	return solveLIA(nvars, ineqs, bounds, maxNodes, nil)
}

// solveLIA is SolveLIA with a cooperative stop probe: when stop returns true
// the search unwinds and reports StatusTimeout. A nil stop never fires.
func solveLIA(nvars int, ineqs []Ineq, bounds []Bound, maxNodes int, stop func() bool) ([]int64, Status) {
	if maxNodes <= 0 {
		maxNodes = 20000
	}
	budget := maxNodes
	extra := make([]Bound, nvars)
	copy(extra, bounds)
	for len(extra) < nvars {
		extra = append(extra, Bound{})
	}
	return bnb(nvars, ineqs, extra, &budget, stop, nil)
}

// bnb explores the branch-and-bound tree. When cert is non-nil, every unsat
// leaf records which inequalities (by index into ineqs) participated in its
// simplex infeasibility explanation; because the branch cuts x ≤ ⌊v⌋ ∨
// x ≥ ⌊v⌋+1 are tautologies over the integers, the union collected across an
// all-leaves-unsat tree is itself an unsatisfiable subset of ineqs.
func bnb(nvars int, ineqs []Ineq, bounds []Bound, budget *int, stop func() bool, cert map[int]bool) ([]int64, Status) {
	if *budget <= 0 {
		return nil, StatusUnknown
	}
	if stop != nil && stop() {
		return nil, StatusTimeout
	}
	*budget--

	s := newSimplex(nvars)
	for v := 0; v < nvars; v++ {
		b := bounds[v]
		if b.HasLo && !s.assertLower(v, new(big.Rat).SetInt64(b.Lo)) {
			return nil, StatusUnsat // variable-bound clash: no inequality involved
		}
		if b.HasHi && !s.assertUpper(v, new(big.Rat).SetInt64(b.Hi)) {
			return nil, StatusUnsat
		}
	}
	var slackIneq map[int]int // slack var → index into ineqs
	if cert != nil {
		slackIneq = make(map[int]int, len(ineqs))
	}
	for i, q := range ineqs {
		nq, triv := q.Normalize()
		switch triv {
		case 1:
			continue
		case -1:
			if cert != nil {
				cert[i] = true
			}
			return nil, StatusUnsat
		}
		combo := make(map[int]*big.Rat, len(nq.Terms))
		for _, t := range nq.Terms {
			combo[t.Var] = new(big.Rat).SetInt64(t.Coef)
		}
		y := s.defineSlack(combo)
		if cert != nil {
			slackIneq[y] = i
		}
		if !s.assertUpper(y, new(big.Rat).SetInt64(nq.B)) {
			if cert != nil {
				cert[i] = true
			}
			return nil, StatusUnsat
		}
	}
	if !s.check() {
		if cert != nil {
			for _, x := range s.conflict {
				if i, ok := slackIneq[x]; ok {
					cert[i] = true
				}
			}
		}
		return nil, StatusUnsat
	}
	// Find a fractional problem variable.
	frac := -1
	for v := 0; v < nvars; v++ {
		if !s.val[v].IsInt() {
			frac = v
			break
		}
	}
	if frac == -1 {
		model := make([]int64, nvars)
		for v := 0; v < nvars; v++ {
			model[v] = s.val[v].Num().Int64()
		}
		return model, StatusSat
	}
	// Branch: x ≤ ⌊v⌋ then x ≥ ⌊v⌋+1.
	fl := ratFloor(s.val[frac])

	left := make([]Bound, len(bounds))
	copy(left, bounds)
	if !left[frac].HasHi || left[frac].Hi > fl {
		left[frac].Hi, left[frac].HasHi = fl, true
	}
	if m, st := bnb(nvars, ineqs, left, budget, stop, cert); st != StatusUnsat {
		return m, st
	}

	right := make([]Bound, len(bounds))
	copy(right, bounds)
	if !right[frac].HasLo || right[frac].Lo < fl+1 {
		right[frac].Lo, right[frac].HasLo = fl+1, true
	}
	return bnb(nvars, ineqs, right, budget, stop, cert)
}

func ratFloor(r *big.Rat) int64 {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() < 0 && new(big.Int).Rem(r.Num(), r.Denom()).Sign() != 0 {
		q.Sub(q, big.NewInt(1))
	}
	return q.Int64()
}
