package fuzz

import (
	"math/rand"
	"testing"

	"hotg/internal/lexapp"
	"hotg/internal/mini"
	"hotg/internal/smt"
)

func testProg(t *testing.T, src string) *mini.Program {
	t.Helper()
	ns := mini.Natives{}
	ns.Register("hash", 1, lexapp.ScrambledHash)
	p, err := mini.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := mini.Check(p, ns); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunBudgetAndSeeds(t *testing.T) {
	p := testProg(t, `fn main(x int) { if (x == 77777) { error("needle"); } }`)
	st := Run(p, Options{
		MaxRuns: 25,
		Seeds:   [][]int64{{77777}},
		Rand:    rand.New(rand.NewSource(3)),
	})
	if st.Runs != 25 {
		t.Fatalf("runs = %d", st.Runs)
	}
	// The seed itself triggers the bug on run 1.
	if len(st.Bugs) != 1 || st.Bugs[0].Run != 1 {
		t.Fatalf("bugs = %v", st.Bugs)
	}
}

func TestRunRespectsBounds(t *testing.T) {
	p := testProg(t, `fn main(x int) { if (x < 0 || x > 9) { error("oob"); } }`)
	st := Run(p, Options{
		MaxRuns: 200,
		Bounds:  []smt.Bound{{Lo: 0, Hi: 9, HasLo: true, HasHi: true}},
		Rand:    rand.New(rand.NewSource(4)),
	})
	if len(st.ErrorSitesFound()) != 0 {
		t.Fatalf("bounded fuzzing escaped its domain: %v", st.Bugs)
	}
	if st.Paths() < 1 || st.Coverage() <= 0 {
		t.Fatalf("stats look wrong: %s", st.Summary())
	}
}

func TestRunDefaultDomain(t *testing.T) {
	// Default domain is [-100, 100]: a guard at ±3 is hit quickly.
	p := testProg(t, `fn main(x int) { if (x >= -3 && x <= 3) { error("near-zero"); } }`)
	st := Run(p, Options{MaxRuns: 500, Rand: rand.New(rand.NewSource(5))})
	if len(st.ErrorSitesFound()) != 1 {
		t.Fatalf("near-zero guard not hit in 500 runs: %s", st.Summary())
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	p := testProg(t, `fn main(x int, y int) { if (x + y == 12) { error("sum"); } }`)
	run := func() string {
		st := Run(p, Options{MaxRuns: 100, Rand: rand.New(rand.NewSource(6))})
		return st.Summary()
	}
	if run() != run() {
		t.Fatal("fuzzing is not deterministic for a fixed seed")
	}
}
