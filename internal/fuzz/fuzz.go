// Package fuzz implements the blackbox random-testing baseline of Section 7
// ("regular dynamic test generation is no better than blackbox random
// testing ..."): inputs are drawn uniformly from their domains with no
// feedback whatsoever, and executions are measured with the same statistics
// as the directed searches.
package fuzz

import (
	"math/rand"

	"hotg/internal/mini"
	"hotg/internal/search"
	"hotg/internal/smt"
)

// Options configures a fuzzing campaign.
type Options struct {
	// MaxRuns is the execution budget (default 100).
	MaxRuns int
	// Seeds are executed first, before random inputs.
	Seeds [][]int64
	// Bounds gives each flat input's domain, aligned with the program
	// shape. Missing or open bounds default to [-100, 100] — blackbox
	// fuzzing needs *some* finite domain to draw from.
	Bounds []smt.Bound
	// Rand is the randomness source (required for reproducibility).
	Rand *rand.Rand
}

// Run executes the random-testing baseline on the checked program.
func Run(prog *mini.Program, opts Options) *search.Stats {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 100
	}
	if opts.Rand == nil {
		opts.Rand = rand.New(rand.NewSource(1))
	}
	shape := prog.Shape()
	stats := search.NewFuzzStats(prog.NumBranches)
	// Pure concrete execution: run on the optimized bytecode VM (identical
	// observable behavior to the interpreter, property-tested in
	// internal/mini).
	compiled := mini.CompileVM(prog).Optimize()

	lo := make([]int64, len(shape.Names))
	hi := make([]int64, len(shape.Names))
	for i := range shape.Names {
		lo[i], hi[i] = -100, 100
		if i < len(opts.Bounds) {
			if opts.Bounds[i].HasLo {
				lo[i] = opts.Bounds[i].Lo
			}
			if opts.Bounds[i].HasHi {
				hi[i] = opts.Bounds[i].Hi
			}
		}
	}

	runOne := func(input []int64) {
		res := mini.RunVM(compiled, input, mini.RunOptions{})
		stats.RecordFuzzRun(res, input)
	}
	for _, seed := range opts.Seeds {
		if stats.Runs >= opts.MaxRuns {
			break
		}
		runOne(seed)
	}
	for stats.Runs < opts.MaxRuns {
		input := make([]int64, len(shape.Names))
		for i := range input {
			span := hi[i] - lo[i] + 1
			input[i] = lo[i] + opts.Rand.Int63n(span)
		}
		runOne(input)
	}
	return stats
}
