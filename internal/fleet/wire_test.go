package fleet_test

import (
	"net/http"
	"sync/atomic"
	"testing"

	"hotg/internal/fleet"
	"hotg/internal/search"
)

// httpCountWrap counts requests through a handler (the kill-drill trigger).
func httpCountWrap(n *atomic.Int64, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		h.ServeHTTP(w, r)
	})
}

// TestEnvelopeIntegrity: the envelope rejects protocol, type, and sum
// mismatches before any body decoding.
func TestEnvelopeIntegrity(t *testing.T) {
	env, err := fleet.Seal(fleet.MsgPollRequest, &fleet.PollRequest{Worker: 3, Version: 7})
	if err != nil {
		t.Fatal(err)
	}

	var req fleet.PollRequest
	if err := env.Open(fleet.MsgPollRequest, &req); err != nil {
		t.Fatalf("clean open failed: %v", err)
	}
	if req.Worker != 3 || req.Version != 7 {
		t.Fatalf("round trip mangled the body: %+v", req)
	}

	if err := env.Open(fleet.MsgPollReply, &req); err == nil {
		t.Error("wrong message type was accepted")
	}

	tampered := *env
	tampered.Body = append([]byte(nil), env.Body...)
	tampered.Body[len(tampered.Body)-2]++ // flip a byte inside the JSON
	if err := tampered.Open(fleet.MsgPollRequest, &req); err == nil {
		t.Error("tampered body passed the integrity sum")
	}

	wrongGen := *env
	wrongGen.Protocol = fleet.ProtocolVersion + 1
	if err := wrongGen.Open(fleet.MsgPollRequest, &req); err == nil {
		t.Error("future protocol generation was accepted")
	}
}

// TestShardOfStability: shard assignment is a pure function of the input,
// lands in range, and actually spreads distinct inputs around.
func TestShardOfStability(t *testing.T) {
	inputs := [][]int64{
		{0}, {1}, {2, 3}, {4, 5, 6}, {7, 8, 9, 10}, {-1, -2}, {1 << 40},
	}
	seen := make(map[int]bool)
	for _, in := range inputs {
		s := search.ShardOf(in, 4)
		if s != search.ShardOf(in, 4) {
			t.Fatalf("ShardOf(%v) is not stable", in)
		}
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%v, 4) = %d out of range", in, s)
		}
		seen[s] = true
		if got := search.ShardOf(in, 1); got != 0 {
			t.Fatalf("ShardOf(%v, 1) = %d, want 0", in, got)
		}
	}
	if len(seen) < 2 {
		t.Errorf("ShardOf sent every probe input to the same shard: %v", seen)
	}
}

// TestParseMode round-trips every mode through its wire form.
func TestParseMode(t *testing.T) {
	if _, err := fleet.ParseMode("definitely-not-a-mode"); err == nil {
		t.Error("unknown mode parsed")
	}
}
