package fleet

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/fol"
	"hotg/internal/mini"
	"hotg/internal/obs"
	"hotg/internal/search"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// CoordinatorOptions configures a fleet coordinator.
type CoordinatorOptions struct {
	// Workload is the lexapp registry name workers rebuild the program from.
	Workload string
	// Shards is the shard modulus for task affinity — normally the planned
	// fleet size. Minimum 1. Canonical results do not depend on it.
	Shards int
	// Bounds, Refute, ProverNodes, NoIncrementalSMT, and ProofTimeout are
	// the compute options, forwarded verbatim to workers in WorkerConfig and
	// honored identically by local fallback.
	Bounds           []smt.Bound
	Refute           bool
	ProverNodes      int
	NoIncrementalSMT bool
	ProofTimeout     time.Duration
	// LeaseTimeout is how long a worker may sit on an assigned task before
	// the coordinator reclaims and re-enqueues it (default 2s). This is the
	// kill -9 recovery knob: a SIGKILLed worker's tasks reappear on the
	// board one lease timeout later.
	LeaseTimeout time.Duration
	// MaxAttempts is how many leases a task may burn through before the
	// coordinator stops offering it and computes it locally (default 3).
	// Local fallback also fires immediately when no live worker remains, so
	// a fleet that lost every worker degrades to a single-process search
	// instead of hanging.
	MaxAttempts int
	// Obs receives the fleet counters and gauges (nil disables).
	Obs *obs.Obs
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.ProverNodes <= 0 {
		// Mirror search.Run's normalization so a fleet with the knob unset
		// proves exactly like a single-process search with it unset.
		o.ProverNodes = 4000
	}
	return o
}

// task is one unit on the board, from enqueue to completed result.
type task struct {
	id      uint64
	kind    string
	shard   int
	version int

	// Request payload (exactly one family is set, by kind). funcs is the
	// wire form of the execution's function inputs; funcVals the parsed form
	// (for local fallback and result decoding).
	input    []int64
	funcs    []string
	funcVals []*mini.FuncValue
	altRec   *sym.ExprRec

	// Lease state: leasedTo is -1 while queued, a worker id while leased,
	// and localWorker when the coordinator claimed it for local fallback.
	leasedTo int
	leaseExp time.Time
	attempts int
	done     bool

	// Decoded result (by kind).
	ex       *concolic.Execution
	samples  []sym.Sample
	panicked bool
	strategy *fol.Strategy
	outcome  fol.Outcome
	status   smt.Status
	model    *smt.Model
	worker   int
	durNanos int64
}

// localWorker is the pseudo-worker id of coordinator-side fallback compute.
const localWorker = -2

type workerState struct {
	id       int
	pid      int
	lastSeen time.Time
	gauges   map[string]int64
	retired  bool
}

// batchState tracks one synchronous dispatch window.
type batchState struct {
	remaining int
	done      chan struct{}
}

// Coordinator owns the canonical search and the fleet task board. It
// implements search.Dispatcher: plug it into search.Options.Dispatch (or call
// Run, which does) and serve Handler() somewhere workers can reach.
//
// The coordinator is safe for concurrent use by the searcher goroutine (the
// Dispatcher calls) and the HTTP handlers (worker traffic).
type Coordinator struct {
	eng  *concolic.Engine
	opts CoordinatorOptions
	obs  *obs.Obs

	varBounds map[int]smt.Bound

	mu         sync.Mutex
	nextWorker int
	workers    map[int]*workerState
	nextTask   uint64
	tasks      map[uint64]*task
	queue      []uint64 // unleased task ids, in canonical batch order
	batch      *batchState
	retired    bool
}

// NewCoordinator builds a coordinator over the canonical engine. The engine
// must be the one the search runs on: the coordinator reads its sample store
// for replica deltas and computes local fallbacks against it.
func NewCoordinator(eng *concolic.Engine, opts CoordinatorOptions) *Coordinator {
	opts = opts.withDefaults()
	c := &Coordinator{
		eng:     eng,
		opts:    opts,
		obs:     opts.Obs,
		workers: make(map[int]*workerState),
		tasks:   make(map[uint64]*task),
	}
	c.varBounds = make(map[int]smt.Bound)
	for i, v := range eng.InputVars {
		if i < len(opts.Bounds) {
			b := opts.Bounds[i]
			if b.HasLo || b.HasHi {
				c.varBounds[v.ID] = b
			}
		}
	}
	return c
}

// config is the worker-facing compute configuration.
func (c *Coordinator) config() WorkerConfig {
	return WorkerConfig{
		Workload:          c.opts.Workload,
		Mode:              c.eng.Mode.String(),
		Bounds:            c.opts.Bounds,
		Refute:            c.opts.Refute,
		ProverNodes:       c.opts.ProverNodes,
		NoIncrementalSMT:  c.opts.NoIncrementalSMT,
		ProofTimeoutNanos: int64(c.opts.ProofTimeout),
	}
}

// Retire tells every worker (current and future polls) to exit cleanly. The
// search calls it once the budget is exhausted.
func (c *Coordinator) Retire() {
	c.mu.Lock()
	c.retired = true
	c.mu.Unlock()
}

// Run executes the directed search with this coordinator dispatching its
// batches, then retires the fleet. It is a drop-in replacement for
// search.Run; opts.Dispatch is overwritten, and the compute knobs the
// coordinator already shipped to workers (Bounds, Refute, ProverNodes,
// NoIncrementalSMT) override their Options counterparts so the canonical
// trajectory and the fleet config cannot disagree.
func (c *Coordinator) Run(opts search.Options) *search.Stats {
	opts.Dispatch = c
	opts.Bounds = c.opts.Bounds
	opts.Refute = c.opts.Refute
	opts.ProverNodes = c.opts.ProverNodes
	opts.NoIncrementalSMT = c.opts.NoIncrementalSMT
	defer c.Retire()
	return search.Run(c.eng, opts)
}

// --- search.Dispatcher ---

// ExecBatch dispatches one execution batch and blocks until every reply is
// in (remote or local-fallback).
func (c *Coordinator) ExecBatch(reqs []search.ExecRequest) ([]search.ExecReply, error) {
	tasks := make([]*task, len(reqs))
	for i, r := range reqs {
		funcVals, err := parseFuncs(r.Funcs)
		if err != nil {
			return nil, err
		}
		tasks[i] = &task{
			kind: TaskExec, version: r.Version, input: r.Input,
			funcs: r.Funcs, funcVals: funcVals,
			shard: search.ShardOf(r.Input, c.opts.Shards), leasedTo: -1,
		}
	}
	if err := c.runBatch(tasks); err != nil {
		return nil, err
	}
	out := make([]search.ExecReply, len(tasks))
	for i, t := range tasks {
		out[i] = search.ExecReply{
			Ex: t.ex, Samples: t.samples, Panicked: t.panicked,
			Worker: t.worker, DurNanos: t.durNanos,
		}
	}
	return out, nil
}

// ProveBatch dispatches one validity-proof fan-out.
func (c *Coordinator) ProveBatch(reqs []search.ProveRequest) ([]search.ProveReply, error) {
	tasks := make([]*task, len(reqs))
	for i, r := range reqs {
		rec, err := sym.EncodeExpr(r.Alt)
		if err != nil {
			return nil, fmt.Errorf("fleet: encoding proof target: %w", err)
		}
		tasks[i] = &task{
			kind: TaskProve, version: r.Version, altRec: rec,
			// Proof targets have no input vector; their affinity comes from
			// the formula's canonical key so repeated occurrences of a
			// formula land on the same worker (warm prover structure).
			shard: shardOfKey(r.Alt.Key(), c.opts.Shards), leasedTo: -1,
		}
	}
	if err := c.runBatch(tasks); err != nil {
		return nil, err
	}
	out := make([]search.ProveReply, len(tasks))
	for i, t := range tasks {
		out[i] = search.ProveReply{
			Strategy: t.strategy, Outcome: t.outcome, Panicked: t.panicked,
			Worker: t.worker, DurNanos: t.durNanos,
		}
	}
	return out, nil
}

// SolveBatch dispatches one satisfiability fan-out.
func (c *Coordinator) SolveBatch(reqs []search.SolveRequest) ([]search.SolveReply, error) {
	version := c.eng.Samples.Len()
	tasks := make([]*task, len(reqs))
	for i, r := range reqs {
		rec, err := sym.EncodeExpr(r.Alt)
		if err != nil {
			return nil, fmt.Errorf("fleet: encoding solver target: %w", err)
		}
		tasks[i] = &task{
			kind: TaskSolve, version: version, altRec: rec,
			shard: shardOfKey(r.Alt.Key(), c.opts.Shards), leasedTo: -1,
		}
	}
	if err := c.runBatch(tasks); err != nil {
		return nil, err
	}
	out := make([]search.SolveReply, len(tasks))
	for i, t := range tasks {
		out[i] = search.SolveReply{
			Status: t.status, Model: t.model,
			Worker: t.worker, DurNanos: t.durNanos,
		}
	}
	return out, nil
}

// shardOfKey hashes an arbitrary string key into a shard, for tasks with no
// input vector.
func shardOfKey(key string, n int) int {
	if n <= 1 {
		return 0
	}
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// runBatch posts the tasks to the board and blocks until all are done. The
// sample store is frozen for the duration (the searcher is blocked in this
// call and nothing else writes it), which is what lets poll handlers read
// consistent store deltas. While waiting, the coordinator sweeps expired
// leases and absorbs unservable tasks as local compute.
func (c *Coordinator) runBatch(tasks []*task) error {
	if len(tasks) == 0 {
		return nil
	}
	b := &batchState{remaining: len(tasks), done: make(chan struct{})}
	c.mu.Lock()
	if c.batch != nil {
		c.mu.Unlock()
		return fmt.Errorf("fleet: overlapping dispatch batches")
	}
	c.batch = b
	for _, t := range tasks {
		c.nextTask++
		t.id = c.nextTask
		c.tasks[t.id] = t
		c.queue = append(c.queue, t.id)
	}
	c.publishBoard()
	c.mu.Unlock()

	sweep := c.opts.LeaseTimeout / 4
	if sweep > 100*time.Millisecond {
		sweep = 100 * time.Millisecond
	}
	if sweep <= 0 {
		sweep = time.Millisecond
	}
	tick := time.NewTicker(sweep)
	defer tick.Stop()
	for {
		select {
		case <-b.done:
			c.mu.Lock()
			c.batch = nil
			for _, t := range tasks {
				delete(c.tasks, t.id)
			}
			c.publishBoard()
			c.mu.Unlock()
			return nil
		case <-tick.C:
			c.sweep()
		}
	}
}

// sweep reclaims expired leases and runs local fallback for tasks no worker
// is going to serve. Called periodically while a batch is in flight.
func (c *Coordinator) sweep() {
	now := time.Now()
	c.mu.Lock()
	for _, t := range c.tasks {
		if t.done || t.leasedTo < 0 {
			continue
		}
		if now.After(t.leaseExp) {
			t.leasedTo = -1
			t.attempts++
			c.queue = append(c.queue, t.id)
			c.obs.Counter("fleet.lease_expiries").Add(1)
		}
	}
	live := c.liveWorkersLocked(now)
	var local []*task
	var rest []uint64
	for _, id := range c.queue {
		t := c.tasks[id]
		if t == nil || t.done {
			continue
		}
		if t.attempts >= c.opts.MaxAttempts || live == 0 {
			t.leasedTo = localWorker
			local = append(local, t)
		} else {
			rest = append(rest, id)
		}
	}
	c.queue = rest
	c.publishBoard()
	c.mu.Unlock()

	for _, t := range local {
		c.obs.Counter("fleet.local_fallbacks").Add(1)
		c.computeLocal(t)
	}
}

// computeLocal runs one task on the coordinator itself — the liveness
// backstop that makes the fleet degrade to a single-process search when
// workers disappear. Results are identical to remote compute by
// construction: same engine configuration, same frozen store.
func (c *Coordinator) computeLocal(t *task) {
	t0 := time.Now()
	switch t.kind {
	case TaskExec:
		overlay := sym.NewOverlay(c.eng.Samples)
		ex, panicked := runShielded(c.eng.Clone(overlay), t.input, t.funcVals)
		c.completeExec(t, ex, overlay.Local(), panicked, localWorker, time.Since(t0))
	case TaskProve:
		alt, err := sym.DecodeExpr(t.altRec, sym.NewResolver(c.eng.Pool, c.eng.InputVars))
		if err != nil {
			c.completeProve(t, nil, fol.OutcomeUnknown, true, localWorker, time.Since(t0))
			return
		}
		st, outcome, panicked := proveShielded(alt, c.eng.Samples, c.proveOptions())
		c.completeProve(t, st, outcome, panicked, localWorker, time.Since(t0))
	case TaskSolve:
		alt, err := sym.DecodeExpr(t.altRec, sym.NewResolver(c.eng.Pool, c.eng.InputVars))
		if err != nil {
			c.completeSolve(t, smt.StatusUnknown, nil, localWorker, time.Since(t0))
			return
		}
		status, model := smt.Solve(alt, smt.Options{
			Pool: c.eng.Pool, VarBounds: c.varBounds,
			Deadline: deadlineAfter(c.opts.ProofTimeout),
		})
		c.completeSolve(t, status, model, localWorker, time.Since(t0))
	}
}

// proveOptions are the prover options shared by local fallback (worker-side
// equivalents are rebuilt from WorkerConfig).
func (c *Coordinator) proveOptions() fol.Options {
	return fol.Options{
		Pool:             c.eng.Pool,
		VarBounds:        c.varBounds,
		NoRefute:         !c.opts.Refute,
		MaxNodes:         c.opts.ProverNodes,
		NoIncrementalSMT: c.opts.NoIncrementalSMT,
		Deadline:         deadlineAfter(c.opts.ProofTimeout),
	}
}

// deadlineAfter converts a relative timeout to an absolute deadline (zero
// timeout = no deadline).
func deadlineAfter(d time.Duration) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}

// runShielded executes one input under its function inputs, converting
// executor panics into a dropped run — the same shield the in-process
// searcher uses.
func runShielded(eng *concolic.Engine, input []int64, funcs []*mini.FuncValue) (ex *concolic.Execution, panicked bool) {
	defer func() {
		if rec := recover(); rec != nil {
			ex, panicked = nil, true
		}
	}()
	return eng.RunWith(input, funcs), false
}

// proveShielded discharges one proof, converting prover panics into an
// unknown outcome — the same shield the in-process searcher uses.
func proveShielded(alt sym.Expr, samples *sym.SampleStore, opts fol.Options) (st *fol.Strategy, outcome fol.Outcome, panicked bool) {
	defer func() {
		if rec := recover(); rec != nil {
			st, outcome, panicked = nil, fol.OutcomeUnknown, true
		}
	}()
	st, outcome = fol.ProveCore(alt, samples, opts)
	return st, outcome, false
}

// complete* record a finished task and signal the waiting batch. First
// result wins: completions of already-done tasks are dropped and counted.

func (c *Coordinator) completeExec(t *task, ex *concolic.Execution, smps []sym.Sample, panicked bool, worker int, dur time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.done {
		c.obs.Counter("fleet.dup_results").Add(1)
		return false
	}
	t.done = true
	t.ex, t.samples, t.panicked = ex, smps, panicked
	t.worker, t.durNanos = worker, int64(dur)
	c.obs.Counter("fleet.tasks.exec").Add(1)
	c.signalLocked()
	return true
}

func (c *Coordinator) completeProve(t *task, st *fol.Strategy, outcome fol.Outcome, panicked bool, worker int, dur time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.done {
		c.obs.Counter("fleet.dup_results").Add(1)
		return false
	}
	t.done = true
	t.strategy, t.outcome, t.panicked = st, outcome, panicked
	t.worker, t.durNanos = worker, int64(dur)
	c.obs.Counter("fleet.tasks.prove").Add(1)
	c.signalLocked()
	return true
}

func (c *Coordinator) completeSolve(t *task, status smt.Status, model *smt.Model, worker int, dur time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.done {
		c.obs.Counter("fleet.dup_results").Add(1)
		return false
	}
	t.done = true
	t.status, t.model = status, model
	t.worker, t.durNanos = worker, int64(dur)
	c.obs.Counter("fleet.tasks.solve").Add(1)
	c.signalLocked()
	return true
}

func (c *Coordinator) signalLocked() {
	if b := c.batch; b != nil {
		b.remaining--
		if b.remaining == 0 {
			close(b.done)
		}
	}
}

// liveWorkersLocked counts workers seen recently enough to still be trusted
// with leases.
func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	horizon := 2 * c.opts.LeaseTimeout
	n := 0
	for _, w := range c.workers {
		if !w.retired && now.Sub(w.lastSeen) < horizon {
			n++
		}
	}
	return n
}

// publishBoard refreshes the task-board gauges. Callers hold mu.
func (c *Coordinator) publishBoard() {
	if !c.obs.Enabled() {
		return
	}
	pending, inflight := 0, 0
	for _, t := range c.tasks {
		switch {
		case t.done:
		case t.leasedTo == -1:
			pending++
		default:
			inflight++
		}
	}
	c.obs.Gauge("fleet.tasks.pending").Set(int64(pending))
	c.obs.Gauge("fleet.tasks.inflight").Set(int64(inflight))
	c.obs.Gauge("fleet.workers").Set(int64(c.liveWorkersLocked(time.Now())))
}

// Info is the /statusz headline contribution: live fleet shape plus every
// worker's piggybacked gauges, flattened as worker<id>_<key>.
func (c *Coordinator) Info() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[string]int64{
		"fleet_workers":  int64(c.liveWorkersLocked(time.Now())),
		"fleet_joined":   int64(c.nextWorker),
		"fleet_shards":   int64(c.opts.Shards),
		"fleet_inflight": 0,
	}
	for _, t := range c.tasks {
		if !t.done && t.leasedTo != -1 {
			out["fleet_inflight"]++
		}
	}
	ids := make([]int, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := c.workers[id]
		for k, v := range w.gauges {
			out[fmt.Sprintf("worker%d_%s", id, k)] = v
		}
	}
	return out
}

// --- HTTP surface ---

// Handler serves the three fleet endpoints. Mount it under /fleet/ next to
// the obshttp introspection handler.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/join", c.handleJoin)
	mux.HandleFunc("/fleet/poll", c.handlePoll)
	mux.HandleFunc("/fleet/result", c.handleResult)
	return mux
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !readEnvelope(w, r, MsgJoinRequest, &req) {
		return
	}
	if req.Workload != "" && req.Workload != c.opts.Workload {
		httpError(w, http.StatusConflict, fmt.Sprintf("workload %q, coordinator runs %q", req.Workload, c.opts.Workload))
		return
	}
	if req.Mode != "" && req.Mode != c.eng.Mode.String() {
		httpError(w, http.StatusConflict, fmt.Sprintf("mode %q, coordinator runs %q", req.Mode, c.eng.Mode.String()))
		return
	}
	samples := encodeSamples(c.eng.Samples.All())
	c.mu.Lock()
	id := c.nextWorker
	c.nextWorker++
	c.workers[id] = &workerState{id: id, pid: req.Pid, lastSeen: time.Now()}
	c.mu.Unlock()
	c.obs.Counter("fleet.joins").Add(1)
	writeEnvelope(w, MsgJoinReply, &JoinReply{
		Worker: id, Shards: c.opts.Shards, Config: c.config(),
		Samples: samples, Version: len(samples),
	})
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if !readEnvelope(w, r, MsgPollRequest, &req) {
		return
	}
	now := time.Now()
	c.mu.Lock()
	ws := c.workers[req.Worker]
	if ws == nil {
		c.mu.Unlock()
		httpError(w, http.StatusGone, fmt.Sprintf("unknown worker %d (rejoin)", req.Worker))
		return
	}
	ws.lastSeen = now
	if req.Gauges != nil {
		ws.gauges = req.Gauges
	}
	if c.retired {
		ws.retired = true
		c.mu.Unlock()
		writeEnvelope(w, MsgPollReply, &PollReply{Op: OpRetire})
		return
	}
	t := c.assignLocked(req.Worker, now)
	c.publishBoard()
	c.mu.Unlock()
	if t == nil {
		writeEnvelope(w, MsgPollReply, &PollReply{Op: OpWait, WaitNanos: int64(c.opts.LeaseTimeout / 8)})
		return
	}
	reply := &PollReply{Op: OpTask, Task: &TaskRec{
		ID: t.id, Kind: t.kind, Version: t.version, Shard: t.shard,
		Input: t.input, Funcs: t.funcs, Alt: t.altRec,
	}}
	if req.Version < t.version {
		// The store is frozen while the batch is in flight, so this slice is
		// the exact insertion-order delta the replica is missing.
		reply.Samples = encodeSamples(c.eng.Samples.All()[req.Version:t.version])
	} else if req.Version > t.version {
		// A replica ahead of the coordinator can only mean a protocol bug;
		// refuse rather than hand out a task it would prove against the
		// wrong store.
		c.requeue(t)
		httpError(w, http.StatusConflict, fmt.Sprintf("replica at version %d, coordinator at %d", req.Version, t.version))
		return
	}
	writeEnvelope(w, MsgPollReply, reply)
}

// assignLocked picks the next task for a worker: expired leases are reclaimed
// first, then the oldest queued task of the worker's home shard, then — work
// stealing — the oldest queued task of any shard.
func (c *Coordinator) assignLocked(worker int, now time.Time) *task {
	for _, t := range c.tasks {
		if !t.done && t.leasedTo >= 0 && now.After(t.leaseExp) {
			t.leasedTo = -1
			t.attempts++
			c.queue = append(c.queue, t.id)
			c.obs.Counter("fleet.lease_expiries").Add(1)
		}
	}
	home := worker % c.opts.Shards
	pick := -1
	for i, id := range c.queue {
		t := c.tasks[id]
		if t == nil || t.done || t.leasedTo != -1 {
			continue
		}
		if t.shard == home {
			pick = i
			break
		}
		if pick == -1 {
			pick = i
		}
	}
	if pick == -1 {
		return nil
	}
	id := c.queue[pick]
	c.queue = append(c.queue[:pick], c.queue[pick+1:]...)
	t := c.tasks[id]
	t.leasedTo = worker
	t.leaseExp = now.Add(c.opts.LeaseTimeout)
	if t.shard != home {
		c.obs.Counter("fleet.steals").Add(1)
	}
	return t
}

// requeue puts a leased task back on the board (decode failure, version
// refusal).
func (c *Coordinator) requeue(t *task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !t.done {
		t.leasedTo = -1
		t.attempts++
		c.queue = append(c.queue, t.id)
	}
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !readEnvelope(w, r, MsgResultRequest, &req) {
		return
	}
	c.mu.Lock()
	if ws := c.workers[req.Worker]; ws != nil {
		ws.lastSeen = time.Now()
	}
	t := c.tasks[req.Task]
	c.mu.Unlock()
	if t == nil || t.done {
		// The batch already closed (a re-leased twin finished first) or the
		// task was re-resolved; either way this result is a duplicate.
		c.obs.Counter("fleet.dup_results").Add(1)
		writeEnvelope(w, MsgResultReply, &ResultReply{OK: true, Duplicate: true})
		return
	}
	dur := time.Duration(req.DurNanos)
	var applied bool
	var err error
	switch {
	case t.kind == TaskExec && req.Exec != nil:
		var ex *concolic.Execution
		var smps []sym.Sample
		ex, smps, err = decodeExec(req.Exec, c.eng, t.input, t.funcVals)
		if err == nil {
			applied = c.completeExec(t, ex, smps, req.Exec.Panicked, req.Worker, dur)
		}
	case t.kind == TaskProve && req.Prove != nil:
		var st *fol.Strategy
		var outcome fol.Outcome
		st, outcome, err = decodeProve(req.Prove, c.eng)
		if err == nil {
			applied = c.completeProve(t, st, outcome, req.Prove.Panicked, req.Worker, dur)
		}
	case t.kind == TaskSolve && req.Solve != nil:
		var status smt.Status
		var model *smt.Model
		status, model, err = decodeSolve(req.Solve)
		if err == nil {
			applied = c.completeSolve(t, status, model, req.Worker, dur)
		}
	default:
		err = fmt.Errorf("result payload does not match task kind %s", t.kind)
	}
	if err != nil {
		c.obs.Counter("fleet.bad_results").Add(1)
		c.requeue(t)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeEnvelope(w, MsgResultReply, &ResultReply{OK: true, Duplicate: !applied})
}
