package fleet

// Conversions between live pipeline values and their wire records. Decoding
// always resolves against the receiving process's own pool and input
// variables (sym.NewResolver), so decoded formulas share atom identity with
// that engine — the same round-trip the campaign checkpoints rely on, and the
// reason a decoded proof obligation proves bit-identically on any worker.

import (
	"fmt"

	"hotg/internal/concolic"
	"hotg/internal/fol"
	"hotg/internal/mini"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// encodeSamples converts live samples to wire records, preserving order.
func encodeSamples(smps []sym.Sample) []SampleRec {
	out := make([]SampleRec, len(smps))
	for i, s := range smps {
		out[i] = SampleRec{Fn: s.Fn.Name, Arity: s.Fn.Arity, Args: s.Args, Out: s.Out, Input: s.Fn.Input}
	}
	return out
}

// decodeSamples resolves wire records to live samples through the pool,
// preserving order. Malformed records and arity clashes are errors.
func decodeSamples(recs []SampleRec, pool *sym.Pool) (out []sym.Sample, err error) {
	defer func() {
		// The pool panics on an arity clash with an already-interned symbol;
		// in a fleet that means the worker and coordinator disagree on the
		// program, which is a protocol error, not a crash.
		if rec := recover(); rec != nil {
			out, err = nil, fmt.Errorf("fleet: resolving samples: %v", rec)
		}
	}()
	out = make([]sym.Sample, 0, len(recs))
	for i, r := range recs {
		if r.Fn == "" || r.Arity <= 0 || len(r.Args) != r.Arity {
			return nil, fmt.Errorf("fleet: sample %d malformed (fn=%q arity=%d args=%d)",
				i, r.Fn, r.Arity, len(r.Args))
		}
		fn := pool.FuncSym
		if r.Input {
			fn = pool.InputFuncSym
		}
		out = append(out, sym.Sample{Fn: fn(r.Fn, r.Arity), Args: r.Args, Out: r.Out})
	}
	return out, nil
}

// parseFuncs decodes canonical function-input texts ("" = nil, the default
// function), as carried by TaskRec.Funcs.
func parseFuncs(texts []string) ([]*mini.FuncValue, error) {
	if texts == nil {
		return nil, nil
	}
	out := make([]*mini.FuncValue, len(texts))
	for i, t := range texts {
		if t == "" {
			continue
		}
		fv, err := mini.ParseFuncValue(t)
		if err != nil {
			return nil, fmt.Errorf("fleet: function input %d: %w", i, err)
		}
		out[i] = fv
	}
	return out, nil
}

// applySamples merges decoded samples into a store in order. Conflicting
// outputs (a nondeterministic "unknown function") surface as an error.
func applySamples(store *sym.SampleStore, smps []sym.Sample) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("fleet: applying samples: %v", rec)
		}
	}()
	for _, s := range smps {
		store.Add(s.Fn, s.Args, s.Out)
	}
	return nil
}

// encodeExec serializes an execution plus the samples it newly observed.
// A nil ex encodes a dropped (panicked) run.
func encodeExec(ex *concolic.Execution, smps []sym.Sample, panicked bool) (*ExecResultRec, error) {
	if ex == nil {
		return &ExecResultRec{Panicked: panicked}, nil
	}
	rec := &ExecResultRec{
		Result:          ex.Result,
		Incomplete:      ex.Incomplete,
		Concretizations: ex.Concretizations,
		UFApps:          ex.UFApps,
		NewSamples:      ex.NewSamples,
		Samples:         encodeSamples(smps),
	}
	if ex.CallbackSamples != nil {
		rec.CallbackSamples = encodeSamples(ex.CallbackSamples.All())
	}
	rec.PC = make([]ConstraintRec, len(ex.PC))
	for i, c := range ex.PC {
		e, err := sym.EncodeExpr(c.Expr)
		if err != nil {
			return nil, fmt.Errorf("fleet: encoding pc[%d]: %w", i, err)
		}
		rec.PC[i] = ConstraintRec{
			Expr: e, IsConcretization: c.IsConcretization,
			EventIndex: c.EventIndex, Pos: c.Pos,
		}
	}
	return rec, nil
}

// decodeExec reconstructs an execution against the receiving engine. The
// input and function inputs are taken from the task (not the wire) so a
// worker cannot reassign a result to different inputs.
func decodeExec(rec *ExecResultRec, eng *concolic.Engine, input []int64, funcs []*mini.FuncValue) (*concolic.Execution, []sym.Sample, error) {
	if rec.Panicked || rec.Result == nil {
		return nil, nil, nil
	}
	res := sym.NewResolver(eng.Pool, eng.InputVars)
	ex := &concolic.Execution{
		Input:           input,
		Funcs:           funcs,
		Result:          rec.Result,
		Incomplete:      rec.Incomplete,
		Concretizations: rec.Concretizations,
		UFApps:          rec.UFApps,
		NewSamples:      rec.NewSamples,
	}
	if len(rec.CallbackSamples) > 0 {
		cbs, err := decodeSamples(rec.CallbackSamples, eng.Pool)
		if err != nil {
			return nil, nil, err
		}
		ex.CallbackSamples = sym.NewSampleStore()
		if err := applySamples(ex.CallbackSamples, cbs); err != nil {
			return nil, nil, err
		}
	}
	ex.PC = make([]concolic.Constraint, len(rec.PC))
	for i, c := range rec.PC {
		e, err := sym.DecodeExpr(c.Expr, res)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: decoding pc[%d]: %w", i, err)
		}
		ex.PC[i] = concolic.Constraint{
			Expr: e, IsConcretization: c.IsConcretization,
			EventIndex: c.EventIndex, Pos: c.Pos,
		}
	}
	smps, err := decodeSamples(rec.Samples, eng.Pool)
	if err != nil {
		return nil, nil, err
	}
	return ex, smps, nil
}

// encodeProve serializes a proof verdict.
func encodeProve(st *fol.Strategy, outcome fol.Outcome, panicked bool) (*ProveResultRec, error) {
	strat, err := fol.EncodeStrategy(st)
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding strategy: %w", err)
	}
	return &ProveResultRec{Outcome: outcome.String(), Strategy: strat, Panicked: panicked}, nil
}

// decodeProve reconstructs a proof verdict against the receiving engine.
func decodeProve(rec *ProveResultRec, eng *concolic.Engine) (*fol.Strategy, fol.Outcome, error) {
	outcome, ok := fol.ParseOutcome(rec.Outcome)
	if !ok {
		return nil, 0, fmt.Errorf("fleet: unknown proof outcome %q", rec.Outcome)
	}
	st, err := fol.DecodeStrategy(rec.Strategy, sym.NewResolver(eng.Pool, eng.InputVars))
	if err != nil {
		return nil, 0, fmt.Errorf("fleet: decoding strategy: %w", err)
	}
	return st, outcome, nil
}

// encodeSolve serializes a solver verdict.
func encodeSolve(status smt.Status, model *smt.Model) *SolveResultRec {
	return &SolveResultRec{Status: status.String(), Model: model}
}

// decodeSolve reconstructs a solver verdict.
func decodeSolve(rec *SolveResultRec) (smt.Status, *smt.Model, error) {
	status, ok := smt.ParseStatus(rec.Status)
	if !ok {
		return 0, nil, fmt.Errorf("fleet: unknown solver status %q", rec.Status)
	}
	return status, rec.Model, nil
}
