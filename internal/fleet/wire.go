package fleet

// The wire protocol: versioned, integrity-summed envelopes around typed JSON
// messages, POSTed to three coordinator endpoints. DESIGN.md §13 specifies
// every schema field-by-field; this file is that spec in code.
//
//	POST /fleet/join    JoinRequest   → JoinReply
//	POST /fleet/poll    PollRequest   → PollReply
//	POST /fleet/result  ResultRequest → ResultReply

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"hotg/internal/fol"
	"hotg/internal/mini"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// Message type tags, one per schema.
const (
	MsgJoinRequest   = "join_request"
	MsgJoinReply     = "join_reply"
	MsgPollRequest   = "poll_request"
	MsgPollReply     = "poll_reply"
	MsgResultRequest = "result_request"
	MsgResultReply   = "result_reply"
)

// Envelope frames every message on the wire: the protocol generation, the
// message type, and the SHA-256 of the body — the same integrity discipline
// as campaign checkpoint frames. Open rejects a mismatch on any of the three
// before the body is decoded.
type Envelope struct {
	Protocol int             `json:"protocol"`
	Type     string          `json:"type"`
	Sum      string          `json:"sum"`
	Body     json.RawMessage `json:"body"`
}

// Seal wraps a message body in a checked envelope.
func Seal(typ string, body any) (*Envelope, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding %s: %w", typ, err)
	}
	sum := sha256.Sum256(raw)
	return &Envelope{
		Protocol: ProtocolVersion,
		Type:     typ,
		Sum:      hex.EncodeToString(sum[:]),
		Body:     raw,
	}, nil
}

// Open verifies the envelope's protocol version, type tag, and integrity sum,
// then decodes the body into dst.
func (e *Envelope) Open(typ string, dst any) error {
	if e.Protocol != ProtocolVersion {
		return fmt.Errorf("fleet: protocol %d, want %d", e.Protocol, ProtocolVersion)
	}
	if e.Type != typ {
		return fmt.Errorf("fleet: message type %q, want %q", e.Type, typ)
	}
	sum := sha256.Sum256(e.Body)
	if hex.EncodeToString(sum[:]) != e.Sum {
		return fmt.Errorf("fleet: %s envelope integrity sum mismatch", e.Type)
	}
	if err := json.Unmarshal(e.Body, dst); err != nil {
		return fmt.Errorf("fleet: decoding %s: %w", e.Type, err)
	}
	return nil
}

// JoinRequest introduces a worker. The workload/mode echo lets the
// coordinator reject a worker started against the wrong campaign outright
// (empty strings skip the check — the worker then trusts the join reply).
type JoinRequest struct {
	Pid      int    `json:"pid,omitempty"`
	Workload string `json:"workload,omitempty"`
	Mode     string `json:"mode,omitempty"`
}

// JoinReply assigns the worker its identity and ships the full compute
// configuration plus the current sample store (the replica's starting state).
type JoinReply struct {
	// Worker is the coordinator-assigned id; Shards the shard modulus (the
	// worker's home shard is Worker mod Shards).
	Worker int `json:"worker"`
	Shards int `json:"shards"`
	// Config rebuilds the engine and prover options worker-side.
	Config WorkerConfig `json:"config"`
	// Samples is the coordinator's sample store at join, in insertion order;
	// Version is its length. The replica must preserve the order exactly —
	// prover choice ordering depends on it.
	Samples []SampleRec `json:"samples,omitempty"`
	Version int         `json:"version"`
}

// PollRequest asks for work. Version is the worker's replica store length, so
// the coordinator can ship exactly the missing delta with the next task.
// Gauges piggybacks the worker's self-reported metrics; the coordinator
// republishes them as fleet.worker.<id>.<key> gauges on /statusz.
type PollRequest struct {
	Worker  int              `json:"worker"`
	Version int              `json:"version"`
	Gauges  map[string]int64 `json:"gauges,omitempty"`
}

// Poll operations.
const (
	OpTask   = "task"   // a task is attached
	OpWait   = "wait"   // no work right now; poll again after WaitNanos
	OpRetire = "retire" // the campaign is over; exit cleanly
)

// PollReply carries one of three operations. With OpTask, Samples holds the
// store delta from the worker's reported version up to the task's pinned
// version, in insertion order.
type PollReply struct {
	Op        string      `json:"op"`
	Task      *TaskRec    `json:"task,omitempty"`
	Samples   []SampleRec `json:"samples,omitempty"`
	WaitNanos int64       `json:"wait_nanos,omitempty"`
}

// Task kinds.
const (
	TaskExec  = "exec"
	TaskProve = "prove"
	TaskSolve = "solve"
)

// TaskRec is one unit of dispatched compute.
type TaskRec struct {
	ID   uint64 `json:"id"`
	Kind string `json:"kind"`
	// Version pins the sample-store length the task must be computed
	// against. Binding for prove tasks (the worker refuses a version it
	// cannot reach); advisory for exec and solve, whose semantics never read
	// the store.
	Version int `json:"version"`
	// Shard is the owning shard (search.ShardOf of the driving input); a
	// worker serving a task outside its home shard is a steal.
	Shard int `json:"shard"`
	// Input is the vector to execute (TaskExec).
	Input []int64 `json:"input,omitempty"`
	// Funcs are the function-valued inputs of the execution in canonical
	// textual form, one per function parameter ("" = the default function);
	// nil for first-order programs (TaskExec).
	Funcs []string `json:"funcs,omitempty"`
	// Alt is the target formula (TaskProve, TaskSolve).
	Alt *sym.ExprRec `json:"alt,omitempty"`
}

// ResultRequest posts one finished task. Exactly one of Exec/Prove/Solve is
// set, matching the task kind.
type ResultRequest struct {
	Worker   int             `json:"worker"`
	Task     uint64          `json:"task"`
	DurNanos int64           `json:"dur_nanos,omitempty"`
	Exec     *ExecResultRec  `json:"exec,omitempty"`
	Prove    *ProveResultRec `json:"prove,omitempty"`
	Solve    *SolveResultRec `json:"solve,omitempty"`
}

// ResultReply acknowledges a posted result. Duplicate marks a result for a
// task that was already completed (first result wins; the coordinator drops
// and counts the rest — re-leased tasks make duplicates normal, not errors).
type ResultReply struct {
	OK        bool `json:"ok"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// SampleRec is one IOF store entry on the wire (same shape as the sym
// package's persistent sample format).
type SampleRec struct {
	Fn    string  `json:"fn"`
	Arity int     `json:"arity"`
	Args  []int64 `json:"args"`
	Out   int64   `json:"out"`
	// Input marks a sample of a function-valued input (callback) symbol, so
	// the decoder resolves it through InputFuncSym. Only per-execution
	// callback samples carry it; shared-store entries are never input-valued.
	Input bool `json:"input,omitempty"`
}

// ConstraintRec is one path-constraint conjunct of a shipped execution.
type ConstraintRec struct {
	Expr             *sym.ExprRec `json:"expr"`
	IsConcretization bool         `json:"conc,omitempty"`
	EventIndex       int          `json:"ev"`
	Pos              mini.Pos     `json:"pos"`
}

// ExecResultRec is a completed execution: the concrete result, the path
// constraint, the imprecision accounting, and the samples the run newly
// observed (the worker overlay's local entries, in observation order). A
// Panicked record carries nothing else — the run is dropped and accounted
// exactly like a local executor panic.
type ExecResultRec struct {
	Panicked        bool            `json:"panicked,omitempty"`
	Result          *mini.Result    `json:"result,omitempty"`
	PC              []ConstraintRec `json:"pc,omitempty"`
	Incomplete      bool            `json:"incomplete,omitempty"`
	Concretizations int             `json:"concretizations,omitempty"`
	UFApps          int             `json:"uf_apps,omitempty"`
	NewSamples      int             `json:"new_samples,omitempty"`
	Samples         []SampleRec     `json:"samples,omitempty"`
	// CallbackSamples are the input–output pairs observed for callback
	// applications during the run, in observation order. They stay private to
	// the execution (the coordinator rebuilds the per-execution store from
	// them for callback-target proofs) and never enter the shared store.
	CallbackSamples []SampleRec `json:"cb_samples,omitempty"`
}

// ProveResultRec is a validity-proof verdict: the outcome in
// fol.Outcome.String() form, the proved core strategy when the outcome is
// proved, and whether the proof panicked and was recovered.
type ProveResultRec struct {
	Outcome  string           `json:"outcome"`
	Strategy *fol.StrategyRec `json:"strategy,omitempty"`
	Panicked bool             `json:"panicked,omitempty"`
}

// SolveResultRec is a satisfiability verdict: the status in
// smt.Status.String() form and the model when satisfiable.
type SolveResultRec struct {
	Status string     `json:"status"`
	Model  *smt.Model `json:"model,omitempty"`
}
