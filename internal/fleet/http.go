package fleet

// HTTP plumbing shared by the coordinator handlers and the worker client:
// every exchange is a POST whose request and response bodies are sealed
// Envelopes. Transport errors and envelope violations are kept distinct from
// application-level refusals (non-200 statuses with a plain-text reason).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// maxBodyBytes bounds any single message body (requests and replies). The
// largest legitimate payloads — a join reply carrying a full sample store, an
// exec result carrying a long path constraint — are well under this.
const maxBodyBytes = 64 << 20

// readEnvelope decodes and verifies a sealed request body, writing the HTTP
// error itself (and returning false) on any violation.
func readEnvelope(w http.ResponseWriter, r *http.Request, typ string, dst any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	var env Envelope
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&env); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("malformed envelope: %v", err))
		return false
	}
	if err := env.Open(typ, dst); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return false
	}
	return true
}

// writeEnvelope seals and writes a reply body.
func writeEnvelope(w http.ResponseWriter, typ string, body any) {
	env, err := Seal(typ, body)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(env)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	http.Error(w, msg, code)
}

// client is the worker side of the exchange: seal, POST, verify, open.
type client struct {
	base string
	http *http.Client
}

func newClient(coordinator string, timeout time.Duration) *client {
	return &client{
		base: strings.TrimRight(coordinator, "/"),
		http: &http.Client{Timeout: timeout},
	}
}

// statusError is an application-level refusal from the coordinator (non-200
// with a reason), as opposed to a transport failure.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("fleet: coordinator refused (%d): %s", e.code, e.msg)
}

// roundTrip POSTs a sealed request to path and opens the sealed reply.
func (c *client) roundTrip(path, reqType string, req any, replyType string, reply any) error {
	env, err := Seal(reqType, req)
	if err != nil {
		return err
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("fleet: encoding %s envelope: %w", reqType, err)
	}
	resp, err := c.http.Post(c.base+path, "application/json", strings.NewReader(string(raw)))
	if err != nil {
		return fmt.Errorf("fleet: %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("fleet: reading %s reply: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return &statusError{code: resp.StatusCode, msg: strings.TrimSpace(string(body))}
	}
	var renv Envelope
	if err := json.Unmarshal(body, &renv); err != nil {
		return fmt.Errorf("fleet: malformed %s reply envelope: %w", path, err)
	}
	return renv.Open(replyType, reply)
}
