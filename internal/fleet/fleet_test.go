package fleet_test

import (
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/fleet"
	"hotg/internal/lexapp"
	"hotg/internal/search"
)

// mustCanonical renders the deterministic projection of a search's stats.
func mustCanonical(t *testing.T, st *search.Stats) string {
	t.Helper()
	b, err := st.Canonical()
	if err != nil {
		t.Fatalf("Stats.Canonical: %v", err)
	}
	return string(b)
}

// plainRun is the single-process baseline every fleet run must reproduce.
func plainRun(t *testing.T, w *lexapp.Workload, opts search.Options) *search.Stats {
	t.Helper()
	if opts.Seeds == nil {
		opts.Seeds = w.Seeds
	}
	if opts.Bounds == nil {
		opts.Bounds = w.Bounds
	}
	opts.Workers = 1
	return search.Run(concolic.New(w.Build(), concolic.ModeHigherOrder), opts)
}

// startFleet builds a coordinator over a fresh engine, serves it on a test
// HTTP server, and starts n in-process workers. The returned wait function
// blocks until every worker has exited and returns their errors.
func startFleet(t *testing.T, w *lexapp.Workload, n int) (*fleet.Coordinator, *httptest.Server, func() []error) {
	t.Helper()
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	coord := fleet.NewCoordinator(eng, fleet.CoordinatorOptions{
		Workload:     w.Name,
		Shards:       n,
		Bounds:       w.Bounds,
		LeaseTimeout: 250 * time.Millisecond,
	})
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs[slot] = fleet.RunWorker(fleet.WorkerOptions{
				Coordinator: srv.URL,
				JoinTimeout: 5 * time.Second,
			})
		}(i)
	}
	return coord, srv, func() []error { wg.Wait(); return errs }
}

// TestFleetDeterminism is the tentpole acceptance test: for the paper
// workloads, a fleet of any size produces canonical stats bit-identical to
// the single-process search, and every worker retires cleanly when the
// budget is exhausted.
func TestFleetDeterminism(t *testing.T) {
	cases := []struct {
		workload string
		opts     search.Options
	}{
		{"foo", search.Options{MaxRuns: 60}},
		{"bar", search.Options{MaxRuns: 60}},
		{"kstep-2", search.Options{MaxRuns: 60, MaxMultiStep: 4}},
		{"lexer", search.Options{MaxRuns: 60}},
	}
	for _, tc := range cases {
		w, ok := lexapp.Get(tc.workload)
		if !ok {
			t.Fatalf("workload %q not registered", tc.workload)
		}
		want := mustCanonical(t, plainRun(t, w, tc.opts))
		for _, n := range []int{1, 2, 4} {
			coord, _, wait := startFleet(t, w, n)
			opts := tc.opts
			opts.Seeds, opts.Bounds, opts.Workers = w.Seeds, w.Bounds, 1
			st := coord.Run(opts)
			if st.DispatchError != "" {
				t.Fatalf("%s fleet=%d: dispatch error: %s", tc.workload, n, st.DispatchError)
			}
			if got := mustCanonical(t, st); got != want {
				t.Errorf("%s fleet=%d: canonical stats diverged:\nsingle-process: %s\nfleet:          %s",
					tc.workload, n, want, got)
			}
			for i, err := range wait() {
				if err != nil {
					t.Errorf("%s fleet=%d: worker %d did not retire cleanly: %v", tc.workload, n, i, err)
				}
			}
		}
	}
}

// TestFleetSurvivesKilledWorker is the kill -9 drill at the protocol level:
// one of two workers reaches the coordinator through a proxy that is torn
// down mid-run (connections die without any goodbye, exactly like SIGKILL).
// The coordinator must finish via lease expiry — reassigning the dead
// worker's tasks to the survivor or absorbing them locally — with canonical
// stats identical to the single-process run: nothing lost, nothing doubled.
func TestFleetSurvivesKilledWorker(t *testing.T) {
	w, ok := lexapp.Get("lexer")
	if !ok {
		t.Fatal("workload lexer not registered")
	}
	opts := search.Options{MaxRuns: 60}
	want := mustCanonical(t, plainRun(t, w, opts))

	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	coord := fleet.NewCoordinator(eng, fleet.CoordinatorOptions{
		Workload:     w.Name,
		Shards:       2,
		Bounds:       w.Bounds,
		LeaseTimeout: 150 * time.Millisecond,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// The victim's only route to the coordinator: a reverse proxy we can
	// yank. Counting forwarded requests lets the test kill it only after the
	// victim has joined and actually holds work.
	target, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var forwarded atomic.Int64
	rp := httputil.NewSingleHostReverseProxy(target)
	proxy := httptest.NewServer(httpCountWrap(&forwarded, rp))
	defer proxy.Close()

	var wg sync.WaitGroup
	var survivorErr, victimErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		survivorErr = fleet.RunWorker(fleet.WorkerOptions{
			Coordinator: srv.URL, JoinTimeout: 5 * time.Second,
		})
	}()
	go func() {
		defer wg.Done()
		victimErr = fleet.RunWorker(fleet.WorkerOptions{
			Coordinator: proxy.URL, JoinTimeout: time.Second,
		})
	}()
	go func() {
		// Kill the victim's link once it has joined and polled a few times.
		for forwarded.Load() < 5 {
			time.Sleep(10 * time.Millisecond)
		}
		proxy.CloseClientConnections()
		proxy.Close()
	}()

	runOpts := opts
	runOpts.Seeds, runOpts.Bounds, runOpts.Workers = w.Seeds, w.Bounds, 1
	st := coord.Run(runOpts)
	if st.DispatchError != "" {
		t.Fatalf("dispatch error with a killed worker: %s", st.DispatchError)
	}
	if got := mustCanonical(t, st); got != want {
		t.Errorf("killed worker changed the trajectory:\nsingle-process: %s\nfleet:          %s", want, got)
	}
	wg.Wait()
	if survivorErr != nil {
		t.Errorf("surviving worker did not retire cleanly: %v", survivorErr)
	}
	if victimErr == nil {
		t.Error("victim worker exited nil despite its link being severed")
	}
}

// TestFleetLocalFallbackOnly: a coordinator with zero workers must still
// complete the search (every task absorbed locally) with identical canonical
// stats — the degenerate fleet is just a slower single process.
func TestFleetLocalFallbackOnly(t *testing.T) {
	w, ok := lexapp.Get("foo")
	if !ok {
		t.Fatal("workload foo not registered")
	}
	opts := search.Options{MaxRuns: 40}
	want := mustCanonical(t, plainRun(t, w, opts))
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	coord := fleet.NewCoordinator(eng, fleet.CoordinatorOptions{
		Workload: w.Name, Shards: 2, Bounds: w.Bounds,
		LeaseTimeout: 50 * time.Millisecond,
	})
	runOpts := opts
	runOpts.Seeds, runOpts.Bounds, runOpts.Workers = w.Seeds, w.Bounds, 1
	st := coord.Run(runOpts)
	if st.DispatchError != "" {
		t.Fatalf("dispatch error with no workers: %s", st.DispatchError)
	}
	if got := mustCanonical(t, st); got != want {
		t.Errorf("workerless fleet diverged:\nsingle-process: %s\nfleet: %s", want, got)
	}
}
