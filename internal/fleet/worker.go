package fleet

import (
	"fmt"
	"net/http"
	"os"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/fol"
	"hotg/internal/lexapp"
	"hotg/internal/obs"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// WorkerOptions configures one fleet worker process.
type WorkerOptions struct {
	// Coordinator is the base URL of the coordinator's HTTP surface,
	// e.g. "http://127.0.0.1:8700".
	Coordinator string
	// Workload and Mode, when non-empty, are echoed in the join request so a
	// coordinator running a different campaign refuses the worker at join
	// time instead of feeding it alien tasks.
	Workload string
	Mode     string
	// JoinTimeout bounds the initial join retry loop (default 15s) — the
	// window in which a worker started before its coordinator keeps trying.
	JoinTimeout time.Duration
	// RequestTimeout bounds each HTTP exchange (default 60s; result posts
	// carry whole executions, so keep it generous).
	RequestTimeout time.Duration
	// Obs receives the worker-local counters (nil disables). The same
	// numbers are piggybacked on every poll for the coordinator's /statusz.
	Obs *obs.Obs
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.JoinTimeout <= 0 {
		o.JoinTimeout = 15 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 60 * time.Second
	}
	return o
}

// worker is the run state of one fleet worker: its identity, its rebuilt
// engine, and its sample-store replica (the engine's own store).
type worker struct {
	opts   WorkerOptions
	client *client
	obs    *obs.Obs

	id        int
	shards    int
	cfg       WorkerConfig
	eng       *concolic.Engine
	varBounds map[int]smt.Bound

	// Self-reported load figures, piggybacked on polls.
	served map[string]int64
}

// RunWorker joins the fleet at the coordinator URL and serves tasks until the
// coordinator retires it (returns nil) or becomes unreachable past the retry
// horizon (returns the last error). It is the entire lifecycle of one worker
// process; cmd/hotg-fleet calls nothing else in worker mode.
//
// The replica discipline is the load-bearing part: the worker's sample store
// starts as the coordinator's store at join and advances ONLY by the deltas
// the coordinator attaches to tasks — never by the worker's own observations.
// Executions run on a throwaway overlay whose local samples are shipped back
// raw; the coordinator merges them in canonical batch order and the replica
// sees them again, in final order, in a later delta. This keeps every
// replica's insertion order a prefix of the coordinator's, which is exactly
// the property the prover's determinism needs.
func RunWorker(opts WorkerOptions) error {
	opts = opts.withDefaults()
	w := &worker{
		opts:   opts,
		client: newClient(opts.Coordinator, opts.RequestTimeout),
		obs:    opts.Obs,
		served: make(map[string]int64),
	}
	if err := w.join(); err != nil {
		return err
	}
	return w.serve()
}

// join introduces the worker, retrying until JoinTimeout (the coordinator may
// not be listening yet), then rebuilds the engine from the returned config.
func (w *worker) join() error {
	req := &JoinRequest{Pid: os.Getpid(), Workload: w.opts.Workload, Mode: w.opts.Mode}
	var reply JoinReply
	deadline := time.Now().Add(w.opts.JoinTimeout)
	for {
		err := w.client.roundTrip("/fleet/join", MsgJoinRequest, req, MsgJoinReply, &reply)
		if err == nil {
			break
		}
		if _, refused := err.(*statusError); refused || time.Now().After(deadline) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return w.install(reply)
}

// install adopts a join reply: identity, config, engine, replica.
func (w *worker) install(reply JoinReply) error {
	w.id, w.shards, w.cfg = reply.Worker, reply.Shards, reply.Config
	if w.shards < 1 {
		w.shards = 1
	}
	if w.eng == nil {
		wl, ok := lexapp.Get(w.cfg.Workload)
		if !ok {
			return fmt.Errorf("fleet: coordinator runs unknown workload %q", w.cfg.Workload)
		}
		mode, err := ParseMode(w.cfg.Mode)
		if err != nil {
			return err
		}
		w.eng = concolic.New(wl.Build(), mode)
		w.varBounds = make(map[int]smt.Bound)
		for i, v := range w.eng.InputVars {
			if i < len(w.cfg.Bounds) {
				b := w.cfg.Bounds[i]
				if b.HasLo || b.HasHi {
					w.varBounds[v.ID] = b
				}
			}
		}
	}
	// On a rejoin the replica is a strict prefix of the join snapshot, so
	// applying the full snapshot dedups the prefix and appends the rest in
	// order — the replica invariant survives losing our identity.
	smps, err := decodeSamples(reply.Samples, w.eng.Pool)
	if err != nil {
		return err
	}
	if err := applySamples(w.eng.Samples, smps); err != nil {
		return err
	}
	w.count("joins")
	return nil
}

// serve is the poll loop: ask for work, do it, post it, repeat.
func (w *worker) serve() error {
	failures := 0
	maxFailures := int(w.opts.JoinTimeout/time.Second) + 5
	for {
		req := &PollRequest{Worker: w.id, Version: w.eng.Samples.Len(), Gauges: w.gauges()}
		var reply PollReply
		err := w.client.roundTrip("/fleet/poll", MsgPollRequest, req, MsgPollReply, &reply)
		if err != nil {
			if se, ok := err.(*statusError); ok && se.code == http.StatusGone {
				// The coordinator forgot us (it restarted, or we were
				// partitioned past the lease horizon): rejoin under a fresh
				// identity, keeping the replica.
				if jerr := w.join(); jerr != nil {
					return jerr
				}
				continue
			}
			failures++
			if failures > maxFailures {
				return fmt.Errorf("fleet: coordinator unreachable: %w", err)
			}
			time.Sleep(time.Second)
			continue
		}
		failures = 0
		switch reply.Op {
		case OpRetire:
			w.count("retired")
			return nil
		case OpWait:
			wait := time.Duration(reply.WaitNanos)
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			time.Sleep(wait)
		case OpTask:
			if reply.Task == nil {
				return fmt.Errorf("fleet: task op with no task")
			}
			w.handle(reply.Task, reply.Samples)
		default:
			return fmt.Errorf("fleet: unknown poll op %q", reply.Op)
		}
	}
}

// handle computes one task and posts the result. Failures that only this
// task cares about (version refusal, decode error) drop the task — its lease
// expires and the coordinator reassigns or absorbs it.
func (w *worker) handle(t *TaskRec, delta []SampleRec) {
	smps, err := decodeSamples(delta, w.eng.Pool)
	if err == nil {
		err = applySamples(w.eng.Samples, smps)
	}
	if err != nil {
		w.count("bad_deltas")
		return
	}
	if t.Kind == TaskProve && w.eng.Samples.Len() != t.Version {
		// A proof against the wrong store version would be answered
		// deterministically — and wrongly. Refuse; the lease will expire.
		w.count("version_refusals")
		return
	}
	if t.Shard != w.id%w.shards {
		w.count("steals_served")
	}
	t0 := time.Now()
	req := &ResultRequest{Worker: w.id, Task: t.ID}
	switch t.Kind {
	case TaskExec:
		funcVals, err := parseFuncs(t.Funcs)
		if err != nil {
			w.count("bad_tasks")
			return
		}
		overlay := sym.NewOverlay(w.eng.Samples)
		ex, panicked := runShielded(w.eng.Clone(overlay), t.Input, funcVals)
		rec, err := encodeExec(ex, overlay.Local(), panicked)
		if err != nil {
			w.count("encode_errors")
			return
		}
		req.Exec = rec
		w.count("tasks_exec")
	case TaskProve:
		alt, err := sym.DecodeExpr(t.Alt, sym.NewResolver(w.eng.Pool, w.eng.InputVars))
		if err != nil {
			w.count("bad_tasks")
			return
		}
		st, outcome, panicked := proveShielded(alt, w.eng.Samples, w.proveOptions())
		rec, err := encodeProve(st, outcome, panicked)
		if err != nil {
			w.count("encode_errors")
			return
		}
		req.Prove = rec
		w.count("tasks_prove")
	case TaskSolve:
		alt, err := sym.DecodeExpr(t.Alt, sym.NewResolver(w.eng.Pool, w.eng.InputVars))
		if err != nil {
			w.count("bad_tasks")
			return
		}
		status, model := smt.Solve(alt, smt.Options{
			Pool: w.eng.Pool, VarBounds: w.varBounds,
			Deadline: deadlineAfter(w.cfg.ProofTimeout()),
		})
		req.Solve = encodeSolve(status, model)
		w.count("tasks_solve")
	default:
		w.count("bad_tasks")
		return
	}
	req.DurNanos = int64(time.Since(t0))
	w.post(req)
}

// proveOptions mirrors the coordinator's local-fallback prover options — same
// knobs, rebuilt from the wire config.
func (w *worker) proveOptions() fol.Options {
	return fol.Options{
		Pool:             w.eng.Pool,
		VarBounds:        w.varBounds,
		NoRefute:         !w.cfg.Refute,
		MaxNodes:         w.cfg.ProverNodes,
		NoIncrementalSMT: w.cfg.NoIncrementalSMT,
		Deadline:         deadlineAfter(w.cfg.ProofTimeout()),
	}
}

// post ships a result with a short retry loop; a refused result (the
// coordinator rejected the payload) is dropped, the lease recovers it.
func (w *worker) post(req *ResultRequest) {
	var reply ResultReply
	for attempt := 0; attempt < 5; attempt++ {
		err := w.client.roundTrip("/fleet/result", MsgResultRequest, req, MsgResultReply, &reply)
		if err == nil {
			if reply.Duplicate {
				w.count("dup_results")
			}
			return
		}
		if _, refused := err.(*statusError); refused {
			w.count("refused_results")
			return
		}
		time.Sleep(200 * time.Millisecond)
	}
	w.count("lost_results")
}

// count bumps a worker-local figure and its obs counter.
func (w *worker) count(key string) {
	w.served[key]++
	w.obs.Counter("fleet.worker." + key).Add(1)
}

// gauges snapshots the worker's self-reported figures for the poll piggyback.
func (w *worker) gauges() map[string]int64 {
	out := make(map[string]int64, len(w.served)+1)
	for k, v := range w.served {
		out[k] = v
	}
	if w.eng != nil {
		out["replica_version"] = int64(w.eng.Samples.Len())
	}
	return out
}
