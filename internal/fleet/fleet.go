// Package fleet shards a directed search across processes: one coordinator
// owns the canonical search (queues, dedup sets, proof cache, sample store,
// statistics — exactly the single-process searcher) and a fleet of workers
// computes its batches — test executions, validity proofs, satisfiability
// checks — over a stdlib net/http + JSON protocol.
//
// The design inverts the usual "partition the state" instinct: sharding the
// *frontier* across processes would make the trajectory depend on the
// partition, and the load-bearing invariant of the whole system is that
// canonical stats are bit-identical at any scale. Instead the coordinator
// keeps the canonical trajectory and ships only pure compute: every task is a
// function of its request plus a pinned sample-store version, so where it
// runs cannot matter. Shard ownership (by input-key hash, search.ShardOf)
// decides which worker is *offered* a task first; an idle worker steals work
// from other shards, a crashed worker's leases expire and re-enqueue, and a
// task nobody serves falls back to local computation on the coordinator — all
// of it invisible to the merged result. DESIGN.md §13 gives the wire-level
// spec and the determinism and failure arguments; docs/OPERATIONS.md is the
// operator's view.
//
// Message envelopes are versioned and integrity-summed like campaign
// checkpoints: every HTTP body is an Envelope{protocol, type, sha256(body),
// body}, and both sides reject sum or version mismatches before decoding.
package fleet

import (
	"fmt"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/smt"
)

// ProtocolVersion is the wire-protocol generation. A coordinator rejects
// envelopes from any other generation, so a mixed-version fleet fails at
// join time instead of corrupting a campaign.
const ProtocolVersion = 1

// WorkerConfig is everything a worker needs to rebuild the coordinator's
// compute environment bit-identically: the workload (rebuilt from the
// registry by name), the mode, and every option the executors and provers
// read. It travels in the join reply.
type WorkerConfig struct {
	// Workload is the lexapp registry name of the program under test.
	Workload string `json:"workload"`
	// Mode is the concolic mode, in Mode.String() form.
	Mode string `json:"mode"`
	// Bounds are the per-input domains, aligned with the program shape.
	Bounds []smt.Bound `json:"bounds,omitempty"`
	// Refute enables the invalidity prover (higher-order mode).
	Refute bool `json:"refute,omitempty"`
	// ProverNodes caps the validity-proof search per target.
	ProverNodes int `json:"prover_nodes,omitempty"`
	// NoIncrementalSMT disables solver sessions in the prover, as in
	// search.Options (results are bit-identical either way).
	NoIncrementalSMT bool `json:"no_incremental_smt,omitempty"`
	// ProofTimeoutNanos is the per-proof wall-clock deadline (0 = none).
	ProofTimeoutNanos int64 `json:"proof_timeout_nanos,omitempty"`
}

// ProofTimeout returns the per-proof deadline as a duration.
func (c WorkerConfig) ProofTimeout() time.Duration {
	return time.Duration(c.ProofTimeoutNanos)
}

// ParseMode inverts concolic.Mode.String for the wire config.
func ParseMode(s string) (concolic.Mode, error) {
	for _, m := range []concolic.Mode{
		concolic.ModeStatic, concolic.ModeUnsound, concolic.ModeSound,
		concolic.ModeSoundDelayed, concolic.ModeHigherOrder,
	} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("fleet: unknown mode %q", s)
}
