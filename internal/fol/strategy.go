package fol

import (
	"fmt"
	"strings"

	"hotg/internal/sym"
)

// Def is one step of a test strategy: the input variable Var is assigned the
// ground term Term, which may mention uninterpreted applications (whose
// arguments are constants or earlier-defined variables).
type Def struct {
	Var  *sym.Var
	Term *sym.Sum
}

func (d Def) String() string { return fmt.Sprintf("%s := %v", d.Var, d.Term) }

// Strategy is a constructive validity proof of POST(pc), read as a recipe for
// building a concrete test input (Section 4.2: "fix y, then set x to the
// value h(y)").
type Strategy struct {
	Defs []Def
	// Proof lists the derivation steps that established validity, in
	// application order — a readable certificate of the proof.
	Proof []string
}

func (s *Strategy) String() string {
	parts := make([]string, len(s.Defs))
	for i, d := range s.Defs {
		parts[i] = d.String()
	}
	return strings.Join(parts, "; ")
}

// Probe is a request for an uninterpreted-function sample that the strategy
// needs but the IOF store does not contain: the trigger for multi-step test
// generation (Example 7 — "a new intermediate test is necessary to learn the
// value of h(10)").
type Probe struct {
	Fn   *sym.Func
	Args []int64
}

func (p Probe) String() string {
	parts := make([]string, len(p.Args))
	for i, a := range p.Args {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return fmt.Sprintf("%s(%s)=?", p.Fn.Name, strings.Join(parts, ","))
}

// Resolution is the result of interpreting a strategy against a sample store.
type Resolution struct {
	// Values holds the concrete value of every resolved variable, keyed by
	// variable ID.
	Values map[int]int64
	// Probes lists the missing samples blocking full resolution.
	Probes []Probe
	// Complete reports that every strategy variable was resolved.
	Complete bool
}

// Resolve interprets the strategy under the sample store, computing concrete
// values for as many defined variables as possible and collecting probes for
// applications whose arguments are known but whose value has never been
// observed. Definitions may reference one another in any order; resolution
// iterates to a fixpoint.
func (s *Strategy) Resolve(samples *sym.SampleStore) *Resolution {
	res := &Resolution{Values: make(map[int]int64)}
	resolved := make([]bool, len(s.Defs))
	for {
		progress := false
		for i, d := range s.Defs {
			if resolved[i] {
				continue
			}
			v, ok := resolveSum(d.Term, res.Values, samples, nil)
			if ok {
				res.Values[d.Var.ID] = v
				resolved[i] = true
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Collect probes from the still-unresolved definitions.
	seen := map[string]bool{}
	for i, d := range s.Defs {
		if resolved[i] {
			continue
		}
		var probes []Probe
		resolveSum(d.Term, res.Values, samples, &probes)
		for _, p := range probes {
			k := p.String()
			if !seen[k] {
				seen[k] = true
				res.Probes = append(res.Probes, p)
			}
		}
	}
	res.Complete = true
	for _, r := range resolved {
		if !r {
			res.Complete = false
			break
		}
	}
	return res
}

// resolveSum evaluates a strategy term. When probes is non-nil, applications
// with fully-known arguments but no recorded sample are appended to it.
func resolveSum(s *sym.Sum, values map[int]int64, samples *sym.SampleStore, probes *[]Probe) (int64, bool) {
	total := s.Const
	ok := true
	for _, t := range s.Terms {
		switch a := t.Atom.(type) {
		case *sym.Var:
			v, have := values[a.ID]
			if !have {
				ok = false
				continue
			}
			total += t.Coef * v
		case *sym.Apply:
			args := make([]int64, len(a.Args))
			argsOK := true
			for i, arg := range a.Args {
				v, have := resolveSum(arg, values, samples, probes)
				if !have {
					argsOK = false
					break
				}
				args[i] = v
			}
			if !argsOK {
				ok = false
				continue
			}
			out, have := samples.Lookup(a.Fn, args)
			if !have {
				if probes != nil {
					*probes = append(*probes, Probe{Fn: a.Fn, Args: args})
				}
				ok = false
				continue
			}
			total += t.Coef * out
		}
	}
	return total, ok
}

// Holds evaluates pc under the given variable values, interpreting
// uninterpreted functions by the sample store. The second result lists the
// samples that would be needed to finish evaluation; when it is non-empty the
// first result is meaningless.
func Holds(pc sym.Expr, values map[int]int64, samples *sym.SampleStore) (bool, []Probe) {
	var probes []Probe
	env := sym.Env{
		Vars: values,
		Fn: func(f *sym.Func, args []int64) (int64, bool) {
			if v, ok := samples.Lookup(f, args); ok {
				return v, true
			}
			probes = append(probes, Probe{Fn: f, Args: args})
			return 0, false
		},
	}
	v, err := sym.EvalBool(pc, env)
	if err != nil {
		return false, probes
	}
	return v, nil
}
