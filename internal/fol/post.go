// Package fol implements the higher-order half of higher-order test
// generation (Sections 4.2–4.3 and 5.3 of the paper): given an (alternate)
// path constraint pc over input variables X and uninterpreted functions F,
// and the IOF store of recorded samples A, it attempts a constructive
// validity proof of the first-order formula
//
//	POST(pc) = ∃X : A ⇒ pc        (every f ∈ F implicitly ∀-quantified)
//
// A successful proof is returned as a *test strategy*: an ordered list of
// definitions x_i := t_i whose right-hand sides are ground terms over
// constants and uninterpreted applications. Interpreting a strategy against
// the sample store yields concrete input values — or *probes*, requests for
// samples that have not been observed yet, which drive the multi-step test
// generation of Example 7.
//
// The prover is deliberately constructive, exactly as test generation
// requires ("we have no choice": satisfying assignments invent functions,
// Section 4.2). Three proof rules are used, each sound for every
// interpretation of F consistent with A:
//
//	definitional   a conjunct c·x ⋈ R with c ∈ {−1,+1} and x ∉ R defines
//	               x := term(R); valid because x is existential.
//	euf            f(s̄) = f(t̄) is implied by s̄ = t̄ (functionality).
//	sample         f(ā) may be replaced by v when (ā, v) ∈ A, binding ā to
//	               the sampled argument tuple — the Section 7 preprocessing
//	               generalized to arbitrary constraint shapes and to sample
//	               pairs (Example 6).
//
// Failure to find a proof is reported as Unknown; a separate refutation pass
// (invalid.go) tries to show the formula outright invalid by exhibiting a
// completion of the samples under which pc is unsatisfiable.
package fol

import (
	"fmt"
	"sort"
	"strings"

	"hotg/internal/sym"
)

// Antecedent builds the formula A: the conjunction of equality constraints
// c = f(args) for every recorded sample (Section 4.3).
func Antecedent(samples *sym.SampleStore) sym.Expr {
	all := samples.All()
	parts := make([]sym.Expr, 0, len(all))
	for _, s := range all {
		args := make([]*sym.Sum, len(s.Args))
		for i, a := range s.Args {
			args[i] = sym.Int(a)
		}
		parts = append(parts, sym.Eq(sym.ApplyTerm(s.Fn, args...), sym.Int(s.Out)))
	}
	return sym.AndExpr(parts...)
}

// PostString renders POST(pc) in the paper's notation, for reports and
// examples: "∀f,g ∃x,y: (f(0)=0 ∧ f(1)=1) ⇒ (pc)". Only samples of functions
// actually occurring in pc are shown.
func PostString(pc sym.Expr, samples *sym.SampleStore) string {
	fns := map[*sym.Func]bool{}
	for _, a := range sym.Applies(pc) {
		fns[a.Fn] = true
	}
	var fnNames []string
	for f := range fns {
		fnNames = append(fnNames, f.Name)
	}
	sort.Strings(fnNames)

	vars := sym.Vars(pc)
	varNames := make([]string, len(vars))
	for i, v := range vars {
		varNames[i] = v.Name
	}

	var ante []string
	for _, s := range samples.All() {
		if fns[s.Fn] {
			ante = append(ante, s.String())
		}
	}

	var b strings.Builder
	if len(fnNames) > 0 {
		fmt.Fprintf(&b, "∀%s ", strings.Join(fnNames, ","))
	}
	if len(varNames) > 0 {
		fmt.Fprintf(&b, "∃%s: ", strings.Join(varNames, ","))
	}
	if len(ante) > 0 {
		fmt.Fprintf(&b, "(%s) ⇒ ", strings.Join(ante, " ∧ "))
	}
	fmt.Fprintf(&b, "(%v)", pc)
	return b.String()
}

// Outcome classifies a Prove result.
type Outcome int

const (
	// OutcomeUnknown: no constructive proof was found within budget (the
	// formula may still be valid).
	OutcomeUnknown Outcome = iota
	// OutcomeProved: a strategy (constructive validity proof) was found.
	OutcomeProved
	// OutcomeInvalid: a sample-consistent completion of F falsifies
	// ∃X: A ⇒ pc, so the formula is invalid and no test exists for all F.
	OutcomeInvalid
	// OutcomeTimeout: the wall-clock deadline (Options.Deadline) expired or
	// the context (Options.Ctx) was cancelled before the proof search ended.
	// Like OutcomeUnknown it is inconclusive, but the two are distinguished
	// so the search can degrade on budget events specifically (DESIGN.md §8).
	OutcomeTimeout
)

func (o Outcome) String() string {
	switch o {
	case OutcomeProved:
		return "proved"
	case OutcomeInvalid:
		return "invalid"
	case OutcomeTimeout:
		return "timeout"
	default:
		return "unknown"
	}
}
