package fol

import (
	"time"

	"hotg/internal/smt"
	"hotg/internal/sym"
)

// Refute tries to prove POST(pc) = ∃X: A ⇒ pc *invalid* by exhibiting one
// interpretation of the unknown functions — consistent with every recorded
// sample — under which pc is unsatisfiable. It returns true when such a
// completion is found.
//
// Each candidate interpretation agrees with the IOF store on sampled points
// and falls back to a simple default elsewhere: the constant functions 0 and
// 1, the first-argument projection, its successor, and its negated successor.
// These are exactly the counter-interpretations the paper reaches for
// ("consider the function h such that h(x)=0 for all x", Example 4; a
// successor-style h refutes Example 3's x = h(y) ∧ y = h(x)).
func Refute(pc sym.Expr, samples *sym.SampleStore, opts Options) bool {
	o := opts.Obs
	var t0 time.Time
	if o.Enabled() {
		t0 = time.Now()
		defer func() {
			o.Histogram("fol.refute.ns").Observe(int64(time.Since(t0)))
			o.Counter("fol.refute.calls").Inc()
		}()
	}
	if !sym.HasApply(pc) {
		if opts.SMT != nil && !opts.NoIncrementalSMT {
			st, _ := opts.SMT.SolveUnder(pc, opts.Ctx, opts.Deadline)
			return st == smt.StatusUnsat
		}
		st, _ := smt.Solve(pc, smt.Options{
			Pool: opts.Pool, VarBounds: opts.VarBounds, Obs: opts.Obs,
			Ctx: opts.Ctx, Deadline: opts.Deadline,
		})
		return st == smt.StatusUnsat
	}
	defaults := []func(args []*sym.Sum) *sym.Sum{
		func([]*sym.Sum) *sym.Sum { return sym.Int(0) },
		func([]*sym.Sum) *sym.Sum { return sym.Int(1) },
		func(a []*sym.Sum) *sym.Sum { return a[0] },
		func(a []*sym.Sum) *sym.Sum { return sym.AddSum(a[0], sym.Int(1)) },
		func(a []*sym.Sum) *sym.Sum { return sym.SubSum(sym.Int(-1), a[0]) },
	}
	if opts.NoIncrementalSMT {
		for _, def := range defaults {
			if completionUnsat(pc, samples, def, opts) {
				return true
			}
		}
		return false
	}
	return refuteIncremental(pc, samples, defaults, opts)
}

// refuteIncremental decides the five candidate completions on one warm
// solver session instead of five independent Solve calls. The per-application
// side conditions — the case split over recorded samples — are identical for
// every default, so they are asserted once in the session base; only the
// default's value on unsampled points differs per candidate. Factoring that
// out needs one twist: the else-branch binds the stand-in v to a fresh
// variable ev ("the default's value here") instead of to default(args), and
// each candidate's frame then asserts ev = default(args). The framed
// conjunction is equisatisfiable with completionUnsat's formula: substituting
// default(args) for ev maps models in either direction, since ev is fresh and
// occurs nowhere else. The shared base is where the warm session pays off:
// theory lemmas minimized out of one candidate's conflicts mention only base
// literals, survive the pop, and prune every later candidate's search —
// refutation is the prover's dominant SMT cost (profile: ~94% of E5 solve
// time was completionUnsat's core minimization before this path existed).
func refuteIncremental(pc sym.Expr, samples *sym.SampleStore, defaults []func([]*sym.Sum) *sym.Sum, opts Options) bool {
	pool := opts.Pool
	if pool == nil {
		pool = &sym.Pool{}
	}
	type appElse struct {
		ev   *sym.Var
		args []*sym.Sum
	}
	var side []sym.Expr
	var elses []appElse
	seen := map[string]*sym.Var{}
	replaced := sym.RewriteApplies(pc, func(a *sym.Apply) (*sym.Sum, bool) {
		key := a.Key()
		if v, ok := seen[key]; ok {
			return sym.VarTerm(v), true
		}
		v := pool.NewVar("$" + a.Fn.Name)
		seen[key] = v
		ev := pool.NewVar("$else_" + a.Fn.Name)

		smps := samples.ForFunc(a.Fn)
		var cases []sym.Expr
		var notSampled []sym.Expr
		for _, s := range smps {
			match := make([]sym.Expr, len(a.Args))
			for i := range a.Args {
				match[i] = sym.Eq(a.Args[i], sym.Int(s.Args[i]))
			}
			cases = append(cases, sym.AndExpr(append(match, sym.Eq(sym.VarTerm(v), sym.Int(s.Out)))...))
			notSampled = append(notSampled, sym.NotExpr(sym.AndExpr(match...)))
		}
		elseCase := sym.AndExpr(append(notSampled, sym.Eq(sym.VarTerm(v), sym.VarTerm(ev)))...)
		side = append(side, sym.OrExpr(append(cases, elseCase)...))
		elses = append(elses, appElse{ev: ev, args: a.Args})
		return sym.VarTerm(v), true
	})

	ses := smt.NewContext(smt.ContextOptions{
		Options: smt.Options{
			Pool: pool, VarBounds: opts.VarBounds, Obs: opts.Obs,
			Ctx: opts.Ctx, Deadline: opts.Deadline,
		},
		Retain: true,
	})
	ses.Assert(sym.AndExpr(append(side, replaced)...))
	for _, def := range defaults {
		ses.Push()
		for _, ae := range elses {
			ses.Assert(sym.Eq(sym.VarTerm(ae.ev), def(ae.args)))
		}
		st, _ := ses.Check()
		ses.Pop()
		if st == smt.StatusUnsat {
			return true
		}
	}
	return false
}

// completionUnsat checks whether pc is unsatisfiable when every unknown
// function f is interpreted as "its samples, else default(args)".
func completionUnsat(pc sym.Expr, samples *sym.SampleStore, def func([]*sym.Sum) *sym.Sum, opts Options) bool {
	pool := opts.Pool
	if pool == nil {
		pool = &sym.Pool{}
	}
	var side []sym.Expr
	// Replace applications innermost-first by fresh variables constrained to
	// the completed interpretation.
	seen := map[string]*sym.Var{}
	replaced := sym.RewriteApplies(pc, func(a *sym.Apply) (*sym.Sum, bool) {
		key := a.Key()
		if v, ok := seen[key]; ok {
			return sym.VarTerm(v), true
		}
		v := pool.NewVar("$" + a.Fn.Name)
		seen[key] = v

		smps := samples.ForFunc(a.Fn)
		var cases []sym.Expr
		var notSampled []sym.Expr
		for _, s := range smps {
			match := make([]sym.Expr, len(a.Args))
			for i := range a.Args {
				match[i] = sym.Eq(a.Args[i], sym.Int(s.Args[i]))
			}
			cases = append(cases, sym.AndExpr(append(match, sym.Eq(sym.VarTerm(v), sym.Int(s.Out)))...))
			notSampled = append(notSampled, sym.NotExpr(sym.AndExpr(match...)))
		}
		elseCase := sym.AndExpr(append(notSampled, sym.Eq(sym.VarTerm(v), def(a.Args)))...)
		side = append(side, sym.OrExpr(append(cases, elseCase)...))
		return sym.VarTerm(v), true
	})

	formula := sym.AndExpr(append(side, replaced)...)
	st, _ := smt.Solve(formula, smt.Options{
		Pool: pool, VarBounds: opts.VarBounds, Obs: opts.Obs,
		Ctx: opts.Ctx, Deadline: opts.Deadline,
	})
	return st == smt.StatusUnsat
}
