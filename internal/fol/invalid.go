package fol

import (
	"time"

	"hotg/internal/smt"
	"hotg/internal/sym"
)

// Refute tries to prove POST(pc) = ∃X: A ⇒ pc *invalid* by exhibiting one
// interpretation of the unknown functions — consistent with every recorded
// sample — under which pc is unsatisfiable. It returns true when such a
// completion is found.
//
// Each candidate interpretation agrees with the IOF store on sampled points
// and falls back to a simple default elsewhere: the constant functions 0 and
// 1, the first-argument projection, its successor, and its negated successor.
// These are exactly the counter-interpretations the paper reaches for
// ("consider the function h such that h(x)=0 for all x", Example 4; a
// successor-style h refutes Example 3's x = h(y) ∧ y = h(x)).
func Refute(pc sym.Expr, samples *sym.SampleStore, opts Options) bool {
	o := opts.Obs
	var t0 time.Time
	if o.Enabled() {
		t0 = time.Now()
		defer func() {
			o.Histogram("fol.refute.ns").Observe(int64(time.Since(t0)))
			o.Counter("fol.refute.calls").Inc()
		}()
	}
	if !sym.HasApply(pc) {
		st, _ := smt.Solve(pc, smt.Options{
			Pool: opts.Pool, VarBounds: opts.VarBounds, Obs: opts.Obs,
			Ctx: opts.Ctx, Deadline: opts.Deadline,
		})
		return st == smt.StatusUnsat
	}
	defaults := []func(args []*sym.Sum) *sym.Sum{
		func([]*sym.Sum) *sym.Sum { return sym.Int(0) },
		func([]*sym.Sum) *sym.Sum { return sym.Int(1) },
		func(a []*sym.Sum) *sym.Sum { return a[0] },
		func(a []*sym.Sum) *sym.Sum { return sym.AddSum(a[0], sym.Int(1)) },
		func(a []*sym.Sum) *sym.Sum { return sym.SubSum(sym.Int(-1), a[0]) },
	}
	for _, def := range defaults {
		if completionUnsat(pc, samples, def, opts) {
			return true
		}
	}
	return false
}

// completionUnsat checks whether pc is unsatisfiable when every unknown
// function f is interpreted as "its samples, else default(args)".
func completionUnsat(pc sym.Expr, samples *sym.SampleStore, def func([]*sym.Sum) *sym.Sum, opts Options) bool {
	pool := opts.Pool
	if pool == nil {
		pool = &sym.Pool{}
	}
	var side []sym.Expr
	// Replace applications innermost-first by fresh variables constrained to
	// the completed interpretation.
	seen := map[string]*sym.Var{}
	replaced := sym.RewriteApplies(pc, func(a *sym.Apply) (*sym.Sum, bool) {
		key := a.Key()
		if v, ok := seen[key]; ok {
			return sym.VarTerm(v), true
		}
		v := pool.NewVar("$" + a.Fn.Name)
		seen[key] = v

		smps := samples.ForFunc(a.Fn)
		var cases []sym.Expr
		var notSampled []sym.Expr
		for _, s := range smps {
			match := make([]sym.Expr, len(a.Args))
			for i := range a.Args {
				match[i] = sym.Eq(a.Args[i], sym.Int(s.Args[i]))
			}
			cases = append(cases, sym.AndExpr(append(match, sym.Eq(sym.VarTerm(v), sym.Int(s.Out)))...))
			notSampled = append(notSampled, sym.NotExpr(sym.AndExpr(match...)))
		}
		elseCase := sym.AndExpr(append(notSampled, sym.Eq(sym.VarTerm(v), def(a.Args)))...)
		side = append(side, sym.OrExpr(append(cases, elseCase)...))
		return sym.VarTerm(v), true
	})

	formula := sym.AndExpr(append(side, replaced)...)
	st, _ := smt.Solve(formula, smt.Options{
		Pool: pool, VarBounds: opts.VarBounds, Obs: opts.Obs,
		Ctx: opts.Ctx, Deadline: opts.Deadline,
	})
	return st == smt.StatusUnsat
}
