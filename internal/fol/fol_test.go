package fol

import (
	"strings"
	"testing"

	"hotg/internal/smt"
	"hotg/internal/sym"
)

// TestObscureStrategy reproduces Section 4.2: ∃x,y: x = h(y) is valid with
// strategy "fix y, set x := h(y)".
func TestObscureStrategy(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{42}, 567)

	pc := sym.Eq(sym.VarTerm(x), sym.ApplyTerm(h, sym.VarTerm(y)))
	// "Fix y" at its current concrete value 42, per the paper's strategy.
	st, out := Prove(pc, samples, Options{Pool: &p, Fallback: map[int]int64{y.ID: 42}})
	if out != OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	res := st.Resolve(samples)
	if !res.Complete {
		t.Fatalf("resolution incomplete: %+v", res)
	}
	if res.Values[x.ID] != 567 || res.Values[y.ID] != 42 {
		t.Fatalf("witness = %v, want x=567 y=42", res.Values)
	}
	// The witness must actually satisfy the constraint under the samples.
	holds, probes := Holds(pc, res.Values, samples)
	if len(probes) != 0 || !holds {
		t.Fatalf("witness check: holds=%v probes=%v values=%v", holds, probes, res.Values)
	}
}

// TestExample4SamplesNeeded reproduces Example 4: ∃x,y: h(x) > 0 ∧ y = 10 is
// invalid without samples (h ≡ 0 refutes it) but proved with h(1)=5 in the
// antecedent.
func TestExample4SamplesNeeded(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	pc := sym.AndExpr(
		sym.Gt(sym.ApplyTerm(h, sym.VarTerm(x)), sym.Int(0)),
		sym.Eq(sym.VarTerm(y), sym.Int(10)),
	)

	empty := sym.NewSampleStore()
	if _, out := Prove(pc, empty, Options{Pool: &p}); out != OutcomeInvalid {
		t.Fatalf("without samples: outcome = %v, want invalid", out)
	}

	samples := sym.NewSampleStore()
	samples.Add(h, []int64{1}, 5)
	st, out := Prove(pc, samples, Options{Pool: &p})
	if out != OutcomeProved {
		t.Fatalf("with samples: outcome = %v", out)
	}
	res := st.Resolve(samples)
	if !res.Complete {
		t.Fatalf("resolution: %+v", res)
	}
	if res.Values[x.ID] != 1 || res.Values[y.ID] != 10 {
		t.Fatalf("witness = %v, want x=1 y=10", res.Values)
	}
}

// TestExample5EUF reproduces Example 5: ∃x,y: f(x) = f(y) is valid via the
// theory of equality with uninterpreted functions (strategy: set x = y).
func TestExample5EUF(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	f := p.FuncSym("f", 1)
	pc := sym.Eq(sym.ApplyTerm(f, sym.VarTerm(x)), sym.ApplyTerm(f, sym.VarTerm(y)))

	st, out := Prove(pc, sym.NewSampleStore(), Options{Pool: &p})
	if out != OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	res := st.Resolve(sym.NewSampleStore())
	if !res.Complete {
		t.Fatalf("resolution: %+v", res)
	}
	if res.Values[x.ID] != res.Values[y.ID] {
		t.Fatalf("strategy must set x = y, got %v", res.Values)
	}
}

// TestExample6SamplePairs reproduces Example 6: ∃x,y: f(x) = f(y)+1 is
// invalid alone (f ≡ 0) but valid given samples f(0)=0, f(1)=1 with witness
// x=1, y=0.
func TestExample6SamplePairs(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	f := p.FuncSym("f", 1)
	pc := sym.Eq(
		sym.ApplyTerm(f, sym.VarTerm(x)),
		sym.AddSum(sym.ApplyTerm(f, sym.VarTerm(y)), sym.Int(1)),
	)

	if _, out := Prove(pc, sym.NewSampleStore(), Options{Pool: &p}); out != OutcomeInvalid {
		t.Fatalf("without samples: outcome = %v, want invalid", out)
	}

	samples := sym.NewSampleStore()
	samples.Add(f, []int64{0}, 0)
	samples.Add(f, []int64{1}, 1)
	st, out := Prove(pc, samples, Options{Pool: &p})
	if out != OutcomeProved {
		t.Fatalf("with samples: outcome = %v", out)
	}
	res := st.Resolve(samples)
	if !res.Complete || res.Values[x.ID] != 1 || res.Values[y.ID] != 0 {
		t.Fatalf("witness = %+v, want x=1 y=0", res)
	}
}

// TestExample3BarInvalid reproduces Example 3: ∃x,y: x = h(y) ∧ y = h(x) is
// invalid — higher-order test generation correctly generates no test, where
// unsound concretization would produce a divergent one.
func TestExample3BarInvalid(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{42}, 567)
	samples.Add(h, []int64{33}, 123)

	pc := sym.AndExpr(
		sym.Eq(sym.VarTerm(x), sym.ApplyTerm(h, sym.VarTerm(y))),
		sym.Eq(sym.VarTerm(y), sym.ApplyTerm(h, sym.VarTerm(x))),
	)
	_, out := Prove(pc, samples, Options{Pool: &p})
	if out != OutcomeInvalid {
		t.Fatalf("outcome = %v, want invalid", out)
	}
}

// TestExample7MultiStep reproduces Example 7: proving
// ∃x,y: (h(42)=567) ⇒ (x = h(y) ∧ y = 10) yields the strategy
// "y := 10, x := h(10)", whose resolution requires the unsampled value h(10):
// a probe, answered by an intermediate test, after which resolution finishes.
func TestExample7MultiStep(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{42}, 567)

	pc := sym.AndExpr(
		sym.Eq(sym.VarTerm(x), sym.ApplyTerm(h, sym.VarTerm(y))),
		sym.Eq(sym.VarTerm(y), sym.Int(10)),
	)
	st, out := Prove(pc, samples, Options{Pool: &p})
	if out != OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	res := st.Resolve(samples)
	if res.Complete {
		t.Fatalf("resolution should be blocked on h(10): %+v", res)
	}
	if res.Values[y.ID] != 10 {
		t.Fatalf("y should be resolved to 10: %v", res.Values)
	}
	if len(res.Probes) != 1 || res.Probes[0].Fn != h || res.Probes[0].Args[0] != 10 {
		t.Fatalf("probes = %v, want h(10)", res.Probes)
	}

	// The intermediate test ran and h(10) was observed to be 66.
	samples.Add(h, []int64{10}, 66)
	res = st.Resolve(samples)
	if !res.Complete || res.Values[x.ID] != 66 || res.Values[y.ID] != 10 {
		t.Fatalf("after probe: %+v, want x=66 y=10", res)
	}
}

// TestNegatedEquality checks the definitional rule on disequalities: flipping
// x == hash(y) needs a witness with x ≠ h(y) for every h.
func TestNegatedEquality(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{42}, 567)

	pc := sym.Ne(sym.VarTerm(x), sym.ApplyTerm(h, sym.VarTerm(y)))
	st, out := Prove(pc, samples, Options{Pool: &p, Fallback: map[int]int64{y.ID: 42}})
	if out != OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	res := st.Resolve(samples)
	if !res.Complete {
		t.Fatalf("resolution: %+v (strategy %v)", res, st)
	}
	holds, probes := Holds(pc, res.Values, samples)
	if len(probes) != 0 {
		t.Fatalf("probes = %v", probes)
	}
	if !holds {
		t.Fatalf("witness does not satisfy pc: %v", res.Values)
	}
}

// TestInequalityWithApply checks Le constraints against applications.
func TestInequalityWithApply(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{3}, 700)

	// x ≥ h(y) + 5
	pc := sym.Ge(sym.VarTerm(x), sym.AddSum(sym.ApplyTerm(h, sym.VarTerm(y)), sym.Int(5)))
	st, out := Prove(pc, samples, Options{Pool: &p, Fallback: map[int]int64{y.ID: 3}})
	if out != OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	res := st.Resolve(samples)
	if !res.Complete {
		t.Fatalf("resolution: %+v (strategy %v)", res, st)
	}
	holds, _ := Holds(pc, res.Values, samples)
	if !holds {
		t.Fatalf("witness fails: %v", res.Values)
	}
}

// TestHashInversion is the Section 7 core move: h(c0,c1) = K with a sample
// for the keyword bytes inverts the hash.
func TestHashInversion(t *testing.T) {
	var p sym.Pool
	c0, c1 := p.NewVar("c0"), p.NewVar("c1")
	h := p.FuncSym("hashstr", 2)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{'i', 'f'}, 52)
	samples.Add(h, []int64{'d', 'o'}, 99)

	pc := sym.Eq(sym.ApplyTerm(h, sym.VarTerm(c0), sym.VarTerm(c1)), sym.Int(52))
	st, out := Prove(pc, samples, Options{Pool: &p})
	if out != OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	res := st.Resolve(samples)
	if !res.Complete || res.Values[c0.ID] != 'i' || res.Values[c1.ID] != 'f' {
		t.Fatalf("inversion = %+v, want (i,f)", res)
	}

	// A target value no keyword hashes to: the completion "samples, else 0"
	// has no preimage of 1000, so the post-processed formula is invalid and
	// no test is generated — the correct higher-order verdict.
	pcMiss := sym.Eq(sym.ApplyTerm(h, sym.VarTerm(c0), sym.VarTerm(c1)), sym.Int(1000))
	if _, out := Prove(pcMiss, samples, Options{Pool: &p}); out != OutcomeInvalid {
		t.Fatalf("missing preimage: outcome = %v, want invalid", out)
	}
}

// TestHashCollisions checks that inversion enumerates colliding samples
// ("to handle hash collisions", Section 7).
func TestHashCollisions(t *testing.T) {
	var p sym.Pool
	c := p.NewVar("c")
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{7}, 52)
	samples.Add(h, []int64{9}, 52)

	// h(c) = 52 ∧ c ≠ 7 forces the second preimage.
	pc := sym.AndExpr(
		sym.Eq(sym.ApplyTerm(h, sym.VarTerm(c)), sym.Int(52)),
		sym.Ne(sym.VarTerm(c), sym.Int(7)),
	)
	st, out := Prove(pc, samples, Options{Pool: &p})
	if out != OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	res := st.Resolve(samples)
	if !res.Complete || res.Values[c.ID] != 9 {
		t.Fatalf("witness = %+v, want c=9", res)
	}
}

func TestVarBoundsRespected(t *testing.T) {
	var p sym.Pool
	x := p.NewVar("x")
	pc := sym.Ge(sym.VarTerm(x), sym.Int(10))
	_, out := Prove(pc, sym.NewSampleStore(), Options{
		Pool:      &p,
		VarBounds: map[int]smt.Bound{x.ID: {Lo: 0, Hi: 5, HasLo: true, HasHi: true}},
	})
	if out != OutcomeInvalid {
		t.Fatalf("outcome = %v, want invalid (pure formula unsat in domain)", out)
	}
}

func TestPostString(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{42}, 567)
	pc := sym.Eq(sym.VarTerm(x), sym.ApplyTerm(h, sym.VarTerm(y)))
	s := PostString(pc, samples)
	for _, want := range []string{"∀h", "∃x,y", "h(42)=567", "⇒"} {
		if !strings.Contains(s, want) {
			t.Fatalf("PostString = %q, missing %q", s, want)
		}
	}
}

func TestAntecedent(t *testing.T) {
	var p sym.Pool
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{1}, 5)
	samples.Add(h, []int64{2}, 6)
	a := Antecedent(samples)
	cs := sym.Conjuncts(a)
	if len(cs) != 2 {
		t.Fatalf("antecedent = %v", a)
	}
	env := sym.Env{Fn: samples.FnEval}
	ok, err := sym.EvalBool(a, env)
	if err != nil || !ok {
		t.Fatalf("antecedent must hold under its own samples: %v %v", ok, err)
	}
}

func TestHoldsProbes(t *testing.T) {
	var p sym.Pool
	x := p.NewVar("x")
	h := p.FuncSym("h", 1)
	pc := sym.Eq(sym.ApplyTerm(h, sym.VarTerm(x)), sym.Int(5))
	_, probes := Holds(pc, map[int]int64{x.ID: 3}, sym.NewSampleStore())
	if len(probes) != 1 || probes[0].Args[0] != 3 {
		t.Fatalf("probes = %v", probes)
	}
}

func TestStrategyString(t *testing.T) {
	var p sym.Pool
	x := p.NewVar("x")
	h := p.FuncSym("h", 1)
	st := &Strategy{Defs: []Def{
		{Var: x, Term: sym.ApplyTerm(h, sym.Int(10))},
	}}
	if got := st.String(); got != "x := h(10)" {
		t.Fatalf("String = %q", got)
	}
}

// TestDisjunction checks the prover on explicit disjunctions (as produced by
// the Section 7 preprocessing encoding).
func TestDisjunction(t *testing.T) {
	var p sym.Pool
	x := p.NewVar("x")
	pc := sym.AndExpr(
		sym.OrExpr(sym.Eq(sym.VarTerm(x), sym.Int(3)), sym.Eq(sym.VarTerm(x), sym.Int(8))),
		sym.Ne(sym.VarTerm(x), sym.Int(3)),
	)
	st, out := Prove(pc, sym.NewSampleStore(), Options{Pool: &p})
	if out != OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	res := st.Resolve(sym.NewSampleStore())
	if !res.Complete || res.Values[x.ID] != 8 {
		t.Fatalf("witness = %+v, want x=8", res)
	}
}

// TestNestedApplies checks strategies through nested applications.
func TestNestedApplies(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{5}, 7)
	samples.Add(h, []int64{7}, 11)

	// x = h(h(y)): definitional on x after grounding y via sample choice,
	// or x := h(h(y)) with y free — either way resolution must succeed for
	// some strategy; we force y=5 to exercise nested resolution.
	pc := sym.AndExpr(
		sym.Eq(sym.VarTerm(x), sym.ApplyTerm(h, sym.ApplyTerm(h, sym.VarTerm(y)))),
		sym.Eq(sym.VarTerm(y), sym.Int(5)),
	)
	st, out := Prove(pc, samples, Options{Pool: &p})
	if out != OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	res := st.Resolve(samples)
	if !res.Complete || res.Values[x.ID] != 11 {
		t.Fatalf("witness = %+v, want x=11", res)
	}
}

// TestRefuteNotFooledBySatisfiable: a satisfiable pure formula must not be
// reported invalid.
func TestRefuteNotFooledBySatisfiable(t *testing.T) {
	var p sym.Pool
	x := p.NewVar("x")
	pc := sym.Eq(sym.VarTerm(x), sym.Int(5))
	if Refute(pc, sym.NewSampleStore(), Options{Pool: &p}) {
		t.Fatal("satisfiable formula refuted")
	}
}
