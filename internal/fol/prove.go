package fol

import (
	"context"
	"fmt"
	"time"

	"hotg/internal/faults"
	"hotg/internal/obs"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// Defensive resource ceilings, applied regardless of caller options so a
// pathological formula cannot exhaust memory: HardMaxNodes clamps MaxNodes,
// and hardMaxConjuncts fails any proof state whose goal grew past it (EUF and
// sample steps append equations; on adversarial inputs that growth compounds).
const (
	// HardMaxNodes is the absolute cap on proof-search nodes per Prove call,
	// applied even when Options.MaxNodes asks for more.
	HardMaxNodes = 1 << 20
	// hardMaxConjuncts bounds the width of any intermediate proof goal.
	hardMaxConjuncts = 1 << 14
)

// Options configures Prove.
type Options struct {
	// VarBounds restricts input domains (keyed by variable ID); the bounds
	// are enforced on the residual arithmetic solve and checked on resolved
	// strategy values by callers.
	VarBounds map[int]smt.Bound
	// MaxNodes caps the backtracking search (default 20000).
	MaxNodes int
	// MaxDepth caps proof depth (default 64).
	MaxDepth int
	// Pool supplies fresh variables for the refutation pass and for
	// residual solving; optional (a private pool is used when nil).
	Pool *sym.Pool
	// NoRefute skips the invalidity check (used by ablations).
	NoRefute bool
	// Fallback supplies concrete values (typically the current test input)
	// for variables the proof leaves unconstrained — the paper's "fix y"
	// step. Unconstrained variables without a fallback default to 0.
	Fallback map[int]int64
	// Obs, when non-nil, collects prover metrics (fol.prove.* latency and
	// outcome counters, proof-search node usage) and is forwarded to the
	// residual SMT solves. Never affects prover results.
	Obs *obs.Obs
	// Ctx, when non-nil, cancels the proof search cooperatively: the
	// backtracking loop polls it and unwinds with OutcomeTimeout.
	Ctx context.Context
	// Deadline, when non-zero, is an absolute wall-clock cutoff for this
	// call; past it the proof search unwinds with OutcomeTimeout. The
	// deadline is forwarded to the residual SMT solves and the refutation
	// pass, so one Prove call never outlives it by more than a poll interval.
	Deadline time.Time
	// SMT, when non-nil, is an incremental solver session used for the
	// residual arithmetic solves. When nil (and NoIncrementalSMT is unset)
	// ProveCore creates a private session for the call, so repeated residual
	// formulas within one proof search are answered from the session memo.
	// Callers that share a session across calls must confine it to one
	// goroutine.
	SMT *smt.Context
	// NoIncrementalSMT routes every solver query through one-shot smt.Solve
	// calls, bypassing sessions entirely. It exists for ablations and for
	// the equivalence gate: results must be bit-identical with it on or off.
	NoIncrementalSMT bool
}

// Prove attempts a constructive validity proof of POST(pc) = ∃X: A ⇒ pc,
// where A is the sample store's antecedent. On OutcomeProved the returned
// strategy builds witness inputs; on OutcomeInvalid no test input works for
// every interpretation of the unknown functions; OutcomeUnknown means the
// proof search was exhausted without a verdict.
func Prove(pc sym.Expr, samples *sym.SampleStore, opts Options) (*Strategy, Outcome) {
	st, out := ProveCore(pc, samples, opts)
	if out == OutcomeProved {
		st = FillFallback(st, pc, opts.Fallback)
	}
	return st, out
}

// ProveCore is Prove without the final fallback-filling step: on
// OutcomeProved the returned strategy defines only the variables the proof
// itself constrained. Because the fallback values are the only caller-specific
// part of a proof, core strategies are reusable across callers — the parallel
// search memoizes them keyed by the formula and the sample-store version, and
// applies FillFallback per target.
func ProveCore(pc sym.Expr, samples *sym.SampleStore, opts Options) (*Strategy, Outcome) {
	if f := faults.Active(); f != nil {
		if f.FireProvePanic() {
			panic("faults: injected prover panic")
		}
		if f.FireProveTimeout() {
			return nil, OutcomeTimeout
		}
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 20000
	}
	if opts.MaxNodes > HardMaxNodes {
		opts.MaxNodes = HardMaxNodes
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 64
	}
	if opts.Pool == nil {
		opts.Pool = &sym.Pool{}
	}
	if opts.SMT == nil && !opts.NoIncrementalSMT {
		// Private per-call session: sequential use, so the result memo and
		// Ackermann-expansion reuse cannot introduce scheduling dependence.
		opts.SMT = smt.NewContext(smt.ContextOptions{
			Options:  smt.Options{Pool: opts.Pool, VarBounds: opts.VarBounds, Obs: opts.Obs},
			MemoSize: 512,
		})
	}
	o := opts.Obs
	var t0 time.Time
	if o.Enabled() {
		t0 = time.Now()
	}
	p := &prover{samples: samples, opts: opts, budget: opts.MaxNodes}
	if p.expired() { // an already-passed deadline or cancelled ctx: no search
		return nil, OutcomeTimeout
	}
	st := p.search(sym.Conjuncts(pc), nil, 0)
	out := OutcomeUnknown
	switch {
	case st != nil:
		out = OutcomeProved
	case p.timedOut:
		// No refutation attempt: the budget is spent, and OutcomeInvalid
		// must only ever come from a completed refutation.
		out = OutcomeTimeout
	case !opts.NoRefute && Refute(pc, samples, opts):
		out = OutcomeInvalid
	}
	if o.Enabled() {
		o.Histogram("fol.prove.ns").Observe(int64(time.Since(t0)))
		o.Histogram("fol.prove.nodes").Observe(int64(opts.MaxNodes - p.budget))
		o.Counter("fol.prove.calls").Inc()
		o.Counter("fol.prove." + out.String()).Inc()
	}
	return st, out
}

// FillFallback "fixes" every variable of pc the proof left unconstrained at
// its fallback value (or 0), so the strategy resolves to a full input — the
// paper's "fix y" step. The input strategy is not modified; the result shares
// its Proof and core Defs.
func FillFallback(st *Strategy, pc sym.Expr, fallback map[int]int64) *Strategy {
	defined := map[int]bool{}
	for _, d := range st.Defs {
		defined[d.Var.ID] = true
	}
	out := &Strategy{Defs: append([]Def(nil), st.Defs...), Proof: st.Proof}
	for _, v := range sym.Vars(pc) {
		if !defined[v.ID] {
			out.Defs = append(out.Defs, Def{Var: v, Term: sym.Int(fallback[v.ID])})
			defined[v.ID] = true
		}
	}
	return out
}

type prover struct {
	samples *sym.SampleStore
	opts    Options
	budget  int
	// polls counts searchT entries for deadline sampling (the clock is read
	// every 64 nodes, not every node); timedOut latches once the deadline or
	// context fires, so the whole backtrack stack unwinds without re-reading
	// the clock.
	polls    int
	timedOut bool
}

// expired reports (and latches) whether the call's deadline has passed or its
// context is done. With neither configured it is always false.
func (p *prover) expired() bool {
	if p.timedOut {
		return true
	}
	if !p.opts.Deadline.IsZero() && !time.Now().Before(p.opts.Deadline) {
		p.timedOut = true
	} else if p.opts.Ctx != nil && p.opts.Ctx.Err() != nil {
		p.timedOut = true
	}
	return p.timedOut
}

// choice is one applicable proof step.
type choice struct {
	// definitional step:
	defVar  *sym.Var
	defTerm *sym.Sum
	dropIdx int // conjunct consumed by the definition
	// euf step:
	eufIdx int
	eufEqs []sym.Expr
	// sample step:
	sampApp *sym.Apply
	sampVal sym.Sample
	kind    int // 0=definitional 1=euf 2=sample 3=disjunct
	disjIdx int
	disj    sym.Expr
}

// tstep is one recorded proof step. Steps are kept symbolic while the search
// runs and rendered to strings only when a branch actually succeeds, keeping
// fmt off the backtracking hot path (failed branches — the vast majority —
// never pay for formatting).
type tstep struct {
	unit bool // unit-propagation step (def), else a choice step (ch)
	def  Def
	ch   choice
}

// String renders the step exactly as the eager trace used to.
func (t tstep) String() string {
	if t.unit {
		return fmt.Sprintf("unit: %s", t.def)
	}
	return t.ch.describe()
}

// search explores proof steps depth-first, returning a strategy or nil.
func (p *prover) search(conjuncts []sym.Expr, defs []Def, depth int) *Strategy {
	return p.searchT(conjuncts, defs, nil, depth)
}

func (p *prover) searchT(conjuncts []sym.Expr, defs []Def, trace []tstep, depth int) *Strategy {
	if p.budget <= 0 || depth > p.opts.MaxDepth {
		return nil
	}
	// Defensive width guard (independent of the node budget): EUF and sample
	// steps append equations, so an adversarial goal can grow without ever
	// burning many nodes. Past the hard cap this branch simply fails.
	if len(conjuncts) > hardMaxConjuncts {
		return nil
	}
	if p.timedOut {
		return nil
	}
	p.polls++
	if p.polls&63 == 0 && p.expired() {
		return nil
	}
	p.budget--

	before := len(defs)
	conjuncts, defs, ok := p.simplify(conjuncts, defs)
	if !ok {
		return nil
	}
	for _, d := range defs[before:] {
		trace = append(trace, tstep{unit: true, def: d})
	}

	// Find the first conjunct that still mentions an uninterpreted
	// application or is a disjunction; if none, finish arithmetically.
	target := -1
	for i, c := range conjuncts {
		if _, isOr := c.(*sym.Or); isOr || sym.HasApply(c) {
			target = i
			break
		}
	}
	if target == -1 {
		return p.finish(conjuncts, defs, trace)
	}

	for _, ch := range p.choices(conjuncts, target) {
		next, ndefs, ok := p.apply(conjuncts, defs, ch)
		if !ok {
			continue
		}
		if st := p.searchT(next, ndefs, append(trace[:len(trace):len(trace)], tstep{ch: ch}), depth+1); st != nil {
			return st
		}
	}
	return nil
}

// describe renders one proof step for the derivation trace.
func (ch choice) describe() string {
	switch ch.kind {
	case 0:
		return fmt.Sprintf("definitional: %s := %v", ch.defVar, ch.defTerm)
	case 1:
		return "euf: unify arguments of equal applications"
	case 2:
		return fmt.Sprintf("sample: bind %v via %v", ch.sampApp, ch.sampVal)
	case 3:
		return fmt.Sprintf("disjunct: case %d", ch.disjIdx+1)
	}
	return "?"
}

// simplify applies sample rewriting of ground applications, constant folding,
// and unit propagation (x = c) to a fixpoint.
func (p *prover) simplify(conjuncts []sym.Expr, defs []Def) ([]sym.Expr, []Def, bool) {
	cs := append([]sym.Expr(nil), conjuncts...)
	ds := append([]Def(nil), defs...)
	for {
		changed := false
		// Ground-application rewriting: f(42) → 567 when sampled.
		for i, c := range cs {
			nc := sym.RewriteApplies(c, func(a *sym.Apply) (*sym.Sum, bool) {
				args := make([]int64, len(a.Args))
				for k, arg := range a.Args {
					v, isC := arg.IsConst()
					if !isC {
						return nil, false
					}
					args[k] = v
				}
				if out, ok := p.samples.Lookup(a.Fn, args); ok {
					return sym.Int(out), true
				}
				return nil, false
			})
			// RewriteApplies returns the original pointer when nothing inside
			// was rewritten, so pointer identity is the change test (no key
			// materialization on the fixpoint loop).
			if nc != c {
				cs[i] = nc
				changed = true
			}
		}
		// Constant folding and unit propagation.
		out := cs[:0]
		var unit *Def
		for _, c := range cs {
			switch e := c.(type) {
			case *sym.Bool:
				if !e.V {
					return nil, nil, false
				}
				changed = true
				continue
			case *sym.Cmp:
				if unit == nil && e.Op == sym.OpEq && !sym.HasApply(e.S) {
					if d, ok := solveForVar(e, sym.OpEq); ok {
						if _, isC := d.Term.IsConst(); isC {
							unit = d
							changed = true
							continue
						}
					}
				}
			}
			out = append(out, c)
		}
		cs = out
		if unit != nil {
			ds = append(ds, *unit)
			binding := map[int]*sym.Sum{unit.Var.ID: unit.Term}
			for i, c := range cs {
				cs[i] = sym.SubstVars(c, binding)
			}
		}
		if !changed {
			return cs, ds, true
		}
	}
}

// solveForVar tries to solve the (normalized) constraint S op 0 for some
// variable with coefficient ±1 that does not occur in the remainder,
// returning the definition that satisfies the constraint for every F:
//
//	Eq: x := −R   Ne: x := −R + 1   Le (coef +1): x := −R   Le (coef −1): x := R
//
// where S = c·x + R.
func solveForVar(c *sym.Cmp, op sym.CmpOp) (*Def, bool) {
	for _, t := range c.S.Terms {
		v, isVar := t.Atom.(*sym.Var)
		if !isVar || (t.Coef != 1 && t.Coef != -1) {
			continue
		}
		r := sym.SubSum(c.S, &sym.Sum{Terms: []sym.Term{t}}) // R = S − c·x
		if sym.OccursVar(r, v.ID) {
			continue
		}
		var term *sym.Sum
		switch op {
		case sym.OpEq:
			// c·x + R = 0 → x = −R/c; with c = ±1: x = −c·R.
			term = sym.ScaleSum(-t.Coef, r)
		case sym.OpNe:
			term = sym.AddSum(sym.ScaleSum(-t.Coef, r), sym.Int(1))
		case sym.OpLe:
			// c·x + R ≤ 0: choosing x = −c·R gives S = 0 ≤ 0.
			term = sym.ScaleSum(-t.Coef, r)
		}
		return &Def{Var: v, Term: term}, true
	}
	return nil, false
}

// choices enumerates the applicable proof steps on conjunct target.
func (p *prover) choices(conjuncts []sym.Expr, target int) []choice {
	var out []choice
	switch c := conjuncts[target].(type) {
	case *sym.Or:
		for i, d := range c.Xs {
			out = append(out, choice{kind: 3, dropIdx: target, disjIdx: i, disj: d})
		}
		return out
	case *sym.Cmp:
		// EUF functionality: f(s̄) − f(t̄) = 0 follows from s̄ = t̄.
		if c.Op == sym.OpEq && len(c.S.Terms) == 2 && c.S.Const == 0 {
			a0, ok0 := c.S.Terms[0].Atom.(*sym.Apply)
			a1, ok1 := c.S.Terms[1].Atom.(*sym.Apply)
			if ok0 && ok1 && a0.Fn == a1.Fn &&
				c.S.Terms[0].Coef+c.S.Terms[1].Coef == 0 &&
				(c.S.Terms[0].Coef == 1 || c.S.Terms[0].Coef == -1) {
				eqs := make([]sym.Expr, len(a0.Args))
				for i := range a0.Args {
					eqs[i] = sym.Eq(a0.Args[i], a1.Args[i])
				}
				out = append(out, choice{kind: 1, eufIdx: target, eufEqs: eqs})
			}
		}
		// Definitional: solve for a ±1-coefficient variable.
		if d, ok := solveForVar(c, c.Op); ok {
			out = append(out, choice{kind: 0, defVar: d.Var, defTerm: d.Term, dropIdx: target})
		}
		// Sample binding: for each application in the conjunct, each
		// recorded sample of its function symbol is a candidate.
		for _, app := range sym.Applies(c) {
			for _, s := range p.samples.ForFunc(app.Fn) {
				out = append(out, choice{kind: 2, sampApp: app, sampVal: s, dropIdx: target})
			}
		}
	}
	return out
}

// apply executes one proof step, returning the new goal state.
func (p *prover) apply(conjuncts []sym.Expr, defs []Def, ch choice) ([]sym.Expr, []Def, bool) {
	switch ch.kind {
	case 0: // definitional
		// Occurs-check against applications: x must not appear inside the
		// defining term at all (solveForVar checked plain variables; applies
		// in R may still hide x in their arguments).
		if sym.OccursVar(ch.defTerm, ch.defVar.ID) {
			return nil, nil, false
		}
		ndefs := append(append([]Def(nil), defs...), Def{Var: ch.defVar, Term: ch.defTerm})
		binding := map[int]*sym.Sum{ch.defVar.ID: ch.defTerm}
		next := make([]sym.Expr, 0, len(conjuncts)-1)
		for i, c := range conjuncts {
			if i == ch.dropIdx {
				continue
			}
			next = append(next, sym.SubstVars(c, binding))
		}
		return next, ndefs, true

	case 1: // euf
		next := make([]sym.Expr, 0, len(conjuncts)+len(ch.eufEqs))
		for i, c := range conjuncts {
			if i == ch.eufIdx {
				continue
			}
			next = append(next, c)
		}
		next = append(next, ch.eufEqs...)
		return next, defs, true

	case 2: // sample binding
		app, s := ch.sampApp, ch.sampVal
		next := make([]sym.Expr, 0, len(conjuncts)+len(app.Args))
		key := app.Key()
		for _, c := range conjuncts {
			next = append(next, sym.RewriteApplies(c, func(a *sym.Apply) (*sym.Sum, bool) {
				if a.Key() == key {
					return sym.Int(s.Out), true
				}
				return nil, false
			}))
		}
		for i, arg := range app.Args {
			next = append(next, sym.Eq(arg, sym.Int(s.Args[i])))
		}
		return next, defs, true

	case 3: // disjunct selection
		next := make([]sym.Expr, 0, len(conjuncts))
		for i, c := range conjuncts {
			if i == ch.dropIdx {
				continue
			}
			next = append(next, c)
		}
		next = append(next, sym.Conjuncts(ch.disj)...)
		return next, defs, true
	}
	return nil, nil, false
}

// finish solves the residual apply-free conjuncts arithmetically and folds
// the model into the strategy.
func (p *prover) finish(conjuncts []sym.Expr, defs []Def, trace []tstep) *Strategy {
	residual := sym.AndExpr(conjuncts...)
	if residual == sym.False {
		return nil
	}
	// The branch succeeded (or is one residual solve away): now it is worth
	// rendering the symbolic trace into the human-readable proof.
	var proof []string
	if len(trace) > 0 {
		proof = make([]string, 0, len(trace))
		for _, t := range trace {
			proof = append(proof, t.String())
		}
	}
	st := &Strategy{Defs: defs, Proof: proof}
	if residual == sym.True {
		return st
	}
	var status smt.Status
	var model *smt.Model
	if p.opts.SMT != nil {
		// The session carries the call's full VarBounds. Restricting them to
		// undefined variables (as the one-shot path below does) is equivalent:
		// defined variables were substituted out of every conjunct, so they
		// cannot occur in the residual, and the solver only consults bounds of
		// variables that occur in the formula.
		status, model = p.opts.SMT.SolveUnder(residual, p.opts.Ctx, p.opts.Deadline)
	} else {
		// Respect bounds only for variables not already defined by the strategy.
		bounds := make(map[int]smt.Bound)
		defined := map[int]bool{}
		for _, d := range defs {
			defined[d.Var.ID] = true
		}
		for id, b := range p.opts.VarBounds {
			if !defined[id] {
				bounds[id] = b
			}
		}
		status, model = smt.Solve(residual, smt.Options{
			Pool: p.opts.Pool, VarBounds: bounds, Obs: p.opts.Obs,
			Ctx: p.opts.Ctx, Deadline: p.opts.Deadline,
		})
	}
	if status != smt.StatusSat {
		return nil
	}
	for _, v := range sym.Vars(residual) {
		if val, ok := model.Vars[v.ID]; ok {
			st.Defs = append(st.Defs, Def{Var: v, Term: sym.Int(val)})
			st.Proof = append(st.Proof, fmt.Sprintf("residual model: %s := %d", v, val))
		}
	}
	return st
}
