package fol

import (
	"fmt"

	"hotg/internal/sym"
)

// This file serializes proved strategies and proof outcomes for the campaign
// subsystem's checkpoints: the search's proof cache and pending multi-step
// continuations persist across process restarts (internal/search.Snapshot),
// so a resumed campaign replays neither the proofs nor the intermediate runs
// that produced them.

// DefRec is the serialized form of one strategy step.
type DefRec struct {
	Var  *sym.VarRec `json:"var"`
	Term *sym.SumRec `json:"term"`
}

// StrategyRec is the serialized form of a *Strategy.
type StrategyRec struct {
	Defs  []DefRec `json:"defs"`
	Proof []string `json:"proof,omitempty"`
}

// EncodeStrategy serializes a strategy. A nil strategy encodes as nil (the
// proof cache stores nil strategies for unproved outcomes).
func EncodeStrategy(st *Strategy) (*StrategyRec, error) {
	if st == nil {
		return nil, nil
	}
	rec := &StrategyRec{Proof: st.Proof}
	for _, d := range st.Defs {
		term, err := sym.EncodeSum(d.Term)
		if err != nil {
			return nil, err
		}
		rec.Defs = append(rec.Defs, DefRec{
			Var:  &sym.VarRec{ID: d.Var.ID, Name: d.Var.Name},
			Term: term,
		})
	}
	return rec, nil
}

// DecodeStrategy rebuilds a strategy, resolving variables and function
// symbols through the resolver. A nil record decodes as nil.
func DecodeStrategy(rec *StrategyRec, r *sym.Resolver) (*Strategy, error) {
	if rec == nil {
		return nil, nil
	}
	st := &Strategy{Proof: rec.Proof}
	for i, d := range rec.Defs {
		if d.Var == nil {
			return nil, fmt.Errorf("fol: strategy def %d has no variable", i)
		}
		term, err := sym.DecodeSum(d.Term, r)
		if err != nil {
			return nil, fmt.Errorf("fol: strategy def %d: %w", i, err)
		}
		v, err := r.DecodeVar(d.Var)
		if err != nil {
			return nil, fmt.Errorf("fol: strategy def %d: %w", i, err)
		}
		st.Defs = append(st.Defs, Def{Var: v, Term: term})
	}
	return st, nil
}

// ParseOutcome inverts Outcome.String, for checkpoint decoding.
func ParseOutcome(s string) (Outcome, bool) {
	for _, o := range []Outcome{OutcomeUnknown, OutcomeProved, OutcomeInvalid, OutcomeTimeout} {
		if o.String() == s {
			return o, true
		}
	}
	return 0, false
}
