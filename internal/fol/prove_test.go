package fol

import (
	"fmt"
	"math/rand"
	"testing"

	"hotg/internal/smt"
	"hotg/internal/sym"
)

// TestBudgetExhaustion: a contrived instance with a huge sample space and an
// unprovable goal must come back unknown (with refutation disabled) instead
// of hanging.
func TestBudgetExhaustion(t *testing.T) {
	var p sym.Pool
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	for i := int64(0); i < 60; i++ {
		samples.Add(h, []int64{i}, i*i%101)
	}
	// h(x)+h(y)+h(z) = 1000 has no solution among the samples (max sum far
	// below) but forces the prover through the sample-binding lattice.
	x, y, z := p.NewVar("x"), p.NewVar("y"), p.NewVar("z")
	pc := sym.Eq(
		sym.AddSum(sym.AddSum(
			sym.ApplyTerm(h, sym.VarTerm(x)),
			sym.ApplyTerm(h, sym.VarTerm(y))),
			sym.ApplyTerm(h, sym.VarTerm(z))),
		sym.Int(1000000),
	)
	_, out := Prove(pc, samples, Options{Pool: &p, MaxNodes: 500, NoRefute: true})
	if out != OutcomeUnknown {
		t.Fatalf("outcome = %v, want unknown under a tiny budget", out)
	}
}

// TestProveTrueAndFalse: degenerate goals.
func TestProveTrueAndFalse(t *testing.T) {
	var p sym.Pool
	st, out := Prove(sym.True, sym.NewSampleStore(), Options{Pool: &p})
	if out != OutcomeProved || len(st.Defs) != 0 {
		t.Fatalf("true: %v %v", out, st)
	}
	if _, out := Prove(sym.False, sym.NewSampleStore(), Options{Pool: &p}); out != OutcomeInvalid {
		t.Fatalf("false: %v", out)
	}
}

// TestMultiArgEUF: functionality over two-argument symbols.
func TestMultiArgEUF(t *testing.T) {
	var p sym.Pool
	x, y, u, v := p.NewVar("x"), p.NewVar("y"), p.NewVar("u"), p.NewVar("v")
	g := p.FuncSym("g", 2)
	// g(x,y) = g(u,v) ∧ x = 3 ∧ v = 8 → strategy u:=3, y:=8 (or x:=u etc.)
	pc := sym.AndExpr(
		sym.Eq(sym.ApplyTerm(g, sym.VarTerm(x), sym.VarTerm(y)), sym.ApplyTerm(g, sym.VarTerm(u), sym.VarTerm(v))),
		sym.Eq(sym.VarTerm(x), sym.Int(3)),
		sym.Eq(sym.VarTerm(v), sym.Int(8)),
	)
	st, out := Prove(pc, sym.NewSampleStore(), Options{Pool: &p})
	if out != OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	res := st.Resolve(sym.NewSampleStore())
	if !res.Complete {
		t.Fatalf("resolution: %+v (%v)", res, st)
	}
	if res.Values[x.ID] != res.Values[u.ID] || res.Values[y.ID] != res.Values[v.ID] {
		t.Fatalf("EUF witness must unify argument-wise: %v", res.Values)
	}
}

// TestSampleBindingAcrossConjuncts: one binding must satisfy several
// constraints at once.
func TestSampleBindingAcrossConjuncts(t *testing.T) {
	var p sym.Pool
	x := p.NewVar("x")
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{2}, 50)
	samples.Add(h, []int64{4}, 70)
	samples.Add(h, []int64{6}, 70)
	// h(x) = 70 ∧ x ≥ 5: only the (6,70) sample fits.
	pc := sym.AndExpr(
		sym.Eq(sym.ApplyTerm(h, sym.VarTerm(x)), sym.Int(70)),
		sym.Ge(sym.VarTerm(x), sym.Int(5)),
	)
	st, out := Prove(pc, samples, Options{Pool: &p})
	if out != OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	res := st.Resolve(samples)
	if !res.Complete || res.Values[x.ID] != 6 {
		t.Fatalf("witness = %+v, want x=6", res)
	}
}

// TestStrategySoundnessProperty: every strategy returned as a proof, when
// resolution completes, must actually satisfy the goal under the samples.
func TestStrategySoundnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for iter := 0; iter < 300; iter++ {
		var p sym.Pool
		vars := []*sym.Var{p.NewVar("x"), p.NewVar("y")}
		h := p.FuncSym("h", 1)
		samples := sym.NewSampleStore()
		for i := 0; i < 4; i++ {
			arg, out := int64(r.Intn(10)), int64(r.Intn(10))
			if _, dup := samples.Lookup(h, []int64{arg}); !dup {
				samples.Add(h, []int64{arg}, out)
			}
		}
		term := func() *sym.Sum {
			switch r.Intn(4) {
			case 0:
				return sym.Int(int64(r.Intn(11) - 5))
			case 1, 2:
				return sym.VarTerm(vars[r.Intn(len(vars))])
			default:
				return sym.ApplyTerm(h, sym.VarTerm(vars[r.Intn(len(vars))]))
			}
		}
		n := 1 + r.Intn(3)
		parts := make([]sym.Expr, 0, n)
		for i := 0; i < n; i++ {
			a, b := term(), term()
			switch r.Intn(3) {
			case 0:
				parts = append(parts, sym.Eq(a, b))
			case 1:
				parts = append(parts, sym.Ne(a, b))
			default:
				parts = append(parts, sym.Le(a, b))
			}
		}
		pc := sym.AndExpr(parts...)
		fb := map[int]int64{vars[0].ID: int64(r.Intn(10)), vars[1].ID: int64(r.Intn(10))}
		st, out := Prove(pc, samples, Options{Pool: &p, Fallback: fb, NoRefute: true})
		if out != OutcomeProved {
			continue
		}
		res := st.Resolve(samples)
		if !res.Complete {
			continue // multi-step: would need new samples, nothing to check yet
		}
		holds, probes := Holds(pc, res.Values, samples)
		if len(probes) > 0 {
			continue // EUF-style proof evaluated outside the sampled domain
		}
		if !holds {
			t.Fatalf("iter %d: proved strategy %v yields a non-witness %v for %v",
				iter, st, res.Values, pc)
		}
	}
}

// TestRefuteOnConsistentCompletions: Refute must never call a satisfiable
// pure formula invalid, and must respect samples when refuting.
func TestRefuteOnConsistentCompletions(t *testing.T) {
	var p sym.Pool
	x := p.NewVar("x")
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{3}, 41)

	// h(x) = 41 is satisfiable under every completion consistent with the
	// sample (x := 3 always works): must NOT be refuted.
	pc := sym.Eq(sym.ApplyTerm(h, sym.VarTerm(x)), sym.Int(41))
	if Refute(pc, samples, Options{Pool: &p}) {
		t.Fatal("refuted a formula witnessed by a recorded sample")
	}

	// h(x) = 41 ∧ x ≠ 3: the "samples, else 0" completion kills it.
	pc2 := sym.AndExpr(pc, sym.Ne(sym.VarTerm(x), sym.Int(3)))
	if !Refute(pc2, samples, Options{Pool: &p}) {
		t.Fatal("expected refutation via the default-0 completion")
	}
}

// TestProverDeterminism: identical inputs give identical strategies.
func TestProverDeterminism(t *testing.T) {
	mk := func() (string, Outcome) {
		var p sym.Pool
		x, y := p.NewVar("x"), p.NewVar("y")
		h := p.FuncSym("h", 1)
		samples := sym.NewSampleStore()
		samples.Add(h, []int64{42}, 567)
		pc := sym.AndExpr(
			sym.Eq(sym.VarTerm(x), sym.ApplyTerm(h, sym.VarTerm(y))),
			sym.Eq(sym.VarTerm(y), sym.Int(42)),
		)
		st, out := Prove(pc, samples, Options{Pool: &p})
		if st == nil {
			return "", out
		}
		return fmt.Sprint(st), out
	}
	s1, o1 := mk()
	s2, o2 := mk()
	if s1 != s2 || o1 != o2 {
		t.Fatalf("nondeterministic prover: %q/%v vs %q/%v", s1, o1, s2, o2)
	}
}

// TestOutcomeString covers diagnostics.
func TestOutcomeString(t *testing.T) {
	if OutcomeProved.String() != "proved" || OutcomeInvalid.String() != "invalid" ||
		OutcomeUnknown.String() != "unknown" {
		t.Fatal("bad outcome strings")
	}
}

// TestProveWithBoundsOnDefinedVars: resolved strategy values violating the
// caller's domain are the caller's job to filter (search.inBounds); Prove
// itself must still produce the proof.
func TestProveWithBoundsOnDefinedVars(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{1}, 900)
	pc := sym.Eq(sym.VarTerm(x), sym.ApplyTerm(h, sym.VarTerm(y)))
	st, out := Prove(pc, samples, Options{
		Pool:      &p,
		Fallback:  map[int]int64{y.ID: 1},
		VarBounds: map[int]smt.Bound{x.ID: {Lo: 0, Hi: 255, HasLo: true, HasHi: true}},
	})
	if out != OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	res := st.Resolve(samples)
	if !res.Complete || res.Values[x.ID] != 900 {
		t.Fatalf("resolution = %+v", res)
	}
}

// TestProofTrace: strategies carry their derivation steps.
func TestProofTrace(t *testing.T) {
	var p sym.Pool
	x, y := p.NewVar("x"), p.NewVar("y")
	h := p.FuncSym("h", 1)
	samples := sym.NewSampleStore()
	samples.Add(h, []int64{42}, 567)
	pc := sym.AndExpr(
		sym.Eq(sym.VarTerm(x), sym.ApplyTerm(h, sym.VarTerm(y))),
		sym.Eq(sym.VarTerm(y), sym.Int(10)),
	)
	st, out := Prove(pc, samples, Options{Pool: &p})
	if out != OutcomeProved {
		t.Fatalf("outcome = %v", out)
	}
	if len(st.Proof) == 0 {
		t.Fatal("empty proof trace")
	}
	joined := ""
	for _, step := range st.Proof {
		joined += step + "\n"
	}
	for _, want := range []string{"unit: y := 10", "definitional: x := h(10)"} {
		found := false
		for _, step := range st.Proof {
			if step == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("proof missing step %q:\n%s", want, joined)
		}
	}
}
