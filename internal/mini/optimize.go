package mini

// Bytecode optimizer: a peephole pass (constant folding into PUSH chains),
// jump threading, and dead-NOP compaction. Branch instructions are *never*
// folded away even on constant conditions, because every BrF/And/Or records
// an observable branch event that the reference interpreter also records;
// the optimized code must stay trace-equivalent (property-tested against
// both the raw VM and the interpreter).

// OpNop is a placeholder emitted by the optimizer and removed by compaction.
const OpNop Opcode = 255

// Optimize rewrites every function's code in place and returns the receiver.
func (c *Compiled) Optimize() *Compiled {
	for i := range c.fns {
		c.fns[i].code = optimizeCode(c.fns[i].code)
	}
	return c
}

// InstrCount returns the total instruction count across functions (used by
// tests and benchmarks to quantify optimization).
func (c *Compiled) InstrCount() int {
	n := 0
	for i := range c.fns {
		n += len(c.fns[i].code)
	}
	return n
}

func isJump(op Opcode) bool {
	return op == OpJmp || op == OpBrF || op == OpAnd || op == OpOr
}

func optimizeCode(code []Instr) []Instr {
	code = append([]Instr(nil), code...)
	for {
		changed := foldConstants(code)
		changed = threadJumps(code) || changed
		// Compact every round so cascading folds ((2+3)*4 → 5*4 → 20) see
		// adjacent instructions again.
		code = compact(code)
		if !changed {
			return code
		}
	}
}

// jumpTargets marks instructions that are entered by a jump; peephole
// windows must not span them.
func jumpTargets(code []Instr) []bool {
	t := make([]bool, len(code)+1)
	for _, in := range code {
		if isJump(in.Op) {
			t[in.A] = true
		}
	}
	return t
}

// foldConstants rewrites PUSH a; PUSH b; binop → PUSH (a∘b) and
// PUSH a; unop → PUSH (∘a), leaving NOPs for compaction. Division and
// modulo by a constant zero are left alone: they must fault at run time.
func foldConstants(code []Instr) bool {
	target := jumpTargets(code)
	changed := false
	for i := 0; i+1 < len(code); i++ {
		if code[i].Op != OpPush {
			continue
		}
		// Unary over one constant.
		if !target[i+1] {
			switch code[i+1].Op {
			case OpNeg:
				code[i] = Instr{Op: OpPush, A: -code[i].A}
				code[i+1] = Instr{Op: OpNop}
				changed = true
				continue
			case OpNot:
				v := int64(0)
				if code[i].A == 0 {
					v = 1
				}
				code[i] = Instr{Op: OpPush, A: v}
				code[i+1] = Instr{Op: OpNop}
				changed = true
				continue
			case OpPop:
				code[i] = Instr{Op: OpNop}
				code[i+1] = Instr{Op: OpNop}
				changed = true
				continue
			}
		}
		// Binary over two constants.
		if i+2 >= len(code) || code[i+1].Op != OpPush || target[i+1] || target[i+2] {
			continue
		}
		a, b := code[i].A, code[i+1].A
		var v int64
		ok := true
		switch code[i+2].Op {
		case OpAdd:
			v = a + b
		case OpSub:
			v = a - b
		case OpMul:
			v = a * b
		case OpDiv:
			if b == 0 {
				ok = false // must fault at run time
			} else {
				v = a / b
			}
		case OpMod:
			if b == 0 {
				ok = false
			} else {
				v = a % b
			}
		case OpEq:
			v = b2i(a == b)
		case OpNe:
			v = b2i(a != b)
		case OpLt:
			v = b2i(a < b)
		case OpLe:
			v = b2i(a <= b)
		case OpGt:
			v = b2i(a > b)
		case OpGe:
			v = b2i(a >= b)
		default:
			ok = false
		}
		if !ok {
			continue
		}
		code[i] = Instr{Op: OpPush, A: v}
		code[i+1] = Instr{Op: OpNop}
		code[i+2] = Instr{Op: OpNop}
		changed = true
	}
	return changed
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// threadJumps redirects jumps whose target is an unconditional jump (or a
// run of NOPs ending in one) to the final destination.
func threadJumps(code []Instr) bool {
	changed := false
	final := func(t int64) int64 {
		for hops := 0; hops < len(code); hops++ {
			u := int(t)
			for u < len(code) && code[u].Op == OpNop {
				u++
			}
			if u < len(code) && code[u].Op == OpJmp && code[u].A != t {
				t = code[u].A
				continue
			}
			return int64(u)
		}
		return t
	}
	for i := range code {
		if isJump(code[i].Op) {
			if nt := final(code[i].A); nt != code[i].A {
				code[i].A = nt
				changed = true
			}
		}
	}
	return changed
}

// compact removes NOPs and remaps jump targets.
func compact(code []Instr) []Instr {
	newIdx := make([]int64, len(code)+1)
	n := int64(0)
	for i, in := range code {
		newIdx[i] = n
		if in.Op != OpNop {
			n++
		}
	}
	newIdx[len(code)] = n
	out := make([]Instr, 0, n)
	for _, in := range code {
		if in.Op == OpNop {
			continue
		}
		if isJump(in.Op) {
			in.A = newIdx[in.A]
		}
		out = append(out, in)
	}
	return out
}
