package mini

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenConfig tunes random program generation.
type GenConfig struct {
	// NumInputs is the number of int parameters of main (default 3).
	NumInputs int
	// MaxStmts bounds statements per block (default 5).
	MaxStmts int
	// MaxDepth bounds statement nesting (default 3).
	MaxDepth int
	// Natives lists native function names (all arity 1) the generator may
	// call; calls are the injected sources of imprecision.
	Natives []string
	// ErrorProb is the per-block probability of an error site (default 0.2).
	ErrorProb float64
	// NumHelpers adds that many two-argument int helper functions which the
	// expression generator may call (exercising interprocedural paths and
	// the summary machinery).
	NumHelpers int
	// FuncParams adds that many fn(int) int parameters to main (named f0,
	// f1, ...); the expression generator calls through them, exercising the
	// callback machinery end to end.
	FuncParams int
}

func (c *GenConfig) defaults() {
	if c.NumInputs == 0 {
		c.NumInputs = 3
	}
	if c.MaxStmts == 0 {
		c.MaxStmts = 5
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 3
	}
	if c.ErrorProb == 0 {
		c.ErrorProb = 0.2
	}
}

// GenProgram generates the source text of a random, always-terminating mini
// program whose main takes cfg.NumInputs int parameters. The generated
// programs exercise linear arithmetic, nonlinear products, division and
// modulo by constants, native calls, loops with bounded trip counts, nested
// conditionals with &&/||, and error sites. They are used by property tests
// (interpreter/engine semantic agreement; Theorems 2–4) and by the ablation
// benchmarks.
func GenProgram(r *rand.Rand, cfg GenConfig) string {
	cfg.defaults()
	g := &progGen{r: r, cfg: cfg}
	var b strings.Builder
	for h := 0; h < cfg.NumHelpers; h++ {
		g.helper(&b, h)
	}
	b.WriteString("fn main(")
	for i := 0; i < cfg.NumInputs; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		name := fmt.Sprintf("x%d", i)
		fmt.Fprintf(&b, "%s int", name)
		g.vars = append(g.vars, name)
	}
	for i := 0; i < cfg.FuncParams; i++ {
		if cfg.NumInputs > 0 || i > 0 {
			b.WriteString(", ")
		}
		name := fmt.Sprintf("f%d", i)
		fmt.Fprintf(&b, "%s fn(int) int", name)
		g.funcs = append(g.funcs, name)
	}
	b.WriteString(") {\n")
	g.block(&b, 1, cfg.MaxDepth)
	b.WriteString("}\n")
	return b.String()
}

type progGen struct {
	r       *rand.Rand
	cfg     GenConfig
	vars    []string // in-scope int variables
	funcs   []string // in-scope function-typed parameters (main only)
	next    int      // fresh-name counter
	errs    int
	helpers int // helpers emitted so far (callable by the expression grammar)
}

// helper emits one two-argument int function whose body uses the same
// statement grammar as main (but no error sites and no further nesting).
func (g *progGen) helper(b *strings.Builder, idx int) {
	fmt.Fprintf(b, "fn h%d(p0 int, p1 int) int {\n", idx)
	saved := g.vars
	savedErr := g.cfg.ErrorProb
	savedHelpers := g.helpers
	savedFuncs := g.funcs
	g.vars = []string{"p0", "p1"}
	g.funcs = nil // helpers do not see main's callbacks
	g.cfg.ErrorProb = 0
	g.helpers = idx // a helper may call earlier helpers only (no recursion)
	g.block(b, 1, 1)
	g.indent(b, 1)
	fmt.Fprintf(b, "return %s;\n", g.intExpr(2))
	b.WriteString("}\n")
	g.vars = saved
	g.funcs = savedFuncs
	g.cfg.ErrorProb = savedErr
	g.helpers = savedHelpers
	g.helpers = idx + 1
}

func (g *progGen) indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("\t")
	}
}

func (g *progGen) block(b *strings.Builder, depth, budget int) {
	n := 1 + g.r.Intn(g.cfg.MaxStmts)
	saved := len(g.vars)
	for i := 0; i < n; i++ {
		g.stmt(b, depth, budget)
	}
	if g.r.Float64() < g.cfg.ErrorProb {
		g.indent(b, depth)
		fmt.Fprintf(b, "error(\"e%d\");\n", g.errs)
		g.errs++
	}
	g.vars = g.vars[:saved]
}

func (g *progGen) stmt(b *strings.Builder, depth, budget int) {
	choice := g.r.Intn(10)
	switch {
	case choice < 3: // var decl
		name := fmt.Sprintf("t%d", g.next)
		g.next++
		g.indent(b, depth)
		fmt.Fprintf(b, "var %s = %s;\n", name, g.intExpr(2))
		g.vars = append(g.vars, name)
	case choice < 5: // assignment
		g.indent(b, depth)
		fmt.Fprintf(b, "%s = %s;\n", g.vars[g.r.Intn(len(g.vars))], g.intExpr(2))
	case choice < 8 && budget > 0: // if
		g.indent(b, depth)
		fmt.Fprintf(b, "if (%s) {\n", g.boolExpr(2))
		g.block(b, depth+1, budget-1)
		g.indent(b, depth)
		if g.r.Intn(2) == 0 {
			b.WriteString("} else {\n")
			g.block(b, depth+1, budget-1)
			g.indent(b, depth)
		}
		b.WriteString("}\n")
	case choice < 9 && budget > 0: // bounded loop
		cnt := fmt.Sprintf("i%d", g.next)
		g.next++
		trip := 1 + g.r.Intn(4)
		g.indent(b, depth)
		fmt.Fprintf(b, "var %s = 0;\n", cnt)
		g.indent(b, depth)
		fmt.Fprintf(b, "while (%s < %d) {\n", cnt, trip)
		// The loop counter is not exposed to the body generator, so the
		// trip count stays bounded.
		g.block(b, depth+1, budget-1)
		g.indent(b, depth+1)
		fmt.Fprintf(b, "%s = %s + 1;\n", cnt, cnt)
		g.indent(b, depth)
		b.WriteString("}\n")
	default: // assignment fallback
		g.indent(b, depth)
		fmt.Fprintf(b, "%s = %s;\n", g.vars[g.r.Intn(len(g.vars))], g.intExpr(2))
	}
}

func (g *progGen) intExpr(depth int) string {
	if depth == 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 && len(g.vars) > 0 {
			return g.vars[g.r.Intn(len(g.vars))]
		}
		return fmt.Sprintf("%d", g.r.Intn(21)-10)
	}
	switch g.r.Intn(9) {
	case 0, 1:
		return fmt.Sprintf("(%s + %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s - %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 3:
		// Product; may be symbolic×symbolic (an unknown instruction).
		return fmt.Sprintf("(%s * %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 4:
		// Division by a nonzero constant (still outside T when the
		// dividend is symbolic).
		return fmt.Sprintf("(%s / %d)", g.intExpr(depth-1), 1+g.r.Intn(5))
	case 5:
		return fmt.Sprintf("(%s %% %d)", g.intExpr(depth-1), 1+g.r.Intn(5))
	case 6:
		if len(g.cfg.Natives) > 0 {
			nat := g.cfg.Natives[g.r.Intn(len(g.cfg.Natives))]
			return fmt.Sprintf("%s(%s)", nat, g.intExpr(depth-1))
		}
		return fmt.Sprintf("(0 - %s)", g.intExpr(depth-1))
	case 7:
		if len(g.funcs) > 0 && (g.helpers == 0 || g.r.Intn(2) == 0) {
			return fmt.Sprintf("%s(%s)", g.funcs[g.r.Intn(len(g.funcs))], g.intExpr(depth-1))
		}
		if g.helpers > 0 {
			return fmt.Sprintf("h%d(%s, %s)", g.r.Intn(g.helpers), g.intExpr(depth-1), g.intExpr(depth-1))
		}
		return fmt.Sprintf("(%s + 1)", g.intExpr(depth-1))
	default:
		return fmt.Sprintf("(0 - %s)", g.intExpr(depth-1))
	}
}

func (g *progGen) boolExpr(depth int) string {
	if depth == 0 || g.r.Intn(2) == 0 {
		ops := []string{"==", "!=", "<", "<=", ">", ">="}
		return fmt.Sprintf("%s %s %s", g.intExpr(1), ops[g.r.Intn(len(ops))], g.intExpr(1))
	}
	switch g.r.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s && %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s || %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	default:
		return fmt.Sprintf("!(%s)", g.boolExpr(depth-1))
	}
}
