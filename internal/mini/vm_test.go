package mini

import (
	"math/rand"
	"strings"
	"testing"
)

func vmNatives() Natives {
	ns := Natives{}
	ns.Register("hash", 1, func(a []int64) int64 { return (a[0]*a[0]*7 + 13) % 1000 })
	return ns
}

func vmProg(t testing.TB, src string) (*Program, *Compiled) {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Check(p, vmNatives()); err != nil {
		t.Fatalf("check: %v", err)
	}
	return p, CompileVM(p)
}

// sameResult compares everything except Steps (instruction counts differ
// from AST-visit counts) and fault wording (no positions in bytecode).
func sameResult(a, b *Result) bool {
	return a.Kind == b.Kind && a.Return == b.Return &&
		a.ErrorSite == b.ErrorSite && a.ErrorMsg == b.ErrorMsg &&
		a.Path() == b.Path() && len(a.Branches) == len(b.Branches)
}

func TestVMBasics(t *testing.T) {
	p, c := vmProg(t, `
fn main(x int, y int) int {
	var s = x + y * 2 - 3;
	var q = x / y;
	return s * 10 + q * 100 + x % y;
}`)
	for _, in := range [][]int64{{7, 2}, {-9, 4}, {0, 1}} {
		ri := Run(p, in, RunOptions{})
		rv := RunVM(c, in, RunOptions{})
		if !sameResult(ri, rv) {
			t.Fatalf("input %v: interp %+v vs vm %+v", in, ri, rv)
		}
	}
}

func TestVMBranchEvents(t *testing.T) {
	p, c := vmProg(t, `
fn main(x int) {
	if (x > 0 && x < 10) {
		error("in-range");
	}
	if (x == -1 || x == -2) {
		error("neg");
	}
}`)
	for _, in := range [][]int64{{5}, {0}, {20}, {-1}, {-2}, {-3}} {
		ri := Run(p, in, RunOptions{})
		rv := RunVM(c, in, RunOptions{})
		if !sameResult(ri, rv) {
			t.Fatalf("input %v: interp %+v (%s) vs vm %+v (%s)", in, ri, ri.Path(), rv, rv.Path())
		}
		for i := range ri.Branches {
			if ri.Branches[i] != rv.Branches[i] {
				t.Fatalf("input %v: event %d: %v vs %v", in, i, ri.Branches[i], rv.Branches[i])
			}
		}
	}
}

func TestVMArraysAndCalls(t *testing.T) {
	p, c := vmProg(t, `
fn fill(a [4]int, v int) {
	var i = 0;
	while (i < 4) { a[i] = v + i; i = i + 1; }
}
fn sum(a [4]int) int {
	var s = 0;
	var i = 0;
	while (i < 4) { s = s + a[i]; i = i + 1; }
	return s;
}
fn main(v int) int {
	var a [4];
	fill(a, v);
	return sum(a);
}`)
	for _, in := range [][]int64{{0}, {10}, {-3}} {
		ri := Run(p, in, RunOptions{})
		rv := RunVM(c, in, RunOptions{})
		if !sameResult(ri, rv) {
			t.Fatalf("input %v: %+v vs %+v", in, ri, rv)
		}
	}
}

func TestVMFaults(t *testing.T) {
	cases := []struct {
		src   string
		input []int64
	}{
		{`fn main(x int) int { return 1 / x; }`, []int64{0}},
		{`fn main(x int) int { return 1 % x; }`, []int64{0}},
		{`fn main(x int) int { var a [3]; return a[x]; }`, []int64{7}},
		{`fn main(x int) { var a [3]; a[x] = 1; }`, []int64{-1}},
		{`fn main(x int) { while (x == x) { } }`, []int64{1}},
		{`fn f(n int) int { return f(n); } fn main(n int) int { return f(n); }`, []int64{1}},
	}
	for _, cse := range cases {
		p, c := vmProg(t, cse.src)
		ri := Run(p, cse.input, RunOptions{MaxSteps: 5000, MaxDepth: 32})
		rv := RunVM(c, cse.input, RunOptions{MaxSteps: 5000, MaxDepth: 32})
		if ri.Kind != StopRuntime || rv.Kind != StopRuntime {
			t.Fatalf("src %q: interp %v vm %v", cse.src, ri.Kind, rv.Kind)
		}
	}
}

func TestVMRecursion(t *testing.T) {
	p, c := vmProg(t, `
fn fib(n int) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
fn main(n int) int { return fib(n); }`)
	rv := RunVM(c, []int64{12}, RunOptions{})
	if rv.Kind != StopReturn || rv.Return != 144 {
		t.Fatalf("fib(12) = %+v", rv)
	}
	ri := Run(p, []int64{12}, RunOptions{})
	if !sameResult(ri, rv) {
		t.Fatalf("interp %+v vs vm %+v", ri, rv)
	}
}

func TestVMNativeHook(t *testing.T) {
	_, c := vmProg(t, `fn main(x int) int { return hash(x) + hash(3); }`)
	calls := 0
	rv := RunVM(c, []int64{2}, RunOptions{
		OnNativeCall: func(name string, args []int64, out int64) {
			calls++
			if name != "hash" || len(args) != 1 {
				t.Fatalf("hook: %s %v", name, args)
			}
		},
	})
	if rv.Kind != StopReturn || calls != 2 {
		t.Fatalf("rv=%+v calls=%d", rv, calls)
	}
}

func TestVMVoidCallDiscard(t *testing.T) {
	p, c := vmProg(t, `
fn poke(a [2]int, v int) { a[0] = v; }
fn main(v int) int {
	var a [2];
	poke(a, v);
	poke(a, v + 1);
	return a[0];
}`)
	ri := Run(p, []int64{5}, RunOptions{})
	rv := RunVM(c, []int64{5}, RunOptions{})
	if !sameResult(ri, rv) || rv.Return != 6 {
		t.Fatalf("interp %+v vs vm %+v", ri, rv)
	}
}

// TestVMAgreesWithInterpProperty is the headline equivalence test: on random
// programs (with helper functions) and random inputs, the VM and the
// interpreter agree on everything observable.
func TestVMAgreesWithInterpProperty(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	ns := vmNatives()
	for iter := 0; iter < 200; iter++ {
		src := GenProgram(r, GenConfig{Natives: []string{"hash"}, NumHelpers: 2})
		p := MustCheck(MustParse(src), ns)
		c := CompileVM(p)
		for rep := 0; rep < 3; rep++ {
			in := []int64{int64(r.Intn(41) - 20), int64(r.Intn(41) - 20), int64(r.Intn(41) - 20)}
			ri := Run(p, in, RunOptions{})
			rv := RunVM(c, in, RunOptions{})
			if !sameResult(ri, rv) {
				t.Fatalf("iter %d input %v:\ninterp %+v\nvm     %+v\n%s", iter, in, ri, rv, src)
			}
		}
	}
}

func TestVMDisasm(t *testing.T) {
	_, c := vmProg(t, `fn main(x int) { if (x > 0) { error("p"); } }`)
	d := c.Disasm("main")
	for _, want := range []string{"load", "push", "gt", "brf", "error"} {
		if !strings.Contains(d, want) {
			t.Fatalf("disasm missing %q:\n%s", want, d)
		}
	}
	if !strings.Contains(c.Disasm("nope"), "no function") {
		t.Fatal("missing-function disasm")
	}
}
