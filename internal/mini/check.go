package mini

// Check resolves names, type-checks the program against the given native
// registry, and assigns stable IDs to branch points (if/while conditions) and
// error sites. It must be called once before interpretation or symbolic
// execution. Check mutates the AST in place.
func Check(prog *Program, natives Natives) error {
	c := &checker{prog: prog, natives: natives}
	prog.Natives = natives
	for _, name := range prog.Order {
		if err := c.checkFunc(prog.Funcs[name]); err != nil {
			return err
		}
	}
	prog.NumBranches = c.nextBranch
	prog.ErrorSites = c.errorSites
	return nil
}

// MustCheck panics on a check error; for embedded workload sources.
func MustCheck(prog *Program, natives Natives) *Program {
	if err := Check(prog, natives); err != nil {
		panic("mini.MustCheck: " + err.Error())
	}
	return prog
}

type checker struct {
	prog    *Program
	natives Natives

	nextBranch int
	errorSites []string

	scopes []map[string]Type
	fn     *FuncDecl
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]Type{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos Pos, name string, t Type) error {
	for _, sc := range c.scopes {
		if _, ok := sc[name]; ok {
			return errf(pos, "%s redeclared (shadowing is not allowed)", name)
		}
	}
	if _, ok := c.prog.Funcs[name]; ok {
		return errf(pos, "%s conflicts with a function name", name)
	}
	if _, ok := c.natives[name]; ok {
		return errf(pos, "%s conflicts with a native function name", name)
	}
	c.scopes[len(c.scopes)-1][name] = t
	return nil
}

func (c *checker) lookup(name string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return Type{}, false
}

func (c *checker) checkFunc(fd *FuncDecl) error {
	c.fn = fd
	c.scopes = nil
	c.push()
	for _, prm := range fd.Params {
		if err := c.declare(fd.P, prm.Name, prm.Type); err != nil {
			return err
		}
	}
	return c.checkBlock(fd.Body)
}

func (c *checker) checkBlock(b *Block) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *VarDecl:
		t, err := c.checkExpr(st.Init)
		if err != nil {
			return err
		}
		if t.Kind == TArray {
			return errf(st.P, "cannot assign an array value")
		}
		return c.declare(st.P, st.Name, t)

	case *ArrDecl:
		return c.declare(st.P, st.Name, Type{Kind: TArray, Len: st.Len})

	case *Assign:
		vt, ok := c.lookup(st.Name)
		if !ok {
			return errf(st.P, "undefined variable %s", st.Name)
		}
		if vt.Kind == TArray {
			return errf(st.P, "cannot assign to array %s without an index", st.Name)
		}
		if vt.Kind == TFunc {
			return errf(st.P, "cannot assign to function parameter %s", st.Name)
		}
		et, err := c.checkExpr(st.Val)
		if err != nil {
			return err
		}
		if et.Kind != vt.Kind {
			return errf(st.P, "assigning %s to %s variable %s", et, vt, st.Name)
		}
		return nil

	case *IndexAssign:
		vt, ok := c.lookup(st.Name)
		if !ok {
			return errf(st.P, "undefined variable %s", st.Name)
		}
		if vt.Kind != TArray {
			return errf(st.P, "%s is not an array", st.Name)
		}
		it, err := c.checkExpr(st.Idx)
		if err != nil {
			return err
		}
		if it.Kind != TInt {
			return errf(st.P, "array index must be int, got %s", it)
		}
		et, err := c.checkExpr(st.Val)
		if err != nil {
			return err
		}
		if et.Kind != TInt {
			return errf(st.P, "array element must be int, got %s", et)
		}
		return nil

	case *If:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct.Kind != TBool {
			return errf(st.P, "if condition must be bool, got %s", ct)
		}
		st.BranchID = c.nextBranch
		c.nextBranch++
		if err := c.checkBlock(st.Then); err != nil {
			return err
		}
		switch e := st.Else.(type) {
		case nil:
			return nil
		case *Block:
			return c.checkBlock(e)
		case *If:
			return c.checkStmt(e)
		default:
			return errf(st.P, "bad else branch")
		}

	case *While:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct.Kind != TBool {
			return errf(st.P, "while condition must be bool, got %s", ct)
		}
		st.BranchID = c.nextBranch
		c.nextBranch++
		return c.checkBlock(st.Body)

	case *Return:
		if c.fn.HasRet {
			if st.Val == nil {
				return errf(st.P, "function %s must return int", c.fn.Name)
			}
			t, err := c.checkExpr(st.Val)
			if err != nil {
				return err
			}
			if t.Kind != TInt {
				return errf(st.P, "function %s returns int, got %s", c.fn.Name, t)
			}
			return nil
		}
		if st.Val != nil {
			return errf(st.P, "function %s has no return value", c.fn.Name)
		}
		return nil

	case *ErrorStmt:
		st.SiteID = len(c.errorSites)
		c.errorSites = append(c.errorSites, st.Msg)
		return nil

	case *ExprStmt:
		call, ok := st.X.(*Call)
		if !ok {
			return errf(st.P, "only calls may be used as statements")
		}
		_, err := c.checkCall(call, true)
		return err

	case *Block:
		return c.checkBlock(st)
	}
	return errf(s.Pos(), "unhandled statement")
}

func (c *checker) checkExpr(e Expr) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return Type{Kind: TInt}, nil
	case *BoolLit:
		return Type{Kind: TBool}, nil
	case *Ident:
		t, ok := c.lookup(x.Name)
		if !ok {
			return Type{}, errf(x.P, "undefined variable %s", x.Name)
		}
		if t.Kind == TArray {
			return Type{}, errf(x.P, "array %s used without an index", x.Name)
		}
		if t.Kind == TFunc {
			return Type{}, errf(x.P, "function %s used without a call", x.Name)
		}
		return t, nil
	case *Index:
		t, ok := c.lookup(x.Name)
		if !ok {
			return Type{}, errf(x.P, "undefined variable %s", x.Name)
		}
		if t.Kind != TArray {
			return Type{}, errf(x.P, "%s is not an array", x.Name)
		}
		it, err := c.checkExpr(x.Idx)
		if err != nil {
			return Type{}, err
		}
		if it.Kind != TInt {
			return Type{}, errf(x.P, "array index must be int, got %s", it)
		}
		return Type{Kind: TInt}, nil
	case *Unary:
		t, err := c.checkExpr(x.X)
		if err != nil {
			return Type{}, err
		}
		switch x.Op {
		case TokBang:
			if t.Kind != TBool {
				return Type{}, errf(x.P, "! needs bool, got %s", t)
			}
			return Type{Kind: TBool}, nil
		case TokMinus:
			if t.Kind != TInt {
				return Type{}, errf(x.P, "unary - needs int, got %s", t)
			}
			return Type{Kind: TInt}, nil
		}
		return Type{}, errf(x.P, "bad unary operator %s", x.Op)
	case *Binary:
		lt, err := c.checkExpr(x.X)
		if err != nil {
			return Type{}, err
		}
		rt, err := c.checkExpr(x.Y)
		if err != nil {
			return Type{}, err
		}
		switch x.Op {
		case TokPlus, TokMinus, TokStar, TokSlash, TokPercent:
			if lt.Kind != TInt || rt.Kind != TInt {
				return Type{}, errf(x.P, "%s needs int operands, got %s and %s", x.Op, lt, rt)
			}
			return Type{Kind: TInt}, nil
		case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
			if lt.Kind != TInt || rt.Kind != TInt {
				return Type{}, errf(x.P, "%s compares ints, got %s and %s", x.Op, lt, rt)
			}
			return Type{Kind: TBool}, nil
		case TokAndAnd, TokOrOr:
			if lt.Kind != TBool || rt.Kind != TBool {
				return Type{}, errf(x.P, "%s needs bool operands, got %s and %s", x.Op, lt, rt)
			}
			x.BranchID = c.nextBranch
			c.nextBranch++
			return Type{Kind: TBool}, nil
		}
		return Type{}, errf(x.P, "bad binary operator %s", x.Op)
	case *Call:
		return c.checkCall(x, false)
	}
	return Type{}, errf(e.Pos(), "unhandled expression")
}

func (c *checker) checkCall(x *Call, asStmt bool) (Type, error) {
	if fd, ok := c.prog.Funcs[x.Name]; ok {
		x.Fn = fd
		if len(x.Args) != len(fd.Params) {
			return Type{}, errf(x.P, "%s expects %d arguments, got %d", x.Name, len(fd.Params), len(x.Args))
		}
		for i, a := range x.Args {
			want := fd.Params[i].Type
			if want.Kind == TArray {
				id, ok := a.(*Ident)
				if !ok {
					return Type{}, errf(a.Pos(), "argument %d of %s must be an array variable", i+1, x.Name)
				}
				at, ok := c.lookup(id.Name)
				if !ok || at.Kind != TArray {
					return Type{}, errf(a.Pos(), "argument %d of %s must be an array, got %s", i+1, x.Name, at)
				}
				if at.Len != want.Len {
					return Type{}, errf(a.Pos(), "argument %d of %s: array length %d, want %d", i+1, x.Name, at.Len, want.Len)
				}
				continue
			}
			if want.Kind == TFunc {
				// Function values pass by reference, like arrays: only a
				// function-typed parameter name is a valid argument.
				id, ok := a.(*Ident)
				if !ok {
					return Type{}, errf(a.Pos(), "argument %d of %s must be a function parameter", i+1, x.Name)
				}
				at, ok := c.lookup(id.Name)
				if !ok || at.Kind != TFunc {
					return Type{}, errf(a.Pos(), "argument %d of %s must be a function, got %s", i+1, x.Name, at)
				}
				if at.Len != want.Len {
					return Type{}, errf(a.Pos(), "argument %d of %s: function arity %d, want %d", i+1, x.Name, at.Len, want.Len)
				}
				continue
			}
			at, err := c.checkExpr(a)
			if err != nil {
				return Type{}, err
			}
			if at.Kind != want.Kind {
				return Type{}, errf(a.Pos(), "argument %d of %s: got %s, want %s", i+1, x.Name, at, want)
			}
		}
		if !fd.HasRet && !asStmt {
			return Type{}, errf(x.P, "%s has no return value", x.Name)
		}
		return Type{Kind: TInt}, nil
	}
	if t, ok := c.lookup(x.Name); ok && t.Kind == TFunc {
		// A call through a function-typed parameter: the callback input.
		x.Param = true
		if len(x.Args) != t.Len {
			return Type{}, errf(x.P, "function %s expects %d arguments, got %d", x.Name, t.Len, len(x.Args))
		}
		for i, a := range x.Args {
			at, err := c.checkExpr(a)
			if err != nil {
				return Type{}, err
			}
			if at.Kind != TInt {
				return Type{}, errf(a.Pos(), "argument %d of %s must be int, got %s", i+1, x.Name, at)
			}
		}
		return Type{Kind: TInt}, nil
	}
	if nat, ok := c.natives[x.Name]; ok {
		x.Native = true
		if len(x.Args) != nat.Arity {
			return Type{}, errf(x.P, "native %s expects %d arguments, got %d", x.Name, nat.Arity, len(x.Args))
		}
		for i, a := range x.Args {
			at, err := c.checkExpr(a)
			if err != nil {
				return Type{}, err
			}
			if at.Kind != TInt {
				return Type{}, errf(a.Pos(), "argument %d of native %s must be int, got %s", i+1, x.Name, at)
			}
		}
		return Type{Kind: TInt}, nil
	}
	return Type{}, errf(x.P, "call to undefined function %s", x.Name)
}
