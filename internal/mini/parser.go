package mini

import "fmt"

// Parse lexes and parses src into an unchecked Program. Call Check before
// executing it.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Funcs: make(map[string]*FuncDecl)}
	for p.peek().Kind != TokEOF {
		fd, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		if _, dup := prog.Funcs[fd.Name]; dup {
			return nil, errf(fd.P, "function %s redeclared", fd.Name)
		}
		prog.Funcs[fd.Name] = fd
		prog.Order = append(prog.Order, fd.Name)
	}
	if prog.Funcs["main"] == nil {
		return nil, errf(Pos{1, 1}, "no main function")
	}
	return prog, nil
}

// MustParse parses src and panics on error; for embedded workload sources.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("mini.MustParse: %v", err))
	}
	return p
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) peek() Token { return p.toks[p.i] }
func (p *parser) next() Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k TokKind) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s", k, t)
	}
	return p.next(), nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	t, err := p.expect(TokFn)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fd := &FuncDecl{P: t.Pos, Name: name.Text}
	for p.peek().Kind != TokRParen {
		if len(fd.Params) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		pn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fd.Params = append(fd.Params, Param{Name: pn.Text, Type: ty})
	}
	p.next() // )
	if p.peek().Kind == TokIntType {
		p.next()
		fd.HasRet = true
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fd.Body = body
	return fd, nil
}

func (p *parser) parseType() (Type, error) {
	switch t := p.peek(); t.Kind {
	case TokIntType:
		p.next()
		return Type{Kind: TInt}, nil
	case TokBoolType:
		p.next()
		return Type{Kind: TBool}, nil
	case TokLBrack:
		p.next()
		n, err := p.expect(TokInt)
		if err != nil {
			return Type{}, err
		}
		if _, err := p.expect(TokRBrack); err != nil {
			return Type{}, err
		}
		if _, err := p.expect(TokIntType); err != nil {
			return Type{}, err
		}
		if n.Int <= 0 || n.Int > 1<<16 {
			return Type{}, errf(n.Pos, "array length %d out of range", n.Int)
		}
		return Type{Kind: TArray, Len: int(n.Int)}, nil
	case TokFn:
		// fn(int, ..., int) int — a function-typed parameter. The arity is
		// the number of int argument slots (1..8).
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return Type{}, err
		}
		arity := 0
		for p.peek().Kind != TokRParen {
			if arity > 0 {
				if _, err := p.expect(TokComma); err != nil {
					return Type{}, err
				}
			}
			if _, err := p.expect(TokIntType); err != nil {
				return Type{}, err
			}
			arity++
		}
		p.next() // )
		if _, err := p.expect(TokIntType); err != nil {
			return Type{}, err
		}
		if arity < 1 || arity > 8 {
			return Type{}, errf(t.Pos, "function type arity %d out of range (1..8)", arity)
		}
		return Type{Kind: TFunc, Len: arity}, nil
	default:
		return Type{}, errf(t.Pos, "expected type, found %s", t)
	}
}

func (p *parser) block() (*Block, error) {
	t, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{P: t.Pos}
	for p.peek().Kind != TokRBrace {
		if p.peek().Kind == TokEOF {
			return nil, errf(p.peek().Pos, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch t := p.peek(); t.Kind {
	case TokVar:
		p.next()
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if p.peek().Kind == TokLBrack {
			p.next()
			n, err := p.expect(TokInt)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBrack); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			if n.Int <= 0 || n.Int > 1<<16 {
				return nil, errf(n.Pos, "array length %d out of range", n.Int)
			}
			return &ArrDecl{P: t.Pos, Name: name.Text, Len: int(n.Int)}, nil
		}
		if _, err := p.expect(TokAssign); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &VarDecl{P: t.Pos, Name: name.Text, Init: init}, nil

	case TokIf:
		return p.ifStmt()

	case TokWhile:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &While{P: t.Pos, Cond: cond, Body: body}, nil

	case TokReturn:
		p.next()
		if p.peek().Kind == TokSemi {
			p.next()
			return &Return{P: t.Pos}, nil
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &Return{P: t.Pos, Val: v}, nil

	case TokError:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		msg, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ErrorStmt{P: t.Pos, Msg: msg.Text}, nil

	case TokIdent:
		// assignment, index assignment, or call statement
		name := p.next()
		switch p.peek().Kind {
		case TokAssign:
			p.next()
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			return &Assign{P: t.Pos, Name: name.Text, Val: v}, nil
		case TokLBrack:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBrack); err != nil {
				return nil, err
			}
			if p.peek().Kind == TokAssign {
				p.next()
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokSemi); err != nil {
					return nil, err
				}
				return &IndexAssign{P: t.Pos, Name: name.Text, Idx: idx, Val: v}, nil
			}
			return nil, errf(p.peek().Pos, "expected = after index expression")
		case TokLParen:
			call, err := p.callRest(name)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			return &ExprStmt{P: t.Pos, X: call}, nil
		default:
			return nil, errf(p.peek().Pos, "expected statement, found %s after %s", p.peek(), name)
		}

	default:
		return nil, errf(t.Pos, "expected statement, found %s", t)
	}
}

func (p *parser) ifStmt() (Stmt, error) {
	t, err := p.expect(TokIf)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &If{P: t.Pos, Cond: cond, Then: then}
	if p.peek().Kind == TokElse {
		p.next()
		if p.peek().Kind == TokIf {
			els, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			node.Else = els
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

func (p *parser) callRest(name Token) (*Call, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	c := &Call{P: name.Pos, Name: name.Text}
	for p.peek().Kind != TokRParen {
		if len(c.Args) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Args = append(c.Args, a)
	}
	p.next() // )
	return c, nil
}

// Expression grammar, lowest to highest precedence:
// expr := orExpr
// orExpr := andExpr ("||" andExpr)*
// andExpr := cmpExpr ("&&" cmpExpr)*
// cmpExpr := addExpr ((==|!=|<|<=|>|>=) addExpr)?
// addExpr := mulExpr ((+|-) mulExpr)*
// mulExpr := unary ((*|/|%) unary)*
// unary := (!|-) unary | primary
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	x, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokOrOr {
		op := p.next()
		y, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{P: op.Pos, Op: TokOrOr, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) andExpr() (Expr, error) {
	x, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokAndAnd {
		op := p.next()
		y, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{P: op.Pos, Op: TokAndAnd, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	x, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	switch p.peek().Kind {
	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		op := p.next()
		y, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &Binary{P: op.Pos, Op: op.Kind, X: x, Y: y}, nil
	}
	return x, nil
}

func (p *parser) addExpr() (Expr, error) {
	x, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokPlus || p.peek().Kind == TokMinus {
		op := p.next()
		y, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		x = &Binary{P: op.Pos, Op: op.Kind, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) mulExpr() (Expr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokStar || p.peek().Kind == TokSlash || p.peek().Kind == TokPercent {
		op := p.next()
		y, err := p.unary()
		if err != nil {
			return nil, err
		}
		x = &Binary{P: op.Pos, Op: op.Kind, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) unary() (Expr, error) {
	switch t := p.peek(); t.Kind {
	case TokBang, TokMinus:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{P: t.Pos, Op: t.Kind, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	switch t := p.peek(); t.Kind {
	case TokInt:
		p.next()
		return &IntLit{P: t.Pos, V: t.Int}, nil
	case TokTrue:
		p.next()
		return &BoolLit{P: t.Pos, V: true}, nil
	case TokFalse:
		p.next()
		return &BoolLit{P: t.Pos, V: false}, nil
	case TokLParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TokIdent:
		name := p.next()
		switch p.peek().Kind {
		case TokLParen:
			return p.callRest(name)
		case TokLBrack:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBrack); err != nil {
				return nil, err
			}
			return &Index{P: name.Pos, Name: name.Text, Idx: idx}, nil
		}
		return &Ident{P: name.Pos, Name: name.Text}, nil
	default:
		return nil, errf(t.Pos, "expected expression, found %s", t)
	}
}
