package mini

import (
	"testing"
)

// FuzzParser: arbitrary input must never panic the lexer/parser/checker, and
// anything that parses must survive the format/parse round trip.
func FuzzParser(f *testing.F) {
	f.Add(`fn main(x int) { if (x > 0) { error("p"); } }`)
	f.Add(`fn f(a [3]int) int { return a[0]; } fn main(y int) int { var a [3]; a[0] = y; return f(a); }`)
	f.Add(`fn main() { while (true) { } }`)
	f.Add("fn main(\x00")
	f.Add(`fn main() { var x = "unterminated`)
	f.Add(`fn main() { var x = 9223372036854775807 + 1; }`)
	ns := Natives{}
	ns.Register("hash", 1, func(a []int64) int64 { return a[0] })
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		text := Format(p)
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted output failed to parse: %v\n%s", err, text)
		}
		if !EqualAST(p, p2) {
			t.Fatalf("round trip changed AST:\n%s", text)
		}
		// If it also checks, it must compile and run without panicking.
		if err := Check(p, ns); err != nil {
			return
		}
		sh := p.Shape()
		input := make([]int64, len(sh.Names))
		res := Run(p, input, RunOptions{MaxSteps: 20000, MaxDepth: 64})
		resVM := RunVM(CompileVM(p), input, RunOptions{MaxSteps: 20000, MaxDepth: 64})
		// Budget faults may trigger at different instruction counts; all
		// other outcomes must agree.
		if res.Kind != StopRuntime && resVM.Kind != StopRuntime {
			if res.Kind != resVM.Kind || res.Return != resVM.Return || res.Path() != resVM.Path() {
				t.Fatalf("interp/vm disagree on %q: %+v vs %+v", src, res, resVM)
			}
		}
	})
}

// FuzzFunctionValueRoundTrip: any string ParseFuncValue accepts renders back
// to an identical string (parse∘format is the identity on canonical text),
// and the resulting table is well-formed: rows sorted, no duplicate argument
// tuples, every row at the declared arity. Eval on a parsed table must agree
// with the row the text names.
func FuzzFunctionValueRoundTrip(f *testing.F) {
	f.Add("fn/1{_->0}")
	f.Add("fn/0{_->-7}")
	f.Add("fn/1{(0)->1, (1)->1, _->0}")
	f.Add("fn/2{(-1,-2)->-2, (0,-2)->0, (0,-1)->-1, _->0}")
	f.Add("fn/2{(2,1)->3, (1,2)->3, _->0}") // non-canonical order: parses, re-sorts
	f.Add("fn/1{(9223372036854775807)->-9223372036854775808, _->0}")
	f.Add("fn/1{(1)->2, (1)->3, _->0}") // conflicting duplicate: must be rejected
	f.Fuzz(func(t *testing.T, s string) {
		fv, err := ParseFuncValue(s)
		if err != nil {
			return
		}
		text := fv.String()
		fv2, err := ParseFuncValue(text)
		if err != nil {
			t.Fatalf("rendered value failed to parse: %v\n%q", err, text)
		}
		if got := fv2.String(); got != text {
			t.Fatalf("format/parse/format not byte-stable: %q then %q (from %q)", text, got, s)
		}
		for i, row := range fv.Rows {
			if len(row.Args) != fv.Arity {
				t.Fatalf("row %d has %d args, arity is %d: %q", i, len(row.Args), fv.Arity, text)
			}
			if i > 0 && !argsLess(fv.Rows[i-1].Args, row.Args) {
				t.Fatalf("rows %d,%d out of canonical order: %q", i-1, i, text)
			}
			if got := fv.Eval(row.Args); got != row.Out {
				t.Fatalf("Eval(%v) = %d, table says %d: %q", row.Args, got, row.Out, text)
			}
		}
	})
}

// FuzzLexRoundTrip: the token stream of any accepted input reassembles into
// an equally lexable string.
func FuzzLexRoundTrip(f *testing.F) {
	f.Add("fn main ( x int ) { }")
	f.Add("== != <= >= && || ! - + * / %")
	f.Add(`"str" 123 ident`)
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("missing EOF token in %q", src)
		}
		rejoined := ""
		for _, tok := range toks[:len(toks)-1] {
			rejoined += tok.String() + " "
		}
		toks2, err := Lex(rejoined)
		if err != nil {
			t.Fatalf("rejoined token text failed to lex: %v\n%q", err, rejoined)
		}
		if len(toks2) != len(toks) {
			t.Fatalf("token count changed: %d vs %d\n%q vs %q", len(toks), len(toks2), src, rejoined)
		}
		for i := range toks {
			if toks[i].Kind != toks2[i].Kind {
				t.Fatalf("token %d kind changed: %v vs %v", i, toks[i].Kind, toks2[i].Kind)
			}
		}
	})
}
