package mini

import (
	"testing"
)

// FuzzParser: arbitrary input must never panic the lexer/parser/checker, and
// anything that parses must survive the format/parse round trip.
func FuzzParser(f *testing.F) {
	f.Add(`fn main(x int) { if (x > 0) { error("p"); } }`)
	f.Add(`fn f(a [3]int) int { return a[0]; } fn main(y int) int { var a [3]; a[0] = y; return f(a); }`)
	f.Add(`fn main() { while (true) { } }`)
	f.Add("fn main(\x00")
	f.Add(`fn main() { var x = "unterminated`)
	f.Add(`fn main() { var x = 9223372036854775807 + 1; }`)
	ns := Natives{}
	ns.Register("hash", 1, func(a []int64) int64 { return a[0] })
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		text := Format(p)
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted output failed to parse: %v\n%s", err, text)
		}
		if !EqualAST(p, p2) {
			t.Fatalf("round trip changed AST:\n%s", text)
		}
		// If it also checks, it must compile and run without panicking.
		if err := Check(p, ns); err != nil {
			return
		}
		sh := p.Shape()
		input := make([]int64, len(sh.Names))
		res := Run(p, input, RunOptions{MaxSteps: 20000, MaxDepth: 64})
		resVM := RunVM(CompileVM(p), input, RunOptions{MaxSteps: 20000, MaxDepth: 64})
		// Budget faults may trigger at different instruction counts; all
		// other outcomes must agree.
		if res.Kind != StopRuntime && resVM.Kind != StopRuntime {
			if res.Kind != resVM.Kind || res.Return != resVM.Return || res.Path() != resVM.Path() {
				t.Fatalf("interp/vm disagree on %q: %+v vs %+v", src, res, resVM)
			}
		}
	})
}

// FuzzLexRoundTrip: the token stream of any accepted input reassembles into
// an equally lexable string.
func FuzzLexRoundTrip(f *testing.F) {
	f.Add("fn main ( x int ) { }")
	f.Add("== != <= >= && || ! - + * / %")
	f.Add(`"str" 123 ident`)
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("missing EOF token in %q", src)
		}
		rejoined := ""
		for _, tok := range toks[:len(toks)-1] {
			rejoined += tok.String() + " "
		}
		toks2, err := Lex(rejoined)
		if err != nil {
			t.Fatalf("rejoined token text failed to lex: %v\n%q", err, rejoined)
		}
		if len(toks2) != len(toks) {
			t.Fatalf("token count changed: %d vs %d\n%q vs %q", len(toks), len(toks2), src, rejoined)
		}
		for i := range toks {
			if toks[i].Kind != toks2[i].Kind {
				t.Fatalf("token %d kind changed: %v vs %v", i, toks[i].Kind, toks2[i].Kind)
			}
		}
	})
}
