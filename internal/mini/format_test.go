package mini

import (
	"math/rand"
	"testing"
)

func TestFormatRoundTripFixed(t *testing.T) {
	srcs := []string{
		`fn main(x int) { if (x > 0) { error("pos"); } }`,
		`fn main(x int, s [4]int) int {
			var a [3];
			a[x] = s[0] + 1;
			while (x < 10) { x = x + 1; }
			if (x == 10) { return a[0]; } else { if (x > 20) { return 1; } }
			return 0;
		}`,
		`fn f(a [2]int, k int) { a[0] = k; }
		 fn main(y int) { var b [2]; f(b, y); if (!(y == 1) && (y < 5 || y > 9)) { error("e"); } }`,
		`fn g() int { return -3; }
		 fn main(z int) { var q = g() * -z / 2 % 3; if (q != 0) { g(); } }`,
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		text := Format(p1)
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse of formatted output failed: %v\n%s", err, text)
		}
		if !EqualAST(p1, p2) {
			t.Fatalf("round trip changed the AST:\n--- original ---\n%s\n--- formatted ---\n%s", src, text)
		}
		// Formatting is a fixpoint after one round.
		if Format(p2) != text {
			t.Fatalf("formatting is not idempotent:\n%s\nvs\n%s", text, Format(p2))
		}
	}
}

// TestFormatRoundTripRandom: parse∘Format is the identity on random programs.
func TestFormatRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for iter := 0; iter < 150; iter++ {
		src := GenProgram(r, GenConfig{Natives: []string{"hash"}, NumHelpers: 2})
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		text := Format(p1)
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("iter %d: re-parse failed: %v\n%s", iter, err, text)
		}
		if !EqualAST(p1, p2) {
			t.Fatalf("iter %d: round trip changed the AST\n%s", iter, text)
		}
	}
}

// TestFormattedSemantics: the formatted program behaves identically.
func TestFormattedSemantics(t *testing.T) {
	ns := Natives{}
	ns.Register("hash", 1, func(a []int64) int64 { return a[0]*7%13 + 1 })
	r := rand.New(rand.NewSource(59))
	for iter := 0; iter < 40; iter++ {
		src := GenProgram(r, GenConfig{Natives: []string{"hash"}})
		p1 := MustCheck(MustParse(src), ns)
		p2 := MustCheck(MustParse(Format(MustParse(src))), ns)
		in := []int64{int64(r.Intn(21) - 10), int64(r.Intn(21) - 10), int64(r.Intn(21) - 10)}
		r1 := Run(p1, in, RunOptions{})
		r2 := Run(p2, in, RunOptions{})
		if r1.Kind != r2.Kind || r1.Return != r2.Return || r1.Path() != r2.Path() {
			t.Fatalf("iter %d: semantics changed by formatting\n%+v\n%+v", iter, r1, r2)
		}
	}
}

func TestEqualASTDetectsDifferences(t *testing.T) {
	a := MustParse(`fn main(x int) { if (x > 0) { error("a"); } }`)
	cases := []string{
		`fn main(x int) { if (x > 1) { error("a"); } }`,               // different literal
		`fn main(x int) { if (x > 0) { error("b"); } }`,               // different message
		`fn main(y int) { if (y > 0) { error("a"); } }`,               // different param name
		`fn main(x int) { if (x > 0) { error("a"); } x = 1; }`,        // extra stmt
		`fn main(x int) int { if (x > 0) { error("a"); } return 0; }`, // ret type
	}
	for _, src := range cases {
		b := MustParse(src)
		if EqualAST(a, b) {
			t.Fatalf("EqualAST failed to distinguish:\n%s", src)
		}
	}
	if !EqualAST(a, MustParse(`fn main(x int) { if (x > 0) { error("a"); } }`)) {
		t.Fatal("EqualAST should accept an identical program")
	}
}
