package mini

import (
	"fmt"
	"strings"
)

// TypeKind discriminates mini types.
type TypeKind int

// Type kinds.
const (
	TInt TypeKind = iota
	TBool
	TArray // fixed-length int array
	TFunc  // function value: fn(int,...) int, callable only
)

// Type is a mini type. Arrays are always arrays of int with a fixed length.
// Function types reuse Len as the arity, which keeps Type comparable (the
// format round-trip tests compare Params with ==).
type Type struct {
	Kind TypeKind
	Len  int // for TArray: length; for TFunc: arity
}

func (t Type) String() string {
	switch t.Kind {
	case TInt:
		return "int"
	case TBool:
		return "bool"
	case TArray:
		return fmt.Sprintf("[%d]int", t.Len)
	case TFunc:
		args := make([]string, t.Len)
		for i := range args {
			args[i] = "int"
		}
		return fmt.Sprintf("fn(%s) int", strings.Join(args, ", "))
	}
	return "?"
}

// Expr is an expression node.
type Expr interface {
	Pos() Pos
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	P Pos
	V int64
}

// BoolLit is true or false.
type BoolLit struct {
	P Pos
	V bool
}

// Ident is a variable reference.
type Ident struct {
	P    Pos
	Name string
}

// Unary is !x or -x.
type Unary struct {
	P  Pos
	Op TokKind
	X  Expr
}

// Binary is a binary operation. For the short-circuit operators && and ||,
// BranchID identifies the implicit branch point that decides whether the
// right operand is evaluated — exactly the conditional jump such operators
// compile to, which is the granularity at which binary-level concolic
// executors like SAGE observe branching.
type Binary struct {
	P        Pos
	Op       TokKind
	X, Y     Expr
	BranchID int
}

// Call is a function call. The checker resolves it to either a user function
// (Fn != nil), a native (Native true), or a call through a function-typed
// parameter (Param true) — a first-class callback input of the program.
type Call struct {
	P      Pos
	Name   string
	Args   []Expr
	Fn     *FuncDecl // user-defined callee, or nil
	Native bool
	Param  bool
}

// Index is an array element read a[i].
type Index struct {
	P    Pos
	Name string
	Idx  Expr
}

// Pos implements Expr.
func (e *IntLit) Pos() Pos  { return e.P }
func (e *BoolLit) Pos() Pos { return e.P }
func (e *Ident) Pos() Pos   { return e.P }
func (e *Unary) Pos() Pos   { return e.P }
func (e *Binary) Pos() Pos  { return e.P }
func (e *Call) Pos() Pos    { return e.P }
func (e *Index) Pos() Pos   { return e.P }

func (*IntLit) exprNode()  {}
func (*BoolLit) exprNode() {}
func (*Ident) exprNode()   {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}
func (*Call) exprNode()    {}
func (*Index) exprNode()   {}

// Stmt is a statement node.
type Stmt interface {
	Pos() Pos
	stmtNode()
}

// VarDecl declares and initializes a scalar: var x = e;
type VarDecl struct {
	P    Pos
	Name string
	Init Expr
}

// ArrDecl declares a zero-initialized array: var a [8];
type ArrDecl struct {
	P    Pos
	Name string
	Len  int
}

// Assign is x = e;
type Assign struct {
	P    Pos
	Name string
	Val  Expr
}

// IndexAssign is a[i] = e;
type IndexAssign struct {
	P    Pos
	Name string
	Idx  Expr
	Val  Expr
}

// If is a conditional; Else is nil, *Block, or *If (else-if chain).
// BranchID identifies this static branch point; it is assigned by Check.
type If struct {
	P        Pos
	Cond     Expr
	Then     *Block
	Else     Stmt
	BranchID int
}

// While is a loop. Its condition is a branch point like an if condition.
type While struct {
	P        Pos
	Cond     Expr
	Body     *Block
	BranchID int
}

// Return exits the current function; Val may be nil in void functions.
type Return struct {
	P   Pos
	Val Expr
}

// ErrorStmt marks a reachable bug, the analogue of the paper's
// "return -1; // error" sites. SiteID is assigned by Check.
type ErrorStmt struct {
	P      Pos
	Msg    string
	SiteID int
}

// ExprStmt evaluates an expression for effect (a call).
type ExprStmt struct {
	P Pos
	X Expr
}

// Block is a brace-delimited statement list.
type Block struct {
	P     Pos
	Stmts []Stmt
}

// Pos implements Stmt.
func (s *VarDecl) Pos() Pos     { return s.P }
func (s *ArrDecl) Pos() Pos     { return s.P }
func (s *Assign) Pos() Pos      { return s.P }
func (s *IndexAssign) Pos() Pos { return s.P }
func (s *If) Pos() Pos          { return s.P }
func (s *While) Pos() Pos       { return s.P }
func (s *Return) Pos() Pos      { return s.P }
func (s *ErrorStmt) Pos() Pos   { return s.P }
func (s *ExprStmt) Pos() Pos    { return s.P }
func (s *Block) Pos() Pos       { return s.P }

func (*VarDecl) stmtNode()     {}
func (*ArrDecl) stmtNode()     {}
func (*Assign) stmtNode()      {}
func (*IndexAssign) stmtNode() {}
func (*If) stmtNode()          {}
func (*While) stmtNode()       {}
func (*Return) stmtNode()      {}
func (*ErrorStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()    {}
func (*Block) stmtNode()       {}

// Param is a formal parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDecl is a function definition. HasRet reports whether the function is
// declared to return an int (the only return type).
type FuncDecl struct {
	P      Pos
	Name   string
	Params []Param
	HasRet bool
	Body   *Block
}

// Program is a checked mini program.
type Program struct {
	Funcs map[string]*FuncDecl
	Order []string // declaration order, for deterministic iteration

	// Filled in by Check:
	NumBranches int      // number of static branch points (if/while conditions)
	ErrorSites  []string // SiteID → message
	Natives     Natives  // the registry the program was checked against
}

// Main returns the entry function.
func (p *Program) Main() *FuncDecl { return p.Funcs["main"] }

// InputShape describes the flattened input vector of a program: one entry per
// scalar input parameter and one per array element, in declaration order.
type InputShape struct {
	Names []string // e.g. "x", "s[0]", "s[1]"
	// ParamOf[i] is the index of the parameter that flat input i belongs to.
	ParamOf []int
}

// Shape computes the input shape of the program's main function.
// Function-typed parameters contribute no scalar slots: they are carried
// separately as FuncValue inputs (see FuncShape).
func (p *Program) Shape() InputShape {
	var sh InputShape
	m := p.Main()
	for pi, prm := range m.Params {
		switch prm.Type.Kind {
		case TArray:
			for i := 0; i < prm.Type.Len; i++ {
				sh.Names = append(sh.Names, fmt.Sprintf("%s[%d]", prm.Name, i))
				sh.ParamOf = append(sh.ParamOf, pi)
			}
		case TFunc:
			// no scalar slots
		default:
			sh.Names = append(sh.Names, prm.Name)
			sh.ParamOf = append(sh.ParamOf, pi)
		}
	}
	return sh
}

// FuncParam describes one function-typed parameter of main.
type FuncParam struct {
	Name  string
	Arity int
}

// FuncShape lists main's function-typed parameters in declaration order. A
// program's full input is the flat scalar vector of Shape plus one FuncValue
// per FuncShape entry.
func (p *Program) FuncShape() []FuncParam {
	var out []FuncParam
	for _, prm := range p.Main().Params {
		if prm.Type.Kind == TFunc {
			out = append(out, FuncParam{Name: prm.Name, Arity: prm.Type.Len})
		}
	}
	return out
}

// Native is a host-provided function opaque to symbolic execution — the
// paper's "unknown function". It must be deterministic (Theorem 3).
type Native struct {
	Name  string
	Arity int
	Fn    func(args []int64) int64
}

// Natives is a registry of native functions by name.
type Natives map[string]*Native

// Register adds a native function.
func (ns Natives) Register(name string, arity int, fn func([]int64) int64) {
	ns[name] = &Native{Name: name, Arity: arity, Fn: fn}
}

func opString(op TokKind) string { return op.String() }

// FormatExpr renders an expression as source text (for diagnostics).
func FormatExpr(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", x.V)
	case *BoolLit:
		return fmt.Sprintf("%v", x.V)
	case *Ident:
		return x.Name
	case *Unary:
		return opString(x.Op) + FormatExpr(x.X)
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", FormatExpr(x.X), opString(x.Op), FormatExpr(x.Y))
	case *Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = FormatExpr(a)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	case *Index:
		return fmt.Sprintf("%s[%s]", x.Name, FormatExpr(x.Idx))
	}
	return "?"
}
