package mini

import (
	"fmt"
)

// StopKind says how an execution ended.
type StopKind int

const (
	// StopReturn: main returned normally.
	StopReturn StopKind = iota
	// StopError: an error("...") site was reached — a bug was found.
	StopError
	// StopRuntime: a runtime fault (division by zero, index out of bounds,
	// step or recursion budget exceeded).
	StopRuntime
)

func (k StopKind) String() string {
	switch k {
	case StopReturn:
		return "return"
	case StopError:
		return "error"
	case StopRuntime:
		return "runtime-fault"
	default:
		return "?"
	}
}

// BranchEvent records one dynamic evaluation of a branch point.
type BranchEvent struct {
	ID    int  // static branch point (If/While BranchID)
	Taken bool // condition value
}

// Result is the outcome of one concrete execution.
type Result struct {
	Kind       StopKind
	Return     int64
	ErrorSite  int // valid when Kind == StopError
	ErrorMsg   string
	RuntimeMsg string
	Branches   []BranchEvent // the executed control path w
	Steps      int
}

// Path returns the branch trace as a compact string, for comparing paths.
func (r *Result) Path() string {
	buf := make([]byte, len(r.Branches))
	for i, b := range r.Branches {
		if b.Taken {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// RunOptions bounds an execution.
type RunOptions struct {
	MaxSteps int // default 200000
	MaxDepth int // default 256
	// OnNativeCall, if set, observes every native (unknown-function) call.
	// This is the hook used to learn input–output samples across runs
	// (Section 7: observing keyword hashes from well-formed seed inputs).
	OnNativeCall func(name string, args []int64, result int64)
	// Funcs supplies the function-valued inputs, aligned with the program's
	// FuncShape. Missing or nil entries run as the default function (the
	// empty table: every application returns 0).
	Funcs []*FuncValue
	// OnCallbackCall, if set, observes every call through a function-typed
	// parameter — the callback analogue of OnNativeCall.
	OnCallbackCall func(fv *FuncValue, args []int64, result int64)
}

type runtimeFault struct{ msg string }

func (f runtimeFault) Error() string { return f.msg }

type errorReached struct {
	site int
	msg  string
}

func (errorReached) Error() string { return "error site reached" }

type value struct {
	i   int64
	b   bool
	arr []int64
	fn  *FuncValue
	t   TypeKind
}

type frame map[string]value

type interp struct {
	prog  *Program
	opts  RunOptions
	steps int
	depth int
	res   *Result
}

// Run executes the checked program's main function on the flattened input
// vector (see Program.Shape). The input length must match the shape.
func Run(prog *Program, input []int64, opts RunOptions) *Result {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 200000
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 256
	}
	in := &interp{prog: prog, opts: opts, res: &Result{}}
	main := prog.Main()

	fr := frame{}
	k := 0
	fnIdx := 0
	for _, prm := range main.Params {
		switch prm.Type.Kind {
		case TArray:
			arr := make([]int64, prm.Type.Len)
			copy(arr, input[k:k+prm.Type.Len])
			k += prm.Type.Len
			fr[prm.Name] = value{t: TArray, arr: arr}
		case TFunc:
			var fv *FuncValue // nil = default function
			if fnIdx < len(opts.Funcs) {
				fv = opts.Funcs[fnIdx]
			}
			fnIdx++
			fr[prm.Name] = value{t: TFunc, fn: fv}
		default:
			fr[prm.Name] = value{t: TInt, i: input[k]}
			k++
		}
	}
	if k != len(input) {
		panic(fmt.Sprintf("mini.Run: input length %d does not match shape %d", len(input), k))
	}

	ret, err := in.execBlock(main.Body, fr)
	in.res.Steps = in.steps
	switch e := err.(type) {
	case nil:
		in.res.Kind = StopReturn
		if ret != nil {
			in.res.Return = ret.i
		}
	case errorReached:
		in.res.Kind = StopError
		in.res.ErrorSite = e.site
		in.res.ErrorMsg = e.msg
	case runtimeFault:
		in.res.Kind = StopRuntime
		in.res.RuntimeMsg = e.msg
	default:
		panic(err)
	}
	return in.res
}

// RunFunc executes a single function of the checked program concretely on
// int arguments (the function must not take array parameters). The Result's
// branch trace covers only the callee's execution. It is the probe pass of
// the compositional-summary machinery: a cheap concrete run that determines
// the intraprocedural path before any symbolic work is spent.
func RunFunc(prog *Program, name string, args []int64, opts RunOptions) *Result {
	fd := prog.Funcs[name]
	if fd == nil {
		panic(fmt.Sprintf("mini.RunFunc: no function %s", name))
	}
	if len(args) != len(fd.Params) {
		panic(fmt.Sprintf("mini.RunFunc: %s takes %d args, got %d", name, len(fd.Params), len(args)))
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 200000
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 256
	}
	in := &interp{prog: prog, opts: opts, res: &Result{}}
	fr := frame{}
	for i, prm := range fd.Params {
		if prm.Type.Kind != TInt {
			panic(fmt.Sprintf("mini.RunFunc: %s has a non-int parameter", name))
		}
		fr[prm.Name] = value{t: TInt, i: args[i]}
	}
	ret, err := in.execBlock(fd.Body, fr)
	in.res.Steps = in.steps
	switch e := err.(type) {
	case nil:
		in.res.Kind = StopReturn
		if ret != nil {
			in.res.Return = ret.i
		}
	case errorReached:
		in.res.Kind = StopError
		in.res.ErrorSite = e.site
		in.res.ErrorMsg = e.msg
	case runtimeFault:
		in.res.Kind = StopRuntime
		in.res.RuntimeMsg = e.msg
	default:
		panic(err)
	}
	return in.res
}

func (in *interp) tick() error {
	in.steps++
	if in.steps > in.opts.MaxSteps {
		return runtimeFault{"step budget exceeded (possible non-termination)"}
	}
	return nil
}

// execBlock runs a block; a non-nil *value return means a `return` statement
// fired with that value (value{t:TBool} unused; void return = &value{}).
func (in *interp) execBlock(b *Block, fr frame) (*value, error) {
	for _, s := range b.Stmts {
		ret, err := in.execStmt(s, fr)
		if err != nil || ret != nil {
			return ret, err
		}
	}
	return nil, nil
}

func (in *interp) execStmt(s Stmt, fr frame) (*value, error) {
	if err := in.tick(); err != nil {
		return nil, err
	}
	switch st := s.(type) {
	case *VarDecl:
		v, err := in.eval(st.Init, fr)
		if err != nil {
			return nil, err
		}
		fr[st.Name] = v
		return nil, nil
	case *ArrDecl:
		fr[st.Name] = value{t: TArray, arr: make([]int64, st.Len)}
		return nil, nil
	case *Assign:
		v, err := in.eval(st.Val, fr)
		if err != nil {
			return nil, err
		}
		fr[st.Name] = v
		return nil, nil
	case *IndexAssign:
		iv, err := in.eval(st.Idx, fr)
		if err != nil {
			return nil, err
		}
		arr := fr[st.Name].arr
		if iv.i < 0 || iv.i >= int64(len(arr)) {
			return nil, runtimeFault{fmt.Sprintf("%s: index %d out of bounds [0,%d)", st.P, iv.i, len(arr))}
		}
		v, err := in.eval(st.Val, fr)
		if err != nil {
			return nil, err
		}
		arr[iv.i] = v.i
		return nil, nil
	case *If:
		cv, err := in.eval(st.Cond, fr)
		if err != nil {
			return nil, err
		}
		in.res.Branches = append(in.res.Branches, BranchEvent{ID: st.BranchID, Taken: cv.b})
		if cv.b {
			return in.execBlock(st.Then, fr)
		}
		switch e := st.Else.(type) {
		case nil:
			return nil, nil
		case *Block:
			return in.execBlock(e, fr)
		case *If:
			return in.execStmt(e, fr)
		}
		return nil, nil
	case *While:
		for {
			cv, err := in.eval(st.Cond, fr)
			if err != nil {
				return nil, err
			}
			in.res.Branches = append(in.res.Branches, BranchEvent{ID: st.BranchID, Taken: cv.b})
			if !cv.b {
				return nil, nil
			}
			ret, err := in.execBlock(st.Body, fr)
			if err != nil || ret != nil {
				return ret, err
			}
			if err := in.tick(); err != nil {
				return nil, err
			}
		}
	case *Return:
		if st.Val == nil {
			return &value{}, nil
		}
		v, err := in.eval(st.Val, fr)
		if err != nil {
			return nil, err
		}
		return &v, nil
	case *ErrorStmt:
		return nil, errorReached{site: st.SiteID, msg: st.Msg}
	case *ExprStmt:
		_, err := in.eval(st.X, fr)
		return nil, err
	case *Block:
		return in.execBlock(st, fr)
	}
	panic(fmt.Sprintf("mini: execStmt: unhandled %T", s))
}

func (in *interp) eval(e Expr, fr frame) (value, error) {
	if err := in.tick(); err != nil {
		return value{}, err
	}
	switch x := e.(type) {
	case *IntLit:
		return value{t: TInt, i: x.V}, nil
	case *BoolLit:
		return value{t: TBool, b: x.V}, nil
	case *Ident:
		return fr[x.Name], nil
	case *Index:
		iv, err := in.eval(x.Idx, fr)
		if err != nil {
			return value{}, err
		}
		arr := fr[x.Name].arr
		if iv.i < 0 || iv.i >= int64(len(arr)) {
			return value{}, runtimeFault{fmt.Sprintf("%s: index %d out of bounds [0,%d)", x.P, iv.i, len(arr))}
		}
		return value{t: TInt, i: arr[iv.i]}, nil
	case *Unary:
		v, err := in.eval(x.X, fr)
		if err != nil {
			return value{}, err
		}
		switch x.Op {
		case TokBang:
			return value{t: TBool, b: !v.b}, nil
		case TokMinus:
			return value{t: TInt, i: -v.i}, nil
		}
	case *Binary:
		l, err := in.eval(x.X, fr)
		if err != nil {
			return value{}, err
		}
		// && and || are short-circuit, like C: the right operand is not
		// evaluated (and can therefore not fault) when the left decides.
		// Each evaluation is an implicit branch event (the conditional jump
		// the operator compiles to), recorded for path comparison.
		switch x.Op {
		case TokAndAnd:
			in.res.Branches = append(in.res.Branches, BranchEvent{ID: x.BranchID, Taken: l.b})
			if !l.b {
				return value{t: TBool, b: false}, nil
			}
			return in.eval(x.Y, fr)
		case TokOrOr:
			in.res.Branches = append(in.res.Branches, BranchEvent{ID: x.BranchID, Taken: l.b})
			if l.b {
				return value{t: TBool, b: true}, nil
			}
			return in.eval(x.Y, fr)
		}
		r, err := in.eval(x.Y, fr)
		if err != nil {
			return value{}, err
		}
		switch x.Op {
		case TokPlus:
			return value{t: TInt, i: l.i + r.i}, nil
		case TokMinus:
			return value{t: TInt, i: l.i - r.i}, nil
		case TokStar:
			return value{t: TInt, i: l.i * r.i}, nil
		case TokSlash:
			if r.i == 0 {
				return value{}, runtimeFault{fmt.Sprintf("%s: division by zero", x.P)}
			}
			return value{t: TInt, i: l.i / r.i}, nil
		case TokPercent:
			if r.i == 0 {
				return value{}, runtimeFault{fmt.Sprintf("%s: modulo by zero", x.P)}
			}
			return value{t: TInt, i: l.i % r.i}, nil
		case TokEq:
			return value{t: TBool, b: l.i == r.i}, nil
		case TokNe:
			return value{t: TBool, b: l.i != r.i}, nil
		case TokLt:
			return value{t: TBool, b: l.i < r.i}, nil
		case TokLe:
			return value{t: TBool, b: l.i <= r.i}, nil
		case TokGt:
			return value{t: TBool, b: l.i > r.i}, nil
		case TokGe:
			return value{t: TBool, b: l.i >= r.i}, nil
		}
	case *Call:
		return in.evalCall(x, fr)
	}
	panic(fmt.Sprintf("mini: eval: unhandled %T", e))
}

func (in *interp) evalCall(x *Call, fr frame) (value, error) {
	if x.Param {
		args := make([]int64, len(x.Args))
		for i, a := range x.Args {
			v, err := in.eval(a, fr)
			if err != nil {
				return value{}, err
			}
			args[i] = v.i
		}
		fv := fr[x.Name].fn
		res := fv.Eval(args)
		if in.opts.OnCallbackCall != nil {
			in.opts.OnCallbackCall(fv, args, res)
		}
		return value{t: TInt, i: res}, nil
	}
	if x.Native {
		nat := in.prog.Natives[x.Name]
		args := make([]int64, len(x.Args))
		for i, a := range x.Args {
			v, err := in.eval(a, fr)
			if err != nil {
				return value{}, err
			}
			args[i] = v.i
		}
		res := nat.Fn(args)
		if in.opts.OnNativeCall != nil {
			in.opts.OnNativeCall(x.Name, args, res)
		}
		return value{t: TInt, i: res}, nil
	}
	fd := x.Fn
	in.depth++
	if in.depth > in.opts.MaxDepth {
		in.depth--
		return value{}, runtimeFault{fmt.Sprintf("%s: recursion budget exceeded", x.P)}
	}
	callee := frame{}
	for i, prm := range fd.Params {
		if prm.Type.Kind == TArray || prm.Type.Kind == TFunc {
			// Arrays and function values are passed by reference.
			id := x.Args[i].(*Ident)
			callee[prm.Name] = fr[id.Name]
			continue
		}
		v, err := in.eval(x.Args[i], fr)
		if err != nil {
			in.depth--
			return value{}, err
		}
		callee[prm.Name] = v
	}
	ret, err := in.execBlock(fd.Body, callee)
	in.depth--
	if err != nil {
		return value{}, err
	}
	if ret == nil {
		// Fell off the end: void functions return nothing; int functions
		// default to 0 (the checker does not prove all paths return).
		return value{t: TInt, i: 0}, nil
	}
	return *ret, nil
}
