// Package mini implements the small imperative language in which all
// programs under test are written: a lexer, recursive-descent parser, static
// checker, and concrete interpreter.
//
// The language is deliberately close to the command language of the paper
// (assignments, conditionals, loops, calls) plus fixed-length integer arrays
// so that byte-string inputs — as needed by the Section 7 lexer application —
// can be modeled. "Unknown functions" (hash, crypto, CRC, OS calls...) are
// native Go callbacks registered with the interpreter; their code is opaque
// to symbolic execution, exactly like library calls in the paper.
//
// Example program:
//
//	fn main(x int, y int) {
//	    if (x == hash(y)) {
//	        error("reached");
//	    }
//	}
package mini

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokString

	TokFn
	TokVar
	TokIf
	TokElse
	TokWhile
	TokReturn
	TokError
	TokTrue
	TokFalse
	TokIntType
	TokBoolType

	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBrack
	TokRBrack
	TokComma
	TokSemi

	TokAssign // =
	TokEq     // ==
	TokNe     // !=
	TokLt
	TokLe
	TokGt
	TokGe
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAndAnd
	TokOrOr
	TokBang
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokInt: "integer", TokString: "string",
	TokFn: "fn", TokVar: "var", TokIf: "if", TokElse: "else", TokWhile: "while",
	TokReturn: "return", TokError: "error", TokTrue: "true", TokFalse: "false",
	TokIntType: "int", TokBoolType: "bool",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBrack: "[", TokRBrack: "]", TokComma: ",", TokSemi: ";",
	TokAssign: "=", TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=",
	TokGt: ">", TokGe: ">=", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%", TokAndAnd: "&&", TokOrOr: "||", TokBang: "!",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Pos  Pos
	Text string // identifier name, string literal contents
	Int  int64  // integer literal value
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return t.Text
	case TokInt:
		return fmt.Sprintf("%d", t.Int)
	case TokString:
		return QuoteString(t.Text)
	}
	return t.Kind.String()
}

// QuoteString renders s as a mini string literal. Mini strings hold raw
// bytes; only the four escapes the lexer understands are emitted, so
// Lex(QuoteString(s)) always yields s back (unlike Go's %q, whose \xNN
// escapes mini does not parse).
func QuoteString(s string) string {
	out := make([]byte, 0, len(s)+2)
	out = append(out, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			out = append(out, '\\', '"')
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		case '\t':
			out = append(out, '\\', 't')
		default:
			out = append(out, c)
		}
	}
	return string(append(out, '"'))
}

// SyntaxError is a lexing, parsing, or checking error with a position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
