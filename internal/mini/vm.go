package mini

import (
	"fmt"

	"hotg/internal/faults"
)

// VM executes compiled bytecode. Results are identical to the tree-walking
// interpreter except for Steps (instructions vs AST visits) and the wording
// of fault messages (no source positions in bytecode).

type vm struct {
	c     *Compiled
	opts  RunOptions
	res   *Result
	steps int
	depth int
	// wrongMod is the injected silent-miscompilation fault
	// (faults.Plan.VMWrongMod): OpMod evaluates floored instead of
	// truncated modulo. Sampled once per RunVM call so the instruction
	// loop stays probe-free.
	wrongMod bool
}

// RunVM executes the compiled program's main function on the flattened input
// vector, like Run.
func RunVM(c *Compiled, input []int64, opts RunOptions) *Result {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 200000
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 256
	}
	m := &vm{c: c, opts: opts, res: &Result{}}
	m.wrongMod = faults.Active().FireVMWrongMod()

	main := c.prog.Main()
	fnIx := c.byName["main"]
	ints := make([]int64, c.fns[fnIx].numInts)
	arrs := make([][]int64, c.fns[fnIx].numArrs)
	fns := make([]*FuncValue, c.fns[fnIx].numFns)

	// Distribute the flattened input over parameter slots. Int parameters
	// occupy the first int slots, array parameters the first array slots, and
	// function parameters the fn slots, in declaration order (mirroring the
	// compiler's declare order).
	k, intSlot, arrSlot, fnSlot := 0, 0, 0, 0
	for _, prm := range main.Params {
		switch prm.Type.Kind {
		case TArray:
			a := make([]int64, prm.Type.Len)
			copy(a, input[k:k+prm.Type.Len])
			k += prm.Type.Len
			arrs[arrSlot] = a
			arrSlot++
		case TFunc:
			if fnSlot < len(opts.Funcs) {
				fns[fnSlot] = opts.Funcs[fnSlot]
			}
			fnSlot++
		default:
			ints[intSlot] = input[k]
			intSlot++
			k++
		}
	}
	if k != len(input) {
		panic(fmt.Sprintf("mini.RunVM: input length %d does not match shape %d", len(input), k))
	}

	ret, err := m.exec(fnIx, ints, arrs, fns)
	m.res.Steps = m.steps
	switch e := err.(type) {
	case nil:
		m.res.Kind = StopReturn
		m.res.Return = ret
	case errorReached:
		m.res.Kind = StopError
		m.res.ErrorSite = e.site
		m.res.ErrorMsg = e.msg
	case runtimeFault:
		m.res.Kind = StopRuntime
		m.res.RuntimeMsg = e.msg
	default:
		panic(err)
	}
	return m.res
}

// exec runs one function frame to completion.
func (m *vm) exec(fnIx int, ints []int64, arrs [][]int64, fns []*FuncValue) (int64, error) {
	fn := &m.c.fns[fnIx]
	code := fn.code
	stack := make([]int64, 0, 16)
	pc := 0

	pop := func() int64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	for pc < len(code) {
		m.steps++
		if m.steps > m.opts.MaxSteps {
			return 0, runtimeFault{"step budget exceeded (possible non-termination)"}
		}
		in := code[pc]
		pc++
		switch in.Op {
		case OpPush:
			stack = append(stack, in.A)
		case OpLoad:
			stack = append(stack, ints[in.A])
		case OpStore:
			ints[in.A] = pop()
		case OpPop:
			stack = stack[:len(stack)-1]
		case OpALoad:
			idx := pop()
			a := arrs[in.A]
			if idx < 0 || idx >= int64(len(a)) {
				return 0, runtimeFault{fmt.Sprintf("vm: index %d out of bounds [0,%d)", idx, len(a))}
			}
			stack = append(stack, a[idx])
		case OpAStore:
			val := pop()
			idx := pop()
			a := arrs[in.A]
			if idx < 0 || idx >= int64(len(a)) {
				return 0, runtimeFault{fmt.Sprintf("vm: index %d out of bounds [0,%d)", idx, len(a))}
			}
			a[idx] = val
		case OpNewArr:
			arrs[in.A] = make([]int64, in.B)

		case OpAdd:
			r := pop()
			stack[len(stack)-1] += r
		case OpSub:
			r := pop()
			stack[len(stack)-1] -= r
		case OpMul:
			r := pop()
			stack[len(stack)-1] *= r
		case OpDiv:
			r := pop()
			if r == 0 {
				return 0, runtimeFault{"vm: division by zero"}
			}
			stack[len(stack)-1] /= r
		case OpMod:
			r := pop()
			if r == 0 {
				return 0, runtimeFault{"vm: modulo by zero"}
			}
			v := stack[len(stack)-1] % r
			if m.wrongMod && v != 0 && (v < 0) != (r < 0) {
				v += r // floored modulo: sign follows the divisor
			}
			stack[len(stack)-1] = v
		case OpNeg:
			stack[len(stack)-1] = -stack[len(stack)-1]

		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			r := pop()
			l := stack[len(stack)-1]
			var b bool
			switch in.Op {
			case OpEq:
				b = l == r
			case OpNe:
				b = l != r
			case OpLt:
				b = l < r
			case OpLe:
				b = l <= r
			case OpGt:
				b = l > r
			case OpGe:
				b = l >= r
			}
			if b {
				stack[len(stack)-1] = 1
			} else {
				stack[len(stack)-1] = 0
			}
		case OpNot:
			if stack[len(stack)-1] == 0 {
				stack[len(stack)-1] = 1
			} else {
				stack[len(stack)-1] = 0
			}

		case OpJmp:
			pc = int(in.A)
		case OpBrF:
			c := pop()
			m.res.Branches = append(m.res.Branches, BranchEvent{ID: int(in.B), Taken: c != 0})
			if c == 0 {
				pc = int(in.A)
			}
		case OpAnd:
			c := pop()
			m.res.Branches = append(m.res.Branches, BranchEvent{ID: int(in.B), Taken: c != 0})
			if c == 0 {
				stack = append(stack, 0)
				pc = int(in.A)
			}
		case OpOr:
			c := pop()
			m.res.Branches = append(m.res.Branches, BranchEvent{ID: int(in.B), Taken: c != 0})
			if c != 0 {
				stack = append(stack, 1)
				pc = int(in.A)
			}

		case OpCallNat:
			nat := m.c.nats[in.A]
			n := int(in.B)
			args := make([]int64, n)
			copy(args, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			out := nat.Fn(args)
			if m.opts.OnNativeCall != nil {
				m.opts.OnNativeCall(nat.Name, args, out)
			}
			stack = append(stack, out)

		case OpCallPar:
			n := int(in.B)
			args := make([]int64, n)
			copy(args, stack[len(stack)-n:])
			stack = stack[:len(stack)-n]
			fv := fns[in.A]
			out := fv.Eval(args)
			if m.opts.OnCallbackCall != nil {
				m.opts.OnCallbackCall(fv, args, out)
			}
			stack = append(stack, out)

		case OpCall:
			m.depth++
			if m.depth > m.opts.MaxDepth {
				return 0, runtimeFault{"vm: recursion budget exceeded"}
			}
			callee := &m.c.fns[in.A]
			site := m.c.sites[in.B]
			cints := make([]int64, callee.numInts)
			carrs := make([][]int64, callee.numArrs)
			// Int args are on the stack in evaluation order; pop them into
			// the parameter slots in reverse.
			for i := site.intArgs - 1; i >= 0; i-- {
				cints[callee.intParam[i]] = pop()
			}
			for i, from := range site.arrFrom {
				carrs[i] = arrs[from]
			}
			cfns := make([]*FuncValue, callee.numFns)
			for i, from := range site.fnFrom {
				cfns[i] = fns[from]
			}
			ret, err := m.exec(int(in.A), cints, carrs, cfns)
			m.depth--
			if err != nil {
				return 0, err
			}
			stack = append(stack, ret)

		case OpRet:
			return pop(), nil
		case OpRetVoid:
			return 0, nil
		case OpError:
			return 0, errorReached{site: int(in.A), msg: m.c.prog.ErrorSites[in.A]}
		default:
			panic(fmt.Sprintf("mini: vm: bad opcode %v", in.Op))
		}
	}
	return 0, nil
}

// Disasm renders the compiled form of one function, for debugging and tests.
func (c *Compiled) Disasm(fn string) string {
	ix, ok := c.byName[fn]
	if !ok {
		return "<no function " + fn + ">"
	}
	out := ""
	for i, in := range c.fns[ix].code {
		out += fmt.Sprintf("%4d  %-8s %d %d\n", i, in.Op, in.A, in.B)
	}
	return out
}

// RunFuncVM executes a single function of the compiled program on int
// arguments, like RunFunc but on the VM. It is the fast probe pass of the
// summary machinery.
func RunFuncVM(c *Compiled, name string, args []int64, opts RunOptions) *Result {
	ix, ok := c.byName[name]
	if !ok {
		panic("mini.RunFuncVM: no function " + name)
	}
	fn := &c.fns[ix]
	if len(args) != len(fn.intParam) || fn.arrParam != 0 || fn.numFns != 0 {
		panic("mini.RunFuncVM: " + name + " signature mismatch (int params only)")
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 200000
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 256
	}
	m := &vm{c: c, opts: opts, res: &Result{}}
	m.wrongMod = faults.Active().FireVMWrongMod()
	ints := make([]int64, fn.numInts)
	for i, slot := range fn.intParam {
		ints[slot] = args[i]
	}
	arrs := make([][]int64, fn.numArrs)
	ret, err := m.exec(ix, ints, arrs, nil)
	m.res.Steps = m.steps
	switch e := err.(type) {
	case nil:
		m.res.Kind = StopReturn
		m.res.Return = ret
	case errorReached:
		m.res.Kind = StopError
		m.res.ErrorSite = e.site
		m.res.ErrorMsg = e.msg
	case runtimeFault:
		m.res.Kind = StopRuntime
		m.res.RuntimeMsg = e.msg
	default:
		panic(err)
	}
	return m.res
}
