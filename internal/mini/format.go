package mini

import (
	"fmt"
	"strings"
)

// Format renders a parsed program back to canonical source text. Formatting
// then re-parsing yields a structurally identical program (checked by the
// round-trip property tests), which makes Format suitable for shrinking and
// reporting generated programs.
func Format(p *Program) string {
	var b strings.Builder
	for i, name := range p.Order {
		if i > 0 {
			b.WriteString("\n")
		}
		formatFunc(&b, p.Funcs[name])
	}
	return b.String()
}

func formatFunc(b *strings.Builder, fd *FuncDecl) {
	fmt.Fprintf(b, "fn %s(", fd.Name)
	for i, prm := range fd.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", prm.Name, prm.Type)
	}
	b.WriteString(")")
	if fd.HasRet {
		b.WriteString(" int")
	}
	b.WriteString(" ")
	formatBlock(b, fd.Body, 0)
	b.WriteString("\n")
}

func formatBlock(b *strings.Builder, blk *Block, depth int) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		formatStmt(b, s, depth+1)
	}
	indent(b, depth)
	b.WriteString("}")
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("\t")
	}
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	indent(b, depth)
	switch st := s.(type) {
	case *VarDecl:
		fmt.Fprintf(b, "var %s = %s;\n", st.Name, FormatExpr(st.Init))
	case *ArrDecl:
		fmt.Fprintf(b, "var %s [%d];\n", st.Name, st.Len)
	case *Assign:
		fmt.Fprintf(b, "%s = %s;\n", st.Name, FormatExpr(st.Val))
	case *IndexAssign:
		fmt.Fprintf(b, "%s[%s] = %s;\n", st.Name, FormatExpr(st.Idx), FormatExpr(st.Val))
	case *If:
		formatIf(b, st, depth)
		b.WriteString("\n")
	case *While:
		fmt.Fprintf(b, "while (%s) ", FormatExpr(st.Cond))
		formatBlock(b, st.Body, depth)
		b.WriteString("\n")
	case *Return:
		if st.Val == nil {
			b.WriteString("return;\n")
		} else {
			fmt.Fprintf(b, "return %s;\n", FormatExpr(st.Val))
		}
	case *ErrorStmt:
		fmt.Fprintf(b, "error(%s);\n", QuoteString(st.Msg))
	case *ExprStmt:
		fmt.Fprintf(b, "%s;\n", FormatExpr(st.X))
	case *Block:
		formatBlock(b, st, depth)
		b.WriteString("\n")
	}
}

func formatIf(b *strings.Builder, st *If, depth int) {
	fmt.Fprintf(b, "if (%s) ", FormatExpr(st.Cond))
	formatBlock(b, st.Then, depth)
	switch e := st.Else.(type) {
	case nil:
	case *Block:
		b.WriteString(" else ")
		formatBlock(b, e, depth)
	case *If:
		b.WriteString(" else ")
		formatIf(b, e, depth)
	}
}

// EqualAST reports whether two checked programs are structurally identical
// (ignoring positions). It is the equivalence used by the format/parse
// round-trip tests.
func EqualAST(a, b *Program) bool {
	if len(a.Order) != len(b.Order) {
		return false
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			return false
		}
		if !equalFunc(a.Funcs[a.Order[i]], b.Funcs[b.Order[i]]) {
			return false
		}
	}
	return true
}

func equalFunc(a, b *FuncDecl) bool {
	if a.Name != b.Name || a.HasRet != b.HasRet || len(a.Params) != len(b.Params) {
		return false
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			return false
		}
	}
	return equalBlock(a.Body, b.Body)
}

func equalBlock(a, b *Block) bool {
	if len(a.Stmts) != len(b.Stmts) {
		return false
	}
	for i := range a.Stmts {
		if !equalStmt(a.Stmts[i], b.Stmts[i]) {
			return false
		}
	}
	return true
}

func equalStmt(a, b Stmt) bool {
	switch x := a.(type) {
	case *VarDecl:
		y, ok := b.(*VarDecl)
		return ok && x.Name == y.Name && equalExpr(x.Init, y.Init)
	case *ArrDecl:
		y, ok := b.(*ArrDecl)
		return ok && x.Name == y.Name && x.Len == y.Len
	case *Assign:
		y, ok := b.(*Assign)
		return ok && x.Name == y.Name && equalExpr(x.Val, y.Val)
	case *IndexAssign:
		y, ok := b.(*IndexAssign)
		return ok && x.Name == y.Name && equalExpr(x.Idx, y.Idx) && equalExpr(x.Val, y.Val)
	case *If:
		y, ok := b.(*If)
		if !ok || !equalExpr(x.Cond, y.Cond) || !equalBlock(x.Then, y.Then) {
			return false
		}
		switch xe := x.Else.(type) {
		case nil:
			return y.Else == nil
		case *Block:
			ye, ok := y.Else.(*Block)
			return ok && equalBlock(xe, ye)
		case *If:
			ye, ok := y.Else.(*If)
			return ok && equalStmt(xe, ye)
		}
		return false
	case *While:
		y, ok := b.(*While)
		return ok && equalExpr(x.Cond, y.Cond) && equalBlock(x.Body, y.Body)
	case *Return:
		y, ok := b.(*Return)
		if !ok {
			return false
		}
		if x.Val == nil || y.Val == nil {
			return x.Val == nil && y.Val == nil
		}
		return equalExpr(x.Val, y.Val)
	case *ErrorStmt:
		y, ok := b.(*ErrorStmt)
		return ok && x.Msg == y.Msg
	case *ExprStmt:
		y, ok := b.(*ExprStmt)
		return ok && equalExpr(x.X, y.X)
	case *Block:
		y, ok := b.(*Block)
		return ok && equalBlock(x, y)
	}
	return false
}

func equalExpr(a, b Expr) bool {
	switch x := a.(type) {
	case *IntLit:
		y, ok := b.(*IntLit)
		return ok && x.V == y.V
	case *BoolLit:
		y, ok := b.(*BoolLit)
		return ok && x.V == y.V
	case *Ident:
		y, ok := b.(*Ident)
		return ok && x.Name == y.Name
	case *Unary:
		y, ok := b.(*Unary)
		return ok && x.Op == y.Op && equalExpr(x.X, y.X)
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && equalExpr(x.X, y.X) && equalExpr(x.Y, y.Y)
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !equalExpr(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Index:
		y, ok := b.(*Index)
		return ok && x.Name == y.Name && equalExpr(x.Idx, y.Idx)
	}
	return false
}
