package mini

import "fmt"

// Bytecode compiler: lowers a checked program to a compact stack-machine
// form (vm.go). The VM produces results identical to the tree-walking
// interpreter — same stop kind, return value, error site, and branch trace —
// which the property tests assert on random programs; only step counts
// differ (the VM counts instructions, the interpreter counts AST visits).
// Concrete-execution-heavy components (the blackbox fuzzing baseline) run on
// the VM.

// Opcode enumerates VM instructions.
type Opcode uint8

// VM instruction set.
const (
	OpPush   Opcode = iota // push A (constant)
	OpLoad                 // push locals[A]
	OpStore                // locals[A] = pop
	OpALoad                // idx = pop; push arrays[A][idx]
	OpAStore               // val = pop; idx = pop; arrays[A][idx] = val
	OpNewArr               // arrays[A] = zeroed array of length B

	OpAdd // binary arithmetic: r = pop, l = pop, push l∘r
	OpSub
	OpMul
	OpDiv // faults on zero divisor
	OpMod
	OpNeg // unary

	OpEq // comparisons push 0/1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpNot // logical negation of 0/1

	OpJmp // unconditional jump to A
	OpBrF // c = pop; record event (B, c≠0); if c == 0 jump A  (if/while)
	OpAnd // c = pop; record event (B, c≠0); if c == 0 push 0 and jump A
	OpOr  // c = pop; record event (B, c≠0); if c ≠ 0 push 1 and jump A

	OpCall    // call function A with call-site descriptor B
	OpCallNat // call native A with B int args
	OpRet     // return pop
	OpRetVoid // return (void / fall-off)
	OpError   // error site A (message table index A)
	OpPop     // discard the top of stack
	OpCallPar // apply function value in fn slot A to B int args
)

var opNames = [...]string{
	"push", "load", "store", "aload", "astore", "newarr",
	"add", "sub", "mul", "div", "mod", "neg",
	"eq", "ne", "lt", "le", "gt", "ge", "not",
	"jmp", "brf", "and", "or",
	"call", "callnat", "ret", "retvoid", "error", "pop",
	"callpar",
}

func (o Opcode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one VM instruction. The operand meanings depend on the opcode.
type Instr struct {
	Op   Opcode
	A, B int64
}

// callSite describes how one call's arguments map into the callee frame:
// int arguments are evaluated onto the stack (popped in reverse); array and
// function arguments are bound by reference from caller slots.
type callSite struct {
	intArgs int   // how many int args are on the stack
	arrFrom []int // caller array slots, in parameter order of array params
	fnFrom  []int // caller fn slots, in parameter order of function params
}

// compiledFn is one lowered function.
type compiledFn struct {
	name     string
	code     []Instr
	numInts  int   // int-local slot count (params first)
	numArrs  int   // array-local slot count (array params first)
	numFns   int   // fn slot count (function params only — no fn locals)
	arrLens  []int // static length per array slot (0 when bound by reference)
	intParam []int // int-param slot order (for CALL frame setup)
	arrParam int   // number of array parameters
	hasRet   bool
}

// Compiled is a program lowered to bytecode.
type Compiled struct {
	prog   *Program
	fns    []compiledFn
	byName map[string]int
	sites  []callSite
	nats   []*Native
	natIx  map[string]int
}

// CompileVM lowers a checked program to bytecode.
func CompileVM(p *Program) *Compiled {
	c := &Compiled{prog: p, byName: make(map[string]int), natIx: make(map[string]int)}
	for _, name := range p.Order {
		c.byName[name] = len(c.fns)
		c.fns = append(c.fns, compiledFn{name: name})
	}
	for _, name := range p.Order {
		fc := &fnCompiler{c: c, fd: p.Funcs[name]}
		c.fns[c.byName[name]] = fc.compile()
	}
	return c
}

func (c *Compiled) natIndex(name string) int {
	if ix, ok := c.natIx[name]; ok {
		return ix
	}
	ix := len(c.nats)
	c.natIx[name] = ix
	c.nats = append(c.nats, c.prog.Natives[name])
	return ix
}

// fnCompiler lowers one function.
type fnCompiler struct {
	c  *Compiled
	fd *FuncDecl

	code    []Instr
	scopes  []map[string]varSlot
	numInts int
	numArrs int
	numFns  int
	arrLens []int
}

type varSlot struct {
	slot  int
	isArr bool
	isFn  bool
}

func (f *fnCompiler) compile() compiledFn {
	out := compiledFn{name: f.fd.Name, hasRet: f.fd.HasRet}
	f.push()
	for _, prm := range f.fd.Params {
		switch prm.Type.Kind {
		case TArray:
			f.declare(prm.Name, true, 0)
			out.arrParam++
		case TFunc:
			f.declareFn(prm.Name)
		default:
			s := f.declare(prm.Name, false, 0)
			out.intParam = append(out.intParam, s)
		}
	}
	f.block(f.fd.Body)
	f.emit(Instr{Op: OpRetVoid})
	out.code = f.code
	out.numInts = f.numInts
	out.numArrs = f.numArrs
	out.numFns = f.numFns
	out.arrLens = f.arrLens
	return out
}

func (f *fnCompiler) push() { f.scopes = append(f.scopes, map[string]varSlot{}) }
func (f *fnCompiler) pop()  { f.scopes = f.scopes[:len(f.scopes)-1] }
func (f *fnCompiler) emit(i Instr) int {
	f.code = append(f.code, i)
	return len(f.code) - 1
}

func (f *fnCompiler) declare(name string, isArr bool, arrLen int) int {
	var s int
	if isArr {
		s = f.numArrs
		f.numArrs++
		f.arrLens = append(f.arrLens, arrLen)
	} else {
		s = f.numInts
		f.numInts++
	}
	f.scopes[len(f.scopes)-1][name] = varSlot{slot: s, isArr: isArr}
	return s
}

// declareFn assigns a function-value slot; only parameters occupy them.
func (f *fnCompiler) declareFn(name string) int {
	s := f.numFns
	f.numFns++
	f.scopes[len(f.scopes)-1][name] = varSlot{slot: s, isFn: true}
	return s
}

func (f *fnCompiler) lookup(name string) varSlot {
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if vs, ok := f.scopes[i][name]; ok {
			return vs
		}
	}
	panic("mini: compile: unresolved variable " + name) // checker guarantees
}

func (f *fnCompiler) block(b *Block) {
	f.push()
	for _, s := range b.Stmts {
		f.stmt(s)
	}
	f.pop()
}

func (f *fnCompiler) stmt(s Stmt) {
	switch st := s.(type) {
	case *VarDecl:
		f.expr(st.Init)
		slot := f.declare(st.Name, false, 0)
		f.emit(Instr{Op: OpStore, A: int64(slot)})
	case *ArrDecl:
		slot := f.declare(st.Name, true, st.Len)
		f.emit(Instr{Op: OpNewArr, A: int64(slot), B: int64(st.Len)})
	case *Assign:
		f.expr(st.Val)
		f.emit(Instr{Op: OpStore, A: int64(f.lookup(st.Name).slot)})
	case *IndexAssign:
		// Evaluation order matches the interpreter: index, then value.
		f.expr(st.Idx)
		f.expr(st.Val)
		f.emit(Instr{Op: OpAStore, A: int64(f.lookup(st.Name).slot)})
	case *If:
		f.expr(st.Cond)
		brf := f.emit(Instr{Op: OpBrF, B: int64(st.BranchID)})
		f.block(st.Then)
		if st.Else == nil {
			f.code[brf].A = int64(len(f.code))
			return
		}
		jmp := f.emit(Instr{Op: OpJmp})
		f.code[brf].A = int64(len(f.code))
		switch e := st.Else.(type) {
		case *Block:
			f.block(e)
		case *If:
			f.stmt(e)
		}
		f.code[jmp].A = int64(len(f.code))
	case *While:
		top := len(f.code)
		f.expr(st.Cond)
		brf := f.emit(Instr{Op: OpBrF, B: int64(st.BranchID)})
		f.block(st.Body)
		f.emit(Instr{Op: OpJmp, A: int64(top)})
		f.code[brf].A = int64(len(f.code))
	case *Return:
		if st.Val == nil {
			f.emit(Instr{Op: OpRetVoid})
			return
		}
		f.expr(st.Val)
		f.emit(Instr{Op: OpRet})
	case *ErrorStmt:
		f.emit(Instr{Op: OpError, A: int64(st.SiteID)})
	case *ExprStmt:
		call := st.X.(*Call)
		f.call(call)
		// Discard the return value: natives and int functions leave one
		// word; void user functions leave a zero for uniformity.
		f.emit(Instr{Op: OpPop})
	case *Block:
		f.block(st)
	}
}

func (f *fnCompiler) expr(e Expr) {
	switch x := e.(type) {
	case *IntLit:
		f.emit(Instr{Op: OpPush, A: x.V})
	case *BoolLit:
		v := int64(0)
		if x.V {
			v = 1
		}
		f.emit(Instr{Op: OpPush, A: v})
	case *Ident:
		f.emit(Instr{Op: OpLoad, A: int64(f.lookup(x.Name).slot)})
	case *Index:
		f.expr(x.Idx)
		f.emit(Instr{Op: OpALoad, A: int64(f.lookup(x.Name).slot)})
	case *Unary:
		f.expr(x.X)
		if x.Op == TokBang {
			f.emit(Instr{Op: OpNot})
		} else {
			f.emit(Instr{Op: OpNeg})
		}
	case *Binary:
		switch x.Op {
		case TokAndAnd:
			f.expr(x.X)
			and := f.emit(Instr{Op: OpAnd, B: int64(x.BranchID)})
			f.expr(x.Y)
			f.code[and].A = int64(len(f.code))
			return
		case TokOrOr:
			f.expr(x.X)
			or := f.emit(Instr{Op: OpOr, B: int64(x.BranchID)})
			f.expr(x.Y)
			f.code[or].A = int64(len(f.code))
			return
		}
		f.expr(x.X)
		f.expr(x.Y)
		var op Opcode
		switch x.Op {
		case TokPlus:
			op = OpAdd
		case TokMinus:
			op = OpSub
		case TokStar:
			op = OpMul
		case TokSlash:
			op = OpDiv
		case TokPercent:
			op = OpMod
		case TokEq:
			op = OpEq
		case TokNe:
			op = OpNe
		case TokLt:
			op = OpLt
		case TokLe:
			op = OpLe
		case TokGt:
			op = OpGt
		case TokGe:
			op = OpGe
		default:
			panic("mini: compile: bad binary op")
		}
		f.emit(Instr{Op: op})
	case *Call:
		f.call(x)
	}
}

func (f *fnCompiler) call(x *Call) {
	if x.Param {
		for _, a := range x.Args {
			f.expr(a)
		}
		f.emit(Instr{Op: OpCallPar, A: int64(f.lookup(x.Name).slot), B: int64(len(x.Args))})
		return
	}
	if x.Native {
		for _, a := range x.Args {
			f.expr(a)
		}
		f.emit(Instr{Op: OpCallNat, A: int64(f.c.natIndex(x.Name)), B: int64(len(x.Args))})
		return
	}
	site := callSite{}
	for i, a := range x.Args {
		switch x.Fn.Params[i].Type.Kind {
		case TArray:
			id := a.(*Ident)
			site.arrFrom = append(site.arrFrom, f.lookup(id.Name).slot)
			continue
		case TFunc:
			id := a.(*Ident)
			site.fnFrom = append(site.fnFrom, f.lookup(id.Name).slot)
			continue
		}
		f.expr(a)
		site.intArgs++
	}
	siteIx := len(f.c.sites)
	f.c.sites = append(f.c.sites, site)
	f.emit(Instr{Op: OpCall, A: int64(f.c.byName[x.Name]), B: int64(siteIx)})
}
