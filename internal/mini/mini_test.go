package mini

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func stdNatives() Natives {
	ns := Natives{}
	ns.Register("hash", 1, func(a []int64) int64 { return (a[0]*a[0]*7 + 13) % 1000 })
	return ns
}

func mustProg(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := Check(p, stdNatives()); err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`fn main(x int) { if (x == 42) { error("hit"); } } // done`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokFn, TokIdent, TokLParen, TokIdent, TokIntType, TokRParen,
		TokLBrace, TokIf, TokLParen, TokIdent, TokEq, TokInt, TokRParen, TokLBrace,
		TokError, TokLParen, TokString, TokRParen, TokSemi, TokRBrace, TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Fatalf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexPositionsAndErrors(t *testing.T) {
	toks, err := Lex("fn\nmain")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 1 {
		t.Fatalf("pos = %v", toks[1].Pos)
	}
	if _, err := Lex("@"); err == nil {
		t.Fatal("expected error for @")
	}
	if _, err := Lex(`"unterminated`); err == nil {
		t.Fatal("expected error for unterminated string")
	}
	if _, err := Lex(`"bad \q escape"`); err == nil {
		t.Fatal("expected error for bad escape")
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex(`"a\n\t\"\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a\n\t\"\\" {
		t.Fatalf("text = %q", toks[0].Text)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,                               // no main
		`fn f() {}`,                      // no main
		`fn main( {}`,                    // bad params
		`fn main() { var x = ; }`,        // bad expr
		`fn main() { if x { } }`,         // missing parens
		`fn main() { x = 1 }`,            // missing semicolon
		`fn main() {`,                    // unterminated
		`fn main() {} fn main() {}`,      // duplicate
		`fn main(a [0]int) {}`,           // zero-length array
		`fn main() { var a [70000]; }`,   // oversize array
		`fn main() { 1 + 2; }`,           // non-call statement
		`fn main() { var a [3]; a[0]; }`, // index without assignment
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	bad := []struct{ src, want string }{
		{`fn main() { x = 1; }`, "undefined"},
		{`fn main() { var x = 1; var x = 2; }`, "redeclared"},
		{`fn main() { var x = true + 1; }`, "bool"},
		{`fn main() { if (1) {} }`, "must be bool"},
		{`fn main() { while (2) {} }`, "must be bool"},
		{`fn main() { var x = hash(1, 2); }`, "expects 1 arguments"},
		{`fn main() { var x = nosuch(1); }`, "undefined function"},
		{`fn main() { var a [3]; var x = a; }`, "without an index"},
		{`fn main() { var x = 1; x[0] = 2; }`, "not an array"},
		{`fn main() { var a [3]; a[true] = 1; }`, "index must be int"},
		{`fn f() {} fn main() { var x = f(); }`, "no return value"},
		{`fn f() int { return 1; } fn main() { var x = f(1); }`, "expects 0 arguments"},
		{`fn main() int { return; }`, "must return int"},
		{`fn main() { return 1; }`, "no return value"},
		{`fn f(a [4]int) {} fn main() { var a [3]; f(a); }`, "array length 3, want 4"},
		{`fn f(a [4]int) {} fn main() { f(1); }`, "must be an array"},
		{`fn main() { var hash = 1; }`, "conflicts with a native"},
		{`fn f() {} fn main() { var f = 1; }`, "conflicts with a function"},
		{`fn main() { var x = true < false; }`, "compares ints"},
		{`fn main() { var x = 1 && 2; }`, "needs bool"},
		{`fn main() { var x = !3; }`, "needs bool"},
		{`fn main() { var x = -true; }`, "needs int"},
	}
	for _, c := range bad {
		p, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q) failed at parse time: %v", c.src, err)
			continue
		}
		err = Check(p, stdNatives())
		if err == nil {
			t.Errorf("Check(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Check(%q) error %q does not mention %q", c.src, err, c.want)
		}
	}
}

func TestCheckAssignsIDs(t *testing.T) {
	p := mustProg(t, `
fn main(x int) {
	if (x > 0) {
		error("a");
	} else {
		if (x < -5) { error("b"); }
	}
	while (x > 0) { x = x - 1; }
}`)
	if p.NumBranches != 3 {
		t.Fatalf("NumBranches = %d, want 3", p.NumBranches)
	}
	if len(p.ErrorSites) != 2 || p.ErrorSites[0] != "a" || p.ErrorSites[1] != "b" {
		t.Fatalf("ErrorSites = %v", p.ErrorSites)
	}
}

func TestShape(t *testing.T) {
	p := mustProg(t, `fn main(x int, s [3]int, y int) {}`)
	sh := p.Shape()
	want := []string{"x", "s[0]", "s[1]", "s[2]", "y"}
	if len(sh.Names) != len(want) {
		t.Fatalf("shape = %v", sh.Names)
	}
	for i := range want {
		if sh.Names[i] != want[i] {
			t.Fatalf("shape[%d] = %s, want %s", i, sh.Names[i], want[i])
		}
	}
	if sh.ParamOf[2] != 1 || sh.ParamOf[4] != 2 {
		t.Fatalf("ParamOf = %v", sh.ParamOf)
	}
}

func TestRunArithmetic(t *testing.T) {
	p := mustProg(t, `
fn main(x int, y int) int {
	var s = x + y * 2 - 3;
	var q = x / y;
	var r = x % y;
	return s * 10 + q * 100 + r;
}`)
	res := Run(p, []int64{7, 2}, RunOptions{})
	if res.Kind != StopReturn {
		t.Fatalf("kind = %v (%s)", res.Kind, res.RuntimeMsg)
	}
	want := int64((7+2*2-3)*10 + (7/2)*100 + 7%2)
	if res.Return != want {
		t.Fatalf("return = %d, want %d", res.Return, want)
	}
}

func TestRunBranchTrace(t *testing.T) {
	p := mustProg(t, `
fn main(x int) {
	if (x > 0) { x = 1; }
	if (x == 1) { x = 2; }
}`)
	res := Run(p, []int64{5}, RunOptions{})
	if res.Path() != "11" {
		t.Fatalf("path = %q", res.Path())
	}
	res = Run(p, []int64{-1}, RunOptions{})
	if res.Path() != "00" {
		t.Fatalf("path = %q", res.Path())
	}
}

func TestRunWhileAndArrays(t *testing.T) {
	p := mustProg(t, `
fn main(n int) int {
	var a [10];
	var i = 0;
	while (i < n) {
		a[i] = i * i;
		i = i + 1;
	}
	var s = 0;
	i = 0;
	while (i < n) {
		s = s + a[i];
		i = i + 1;
	}
	return s;
}`)
	res := Run(p, []int64{5}, RunOptions{})
	if res.Kind != StopReturn || res.Return != 0+1+4+9+16 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunErrorSite(t *testing.T) {
	p := mustProg(t, `
fn main(x int) {
	if (x == hash(7)) { error("gotcha"); }
}`)
	h := stdNatives()["hash"].Fn([]int64{7})
	res := Run(p, []int64{h}, RunOptions{})
	if res.Kind != StopError || res.ErrorMsg != "gotcha" || res.ErrorSite != 0 {
		t.Fatalf("res = %+v", res)
	}
	res = Run(p, []int64{h + 1}, RunOptions{})
	if res.Kind != StopReturn {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunRuntimeFaults(t *testing.T) {
	cases := []struct {
		src   string
		input []int64
		want  string
	}{
		{`fn main(x int) int { return 1 / x; }`, []int64{0}, "division by zero"},
		{`fn main(x int) int { return 1 % x; }`, []int64{0}, "modulo by zero"},
		{`fn main(x int) int { var a [3]; return a[x]; }`, []int64{5}, "out of bounds"},
		{`fn main(x int) { var a [3]; a[x] = 1; }`, []int64{-1}, "out of bounds"},
		{`fn main(x int) { while (x == x) { } }`, []int64{1}, "step budget"},
	}
	for _, c := range cases {
		p := mustProg(t, c.src)
		res := Run(p, c.input, RunOptions{MaxSteps: 10000})
		if res.Kind != StopRuntime || !strings.Contains(res.RuntimeMsg, c.want) {
			t.Fatalf("src %q: res = %+v", c.src, res)
		}
	}
}

func TestRunRecursion(t *testing.T) {
	p := mustProg(t, `
fn fib(n int) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
fn main(n int) int { return fib(n); }`)
	res := Run(p, []int64{10}, RunOptions{})
	if res.Kind != StopReturn || res.Return != 55 {
		t.Fatalf("fib(10) = %+v", res)
	}
	p = mustProg(t, `
fn loop(n int) int { return loop(n); }
fn main(n int) int { return loop(n); }`)
	res = Run(p, []int64{1}, RunOptions{MaxDepth: 32})
	if res.Kind != StopRuntime || !strings.Contains(res.RuntimeMsg, "recursion") {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunArrayByReference(t *testing.T) {
	p := mustProg(t, `
fn fill(a [4]int, v int) {
	var i = 0;
	while (i < 4) { a[i] = v; i = i + 1; }
}
fn main(v int) int {
	var a [4];
	fill(a, v);
	return a[0] + a[3];
}`)
	res := Run(p, []int64{21}, RunOptions{})
	if res.Kind != StopReturn || res.Return != 42 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunShortCircuit(t *testing.T) {
	p := mustProg(t, `
fn main(i int) int {
	var a [3];
	a[0] = 7;
	// Without short-circuit &&, i==5 would fault on a[i].
	if (i < 3 && a[i] > 0) { return 1; }
	if (i >= 3 || a[i] == 0) { return 2; }
	return 3;
}`)
	res := Run(p, []int64{5}, RunOptions{})
	if res.Kind != StopReturn || res.Return != 2 {
		t.Fatalf("res = %+v", res)
	}
	res = Run(p, []int64{0}, RunOptions{})
	if res.Kind != StopReturn || res.Return != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunNativeObserver(t *testing.T) {
	p := mustProg(t, `fn main(x int) int { return hash(x) + hash(3); }`)
	var calls []string
	res := Run(p, []int64{2}, RunOptions{
		OnNativeCall: func(name string, args []int64, result int64) {
			calls = append(calls, name)
			if len(args) != 1 {
				t.Fatalf("args = %v", args)
			}
		},
	})
	if res.Kind != StopReturn {
		t.Fatalf("res = %+v", res)
	}
	if len(calls) != 2 {
		t.Fatalf("calls = %v", calls)
	}
}

func TestRunFallOffEndReturnsZero(t *testing.T) {
	p := mustProg(t, `
fn f(x int) int { if (x > 0) { return 1; } }
fn main(x int) int { return f(x); }`)
	res := Run(p, []int64{-1}, RunOptions{})
	if res.Kind != StopReturn || res.Return != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestFormatExpr(t *testing.T) {
	p := mustProg(t, `fn main(x int) { if (x + 1 == hash(x) * 2) { error("e"); } }`)
	ifStmt := p.Main().Body.Stmts[0].(*If)
	got := FormatExpr(ifStmt.Cond)
	if got != "((x + 1) == (hash(x) * 2))" {
		t.Fatalf("FormatExpr = %q", got)
	}
}

func TestMustParseAndCheckPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on bad source")
		}
	}()
	MustParse("not a program")
}

// TestGenProgramFuncParamsDeterministic pins the higher-order generator: a
// fixed seed yields byte-identical source on every call, the program
// typechecks against the standard natives, main carries exactly the requested
// function-typed parameters, and the generated body actually calls through at
// least one of them (so downstream property tests never silently degenerate
// to first-order programs).
func TestGenProgramFuncParamsDeterministic(t *testing.T) {
	cfg := GenConfig{Natives: []string{"hash"}, NumHelpers: 1, NumInputs: 2, FuncParams: 2}
	called := 0
	for seed := int64(1); seed <= 25; seed++ {
		a := GenProgram(rand.New(rand.NewSource(seed)), cfg)
		b := GenProgram(rand.New(rand.NewSource(seed)), cfg)
		if a != b {
			t.Fatalf("seed %d: generator not deterministic:\n%s\n---\n%s", seed, a, b)
		}
		prog := MustCheck(MustParse(a), stdNatives())
		shape := prog.FuncShape()
		if len(shape) != cfg.FuncParams {
			t.Fatalf("seed %d: %d function params, want %d\n%s", seed, len(shape), cfg.FuncParams, a)
		}
		for i, fp := range shape {
			if want := fmt.Sprintf("f%d", i); fp.Name != want || fp.Arity != 1 {
				t.Fatalf("seed %d: param %d is %s/%d, want %s/1", seed, i, fp.Name, fp.Arity, want)
			}
		}
		if strings.Contains(a, "f0(") || strings.Contains(a, "f1(") {
			called++
		}
	}
	if called < 12 {
		t.Fatalf("only %d/25 seeds call a function parameter; generator grammar regressed", called)
	}
}
