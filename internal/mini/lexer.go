package mini

import (
	"strconv"
)

var keywords = map[string]TokKind{
	"fn": TokFn, "var": TokVar, "if": TokIf, "else": TokElse, "while": TokWhile,
	"return": TokReturn, "error": TokError, "true": TokTrue, "false": TokFalse,
	"int": TokIntType, "bool": TokBoolType,
}

// Lex tokenizes src. Comments run from // to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	pos := func() Pos { return Pos{Line: line, Col: col} }
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case isDigit(c):
			p := pos()
			j := i
			for j < n && isDigit(src[j]) {
				j++
			}
			v, err := strconv.ParseInt(src[i:j], 10, 64)
			if err != nil {
				return nil, errf(p, "bad integer literal %q", src[i:j])
			}
			toks = append(toks, Token{Kind: TokInt, Pos: p, Int: v})
			advance(j - i)
		case isAlpha(c):
			p := pos()
			j := i
			for j < n && (isAlpha(src[j]) || isDigit(src[j])) {
				j++
			}
			word := src[i:j]
			if k, ok := keywords[word]; ok {
				toks = append(toks, Token{Kind: k, Pos: p, Text: word})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Pos: p, Text: word})
			}
			advance(j - i)
		case c == '"':
			p := pos()
			j := i + 1
			var buf []byte
			for j < n && src[j] != '"' {
				if src[j] == '\\' && j+1 < n {
					j++
					switch src[j] {
					case 'n':
						buf = append(buf, '\n')
					case 't':
						buf = append(buf, '\t')
					case '\\':
						buf = append(buf, '\\')
					case '"':
						buf = append(buf, '"')
					default:
						return nil, errf(p, "bad escape \\%c", src[j])
					}
				} else {
					buf = append(buf, src[j])
				}
				j++
			}
			if j >= n {
				return nil, errf(p, "unterminated string")
			}
			toks = append(toks, Token{Kind: TokString, Pos: p, Text: string(buf)})
			advance(j + 1 - i)
		default:
			p := pos()
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			var k TokKind
			size := 1
			switch two {
			case "==":
				k, size = TokEq, 2
			case "!=":
				k, size = TokNe, 2
			case "<=":
				k, size = TokLe, 2
			case ">=":
				k, size = TokGe, 2
			case "&&":
				k, size = TokAndAnd, 2
			case "||":
				k, size = TokOrOr, 2
			default:
				switch c {
				case '(':
					k = TokLParen
				case ')':
					k = TokRParen
				case '{':
					k = TokLBrace
				case '}':
					k = TokRBrace
				case '[':
					k = TokLBrack
				case ']':
					k = TokRBrack
				case ',':
					k = TokComma
				case ';':
					k = TokSemi
				case '=':
					k = TokAssign
				case '<':
					k = TokLt
				case '>':
					k = TokGt
				case '+':
					k = TokPlus
				case '-':
					k = TokMinus
				case '*':
					k = TokStar
				case '/':
					k = TokSlash
				case '%':
					k = TokPercent
				case '!':
					k = TokBang
				default:
					return nil, errf(p, "unexpected character %q", string(c))
				}
			}
			toks = append(toks, Token{Kind: k, Pos: p})
			advance(size)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: pos()})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
