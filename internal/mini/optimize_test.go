package mini

import (
	"math/rand"
	"strings"
	"testing"
)

func TestOptimizeFoldsConstants(t *testing.T) {
	_, c := vmProg(t, `fn main(x int) int { return x + (2 + 3) * 4; }`)
	before := c.InstrCount()
	c.Optimize()
	after := c.InstrCount()
	if after >= before {
		t.Fatalf("no shrinkage: %d → %d\n%s", before, after, c.Disasm("main"))
	}
	// (2+3)*4 must have been folded to a single push of 20.
	if !strings.Contains(c.Disasm("main"), "push     20") {
		t.Fatalf("folded constant missing:\n%s", c.Disasm("main"))
	}
	rv := RunVM(c, []int64{1}, RunOptions{})
	if rv.Kind != StopReturn || rv.Return != 21 {
		t.Fatalf("rv = %+v", rv)
	}
}

func TestOptimizeKeepsRuntimeFaults(t *testing.T) {
	// 1/0 is a constant expression but must still fault at run time.
	_, c := vmProg(t, `fn main() int { return 1 / 0; }`)
	c.Optimize()
	rv := RunVM(c, nil, RunOptions{})
	if rv.Kind != StopRuntime {
		t.Fatalf("constant division by zero must fault: %+v", rv)
	}
}

func TestOptimizeKeepsBranchEvents(t *testing.T) {
	// Constant conditions still record events (trace equivalence with the
	// interpreter).
	p, c := vmProg(t, `
fn main(x int) {
	if (1 < 2) {
		if (x > 0) { error("e"); }
	}
	if (true && x > 5) { error("f"); }
}`)
	c.Optimize()
	for _, in := range [][]int64{{0}, {3}, {9}} {
		ri := Run(p, in, RunOptions{})
		rv := RunVM(c, in, RunOptions{})
		if !sameResult(ri, rv) {
			t.Fatalf("input %v: interp %+v (%s) vs optimized vm %+v (%s)",
				in, ri, ri.Path(), rv, rv.Path())
		}
	}
}

func TestOptimizeJumpThreading(t *testing.T) {
	// Nested if/else produces jump-to-jump chains; threading must preserve
	// semantics.
	p, c := vmProg(t, `
fn main(x int) int {
	var r = 0;
	if (x > 0) {
		if (x > 10) { r = 2; } else { r = 1; }
	} else {
		if (x < -10) { r = -2; } else { r = -1; }
	}
	return r;
}`)
	c.Optimize()
	for _, in := range [][]int64{{20}, {5}, {0}, {-5}, {-20}} {
		ri := Run(p, in, RunOptions{})
		rv := RunVM(c, in, RunOptions{})
		if !sameResult(ri, rv) {
			t.Fatalf("input %v: %+v vs %+v", in, ri, rv)
		}
	}
}

// TestOptimizeEquivalenceProperty: optimized bytecode is observationally
// identical to the interpreter on random programs.
func TestOptimizeEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	ns := vmNatives()
	shrunk := 0
	for iter := 0; iter < 150; iter++ {
		src := GenProgram(r, GenConfig{Natives: []string{"hash"}, NumHelpers: 1})
		p := MustCheck(MustParse(src), ns)
		c := CompileVM(p)
		before := c.InstrCount()
		c.Optimize()
		if c.InstrCount() < before {
			shrunk++
		}
		for rep := 0; rep < 3; rep++ {
			in := []int64{int64(r.Intn(41) - 20), int64(r.Intn(41) - 20), int64(r.Intn(41) - 20)}
			ri := Run(p, in, RunOptions{})
			rv := RunVM(c, in, RunOptions{})
			if !sameResult(ri, rv) {
				t.Fatalf("iter %d input %v:\ninterp %+v\nopt-vm %+v\n%s", iter, in, ri, rv, src)
			}
		}
	}
	if shrunk == 0 {
		t.Fatal("the optimizer never shrank anything across 150 random programs")
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	_, c := vmProg(t, `fn main(x int) int { return (1 + 2) * (3 - x) / 2; }`)
	c.Optimize()
	d1 := c.Disasm("main")
	c.Optimize()
	if d2 := c.Disasm("main"); d1 != d2 {
		t.Fatalf("optimize not idempotent:\n%s\nvs\n%s", d1, d2)
	}
}
