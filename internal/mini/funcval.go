package mini

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// FuncRow is one decision-table entry of a FuncValue: the function maps Args
// (exactly Arity of them) to Out.
type FuncRow struct {
	Args []int64
	Out  int64
}

// FuncValue is a concrete function input: a finite decision table plus a
// default clause. It is the canonical function representation of higher-order
// test generation — every synthesized callback is "the observed and solved
// samples, and Default everywhere else" — and is what the interpreter and VM
// apply when the program calls through a function-typed parameter.
//
// A nil *FuncValue behaves as the empty table with default 0 (the function
// every search seed and every concretizing baseline runs under).
//
// Canonical form: rows sorted lexicographically by Args with no duplicate
// argument tuples. Canon establishes it; String assumes it, so two FuncValues
// render identically iff they are the same function table.
type FuncValue struct {
	Arity   int
	Rows    []FuncRow
	Default int64
}

// Eval applies the function to args. Nil receivers evaluate as the empty
// table: every application returns 0.
func (fv *FuncValue) Eval(args []int64) int64 {
	if fv == nil {
		return 0
	}
	if len(args) != fv.Arity {
		panic(fmt.Sprintf("mini: FuncValue arity %d applied to %d args", fv.Arity, len(args)))
	}
	for _, row := range fv.Rows {
		if argsEqual(row.Args, args) {
			return row.Out
		}
	}
	return fv.Default
}

func argsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func argsLess(a, b []int64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Canon sorts the rows lexicographically by argument tuple and drops
// duplicate tuples (keeping the first occurrence), returning the receiver.
// Conflicting duplicates (same args, different out) panic: a decision table
// must be a function.
func (fv *FuncValue) Canon() *FuncValue {
	if fv == nil {
		return nil
	}
	sort.SliceStable(fv.Rows, func(i, j int) bool {
		return argsLess(fv.Rows[i].Args, fv.Rows[j].Args)
	})
	out := fv.Rows[:0]
	for _, row := range fv.Rows {
		if n := len(out); n > 0 && argsEqual(out[n-1].Args, row.Args) {
			if out[n-1].Out != row.Out {
				panic(fmt.Sprintf("mini: FuncValue conflict on %v: both %d and %d",
					row.Args, out[n-1].Out, row.Out))
			}
			continue
		}
		out = append(out, row)
	}
	fv.Rows = out
	return fv
}

// String renders the canonical textual form, e.g. fn/2{(1,2)->3, _->0}. The
// arity prefix makes the form self-describing (an empty table still knows its
// signature), and ParseFuncValue inverts it byte-for-byte on canonical
// values. A nil FuncValue renders as the arity-0 empty table's notation would
// be ambiguous, so callers render nil per-parameter via FuncValueString.
func (fv *FuncValue) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fn/%d{", fv.Arity)
	for _, row := range fv.Rows {
		b.WriteByte('(')
		for i, a := range row.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatInt(a, 10))
		}
		b.WriteString(")->")
		b.WriteString(strconv.FormatInt(row.Out, 10))
		b.WriteString(", ")
	}
	b.WriteString("_->")
	b.WriteString(strconv.FormatInt(fv.Default, 10))
	b.WriteByte('}')
	return b.String()
}

// FuncValueString renders fv, treating nil as the empty table of the given
// arity with default 0 — the function every baseline and every seed runs
// under.
func FuncValueString(fv *FuncValue, arity int) string {
	if fv == nil {
		fv = &FuncValue{Arity: arity}
	}
	return fv.String()
}

// ParseFuncValue parses the canonical textual form produced by String. The
// result is canonicalized, so String(ParseFuncValue(s)) == s holds exactly
// for canonical inputs (the fuzz round-trip property).
func ParseFuncValue(s string) (*FuncValue, error) {
	rest, ok := strings.CutPrefix(s, "fn/")
	if !ok {
		return nil, fmt.Errorf("mini: function value must start with fn/: %q", s)
	}
	brace := strings.IndexByte(rest, '{')
	if brace < 0 || !strings.HasSuffix(rest, "}") {
		return nil, fmt.Errorf("mini: malformed function value %q", s)
	}
	arity, err := strconv.Atoi(rest[:brace])
	if err != nil || arity < 0 {
		return nil, fmt.Errorf("mini: bad function arity in %q", s)
	}
	fv := &FuncValue{Arity: arity}
	body := rest[brace+1 : len(rest)-1]
	for body != "" {
		entry := body
		if cut := strings.Index(body, ", "); cut >= 0 {
			entry, body = body[:cut], body[cut+2:]
		} else {
			body = ""
		}
		if rest, ok := strings.CutPrefix(entry, "_->"); ok {
			if body != "" {
				return nil, fmt.Errorf("mini: default clause must come last in %q", s)
			}
			d, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("mini: bad default in %q", s)
			}
			fv.Default = d
			// Conflicting duplicate tuples make the text not denote a
			// function; reject them here rather than letting Canon panic on
			// untrusted input.
			for i, row := range fv.Rows {
				for _, prev := range fv.Rows[:i] {
					if argsEqual(prev.Args, row.Args) && prev.Out != row.Out {
						return nil, fmt.Errorf("mini: conflicting rows for %v in %q", row.Args, s)
					}
				}
			}
			return fv.Canon(), nil
		}
		args, out, err := parseFuncRow(entry, arity)
		if err != nil {
			return nil, fmt.Errorf("mini: %v in %q", err, s)
		}
		fv.Rows = append(fv.Rows, FuncRow{Args: args, Out: out})
	}
	return nil, fmt.Errorf("mini: function value %q has no default clause", s)
}

func parseFuncRow(entry string, arity int) ([]int64, int64, error) {
	if !strings.HasPrefix(entry, "(") {
		return nil, 0, fmt.Errorf("bad row %q", entry)
	}
	close := strings.Index(entry, ")->")
	if close < 0 {
		return nil, 0, fmt.Errorf("bad row %q", entry)
	}
	var args []int64
	if argstr := entry[1:close]; argstr != "" {
		for _, part := range strings.Split(argstr, ",") {
			v, err := strconv.ParseInt(part, 10, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("bad argument %q", part)
			}
			args = append(args, v)
		}
	}
	if len(args) != arity {
		return nil, 0, fmt.Errorf("row %q has %d args, want %d", entry, len(args), arity)
	}
	out, err := strconv.ParseInt(entry[close+3:], 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("bad output in row %q", entry)
	}
	return args, out, nil
}

// Clone returns an independent copy of the function value (nil-safe).
func (fv *FuncValue) Clone() *FuncValue {
	if fv == nil {
		return nil
	}
	out := &FuncValue{Arity: fv.Arity, Default: fv.Default, Rows: make([]FuncRow, len(fv.Rows))}
	for i, row := range fv.Rows {
		out.Rows[i] = FuncRow{Args: append([]int64(nil), row.Args...), Out: row.Out}
	}
	return out
}

// FuncValuesKey renders a slice of function inputs (aligned with FuncShape)
// in the canonical form, for dedup keys and run records. Nil entries render
// as empty tables of the matching arity.
func FuncValuesKey(funcs []*FuncValue, shape []FuncParam) string {
	if len(shape) == 0 {
		return ""
	}
	parts := make([]string, len(shape))
	for i, fp := range shape {
		var fv *FuncValue
		if i < len(funcs) {
			fv = funcs[i]
		}
		parts[i] = FuncValueString(fv, fp.Arity)
	}
	return strings.Join(parts, "; ")
}
