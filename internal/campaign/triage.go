package campaign

import (
	"sort"
	"strconv"
	"strings"

	"hotg/internal/search"
)

// Bucket is one deduplicated failure class. Buckets persist in the manifest,
// so a bug rediscovered in a later session lands in its existing bucket
// instead of being reported as new.
type Bucket struct {
	Signature string  `json:"signature"` // stable: workload|kind|site|normalized-msg
	Kind      string  `json:"kind"`      // "error" or "runtime-fault"
	Site      int     `json:"site"`      // error-site ID, -1 for runtime faults
	Msg       string  `json:"msg"`       // normalized message
	Count     int     `json:"count"`     // total occurrences across all sessions
	FirstRun  int     `json:"first_run"` // run index of the first occurrence
	Session   int     `json:"session"`   // session of the first occurrence
	Example   []int64 `json:"example"`   // input of the first occurrence
}

// NormalizeMsg collapses every run of decimal digits to '#', so messages that
// embed concrete values ("index 17 out of bounds") triage into one bucket.
func NormalizeMsg(s string) string {
	var b strings.Builder
	inDigits := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			if !inDigits {
				b.WriteByte('#')
				inDigits = true
			}
			continue
		}
		inDigits = false
		b.WriteRune(r)
	}
	return b.String()
}

// SignatureFor derives the stable triage signature of a bug: the workload
// name, failure kind, error site, and normalized message, joined with '|'.
// Everything unstable across sessions (inputs, run indices, concrete values
// inside messages) is excluded, so the signature identifies the failure
// class, not the occurrence.
func SignatureFor(workload string, b search.Bug) string {
	return workload + "|" + b.Kind.String() + "|" + strconv.Itoa(b.Site) + "|" + NormalizeMsg(b.Msg)
}

// triageBug files a bug into its bucket, creating the bucket on first sight.
// It returns true when the bucket is new (a failure class never seen in any
// session of this campaign).
func (c *Campaign) triageBug(b search.Bug) bool {
	sig := SignatureFor(c.Workload, b)
	if bk, ok := c.buckets[sig]; ok {
		bk.Count++
		c.obs.Counter("campaign.triage.dedup_hits").Add(1)
		return false
	}
	c.buckets[sig] = &Bucket{
		Signature: sig,
		Kind:      b.Kind.String(),
		Site:      b.Site,
		Msg:       NormalizeMsg(b.Msg),
		Count:     1,
		FirstRun:  b.Run,
		Session:   c.Session,
		Example:   append([]int64(nil), b.Input...),
	}
	c.obs.Counter("campaign.triage.buckets").Add(1)
	c.obs.Gauge("campaign.triage.bucket_count").Set(int64(len(c.buckets)))
	return true
}

// Buckets returns the triage buckets sorted by signature.
func (c *Campaign) Buckets() []*Bucket {
	out := make([]*Bucket, 0, len(c.buckets))
	for _, b := range c.buckets {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signature < out[j].Signature })
	return out
}
