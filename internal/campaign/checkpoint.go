package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"hotg/internal/search"
)

// CheckpointFormatVersion stamps the on-disk checkpoint envelope. The
// envelope version covers the file framing (integrity hash, pointer file);
// the snapshot payload carries its own search.SnapshotFormatVersion, checked
// by search.Snapshot.Validate. Loaders reject newer envelope versions.
const CheckpointFormatVersion = 1

// checkpointEnvelope frames a snapshot on disk with an integrity hash, so a
// torn or bit-rotted checkpoint is detected at load rather than resumed from.
type checkpointEnvelope struct {
	FormatVersion int             `json:"format_version"`
	Runs          int             `json:"runs"`
	Sum           string          `json:"sha256"` // hex sha256 of the Snapshot bytes
	Snapshot      json.RawMessage `json:"snapshot"`
}

// latestPointer names the most recent complete checkpoint. It is written
// atomically after the checkpoint file itself, so the pointer never names a
// partial file.
type latestPointer struct {
	File string `json:"file"`
}

func (c *Campaign) latestPath() string { return filepath.Join(c.checkpointsDir(), "latest.json") }

// SaveCheckpoint persists a snapshot as checkpoints/ckpt-<runs>.json and
// repoints latest.json at it. Intended as the search's Checkpoint.Sink.
func (c *Campaign) SaveCheckpoint(s *search.Snapshot) error {
	payload, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("campaign: encoding snapshot: %w", err)
	}
	sum := sha256.Sum256(payload)
	env := checkpointEnvelope{
		FormatVersion: CheckpointFormatVersion,
		Runs:          s.Runs,
		Sum:           hex.EncodeToString(sum[:]),
		Snapshot:      payload,
	}
	// Plain Marshal, not MarshalIndent: indentation would reformat the
	// embedded snapshot bytes and break the integrity hash over them.
	data, err := json.Marshal(&env)
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint: %w", err)
	}
	data = append(data, '\n')
	name := fmt.Sprintf("ckpt-%09d.json", s.Runs)
	if err := WriteFileAtomic(filepath.Join(c.checkpointsDir(), name), data, 0o644); err != nil {
		return err
	}
	ptr, err := json.Marshal(latestPointer{File: name})
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint pointer: %w", err)
	}
	if err := WriteFileAtomic(c.latestPath(), append(ptr, '\n'), 0o644); err != nil {
		return err
	}
	c.obs.Counter("campaign.checkpoints.saved").Add(1)
	c.obs.Gauge("campaign.checkpoints.latest_runs").Set(int64(s.Runs))
	return nil
}

// LatestCheckpoint loads the most recent checkpoint, verifying the envelope
// version and integrity hash. It returns (nil, nil) when the campaign has no
// checkpoint yet.
func (c *Campaign) LatestCheckpoint() (*search.Snapshot, error) {
	raw, err := os.ReadFile(c.latestPath())
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ptr latestPointer
	if err := json.Unmarshal(raw, &ptr); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint pointer %s: %w", c.latestPath(), err)
	}
	if ptr.File != filepath.Base(ptr.File) || ptr.File == "" {
		return nil, fmt.Errorf("campaign: checkpoint pointer %s: invalid file name %q", c.latestPath(), ptr.File)
	}
	return c.loadCheckpoint(filepath.Join(c.checkpointsDir(), ptr.File))
}

func (c *Campaign) loadCheckpoint(path string) (*search.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
	}
	if env.FormatVersion != CheckpointFormatVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s: format version %d, this build reads %d",
			path, env.FormatVersion, CheckpointFormatVersion)
	}
	// Hash the compacted payload so a checkpoint that was pretty-printed by
	// an external tool (whitespace-only change) still verifies.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Snapshot); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
	}
	sum := sha256.Sum256(compact.Bytes())
	if hex.EncodeToString(sum[:]) != env.Sum {
		return nil, fmt.Errorf("campaign: checkpoint %s: integrity hash mismatch", path)
	}
	var snap search.Snapshot
	if err := json.Unmarshal(env.Snapshot, &snap); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s: %w", path, err)
	}
	return &snap, nil
}
