package campaign

import "sort"

// rungCost orders rungs by how expensive their precision level was to reach:
// inputs backed by a full validity proof are the highest-value seeds, "seed"
// entries (the workload's original corpus) rank last among equals.
func rungCost(rung string) int {
	switch rung {
	case "proof":
		return 0
	case "qf":
		return 1
	case "concretize":
		return 2
	case "seed":
		return 3
	default:
		return 4
	}
}

// Schedule ranks corpus entries for seeding a fresh session. The order is
// fully deterministic:
//
//  1. bug-triggering inputs first (they reproduce known failures cheaply),
//  2. cheaper rung first — a proof-backed input came from the precise end of
//     the ladder and tends to sit deeper in the program,
//  3. more coverage gained first (novelty),
//  4. earlier discovery run first (past proof cost: earlier inputs were
//     reached with less cumulative solver work),
//  5. content address as the final tie-break.
//
// Scheduling applies only to fresh corpus-seeded sessions. A checkpoint
// resume never reorders anything: its frontier is restored verbatim so the
// resumed trajectory stays bit-identical to the uninterrupted one.
func Schedule(entries []*Entry) []*Entry {
	out := append([]*Entry(nil), entries...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Bug != b.Bug {
			return a.Bug
		}
		if ca, cb := rungCost(a.Rung), rungCost(b.Rung); ca != cb {
			return ca < cb
		}
		if a.Gained != b.Gained {
			return a.Gained > b.Gained
		}
		if a.Session != b.Session {
			return a.Session < b.Session
		}
		if a.Run != b.Run {
			return a.Run < b.Run
		}
		return a.Hash < b.Hash
	})
	return out
}

// SeedInputs returns up to max ranked corpus inputs for seeding a fresh
// session (max <= 0 means all). The caller appends workload seeds as needed;
// the corpus itself already contains them once a first session committed.
func (c *Campaign) SeedInputs(max int) [][]int64 {
	ranked := Schedule(c.Entries())
	if max > 0 && len(ranked) > max {
		ranked = ranked[:max]
	}
	out := make([][]int64, 0, len(ranked))
	for _, e := range ranked {
		out = append(out, append([]int64(nil), e.Input...))
	}
	return out
}
