package campaign_test

import (
	"os"
	"path/filepath"
	"testing"

	"hotg/internal/campaign"
)

// TestLockExcludesSecondSession: a held lock refuses a second acquirer and
// admits it after release.
func TestLockExcludesSecondSession(t *testing.T) {
	dir := t.TempDir()
	l, err := campaign.AcquireLock(dir)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if _, err := campaign.AcquireLock(dir); err == nil {
		t.Fatal("second acquire succeeded while the lock was held")
	}
	if err := l.Release(); err != nil {
		t.Fatalf("release: %v", err)
	}
	l2, err := campaign.AcquireLock(dir)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	if err := l2.Release(); err != nil {
		t.Fatalf("second release: %v", err)
	}
	if err := l2.Release(); err != nil {
		t.Fatalf("double release should be harmless: %v", err)
	}
}

// TestLockBreaksStaleOwner: a lock whose pid no longer exists (the SIGKILLed
// session) is broken and re-acquired; garbage content counts as stale too.
func TestLockBreaksStaleOwner(t *testing.T) {
	for _, content := range []string{"999999999\n", "not-a-pid\n", ""} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "LOCK"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := campaign.AcquireLock(dir)
		if err != nil {
			t.Fatalf("stale lock %q not broken: %v", content, err)
		}
		l.Release()
	}
}
