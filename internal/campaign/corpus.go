package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ManifestFormatVersion stamps manifest.json. Loaders reject newer versions;
// older versions are upgraded in memory on load and rewritten at the current
// version on the next Commit (there are no older versions yet, so today this
// is a strict equality check).
const ManifestFormatVersion = 1

// Entry is one deduplicated corpus input with the metadata the seed scheduler
// ranks on. Entries are content-addressed: Hash is the sha256 of the
// canonical input encoding, so the same input re-discovered in a later
// session maps to the same entry file.
type Entry struct {
	Hash    string  `json:"hash"`
	Input   []int64 `json:"input"`
	Path    string  `json:"path"`    // branch path the input executed when recorded
	Rung    string  `json:"rung"`    // precision-ladder rung that generated it ("seed" for seeds)
	Gained  int     `json:"gained"`  // branch directions newly covered by its run
	Run     int     `json:"run"`     // run index that first produced it (novelty: lower = earlier)
	Session int     `json:"session"` // campaign session that first recorded it
	Bug     bool    `json:"bug,omitempty"`
}

// manifestEntry pins one corpus file in the manifest with an integrity hash.
type manifestEntry struct {
	Hash string `json:"hash"`   // content address (also the file name stem)
	Sum  string `json:"sha256"` // sha256 of the entry file's bytes
}

// Manifest is the versioned corpus index. It is rewritten atomically on every
// Commit; the entry files it references are immutable once written.
type Manifest struct {
	FormatVersion int             `json:"format_version"`
	Workload      string          `json:"workload"`
	Mode          string          `json:"mode"`
	Sessions      int             `json:"sessions"`
	Entries       []manifestEntry `json:"entries"` // sorted by hash
	Buckets       []*Bucket       `json:"buckets"` // sorted by signature
}

// HashInput computes the content address of an input: the sha256 of its
// canonical encoding (decimal values joined by commas), so equal inputs hash
// equal regardless of which session produced them.
func HashInput(input []int64) string {
	var b strings.Builder
	for i, v := range input {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

func (c *Campaign) inputsDir() string      { return filepath.Join(c.Dir, "inputs") }
func (c *Campaign) checkpointsDir() string { return filepath.Join(c.Dir, "checkpoints") }
func (c *Campaign) manifestPath() string   { return filepath.Join(c.Dir, "manifest.json") }

func entryFileName(hash string) string { return hash + ".json" }

// addEntry records an input in the in-memory corpus, deduplicating by content
// address. It returns true when the input is new.
func (c *Campaign) addEntry(e *Entry) bool {
	if _, ok := c.entries[e.Hash]; ok {
		c.obs.Counter("campaign.corpus.dedup_hits").Add(1)
		return false
	}
	c.entries[e.Hash] = e
	c.fresh[e.Hash] = true
	c.obs.Counter("campaign.corpus.entries").Add(1)
	c.obs.Gauge("campaign.corpus.size").Set(int64(len(c.entries)))
	return true
}

// Entries returns the corpus entries sorted by content address.
func (c *Campaign) Entries() []*Entry {
	out := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hash < out[j].Hash })
	return out
}

// loadManifest reads and validates manifest.json, then loads every corpus
// entry it references, verifying each file's integrity hash.
func (c *Campaign) loadManifest() error {
	raw, err := os.ReadFile(c.manifestPath())
	if err != nil {
		return err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("campaign: manifest %s: %w", c.manifestPath(), err)
	}
	if m.FormatVersion != ManifestFormatVersion {
		return fmt.Errorf("campaign: manifest %s: format version %d, this build reads %d",
			c.manifestPath(), m.FormatVersion, ManifestFormatVersion)
	}
	if m.Workload != c.Workload || m.Mode != c.Mode {
		return fmt.Errorf("campaign: corpus at %s belongs to workload %q mode %q, not %q/%q",
			c.Dir, m.Workload, m.Mode, c.Workload, c.Mode)
	}
	for _, me := range m.Entries {
		path := filepath.Join(c.inputsDir(), entryFileName(me.Hash))
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("campaign: corpus entry: %w", err)
		}
		if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != me.Sum {
			return fmt.Errorf("campaign: corpus entry %s: integrity hash mismatch", path)
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			return fmt.Errorf("campaign: corpus entry %s: %w", path, err)
		}
		if e.Hash != me.Hash || HashInput(e.Input) != e.Hash {
			return fmt.Errorf("campaign: corpus entry %s: content address does not match input", path)
		}
		c.entries[e.Hash] = &e
	}
	for _, b := range m.Buckets {
		c.buckets[b.Signature] = b
	}
	c.manifest = m
	return nil
}

// Commit persists the session: every new corpus entry file, then the
// manifest (atomically, so a crash mid-commit leaves the previous manifest
// — and therefore a consistent corpus view — in place).
func (c *Campaign) Commit() error {
	for hash := range c.fresh {
		e := c.entries[hash]
		data, err := json.MarshalIndent(e, "", "  ")
		if err != nil {
			return fmt.Errorf("campaign: encoding entry %s: %w", hash, err)
		}
		data = append(data, '\n')
		if err := WriteFileAtomic(filepath.Join(c.inputsDir(), entryFileName(hash)), data, 0o644); err != nil {
			return err
		}
	}
	c.fresh = map[string]bool{}

	m := Manifest{
		FormatVersion: ManifestFormatVersion,
		Workload:      c.Workload,
		Mode:          c.Mode,
		Sessions:      c.manifest.Sessions,
		Buckets:       c.Buckets(),
	}
	for _, e := range c.Entries() {
		data, err := os.ReadFile(filepath.Join(c.inputsDir(), entryFileName(e.Hash)))
		if err != nil {
			return fmt.Errorf("campaign: hashing entry: %w", err)
		}
		sum := sha256.Sum256(data)
		m.Entries = append(m.Entries, manifestEntry{Hash: e.Hash, Sum: hex.EncodeToString(sum[:])})
	}
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	if err := WriteFileAtomic(c.manifestPath(), data, 0o644); err != nil {
		return err
	}
	c.manifest = m
	return nil
}
