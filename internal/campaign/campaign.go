package campaign

import (
	"fmt"
	"os"

	"hotg/internal/obs"
	"hotg/internal/search"
)

// Campaign is one open persistent-campaign directory. A campaign accumulates
// state across any number of sessions: the corpus and triage buckets grow
// monotonically, and checkpoints let an interrupted session resume exactly
// where it stopped.
//
// A Campaign is not safe for concurrent use; the search delivers RunRecords
// and checkpoint snapshots from its coordinator goroutine in canonical apply
// order, which is exactly the serialization campaigns need.
type Campaign struct {
	Dir      string
	Workload string
	Mode     string
	// Session is this session's 1-based index within the campaign.
	Session int

	obs      *obs.Obs
	manifest Manifest
	entries  map[string]*Entry
	fresh    map[string]bool // hashes added this session, not yet committed
	buckets  map[string]*Bucket
	newBugs  int // buckets first created this session
}

// Open opens (creating if needed) the campaign directory for one
// workload/mode pair. Reopening an existing campaign verifies the manifest
// version, the workload/mode binding, and every corpus entry's integrity
// hash. o may be nil.
func Open(dir, workload, mode string, o *obs.Obs) (*Campaign, error) {
	c := &Campaign{
		Dir:      dir,
		Workload: workload,
		Mode:     mode,
		obs:      o,
		entries:  map[string]*Entry{},
		fresh:    map[string]bool{},
		buckets:  map[string]*Bucket{},
	}
	for _, d := range []string{dir, c.inputsDir(), c.checkpointsDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
	}
	if _, err := os.Stat(c.manifestPath()); err == nil {
		if err := c.loadManifest(); err != nil {
			return nil, err
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	c.manifest.Sessions++
	c.Session = c.manifest.Sessions
	c.obs.Counter("campaign.sessions").Add(1)
	return c, nil
}

// RecordRun ingests one search run, in canonical apply order: inputs that
// gained coverage, seeded the search, or triggered a bug enter the corpus
// (deduplicated by content address), and every bug is triaged into its
// bucket. Wire it as search.Options.OnRun.
func (c *Campaign) RecordRun(rec search.RunRecord) {
	interesting := rec.Gained > 0 || rec.Seed || len(rec.Bugs) > 0
	if interesting {
		rung := rec.Rung.String()
		if rec.Seed {
			rung = "seed"
		}
		c.addEntry(&Entry{
			Hash:    HashInput(rec.Input),
			Input:   append([]int64(nil), rec.Input...),
			Path:    rec.Path,
			Rung:    rung,
			Gained:  rec.Gained,
			Run:     rec.Run,
			Session: c.Session,
			Bug:     len(rec.Bugs) > 0,
		})
	}
	for _, b := range rec.Bugs {
		if c.triageBug(b) {
			c.newBugs++
		}
	}
}

// NewBuckets reports how many failure classes this session saw for the first
// time in the campaign's history. A session re-running over a saved corpus
// reports zero: every rediscovered bug deduplicates into its existing bucket.
func (c *Campaign) NewBuckets() int { return c.newBugs }
