package campaign_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hotg/internal/campaign"
	"hotg/internal/concolic"
	"hotg/internal/lexapp"
	"hotg/internal/search"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := campaign.WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := campaign.WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("content = %q, want %q", got, "second")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") {
			t.Errorf("leftover temp file %q", e.Name())
		}
	}
	if err := campaign.WriteFileAtomic(filepath.Join(dir, "missing", "out.json"), []byte("x"), 0o644); err == nil {
		t.Error("write into missing directory succeeded")
	}
}

func TestNormalizeMsg(t *testing.T) {
	cases := [][2]string{
		{"index 17 out of bounds (len 4)", "index # out of bounds (len #)"},
		{"division by zero", "division by zero"},
		{"got 0x1f", "got #x#f"},
		{"", ""},
		{"123", "#"},
	}
	for _, c := range cases {
		if got := campaign.NormalizeMsg(c[0]); got != c[1] {
			t.Errorf("NormalizeMsg(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestSignatureStability(t *testing.T) {
	a := search.Bug{Kind: 1, Site: 3, Msg: "boom at 17", Input: []int64{1, 2}, Run: 5}
	b := search.Bug{Kind: 1, Site: 3, Msg: "boom at 99", Input: []int64{9, 9}, Run: 80}
	if campaign.SignatureFor("lexer", a) != campaign.SignatureFor("lexer", b) {
		t.Error("signatures differ for same failure class with different concrete values")
	}
	if campaign.SignatureFor("lexer", a) == campaign.SignatureFor("foo", a) {
		t.Error("signatures collide across workloads")
	}
	c := a
	c.Site = 4
	if campaign.SignatureFor("lexer", a) == campaign.SignatureFor("lexer", c) {
		t.Error("signatures collide across error sites")
	}
}

func TestScheduleOrder(t *testing.T) {
	es := []*campaign.Entry{
		{Hash: "d", Rung: "seed", Gained: 9},
		{Hash: "c", Rung: "concretize", Gained: 1},
		{Hash: "b", Rung: "proof", Gained: 1, Run: 7},
		{Hash: "a", Rung: "proof", Gained: 1, Run: 2},
		{Hash: "e", Rung: "qf", Gained: 5, Bug: true},
		{Hash: "f", Rung: "proof", Gained: 3},
	}
	got := campaign.Schedule(es)
	var order []string
	for _, e := range got {
		order = append(order, e.Hash)
	}
	// bug first; then proof rung by gained desc then run asc; then qf-less
	// rungs; seeds last.
	want := []string{"e", "f", "a", "b", "c", "d"}
	if strings.Join(order, "") != strings.Join(want, "") {
		t.Errorf("Schedule order = %v, want %v", order, want)
	}
	// Determinism: scheduling again (input already sorted differently) gives
	// the same order.
	again := campaign.Schedule(got)
	for i := range again {
		if again[i].Hash != got[i].Hash {
			t.Fatalf("Schedule not stable at %d", i)
		}
	}
}

// runSession executes one campaign session over a workload and commits it.
func runSession(t *testing.T, dir string, w *lexapp.Workload, seeds [][]int64, maxRuns int) (*campaign.Campaign, *search.Stats) {
	t.Helper()
	c, err := campaign.Open(dir, w.Name, "higher-order", nil)
	if err != nil {
		t.Fatal(err)
	}
	if seeds == nil {
		seeds = w.Seeds
	}
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	st := search.Run(eng, search.Options{
		MaxRuns: maxRuns, Seeds: seeds, Bounds: w.Bounds, Workers: 1,
		OnRun: c.RecordRun,
	})
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	return c, st
}

// TestCampaignTriageDedupAcrossSessions is the triage acceptance test:
// re-running a campaign over its saved corpus reports each previously found
// bug exactly once per bucket — the second session creates zero new buckets
// and leaves the bucket set unchanged.
func TestCampaignTriageDedupAcrossSessions(t *testing.T) {
	dir := t.TempDir()
	w, _ := lexapp.Get("lexer")

	c1, st1 := runSession(t, dir, w, nil, 120)
	if len(st1.Bugs) == 0 {
		t.Fatal("first session found no bugs; the dedup test needs some")
	}
	if c1.NewBuckets() == 0 {
		t.Fatal("first session reported no new buckets despite finding bugs")
	}
	buckets1 := c1.Buckets()

	// Session 2 seeds from the saved corpus (scheduler-ranked) and re-runs.
	c2, err := campaign.Open(dir, w.Name, "higher-order", nil)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Session != 2 {
		t.Fatalf("second session index = %d, want 2", c2.Session)
	}
	seeds := c2.SeedInputs(0)
	if len(seeds) == 0 {
		t.Fatal("saved corpus yielded no seeds")
	}
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	st2 := search.Run(eng, search.Options{
		MaxRuns: 120, Seeds: seeds, Bounds: w.Bounds, Workers: 1,
		OnRun: c2.RecordRun,
	})
	if len(st2.Bugs) == 0 {
		t.Fatal("corpus-seeded session rediscovered no bugs")
	}
	if c2.NewBuckets() != 0 {
		t.Errorf("corpus-seeded re-run created %d new buckets, want 0", c2.NewBuckets())
	}
	buckets2 := c2.Buckets()
	if len(buckets2) != len(buckets1) {
		t.Fatalf("bucket count changed across sessions: %d -> %d", len(buckets1), len(buckets2))
	}
	for i := range buckets1 {
		if buckets1[i].Signature != buckets2[i].Signature {
			t.Errorf("bucket %d signature changed: %q -> %q", i, buckets1[i].Signature, buckets2[i].Signature)
		}
		if buckets2[i].Session != 1 {
			t.Errorf("bucket %q first-session = %d, want 1", buckets2[i].Signature, buckets2[i].Session)
		}
	}
	if err := c2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignCorpusDedup: committing the same session twice, or re-running
// identical inputs, does not duplicate corpus entries.
func TestCampaignCorpusDedup(t *testing.T) {
	dir := t.TempDir()
	w, _ := lexapp.Get("foo")
	c1, _ := runSession(t, dir, w, nil, 40)
	n1 := len(c1.Entries())
	if n1 == 0 {
		t.Fatal("no corpus entries recorded")
	}
	// Re-open and replay the exact same search: content addressing must
	// collapse every input onto the existing entries.
	c2, _ := runSession(t, dir, w, nil, 40)
	if n2 := len(c2.Entries()); n2 != n1 {
		t.Errorf("corpus grew on identical re-run: %d -> %d", n1, n2)
	}
	files, err := os.ReadDir(filepath.Join(dir, "inputs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != n1 {
		t.Errorf("%d entry files for %d entries", len(files), n1)
	}
}

func TestCampaignRejectsMismatch(t *testing.T) {
	dir := t.TempDir()
	w, _ := lexapp.Get("foo")
	runSession(t, dir, w, nil, 20)
	if _, err := campaign.Open(dir, "lexer", "higher-order", nil); err == nil {
		t.Error("workload mismatch accepted")
	}
	if _, err := campaign.Open(dir, w.Name, "sound", nil); err == nil {
		t.Error("mode mismatch accepted")
	}
}

func TestCampaignDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	w, _ := lexapp.Get("foo")
	c, _ := runSession(t, dir, w, nil, 20)
	entries := c.Entries()
	if len(entries) == 0 {
		t.Fatal("no entries")
	}

	// Flip a byte in one committed entry file: reopening must fail the
	// integrity check.
	path := filepath.Join(dir, "inputs", entries[0].Hash+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), data...)
	corrupted[len(corrupted)/2] ^= 0x40
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Open(dir, w.Name, "higher-order", nil); err == nil {
		t.Error("corrupted corpus entry accepted")
	} else if !strings.Contains(err.Error(), "integrity") && !strings.Contains(err.Error(), "invalid") {
		t.Logf("corruption surfaced as: %v", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A manifest from a future format version is rejected.
	mpath := filepath.Join(dir, "manifest.json")
	mdata, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(mdata, &m); err != nil {
		t.Fatal(err)
	}
	m["format_version"] = campaign.ManifestFormatVersion + 1
	newer, _ := json.Marshal(m)
	if err := os.WriteFile(mpath, newer, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Open(dir, w.Name, "higher-order", nil); err == nil {
		t.Error("future manifest version accepted")
	}
	if err := os.WriteFile(mpath, mdata, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Open(dir, w.Name, "higher-order", nil); err != nil {
		t.Errorf("restored campaign rejected: %v", err)
	}
}

func TestCheckpointRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	w, _ := lexapp.Get("foo")
	c, err := campaign.Open(dir, w.Name, "higher-order", nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap, err := c.LatestCheckpoint(); err != nil || snap != nil {
		t.Fatalf("empty campaign LatestCheckpoint = (%v, %v), want (nil, nil)", snap, err)
	}

	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	search.Run(eng, search.Options{
		MaxRuns: 40, Seeds: w.Seeds, Bounds: w.Bounds, Workers: 1,
		Checkpoint: search.CheckpointOptions{Every: 2, Sink: c.SaveCheckpoint},
	})
	snap, err := c.LatestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no checkpoint saved")
	}
	if err := snap.Validate(concolic.New(w.Build(), concolic.ModeHigherOrder)); err != nil {
		t.Errorf("loaded checkpoint fails validation: %v", err)
	}

	// Corrupt the checkpoint payload: the integrity hash must catch it.
	var ptr struct {
		File string `json:"file"`
	}
	raw, err := os.ReadFile(filepath.Join(dir, "checkpoints", "latest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &ptr); err != nil {
		t.Fatal(err)
	}
	cpath := filepath.Join(dir, "checkpoints", ptr.File)
	data, err := os.ReadFile(cpath)
	if err != nil {
		t.Fatal(err)
	}
	// "mode" occurs only inside the hashed snapshot payload (the envelope's
	// own fields are not covered by the integrity hash).
	munged := []byte(strings.Replace(string(data), `"mode"`, `"m0de"`, 1))
	if err := os.WriteFile(cpath, munged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LatestCheckpoint(); err == nil {
		t.Error("corrupted checkpoint accepted")
	}
}

// TestCampaignKillAndResume runs a campaign that is killed (context
// cancellation, as close to kill -9 as a test can get while staying in
// process) after its third checkpoint, then resumed from the campaign
// directory. The resumed session's final state must be bit-identical to an
// uninterrupted run, and the bug-bucket set must match exactly.
func TestCampaignKillAndResume(t *testing.T) {
	w, _ := lexapp.Get("lexer")
	opts := search.Options{MaxRuns: 120, Seeds: w.Seeds, Bounds: w.Bounds}

	// Uninterrupted reference.
	ref := search.Run(concolic.New(w.Build(), concolic.ModeHigherOrder), func() search.Options {
		o := opts
		o.Workers = 1
		return o
	}())
	refCanon, err := ref.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	refCampaign := t.TempDir()
	cRef, err := campaign.Open(refCampaign, w.Name, "higher-order", nil)
	if err != nil {
		t.Fatal(err)
	}
	refRun := search.Run(concolic.New(w.Build(), concolic.ModeHigherOrder), func() search.Options {
		o := opts
		o.Workers = 1
		o.OnRun = cRef.RecordRun
		return o
	}())
	refBuckets := cRef.Buckets()
	if len(refBuckets) == 0 || len(refRun.Bugs) == 0 {
		t.Fatal("reference campaign found no bugs")
	}

	// Interrupted session: cancel as soon as the third checkpoint is on disk.
	dir := t.TempDir()
	c1, err := campaign.Open(dir, w.Name, "higher-order", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	saved := 0
	o1 := opts
	o1.Workers = 4
	o1.Ctx = ctx
	o1.OnRun = c1.RecordRun
	o1.Checkpoint = search.CheckpointOptions{Every: 10, Sink: func(s *search.Snapshot) error {
		if err := c1.SaveCheckpoint(s); err != nil {
			return err
		}
		if saved++; saved == 3 {
			cancel()
		}
		return nil
	}}
	st1 := search.Run(concolic.New(w.Build(), concolic.ModeHigherOrder), o1)
	if !st1.Budget.Cancelled {
		t.Fatal("interrupted session was not cancelled (raise MaxRuns?)")
	}
	if st1.Runs >= 120 {
		t.Fatal("session completed before cancellation; nothing was interrupted")
	}
	if err := c1.Commit(); err != nil {
		t.Fatal(err)
	}

	// Resume in a "new process": fresh campaign handle, fresh engine.
	c2, err := campaign.Open(dir, w.Name, "higher-order", nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c2.LatestCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no checkpoint to resume from")
	}
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	if err := snap.Validate(eng); err != nil {
		t.Fatal(err)
	}
	o2 := opts
	o2.Workers = 1
	o2.Restore = snap
	o2.OnRun = c2.RecordRun
	o2.Checkpoint = search.CheckpointOptions{Every: 10, Sink: c2.SaveCheckpoint}
	st2 := search.Run(eng, o2)
	if err := c2.Commit(); err != nil {
		t.Fatal(err)
	}

	gotCanon, err := st2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotCanon) != string(refCanon) {
		t.Errorf("resumed campaign diverged from uninterrupted run:\nuninterrupted: %s\nresumed:       %s", refCanon, gotCanon)
	}

	// Bug set: same buckets as the uninterrupted campaign, and the session-2
	// view reports no bucket the interrupted session had not already seen
	// (the overlap window between checkpoint 3 and the kill re-finds bugs,
	// which must deduplicate).
	gotBuckets := c2.Buckets()
	if len(gotBuckets) != len(refBuckets) {
		t.Fatalf("bucket count: interrupted+resumed %d, uninterrupted %d", len(gotBuckets), len(refBuckets))
	}
	for i := range refBuckets {
		if gotBuckets[i].Signature != refBuckets[i].Signature {
			t.Errorf("bucket %d: %q != %q", i, gotBuckets[i].Signature, refBuckets[i].Signature)
		}
	}
}
