package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
)

// Lock is an exclusive advisory lock on a campaign directory. Campaign state
// is single-writer by design (RecordRun applies in canonical order, the
// corpus commit is last-writer-wins), so two live sessions over one directory
// would silently interleave corpus and checkpoint writes. The lock turns that
// into a loud open-time error. Fleet workers never take it — they hold no
// campaign state; only the coordinator process does.
type Lock struct {
	path string
}

// lockFileName is the lock file inside a campaign directory. It holds the
// owning process id in ASCII, which is what lets a later session detect and
// break the lock of a SIGKILLed predecessor.
const lockFileName = "LOCK"

// AcquireLock takes the exclusive session lock for a campaign directory,
// creating the directory if needed. A lock whose owning process is gone (the
// kill -9 case) is broken and re-acquired; a lock owned by a live process is
// an error naming the pid, so the operator can decide who wins.
func AcquireLock(dir string) (*Lock, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	path := filepath.Join(dir, lockFileName)
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			if cerr := f.Close(); cerr != nil {
				os.Remove(path)
				return nil, fmt.Errorf("campaign: writing lock: %w", cerr)
			}
			return &Lock{path: path}, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // raced with the holder's release; retry
			}
			return nil, fmt.Errorf("campaign: reading lock: %w", rerr)
		}
		pid, perr := strconv.Atoi(strings.TrimSpace(string(raw)))
		if perr == nil && pidAlive(pid) {
			return nil, fmt.Errorf("campaign: %s locked by live session (pid %d)", dir, pid)
		}
		// Unparseable owner or dead process: a stale lock from a crashed
		// session. Break it and retry the exclusive create once.
		if rmErr := os.Remove(path); rmErr != nil && !os.IsNotExist(rmErr) {
			return nil, fmt.Errorf("campaign: breaking stale lock: %w", rmErr)
		}
	}
	return nil, fmt.Errorf("campaign: %s lock contended", dir)
}

// Release frees the lock. Releasing twice is harmless.
func (l *Lock) Release() error {
	if l == nil || l.path == "" {
		return nil
	}
	path := l.path
	l.path = ""
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("campaign: releasing lock: %w", err)
	}
	return nil
}

// pidAlive reports whether a process with the given pid exists. Signal 0
// probes existence without delivering anything; EPERM still means "exists".
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	err := syscall.Kill(pid, 0)
	return err == nil || err == syscall.EPERM
}
