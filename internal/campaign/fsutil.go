// Package campaign persists a search across process lifetimes: a
// content-addressed on-disk corpus of interesting inputs, crash triage into
// stable deduplicated buckets, and checkpoint files from which an interrupted
// search resumes bit-identically (DESIGN.md §9).
//
// The package is stdlib-only and deliberately free of search internals beyond
// the serialization surface (search.Snapshot, search.RunRecord, search.Bug):
// it owns the filesystem layout and the cross-session bookkeeping, while
// internal/search owns what a snapshot means.
package campaign

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that readers never observe a partial
// file: the bytes go to a temporary file in the same directory (same
// filesystem, so the final rename is atomic), are synced to disk, and only
// then renamed over the destination. An interrupted write leaves any previous
// content of path untouched.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("campaign: atomic write %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return fmt.Errorf("campaign: atomic write %s: %w", path, err)
	}
	if err = f.Chmod(perm); err != nil {
		return fmt.Errorf("campaign: atomic write %s: %w", path, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("campaign: atomic write %s: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("campaign: atomic write %s: %w", path, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: atomic write %s: %w", path, err)
	}
	return nil
}
