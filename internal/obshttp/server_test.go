package obshttp_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/lexapp"
	"hotg/internal/obs"
	"hotg/internal/obshttp"
	"hotg/internal/search"
)

// observedSearch runs the lexer higher-order search to completion with the
// full introspection apparatus attached and returns the observer and stats.
func observedSearch(t *testing.T) (*obs.Obs, *search.Stats) {
	t.Helper()
	w := lexapp.Lexer()
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	o := obs.New()
	o.Trace = obs.NewTracer(nil).Keep().WithRecorder(obs.NewFlightRecorder(obs.DefaultFlightRecorderSize))
	st := search.Run(eng, search.Options{
		MaxRuns: 120, Seeds: w.Seeds, Bounds: w.Bounds, Workers: 4, Obs: o,
	})
	return o, st
}

// TestIntrospectionEndToEnd is the acceptance test from the issue: after a
// campaign, /metrics serves parseable OpenMetrics and /statusz's counters
// match the search's final Stats; /events dumps the flight recorder; pprof
// answers.
func TestIntrospectionEndToEnd(t *testing.T) {
	o, st := observedSearch(t)
	srv := obshttp.New(o)
	srv.Info = func() map[string]int64 {
		return map[string]int64{"runs": int64(st.Runs), "bugs": int64(len(st.Bugs))}
	}
	stop := srv.StartSampler(10 * time.Millisecond)
	defer stop()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// /metrics: OpenMetrics syntax — TYPE lines, name/value samples, # EOF.
	code, metrics := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasSuffix(metrics, "# EOF\n") {
		t.Fatal("/metrics missing # EOF terminator")
	}
	samples := map[string]int64{}
	for _, ln := range strings.Split(metrics, "\n") {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		name, val, ok := strings.Cut(ln, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", ln)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		var v int64
		if _, err := fmt.Sscanf(val, "%d", &v); err != nil {
			t.Fatalf("non-integer value in %q", ln)
		}
		samples[name] = v
	}
	if samples["search_runs_total"] != int64(st.Runs) {
		t.Errorf("search_runs_total = %d, want %d", samples["search_runs_total"], st.Runs)
	}
	if _, ok := samples["fol_prove_ns_sum"]; !ok {
		t.Error("histogram summary fol_prove_ns missing from /metrics")
	}
	if samples["runtime_goroutines"] == 0 {
		t.Error("sampler gauges missing from /metrics")
	}

	// /statusz: counters must equal the final Stats.
	code, body := get("/statusz")
	if code != 200 {
		t.Fatalf("/statusz status %d", code)
	}
	var status struct {
		Headline     map[string]int64 `json:"headline"`
		Metrics      map[string]int64 `json:"metrics"`
		Runtime      struct{ Goroutines int }
		Phases       *obs.PhaseNode `json:"phases"`
		FlightEvents int64          `json:"flight_events_total"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/statusz is not JSON: %v\n%s", err, body)
	}
	for name, want := range map[string]int64{
		"search.runs":             int64(st.Runs),
		"search.tests_generated":  int64(st.TestsGenerated),
		"search.bugs":             int64(len(st.Bugs)),
		"search.live.runs":        int64(st.Runs),
		"search.live.tests":       int64(st.TestsGenerated),
		"search.live.bugs":        int64(len(st.Bugs)),
		"search.proof_cache.hits": int64(st.ProofCacheHits),
	} {
		if got := status.Metrics[name]; got != want {
			t.Errorf("/statusz metric %s = %d, want %d", name, got, want)
		}
	}
	if status.Headline["runs"] != int64(st.Runs) {
		t.Errorf("headline runs = %d, want %d", status.Headline["runs"], st.Runs)
	}
	if status.Phases == nil || status.Phases.Name != "search" {
		t.Error("/statusz missing phase attribution tree")
	}
	if status.FlightEvents == 0 {
		t.Error("/statusz reports zero flight events after a traced search")
	}

	// /statusz?format=html: the human view renders.
	code, html := get("/statusz?format=html")
	if code != 200 || !strings.Contains(html, "campaign status") || !strings.Contains(html, "phase self-time") {
		t.Errorf("/statusz?format=html incomplete (status %d)", code)
	}

	// /events: a JSONL dump of the flight recorder, every line an Event.
	code, events := get("/events")
	if code != 200 {
		t.Fatalf("/events status %d", code)
	}
	lines := strings.Split(strings.TrimRight(events, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("/events dump empty")
	}
	var lastSeq int64
	for _, ln := range lines {
		var ev obs.Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("/events line is not an Event: %v\n%s", err, ln)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("/events not ascending: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}

	// pprof answers on the same mux.
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, _ := get("/debug/pprof/goroutine?debug=1"); code != 200 {
		t.Errorf("/debug/pprof/goroutine status %d", code)
	}

	// Index page links the endpoints; unknown paths 404.
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/statusz") {
		t.Errorf("index page incomplete (status %d)", code)
	}
	if code, _ := get("/nosuch"); code != 404 {
		t.Errorf("unknown path served status %d, want 404", code)
	}
}

// TestEventsFollow checks the live tail: a follower receives events recorded
// after it connected, then the handler returns once max is reached.
func TestEventsFollow(t *testing.T) {
	o := obs.New()
	rec := obs.NewFlightRecorder(16)
	o.Trace = obs.NewTracer(nil).WithRecorder(rec)
	srv := obshttp.New(o)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/events?follow=1&max=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Keep emitting until the reader has what it needs; the subscriber
		// registers asynchronously with the request.
		for i := 0; i < 5000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			o.Emit(obs.Event{Kind: "tick"})
			time.Sleep(time.Millisecond)
		}
	}()
	sc := bufio.NewScanner(resp.Body)
	var got []obs.Event
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("follow stream line not an Event: %v", err)
		}
		got = append(got, ev)
	}
	close(stop)
	wg.Wait()
	if len(got) < 2 {
		t.Fatalf("followed stream delivered %d events, want ≥2", len(got))
	}
}

// TestServeBindsAndShutsDown checks the one-call wiring used by cmd/hotg.
func TestServeBindsAndShutsDown(t *testing.T) {
	o := obs.New()
	addr, shutdown, err := obshttp.Serve("127.0.0.1:0", obshttp.New(o))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("bound server unreachable: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics on bound server: status %d", resp.StatusCode)
	}
	shutdown()
	shutdown() // idempotent
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still answering after shutdown")
	}

	if _, _, err := obshttp.Serve("256.0.0.1:bad", obshttp.New(o)); err == nil {
		t.Error("bad address bound successfully")
	}
}

// TestNilToleration: a server over nothing must serve empty answers, not
// panic — the CLI wires it up before deciding whether observability is on.
func TestNilToleration(t *testing.T) {
	srv := obshttp.New(nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/metrics", "/statusz", "/events", "/statusz?format=html"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s on empty server: status %d", path, resp.StatusCode)
		}
	}
	stop := srv.StartSampler(time.Millisecond)
	stop()
}

func TestFormatStatusLine(t *testing.T) {
	line := obshttp.FormatStatusLine(
		map[string]int64{"runs": 40, "tests": 7, "bugs": 1},
		[]string{"runs", "tests", "bugs", "absent"})
	if line != "runs=40 tests=7 bugs=1" {
		t.Errorf("status line = %q", line)
	}
	if obshttp.FormatStatusLine(nil, []string{"runs"}) != "" {
		t.Error("empty headline should give empty line")
	}
}
