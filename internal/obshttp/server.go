// Package obshttp serves live introspection over a running campaign's
// observability state: OpenMetrics for scrapers, a human status page, a
// streaming tail of the flight recorder, and the standard pprof endpoints.
//
// The server only *reads* the obs.Registry and obs.FlightRecorder; the one
// thing it writes is its own runtime sampler, which publishes heap/goroutine
// gauges into the registry. Nothing here ever touches the Tracer, so the
// canonical trace stream — the determinism contract — is identical with and
// without a live introspection server attached.
package obshttp

import (
	"encoding/json"
	"fmt"
	"html"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"hotg/internal/obs"
)

// Server exposes one observability handle over HTTP. Zero-value fields are
// fine: a nil Obs serves empty metrics, a nil Recorder serves an empty event
// tail.
type Server struct {
	Obs      *obs.Obs
	Recorder *obs.FlightRecorder

	// Info, when set, contributes tool-specific headline fields to /statusz
	// (live run counts, findings, budget remaining, …). It is called on every
	// request and must be safe for concurrent use. Compose several sources
	// with MergeInfo.
	Info func() map[string]int64

	// Mounts adds handlers to the introspection mux by pattern — the fleet
	// coordinator mounts its /fleet/ protocol endpoints here so one port
	// serves workers and humans alike. Patterns must not collide with the
	// built-in endpoints.
	Mounts map[string]http.Handler

	// Sessions, when set, contributes per-session rows to /statusz — the
	// campaign server reports each live and retained session here, backed by
	// that session's own registry. Called on every request; must be safe for
	// concurrent use.
	Sessions func() []SessionStatus

	start time.Time
}

// SessionStatus is one per-session row on /statusz: the session's identity,
// lifecycle state, and headline numbers from its private registry.
type SessionStatus struct {
	ID       string           `json:"id"`
	State    string           `json:"state"`
	Headline map[string]int64 `json:"headline,omitempty"`
}

// MergeInfo composes several /statusz headline sources into one: later
// sources win on key collisions, nil sources are skipped.
func MergeInfo(sources ...func() map[string]int64) func() map[string]int64 {
	return func() map[string]int64 {
		out := make(map[string]int64)
		for _, src := range sources {
			if src == nil {
				continue
			}
			for k, v := range src() {
				out[k] = v
			}
		}
		return out
	}
}

// New returns a server over the given observability handle, tailing the
// recorder attached to its tracer (if any).
func New(o *obs.Obs) *Server {
	s := &Server{Obs: o, start: time.Now()}
	if o != nil {
		s.Recorder = o.Trace.Recorder()
	}
	return s
}

func (s *Server) registry() *obs.Registry {
	if s.Obs == nil {
		return nil
	}
	return s.Obs.Metrics
}

// Handler returns the introspection mux:
//
//	/metrics        OpenMetrics text exposition of the registry
//	/statusz        campaign status, JSON by default, ?format=html for a page
//	/events         flight-recorder dump (JSONL); ?follow=1 to stream live
//	/debug/pprof/*  the standard runtime profiles
//
// The pprof handlers are mounted explicitly on this mux rather than relying
// on http.DefaultServeMux, so importing this package never changes the global
// mux and the introspection port is self-contained.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range s.Mounts {
		mux.Handle(pattern, h)
	}
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><title>hotg introspection</title><ul>
<li><a href="/statusz?format=html">/statusz</a> — live campaign status</li>
<li><a href="/metrics">/metrics</a> — OpenMetrics exposition</li>
<li><a href="/events">/events</a> — flight recorder dump (add ?follow=1 to tail)</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>
</ul>`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	_ = obs.WriteOpenMetrics(w, s.registry())
}

// Statusz is the JSON document served at /statusz: the headline numbers an
// operator watches during a long campaign, plus the full metric map and the
// phase attribution tree.
type Statusz struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Headline      map[string]int64 `json:"headline,omitempty"`
	Runtime       RuntimeStatus    `json:"runtime"`
	Metrics       map[string]int64 `json:"metrics"`
	Phases        *obs.PhaseNode   `json:"phases,omitempty"`
	FlightEvents  int64            `json:"flight_events_total"`
	Sessions      []SessionStatus  `json:"sessions,omitempty"`
}

// RuntimeStatus is the process-health corner of /statusz, sampled at request
// time (the periodic sampler publishes the same numbers as gauges).
type RuntimeStatus struct {
	HeapBytes  uint64 `json:"heap_bytes"`
	Goroutines int    `json:"goroutines"`
	NumGC      uint32 `json:"gc_count"`
}

func (s *Server) statusz() Statusz {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := Statusz{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Runtime:       RuntimeStatus{HeapBytes: ms.HeapAlloc, Goroutines: runtime.NumGoroutine(), NumGC: ms.NumGC},
		Metrics:       map[string]int64{},
		Phases:        obs.PhaseTree(s.registry()),
		FlightEvents:  s.Recorder.Total(),
	}
	if s.Info != nil {
		st.Headline = s.Info()
	}
	if s.Sessions != nil {
		st.Sessions = s.Sessions()
	}
	for _, m := range s.registry().Snapshot() {
		st.Metrics[m.Name] = m.Value
	}
	return st
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	st := s.statusz()
	if r.URL.Query().Get("format") != "html" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<!doctype html><title>hotg /statusz</title><meta http-equiv=\"refresh\" content=\"2\">\n")
	fmt.Fprintf(w, "<style>body{font:14px monospace}table{border-collapse:collapse}td,th{padding:2px 10px;text-align:right}th{text-align:left}</style>\n")
	fmt.Fprintf(w, "<h2>hotg campaign status</h2>\n<p>uptime %.1fs · heap %d MiB · %d goroutines · %d flight events</p>\n",
		st.UptimeSeconds, st.Runtime.HeapBytes>>20, st.Runtime.Goroutines, st.FlightEvents)
	writeKV := func(title string, kv map[string]int64) {
		if len(kv) == 0 {
			return
		}
		keys := make([]string, 0, len(kv))
		for k := range kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "<h3>%s</h3><table>\n", html.EscapeString(title))
		for _, k := range keys {
			fmt.Fprintf(w, "<tr><th>%s</th><td>%d</td></tr>\n", html.EscapeString(k), kv[k])
		}
		fmt.Fprint(w, "</table>\n")
	}
	writeKV("campaign", st.Headline)
	if table := obs.PhaseTable(s.registry()); table != "" {
		fmt.Fprintf(w, "<h3>phase self-time</h3><pre>%s</pre>\n", html.EscapeString(table))
	}
	writeKV("all metrics", st.Metrics)
}

// handleEvents serves the flight recorder. The default is a dump: the retained
// window as JSONL, oldest first. With ?follow=1 the dump is followed by a live
// tail (new events as they are recorded) until the client disconnects or
// ?max=N events have been streamed.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	enc := json.NewEncoder(w)
	for _, ev := range s.Recorder.Snapshot() {
		_ = enc.Encode(ev)
	}
	if r.URL.Query().Get("follow") == "" || s.Recorder == nil {
		return
	}
	maxEvents := int64(1 << 62)
	if v := r.URL.Query().Get("max"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n >= 0 {
			maxEvents = n
		}
	}
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	ch, cancel := s.Recorder.Subscribe(256)
	defer cancel()
	ctx := r.Context()
	var streamed int64
	for streamed < maxEvents {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			streamed++
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// StartSampler launches a goroutine that publishes process-health gauges
// (runtime.heap_bytes, runtime.goroutines, runtime.gc_count) into the
// registry every interval. It writes gauges only — never trace events — so it
// cannot perturb canonical streams. The returned stop function is idempotent
// and waits for the goroutine to exit.
func (s *Server) StartSampler(interval time.Duration) (stop func()) {
	reg := s.registry()
	if reg == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	heap := reg.Gauge("runtime.heap_bytes")
	gor := reg.Gauge("runtime.goroutines")
	gc := reg.Gauge("runtime.gc_count")
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap.Set(int64(ms.HeapAlloc))
		gor.Set(int64(runtime.NumGoroutine()))
		gc.Set(int64(ms.NumGC))
	}
	sample()
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	var stopped bool
	return func() {
		if !stopped {
			stopped = true
			close(done)
			<-exited
		}
	}
}

// Serve binds addr (e.g. ":8080" or "127.0.0.1:0"), starts the introspection
// server and its runtime sampler in the background, and returns the bound
// address plus a shutdown function. Serving errors after a successful bind are
// ignored — introspection is best-effort and must never take down a campaign.
func Serve(addr string, s *Server) (boundAddr string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("introspection listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	stopSampler := s.StartSampler(time.Second)
	go func() { _ = srv.Serve(ln) }()
	var stopped bool
	shutdown = func() {
		if stopped {
			return
		}
		stopped = true
		stopSampler()
		_ = srv.Close()
	}
	return ln.Addr().String(), shutdown, nil
}

// FormatStatusLine renders a one-line periodic status report for terminal
// output (cmd/hotg -status-every): the headline numbers in key=value form.
func FormatStatusLine(headline map[string]int64, order []string) string {
	var b strings.Builder
	for _, k := range order {
		v, ok := headline[k]
		if !ok {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, v)
	}
	return b.String()
}
