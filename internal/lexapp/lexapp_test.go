package lexapp

import (
	"strings"
	"testing"

	"hotg/internal/concolic"
	"hotg/internal/mini"
	"hotg/internal/search"
)

func TestAllWorkloadsBuild(t *testing.T) {
	for _, w := range All() {
		p := w.Build()
		if p.Main() == nil {
			t.Fatalf("%s: no main", w.Name)
		}
		sh := p.Shape()
		for _, seed := range w.Seeds {
			if len(seed) != len(sh.Names) {
				t.Fatalf("%s: seed length %d, shape %d", w.Name, len(seed), len(sh.Names))
			}
			res := mini.Run(p, seed, mini.RunOptions{})
			if res.Kind == mini.StopRuntime {
				t.Fatalf("%s: seed faults: %s", w.Name, res.RuntimeMsg)
			}
		}
		if w.Description == "" {
			t.Fatalf("%s: missing description", w.Name)
		}
	}
}

func TestGetWorkloads(t *testing.T) {
	for _, name := range []string{"obscure", "foo", "bar", "lexer", "lexer-hardcoded"} {
		if _, ok := Get(name); !ok {
			t.Fatalf("Get(%q) failed", name)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("Get(nope) should fail")
	}
}

func TestKeywordHashesDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, kw := range Keywords {
		h := KeywordHash(kw.Word)
		if prev, dup := seen[h]; dup {
			t.Fatalf("keyword hash collision: %q and %q both hash to %d", prev, kw.Word, h)
		}
		seen[h] = kw.Word
	}
}

func TestEncodeDecode(t *testing.T) {
	in := EncodeInput("set 7")
	if len(in) != LexerInputLen {
		t.Fatalf("len = %d", len(in))
	}
	if in[0] != 's' || in[3] != ' ' || in[4] != '7' || in[5] != 0 {
		t.Fatalf("encode = %v", in)
	}
	s := DecodeInput(in)
	if !strings.HasPrefix(s, "set 7") {
		t.Fatalf("decode = %q", s)
	}
	if DecodeInput([]int64{200}) != "?" {
		t.Fatal("non-printable decode")
	}
}

// TestLexerConcreteSemantics runs the lexer program on hand-built inputs and
// checks the parser reaches exactly the expected error sites.
func TestLexerConcreteSemantics(t *testing.T) {
	p := Lexer().Build()
	cases := []struct {
		input string
		want  string // expected error message, "" for clean return
	}{
		{"set 7", "parse-set-num"},
		{"while 1 do end", "parse-while-loop"},
		{"if 2 set 3 end", "parse-if-block"},
		{"not not", "parse-double-not"},
		{"let a 1", "parse-let-binding"},
		{"qp 4 xyz", ""},
		{"", ""},
		{"       ", ""},
		{"set x", ""},           // set IDENT: no rule
		{"do 1", ""},            // do NUM: no rule
		{"while 1 do", ""},      // incomplete while
		{"sett 7", ""},          // near-keyword must not match
		{"verylongchunkxx", ""}, // chunk longer than ChunkLen splits
	}
	for _, c := range cases {
		res := mini.Run(p, EncodeInput(c.input), mini.RunOptions{})
		if c.want == "" {
			if res.Kind != mini.StopReturn {
				t.Fatalf("%q: got %v %q, want clean return", c.input, res.Kind, res.ErrorMsg)
			}
			continue
		}
		if res.Kind != mini.StopError || res.ErrorMsg != c.want {
			t.Fatalf("%q: got %v %q, want error %q", c.input, res.Kind, res.ErrorMsg, c.want)
		}
	}
}

// TestWellFormedSeedsAreBenign: the hard-coded-variant corpus must teach the
// keyword hashes without triggering any parser bug itself.
func TestWellFormedSeedsAreBenign(t *testing.T) {
	p := LexerHardcoded().Build()
	for _, seed := range WellFormedSeeds() {
		res := mini.Run(p, seed, mini.RunOptions{})
		if res.Kind != mini.StopReturn {
			t.Fatalf("seed %q is not benign: %v %q", DecodeInput(seed), res.Kind, res.ErrorMsg)
		}
	}
	// Together the benign seeds must exercise every keyword.
	eng := concolic.New(p, concolic.ModeHigherOrder)
	for _, seed := range WellFormedSeeds() {
		eng.Run(seed)
	}
	hashstr := eng.FuncFor("hashstr")
	for _, kw := range Keywords {
		args := make([]int64, ChunkLen)
		copy(args, EncodeInput(kw.Word)[:ChunkLen])
		if _, ok := eng.Samples.Lookup(hashstr, args); !ok {
			t.Fatalf("keyword %q not sampled by the benign corpus", kw.Word)
		}
	}
}

// TestJunkSeedsContainNoKeywords guards experiment fairness.
func TestJunkSeedsContainNoKeywords(t *testing.T) {
	for _, seed := range JunkSeeds() {
		text := DecodeInput(seed)
		for _, kw := range Keywords {
			for _, chunk := range strings.Fields(strings.Trim(text, "·")) {
				if strings.Trim(chunk, "·") == kw.Word {
					t.Fatalf("junk seed %q contains keyword %q", text, kw.Word)
				}
			}
		}
	}
}

// TestLexerInitTeachesSamples checks that one run of the standard lexer
// records every keyword hash in the IOF store (the addsym loop of Section 7).
func TestLexerInitTeachesSamples(t *testing.T) {
	w := Lexer()
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	ex := eng.Run(JunkSeed())
	if ex.NewSamples < len(Keywords) {
		t.Fatalf("init should record ≥%d samples, got %d", len(Keywords), ex.NewSamples)
	}
	hashstr := eng.FuncFor("hashstr")
	for _, kw := range Keywords {
		args := make([]int64, ChunkLen)
		copy(args, EncodeInput(kw.Word)[:ChunkLen])
		out, ok := eng.Samples.Lookup(hashstr, args)
		if !ok || out != KeywordHash(kw.Word) {
			t.Fatalf("keyword %q: sample %d %v", kw.Word, out, ok)
		}
	}
}

// TestHardcodedLexerHasNoInitSamples: the variant must not leak keyword
// samples at initialization.
func TestHardcodedLexerHasNoInitSamples(t *testing.T) {
	w := LexerHardcoded()
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	eng.Run(JunkSeed())
	hashstr := eng.FuncFor("hashstr")
	for _, kw := range Keywords {
		args := make([]int64, ChunkLen)
		copy(args, EncodeInput(kw.Word)[:ChunkLen])
		if _, ok := eng.Samples.Lookup(hashstr, args); ok {
			t.Fatalf("hardcoded variant leaked keyword sample %q", kw.Word)
		}
	}
}

// TestLexerSearchSmoke is a quick end-to-end check that higher-order search
// reaches a keyword-guarded parser bug while DART-style search cannot.
func TestLexerSearchSmoke(t *testing.T) {
	w := Lexer()
	ho := search.Run(concolic.New(w.Build(), concolic.ModeHigherOrder),
		search.Options{MaxRuns: 120, Seeds: w.Seeds, Bounds: w.Bounds})
	if len(ho.ErrorSitesFound()) == 0 {
		t.Fatalf("higher-order found no parser bug in 120 runs: %s", ho.Summary())
	}
	if ho.Divergences != 0 {
		t.Fatalf("higher-order diverged: %s", ho.Summary())
	}

	w2 := Lexer()
	un := search.Run(concolic.New(w2.Build(), concolic.ModeUnsound),
		search.Options{MaxRuns: 120, Seeds: w2.Seeds, Bounds: w2.Bounds})
	if len(un.ErrorSitesFound()) != 0 {
		t.Fatalf("unsound DART cracked a hash guard?! %s", un.Summary())
	}
	if un.BranchSidesCovered() >= ho.BranchSidesCovered() {
		t.Fatalf("expected HO coverage (%d) > DART coverage (%d)",
			ho.BranchSidesCovered(), un.BranchSidesCovered())
	}
}

func TestKStepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KStep(5) should panic")
		}
	}()
	KStep(5)
}

func TestScrambledHashDeterministic(t *testing.T) {
	for i := int64(-5); i < 5; i++ {
		a := ScrambledHash([]int64{i})
		b := ScrambledHash([]int64{i})
		if a != b {
			t.Fatalf("nondeterministic at %d", i)
		}
		if a < 0 || a >= 1000 {
			t.Fatalf("out of range: %d", a)
		}
	}
}

func TestHashStrRange(t *testing.T) {
	v := HashStr(make([]int64, ChunkLen))
	if v < 0 || v >= 4093 {
		t.Fatalf("HashStr out of range: %d", v)
	}
}

func TestPacketEncodeAndParse(t *testing.T) {
	p := Packet().Build()
	// A well-formed benign packet parses cleanly.
	res := mini.Run(p, EncodePacket(PktControl, "x"), mini.RunOptions{})
	if res.Kind != mini.StopReturn {
		t.Fatalf("benign packet: %v %s", res.Kind, res.ErrorMsg)
	}
	// Each crafted packet reaches its error site.
	cases := []struct {
		pkt  []int64
		want string
	}{
		{EncodePacket(PktData, "1234567"), "data-overflow"},
		{EncodePacket(PktControl, "R"), "control-reboot"},
		{EncodePacket(PktEcho, "hi"), "echo-magic"},
	}
	for _, c := range cases {
		res := mini.Run(p, c.pkt, mini.RunOptions{})
		if res.Kind != mini.StopError || res.ErrorMsg != c.want {
			t.Fatalf("packet %v: got %v %q, want %q", c.pkt, res.Kind, res.ErrorMsg, c.want)
		}
	}
	// A corrupted checksum is rejected before dispatch.
	bad := EncodePacket(PktControl, "R")
	bad[PacketLen-1] = (bad[PacketLen-1] + 1) % 256
	res = mini.Run(p, bad, mini.RunOptions{})
	if res.Kind != mini.StopReturn {
		t.Fatalf("corrupted packet should be rejected: %v %s", res.Kind, res.ErrorMsg)
	}
	// Wrong version and oversized length are rejected.
	v := EncodePacket(PktData, "a")
	v[0] = 1
	if res := mini.Run(p, v, mini.RunOptions{}); res.Kind != mini.StopReturn {
		t.Fatalf("wrong version: %v", res.Kind)
	}
}

func TestCrc8Properties(t *testing.T) {
	// Deterministic and byte-ranged.
	args := []int64{3, 'a', 'b', 'c', 0, 0, 0, 0, 0}
	a, b := Crc8(args), Crc8(args)
	if a != b || a < 0 || a > 255 {
		t.Fatalf("crc8 = %d, %d", a, b)
	}
	// Sensitive to payload changes (the property that defeats concretization).
	args2 := append([]int64(nil), args...)
	args2[1] = 'z'
	if Crc8(args) == Crc8(args2) {
		t.Fatal("crc8 collision on single-byte change (possible but must not happen here)")
	}
}

// TestPacketSearchSmoke: higher-order finds all three packet bugs quickly
// and cleanly; sound concretization finds none.
func TestPacketSearchSmoke(t *testing.T) {
	w := Packet()
	ho := search.Run(concolic.New(w.Build(), concolic.ModeHigherOrder),
		search.Options{MaxRuns: 100, Seeds: w.Seeds, Bounds: w.Bounds})
	if got := len(ho.ErrorSitesFound()); got != 3 {
		t.Fatalf("higher-order found %d/3 packet bugs: %s", got, ho.Summary())
	}
	if ho.Divergences != 0 || ho.MultiStepChains == 0 {
		t.Fatalf("expected clean multi-step runs: %s", ho.Summary())
	}
	w2 := Packet()
	so := search.Run(concolic.New(w2.Build(), concolic.ModeSound),
		search.Options{MaxRuns: 100, Seeds: w2.Seeds, Bounds: w2.Bounds})
	if len(so.ErrorSitesFound()) != 0 {
		t.Fatalf("sound concretization should be blocked: %s", so.Summary())
	}
}
