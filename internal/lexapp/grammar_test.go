package lexapp

import (
	"testing"

	"hotg/internal/mini"
)

func TestTokenParserBuilds(t *testing.T) {
	w := TokenParser()
	p := w.Build()
	sh := p.Shape()
	if len(sh.Names) != MaxTokens+1 {
		t.Fatalf("shape = %v", sh.Names)
	}
	if len(w.Seeds[0]) != MaxTokens+1 {
		t.Fatalf("seed = %v", w.Seeds[0])
	}
	res := mini.Run(p, w.Seeds[0], mini.RunOptions{})
	if res.Kind != mini.StopReturn {
		t.Fatalf("seed run: %+v", res)
	}
}

func TestTokenParserReachesBugs(t *testing.T) {
	p := TokenParser().Build()
	mk := func(toks ...int64) []int64 {
		in := make([]int64, MaxTokens+1)
		for i := range in[:MaxTokens] {
			in[i] = TokIdent
		}
		copy(in, toks)
		in[MaxTokens] = int64(len(toks))
		return in
	}
	cases := []struct {
		in   []int64
		want string
	}{
		{mk(TokKwSet, TokNum), "parse-set-num"},
		{mk(TokKwIf, TokNum, TokKwSet, TokNum, TokKwEnd), "parse-if-block"},
		{mk(TokKwWhile, TokNum, TokKwDo, TokKwEnd), "parse-while-loop"},
		{mk(TokKwNot, TokKwNot), "parse-double-not"},
		{mk(TokKwLet, TokIdent, TokNum), "parse-let-binding"},
	}
	for _, c := range cases {
		res := mini.Run(p, c.in, mini.RunOptions{})
		if res.Kind != mini.StopError || res.ErrorMsg != c.want {
			t.Fatalf("tokens %v: got %v %q, want %q", c.in, res.Kind, res.ErrorMsg, c.want)
		}
	}
	// A benign sequence parses cleanly.
	res := mini.Run(p, mk(TokKwDo, TokNum), mini.RunOptions{})
	if res.Kind != mini.StopReturn {
		t.Fatalf("benign: %+v", res)
	}
}

func TestTokenWordTotalOnAlphabet(t *testing.T) {
	for tok := int64(TokKwIf); tok <= TokIdent; tok++ {
		w, ok := TokenWord(tok)
		if !ok || w == "" {
			t.Fatalf("no production for token %d", tok)
		}
	}
	if _, ok := TokenWord(0); ok {
		t.Fatal("token 0 must have no production")
	}
	if _, ok := TokenWord(99); ok {
		t.Fatal("token 99 must have no production")
	}
}

func TestUnliftTokens(t *testing.T) {
	in := make([]int64, MaxTokens+1)
	in[0], in[1], in[2] = TokKwSet, TokNum, TokIdent
	in[MaxTokens] = 2
	s, ok := UnliftTokens(in)
	if !ok || s != "set 1" {
		t.Fatalf("unlift = %q %v", s, ok)
	}
	// Count out of range.
	in[MaxTokens] = 99
	if _, ok := UnliftTokens(in); ok {
		t.Fatal("bad count must fail")
	}
	// Unknown symbol inside the counted region.
	in[MaxTokens] = 2
	in[1] = 0
	if _, ok := UnliftTokens(in); ok {
		t.Fatal("unknown token must fail")
	}
	// Too long for the lexer buffer: 8 × "while".
	for i := 0; i < MaxTokens; i++ {
		in[i] = TokKwWhile
	}
	in[MaxTokens] = MaxTokens
	if _, ok := UnliftTokens(in); ok {
		t.Fatal("overlong unlift must fail")
	}
}

// TestUnliftRoundTrip: every grammar production re-lexes to its own token.
func TestUnliftRoundTrip(t *testing.T) {
	for tok := int64(TokKwIf); tok <= TokIdent; tok++ {
		in := make([]int64, MaxTokens+1)
		in[0] = tok
		in[MaxTokens] = 1
		s, ok := UnliftTokens(in)
		if !ok {
			t.Fatalf("unlift token %d failed", tok)
		}
		// The real lexer must classify the word back to the same token; we
		// check via the full-pipeline validator on a token-level bug that
		// the word participates in only for representative cases below.
		_ = s
	}
	// End-to-end validation for one representative of each command form.
	mk := func(toks ...int64) []int64 {
		in := make([]int64, MaxTokens+1)
		copy(in, toks)
		in[MaxTokens] = int64(len(toks))
		return in
	}
	if !ValidateOnLexer(mk(TokKwSet, TokNum), "parse-set-num") {
		t.Fatal("set-num does not validate end-to-end")
	}
	if !ValidateOnLexer(mk(TokKwWhile, TokNum, TokKwDo, TokKwEnd), "parse-while-loop") {
		t.Fatal("while-loop does not validate end-to-end")
	}
	if ValidateOnLexer(mk(TokKwSet, TokNum), "parse-while-loop") {
		t.Fatal("validator must check the error site")
	}
}
