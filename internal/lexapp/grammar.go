package lexapp

import (
	"fmt"
	"strings"

	"hotg/internal/mini"
	"hotg/internal/smt"
)

// Grammar-based whitebox fuzzing (Godefroid, Kiezun, Levin, PLDI 2008 — [14]
// in the paper) is the alternative Section 7 discusses for getting past a
// hash-based lexer: (1) instrument the lexer so its return symbols become
// symbolic inputs, and (2) lift the input space from character strings to
// token sequences using a user-supplied grammar. This file implements that
// baseline: a token-level variant of the parser whose inputs are the token
// IDs directly, plus the "grammar" needed to unlift token sequences back to
// concrete input strings for end-to-end validation on the real lexer.
//
// The contrast drawn by the paper: this works, but "instrumenting a lexer
// this way can be problematic for complex lexers, and this approach requires
// a user-supplied input-grammar specification"; higher-order test generation
// only needs the name of the hash function.

// MaxTokens is the token-buffer length of the token-level parser.
const MaxTokens = 8

// tokenParserSource wraps the same parse() used by the lexer workloads, with
// the token stream as the direct program input — the "lexer bypassed" form.
func tokenParserSource() string {
	return fmt.Sprintf(`
// Token-level parser: inputs are token IDs (the lexer is bypassed).
fn parse(toks [8]int, n int) {
	if (n >= 2 && toks[0] == %d && toks[1] == %d) {
		error("parse-set-num");
	}
	if (n >= 5 && toks[0] == %d && toks[1] == %d && toks[2] == %d && toks[3] == %d && toks[4] == %d) {
		error("parse-if-block");
	}
	if (n >= 4 && toks[0] == %d && toks[1] == %d && toks[2] == %d && toks[3] == %d) {
		error("parse-while-loop");
	}
	if (n >= 2 && toks[0] == %d && toks[1] == %d) {
		error("parse-double-not");
	}
	if (n >= 3 && toks[0] == %d && toks[1] == %d && toks[2] == %d) {
		error("parse-let-binding");
	}
}

fn main(toks [8]int, n int) {
	if (n < 0 || n > 8) {
		return;
	}
	parse(toks, n);
}
`,
		TokKwSet, TokNum,
		TokKwIf, TokNum, TokKwSet, TokNum, TokKwEnd,
		TokKwWhile, TokNum, TokKwDo, TokKwEnd,
		TokKwNot, TokKwNot,
		TokKwLet, TokIdent, TokNum)
}

// TokenParser is the lexer-bypassed workload of the grammar-based approach.
// Its inputs are MaxTokens token IDs plus the token count.
func TokenParser() *Workload {
	// The grammar restricts the lifted input space to its own alphabet:
	// token IDs are contiguous (keywords 1..8, NUM 9, IDENT 10), so the
	// restriction is expressible as plain domain bounds.
	bounds := make([]smt.Bound, MaxTokens+1)
	seed := make([]int64, MaxTokens+1)
	for i := 0; i < MaxTokens; i++ {
		bounds[i] = smt.Bound{Lo: TokKwIf, Hi: TokIdent, HasLo: true, HasHi: true}
		seed[i] = TokIdent
	}
	bounds[MaxTokens] = smt.Bound{Lo: 0, Hi: MaxTokens, HasLo: true, HasHi: true}
	seed[MaxTokens] = 0
	return &Workload{
		Name:        "token-parser",
		Description: "grammar-based baseline: the parser with the lexer bypassed (token IDs as inputs)",
		Source:      tokenParserSource(),
		Natives:     mini.Natives{}, // no unknown functions remain
		Seeds:       [][]int64{seed},
		Bounds:      bounds,
	}
}

// TokenWord is the grammar production for one token ID: a concrete string
// the lexer maps back to that token. This table is the "user-supplied
// input-grammar specification" the grammar-based approach needs.
func TokenWord(tok int64) (string, bool) {
	for _, kw := range Keywords {
		if int64(kw.Tok) == tok {
			return kw.Word, true
		}
	}
	switch tok {
	case TokNum:
		return "1", true
	case TokIdent:
		return "a", true
	}
	return "", false
}

// UnliftTokens converts a token-level input back into a concrete input
// string via the grammar, or reports failure when some ID has no production
// or the string does not fit the lexer buffer.
func UnliftTokens(input []int64) (string, bool) {
	n := input[MaxTokens]
	if n < 0 || n > MaxTokens {
		return "", false
	}
	words := make([]string, 0, n)
	for i := int64(0); i < n; i++ {
		w, ok := TokenWord(input[i])
		if !ok {
			return "", false
		}
		words = append(words, w)
	}
	s := strings.Join(words, " ")
	if len(s) > LexerInputLen {
		return "", false
	}
	return s, true
}

// ValidateOnLexer replays an unlifted token-level bug against the real
// (hash-based) lexer program and reports whether it reproduces the same
// error site end-to-end.
func ValidateOnLexer(tokenInput []int64, wantMsg string) bool {
	s, ok := UnliftTokens(tokenInput)
	if !ok {
		return false
	}
	res := mini.Run(Lexer().Build(), EncodeInput(s), mini.RunOptions{})
	return res.Kind == mini.StopError && res.ErrorMsg == wantMsg
}
