package lexapp

import (
	"fmt"
	"strings"

	"hotg/internal/mini"
	"hotg/internal/smt"
)

// The Section 7 application: a lexer in the style of flex's sym.c (Figure 4
// of the paper). The input is a byte string; the lexer splits it into
// space-delimited chunks, hashes each chunk with the unknown function
// hashstr, and compares the hash against the precomputed hashes of the
// language keywords — the exact pattern that defeats classic dynamic test
// generation, because hash functions cannot be inverted by a constraint
// solver. Recognized tokens feed a small command parser with deep seeded
// bugs reachable only through well-formed keyword sequences.

// LexerInputLen is the input buffer length (bytes).
const LexerInputLen = 16

// ChunkLen is the fixed chunk width hashed by hashstr (shorter chunks are
// zero-padded, like flex's fixed-size hash of NUL-terminated names).
const ChunkLen = 6

// Token IDs produced by the lexer.
const (
	TokKwIf    = 1
	TokKwDo    = 2
	TokKwSet   = 3
	TokKwWhile = 4
	TokKwEnd   = 5
	TokKwNot   = 6
	TokKwOr    = 7
	TokKwLet   = 8
	TokNum     = 9
	TokIdent   = 10
)

// Keywords maps each keyword to its token ID.
var Keywords = []struct {
	Word string
	Tok  int
}{
	{"if", TokKwIf}, {"do", TokKwDo}, {"set", TokKwSet}, {"while", TokKwWhile},
	{"end", TokKwEnd}, {"not", TokKwNot}, {"or", TokKwOr}, {"let", TokKwLet},
}

// HashStr is the unknown string-hash native (djb2-style over the padded
// chunk), deterministic and practically non-invertible.
func HashStr(a []int64) int64 {
	h := uint64(5381)
	for _, c := range a {
		h = h*33 + uint64(c)
	}
	return int64(h % 4093)
}

// KeywordHash returns hashstr of the zero-padded keyword.
func KeywordHash(word string) int64 {
	args := make([]int64, ChunkLen)
	for i := 0; i < len(word) && i < ChunkLen; i++ {
		args[i] = int64(word[i])
	}
	return HashStr(args)
}

// EncodeInput converts a string into the lexer's flattened input vector
// (zero-padded to LexerInputLen).
func EncodeInput(s string) []int64 {
	out := make([]int64, LexerInputLen)
	for i := 0; i < len(s) && i < LexerInputLen; i++ {
		out[i] = int64(s[i])
	}
	return out
}

// DecodeInput renders an input vector as a string (dots for non-printable).
func DecodeInput(in []int64) string {
	var b strings.Builder
	for _, c := range in {
		if c >= 32 && c < 127 {
			b.WriteByte(byte(c))
		} else if c == 0 {
			b.WriteByte('·')
		} else {
			b.WriteByte('?')
		}
	}
	return b.String()
}

// ByteBounds bounds every input byte to [0, 127].
func ByteBounds() []smt.Bound {
	out := make([]smt.Bound, LexerInputLen)
	for i := range out {
		out[i] = smt.Bound{Lo: 0, Hi: 127, HasLo: true, HasHi: true}
	}
	return out
}

// JunkSeeds are structurally diverse inputs containing no keywords: chunk
// lengths vary (1–5 bytes) so the directed searches can reach every keyword
// slot, but recognizing any keyword still requires inverting hashstr. All
// techniques receive the same seeds.
func JunkSeeds() [][]int64 {
	return [][]int64{
		EncodeInput("qp 4 xyz 5 abc"), // lengths 2,1,3,1,3
		EncodeInput("vwxyz 4 qp abc"), // lengths 5,1,2,3
		EncodeInput("xyz 7 ab"),       // lengths 3,1,2
	}
}

// JunkSeed is the first junk seed (kept for small demos).
func JunkSeed() []int64 { return EncodeInput("qp 4 xyz 5 abc") }

// WellFormedSeeds is a small corpus of valid command-language inputs, used
// to teach the IOF store the keyword hashes when they are hard-coded
// (Section 7: "starting the testing session with a representative set of
// well-formed inputs").
// The corpus is deliberately benign: every seed lexes into keywords (so all
// eight keyword hashes get sampled) but no seed matches a buggy command
// form — composing those is the search's job.
func WellFormedSeeds() [][]int64 {
	return [][]int64{
		EncodeInput("while do"),
		EncodeInput("set"),
		EncodeInput("end if"),
		EncodeInput("not or"),
		EncodeInput("let 5"),
	}
}

// lexerNatives registers hashstr.
func lexerNatives() mini.Natives {
	ns := mini.Natives{}
	ns.Register("hashstr", ChunkLen, HashStr)
	return ns
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// chunkArgs renders "chunk[0], chunk[1], ..." for the generated source.
func chunkArgs() string {
	parts := make([]string, ChunkLen)
	for i := range parts {
		parts[i] = fmt.Sprintf("chunk[%d]", i)
	}
	return strings.Join(parts, ", ")
}

// keywordInit renders the addsym-style initialization: in the standard
// variant the keyword hashes are computed by calling hashstr on the keyword
// bytes (populating the IOF store during initialization, as described in
// Section 7); in the hardcoded variant the precomputed values are inlined,
// so samples can only come from lexing well-formed inputs.
func keywordInit(hardcoded bool) string {
	var b strings.Builder
	for _, kw := range Keywords {
		if hardcoded {
			fmt.Fprintf(&b, "\tvar h%s = %d;\n", capitalize(kw.Word), KeywordHash(kw.Word))
			continue
		}
		args := make([]string, ChunkLen)
		for i := range args {
			if i < len(kw.Word) {
				args[i] = fmt.Sprintf("%d", kw.Word[i])
			} else {
				args[i] = "0"
			}
		}
		fmt.Fprintf(&b, "\tvar h%s = hashstr(%s);\n", capitalize(kw.Word), strings.Join(args, ", "))
	}
	return b.String()
}

// keywordMatch renders the findsym logic of Figure 4: a hash comparison
// followed by a byte-for-byte confirmation (flex's strcmp), so hash
// collisions do not masquerade as keywords.
func keywordMatch() string {
	var b strings.Builder
	for _, kw := range Keywords {
		fmt.Fprintf(&b, "\t\t\tif (hv == h%s", capitalize(kw.Word))
		for i := 0; i < ChunkLen; i++ {
			c := int64(0)
			if i < len(kw.Word) {
				c = int64(kw.Word[i])
			}
			fmt.Fprintf(&b, " && chunk[%d] == %d", i, c)
		}
		fmt.Fprintf(&b, ") { tok = %d; }\n", kw.Tok)
	}
	return b.String()
}

// lexerSource generates the full mini program.
func lexerSource(hardcoded bool) string {
	return fmt.Sprintf(`
// Flex-style lexer (cf. Figure 4 of the paper) + command parser.
fn lex(s [%d]int, toks [8]int) int {
	// addsym: populate the keyword hash table.
%s	var ntok = 0;
	var i = 0;
	while (i < %d && ntok < 8) {
		// skip separators
		while (i < %d && s[i] == 32) {
			i = i + 1;
		}
		if (i < %d && s[i] > 0) {
			var chunk [%d];
			var j = 0;
			while (i < %d && j < %d && s[i] != 32 && s[i] > 0) {
				chunk[j] = s[i];
				i = i + 1;
				j = j + 1;
			}
			// findsym: keyword recognition through the hash function.
			var hv = hashstr(%s);
			var tok = 0;
%s			if (tok == 0) {
				if (chunk[0] >= 48 && chunk[0] <= 57) {
					tok = %d; // number
				} else {
					tok = %d; // identifier
				}
			}
			toks[ntok] = tok;
			ntok = ntok + 1;
		} else {
			i = i + 1;
		}
	}
	return ntok;
}

// parse consumes the token stream; each recognized command form reaches one
// deep error site — the bugs only well-formed inputs can trigger.
fn parse(toks [8]int, n int) {
	if (n >= 2 && toks[0] == %d && toks[1] == %d) {
		error("parse-set-num");
	}
	if (n >= 5 && toks[0] == %d && toks[1] == %d && toks[2] == %d && toks[3] == %d && toks[4] == %d) {
		error("parse-if-block");
	}
	if (n >= 4 && toks[0] == %d && toks[1] == %d && toks[2] == %d && toks[3] == %d) {
		error("parse-while-loop");
	}
	if (n >= 2 && toks[0] == %d && toks[1] == %d) {
		error("parse-double-not");
	}
	if (n >= 3 && toks[0] == %d && toks[1] == %d && toks[2] == %d) {
		error("parse-let-binding");
	}
}

fn main(s [%d]int) {
	var toks [8];
	var n = lex(s, toks);
	parse(toks, n);
}
`,
		LexerInputLen, keywordInit(hardcoded),
		LexerInputLen, LexerInputLen, LexerInputLen,
		ChunkLen, LexerInputLen, ChunkLen,
		chunkArgs(), keywordMatch(), TokNum, TokIdent,
		// parse-set-num: set NUM
		TokKwSet, TokNum,
		// parse-if-block: if NUM set NUM end
		TokKwIf, TokNum, TokKwSet, TokNum, TokKwEnd,
		// parse-while-loop: while NUM do end
		TokKwWhile, TokNum, TokKwDo, TokKwEnd,
		// parse-double-not: not not
		TokKwNot, TokKwNot,
		// parse-let-binding: let IDENT NUM
		TokKwLet, TokIdent, TokNum,
		LexerInputLen)
}

// Lexer is the standard Section 7 workload: keyword hashes are computed at
// initialization, so higher-order mode observes every (hashvalue,
// hash(keyword)) pair on each run.
func Lexer() *Workload {
	return &Workload{
		Name:        "lexer",
		Description: "Section 7: flex-style lexer + parser, hashes computed at init",
		Source:      lexerSource(false),
		Natives:     lexerNatives(),
		Seeds:       JunkSeeds(),
		Bounds:      ByteBounds(),
	}
}

// LexerHardcoded is the Section 7 variant with precomputed hash values
// hard-coded in the source: samples must be learned from well-formed inputs
// over the testing session.
func LexerHardcoded() *Workload {
	return &Workload{
		Name:        "lexer-hardcoded",
		Description: "Section 7 variant: hard-coded keyword hashes, samples learned from seeds",
		Source:      lexerSource(true),
		Natives:     lexerNatives(),
		Seeds:       append(JunkSeeds(), WellFormedSeeds()...),
		Bounds:      ByteBounds(),
	}
}

// KeywordBranchIDs returns the branch IDs of the keyword-recognition
// conditionals (hash match confirmed by the strcmp chain) in the lexer
// program, in keyword order. Their taken side fires only when an actual
// keyword was lexed; these are the branches classic dynamic test generation
// cannot flip.
func KeywordBranchIDs(p *mini.Program) []int {
	lex := p.Funcs["lex"]
	var out []int
	var mentionsHv func(e mini.Expr) bool
	mentionsHv = func(e mini.Expr) bool {
		switch x := e.(type) {
		case *mini.Ident:
			return x.Name == "hv"
		case *mini.Binary:
			return mentionsHv(x.X) || mentionsHv(x.Y)
		case *mini.Unary:
			return mentionsHv(x.X)
		}
		return false
	}
	var walk func(s mini.Stmt)
	walk = func(s mini.Stmt) {
		switch st := s.(type) {
		case *mini.Block:
			for _, inner := range st.Stmts {
				walk(inner)
			}
		case *mini.If:
			if mentionsHv(st.Cond) {
				out = append(out, st.BranchID)
			}
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *mini.While:
			walk(st.Body)
		}
	}
	walk(lex.Body)
	return out
}
