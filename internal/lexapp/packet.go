package lexapp

import (
	"hotg/internal/mini"
	"hotg/internal/smt"
)

// The second application: a packet parser whose header carries an 8-bit CRC
// of the payload — "CRC-ing data" is on the paper's §6 list of unknown
// functions that defeat symbolic execution. The parser validates the
// checksum before dispatching on the packet type, so every deep bug sits
// behind a constraint of the form crc8(payload...) == checksum, with
// *additional* constraints on the hashed payload itself:
//
//   - plain DART can fix the payload and copy the observed CRC into the
//     checksum byte (the §1 concretization trick) — but any later payload
//     flip invalidates the checksum and diverges (unsound) or is blocked by
//     the concretization pins (sound);
//   - higher-order generation treats crc8 as an uninterpreted function:
//     flipping a payload constraint keeps the symbolic link
//     checksum = crc8(payload), and multi-step resolution runs one
//     intermediate test to sample the new payload's CRC.

// PacketLen is the packet buffer length.
const PacketLen = 12

// PayloadLen is the fixed payload window covered by the CRC.
const PayloadLen = 8

// Packet layout: [version, type, len, payload×8, checksum].
const (
	offVersion  = 0
	offType     = 1
	offLen      = 2
	offPayload  = 3
	offChecksum = offPayload + PayloadLen
)

// Packet type codes.
const (
	PktData    = 1
	PktControl = 2
	PktEcho    = 3
)

// Crc8 is the unknown checksum function: a CRC-8 (polynomial 0x07) over the
// length byte and the fixed payload window.
func Crc8(a []int64) int64 {
	crc := uint8(0)
	for _, b := range a {
		crc ^= uint8(b)
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return int64(crc)
}

// Crc8Of computes the checksum the parser expects for a packet.
func Crc8Of(pkt []int64) int64 {
	args := make([]int64, 1+PayloadLen)
	args[0] = pkt[offLen]
	copy(args[1:], pkt[offPayload:offPayload+PayloadLen])
	return Crc8(args)
}

// EncodePacket builds a well-formed packet with a correct checksum.
func EncodePacket(typ int64, payload string) []int64 {
	pkt := make([]int64, PacketLen)
	pkt[offVersion] = 2
	pkt[offType] = typ
	pkt[offLen] = int64(len(payload))
	for i := 0; i < len(payload) && i < PayloadLen; i++ {
		pkt[offPayload+i] = int64(payload[i])
	}
	pkt[offChecksum] = Crc8Of(pkt)
	return pkt
}

func packetNatives() mini.Natives {
	ns := mini.Natives{}
	ns.Register("crc8", 1+PayloadLen, Crc8)
	return ns
}

// PacketBounds bounds every packet byte to [0, 255].
func PacketBounds() []smt.Bound {
	out := make([]smt.Bound, PacketLen)
	for i := range out {
		out[i] = smt.Bound{Lo: 0, Hi: 255, HasLo: true, HasHi: true}
	}
	return out
}

const packetSrc = `
// Checksummed packet parser. Layout: [version, type, len, payload[8], crc].
fn main(p [12]int) {
	// Header validation.
	if (p[0] != 2) {
		return;
	}
	if (p[2] > 8) {
		return;
	}
	// Checksum validation: crc8 over the length byte and payload window.
	var want = crc8(p[2], p[3], p[4], p[5], p[6], p[7], p[8], p[9], p[10]);
	if (p[11] != want) {
		return;
	}
	// Dispatch. Every error site below requires BOTH a valid checksum and
	// specific payload content — the coupling that separates the techniques.
	if (p[1] == 1) {
		// DATA: oversized writes.
		if (p[2] >= 7) {
			error("data-overflow");
		}
	}
	if (p[1] == 2) {
		// CONTROL: 'R' commands a reboot.
		if (p[3] == 82 && p[2] >= 1) {
			error("control-reboot");
		}
	}
	if (p[1] == 3) {
		// ECHO: the magic greeting.
		if (p[3] == 104 && p[4] == 105) {
			error("echo-magic");
		}
	}
}`

// Packet is the checksummed packet-parser workload. The seed is a valid
// CONTROL packet with an innocuous payload: parsing it samples crc8 once and
// exercises the happy path, but no error site.
func Packet() *Workload {
	return &Workload{
		Name:        "packet",
		Description: "checksummed packet parser: deep bugs behind crc8(payload) == checksum",
		Source:      packetSrc,
		Natives:     packetNatives(),
		Seeds: [][]int64{
			EncodePacket(PktControl, "x"),
			// An invalid-checksum packet exercising the reject path.
			func() []int64 {
				pkt := EncodePacket(PktData, "ab")
				pkt[offChecksum] = (pkt[offChecksum] + 1) % 256
				return pkt
			}(),
		},
		Bounds: PacketBounds(),
	}
}
