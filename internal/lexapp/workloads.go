// Package lexapp contains the programs under test used throughout the
// reproduction: every worked example of the paper (obscure, foo, foo-bis,
// bar, pub, the EUF examples, the multi-step chains) and the Section 7
// application — a flex-style lexer that recognizes keywords by hashing,
// feeding a small command parser with seeded deep bugs.
package lexapp

import (
	"fmt"

	"hotg/internal/mini"
	"hotg/internal/smt"
)

// Workload is one program under test with everything a search needs.
type Workload struct {
	Name        string
	Description string
	Source      string
	Natives     mini.Natives
	Seeds       [][]int64
	Bounds      []smt.Bound

	prog *mini.Program
}

// Build parses and checks the workload's program (memoized).
func (w *Workload) Build() *mini.Program {
	if w.prog == nil {
		w.prog = mini.MustCheck(mini.MustParse(w.Source), w.Natives)
	}
	return w.prog
}

// ScrambledHash is the default "unknown" hash function: deterministic,
// avalanching, and practically non-invertible by a constraint solver.
func ScrambledHash(a []int64) int64 {
	x := uint64(a[0]) * 2654435761
	x ^= x >> 13
	x *= 2246822519
	x ^= x >> 16
	return int64(x % 1000)
}

func scrambledNatives() mini.Natives {
	ns := mini.Natives{}
	ns.Register("hash", 1, ScrambledHash)
	return ns
}

// succNatives gives a hash with h(0)=0 and h(1)=1 so that Example 6's sample
// pair exists, scrambled elsewhere.
func succNatives() mini.Natives {
	ns := mini.Natives{}
	ns.Register("hash", 1, func(a []int64) int64 {
		switch a[0] {
		case 0:
			return 0
		case 1:
			return 1
		default:
			return 100 + ScrambledHash(a)
		}
	})
	return ns
}

// Obscure is the introduction's example: a single hash guard.
func Obscure() *Workload {
	return &Workload{
		Name:        "obscure",
		Description: "Section 1: if (x == hash(y)) — static TG helpless, dynamic TG trivial",
		Source: `
fn main(x int, y int) int {
	if (x == hash(y)) {
		error("obscure");
	}
	return 0;
}`,
		Natives: scrambledNatives(),
		Seeds:   [][]int64{{33, 42}},
	}
}

// Foo is the Section 3.2 program: the divergence (unsound) / missed bug
// (sound) / two-step generation (higher-order) example.
func Foo() *Workload {
	h42 := ScrambledHash([]int64{42})
	return &Workload{
		Name:        "foo",
		Description: "Section 3.2 / Example 7: nested hash guard, two-step generation",
		Source: `
fn main(x int, y int) {
	if (x == hash(y)) {
		if (y == 10) {
			error("deep");
		}
	}
}`,
		Natives: scrambledNatives(),
		Seeds:   [][]int64{{h42, 42}},
	}
}

// FooBis is Example 2: the "good divergence" program.
func FooBis() *Workload {
	return &Workload{
		Name:        "foo-bis",
		Description: "Example 2: sound concretization misses the bug a good divergence finds",
		Source: `
fn main(x int, y int) {
	if (x != hash(y)) {
		if (y == 10) {
			error("deep");
		}
	}
}`,
		Natives: scrambledNatives(),
		Seeds:   [][]int64{{33, 42}},
	}
}

// Bar is Example 3: the hash cycle no test can reach uniformly.
func Bar() *Workload {
	return &Workload{
		Name:        "bar",
		Description: "Example 3: x == hash(y) && y == hash(x) — invalid, unsound TG diverges",
		Source: `
fn main(x int, y int) {
	if (x == hash(y) && y == hash(x)) {
		error("cycle");
	}
}`,
		Natives: scrambledNatives(),
		Seeds:   [][]int64{{33, 42}},
	}
}

// Pub is Example 4: the program whose flip needs the sample antecedent.
func Pub() *Workload {
	return &Workload{
		Name:        "pub",
		Description: "Example 4: hash(x) > 0 && y == 10 — provable only with samples",
		Source: `
fn main(x int, y int) {
	if (hash(x) > 0 && y == 10) {
		error("pub");
	}
}`,
		Natives: scrambledNatives(),
		Seeds:   [][]int64{{1, 2}},
	}
}

// EqPair is Example 5 as a program: reaching the branch requires proving
// ∃x,y: hash(x) = hash(y) via EUF (strategy x := y).
func EqPair() *Workload {
	return &Workload{
		Name:        "eq-pair",
		Description: "Example 5: hash(x) == hash(y) — valid by EUF, x := y",
		Source: `
fn main(x int, y int) {
	if (hash(x) == hash(y)) {
		error("eq");
	}
}`,
		Natives: scrambledNatives(),
		Seeds:   [][]int64{{3, 8}},
	}
}

// SuccPair is Example 6 as a program: hash(x) == hash(y) + 1 needs a sample
// pair with outputs differing by one.
func SuccPair() *Workload {
	return &Workload{
		Name:        "succ-pair",
		Description: "Example 6: hash(x) == hash(y) + 1 — needs the sample antecedent",
		Source: `
fn main(x int, y int) {
	if (hash(x) == hash(y) + 1) {
		error("succ");
	}
}`,
		Natives: succNatives(),
		// The seeds walk hash over 0 and 1, teaching h(0)=0 and h(1)=1.
		Seeds: [][]int64{{0, 1}},
	}
}

// KStep builds a k-level nested hash chain generalizing Example 7.
func KStep(k int) *Workload {
	if k < 1 || k > 3 {
		panic("lexapp: KStep supports 1..3 levels")
	}
	var src string
	switch k {
	case 1:
		src = `
fn main(x int, y int, z int) {
	if (x == hash(y)) {
		error("deep1");
	}
}`
	case 2:
		src = `
fn main(x int, y int, z int) {
	if (x == hash(y)) {
		if (y == 10) {
			error("deep2");
		}
	}
}`
	case 3:
		src = `
fn main(x int, y int, z int) {
	if (x == hash(y)) {
		if (y == hash(z)) {
			if (z == 7) {
				error("deep3");
			}
		}
	}
}`
	}
	return &Workload{
		Name:        fmt.Sprintf("kstep-%d", k),
		Description: fmt.Sprintf("Example 7 generalized: %d-step test generation", k),
		Source:      src,
		Natives:     scrambledNatives(),
		Seeds:       [][]int64{{1, 2, 3}},
	}
}

// Delayed is the Section 3.3 closing example: x := hash(y); if (y == 10).
func Delayed() *Workload {
	return &Workload{
		Name:        "delayed",
		Description: "Section 3.3 variant: delaying concretization constraints recovers the flip",
		Source: `
fn main(y int) {
	var x = hash(y);
	if (y == 10) {
		error("e");
	}
}`,
		Natives: scrambledNatives(),
		Seeds:   [][]int64{{42}},
	}
}

// PaperExamples returns every non-lexer workload.
func PaperExamples() []*Workload {
	return []*Workload{
		Obscure(), Foo(), FooBis(), Bar(), Pub(), EqPair(), SuccPair(),
		KStep(2), KStep(3), Delayed(),
	}
}

// CallbackFilter is the predicate-filter callback workload: the error guard
// needs p to accept two adjacent points, which no scalar input can arrange —
// under the default function every p(·) is 0, so a first-order searcher only
// ever sees the false side of the predicate branches. A higher-order searcher
// invents the table p = {(x)->1, (x+1)->1} and walks straight in.
func CallbackFilter() *Workload {
	return &Workload{
		Name:        "cb-filter",
		Description: "callback predicate filter: p(x)==1 && p(x+1)==1 needs a synthesized function",
		Source: `
fn main(x int, y int, p fn(int) int) {
	if (p(x) == 1 && p(x + 1) == 1) {
		if (y == 7) {
			error("filter");
		}
	}
}`,
		Natives: scrambledNatives(),
		Seeds:   [][]int64{{3, 0}},
	}
}

// CallbackSortGuard is the comparator workload: the bug is a transitivity
// violation, reachable only by a comparator that orders a<b and b<c but not
// a<c. Every constant-default comparator returns 0 everywhere, so the guard's
// true side is invisible to first-order search.
func CallbackSortGuard() *Workload {
	return &Workload{
		Name:        "cb-sortguard",
		Description: "callback comparator: a non-transitive cmp reaches the sort guard's bug",
		Source: `
fn main(a int, b int, c int, cmp fn(int, int) int) {
	if (cmp(a, b) < 0 && cmp(b, c) < 0) {
		if (cmp(a, c) >= 0) {
			error("nontransitive");
		}
	}
}`,
		Natives: scrambledNatives(),
		Seeds:   [][]int64{{1, 2, 3}},
	}
}

// CallbackFold is the fold workload: a three-step fold through the callback
// must hit an exact checksum while the scalar inputs satisfy a side
// constraint — the function value and the scalars are solved together.
func CallbackFold() *Workload {
	return &Workload{
		Name:        "cb-fold",
		Description: "callback fold: step(step(step(0,s0),s1),s2)==42 with a scalar side constraint",
		Source: `
fn main(s0 int, s1 int, s2 int, step fn(int, int) int) {
	var acc = step(0, s0);
	acc = step(acc, s1);
	acc = step(acc, s2);
	if (acc == 42) {
		if (s0 + s1 + s2 > 10) {
			error("checksum");
		}
	}
}`,
		Natives: scrambledNatives(),
		Seeds:   [][]int64{{1, 2, 3}},
	}
}

// CallbackWorkloads returns the function-valued-input family E16 measures:
// every bug sits behind a branch on a callback's output, so coverage of the
// branch's true side separates higher-order synthesis from DART-style
// concretization.
func CallbackWorkloads() []*Workload {
	return []*Workload{CallbackFilter(), CallbackSortGuard(), CallbackFold()}
}

// Get returns a workload by name (paper examples, lexer variants, and the
// callback family).
func Get(name string) (*Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

// All returns every workload: paper examples, lexers, packet parser, the
// call-heavy scanner, and the callback family.
func All() []*Workload {
	out := append(PaperExamples(), Lexer(), LexerHardcoded(), Packet(), Scanner())
	return append(out, CallbackWorkloads()...)
}

// Scanner is a call-heavy workload for the compositional-summary machinery:
// a byte scanner that classifies every input byte through a helper function
// (one call per byte per run, so path summaries get reused heavily), with a
// hash-guarded deep bug.
func Scanner() *Workload {
	return &Workload{
		Name:        "scanner",
		Description: "call-heavy byte scanner: classify() per byte, summary-friendly",
		Source: `
fn classify(c int) int {
	// A deliberately nontrivial classifier: the accumulator loop is pure
	// symbolic work that a path summary absorbs entirely on reuse.
	var acc = c;
	var i = 0;
	while (i < 8) {
		acc = acc * 3 + i;
		i = i + 1;
	}
	if (c == 32) {
		return 0; // space
	}
	if (c >= 48 && c <= 57) {
		return 1; // digit
	}
	if (c >= 97 && c <= 122) {
		return 2; // letter
	}
	if (c >= 123 && hash(acc) % 2 == 0) {
		return 4; // high byte with even accumulator hash
	}
	return 3; // other
}
fn main(s [10]int) {
	var digits = 0;
	var letters = 0;
	var evens = 0;
	var i = 0;
	while (i < 10) {
		var k = classify(s[i]);
		if (k == 1) {
			digits = digits + 1;
		}
		if (k == 2) {
			letters = letters + 1;
		}
		if (k == 4) {
			evens = evens + 1;
		}
		i = i + 1;
	}
	if (digits >= 1 && letters >= 2) {
		error("mixed");
	}
	if (evens >= 1) {
		error("even-hash-byte");
	}
}`,
		Natives: scrambledNatives(),
		Seeds:   [][]int64{{113, 119, 32, 101, 114, 32, 116, 122, 117, 105}}, // "qw er tzui"
		Bounds: func() []smt.Bound {
			out := make([]smt.Bound, 10)
			for i := range out {
				out[i] = smt.Bound{Lo: 0, Hi: 255, HasLo: true, HasHi: true}
			}
			return out
		}(),
	}
}
