package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The nil *Counter is a
// valid no-op handle, so lookups against a disabled registry cost nothing.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically set last-value metric (worker counts, store sizes).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the last value set (0 for the nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named-metric table. Metric handles are created on first use
// and stable thereafter, so hot loops fetch a handle once and update it with
// plain atomics; the registry lock is touched only on lookup and snapshot.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// MetricValue is one metric in a snapshot. Kind is "counter", "gauge", or
// "histogram"; histogram entries carry the distribution fields.
type MetricValue struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Value int64  `json:"value"`

	// Histogram-only fields (Value holds the observation count).
	Sum int64 `json:"sum,omitempty"`
	Min int64 `json:"min,omitempty"`
	Max int64 `json:"max,omitempty"`
	P50 int64 `json:"p50,omitempty"`
	P90 int64 `json:"p90,omitempty"`
	P99 int64 `json:"p99,omitempty"`
}

// Snapshot returns every registered metric, sorted by name, with histogram
// percentiles computed at snapshot time.
func (r *Registry) Snapshot() []MetricValue {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricValue, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, MetricValue{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, MetricValue{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		s := h.Snapshot()
		out = append(out, MetricValue{
			Name: name, Kind: "histogram", Value: s.Count,
			Sum: s.Sum, Min: s.Min, Max: s.Max, P50: s.P50, P90: s.P90, P99: s.P99,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Get returns the snapshot value of one metric by name (0 if absent) — a
// convenience for tools embedding a few headline numbers.
func (r *Registry) Get(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c.Value()
	}
	if g, ok := r.gauges[name]; ok {
		return g.Value()
	}
	if h, ok := r.hists[name]; ok {
		return h.Snapshot().Count
	}
	return 0
}

// ProfileTable renders the full registry as an aligned end-of-run report.
// Histogram rows show count, mean, and the p50/p90/p99 percentiles; metrics
// whose name ends in ".ns" are formatted as durations.
func (r *Registry) ProfileTable() string {
	snap := r.Snapshot()
	var b strings.Builder
	b.WriteString("metric                                    kind       value/count        mean       p50       p90       p99\n")
	for _, m := range snap {
		ns := strings.HasSuffix(m.Name, ".ns")
		switch m.Kind {
		case "histogram":
			mean := int64(0)
			if m.Value > 0 {
				mean = m.Sum / m.Value
			}
			fmt.Fprintf(&b, "%-41s %-10s %11d %11s %9s %9s %9s\n", m.Name, m.Kind, m.Value,
				formatVal(mean, ns), formatVal(m.P50, ns), formatVal(m.P90, ns), formatVal(m.P99, ns))
		default:
			fmt.Fprintf(&b, "%-41s %-10s %11s\n", m.Name, m.Kind, formatVal(m.Value, ns))
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// formatVal renders nanosecond metrics human-readably and leaves the rest as
// plain integers.
func formatVal(v int64, ns bool) string {
	if !ns {
		return fmt.Sprintf("%d", v)
	}
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fs", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}
