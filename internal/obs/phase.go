package obs

import (
	"fmt"
	"strings"
	"time"
)

// PhaseNode is one row of the phase attribution tree: where the pipeline's
// time went, with Self = Total − Σ(children), clamped at zero. The tree is
// reconstructed from the existing latency histograms and counters, so it is
// an attribution, not a profile: with more than one worker the aggregate
// child time can exceed the parent's wall clock (parallel speedup), and on
// the satisfiability path solver time is reported under fol even though the
// search calls smt directly — both show up as a clamped (zero) Self.
type PhaseNode struct {
	Name     string        `json:"name"`
	Total    time.Duration `json:"total_ns"`
	Self     time.Duration `json:"self_ns"`
	Children []*PhaseNode  `json:"children,omitempty"`
}

// phaseTotal sums the named metrics' values: counters contribute their count,
// histograms their Sum (every metric here is nanoseconds).
func phaseTotal(by map[string]MetricValue, names ...string) time.Duration {
	var total int64
	for _, n := range names {
		m := by[n]
		if m.Kind == "histogram" {
			total += m.Sum
		} else {
			total += m.Value
		}
	}
	return time.Duration(total)
}

// PhaseTree builds the pipeline's phase attribution from a registry snapshot:
//
//	search            search.wall_ns
//	├─ exec           concolic.exec.ns
//	└─ fol            fol.prove.ns + fol.refute.ns
//	   └─ smt         smt.solve.ns + smt.ctx.check.ns
//	      ├─ sat      smt.sat.ns
//	      ├─ simplex  smt.lia.ns   (LIA: branch-and-bound over simplex)
//	      └─ euf      smt.euf.ns
//
// Returns nil when the registry holds no search time at all (nothing ran, or
// observability was off).
func PhaseTree(r *Registry) *PhaseNode {
	if r == nil {
		return nil
	}
	by := map[string]MetricValue{}
	for _, m := range r.Snapshot() {
		by[m.Name] = m
	}
	smtNode := &PhaseNode{Name: "smt", Total: phaseTotal(by, "smt.solve.ns", "smt.ctx.check.ns"),
		Children: []*PhaseNode{
			{Name: "sat", Total: phaseTotal(by, "smt.sat.ns")},
			{Name: "simplex", Total: phaseTotal(by, "smt.lia.ns")},
			{Name: "euf", Total: phaseTotal(by, "smt.euf.ns")},
		}}
	folNode := &PhaseNode{Name: "fol", Total: phaseTotal(by, "fol.prove.ns", "fol.refute.ns"),
		Children: []*PhaseNode{smtNode}}
	root := &PhaseNode{Name: "search", Total: phaseTotal(by, "search.wall_ns"),
		Children: []*PhaseNode{
			{Name: "exec", Total: phaseTotal(by, "concolic.exec.ns")},
			folNode,
		}}
	if root.Total == 0 && folNode.Total == 0 && smtNode.Total == 0 {
		return nil
	}
	// The satisfiability path (non-higher-order modes, per-worker sat
	// sessions) reaches smt without going through fol; keep the tree honest
	// by widening fol to at least its children so Self clamps at 0 instead
	// of hiding solver time.
	if folNode.Total < smtNode.Total {
		folNode.Total = smtNode.Total
	}
	fillSelf(root)
	return root
}

func fillSelf(n *PhaseNode) {
	var child time.Duration
	for _, c := range n.Children {
		fillSelf(c)
		child += c.Total
	}
	n.Self = n.Total - child
	if n.Self < 0 {
		n.Self = 0
	}
}

// PhaseTable renders the phase attribution as an aligned table (indented by
// depth, with percent-of-root columns). Returns "" when there is nothing to
// attribute.
func PhaseTable(r *Registry) string {
	root := PhaseTree(r)
	if root == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("phase                 total        self     % of search\n")
	var walk func(n *PhaseNode, depth int)
	walk = func(n *PhaseNode, depth int) {
		pct := 0.0
		if root.Total > 0 {
			pct = 100 * float64(n.Total) / float64(root.Total)
		}
		fmt.Fprintf(&b, "%-18s %9s   %9s   %6.1f%%\n",
			strings.Repeat("  ", depth)+n.Name,
			formatVal(int64(n.Total), true), formatVal(int64(n.Self), true), pct)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return strings.TrimRight(b.String(), "\n")
}
