package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one entry of the Chrome trace_event format ("JSON Array
// Format" / "traceEvents" object) understood by chrome://tracing and
// Perfetto. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name  string                 `json:"name"`
	Phase string                 `json:"ph"`
	TS    float64                `json:"ts"`
	Dur   float64                `json:"dur,omitempty"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event envelope.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace converts a trace-event stream to Chrome trace_event JSON,
// one track (thread) per worker plus one for the coordinator, so the search
// worker-pool timeline renders in chrome://tracing or https://ui.perfetto.dev.
// Events with a duration become complete ("X") slices; instant events become
// thread-scoped instants ("i").
func WriteChromeTrace(w io.Writer, events []Event) error {
	const pid = 1
	// Worker -1 (coordinator) maps to tid 0; worker n maps to tid n+1.
	tid := func(worker int) int { return worker + 1 }

	tracks := map[int]bool{}
	out := make([]chromeEvent, 0, len(events)+4)
	for _, ev := range events {
		tracks[ev.Worker] = true
		ce := chromeEvent{
			Name: ev.Kind,
			TS:   float64(ev.TS) / 1e3,
			PID:  pid,
			TID:  tid(ev.Worker),
		}
		if ev.Dur > 0 {
			ce.Phase = "X"
			ce.Dur = float64(ev.Dur) / 1e3
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		if len(ev.Num) > 0 || len(ev.Str) > 0 {
			ce.Args = make(map[string]interface{}, len(ev.Num)+len(ev.Str)+1)
			for k, v := range ev.Num {
				ce.Args[k] = v
			}
			for k, v := range ev.Str {
				ce.Args[k] = v
			}
			ce.Args["seq"] = ev.Seq
		}
		out = append(out, ce)
	}

	// Name the tracks so the timeline reads "coordinator", "worker 0", ….
	var workers []int
	for wk := range tracks {
		workers = append(workers, wk)
	}
	sort.Ints(workers)
	meta := make([]chromeEvent, 0, len(workers))
	for _, wk := range workers {
		name := "coordinator"
		if wk >= 0 {
			name = workerName(wk)
		}
		meta = append(meta, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   pid,
			TID:   tid(wk),
			Args:  map[string]interface{}{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: append(meta, out...), DisplayTimeUnit: "ms"})
}

func workerName(w int) string {
	return "worker " + strconv.Itoa(w)
}
