package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured trace record. The schema is a stable interface
// (documented field-by-field in DESIGN.md §7):
//
//	seq    — 1-based emission sequence number; deterministic at any worker
//	         count (events are emitted in canonical coordinator apply order).
//	kind   — event type (run_start, target, prove, solve, cache, exec_task,
//	         samples_learned, divergence, bug_found, multistep, run_end, …).
//	ts_ns  — start time, nanoseconds since the trace began (timing-only).
//	dur_ns — duration in nanoseconds, 0 for instant events (timing-only).
//	worker — worker that performed the work: 0-based worker index, or -1 for
//	         the coordinator (scheduling-only).
//	num    — integer attributes, keyed by name; deterministic.
//	str    — string attributes, keyed by name; deterministic.
//
// ts_ns, dur_ns, and worker are the only fields that may differ between runs
// at different worker counts; Canonical strips exactly those.
type Event struct {
	Seq    int64             `json:"seq"`
	Kind   string            `json:"kind"`
	TS     int64             `json:"ts_ns"`
	Dur    int64             `json:"dur_ns,omitempty"`
	Worker int               `json:"worker"`
	Num    map[string]int64  `json:"num,omitempty"`
	Str    map[string]string `json:"str,omitempty"`
}

// Canonical returns the determinism-relevant projection of the event as one
// JSON line: sequence, kind, and attributes, with timestamps, durations, and
// worker IDs stripped. Two searches are trace-equivalent iff their canonical
// streams are equal.
func (ev Event) Canonical() string {
	c := ev
	c.TS, c.Dur, c.Worker = 0, 0, 0
	b, err := json.Marshal(c) // map keys marshal sorted; fully deterministic
	if err != nil {
		return "<unencodable event>"
	}
	return string(b)
}

// Tracer serializes events to an optional JSONL writer and (optionally)
// retains them in memory for post-run export (Chrome traces, tests). The nil
// *Tracer is a valid no-op handle. Emission is mutex-serialized; in the
// search it is called only from the coordinator goroutine.
type Tracer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	start  time.Time
	seq    int64
	keep   bool
	events []Event
	err    error
	rec    *FlightRecorder
}

// NewTracer returns a tracer writing one JSON object per line to w. A nil w
// is allowed (events are only retained if Keep is set) — used when only a
// Chrome export or an in-memory stream is wanted.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{start: time.Now()}
	if w != nil {
		t.bw = bufio.NewWriter(w)
		t.enc = json.NewEncoder(t.bw)
	}
	return t
}

// Keep makes the tracer retain every event in memory (for Events/Chrome
// export). Returns the tracer for chaining.
func (t *Tracer) Keep() *Tracer {
	if t != nil {
		t.keep = true
	}
	return t
}

// WithRecorder attaches a flight recorder: every event emitted from now on is
// also appended to the ring (after its sequence number and timestamp are
// assigned). Returns the tracer for chaining.
func (t *Tracer) WithRecorder(r *FlightRecorder) *Tracer {
	if t != nil {
		t.mu.Lock()
		t.rec = r
		t.mu.Unlock()
	}
	return t
}

// Recorder returns the attached flight recorder, or nil.
func (t *Tracer) Recorder() *FlightRecorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rec
}

// Start returns the tracer's epoch; event timestamps are relative to it.
func (t *Tracer) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Emit assigns the event its sequence number and timestamp and writes it.
// If ev.TS is zero it is stamped with the current trace-relative time.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev.Seq = t.seq
	if ev.TS == 0 {
		ev.TS = int64(time.Since(t.start))
	}
	if t.keep {
		t.events = append(t.events, ev)
	}
	if t.rec != nil {
		t.rec.Record(ev)
	}
	if t.enc != nil {
		if err := t.enc.Encode(ev); err != nil && t.err == nil {
			t.err = err
		}
	}
}

// Events returns the retained events (Keep mode only).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// CanonicalStream returns the retained events' canonical lines joined by
// newlines — the value the determinism tests compare across worker counts.
func (t *Tracer) CanonicalStream() string {
	evs := t.Events()
	var b []byte
	for _, ev := range evs {
		b = append(b, ev.Canonical()...)
		b = append(b, '\n')
	}
	return string(b)
}

// Flush pushes every buffered event line to the underlying writer and returns
// the first emission error so far. Long-running campaigns call it at durable
// boundaries (the search calls it after every checkpoint), so a process killed
// without Close — the kill -9 scenario — keeps a valid JSONL prefix on disk:
// the last flushed line is always complete.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bw != nil {
		if err := t.bw.Flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// Err returns the first emission or encode error, without waiting for Close.
// A non-nil Err means at least one event line was dropped or truncated;
// callers that stream traces (cmd/hotg) surface it as soon as the run ends.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close flushes the JSONL writer and returns the first emission error.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bw != nil {
		if err := t.bw.Flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}
