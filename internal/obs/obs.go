// Package obs is the observability layer of the whole pipeline: a metrics
// registry (named counters, gauges, and log-scale latency histograms) plus a
// structured event tracer emitting one JSONL record per pipeline event.
//
// It is zero-dependency (stdlib only) and built around two rules:
//
//  1. Disabled means free. Every entry point is nil-safe: a nil *Obs, a nil
//     *Counter, a nil *Tracer all no-op behind a single pointer check, so the
//     uninstrumented path costs one branch and no allocation. Hot paths guard
//     their time.Now() calls with Obs.Enabled()/Tracing().
//
//  2. Traces are deterministic. Metric updates may happen on any worker
//     goroutine (counters and histograms are atomic), but trace events are
//     emitted only by the search coordinator in canonical apply order — the
//     same order the sequential algorithm would produce. Worker-side facts
//     (which worker ran a task, when, for how long) ride along as the Worker/
//     TS/Dur fields, which Canonical() strips; everything else is identical
//     at every worker count.
//
// See DESIGN.md §7 for the architecture and the field-by-field event schema.
package obs

// Obs bundles a metrics registry with an optional event tracer. A nil *Obs
// disables all observability; a non-nil Obs with a nil Trace collects metrics
// only.
type Obs struct {
	Metrics *Registry
	Trace   *Tracer
}

// New returns an Obs collecting metrics, with tracing disabled.
func New() *Obs { return &Obs{Metrics: NewRegistry()} }

// Enabled reports whether any observability is active.
func (o *Obs) Enabled() bool { return o != nil }

// Tracing reports whether trace events should be emitted.
func (o *Obs) Tracing() bool { return o != nil && o.Trace != nil }

// Counter returns the named counter, or nil (a valid no-op handle) when
// observability is disabled.
func (o *Obs) Counter(name string) *Counter {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge returns the named gauge, or a nil no-op handle.
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// Histogram returns the named histogram, or a nil no-op handle.
func (o *Obs) Histogram(name string) *Histogram {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// Emit forwards an event to the tracer, if any. Callers that build attribute
// maps should guard with Tracing() first so the maps are not allocated on the
// disabled path.
func (o *Obs) Emit(ev Event) {
	if o == nil || o.Trace == nil {
		return
	}
	o.Trace.Emit(ev)
}
