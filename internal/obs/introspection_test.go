package obs

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var regen = flag.Bool("regen", false, "regenerate golden files")

// TestOpenMetricsGolden pins the exporter's exact output for a registry with
// all three metric kinds: deterministic order, counter _total suffix, summary
// quantiles, the trailing # EOF.
func TestOpenMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("search.runs").Add(42)
	r.Counter("smt.ctx.pushes").Add(7)
	r.Gauge("search.frontier.hot").Set(13)
	h := r.Histogram("fol.prove.ns")
	h.Observe(1000)
	h.Observe(1000)
	h.Observe(1000)
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, r); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "openmetrics.golden")
	if *regen {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -regen to create)", err)
	}
	if buf.String() != string(want) {
		t.Errorf("OpenMetrics output drifted from golden:\ngot:\n%swant:\n%s", buf.String(), want)
	}
}

// TestOpenMetricsParses runs a minimal syntactic validation over the export
// of a busy registry: every non-comment line is "name[{label}] value", names
// are in the Prometheus charset, families arrive sorted, and the stream ends
// with # EOF.
func TestOpenMetricsParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b.c").Inc()
	r.Gauge("z.9weird-name!").Set(-5)
	r.Histogram("lat.ns").Observe(123456)
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[len(lines)-1] != "# EOF" {
		t.Fatalf("missing # EOF terminator: %q", lines[len(lines)-1])
	}
	validName := func(s string) bool {
		for i := 0; i < len(s); i++ {
			c := s[i]
			ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' || (c >= '0' && c <= '9' && i > 0)
			if !ok {
				return false
			}
		}
		return len(s) > 0
	}
	for _, ln := range lines[:len(lines)-1] {
		if strings.HasPrefix(ln, "# TYPE ") {
			parts := strings.Fields(ln)
			if len(parts) != 4 || !validName(parts[2]) {
				t.Errorf("malformed TYPE line: %q", ln)
			}
			continue
		}
		name, rest, ok := strings.Cut(ln, " ")
		if !ok {
			t.Errorf("sample line without value: %q", ln)
			continue
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unterminated label set: %q", ln)
			}
			name = name[:i]
		}
		name = strings.TrimSuffix(strings.TrimSuffix(name, "_total"), "_sum")
		name = strings.TrimSuffix(name, "_count")
		if !validName(name) {
			t.Errorf("invalid metric name %q in line %q", name, ln)
		}
		var v int64
		if _, err := fmt.Sscanf(rest, "%d", &v); err != nil {
			t.Errorf("non-integer value in %q: %v", ln, err)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"search.proof_cache.hits": "search_proof_cache_hits",
		"9lives":                  "_9lives",
		"ok_name:sub":             "ok_name:sub",
		"sp ace-dash":             "sp_ace_dash",
	} {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestFlightRecorderRing checks bounded retention: a ring of capacity 8 fed
// 100 events retains exactly the last 8, in order.
func TestFlightRecorderRing(t *testing.T) {
	r := NewFlightRecorder(8)
	for i := 1; i <= 100; i++ {
		r.Record(Event{Seq: int64(i), Kind: "k"})
	}
	if r.Total() != 100 || r.Cap() != 8 {
		t.Fatalf("total=%d cap=%d", r.Total(), r.Cap())
	}
	got := r.Snapshot()
	if len(got) != 8 {
		t.Fatalf("snapshot length %d, want 8", len(got))
	}
	for i, ev := range got {
		if ev.Seq != int64(93+i) {
			t.Fatalf("slot %d has seq %d, want %d", i, ev.Seq, 93+i)
		}
	}
}

// TestFlightRecorderConcurrentReads hammers Snapshot from several goroutines
// while the ring is written; every observed snapshot must be ascending in Seq
// (valid, untorn events). Run under -race this is also the memory-model check.
func TestFlightRecorderConcurrentReads(t *testing.T) {
	r := NewFlightRecorder(64)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := r.Snapshot()
				for i := 1; i < len(snap); i++ {
					if snap[i].Seq <= snap[i-1].Seq {
						t.Errorf("snapshot not ascending: %d then %d", snap[i-1].Seq, snap[i].Seq)
						return
					}
				}
			}
		}()
	}
	for i := 1; i <= 50000; i++ {
		r.Record(Event{Seq: int64(i), Kind: "k", Num: map[string]int64{"i": int64(i)}})
	}
	close(done)
	wg.Wait()
}

// TestFlightRecorderSubscribe checks live tailing: events recorded after
// Subscribe arrive on the channel; a slow subscriber drops (counted) instead
// of stalling Record; cancel closes the channel and is idempotent.
func TestFlightRecorderSubscribe(t *testing.T) {
	r := NewFlightRecorder(16)
	r.Record(Event{Seq: 1}) // before subscription: not delivered
	ch, cancel := r.Subscribe(2)
	r.Record(Event{Seq: 2})
	r.Record(Event{Seq: 3})
	r.Record(Event{Seq: 4}) // buffer is 2: this one drops
	if ev := <-ch; ev.Seq != 2 {
		t.Fatalf("first delivered seq = %d, want 2", ev.Seq)
	}
	if ev := <-ch; ev.Seq != 3 {
		t.Fatalf("second delivered seq = %d, want 3", ev.Seq)
	}
	if dropped := cancel(); dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
	if cancel() != 1 {
		t.Fatal("second cancel changed the drop count")
	}
	r.Record(Event{Seq: 5}) // after cancel: must not panic
}

// TestTracerRecorderIntegration checks that a tracer-attached recorder sees
// every emitted event with its assigned sequence number.
func TestTracerRecorderIntegration(t *testing.T) {
	rec := NewFlightRecorder(4)
	tr := NewTracer(nil).WithRecorder(rec)
	if tr.Recorder() != rec {
		t.Fatal("Recorder() accessor broken")
	}
	for i := 0; i < 6; i++ {
		tr.Emit(Event{Kind: "k"})
	}
	snap := rec.Snapshot()
	if len(snap) != 4 || snap[0].Seq != 3 || snap[3].Seq != 6 {
		t.Fatalf("recorder window wrong: %+v", snap)
	}
}

// errWriter fails after n bytes, for exercising the tracer error path.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

// TestTracerFlushAndErr checks the durable-boundary contract: Flush pushes
// buffered lines to the writer, and Err surfaces an emission error without
// (and before) Close.
func TestTracerFlushAndErr(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Event{Kind: "a"})
	// bufio holds the line until flushed.
	if buf.Len() != 0 {
		t.Skip("bufio flushed eagerly; buffer smaller than one event")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Fatalf("flush left no complete line: %q", buf.String())
	}
	if tr.Err() != nil {
		t.Fatal("healthy tracer reports an error")
	}

	bad := NewTracer(&errWriter{n: 10})
	for i := 0; i < 2000; i++ { // overflow the 4KB bufio buffer to force a write
		bad.Emit(Event{Kind: "x", Num: map[string]int64{"i": int64(i)}})
	}
	if bad.Err() == nil {
		t.Fatal("Err() nil after writer failure")
	}
	if bad.Close() == nil {
		t.Fatal("Close() lost the emission error")
	}

	var nilT *Tracer
	if nilT.Flush() != nil || nilT.Err() != nil {
		t.Fatal("nil tracer Flush/Err must be no-ops")
	}
	nilT.WithRecorder(nil)
	if nilT.Recorder() != nil {
		t.Fatal("nil tracer Recorder must be nil")
	}
}

// TestPhaseTree checks the attribution arithmetic: totals come from the
// histograms' sums, self is parent minus children clamped at zero, and the
// sat-path widening keeps solver time visible when fol never ran.
func TestPhaseTree(t *testing.T) {
	r := NewRegistry()
	r.Counter("search.wall_ns").Add(int64(10 * time.Millisecond))
	r.Histogram("concolic.exec.ns").Observe(int64(2 * time.Millisecond))
	r.Histogram("fol.prove.ns").Observe(int64(6 * time.Millisecond))
	r.Histogram("smt.solve.ns").Observe(int64(4 * time.Millisecond))
	r.Histogram("smt.sat.ns").Observe(int64(1 * time.Millisecond))
	r.Histogram("smt.lia.ns").Observe(int64(2 * time.Millisecond))
	root := PhaseTree(r)
	if root == nil || root.Name != "search" {
		t.Fatalf("root = %+v", root)
	}
	if root.Total != 10*time.Millisecond {
		t.Fatalf("root total = %v", root.Total)
	}
	if root.Self != 2*time.Millisecond { // 10 - (2 exec + 6 fol)
		t.Fatalf("root self = %v", root.Self)
	}
	fol := root.Children[1]
	if fol.Name != "fol" || fol.Self != 2*time.Millisecond { // 6 - 4 smt
		t.Fatalf("fol = %+v", fol)
	}
	smt := fol.Children[0]
	if smt.Self != 1*time.Millisecond { // 4 - (1 sat + 2 simplex + 0 euf)
		t.Fatalf("smt self = %v", smt.Self)
	}

	table := PhaseTable(r)
	for _, want := range []string{"search", "exec", "fol", "smt", "sat", "simplex", "% of search"} {
		if !strings.Contains(table, want) {
			t.Errorf("phase table missing %q:\n%s", want, table)
		}
	}

	// Sat path: solver time without fol time must not vanish into a clamp.
	r2 := NewRegistry()
	r2.Counter("search.wall_ns").Add(int64(5 * time.Millisecond))
	r2.Histogram("smt.solve.ns").Observe(int64(3 * time.Millisecond))
	root2 := PhaseTree(r2)
	fol2 := root2.Children[1]
	if fol2.Total != 3*time.Millisecond || fol2.Self != 0 {
		t.Fatalf("sat-path widening broken: fol = %+v", fol2)
	}

	if PhaseTree(NewRegistry()) != nil {
		t.Fatal("empty registry should yield no phase tree")
	}
	if PhaseTree(nil) != nil || PhaseTable(nil) != "" {
		t.Fatal("nil registry should yield no phase tree")
	}
}
