package obs

import (
	"fmt"
	"io"
	"strings"
)

// WriteOpenMetrics renders the registry in the OpenMetrics / Prometheus text
// exposition format, one family per metric, in deterministic (name-sorted)
// order:
//
//   - counters become "<name>_total" with "# TYPE <name> counter";
//   - gauges are exported verbatim with "# TYPE <name> gauge";
//   - histograms become summaries: quantile series at 0.5/0.9/0.99 (the
//     registry's log-scale buckets reconstruct them with ≤12.5% relative
//     error), plus "_sum" and "_count".
//
// Metric names are sanitized to the Prometheus charset: every character
// outside [a-zA-Z0-9_:] (the registry uses dots) maps to '_'. The stream ends
// with "# EOF" as OpenMetrics requires, so standard parsers (promtool,
// Prometheus itself) accept a scrape verbatim.
func WriteOpenMetrics(w io.Writer, r *Registry) error {
	for _, m := range r.Snapshot() {
		name := SanitizeMetricName(m.Name)
		var err error
		switch m.Kind {
		case "counter":
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s_total %d\n", name, name, m.Value)
		case "gauge":
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, m.Value)
		case "histogram":
			_, err = fmt.Fprintf(w,
				"# TYPE %s summary\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.9\"} %d\n%s{quantile=\"0.99\"} %d\n%s_sum %d\n%s_count %d\n",
				name, name, m.P50, name, m.P90, name, m.P99, name, m.Sum, name, m.Value)
		}
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// SanitizeMetricName maps a registry metric name onto the Prometheus name
// charset [a-zA-Z0-9_:], replacing every other character (the registry's '.'
// separators, most commonly) with '_'. A leading digit is prefixed with '_'.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
