package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every handle must be usable when observability is disabled.
	var o *Obs
	if o.Enabled() || o.Tracing() {
		t.Fatal("nil Obs reports enabled")
	}
	o.Counter("x").Add(5)
	o.Gauge("x").Set(5)
	o.Histogram("x").Observe(5)
	o.Emit(Event{Kind: "k"})
	if o.Counter("x").Value() != 0 || o.Gauge("x").Value() != 0 {
		t.Fatal("nil handles returned nonzero")
	}
	var h *Histogram
	h.Observe(1)
	if h.Snapshot().Count != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
	var tr *Tracer
	tr.Emit(Event{})
	if tr.Events() != nil || tr.Close() != nil {
		t.Fatal("nil tracer misbehaved")
	}
	var r *Registry
	if r.Snapshot() != nil || r.Get("x") != 0 {
		t.Fatal("nil registry misbehaved")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := r.Counter("a").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	r.Gauge("g").Set(7)
	r.Gauge("g").Set(3)
	if got := r.Gauge("g").Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	if r.Get("a") != 5 || r.Get("g") != 3 || r.Get("missing") != 0 {
		t.Fatal("Get lookups wrong")
	}
}

func TestBucketIndexMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 7, 8, 9, 15, 16, 100, 1000, 1 << 20, 1 << 40, 1<<62 + 12345, math.MaxInt64} {
		idx := bucketIndex(v)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = idx
		// The representative value must be within the bucket's relative
		// error bound (exact below 8, ≤ 12.5% above).
		mid := bucketMid(idx)
		if v < 8 && mid != v {
			t.Fatalf("small value %d not exact (mid %d)", v, mid)
		}
		if v >= 8 {
			rel := math.Abs(float64(mid-v)) / float64(v)
			if rel > 0.125 {
				t.Fatalf("bucketMid(%d)=%d relative error %.3f for value %d", idx, mid, rel, v)
			}
		}
	}
	if bucketIndex(-5) != 0 {
		t.Fatal("negative values must clamp to bucket 0")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", s.Count, s.Min, s.Max)
	}
	if s.Sum != 1000*1001/2 {
		t.Fatalf("sum = %d", s.Sum)
	}
	check := func(name string, got, want int64) {
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 0.15 {
			t.Errorf("%s = %d, want ≈%d (rel err %.3f)", name, got, want, rel)
		}
	}
	check("p50", s.P50, 500)
	check("p90", s.P90, 900)
	check("p99", s.P99, 990)
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Fatal("percentiles not monotone")
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := &Histogram{}
	h.Observe(123456)
	s := h.Snapshot()
	if s.P50 != 123456 || s.P99 != 123456 || s.Min != 123456 || s.Max != 123456 {
		t.Fatalf("single observation must report exactly: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 10000; i++ {
				h.Observe(i + int64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 80000 {
		t.Fatalf("lost observations: %d", got)
	}
}

func TestRegistrySnapshotSortedAndProfile(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Inc()
	r.Counter("a.first").Add(2)
	r.Gauge("m.middle").Set(9)
	r.Histogram("lat.ns").Observe(1500)
	snap := r.Snapshot()
	var names []string
	for _, m := range snap {
		names = append(names, m.Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("snapshot not sorted: %v", names)
		}
	}
	table := r.ProfileTable()
	for _, want := range []string{"a.first", "m.middle", "lat.ns", "p99"} {
		if !strings.Contains(table, want) {
			t.Errorf("profile table missing %q:\n%s", want, table)
		}
	}
	// .ns metrics render as durations.
	if !strings.Contains(table, "µs") && !strings.Contains(table, "ms") {
		t.Errorf("latency metric not formatted as duration:\n%s", table)
	}
}

func TestTracerJSONLAndCanonical(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf).Keep()
	tr.Emit(Event{Kind: "alpha", Worker: 2, Num: map[string]int64{"x": 1}})
	tr.Emit(Event{Kind: "beta", Str: map[string]string{"s": "v"}})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSONL lines, got %d", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if ev.Seq != 1 || ev.Kind != "alpha" || ev.Worker != 2 || ev.Num["x"] != 1 {
		t.Fatalf("decoded event wrong: %+v", ev)
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[1].Seq != 2 {
		t.Fatalf("retained events wrong: %+v", evs)
	}
	// Canonical strips exactly the scheduling fields.
	a := Event{Seq: 1, Kind: "k", TS: 5, Dur: 9, Worker: 3, Num: map[string]int64{"n": 2}}
	b := Event{Seq: 1, Kind: "k", TS: 77, Dur: 1, Worker: 0, Num: map[string]int64{"n": 2}}
	if a.Canonical() != b.Canonical() {
		t.Fatalf("canonical should ignore ts/dur/worker:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	c := Event{Seq: 1, Kind: "k", Num: map[string]int64{"n": 3}}
	if a.Canonical() == c.Canonical() {
		t.Fatal("canonical must keep attributes")
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: "run_start", Worker: -1, TS: 0},
		{Seq: 2, Kind: "exec_task", Worker: 0, TS: 1000, Dur: 500, Num: map[string]int64{"run": 1}},
		{Seq: 3, Kind: "exec_task", Worker: 1, TS: 1200, Dur: 700},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 3 events + 3 thread_name metadata records (coordinator, worker 0, 1).
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("want 6 trace events, got %d", len(doc.TraceEvents))
	}
	var sliceUS float64
	names := map[string]bool{}
	for _, ce := range doc.TraceEvents {
		if ce.Phase == "M" {
			names[ce.Args["name"].(string)] = true
		}
		if ce.Phase == "X" && ce.Name == "exec_task" && ce.TID == 1 {
			sliceUS = ce.Dur
		}
	}
	for _, want := range []string{"coordinator", "worker 0", "worker 1"} {
		if !names[want] {
			t.Errorf("missing track %q (have %v)", want, names)
		}
	}
	if sliceUS != 0.5 { // 500ns = 0.5µs
		t.Errorf("duration not converted to microseconds: %v", sliceUS)
	}
}
