package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// FlightRecorder is a bounded ring buffer of the most recent trace events —
// the "black box" of a running campaign. It exists for live introspection:
// the HTTP /events endpoint tails it, and a dump of the ring is what an
// operator (or CI) grabs when a long campaign misbehaves.
//
// Writes happen on the emitting goroutine (in the search, the coordinator);
// reads are lock-free: each slot is an atomic pointer and the write cursor is
// an atomic counter, so Snapshot never blocks the writer and a concurrent
// overwrite yields a different complete event, never a torn one. Snapshot
// therefore returns a best-effort window — every returned event is valid and
// the result is sorted by sequence number, but events overwritten mid-scan
// are simply absent.
type FlightRecorder struct {
	slots []atomic.Pointer[Event]
	next  atomic.Int64 // total events appended (cursor)

	// Subscriptions for live tailing. hasSubs lets Record skip the lock on
	// the (overwhelmingly common) no-subscriber path.
	hasSubs atomic.Bool
	mu      sync.Mutex
	subs    map[int]*subscriber
	nextSub int
}

type subscriber struct {
	ch      chan Event
	dropped atomic.Int64
}

// DefaultFlightRecorderSize is the ring capacity used by the CLI wiring:
// large enough to hold the interesting tail of a campaign, small enough that
// the recorder is always-on without a memory budget conversation.
const DefaultFlightRecorderSize = 4096

// NewFlightRecorder returns a recorder retaining the last capacity events
// (minimum 1).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[Event], capacity)}
}

// Cap returns the ring capacity.
func (r *FlightRecorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Total returns how many events have ever been recorded (not just retained).
func (r *FlightRecorder) Total() int64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Record appends one event to the ring, overwriting the oldest, and forwards
// it to every live subscriber (non-blocking: a subscriber that cannot keep up
// loses events and has them counted, it never stalls the recorder).
func (r *FlightRecorder) Record(ev Event) {
	if r == nil {
		return
	}
	n := r.next.Load()
	r.slots[n%int64(len(r.slots))].Store(&ev)
	r.next.Store(n + 1)
	if !r.hasSubs.Load() {
		return
	}
	r.mu.Lock()
	for _, s := range r.subs {
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
		}
	}
	r.mu.Unlock()
}

// Snapshot returns the retained events, oldest first. The read takes no locks
// (see the type comment for the consistency model).
func (r *FlightRecorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	n := r.next.Load()
	capN := int64(len(r.slots))
	start := n - capN
	if start < 0 {
		start = 0
	}
	out := make([]Event, 0, n-start)
	for i := start; i < n; i++ {
		if p := r.slots[i%capN].Load(); p != nil {
			out = append(out, *p)
		}
	}
	// A writer racing the scan can leave a newer event in an "older" slot;
	// restore sequence order and drop duplicates so the dump is always a
	// clean ascending stream.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	dedup := out[:0]
	for _, ev := range out {
		if len(dedup) == 0 || dedup[len(dedup)-1].Seq != ev.Seq {
			dedup = append(dedup, ev)
		}
	}
	return dedup
}

// Subscribe registers a live tail: every event recorded after the call is
// delivered on the returned channel (buffered to buf, minimum 1). The cancel
// function unregisters and closes the channel; it is safe to call twice. The
// second return is a drop counter — events the subscriber was too slow to
// receive.
func (r *FlightRecorder) Subscribe(buf int) (<-chan Event, func() int64) {
	if buf < 1 {
		buf = 1
	}
	s := &subscriber{ch: make(chan Event, buf)}
	r.mu.Lock()
	if r.subs == nil {
		r.subs = make(map[int]*subscriber)
	}
	id := r.nextSub
	r.nextSub++
	r.subs[id] = s
	r.hasSubs.Store(true)
	r.mu.Unlock()
	var once sync.Once
	cancel := func() int64 {
		once.Do(func() {
			r.mu.Lock()
			delete(r.subs, id)
			r.hasSubs.Store(len(r.subs) > 0)
			r.mu.Unlock()
			close(s.ch)
		})
		return s.dropped.Load()
	}
	return s.ch, cancel
}
