package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteChromeTraceEmpty checks the exporter on an empty event list: the
// output must still be a complete, parseable trace envelope (Perfetto rejects
// truncated JSON), with no tracks.
func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 0 {
		t.Fatalf("empty event list produced %d trace events", len(out.TraceEvents))
	}
}

// TestWriteChromeTraceCoordinatorOnly checks the worker -1 mapping: all events
// land on tid 0 and the single thread-name metadata row says "coordinator".
func TestWriteChromeTraceCoordinatorOnly(t *testing.T) {
	events := []Event{
		{Seq: 1, Kind: "run_start", TS: 0, Worker: -1},
		{Seq: 2, Kind: "checkpoint", TS: 5000, Dur: 2000, Worker: -1, Num: map[string]int64{"runs": 3}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var threadNames []string
	for _, ce := range out.TraceEvents {
		if ce.TID != 0 {
			t.Errorf("coordinator event %q on tid %d, want 0", ce.Name, ce.TID)
		}
		if ce.Phase == "M" {
			if name, _ := ce.Args["name"].(string); name != "" {
				threadNames = append(threadNames, name)
			}
		}
	}
	if len(threadNames) != 1 || threadNames[0] != "coordinator" {
		t.Fatalf("thread names = %v, want exactly [coordinator]", threadNames)
	}
}

// TestProfileTableZeroCountHistogram checks that a registered-but-never-
// observed histogram renders without dividing by zero and reports count 0.
func TestProfileTableZeroCountHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("cold.path.ns") // registered, zero observations
	r.Counter("runs").Add(2)
	table := r.ProfileTable()
	var row string
	for _, ln := range strings.Split(table, "\n") {
		if strings.HasPrefix(ln, "cold.path.ns") {
			row = ln
		}
	}
	if row == "" {
		t.Fatalf("zero-count histogram missing from table:\n%s", table)
	}
	fields := strings.Fields(row)
	// name kind count mean p50 p90 p99
	if len(fields) != 7 || fields[2] != "0" {
		t.Fatalf("unexpected zero-count row %q", row)
	}
	for _, f := range fields[3:] {
		if f != "0ns" {
			t.Errorf("zero-count histogram column = %q, want 0ns", f)
		}
	}
}

// TestQuantileSingleBucket checks quantile reconstruction when every
// observation lands in one bucket: all quantiles must clamp to the exact
// observed value, not a bucket midpoint.
func TestQuantileSingleBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(1500)
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 1500 {
			t.Errorf("Quantile(%v) = %d, want 1500", q, got)
		}
	}
	s := h.Snapshot()
	if s.Count != 10 || s.Min != 1500 || s.Max != 1500 || s.P50 != 1500 || s.P99 != 1500 {
		t.Fatalf("single-bucket snapshot: %+v", s)
	}

	// Single observation is the degenerate single-bucket case.
	var one Histogram
	one.Observe(7)
	if got := one.Quantile(0.5); got != 7 {
		t.Errorf("single-observation Quantile(0.5) = %d, want 7", got)
	}
	// And zero observations must not panic or invent values.
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %d, want 0", got)
	}
}
