package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numBuckets covers the full non-negative int64 range: values 0..7 get exact
// buckets, and every power-of-two octave above is split into 4 sub-buckets
// (two significant bits), bounding the relative quantile error at ~12.5%.
// The largest index is bucketIndex(MaxInt64) = 4*63+3-8 = 247.
const numBuckets = 248

// Histogram is a lock-free log-scale histogram for latencies and sizes.
// Observations are atomic per-bucket increments, safe under the search worker
// pool; quantiles are reconstructed from the buckets at snapshot time. The
// nil *Histogram is a valid no-op handle.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // stored as observed+1 so the zero value means "none"
	max     atomic.Int64 // stored as observed+1
	buckets [numBuckets]atomic.Int64
}

// bucketIndex maps a non-negative value to its bucket. Negative values clamp
// to bucket 0.
func bucketIndex(v int64) int {
	if v < 8 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v))               // ≥ 4
	sub := int((uint64(v) >> uint(exp-3)) & 3) // the two bits below the leading one
	return 4*exp + sub - 8
}

// bucketMid returns a representative (midpoint) value for a bucket, used when
// reconstructing quantiles.
func bucketMid(idx int) int64 {
	if idx < 8 {
		return int64(idx)
	}
	exp := (idx + 8) / 4
	sub := (idx + 8) % 4
	width := int64(1) << uint(exp-3)
	lo := int64(4+sub) << uint(exp-3)
	return lo + width/2
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.min.Load()
		if cur != 0 && cur-1 <= v {
			break
		}
		if h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur != 0 && cur-1 >= v {
			break
		}
		if h.max.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// ObserveDuration is Observe for a time.Duration expressed in nanoseconds.
func (h *Histogram) ObserveDuration(ns int64) { h.Observe(ns) }

// HistSnapshot is a consistent-enough point-in-time view of a histogram.
type HistSnapshot struct {
	Count, Sum, Min, Max int64
	P50, P90, P99        int64
}

// Snapshot computes the distribution summary. Concurrent Observe calls may
// skew a snapshot by a few in-flight observations; end-of-run reporting reads
// a quiesced histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var s HistSnapshot
	var counts [numBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		s.Count += counts[i]
	}
	s.Sum = h.sum.Load()
	if mn := h.min.Load(); mn != 0 {
		s.Min = mn - 1
	}
	if mx := h.max.Load(); mx != 0 {
		s.Max = mx - 1
	}
	s.P50 = quantile(&counts, s.Count, 0.50, s.Min, s.Max)
	s.P90 = quantile(&counts, s.Count, 0.90, s.Min, s.Max)
	s.P99 = quantile(&counts, s.Count, 0.99, s.Min, s.Max)
	return s
}

// Quantile returns the q-th quantile (q in [0,1]) reconstructed from the
// bucket midpoints.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	var counts [numBuckets]int64
	total := int64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	var mn, mx int64
	if v := h.min.Load(); v != 0 {
		mn = v - 1
	}
	if v := h.max.Load(); v != 0 {
		mx = v - 1
	}
	return quantile(&counts, total, q, mn, mx)
}

// quantile walks the buckets to the target rank. The estimate is clamped to
// the observed [min, max] so single-observation histograms report exactly.
func quantile(counts *[numBuckets]int64, total int64, q float64, min, max int64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	seen := int64(0)
	for i := 0; i < numBuckets; i++ {
		seen += counts[i]
		if seen >= rank {
			v := bucketMid(i)
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
	}
	return max
}
