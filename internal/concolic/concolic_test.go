package concolic

import (
	"math/rand"
	"testing"

	"hotg/internal/mini"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// testHash is a deterministic, hard-to-invert function used as the "unknown"
// hash of the paper's examples.
func testHash(a []int64) int64 {
	x := uint64(a[0]) * 2654435761
	x ^= x >> 13
	x *= 2246822519
	x ^= x >> 16
	return int64(x % 1000)
}

func natives() mini.Natives {
	ns := mini.Natives{}
	ns.Register("hash", 1, testHash)
	return ns
}

func prog(t testing.TB, src string) *mini.Program {
	t.Helper()
	p, err := mini.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := mini.Check(p, natives()); err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

const fooSrc = `
fn main(x int, y int) {
	if (x == hash(y)) {
		if (y == 10) {
			error("deep");
		}
	}
}`

const obscureSrc = `
fn main(x int, y int) int {
	if (x == hash(y)) {
		error("obscure");
	}
	return 0;
}`

// TestUnsoundFooPC reproduces Section 3.2: with unsound concretization the
// path constraint of foo on (hash(42), 42) is x = 567 ∧ y ≠ 10 — no record
// of the concretization, hence unsound.
func TestUnsoundFooPC(t *testing.T) {
	p := prog(t, fooSrc)
	e := New(p, ModeUnsound)
	h42 := testHash([]int64{42})
	ex := e.Run([]int64{h42, 42})

	if len(ex.PC) != 2 {
		t.Fatalf("pc = %v", ex.PC)
	}
	x, y := e.InputVars[0], e.InputVars[1]
	wantFirst := sym.Eq(sym.VarTerm(x), sym.Int(h42))
	if ex.PC[0].Expr.Key() != wantFirst.Key() {
		t.Fatalf("pc[0] = %v, want %v", ex.PC[0].Expr, wantFirst)
	}
	wantSecond := sym.Ne(sym.VarTerm(y), sym.Int(10))
	if ex.PC[1].Expr.Key() != wantSecond.Key() {
		t.Fatalf("pc[1] = %v, want %v", ex.PC[1].Expr, wantSecond)
	}
	if ex.PC[0].IsConcretization || ex.PC[1].IsConcretization {
		t.Fatal("unsound mode must not emit concretization constraints")
	}
	if ex.Concretizations != 1 {
		t.Fatalf("Concretizations = %d", ex.Concretizations)
	}
	if ex.Incomplete {
		t.Fatal("unsound mode should not set Incomplete")
	}

	// The unsoundness in action: (x=567, y=7) satisfies the pc but follows a
	// different path (hash(7) ≠ 567): a potential divergence.
	env := sym.Env{Vars: map[int]int64{x.ID: h42, y.ID: 7}}
	ok, err := sym.EvalBool(ex.Formula(), env)
	if err != nil || !ok {
		t.Fatalf("pc should be satisfied by the divergent input: %v %v", ok, err)
	}
	div := e.Run([]int64{h42, 7})
	if div.Result.Path() == ex.Result.Path() {
		t.Fatal("expected a divergence (different path)")
	}
}

// TestSoundFooPC reproduces Example 1: sound concretization produces
// y = 42 ∧ x = 567 ∧ y ≠ 10, whose ALT is unsatisfiable.
func TestSoundFooPC(t *testing.T) {
	p := prog(t, fooSrc)
	e := New(p, ModeSound)
	h42 := testHash([]int64{42})
	ex := e.Run([]int64{h42, 42})

	if len(ex.PC) != 3 {
		t.Fatalf("pc = %v", ex.PC)
	}
	if !ex.PC[0].IsConcretization {
		t.Fatalf("pc[0] should be the concretization constraint, got %v", ex.PC[0])
	}
	y := e.InputVars[1]
	wantPin := sym.Eq(sym.VarTerm(y), sym.Int(42))
	if ex.PC[0].Expr.Key() != wantPin.Key() {
		t.Fatalf("pc[0] = %v, want %v", ex.PC[0].Expr, wantPin)
	}

	// ALT of the last constraint: y=42 ∧ x=567 ∧ y=10 is unsatisfiable.
	alt := ex.Alt(2)
	st, _ := smt.Solve(alt, smt.Options{})
	if st != smt.StatusUnsat {
		t.Fatalf("ALT should be unsat, got %v", st)
	}
}

// TestHigherOrderFooPC reproduces Section 4.1: the path constraint is
// x = h(y) ∧ y ≠ 10 and the sample (567, h(42)) is recorded.
func TestHigherOrderFooPC(t *testing.T) {
	p := prog(t, fooSrc)
	e := New(p, ModeHigherOrder)
	h42 := testHash([]int64{42})
	ex := e.Run([]int64{h42, 42})

	if len(ex.PC) != 2 {
		t.Fatalf("pc = %v", ex.PC)
	}
	x, y := e.InputVars[0], e.InputVars[1]
	h := e.FuncFor("hash")
	want := sym.Eq(sym.VarTerm(x), sym.ApplyTerm(h, sym.VarTerm(y)))
	if ex.PC[0].Expr.Key() != want.Key() {
		t.Fatalf("pc[0] = %v, want %v", ex.PC[0].Expr, want)
	}
	if ex.UFApps != 1 {
		t.Fatalf("UFApps = %d", ex.UFApps)
	}
	out, ok := e.Samples.Lookup(h, []int64{42})
	if !ok || out != h42 {
		t.Fatalf("sample h(42): %d %v", out, ok)
	}
	if ex.NewSamples != 1 {
		t.Fatalf("NewSamples = %d", ex.NewSamples)
	}
	_ = y
}

// TestStaticObscure reproduces the introduction: static test generation is
// helpless on obscure() — no constraint can be generated for either branch.
func TestStaticObscure(t *testing.T) {
	p := prog(t, obscureSrc)
	e := New(p, ModeStatic)
	ex := e.Run([]int64{33, 42})
	if !ex.Incomplete {
		t.Fatal("static mode should flag incompleteness")
	}
	if len(ex.PC) != 0 {
		t.Fatalf("static pc should be empty, got %v", ex.PC)
	}
}

// TestDelayedConcretization reproduces the final remark of Section 3.3:
// for `x := hash(y); if (y == 10) ...`, delayed injection leaves y free.
func TestDelayedConcretization(t *testing.T) {
	src := `
fn main(y int) {
	var x = hash(y);
	if (y == 10) {
		error("e");
	}
}`
	p := prog(t, src)

	// Plain sound concretization pins y at the hash call.
	eSound := New(p, ModeSound)
	exS := eSound.Run([]int64{42})
	if len(exS.PC) != 2 || !exS.PC[0].IsConcretization {
		t.Fatalf("sound pc = %v", exS.PC)
	}
	if st, _ := smt.Solve(exS.Alt(1), smt.Options{}); st != smt.StatusUnsat {
		t.Fatal("sound mode should not be able to flip y==10")
	}

	// Delayed concretization: x is never used, so no pin is injected.
	eDel := New(p, ModeSoundDelayed)
	exD := eDel.Run([]int64{42})
	if len(exD.PC) != 1 || exD.PC[0].IsConcretization {
		t.Fatalf("delayed pc = %v", exD.PC)
	}
	st, m := smt.Solve(exD.Alt(0), smt.Options{})
	if st != smt.StatusSat {
		t.Fatal("delayed mode should be able to flip y==10")
	}
	if m.Vars[eDel.InputVars[0].ID] != 10 {
		t.Fatalf("model = %v", m)
	}
}

// TestDelayedPinOnUse checks that the delayed pin does fire once the
// concretized value reaches a branch.
func TestDelayedPinOnUse(t *testing.T) {
	src := `
fn main(y int) {
	var x = hash(y);
	if (x > 0) {
		error("e");
	}
}`
	p := prog(t, src)
	e := New(p, ModeSoundDelayed)
	ex := e.Run([]int64{42})
	// The pin y=42 is injected when hash(y)'s value reaches the branch; the
	// residual constraint (a comparison between constants) folds away.
	if len(ex.PC) != 1 || !ex.PC[0].IsConcretization {
		t.Fatalf("pc = %v", ex.PC)
	}
	y := e.InputVars[0]
	want := sym.Eq(sym.VarTerm(y), sym.Int(42))
	if ex.PC[0].Expr.Key() != want.Key() {
		t.Fatalf("pc[0] = %v, want %v", ex.PC[0].Expr, want)
	}
}

// TestMulDivUF checks that nonlinear operations become uninterpreted
// functions with samples in higher-order mode (footnote 3).
func TestMulDivUF(t *testing.T) {
	src := `
fn main(x int, y int) {
	if (x * y == 12) {
		error("e");
	}
	if (x / 2 == 3) {
		error("f");
	}
}`
	p := prog(t, src)
	e := New(p, ModeHigherOrder)
	ex := e.Run([]int64{3, 4})
	if ex.Result.Kind != mini.StopError || ex.Result.ErrorMsg != "e" {
		t.Fatalf("result = %+v", ex.Result)
	}
	if len(ex.PC) != 1 {
		t.Fatalf("pc = %v", ex.PC)
	}
	mul := e.opFunc("$mul", 2)
	if v, ok := e.Samples.Lookup(mul, []int64{3, 4}); !ok || v != 12 {
		t.Fatalf("$mul sample: %d %v", v, ok)
	}

	ex2 := e.Run([]int64{7, 1})
	if len(ex2.PC) != 2 {
		t.Fatalf("pc = %v", ex2.PC)
	}
	div := e.opFunc("$div", 2)
	if v, ok := e.Samples.Lookup(div, []int64{7, 2}); !ok || v != 3 {
		t.Fatalf("$div sample: %d %v", v, ok)
	}
	if ex2.Result.Kind != mini.StopError || ex2.Result.ErrorMsg != "f" {
		t.Fatalf("result = %+v", ex2.Result)
	}
}

// TestSymbolicArrayIndex checks sound index concretization.
func TestSymbolicArrayIndex(t *testing.T) {
	src := `
fn main(i int, v int) {
	var a [4];
	a[1] = v;
	if (a[i] == 5) {
		error("e");
	}
}`
	p := prog(t, src)

	e := New(p, ModeSound)
	ex := e.Run([]int64{1, 5})
	// Expect: pin i=1 (symbolic index), then constraint v = 5.
	if len(ex.PC) != 2 || !ex.PC[0].IsConcretization {
		t.Fatalf("pc = %v", ex.PC)
	}
	vVar := e.InputVars[1]
	want := sym.Eq(sym.VarTerm(vVar), sym.Int(5))
	if ex.PC[1].Expr.Key() != want.Key() {
		t.Fatalf("pc[1] = %v, want %v", ex.PC[1].Expr, want)
	}

	// Unsound mode skips the pin: flipping i is then possible but divergent.
	eU := New(p, ModeUnsound)
	exU := eU.Run([]int64{1, 5})
	if len(exU.PC) != 1 || exU.PC[0].IsConcretization {
		t.Fatalf("unsound pc = %v", exU.PC)
	}
}

// TestShortCircuitConstraints checks that && and || contribute their own
// branch events and per-operand constraints.
func TestShortCircuitConstraints(t *testing.T) {
	src := `
fn main(x int, y int) {
	if (x > 0 && y > 0) {
		error("both");
	}
}`
	p := prog(t, fooSrc)
	_ = p
	p = prog(t, src)
	e := New(p, ModeSound)

	// Left decides: only the constraint on x is recorded.
	ex := e.Run([]int64{-1, 5})
	if len(ex.PC) != 1 {
		t.Fatalf("pc = %v", ex.PC)
	}
	if len(ex.Result.Branches) != 2 { // && event + if event
		t.Fatalf("branches = %v", ex.Result.Branches)
	}

	// Both evaluated: constraints on x and y, and the if-event constraint
	// folds away (the condition value equals the right operand).
	ex = e.Run([]int64{1, 5})
	if len(ex.PC) != 2 {
		t.Fatalf("pc = %v", ex.PC)
	}
	if ex.Result.Kind != mini.StopError {
		t.Fatalf("result = %+v", ex.Result)
	}
}

// TestEngineAgreesWithInterp is the semantic-equivalence property test: on
// random programs and inputs, the concolic engine's concrete half must agree
// exactly with the reference interpreter (result kind, return value, error
// site, and full branch trace), in every mode.
func TestEngineAgreesWithInterp(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	modes := []Mode{ModeStatic, ModeUnsound, ModeSound, ModeSoundDelayed, ModeHigherOrder}
	for iter := 0; iter < 120; iter++ {
		src := mini.GenProgram(r, mini.GenConfig{Natives: []string{"hash"}})
		p, err := mini.Parse(src)
		if err != nil {
			t.Fatalf("generated program failed to parse: %v\n%s", err, src)
		}
		if err := mini.Check(p, natives()); err != nil {
			t.Fatalf("generated program failed to check: %v\n%s", err, src)
		}
		input := []int64{int64(r.Intn(41) - 20), int64(r.Intn(41) - 20), int64(r.Intn(41) - 20)}
		ref := mini.Run(p, input, mini.RunOptions{})
		for _, mode := range modes {
			e := New(p, mode)
			ex := e.Run(input)
			got := ex.Result
			if got.Kind != ref.Kind || got.Return != ref.Return ||
				got.ErrorSite != ref.ErrorSite || got.Path() != ref.Path() {
				t.Fatalf("iter %d mode %v: engine %+v vs interp %+v\ninput %v\n%s",
					iter, mode, got, ref, input, src)
			}
		}
	}
}

// TestTheorem2Soundness checks Theorem 2 (and Theorem 3 for higher-order
// mode): every input assignment satisfying a sound path constraint follows
// the same execution path. Models of the pc are found by the SMT solver
// (sound/delayed modes) and by evaluation-filtered random mutation
// (higher-order mode, where the real native interpretation must be used).
func TestTheorem2Soundness(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for iter := 0; iter < 60; iter++ {
		src := mini.GenProgram(r, mini.GenConfig{Natives: []string{"hash"}})
		p, err := mini.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := mini.Check(p, natives()); err != nil {
			t.Fatal(err)
		}
		input := []int64{int64(r.Intn(21) - 10), int64(r.Intn(21) - 10), int64(r.Intn(21) - 10)}

		for _, mode := range []Mode{ModeSound, ModeSoundDelayed} {
			e := New(p, mode)
			ex := e.Run(input)
			if ex.Result.Kind == mini.StopRuntime {
				continue
			}
			// Ask the solver for a model of the full pc different from the
			// original input if possible.
			st, m := smt.Solve(ex.Formula(), smt.Options{Pool: e.Pool})
			if st != smt.StatusSat {
				t.Fatalf("iter %d mode %v: pc of the executed path must be satisfiable\npc=%v", iter, mode, ex.PC)
			}
			in2 := modelInput(e, m, input)
			ex2 := e.Run(in2)
			if ex2.Result.Path() != ex.Result.Path() {
				t.Fatalf("iter %d mode %v: unsound pc!\ninput=%v model=%v\npc=%v\npath %q vs %q\n%s",
					iter, mode, input, in2, ex.PC, ex.Result.Path(), ex2.Result.Path(), src)
			}
		}

		// Higher-order mode: filter random mutations through the pc
		// evaluated with the real native interpretation.
		e := New(p, ModeHigherOrder)
		ex := e.Run(input)
		if ex.Result.Kind == mini.StopRuntime {
			continue
		}
		f := ex.Formula()
		for trial := 0; trial < 30; trial++ {
			in2 := make([]int64, len(input))
			copy(in2, input)
			for k := range in2 {
				if r.Intn(2) == 0 {
					in2[k] = int64(r.Intn(21) - 10)
				}
			}
			env := sym.Env{Vars: map[int]int64{}, Fn: func(fn *sym.Func, args []int64) (int64, bool) {
				return e.NativeEval(fn.Name, args)
			}}
			for i, v := range e.InputVars {
				env.Vars[v.ID] = in2[i]
			}
			holds, err := sym.EvalBool(f, env)
			if err != nil || !holds {
				continue
			}
			ex2 := e.Run(in2)
			if ex2.Result.Path() != ex.Result.Path() {
				t.Fatalf("iter %d higher-order: unsound pc!\ninput=%v mutant=%v\npc=%v\n%s",
					iter, input, in2, ex.PC, src)
			}
		}
	}
}

func modelInput(e *Engine, m *smt.Model, fallback []int64) []int64 {
	out := make([]int64, len(e.InputVars))
	for i, v := range e.InputVars {
		if val, ok := m.Vars[v.ID]; ok {
			out[i] = val
		} else {
			out[i] = fallback[i]
		}
	}
	return out
}

// TestAltAndExpectedTrace checks the ALT construction and trace prediction.
func TestAltAndExpectedTrace(t *testing.T) {
	src := `
fn main(x int) {
	if (x > 0) {
		if (x > 10) {
			error("big");
		}
	}
}`
	p := prog(t, src)
	e := New(p, ModeSound)
	ex := e.Run([]int64{5}) // path: taken, not-taken

	alt := ex.Alt(1) // flip x>10
	st, m := smt.Solve(alt, smt.Options{})
	if st != smt.StatusSat {
		t.Fatalf("alt: %v", st)
	}
	in2 := modelInput(e, m, []int64{5})
	ex2 := e.Run(in2)
	if ex2.Result.Kind != mini.StopError {
		t.Fatalf("flipping should reach the bug, got %+v", ex2.Result)
	}
	exp := ex.ExpectedTrace(1)
	if len(exp) != 2 || !exp[0].Taken || !exp[1].Taken {
		t.Fatalf("expected trace = %v", exp)
	}
	got := ex2.Result.Branches[:len(exp)]
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("trace mismatch at %d: %v vs %v", i, got[i], exp[i])
		}
	}
}

func TestAltPanicsOnConcretization(t *testing.T) {
	p := prog(t, fooSrc)
	e := New(p, ModeSound)
	ex := e.Run([]int64{testHash([]int64{42}), 42})
	defer func() {
		if recover() == nil {
			t.Fatal("Alt on a concretization constraint should panic")
		}
	}()
	ex.Alt(0)
}

// TestSamplePersistence checks that the IOF store accumulates across runs.
func TestSamplePersistence(t *testing.T) {
	p := prog(t, obscureSrc)
	e := New(p, ModeHigherOrder)
	e.Run([]int64{1, 10})
	e.Run([]int64{1, 20})
	e.Run([]int64{1, 10}) // duplicate: no new sample
	h := e.FuncFor("hash")
	if got := len(e.Samples.ForFunc(h)); got != 2 {
		t.Fatalf("samples = %d, want 2", got)
	}
}

// TestModeString covers diagnostics.
func TestModeString(t *testing.T) {
	names := map[Mode]string{
		ModeStatic: "static", ModeUnsound: "dart-unsound", ModeSound: "dart-sound",
		ModeSoundDelayed: "dart-sound-delayed", ModeHigherOrder: "higher-order",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%v", m)
		}
	}
}
