package concolic

import (
	"fmt"
	"time"

	"hotg/internal/faults"
	"hotg/internal/mini"
	"hotg/internal/sym"
)

// sval is a symbolic value: an integer term, a boolean formula, or ⊥
// (bottom: statically unknown, ModeStatic only). pending carries the input
// variables whose concretization constraints were delayed (ModeSoundDelayed)
// and must be injected before this value is used in a path constraint.
type sval struct {
	sum     *sym.Sum
	b       sym.Expr
	bottom  bool
	pending []int
}

func intS(s *sym.Sum, pending []int) sval  { return sval{sum: s, pending: pending} }
func boolS(b sym.Expr, pending []int) sval { return sval{b: b, pending: pending} }
func bottomS() sval                        { return sval{bottom: true} }

func mergePending(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]int, len(a), len(a)+len(b))
	copy(out, a)
	for _, id := range b {
		dup := false
		for _, have := range out {
			if have == id {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, id)
		}
	}
	return out
}

// cell is one array element in the symbolic store.
type cell struct {
	sum     *sym.Sum
	pending []int
	bottom  bool
}

// arrayObj is the concrete+symbolic contents of one array, shared by
// reference like a Go slice.
type arrayObj struct {
	con   []int64
	cells []cell
}

// slot is one variable binding: concrete value (M) and symbolic value (S)
// side by side, as in Section 2 of the paper. Function-typed slots carry the
// concrete decision table and the callback's uninterpreted symbol; both
// travel by reference through user calls, so a callback keeps its identity
// under parameter renaming.
type slot struct {
	kind  mini.TypeKind
	i     int64
	b     bool
	arr   *arrayObj
	fn    *mini.FuncValue
	fnSym *sym.Func
	s     sval
}

type frame map[string]*slot

type runtimeFault struct{ msg string }

func (f runtimeFault) Error() string { return f.msg }

// runCanceled aborts a run when Engine.CheckCancel fires; unlike a
// runtimeFault it records no bug — the execution is simply marked Canceled.
type runCanceled struct{}

func (runCanceled) Error() string { return "execution canceled" }

type errorReached struct {
	site int
	msg  string
}

func (errorReached) Error() string { return "error site reached" }

type retval struct {
	i int64
	s sval
}

type runner struct {
	e        *Engine
	ex       *Execution
	res      *mini.Result
	steps    int
	depth    int
	pinned   map[int]bool
	inputVal map[int]int64 // input var ID → concrete value this run
	varByID  map[int]*sym.Var
}

// Run executes the program on the flattened input vector with every
// function-valued input left at the default function; see RunWith.
func (e *Engine) Run(input []int64) *Execution { return e.RunWith(input, nil) }

// RunWith executes the program on the flattened input vector and the given
// function-valued inputs (aligned with FuncShape; missing or nil entries run
// as the default function), producing the concrete result, the path
// constraint, and (in ModeHigherOrder) new samples. Callback applications
// are recorded into the per-execution CallbackSamples store, never the
// engine's persistent one — each test supplies its own function, so callback
// samples have no cross-run ground truth.
func (e *Engine) RunWith(input []int64, funcs []*mini.FuncValue) *Execution {
	if faults.Active().FireExecPanic() {
		panic("faults: injected executor failure")
	}
	if len(input) != len(e.InputVars) {
		panic(fmt.Sprintf("concolic: input length %d, want %d", len(input), len(e.InputVars)))
	}
	var t0 time.Time
	if e.Obs.Enabled() {
		t0 = time.Now()
	}
	r := &runner{
		e:        e,
		res:      &mini.Result{},
		pinned:   make(map[int]bool),
		inputVal: make(map[int]int64, len(input)),
		varByID:  make(map[int]*sym.Var, len(input)),
	}
	in := make([]int64, len(input))
	copy(in, input)
	r.ex = &Execution{Input: in, Funcs: funcs, Result: r.res}
	if len(e.funcShape) > 0 {
		r.ex.CallbackSamples = sym.NewSampleStore()
	}
	for i, v := range e.InputVars {
		r.inputVal[v.ID] = input[i]
		r.varByID[v.ID] = v
	}

	main := e.Prog.Main()
	fr := frame{}
	k := 0
	fnIdx := 0
	for _, prm := range main.Params {
		switch prm.Type.Kind {
		case mini.TArray:
			obj := &arrayObj{con: make([]int64, prm.Type.Len), cells: make([]cell, prm.Type.Len)}
			for i := 0; i < prm.Type.Len; i++ {
				obj.con[i] = input[k]
				obj.cells[i] = cell{sum: sym.VarTerm(e.InputVars[k])}
				k++
			}
			fr[prm.Name] = &slot{kind: mini.TArray, arr: obj}
		case mini.TFunc:
			var fv *mini.FuncValue // nil = default function
			if fnIdx < len(funcs) {
				fv = funcs[fnIdx]
			}
			fr[prm.Name] = &slot{kind: mini.TFunc, fn: fv, fnSym: e.CallbackFns[fnIdx]}
			fnIdx++
		default:
			fr[prm.Name] = &slot{kind: mini.TInt, i: input[k], s: intS(sym.VarTerm(e.InputVars[k]), nil)}
			k++
		}
	}

	ret, err := r.execBlock(main.Body, fr)
	r.res.Steps = r.steps
	switch e := err.(type) {
	case nil:
		r.res.Kind = mini.StopReturn
		if ret != nil {
			r.res.Return = ret.i
		}
	case errorReached:
		r.res.Kind = mini.StopError
		r.res.ErrorSite = e.site
		r.res.ErrorMsg = e.msg
	case runtimeFault:
		r.res.Kind = mini.StopRuntime
		r.res.RuntimeMsg = e.msg
	case runCanceled:
		r.res.Kind = mini.StopReturn
		r.ex.Canceled = true
	default:
		panic(err)
	}
	if o := r.e.Obs; o.Enabled() {
		o.Histogram("concolic.exec.ns").Observe(int64(time.Since(t0)))
		o.Histogram("concolic.path.len").Observe(int64(len(r.ex.PC)))
		o.Histogram("concolic.steps").Observe(int64(r.res.Steps))
		o.Counter("concolic.runs").Inc()
		o.Counter("concolic.samples.learned").Add(int64(r.ex.NewSamples))
		o.Counter("concolic.ufapps").Add(int64(r.ex.UFApps))
		o.Counter("concolic.concretizations").Add(int64(r.ex.Concretizations))
	}
	return r.ex
}

func (r *runner) tick() error {
	r.steps++
	max := r.e.MaxSteps
	if max <= 0 {
		max = 200000
	}
	if r.steps > max {
		return runtimeFault{"step budget exceeded (possible non-termination)"}
	}
	// Cooperative cancellation: poll every 256 steps so even a long run
	// notices a cancelled search within microseconds, without paying a
	// function call per interpreter step.
	if r.steps&255 == 0 && r.e.CheckCancel != nil && r.e.CheckCancel() {
		return runCanceled{}
	}
	return nil
}

// pin injects the concretization constraint x_i = I_i (line 14 of Figure 1),
// at most once per run per variable.
func (r *runner) pin(varID int, pos mini.Pos) {
	if r.pinned[varID] {
		return
	}
	r.pinned[varID] = true
	v := r.varByID[varID]
	r.ex.PC = append(r.ex.PC, Constraint{
		Expr:             sym.Eq(sym.VarTerm(v), sym.Int(r.inputVal[varID])),
		IsConcretization: true,
		EventIndex:       -1,
		Pos:              pos,
	})
}

func (r *runner) pinSum(s *sym.Sum, pos mini.Pos) {
	for _, v := range sym.Vars(s) {
		r.pin(v.ID, pos)
	}
}

// branchConstraint records the path constraint conjunct for a branch event
// that evaluated cond to `taken` at Branches[idx].
func (r *runner) branchConstraint(cond sval, taken bool, idx int, pos mini.Pos) {
	if cond.bottom {
		r.ex.Incomplete = true
		return
	}
	// Delayed concretization constraints are injected as soon as the value
	// they guard is used in a branch — even when the residual constraint
	// folds to a constant, the branch outcome still depends on the pinned
	// inputs (e.g. `hash(y) > 0` folds to `567 > 0` ≡ true, but only under
	// y = 42).
	for _, id := range cond.pending {
		r.pin(id, pos)
	}
	c := cond.b
	if !taken {
		c = sym.NotExpr(c)
	}
	if bc, ok := c.(*sym.Bool); ok {
		if !bc.V {
			panic(fmt.Sprintf("concolic: %s: constraint contradicts concrete execution", pos))
		}
		return // condition did not depend on inputs (beyond any pins above)
	}
	r.ex.PC = append(r.ex.PC, Constraint{Expr: c, EventIndex: idx, Pos: pos})
}

// imprecise handles an unknown instruction or function producing concrete
// value cres from arguments with at least one symbolic operand. ufName names
// the uninterpreted function to use in ModeHigherOrder.
func (r *runner) imprecise(ufName string, native bool, cres int64, argC []int64, argS []sval, pos mini.Pos) sval {
	switch r.e.Mode {
	case ModeStatic:
		return bottomS()
	case ModeUnsound:
		r.ex.Concretizations++
		return intS(sym.Int(cres), nil)
	case ModeSound:
		r.ex.Concretizations++
		for _, a := range argS {
			if a.sum != nil {
				r.pinSum(a.sum, pos)
			}
		}
		return intS(sym.Int(cres), nil)
	case ModeSoundDelayed:
		r.ex.Concretizations++
		var pending []int
		for _, a := range argS {
			if a.sum != nil {
				for _, v := range sym.Vars(a.sum) {
					pending = mergePending(pending, []int{v.ID})
				}
			}
			pending = mergePending(pending, a.pending)
		}
		return intS(sym.Int(cres), pending)
	case ModeHigherOrder:
		var f *sym.Func
		if native {
			f = r.e.FuncFor(ufName)
		} else {
			f = r.e.opFunc(ufName, len(argC))
		}
		sums := make([]*sym.Sum, len(argS))
		for i, a := range argS {
			sums[i] = a.sum
		}
		if r.e.Samples.Add(f, argC, cres) {
			r.ex.NewSamples++
		}
		r.ex.UFApps++
		return intS(sym.ApplyTerm(f, sums...), nil)
	}
	panic("concolic: bad mode")
}

func (r *runner) execBlock(b *mini.Block, fr frame) (*retval, error) {
	for _, s := range b.Stmts {
		ret, err := r.execStmt(s, fr)
		if err != nil || ret != nil {
			return ret, err
		}
	}
	return nil, nil
}

func (r *runner) execStmt(s mini.Stmt, fr frame) (*retval, error) {
	if err := r.tick(); err != nil {
		return nil, err
	}
	switch st := s.(type) {
	case *mini.VarDecl:
		ci, cb, sv, err := r.eval(st.Init, fr)
		if err != nil {
			return nil, err
		}
		fr[st.Name] = &slot{kind: exprKind(st.Init, fr), i: ci, b: cb, s: sv}
		return nil, nil

	case *mini.ArrDecl:
		obj := &arrayObj{con: make([]int64, st.Len), cells: make([]cell, st.Len)}
		for i := range obj.cells {
			obj.cells[i] = cell{sum: sym.Int(0)}
		}
		fr[st.Name] = &slot{kind: mini.TArray, arr: obj}
		return nil, nil

	case *mini.Assign:
		ci, cb, sv, err := r.eval(st.Val, fr)
		if err != nil {
			return nil, err
		}
		sl := fr[st.Name]
		sl.i, sl.b, sl.s = ci, cb, sv
		return nil, nil

	case *mini.IndexAssign:
		idxC, _, idxS, err := r.eval(st.Idx, fr)
		if err != nil {
			return nil, err
		}
		obj := fr[st.Name].arr
		if idxC < 0 || idxC >= int64(len(obj.con)) {
			return nil, runtimeFault{fmt.Sprintf("%s: index %d out of bounds [0,%d)", st.P, idxC, len(obj.con))}
		}
		valC, _, valS, err := r.eval(st.Val, fr)
		if err != nil {
			return nil, err
		}
		r.arrayWrite(obj, idxC, idxS, valC, valS, st.P)
		return nil, nil

	case *mini.If:
		_, cb, cs, err := r.eval(st.Cond, fr)
		if err != nil {
			return nil, err
		}
		idx := len(r.res.Branches)
		r.res.Branches = append(r.res.Branches, mini.BranchEvent{ID: st.BranchID, Taken: cb})
		r.branchConstraint(cs, cb, idx, st.P)
		if cb {
			return r.execBlock(st.Then, fr)
		}
		switch e := st.Else.(type) {
		case nil:
			return nil, nil
		case *mini.Block:
			return r.execBlock(e, fr)
		case *mini.If:
			return r.execStmt(e, fr)
		}
		return nil, nil

	case *mini.While:
		for {
			_, cb, cs, err := r.eval(st.Cond, fr)
			if err != nil {
				return nil, err
			}
			idx := len(r.res.Branches)
			r.res.Branches = append(r.res.Branches, mini.BranchEvent{ID: st.BranchID, Taken: cb})
			r.branchConstraint(cs, cb, idx, st.P)
			if !cb {
				return nil, nil
			}
			ret, err := r.execBlock(st.Body, fr)
			if err != nil || ret != nil {
				return ret, err
			}
			if err := r.tick(); err != nil {
				return nil, err
			}
		}

	case *mini.Return:
		if st.Val == nil {
			return &retval{}, nil
		}
		ci, _, sv, err := r.eval(st.Val, fr)
		if err != nil {
			return nil, err
		}
		return &retval{i: ci, s: sv}, nil

	case *mini.ErrorStmt:
		return nil, errorReached{site: st.SiteID, msg: st.Msg}

	case *mini.ExprStmt:
		_, _, _, err := r.eval(st.X, fr)
		return nil, err

	case *mini.Block:
		return r.execBlock(st, fr)
	}
	panic(fmt.Sprintf("concolic: execStmt: unhandled %T", s))
}

func (r *runner) arrayWrite(obj *arrayObj, idxC int64, idxS sval, valC int64, valS sval, pos mini.Pos) {
	if _, isConst := constOf(idxS); !isConst {
		// Symbolic index: an unknown instruction outside T.
		switch r.e.Mode {
		case ModeStatic:
			for i := range obj.cells {
				obj.cells[i] = cell{bottom: true}
			}
		case ModeUnsound:
			r.ex.Concretizations++
		default: // sound, delayed, higher-order: pin the index
			r.ex.Concretizations++
			if idxS.sum != nil {
				r.pinSum(idxS.sum, pos)
			}
			for _, id := range idxS.pending {
				r.pin(id, pos)
			}
		}
	}
	obj.con[idxC] = valC
	obj.cells[idxC] = cell{sum: valS.sum, pending: valS.pending, bottom: valS.bottom}
}

func (r *runner) arrayRead(obj *arrayObj, idxC int64, idxS sval, pos mini.Pos) (int64, sval, error) {
	if idxC < 0 || idxC >= int64(len(obj.con)) {
		return 0, sval{}, runtimeFault{fmt.Sprintf("%s: index %d out of bounds [0,%d)", pos, idxC, len(obj.con))}
	}
	cl := obj.cells[idxC]
	out := sval{sum: cl.sum, pending: cl.pending, bottom: cl.bottom}
	if _, isConst := constOf(idxS); !isConst {
		switch r.e.Mode {
		case ModeStatic:
			return obj.con[idxC], bottomS(), nil
		case ModeUnsound:
			r.ex.Concretizations++
		case ModeSound, ModeHigherOrder:
			r.ex.Concretizations++
			if idxS.sum != nil {
				r.pinSum(idxS.sum, pos)
			}
		case ModeSoundDelayed:
			r.ex.Concretizations++
			if idxS.sum != nil {
				for _, v := range sym.Vars(idxS.sum) {
					out.pending = mergePending(out.pending, []int{v.ID})
				}
			}
			out.pending = mergePending(out.pending, idxS.pending)
		}
	}
	return obj.con[idxC], out, nil
}

// constOf reports whether an sval is a known integer constant.
func constOf(s sval) (int64, bool) {
	if s.bottom || s.sum == nil {
		return 0, false
	}
	return s.sum.IsConst()
}

// exprKind returns the static kind of an expression (int or bool), which the
// checker has already validated.
func exprKind(e mini.Expr, fr frame) mini.TypeKind {
	switch x := e.(type) {
	case *mini.IntLit, *mini.Index, *mini.Call:
		return mini.TInt
	case *mini.BoolLit:
		return mini.TBool
	case *mini.Ident:
		return fr[x.Name].kind
	case *mini.Unary:
		if x.Op == mini.TokBang {
			return mini.TBool
		}
		return mini.TInt
	case *mini.Binary:
		switch x.Op {
		case mini.TokPlus, mini.TokMinus, mini.TokStar, mini.TokSlash, mini.TokPercent:
			return mini.TInt
		}
		return mini.TBool
	}
	return mini.TInt
}

// eval is the side-by-side evaluation of Figure 1: it returns the concrete
// value (int or bool) together with the symbolic value.
func (r *runner) eval(e mini.Expr, fr frame) (int64, bool, sval, error) {
	if err := r.tick(); err != nil {
		return 0, false, sval{}, err
	}
	switch x := e.(type) {
	case *mini.IntLit:
		return x.V, false, intS(sym.Int(x.V), nil), nil
	case *mini.BoolLit:
		return 0, x.V, boolS(boolConst(x.V), nil), nil
	case *mini.Ident:
		sl := fr[x.Name]
		return sl.i, sl.b, sl.s, nil
	case *mini.Index:
		idxC, _, idxS, err := r.eval(x.Idx, fr)
		if err != nil {
			return 0, false, sval{}, err
		}
		v, sv, err := r.arrayRead(fr[x.Name].arr, idxC, idxS, x.P)
		return v, false, sv, err
	case *mini.Unary:
		ci, cb, sv, err := r.eval(x.X, fr)
		if err != nil {
			return 0, false, sval{}, err
		}
		switch x.Op {
		case mini.TokBang:
			if sv.bottom {
				return 0, !cb, bottomS(), nil
			}
			return 0, !cb, boolS(sym.NotExpr(sv.b), sv.pending), nil
		case mini.TokMinus:
			if sv.bottom {
				return -ci, false, bottomS(), nil
			}
			return -ci, false, intS(sym.NegSum(sv.sum), sv.pending), nil
		}
	case *mini.Binary:
		return r.evalBinary(x, fr)
	case *mini.Call:
		ci, sv, err := r.evalCall(x, fr)
		return ci, false, sv, err
	}
	panic(fmt.Sprintf("concolic: eval: unhandled %T", e))
}

func boolConst(v bool) sym.Expr {
	if v {
		return sym.True
	}
	return sym.False
}

func (r *runner) evalBinary(x *mini.Binary, fr frame) (int64, bool, sval, error) {
	li, lb, ls, err := r.eval(x.X, fr)
	if err != nil {
		return 0, false, sval{}, err
	}

	// Short-circuit operators: implicit branch events (see mini.Binary).
	switch x.Op {
	case mini.TokAndAnd:
		idx := len(r.res.Branches)
		r.res.Branches = append(r.res.Branches, mini.BranchEvent{ID: x.BranchID, Taken: lb})
		r.branchConstraint(ls, lb, idx, x.P)
		if !lb {
			if ls.bottom {
				return 0, false, bottomS(), nil
			}
			return 0, false, boolS(sym.False, nil), nil
		}
		return r.eval(x.Y, fr)
	case mini.TokOrOr:
		idx := len(r.res.Branches)
		r.res.Branches = append(r.res.Branches, mini.BranchEvent{ID: x.BranchID, Taken: lb})
		r.branchConstraint(ls, lb, idx, x.P)
		if lb {
			if ls.bottom {
				return 0, true, bottomS(), nil
			}
			return 0, true, boolS(sym.True, nil), nil
		}
		return r.eval(x.Y, fr)
	}

	ri, _, rs, err := r.eval(x.Y, fr)
	if err != nil {
		return 0, false, sval{}, err
	}
	bothBottom := ls.bottom || rs.bottom
	pending := mergePending(ls.pending, rs.pending)

	switch x.Op {
	case mini.TokPlus:
		if bothBottom {
			return li + ri, false, bottomS(), nil
		}
		return li + ri, false, intS(sym.AddSum(ls.sum, rs.sum), pending), nil
	case mini.TokMinus:
		if bothBottom {
			return li - ri, false, bottomS(), nil
		}
		return li - ri, false, intS(sym.SubSum(ls.sum, rs.sum), pending), nil
	case mini.TokStar:
		cres := li * ri
		if bothBottom {
			return cres, false, bottomS(), nil
		}
		if prod, ok := sym.MulSum(ls.sum, rs.sum); ok {
			return cres, false, intS(prod, pending), nil
		}
		// Product of two symbolic terms: an unknown instruction.
		return cres, false, r.imprecise("$mul", false, cres, []int64{li, ri}, []sval{ls, rs}, x.P), nil
	case mini.TokSlash, mini.TokPercent:
		if ri == 0 {
			op := "division"
			if x.Op == mini.TokPercent {
				op = "modulo"
			}
			return 0, false, sval{}, runtimeFault{fmt.Sprintf("%s: %s by zero", x.P, op)}
		}
		var cres int64
		ufName := "$div"
		if x.Op == mini.TokSlash {
			cres = li / ri
		} else {
			cres = li % ri
			ufName = "$mod"
		}
		if bothBottom {
			return cres, false, bottomS(), nil
		}
		_, lc := ls.sum.IsConst()
		_, rc := rs.sum.IsConst()
		if lc && rc {
			return cres, false, intS(sym.Int(cres), pending), nil
		}
		// Integer division/modulo with a symbolic operand is outside T.
		return cres, false, r.imprecise(ufName, false, cres, []int64{li, ri}, []sval{ls, rs}, x.P), nil
	}

	// Comparisons.
	var cb bool
	var bex sym.Expr
	switch x.Op {
	case mini.TokEq:
		cb = li == ri
		if !bothBottom {
			bex = sym.Eq(ls.sum, rs.sum)
		}
	case mini.TokNe:
		cb = li != ri
		if !bothBottom {
			bex = sym.Ne(ls.sum, rs.sum)
		}
	case mini.TokLt:
		cb = li < ri
		if !bothBottom {
			bex = sym.Lt(ls.sum, rs.sum)
		}
	case mini.TokLe:
		cb = li <= ri
		if !bothBottom {
			bex = sym.Le(ls.sum, rs.sum)
		}
	case mini.TokGt:
		cb = li > ri
		if !bothBottom {
			bex = sym.Gt(ls.sum, rs.sum)
		}
	case mini.TokGe:
		cb = li >= ri
		if !bothBottom {
			bex = sym.Ge(ls.sum, rs.sum)
		}
	default:
		panic(fmt.Sprintf("concolic: bad binary op %v", x.Op))
	}
	if bothBottom {
		return 0, cb, bottomS(), nil
	}
	return 0, cb, boolS(bex, pending), nil
}

func (r *runner) evalCall(x *mini.Call, fr frame) (int64, sval, error) {
	if x.Param {
		return r.evalCallback(x, fr)
	}
	if x.Native {
		nat := r.e.Prog.Natives[x.Name]
		argC := make([]int64, len(x.Args))
		argS := make([]sval, len(x.Args))
		symbolic := false
		for i, a := range x.Args {
			ci, _, sv, err := r.eval(a, fr)
			if err != nil {
				return 0, sval{}, err
			}
			argC[i], argS[i] = ci, sv
			if _, isConst := constOf(sv); !isConst {
				symbolic = true
			}
		}
		cres := nat.Fn(argC)
		if !symbolic {
			// Not input-dependent: S(v) defaults to M(v). The IOF pair is
			// still recorded in higher-order mode — this is how lexer
			// initialization teaches the store all keyword hashes (§7).
			if r.e.Mode == ModeHigherOrder {
				f := r.e.FuncFor(x.Name)
				if r.e.Samples.Add(f, argC, cres) {
					r.ex.NewSamples++
				}
			}
			return cres, intS(sym.Int(cres), nil), nil
		}
		// Unknown function applied to symbolic arguments (line 10, Fig. 3).
		return cres, r.imprecise(x.Name, true, cres, argC, argS, x.P), nil
	}

	fd := x.Fn
	if r.e.summariesUsable() && r.e.Summaries.summarizable(fd) {
		return r.evalCallSummary(x, fr)
	}
	r.depth++
	maxDepth := r.e.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 256
	}
	if r.depth > maxDepth {
		r.depth--
		return 0, sval{}, runtimeFault{fmt.Sprintf("%s: recursion budget exceeded", x.P)}
	}
	callee := frame{}
	for i, prm := range fd.Params {
		if prm.Type.Kind == mini.TArray || prm.Type.Kind == mini.TFunc {
			// Arrays and function values are passed by reference.
			id := x.Args[i].(*mini.Ident)
			callee[prm.Name] = fr[id.Name]
			continue
		}
		ci, cb, sv, err := r.eval(x.Args[i], fr)
		if err != nil {
			r.depth--
			return 0, sval{}, err
		}
		callee[prm.Name] = &slot{kind: prm.Type.Kind, i: ci, b: cb, s: sv}
	}
	ret, err := r.execBlock(fd.Body, callee)
	r.depth--
	if err != nil {
		return 0, sval{}, err
	}
	if ret == nil {
		return 0, intS(sym.Int(0), nil), nil
	}
	return ret.i, ret.s, nil
}

// evalCallback applies a function-valued input (a call through a
// function-typed parameter). In ModeHigherOrder the application ALWAYS
// becomes an uninterpreted term over the callback's Input symbol — even when
// every argument is concrete — because the function itself is an input:
// `p(5) == 7` must stay flippable by choosing a different p, which no
// concretizing mode can express. The observed pair is recorded in the
// per-execution CallbackSamples store. Every other mode treats the
// application like any unknown function: concretize (with the mode's pinning
// discipline), which is exactly the DART-style baseline E16 measures against.
func (r *runner) evalCallback(x *mini.Call, fr frame) (int64, sval, error) {
	sl := fr[x.Name]
	argC := make([]int64, len(x.Args))
	argS := make([]sval, len(x.Args))
	for i, a := range x.Args {
		ci, _, sv, err := r.eval(a, fr)
		if err != nil {
			return 0, sval{}, err
		}
		argC[i], argS[i] = ci, sv
	}
	cres := sl.fn.Eval(argC)
	if r.e.Mode == ModeHigherOrder {
		sums := make([]*sym.Sum, len(argS))
		for i, a := range argS {
			if a.bottom || a.sum == nil {
				sums[i] = sym.Int(argC[i])
			} else {
				sums[i] = a.sum
			}
		}
		r.ex.CallbackSamples.Add(sl.fnSym, argC, cres)
		r.ex.UFApps++
		return cres, intS(sym.ApplyTerm(sl.fnSym, sums...), nil), nil
	}
	return cres, r.imprecise("", false, cres, argC, argS, x.P), nil
}

// evalCallInline performs classic inlining of a summarizable call whose
// arguments have already been evaluated (the fallback path for abnormal
// callee exits under summaries).
func (r *runner) evalCallInline(x *mini.Call, argC []int64, argS []sval) (int64, sval, error) {
	fd := x.Fn
	r.depth++
	maxDepth := r.e.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 256
	}
	if r.depth > maxDepth {
		r.depth--
		return 0, sval{}, runtimeFault{fmt.Sprintf("%s: recursion budget exceeded", x.P)}
	}
	callee := frame{}
	for i, prm := range fd.Params {
		callee[prm.Name] = &slot{kind: mini.TInt, i: argC[i], s: argS[i]}
	}
	ret, err := r.execBlock(fd.Body, callee)
	r.depth--
	if err != nil {
		return 0, sval{}, err
	}
	if ret == nil {
		return 0, intS(sym.Int(0), nil), nil
	}
	return ret.i, ret.s, nil
}
