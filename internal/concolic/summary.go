package concolic

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"hotg/internal/mini"
	"hotg/internal/sym"
)

// Compositional summaries — the "higher-order compositional test generation"
// the paper sketches in Section 8: function summaries in the style of
// demand-driven compositional symbolic execution (Godefroid POPL'07; Anand,
// Godefroid, Tillmann TACAS'08), combined with the uninterpreted-function
// treatment of unknown calls.
//
// A summary case memoizes one intraprocedural path of a user-defined
// function: the path constraints and the return term, both expressed over
// fresh *formal* variables. At a call site the engine first runs the callee
// concretely (a cheap probe via mini.RunFunc) to learn which path the call
// takes; on a cache hit the memoized constraints are instantiated by
// substituting the actual argument terms for the formals — no symbolic
// re-execution of the callee happens. Because symbolic evaluation is
// compositional and terms are kept canonical, the instantiated constraints
// are syntactically identical to what inline execution would have produced
// (this is asserted by the property tests), so searches behave identically
// while call-heavy programs execute faster.
//
// Restrictions (checked by summarizable): the callee's parameters are ints
// and its body declares no arrays, so a call cannot touch caller state.
// Summaries require ModeHigherOrder: the memoized formulas must be exact for
// *every* argument vector following the summarized path, which only the
// uninterpreted-function treatment guarantees — under any concretization
// the callee-level formulas embed the miss-time runtime values and are stale
// for other arguments (the same phenomenon as Section 3.2's unsoundness).
// This is precisely why the paper pairs summaries with higher-order
// execution ("higher-order compositional test generation", Section 8).

// relConstraint is a path-constraint conjunct relative to the call: the
// expression is over the summary's formal variables and the event index is
// relative to the call's first branch event.
type relConstraint struct {
	Expr     sym.Expr
	RelEvent int
	IsConc   bool
	Pos      mini.Pos
}

// SummaryCase is one memoized intraprocedural path of a function.
type SummaryCase struct {
	Formals     []*sym.Var
	Constraints []relConstraint
	Ret         *sym.Sum // over Formals; Int(0) for void or fall-off returns
}

// SummaryCache memoizes path summaries per function. A single cache belongs
// to one engine (it references the engine's variable pool). The cache is safe
// for concurrent use by engine clones; read the statistics fields only after
// the runs sharing the cache have finished.
//
// With MaxCases set (before first use), the cache is LRU-bounded at that many
// memoized paths. Eviction is always safe for correctness: summaries are
// exact (instantiation reproduces inline execution's constraints
// syntactically), so a post-eviction miss rebuilds the identical case and
// only costs the symbolic re-execution of the callee.
type SummaryCache struct {
	mu    sync.Mutex
	cases map[*mini.FuncDecl]map[string]*SummaryCase
	smzbl map[*mini.FuncDecl]bool
	lru   *list.List // of summaryKey, most recent first (nil until needed)
	elem  map[summaryKey]*list.Element

	// MaxCases, when positive, bounds the number of memoized paths with LRU
	// eviction. Set before the cache is shared; zero means unbounded.
	MaxCases int

	// Statistics.
	Hits      int   // call sites served from a memoized case
	Misses    int   // call sites that built a new case
	Fallbacks int   // abnormal callee exits handled by classic inlining
	Evictions int64 // cases dropped by the MaxCases LRU bound
}

// summaryKey identifies one memoized path for the LRU index.
type summaryKey struct {
	fd  *mini.FuncDecl
	sig string
}

// NewSummaryCache returns an empty cache.
func NewSummaryCache() *SummaryCache {
	return &SummaryCache{
		cases: make(map[*mini.FuncDecl]map[string]*SummaryCase),
		smzbl: make(map[*mini.FuncDecl]bool),
	}
}

// Cases returns the total number of memoized path summaries.
func (c *SummaryCache) Cases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, m := range c.cases {
		n += len(m)
	}
	return n
}

// MemBytes returns a rough accounting of the bytes retained by the memoized
// cases: canonical-key lengths of the stored terms plus fixed per-node
// overhead. It is an estimate for budget accounting (server-side session
// memory), not an exact heap measurement.
func (c *SummaryCache) MemBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, m := range c.cases {
		for sig, cs := range m {
			n += int64(len(sig)) + 64
			for _, rc := range cs.Constraints {
				n += int64(len(rc.Expr.Key())) + 48
			}
			n += int64(len(cs.Ret.Key())) + 48*int64(len(cs.Formals))
		}
	}
	return n
}

func (c *SummaryCache) lookup(fd *mini.FuncDecl, sig string) *SummaryCase {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs := c.cases[fd][sig]
	if cs != nil && c.elem != nil {
		c.lru.MoveToFront(c.elem[summaryKey{fd, sig}])
	}
	return cs
}

func (c *SummaryCache) store(fd *mini.FuncDecl, sig string, cs *SummaryCase) {
	// Memoize the canonical keys of every stored expression before
	// publishing: Key() lazily writes a memo field, and the case's nodes are
	// shared by every engine clone that hits this entry afterwards. Warming
	// here (Key computation is transitive over subterms) makes all later
	// accesses read-only.
	for _, rc := range cs.Constraints {
		rc.Expr.Key()
	}
	cs.Ret.Key()
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.cases[fd]
	if m == nil {
		m = make(map[string]*SummaryCase)
		c.cases[fd] = m
	}
	if _, exists := m[sig]; !exists && c.MaxCases > 0 {
		if c.lru == nil {
			c.lru = list.New()
			c.elem = make(map[summaryKey]*list.Element)
		}
		if c.lru.Len() >= c.MaxCases {
			old := c.lru.Back()
			k := old.Value.(summaryKey)
			c.lru.Remove(old)
			delete(c.elem, k)
			delete(c.cases[k.fd], k.sig)
			if len(c.cases[k.fd]) == 0 {
				delete(c.cases, k.fd)
			}
			c.Evictions++
		}
		c.elem[summaryKey{fd, sig}] = c.lru.PushFront(summaryKey{fd, sig})
	}
	m[sig] = cs
	// Re-register: the eviction above may have dropped fd's (now re-used)
	// inner map when its last case was evicted.
	c.cases[fd] = m
}

func (c *SummaryCache) noteHit()      { c.mu.Lock(); c.Hits++; c.mu.Unlock() }
func (c *SummaryCache) noteMiss()     { c.mu.Lock(); c.Misses++; c.mu.Unlock() }
func (c *SummaryCache) noteFallback() { c.mu.Lock(); c.Fallbacks++; c.mu.Unlock() }

// summarizable reports whether fd is eligible: int parameters only and no
// array declarations anywhere in the body.
func (c *SummaryCache) summarizable(fd *mini.FuncDecl) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ok, seen := c.smzbl[fd]; seen {
		return ok
	}
	ok := true
	for _, prm := range fd.Params {
		if prm.Type.Kind != mini.TInt {
			ok = false
		}
	}
	if ok {
		ok = !declaresArray(fd.Body)
	}
	c.smzbl[fd] = ok
	return ok
}

func declaresArray(b *mini.Block) bool {
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *mini.ArrDecl:
			return true
		case *mini.Block:
			if declaresArray(st) {
				return true
			}
		case *mini.If:
			if declaresArray(st.Then) {
				return true
			}
			switch e := st.Else.(type) {
			case *mini.Block:
				if declaresArray(e) {
					return true
				}
			case *mini.If:
				if declaresArray(&mini.Block{Stmts: []mini.Stmt{e}}) {
					return true
				}
			}
		case *mini.While:
			if declaresArray(st.Body) {
				return true
			}
		}
	}
	return false
}

// traceSig encodes a branch-event sequence as a cache key.
func traceSig(events []mini.BranchEvent) string {
	var b strings.Builder
	for _, ev := range events {
		if ev.Taken {
			fmt.Fprintf(&b, "%d+", ev.ID)
		} else {
			fmt.Fprintf(&b, "%d-", ev.ID)
		}
	}
	return b.String()
}

// summariesUsable reports whether the engine's mode supports summary calls.
func (e *Engine) summariesUsable() bool {
	return e.Summaries != nil && e.Mode == ModeHigherOrder
}

// groundFold replaces uninterpreted applications whose arguments became
// constants after substitution by their sampled values. Inline execution
// with those constant operands would have computed concretely and never
// created the application, so folding restores exact equivalence; the sample
// is always present because the concrete pass evaluated the same call.
func (r *runner) groundFold(e sym.Expr) sym.Expr {
	return sym.RewriteApplies(e, r.groundFoldApply)
}

func (r *runner) groundFoldSum(s *sym.Sum) *sym.Sum {
	return sym.RewriteAppliesSum(s, r.groundFoldApply)
}

func (r *runner) groundFoldApply(a *sym.Apply) (*sym.Sum, bool) {
	// A product with one constant side is linear: inline execution never
	// created an application for it (sym.MulSum succeeded), so fold it back.
	if a.Fn.Name == "$mul" && len(a.Args) == 2 {
		if prod, ok := sym.MulSum(a.Args[0], a.Args[1]); ok {
			return prod, true
		}
	}
	args := make([]int64, len(a.Args))
	for i, arg := range a.Args {
		v, ok := arg.IsConst()
		if !ok {
			return nil, false
		}
		args[i] = v
	}
	if out, ok := r.e.Samples.Lookup(a.Fn, args); ok {
		return sym.Int(out), true
	}
	// Unknown instructions ($mul/$div/$mod) and natives have concrete
	// ground-truth semantics; evaluating directly matches what inline
	// execution computed with the same constant operands.
	if out, ok := r.e.NativeEval(a.Fn.Name, args); ok {
		return sym.Int(out), true
	}
	return nil, false
}

// evalCallSummary handles a call to a summarizable function through the
// summary cache. Falls back to classic inlining on abnormal callee exits.
func (r *runner) evalCallSummary(x *mini.Call, fr frame) (int64, sval, error) {
	fd := x.Fn
	argC := make([]int64, len(x.Args))
	argS := make([]sval, len(x.Args))
	for i, a := range x.Args {
		ci, _, sv, err := r.eval(a, fr)
		if err != nil {
			return 0, sval{}, err
		}
		argC[i], argS[i] = ci, sv
	}

	// Concrete probe: which intraprocedural path does this call take?
	maxSteps := r.e.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 200000
	}
	remaining := maxSteps - r.steps
	if remaining <= 0 {
		return 0, sval{}, runtimeFault{"step budget exceeded (possible non-termination)"}
	}
	var sampleHook func(string, []int64, int64)
	if r.e.Mode == ModeHigherOrder {
		sampleHook = func(name string, args []int64, out int64) {
			if r.e.Samples.Add(r.e.FuncFor(name), args, out) {
				r.ex.NewSamples++
			}
		}
	}
	probe := mini.RunFuncVM(r.e.compiled(), fd.Name, argC, mini.RunOptions{
		MaxSteps:     remaining,
		MaxDepth:     r.e.MaxDepth,
		OnNativeCall: sampleHook,
	})
	r.steps += probe.Steps
	if probe.Kind != mini.StopReturn {
		// Error site or fault inside the callee: let classic inlining
		// reproduce it with full symbolic context.
		r.e.Summaries.noteFallback()
		return r.evalCallInline(x, argC, argS)
	}

	sig := traceSig(probe.Branches)
	base := len(r.res.Branches)

	if cs := r.e.Summaries.lookup(fd, sig); cs != nil {
		r.e.Summaries.noteHit()
		r.res.Branches = append(r.res.Branches, probe.Branches...)
		subst := make(map[int]*sym.Sum, len(cs.Formals))
		for i, f := range cs.Formals {
			subst[f.ID] = argS[i].sum
		}
		for _, rc := range cs.Constraints {
			expr := r.groundFold(sym.SubstVars(rc.Expr, subst))
			// Constraints that fold away under constant arguments would not
			// have been emitted by inline execution either.
			if expr == sym.True {
				continue
			}
			ei := -1
			if rc.RelEvent >= 0 {
				ei = base + rc.RelEvent
			}
			r.ex.PC = append(r.ex.PC, Constraint{
				Expr:             expr,
				IsConcretization: rc.IsConc,
				EventIndex:       ei,
				Pos:              rc.Pos,
			})
		}
		return probe.Return, intS(r.groundFoldSum(sym.SubstVarsSum(cs.Ret, subst)), nil), nil
	}

	// Miss: execute the callee symbolically over fresh formal variables,
	// memoize the (formal-level) summary, then instantiate in place.
	r.e.Summaries.noteMiss()
	r.depth++
	maxDepth := r.e.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 256
	}
	if r.depth > maxDepth {
		r.depth--
		return 0, sval{}, runtimeFault{fmt.Sprintf("%s: recursion budget exceeded", x.P)}
	}
	formals := make([]*sym.Var, len(fd.Params))
	callee := frame{}
	for i, prm := range fd.Params {
		formals[i] = r.e.Pool.NewVar("$" + fd.Name + "." + prm.Name)
		callee[prm.Name] = &slot{kind: mini.TInt, i: argC[i], s: intS(sym.VarTerm(formals[i]), nil)}
		// Formals behave as the inputs of this sub-execution: register them
		// so any concretization pin emitted inside the callee (e.g. a
		// symbolic array index in a nested non-summarizable call) pins the
		// formal to the concrete argument value.
		r.varByID[formals[i].ID] = formals[i]
		r.inputVal[formals[i].ID] = argC[i]
	}
	pcMark := len(r.ex.PC)
	ret, err := r.execBlock(fd.Body, callee)
	r.depth--
	if err != nil {
		// The probe said this path returns normally; a deterministic
		// program cannot disagree with it.
		panic(fmt.Sprintf("concolic: summary pass diverged from probe at %s: %v", x.P, err))
	}

	retC, retSum := int64(0), sym.Int(0)
	if ret != nil {
		retC = ret.i
		if ret.s.sum != nil {
			retSum = ret.s.sum
		}
	}
	cs := &SummaryCase{Formals: formals, Ret: retSum}
	for i := pcMark; i < len(r.ex.PC); i++ {
		c := r.ex.PC[i]
		rel := -1
		if c.EventIndex >= 0 {
			rel = c.EventIndex - base
		}
		cs.Constraints = append(cs.Constraints, relConstraint{
			Expr:     c.Expr,
			RelEvent: rel,
			IsConc:   c.IsConcretization,
			Pos:      c.Pos,
		})
	}
	r.e.Summaries.store(fd, sig, cs)

	// Rewrite the freshly appended constraints into the caller's vocabulary,
	// dropping any that fold away under constant arguments (inline execution
	// would not have emitted those).
	subst := make(map[int]*sym.Sum, len(formals))
	for i, f := range formals {
		subst[f.ID] = argS[i].sum
	}
	kept := r.ex.PC[:pcMark]
	for i := pcMark; i < len(r.ex.PC); i++ {
		expr := r.groundFold(sym.SubstVars(r.ex.PC[i].Expr, subst))
		if expr == sym.True {
			continue
		}
		c := r.ex.PC[i]
		c.Expr = expr
		kept = append(kept, c)
	}
	r.ex.PC = kept
	return retC, intS(r.groundFoldSum(sym.SubstVarsSum(retSum, subst)), nil), nil
}
