package concolic

import (
	"math/rand"
	"testing"

	"hotg/internal/mini"
	"hotg/internal/sym"
)

const classifySrc = `
fn classify(c int) int {
	if (c < 48) {
		return 0;
	}
	if (c < 58) {
		return 1;
	}
	if (c == hash(c)) {
		return 3;
	}
	return 2;
}
fn main(a int, b int, c int) {
	var total = classify(a) + classify(b) + classify(c);
	if (total == 3) {
		error("all-digits");
	}
}`

func TestSummaryHitMissCounters(t *testing.T) {
	p := prog(t, classifySrc)
	e := New(p, ModeHigherOrder)
	e.Summaries = NewSummaryCache()

	// First run: three calls along (at most two distinct) paths.
	e.Run([]int64{50, 51, 30})
	if e.Summaries.Misses == 0 {
		t.Fatalf("expected misses on first run: %+v", e.Summaries)
	}
	if e.Summaries.Hits == 0 {
		t.Fatalf("repeated intra-run paths should hit: %+v", e.Summaries)
	}
	misses := e.Summaries.Misses

	// Second identical run: every call is a hit.
	e.Run([]int64{50, 51, 30})
	if e.Summaries.Misses != misses {
		t.Fatalf("second run should add no misses: %+v", e.Summaries)
	}
	if e.Summaries.Cases() == 0 {
		t.Fatal("no cases memoized")
	}
}

func TestSummaryMatchesInline(t *testing.T) {
	p := prog(t, classifySrc)
	inline := New(p, ModeHigherOrder)
	summ := New(p, ModeHigherOrder)
	summ.Summaries = NewSummaryCache()

	inputs := [][]int64{
		{50, 51, 30},  // mixed classes
		{50, 51, 52},  // all digits → error
		{10, 200, 48}, // below/above/digit
		{50, 51, 30},  // repeat: pure-hit run
	}
	for _, in := range inputs {
		exI := inline.Run(in)
		exS := summ.Run(in)
		if exI.Result.Kind != exS.Result.Kind || exI.Result.Return != exS.Result.Return ||
			exI.Result.Path() != exS.Result.Path() {
			t.Fatalf("input %v: results differ: %+v vs %+v", in, exI.Result, exS.Result)
		}
		if exI.Formula().Key() != exS.Formula().Key() {
			t.Fatalf("input %v: path constraints differ\ninline:  %v\nsummary: %v",
				in, exI.Formula(), exS.Formula())
		}
		if len(exI.PC) != len(exS.PC) {
			t.Fatalf("input %v: pc lengths differ: %d vs %d", in, len(exI.PC), len(exS.PC))
		}
		for k := range exI.PC {
			if exI.PC[k].EventIndex != exS.PC[k].EventIndex {
				t.Fatalf("input %v: pc[%d] event index %d vs %d",
					in, k, exI.PC[k].EventIndex, exS.PC[k].EventIndex)
			}
		}
	}
}

func TestSummaryFallbackOnError(t *testing.T) {
	src := `
fn risky(c int) int {
	if (c == 7) {
		error("inside-callee");
	}
	return c + 1;
}
fn main(a int) {
	var v = risky(a);
	if (v == 100) {
		error("outside");
	}
}`
	p := prog(t, src)
	e := New(p, ModeHigherOrder)
	e.Summaries = NewSummaryCache()

	ex := e.Run([]int64{7})
	if ex.Result.Kind != mini.StopError || ex.Result.ErrorMsg != "inside-callee" {
		t.Fatalf("result = %+v", ex.Result)
	}
	if e.Summaries.Fallbacks == 0 {
		t.Fatalf("error exit should fall back to inlining: %+v", e.Summaries)
	}

	// Normal path still summarized; constraints still sound.
	ex = e.Run([]int64{99})
	if ex.Result.Kind != mini.StopError || ex.Result.ErrorMsg != "outside" {
		t.Fatalf("result = %+v", ex.Result)
	}
}

func TestSummaryFallbackOnFault(t *testing.T) {
	src := `
fn divide(a int, b int) int {
	return a / b;
}
fn main(x int) {
	var v = divide(10, x);
	if (v == 5) {
		error("five");
	}
}`
	p := prog(t, src)
	e := New(p, ModeHigherOrder)
	e.Summaries = NewSummaryCache()
	ex := e.Run([]int64{0})
	if ex.Result.Kind != mini.StopRuntime {
		t.Fatalf("division by zero should fault: %+v", ex.Result)
	}
	if e.Summaries.Fallbacks == 0 {
		t.Fatalf("fault should fall back: %+v", e.Summaries)
	}
}

func TestSummaryConstArgsFold(t *testing.T) {
	src := `
fn double(c int) int {
	return c * c;
}
fn main(x int) {
	var k = double(6);
	if (x == k) {
		error("hit");
	}
}`
	p := prog(t, src)
	inline := New(p, ModeHigherOrder)
	summ := New(p, ModeHigherOrder)
	summ.Summaries = NewSummaryCache()
	exI := inline.Run([]int64{1})
	exS := summ.Run([]int64{1})
	if exI.Formula().Key() != exS.Formula().Key() {
		t.Fatalf("const-arg call should fold identically:\ninline:  %v\nsummary: %v",
			exI.Formula(), exS.Formula())
	}
	// The constraint must reference the folded constant 36, not $mul(6,6).
	if sym.HasApply(exS.Formula()) {
		t.Fatalf("summary pc still contains an application: %v", exS.Formula())
	}
}

func TestSummaryArrayCalleeExcluded(t *testing.T) {
	src := `
fn buffered(c int) int {
	var tmp [4];
	tmp[0] = c;
	return tmp[0] + 1;
}
fn main(x int) {
	if (buffered(x) == 5) {
		error("e");
	}
}`
	p := prog(t, src)
	e := New(p, ModeHigherOrder)
	e.Summaries = NewSummaryCache()
	ex := e.Run([]int64{4})
	if ex.Result.Kind != mini.StopError {
		t.Fatalf("result = %+v", ex.Result)
	}
	if e.Summaries.Hits+e.Summaries.Misses != 0 {
		t.Fatalf("array-using callee must be excluded: %+v", e.Summaries)
	}
}

func TestSummaryRecursion(t *testing.T) {
	src := `
fn tri(n int) int {
	if (n <= 0) {
		return 0;
	}
	return n + tri(n - 1);
}
fn main(x int) {
	if (tri(x) == 6) {
		error("triangle");
	}
}`
	p := prog(t, src)
	inline := New(p, ModeHigherOrder)
	summ := New(p, ModeHigherOrder)
	summ.Summaries = NewSummaryCache()
	for _, in := range [][]int64{{3}, {5}, {3}} {
		exI := inline.Run(in)
		exS := summ.Run(in)
		if exI.Result.Kind != exS.Result.Kind || exI.Result.Path() != exS.Result.Path() {
			t.Fatalf("input %v: %+v vs %+v", in, exI.Result, exS.Result)
		}
		if exI.Formula().Key() != exS.Formula().Key() {
			t.Fatalf("input %v: pcs differ\ninline:  %v\nsummary: %v", in, exI.Formula(), exS.Formula())
		}
	}
}

// TestSummaryEquivalenceProperty is the headline property test: on random
// programs with helper functions, higher-order execution with compositional
// summaries is observationally identical to classic inlining — same concrete
// results, same branch traces, and syntactically identical path constraints —
// across repeated runs (exercising both hits and misses).
func TestSummaryEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for iter := 0; iter < 80; iter++ {
		src := mini.GenProgram(r, mini.GenConfig{Natives: []string{"hash"}, NumHelpers: 2})
		p, err := mini.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		if err := mini.Check(p, natives()); err != nil {
			t.Fatalf("check: %v\n%s", err, src)
		}
		for _, mode := range []Mode{ModeHigherOrder} {
			inline := New(p, mode)
			summ := New(p, mode)
			summ.Summaries = NewSummaryCache()
			for rep := 0; rep < 3; rep++ {
				in := []int64{int64(r.Intn(21) - 10), int64(r.Intn(21) - 10), int64(r.Intn(21) - 10)}
				exI := inline.Run(in)
				exS := summ.Run(in)
				if exI.Result.Kind != exS.Result.Kind || exI.Result.Return != exS.Result.Return ||
					exI.Result.ErrorSite != exS.Result.ErrorSite || exI.Result.Path() != exS.Result.Path() {
					t.Fatalf("iter %d mode %v input %v: results differ\n%+v\n%+v\n%s",
						iter, mode, in, exI.Result, exS.Result, src)
				}
				if exI.Formula().Key() != exS.Formula().Key() {
					t.Fatalf("iter %d mode %v input %v: path constraints differ\ninline:  %v\nsummary: %v\n%s",
						iter, mode, in, exI.Formula(), exS.Formula(), src)
				}
			}
		}
	}
}

// TestSummaryModesRestricted: every non-higher-order mode must ignore the
// cache (concretized summaries would be stale for other arguments).
func TestSummaryModesRestricted(t *testing.T) {
	p := prog(t, classifySrc)
	for _, mode := range []Mode{ModeSound, ModeSoundDelayed, ModeStatic, ModeUnsound} {
		e := New(p, mode)
		e.Summaries = NewSummaryCache()
		e.Run([]int64{50, 51, 30})
		if e.Summaries.Hits+e.Summaries.Misses+e.Summaries.Fallbacks != 0 {
			t.Fatalf("mode %v must not use summaries: %+v", mode, e.Summaries)
		}
	}
}
