// Package concolic implements side-by-side concrete and symbolic execution of
// mini programs — the executeSymbolic procedure of Figures 1–3 of the paper —
// parameterized by how imprecision in symbolic execution is handled:
//
//	ModeStatic      static test generation: no concrete fallback; an unknown
//	                value poisons everything it touches (King-style symbolic
//	                execution, helpless on programs like obscure()).
//	ModeUnsound     DART's default concretization (Figure 1 without line 14):
//	                replace the unknown value by its runtime value and keep
//	                going. Path constraints may be unsound → divergences.
//	ModeSound       sound concretization (Figure 1 with line 14): additionally
//	                pin every symbolic variable occurring in the concretized
//	                expression with a concretization constraint x_i = I_i.
//	ModeSoundDelayed the Section 3.3 variant: concretization constraints are
//	                injected only when the concretized value actually flows
//	                into a branch condition.
//	ModeHigherOrder Figure 3: unknown functions/instructions become
//	                uninterpreted function applications, and concrete
//	                input–output samples are recorded in the IOF store.
//
// Sources of imprecision (the "default case" of Figure 1) are: calls to
// native functions, products of two symbolic terms, division/modulo with a
// symbolic operand, and array accesses at symbolic indices. The first three
// are deterministic functions of their arguments and are representable as
// uninterpreted functions in ModeHigherOrder; symbolic array indexing is
// handled by sound index concretization in every sound mode (cf. Section 6:
// only some sources of imprecision need be tracked as uninterpreted
// functions).
package concolic

import (
	"fmt"

	"hotg/internal/mini"
	"hotg/internal/obs"
	"hotg/internal/sym"
)

// Mode selects the imprecision-handling strategy.
type Mode int

const (
	// ModeStatic is static test generation (no runtime values).
	ModeStatic Mode = iota
	// ModeUnsound is DART's default unsound concretization.
	ModeUnsound
	// ModeSound is sound concretization (line 14 of Figure 1).
	ModeSound
	// ModeSoundDelayed delays concretization constraints until use.
	ModeSoundDelayed
	// ModeHigherOrder is symbolic execution with uninterpreted functions
	// and sample recording (Figure 3).
	ModeHigherOrder
)

func (m Mode) String() string {
	switch m {
	case ModeStatic:
		return "static"
	case ModeUnsound:
		return "dart-unsound"
	case ModeSound:
		return "dart-sound"
	case ModeSoundDelayed:
		return "dart-sound-delayed"
	case ModeHigherOrder:
		return "higher-order"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Constraint is one conjunct of a path constraint.
type Constraint struct {
	// Expr is the constraint formula over the input variables (and, in
	// ModeHigherOrder, uninterpreted function applications).
	Expr sym.Expr
	// IsConcretization marks a concretization constraint x_i = I_i; such
	// constraints must never be negated by the search (Section 3.3).
	IsConcretization bool
	// EventIndex is the index into Result.Branches of the branch event this
	// constraint was generated at, or -1 for concretization constraints.
	EventIndex int
	// Pos is the source position of the branch or concretization site.
	Pos mini.Pos
}

func (c Constraint) String() string {
	if c.IsConcretization {
		return fmt.Sprintf("[conc] %v", c.Expr)
	}
	return fmt.Sprintf("[b%d] %v", c.EventIndex, c.Expr)
}

// Execution is the outcome of one concolic run.
type Execution struct {
	Input []int64
	// Funcs are the function-valued inputs the run executed under, aligned
	// with the program's FuncShape (nil entries = the default function).
	Funcs  []*mini.FuncValue
	Result *mini.Result
	// PC is the path constraint, in generation order.
	PC []Constraint
	// Incomplete reports that at least one branch on a symbolic-but-unknown
	// value produced no constraint (always false outside ModeStatic; this is
	// DART's "completeness flag", Section 3.1).
	Incomplete bool
	// Concretizations counts imprecision events resolved by concretization.
	Concretizations int
	// UFApps counts uninterpreted applications created (ModeHigherOrder).
	UFApps int
	// NewSamples counts input–output pairs newly added to the IOF store.
	NewSamples int
	// CallbackSamples records the input–output pairs observed for callback
	// (function-valued input) applications during this run, keyed by the
	// engine's callback symbols ("@" + parameter name). They live in a
	// per-execution store, never the engine's persistent one: unlike
	// environment unknowns, a callback's ground truth changes per test (each
	// test supplies its own function), so merging across runs would corrupt
	// the IOF invariant. Nil when the program has no function parameters.
	CallbackSamples *sym.SampleStore
	// Canceled reports that the run was stopped early by Engine.CheckCancel
	// (cooperative cancellation). The Result and PC cover only the executed
	// prefix; no bug is recorded for the early stop.
	Canceled bool
}

// Formula returns the conjunction of the whole path constraint.
func (ex *Execution) Formula() sym.Expr {
	parts := make([]sym.Expr, len(ex.PC))
	for i, c := range ex.PC {
		parts[i] = c.Expr
	}
	return sym.AndExpr(parts...)
}

// Alt builds the alternate path constraint ALT(pc_k) of Section 5.2: the
// conjunction of all constraints before position k with the negation of the
// k-th constraint. It panics if PC[k] is a concretization constraint, which
// must never be negated.
func (ex *Execution) Alt(k int) sym.Expr {
	if ex.PC[k].IsConcretization {
		panic("concolic: Alt on a concretization constraint")
	}
	parts := make([]sym.Expr, 0, k+1)
	for i := 0; i < k; i++ {
		parts = append(parts, ex.PC[i].Expr)
	}
	parts = append(parts, sym.NotExpr(ex.PC[k].Expr))
	return sym.AndExpr(parts...)
}

// ExpectedTrace returns the branch trace an input satisfying Alt(k) is
// predicted to follow: the executed prefix up to the k-th constraint's branch
// event, with that event flipped.
func (ex *Execution) ExpectedTrace(k int) []mini.BranchEvent {
	idx := ex.PC[k].EventIndex
	out := make([]mini.BranchEvent, idx+1)
	copy(out, ex.Result.Branches[:idx])
	ev := ex.Result.Branches[idx]
	ev.Taken = !ev.Taken
	out[idx] = ev
	return out
}

// Engine executes one program under one mode, owning the symbolic input
// variables (stable across runs, so path constraints from different runs
// share a vocabulary) and, in ModeHigherOrder, the persistent IOF store.
type Engine struct {
	Prog *mini.Program
	Mode Mode
	Pool *sym.Pool
	// InputVars are the symbolic variables x_i, aligned with Prog.Shape().
	InputVars []*sym.Var
	// Samples is the IOF store; it persists and grows across Run calls.
	Samples *sym.SampleStore
	// Summaries, when non-nil, enables compositional path summaries for
	// eligible user-function calls (ModeHigherOrder only); see summary.go.
	Summaries *SummaryCache
	// Obs, when non-nil, collects per-execution metrics (concolic.exec.ns,
	// concolic.path.len, samples learned, UF applications). Clones share it;
	// all updates are atomic. Never affects execution results.
	Obs *obs.Obs
	// CheckCancel, when non-nil, is polled every few hundred interpreter
	// steps; when it reports true the run stops early and the Execution is
	// marked Canceled (no bug is recorded, the partial path constraint is
	// kept). The search installs a probe backed by its context so in-flight
	// executions stop promptly on cancellation. Clones share it; it must be
	// safe for concurrent use.
	CheckCancel func() bool

	MaxSteps int
	MaxDepth int

	// CallbackFns are the uninterpreted symbols standing for the program's
	// function-valued inputs, aligned with funcShape. Each is an Input symbol
	// named "@" + parameter name (the "@" keeps the namespace disjoint from
	// natives and unknown instructions).
	CallbackFns []*sym.Func

	shape     mini.InputShape
	funcShape []mini.FuncParam
	opFns     map[string]*sym.Func
	// vmCode is the optimized bytecode form of the program, compiled lazily
	// for the summary machinery's concrete probe passes.
	vmCode *mini.Compiled
}

// compiled returns the lazily built optimized bytecode of the program.
func (e *Engine) compiled() *mini.Compiled {
	if e.vmCode == nil {
		e.vmCode = mini.CompileVM(e.Prog).Optimize()
	}
	return e.vmCode
}

// New creates an engine for the checked program under the given mode.
func New(prog *mini.Program, mode Mode) *Engine {
	e := &Engine{
		Prog:     prog,
		Mode:     mode,
		Pool:     &sym.Pool{},
		Samples:  sym.NewSampleStore(),
		MaxSteps: 200000,
		MaxDepth: 256,
		opFns:    make(map[string]*sym.Func),
	}
	e.shape = prog.Shape()
	for _, name := range e.shape.Names {
		e.InputVars = append(e.InputVars, e.Pool.NewVar(name))
	}
	e.funcShape = prog.FuncShape()
	for _, fp := range e.funcShape {
		e.CallbackFns = append(e.CallbackFns, e.Pool.InputFuncSym("@"+fp.Name, fp.Arity))
	}
	// Pre-register the unknown-instruction symbols so opFns is read-only from
	// here on (engine clones share the map across goroutines).
	for _, name := range []string{"$mul", "$div", "$mod"} {
		e.opFns[name] = e.Pool.FuncSym(name, 2)
	}
	return e
}

// Clone returns an engine that shares the program, mode, pool, input
// variables, summary cache, and compiled bytecode with e but records samples
// into the given store (typically a sym.NewOverlay over e.Samples). Clones
// exist so each search worker can run concurrently: Run's per-run state lives
// in a private runner, and everything shared is either immutable after New
// (program, bytecode, opFns) or internally synchronized (pool, sample store,
// summary cache).
func (e *Engine) Clone(samples *sym.SampleStore) *Engine {
	if e.Summaries != nil {
		// The summary path compiles lazily on first use; force it now so
		// concurrent clones never race on the write.
		e.compiled()
	}
	clone := *e
	clone.Samples = samples
	return &clone
}

// Shape returns the program's flattened input shape.
func (e *Engine) Shape() mini.InputShape { return e.shape }

// FuncShape returns the program's function-valued input shape.
func (e *Engine) FuncShape() []mini.FuncParam { return e.funcShape }

// FuncFor returns the uninterpreted function symbol standing for the native
// function of that name (creating it on first use).
func (e *Engine) FuncFor(name string) *sym.Func {
	nat := e.Prog.Natives[name]
	if nat == nil {
		panic("concolic: no native named " + name)
	}
	return e.Pool.FuncSym(name, nat.Arity)
}

// opFunc returns the uninterpreted function symbol for an unknown
// instruction kind ($mul, $div, $mod), per footnote 3 of the paper.
func (e *Engine) opFunc(name string, arity int) *sym.Func {
	if f, ok := e.opFns[name]; ok {
		return f
	}
	f := e.Pool.FuncSym(name, arity)
	e.opFns[name] = f
	return f
}

// NativeEval evaluates a native function concretely; it is the ground-truth
// interpretation of the corresponding uninterpreted function symbol.
func (e *Engine) NativeEval(name string, args []int64) (int64, bool) {
	switch name {
	case "$mul":
		return args[0] * args[1], true
	case "$div":
		if args[1] == 0 {
			return 0, false
		}
		return args[0] / args[1], true
	case "$mod":
		if args[1] == 0 {
			return 0, false
		}
		return args[0] % args[1], true
	}
	if nat, ok := e.Prog.Natives[name]; ok {
		return nat.Fn(args), true
	}
	return 0, false
}
