package concolic

import (
	"testing"

	"hotg/internal/mini"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// TestDelayedArrayFlow: a concretized value written through an array cell
// must keep its pending pins attached until a branch consumes it.
func TestDelayedArrayFlow(t *testing.T) {
	src := `
fn main(y int, z int) {
	var a [4];
	a[1] = hash(y);
	var v = a[1];
	if (z == 3) {
		error("independent");
	}
	if (v > 0) {
		error("dependent");
	}
}`
	p := prog(t, src)
	e := New(p, ModeSoundDelayed)
	ex := e.Run([]int64{42, 0})

	// First branch (z == 3) must not pin y; its flip must be satisfiable.
	var zIdx int
	for k, c := range ex.PC {
		if !c.IsConcretization {
			zIdx = k
			break
		}
	}
	st, m := smt.Solve(ex.Alt(zIdx), smt.Options{Pool: e.Pool})
	if st != smt.StatusSat {
		t.Fatalf("flipping z==3 should stay possible under delayed pins: %v", ex.PC)
	}
	if m.Vars[e.InputVars[1].ID] != 3 {
		t.Fatalf("model = %v", m)
	}
	// The second branch consumes hash(y)'s value: y must be pinned by then.
	pinned := false
	for _, c := range ex.PC {
		if c.IsConcretization {
			want := sym.Eq(sym.VarTerm(e.InputVars[0]), sym.Int(42))
			if c.Expr.Key() == want.Key() {
				pinned = true
			}
		}
	}
	if !pinned {
		t.Fatalf("y never pinned despite the dependent branch: %v", ex.PC)
	}
}

// TestStaticBottomPropagation: ⊥ flows through arithmetic, comparisons,
// arrays, and short-circuit operators without crashing and flags
// incompleteness exactly when a branch consumes it.
func TestStaticBottomPropagation(t *testing.T) {
	src := `
fn main(x int, i int) {
	var u = hash(x) + 1;
	var v = -u;
	var w = v * 2;
	var a [3];
	a[1] = w;
	var q = a[i];
	if (q > 0 && x > 0) {
		error("deep");
	}
}`
	p := prog(t, src)
	e := New(p, ModeStatic)
	ex := e.Run([]int64{5, 1})
	if !ex.Incomplete {
		t.Fatal("static execution must flag incompleteness")
	}
	if ex.Result.Kind == mini.StopRuntime {
		t.Fatalf("unexpected fault: %s", ex.Result.RuntimeMsg)
	}
}

// TestDivModBySymbolicZero: faults take precedence over imprecision handling.
func TestDivModBySymbolicZero(t *testing.T) {
	src := `fn main(x int, y int) int { return x / y; }`
	p := prog(t, src)
	for _, mode := range []Mode{ModeUnsound, ModeSound, ModeHigherOrder} {
		e := New(p, mode)
		ex := e.Run([]int64{10, 0})
		if ex.Result.Kind != mini.StopRuntime {
			t.Fatalf("mode %v: division by symbolic zero must fault, got %v", mode, ex.Result.Kind)
		}
	}
}

// TestOpUFConsistency: the same $mul symbol is shared across sites, so
// congruence holds between different products.
func TestOpUFConsistency(t *testing.T) {
	src := `
fn main(x int, y int) {
	var a = x * y;
	var b = y * x;
	if (a == b) {
		error("commutes-concretely");
	}
}`
	p := prog(t, src)
	e := New(p, ModeHigherOrder)
	ex := e.Run([]int64{3, 4})
	if ex.Result.Kind != mini.StopError {
		t.Fatalf("result = %+v", ex.Result)
	}
	// Constraint is $mul(x,y) = $mul(y,x): not syntactically trivial (we do
	// not assume commutativity of the unknown instruction) but present.
	if len(ex.PC) != 1 || !sym.HasApply(ex.PC[0].Expr) {
		t.Fatalf("pc = %v", ex.PC)
	}
	mul := e.opFunc("$mul", 2)
	if v, ok := e.Samples.Lookup(mul, []int64{3, 4}); !ok || v != 12 {
		t.Fatalf("missing $mul(3,4) sample: %d %v", v, ok)
	}
	if v, ok := e.Samples.Lookup(mul, []int64{4, 3}); !ok || v != 12 {
		t.Fatalf("missing $mul(4,3) sample: %d %v", v, ok)
	}
}

// TestWhileLoopConstraintPerIteration: each loop-condition evaluation
// produces its own constraint and branch event.
func TestWhileLoopConstraintPerIteration(t *testing.T) {
	src := `
fn main(n int) {
	var i = 0;
	while (i < n) {
		i = i + 1;
	}
}`
	p := prog(t, src)
	e := New(p, ModeSound)
	ex := e.Run([]int64{3})
	// i<n is evaluated 4 times: 0<3, 1<3, 2<3 (taken) and 3<3 (not taken).
	if len(ex.Result.Branches) != 4 {
		t.Fatalf("events = %v", ex.Result.Branches)
	}
	if len(ex.PC) != 4 {
		t.Fatalf("pc = %v", ex.PC)
	}
	// Flipping the exit condition extends the loop.
	st, m := smt.Solve(ex.Alt(3), smt.Options{Pool: e.Pool})
	if st != smt.StatusSat || m.Vars[e.InputVars[0].ID] < 4 {
		t.Fatalf("loop extension: %v %v", st, m)
	}
}

// TestEngineStepBudget: runaway loops stop deterministically in every mode.
func TestEngineStepBudget(t *testing.T) {
	src := `fn main(x int) { while (x == x) { x = x + 1; } }`
	p := prog(t, src)
	for _, mode := range []Mode{ModeStatic, ModeUnsound, ModeSound, ModeSoundDelayed, ModeHigherOrder} {
		e := New(p, mode)
		e.MaxSteps = 5000
		ex := e.Run([]int64{0})
		if ex.Result.Kind != mini.StopRuntime {
			t.Fatalf("mode %v: expected budget fault", mode)
		}
	}
}

// TestNegativeArrayIndexSymbolic: an out-of-bounds symbolic index faults and
// the pc stays consistent (no constraint for the faulting access).
func TestNegativeArrayIndexSymbolic(t *testing.T) {
	src := `
fn main(i int) int {
	var a [4];
	return a[i];
}`
	p := prog(t, src)
	e := New(p, ModeSound)
	ex := e.Run([]int64{-2})
	if ex.Result.Kind != mini.StopRuntime {
		t.Fatalf("result = %+v", ex.Result)
	}
	if len(ex.PC) != 0 {
		t.Fatalf("pc = %v", ex.PC)
	}
}

// TestBoolVariablesThroughBranches: boolean locals hold symbolic formulas.
func TestBoolVariablesThroughBranches(t *testing.T) {
	src := `
fn main(x int) {
	var c = x > 10;
	var d = !c;
	if (d) {
		error("small");
	}
}`
	p := prog(t, src)
	e := New(p, ModeSound)
	ex := e.Run([]int64{3})
	if ex.Result.Kind != mini.StopError {
		t.Fatalf("result = %+v", ex.Result)
	}
	if len(ex.PC) != 1 {
		t.Fatalf("pc = %v", ex.PC)
	}
	// Flip: x > 10.
	st, m := smt.Solve(ex.Alt(0), smt.Options{Pool: e.Pool})
	if st != smt.StatusSat || m.Vars[e.InputVars[0].ID] <= 10 {
		t.Fatalf("flip: %v %v", st, m)
	}
}

// TestSamplesSharedAcrossEngines is a non-goal guard: engines do NOT share
// stores unless explicitly merged; cross-engine pollution would break
// experiment isolation.
func TestSamplesSharedAcrossEngines(t *testing.T) {
	p := prog(t, obscureSrc)
	e1 := New(p, ModeHigherOrder)
	e2 := New(p, ModeHigherOrder)
	e1.Run([]int64{1, 5})
	if e2.Samples.Len() != 0 {
		t.Fatal("engines must not share sample stores implicitly")
	}
}

// TestExecutionInputCopied: mutating the caller's input slice after Run must
// not corrupt the recorded execution.
func TestExecutionInputCopied(t *testing.T) {
	p := prog(t, obscureSrc)
	e := New(p, ModeSound)
	in := []int64{33, 42}
	ex := e.Run(in)
	in[0] = 999
	if ex.Input[0] != 33 {
		t.Fatal("execution input aliased caller slice")
	}
}
