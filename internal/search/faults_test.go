package search_test

import (
	"strings"
	"testing"

	"hotg/internal/concolic"
	"hotg/internal/faults"
	"hotg/internal/lexapp"
	"hotg/internal/search"
)

// These tests drive the whole pipeline through the fault-injection harness
// (internal/faults): forced prover panics, solver timeouts, and executor
// failures must be contained — recovered, accounted in Stats.Budget, and
// never allowed to wedge or crash the search. Run under -race by
// `make test-faults`.

// TestInjectedProverPanicRecovered forces every validity proof to panic. The
// search must recover each one, count it, and — with the ladder enabled —
// still generate tests from the lower rungs.
func TestInjectedProverPanicRecovered(t *testing.T) {
	defer faults.Set(&faults.Plan{ProvePanic: true})()
	st := runWorkers(lexapp.Lexer(), concolic.ModeHigherOrder,
		search.Options{MaxRuns: 60, Budget: search.Budget{Degrade: true}}, 4, false)
	if st.Budget.ProverPanics == 0 {
		t.Fatal("injected prover panics never fired")
	}
	if st.ProverProved != 0 {
		t.Errorf("panicking prover reported %d proofs", st.ProverProved)
	}
	if st.TestsGenerated == 0 {
		t.Error("degradation ladder produced no tests despite recovered panics")
	}
	if !strings.Contains(st.BudgetSummary(), "prover_panics") {
		t.Errorf("BudgetSummary misses the recovered panics: %s", st.BudgetSummary())
	}
}

// TestInjectedProverPanicWithoutDegrade checks containment alone: without the
// ladder, recovered panics become unknown outcomes and the search simply runs
// out of work instead of crashing.
func TestInjectedProverPanicWithoutDegrade(t *testing.T) {
	defer faults.Set(&faults.Plan{ProvePanic: true})()
	st := runWorkers(lexapp.Lexer(), concolic.ModeHigherOrder,
		search.Options{MaxRuns: 60}, 2, false)
	if st.Budget.ProverPanics == 0 {
		t.Fatal("injected prover panics never fired")
	}
	if st.ProverUnknown != st.ProverCalls {
		t.Errorf("want every prover call unknown, got %d/%d", st.ProverUnknown, st.ProverCalls)
	}
}

// TestInjectedSolveTimeout forces every satisfiability query to report a
// timeout: DART-style search then generates nothing, accounts the timeouts,
// and terminates by exhaustion rather than hanging.
func TestInjectedSolveTimeout(t *testing.T) {
	defer faults.Set(&faults.Plan{SolveTimeout: true})()
	st := runWorkers(lexapp.Lexer(), concolic.ModeUnsound,
		search.Options{MaxRuns: 60}, 2, false)
	if st.Budget.ProofTimeouts == 0 {
		t.Fatal("injected solver timeouts never fired")
	}
	if st.TestsGenerated != 0 {
		t.Errorf("timed-out solver still produced %d tests", st.TestsGenerated)
	}
	if !st.Exhausted {
		t.Error("search should drain its worklist when every query times out")
	}
	if st.SolverSat != 0 {
		t.Errorf("timed-out solver reported %d sat results", st.SolverSat)
	}
}

// TestInjectedExecutorPanicDropped lets a few runs through, then makes every
// execution panic: the panicking runs are dropped and counted, their inputs
// consumed, and the search terminates.
func TestInjectedExecutorPanicDropped(t *testing.T) {
	defer faults.Set(&faults.Plan{ExecPanic: true, Skip: 3})()
	st := runWorkers(lexapp.Lexer(), concolic.ModeHigherOrder,
		search.Options{MaxRuns: 60}, 1, false)
	if st.Budget.ExecFailures == 0 {
		t.Fatal("injected executor panics never fired")
	}
	if st.Runs != 3 {
		t.Errorf("want exactly the 3 skip-credited runs recorded, got %d", st.Runs)
	}
	if !strings.Contains(st.BudgetSummary(), "exec_failures") {
		t.Errorf("BudgetSummary misses the dropped runs: %s", st.BudgetSummary())
	}
}

// TestFaultPlanRestore checks the harness contract itself: restoring the
// previous plan really disarms injection, so a faulty test cannot leak its
// plan into later searches.
func TestFaultPlanRestore(t *testing.T) {
	restore := faults.Set(&faults.Plan{ExecPanic: true})
	restore()
	st := runWorkers(lexapp.Lexer(), concolic.ModeHigherOrder,
		search.Options{MaxRuns: 10}, 1, false)
	if st.Budget.ExecFailures != 0 || st.Runs == 0 {
		t.Errorf("restored plan still fired: %d failures, %d runs", st.Budget.ExecFailures, st.Runs)
	}
}
