package search

import (
	"strconv"

	"hotg/internal/fol"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// proofCache memoizes the expensive half of test generation. Within one
// search, identical proof obligations recur constantly — the same negated
// constraint reached through different prefixes slices to the same ALT
// formula, and re-expansions after divergences re-derive earlier targets.
//
// Higher-order entries are keyed by sample-store version as well as formula:
// a validity proof of POST(pc) is constructed *from* the IOF samples, so the
// same formula can be unprovable before an intermediate run and provable
// after it. The store only grows (monotone), and it is frozen while an
// expansion's proofs are in flight, so Len() is a sound version stamp.
// Satisfiability entries need no version: the solver never reads samples.
//
// Only the coordinator goroutine reads or writes the cache (workers receive
// the already-filtered miss list), so it needs no lock. Cached strategies are
// shared across targets; consumers copy-on-extend (fol.FillFallback) rather
// than mutate.
type proofCache struct {
	prove map[string]proveEntry
	solve map[string]solveEntry
}

type proveEntry struct {
	strategy *fol.Strategy
	outcome  fol.Outcome
}

type solveEntry struct {
	status smt.Status
	model  *smt.Model
}

func newProofCache() *proofCache {
	return &proofCache{
		prove: make(map[string]proveEntry),
		solve: make(map[string]solveEntry),
	}
}

// proveKey is the higher-order cache key: sample-store version plus the
// formula's canonical string. Calling Key() here (on the coordinator, before
// fan-out) also memoizes the key fields of every shared subterm, so workers
// only ever read them.
func proveKey(alt sym.Expr, version int) string {
	return strconv.Itoa(version) + "|" + alt.Key()
}
