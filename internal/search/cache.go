package search

import (
	"container/list"
	"strconv"

	"hotg/internal/fol"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// proofCache memoizes the expensive half of test generation. Within one
// search, identical proof obligations recur constantly — the same negated
// constraint reached through different prefixes slices to the same ALT
// formula, and re-expansions after divergences re-derive earlier targets.
//
// Higher-order entries are keyed by sample-store version as well as formula:
// a validity proof of POST(pc) is constructed *from* the IOF samples, so the
// same formula can be unprovable before an intermediate run and provable
// after it. The store only grows (monotone), and it is frozen while an
// expansion's proofs are in flight, so Len() is a sound version stamp.
// Satisfiability entries need no version: the solver never reads samples.
//
// Only the coordinator goroutine reads or writes the cache (workers receive
// the already-filtered miss list), so it needs no lock. Cached strategies are
// shared across targets; consumers copy-on-extend (fol.FillFallback) rather
// than mutate.
//
// With a positive capacity each map is LRU-bounded at that many entries:
// lookups touch, inserts evict the least-recently-used entry past the cap.
// Because the coordinator is the only client and touches entries in canonical
// constraint order, the eviction sequence is itself deterministic at any
// worker count — an evicted entry only costs a re-proof (the prover is a
// function of formula + samples), never a different outcome, which is why
// capped and uncapped searches stay bit-identical in canonical stats.
type proofCache struct {
	prove map[string]proveEntry
	solve map[string]solveEntry

	// capacity is the per-map entry cap (0 = unbounded). proveLRU/solveLRU
	// order keys most-recent-first; the element maps locate a key's node.
	capacity  int
	proveLRU  *list.List
	solveLRU  *list.List
	proveElem map[string]*list.Element
	solveElem map[string]*list.Element
	evictions int64
}

type proveEntry struct {
	strategy *fol.Strategy
	outcome  fol.Outcome
}

type solveEntry struct {
	status smt.Status
	model  *smt.Model
}

func newProofCache(capacity int) *proofCache {
	c := &proofCache{
		prove:    make(map[string]proveEntry),
		solve:    make(map[string]solveEntry),
		capacity: capacity,
	}
	if capacity > 0 {
		c.proveLRU, c.solveLRU = list.New(), list.New()
		c.proveElem = make(map[string]*list.Element)
		c.solveElem = make(map[string]*list.Element)
	}
	return c
}

// getProve looks up a higher-order entry, refreshing its recency.
func (c *proofCache) getProve(key string) (proveEntry, bool) {
	e, ok := c.prove[key]
	if ok && c.capacity > 0 {
		c.proveLRU.MoveToFront(c.proveElem[key])
	}
	return e, ok
}

// putProve inserts a higher-order entry, evicting the least-recently-used
// one when the map is at capacity.
func (c *proofCache) putProve(key string, e proveEntry) {
	if _, exists := c.prove[key]; !exists && c.capacity > 0 {
		if c.proveLRU.Len() >= c.capacity {
			old := c.proveLRU.Back()
			k := old.Value.(string)
			c.proveLRU.Remove(old)
			delete(c.proveElem, k)
			delete(c.prove, k)
			c.evictions++
		}
		c.proveElem[key] = c.proveLRU.PushFront(key)
	}
	c.prove[key] = e
}

// getSolve looks up a satisfiability entry, refreshing its recency.
func (c *proofCache) getSolve(key string) (solveEntry, bool) {
	e, ok := c.solve[key]
	if ok && c.capacity > 0 {
		c.solveLRU.MoveToFront(c.solveElem[key])
	}
	return e, ok
}

// putSolve inserts a satisfiability entry, evicting the least-recently-used
// one when the map is at capacity.
func (c *proofCache) putSolve(key string, e solveEntry) {
	if _, exists := c.solve[key]; !exists && c.capacity > 0 {
		if c.solveLRU.Len() >= c.capacity {
			old := c.solveLRU.Back()
			k := old.Value.(string)
			c.solveLRU.Remove(old)
			delete(c.solveElem, k)
			delete(c.solve, k)
			c.evictions++
		}
		c.solveElem[key] = c.solveLRU.PushFront(key)
	}
	c.solve[key] = e
}

// size returns the total number of live entries across both maps.
func (c *proofCache) size() int { return len(c.prove) + len(c.solve) }

// proveKey is the higher-order cache key: sample-store version plus the
// formula's canonical string. Calling Key() here (on the coordinator, before
// fan-out) also memoizes the key fields of every shared subterm, so workers
// only ever read them.
func proveKey(alt sym.Expr, version int) string {
	return strconv.Itoa(version) + "|" + alt.Key()
}
