package search

import (
	"testing"
	"time"

	"hotg/internal/mini"
)

// TestSummaryGolden pins the exact Summary lines: the report format is parsed
// by downstream tooling and eyeballed in CI logs, so changes must be
// deliberate.
func TestSummaryGolden(t *testing.T) {
	cases := []struct {
		name  string
		stats *Stats
		want  string
	}{
		{
			name: "basic dart line",
			stats: func() *Stats {
				s := newStats("dart-sound", 4)
				s.Runs = 12
				s.TestsGenerated = 9
				s.Divergences = 1
				return s
			}(),
			want: "dart-sound           runs=12   tests=9    cov=0/8 paths=0    bugs=0 div=1",
		},
		{
			name: "prover clause appears with prover calls",
			stats: func() *Stats {
				s := newStats("higher-order", 2)
				s.Runs = 5
				s.TestsGenerated = 3
				s.ProverCalls = 7
				s.ProverProved = 4
				s.ProverInvalid = 2
				s.MultiStepChains = 1
				return s
			}(),
			want: "higher-order         runs=5    tests=3    cov=0/4 paths=0    bugs=0 div=0 prove=4/7 inv=2 multi=1",
		},
		{
			name: "cache clause appears with cache traffic",
			stats: func() *Stats {
				s := newStats("higher-order", 1)
				s.ProofCacheHits = 10
				s.ProofCacheMisses = 5
				return s
			}(),
			want: "higher-order         runs=0    tests=0    cov=0/2 paths=0    bugs=0 div=0 cache=10/15",
		},
		{
			name: "workers clause appears above one worker",
			stats: func() *Stats {
				s := newStats("higher-order", 1)
				s.Workers = 4
				s.WallTime = 1500 * time.Millisecond
				s.SolveTime = 4200 * time.Millisecond
				return s
			}(),
			want: "higher-order         runs=0    tests=0    cov=0/2 paths=0    bugs=0 div=0 workers=4 wall=1.5s solve=4.2s",
		},
		{
			name: "incomplete and exhausted flags",
			stats: func() *Stats {
				s := newStats("static", 1)
				s.Incomplete = true
				s.Exhausted = true
				return s
			}(),
			want: "static               runs=0    tests=0    cov=0/2 paths=0    bugs=0 div=0 (incomplete) (exhausted)",
		},
	}
	for _, tc := range cases {
		if got := tc.stats.Summary(); got != tc.want {
			t.Errorf("%s:\n got: %q\nwant: %q", tc.name, got, tc.want)
		}
	}
}

func TestParallelSummaryGolden(t *testing.T) {
	s := newStats("higher-order", 1)
	s.Workers = 3
	s.WallTime = 2 * time.Second
	s.SolveTime = 5 * time.Second
	s.ProofsPerWorker = []int64{10, 12, 8}
	s.ProofCacheHits = 6
	s.ProofCacheMisses = 4
	want := "workers=3 wall=2s solve=5s tasks=[10 12 8] cache=6/10"
	if got := s.ParallelSummary(); got != want {
		t.Errorf("ParallelSummary:\n got: %q\nwant: %q", got, want)
	}
}

// TestParallelSummaryEmptyForSequential: sequential searches report nothing —
// cmd/hotg prints the line only when non-empty.
func TestParallelSummaryEmptyForSequential(t *testing.T) {
	s := newStats("higher-order", 1)
	s.Workers = 1
	if got := s.ParallelSummary(); got != "" {
		t.Errorf("ParallelSummary for workers=1 = %q, want empty", got)
	}
}

// TestSummaryCoverageAndBugs exercises the computed columns (coverage, paths,
// deduplicated bug sites) through recordRun rather than field assignment.
func TestSummaryCoverageAndBugs(t *testing.T) {
	s := newStats("dart-unsound", 2)
	res := &mini.Result{
		Kind:      mini.StopError,
		ErrorSite: 3,
		ErrorMsg:  "boom",
		Branches:  []mini.BranchEvent{{ID: 0, Taken: true}, {ID: 1, Taken: false}},
	}
	s.recordRun(res, []int64{1})
	s.recordRun(res, []int64{1}) // same path and same bug: paths and bugs stay 1
	want := "dart-unsound         runs=2    tests=0    cov=2/4 paths=1    bugs=1 div=0"
	if got := s.Summary(); got != want {
		t.Errorf("Summary:\n got: %q\nwant: %q", got, want)
	}
	if len(s.Bugs) != 1 || s.Bugs[0].Run != 1 {
		t.Errorf("bug dedup failed: %v", s.Bugs)
	}
}
