package search

import (
	"hotg/internal/mini"
	"hotg/internal/sym"
)

// sliceAlt computes the classic DART/SAGE "related constraints" optimization:
// from the alternate path constraint prefix ∧ ¬c_k, keep only the conjuncts
// that transitively share input variables with the negated constraint. The
// dropped conjuncts are satisfied by keeping their variables at the parent
// input's values (the parent run satisfied every prefix conjunct), so a
// solution of the slice extends to a solution of the full alternate
// constraint — at a fraction of the solving cost.
func sliceAlt(prefix []sym.Expr, negated sym.Expr) sym.Expr {
	entries := make([]sliceEntry, 0, len(prefix))
	for _, e := range prefix {
		entries = append(entries, sliceEntry{expr: e, vars: varIDs(e)})
	}
	return sliceAltPre(entries, negated)
}

// sliceEntry is one prefix conjunct with its variable set precomputed, so a
// caller slicing the same growing prefix against many negated constraints
// (expand) extracts each conjunct's variables once instead of once per target.
type sliceEntry struct {
	expr sym.Expr
	vars []int
}

// sliceAltPre is sliceAlt over a prefix whose variable sets are already
// known. It never mutates entries, which the caller keeps across calls.
func sliceAltPre(entries []sliceEntry, negated sym.Expr) sym.Expr {
	used := make([]bool, len(entries))
	reach := map[int]bool{}
	for _, id := range varIDs(negated) {
		reach[id] = true
	}
	for changed := true; changed; {
		changed = false
		for i := range entries {
			if used[i] {
				continue
			}
			hit := false
			for _, id := range entries[i].vars {
				if reach[id] {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
			used[i] = true
			changed = true
			for _, id := range entries[i].vars {
				reach[id] = true
			}
		}
	}
	parts := make([]sym.Expr, 0, len(entries)+1)
	for i, e := range entries {
		if used[i] {
			parts = append(parts, e.expr)
		}
	}
	parts = append(parts, negated)
	return sym.AndExpr(parts...)
}

func varIDs(e sym.Expr) []int {
	vs := sym.Vars(e)
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = v.ID
	}
	return out
}

// depIDs is varIDs extended with a pseudo-ID for every function-valued-input
// symbol the expression applies. Two constraints mentioning the same callback
// are coupled through the function table even when they share no scalar
// variables (p(3)==1 and p(5)==7 both constrain p), so variable-only slicing
// would unsoundly separate them. Input symbols map to the negative range
// -(ID+1), which cannot collide with variable IDs; environment functions
// (natives, unknown instructions) keep their ground truth across tests and
// need no coupling.
func depIDs(e sym.Expr) []int {
	out := varIDs(e)
	for _, a := range sym.Applies(e) {
		if a.Fn.Input {
			out = append(out, -(a.Fn.ID + 1))
		}
	}
	return out
}

// hasInputFn reports whether the formula applies any function-valued input —
// the marker routing a target to the callback-synthesis path.
func hasInputFn(e sym.Expr) bool {
	for _, a := range sym.Applies(e) {
		if a.Fn.Input {
			return true
		}
	}
	return false
}

// targetKey identifies a flip attempt: the predicted trace (which encodes the
// path prefix and the flipped event) plus the negated constraint. Identical
// targets from different parents would generate identical tests, so they are
// solved at most once.
func targetKey(expected []mini.BranchEvent, negated sym.Expr) string {
	buf := make([]byte, len(expected), len(expected)+32)
	for i, ev := range expected {
		c := byte('0')
		if ev.Taken {
			c = '1'
		}
		// Mix the branch ID into the signature.
		buf[i] = c ^ byte(ev.ID<<1)
	}
	return string(buf) + "|" + negated.Key()
}
