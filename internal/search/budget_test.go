package search_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/faults"
	"hotg/internal/lexapp"
	"hotg/internal/search"
)

// budgetLine renders the deterministic budget observables (everything except
// wall-clock-dependent splits, which the callers below keep deterministic by
// construction: injected faults fire on every call, so no outcome depends on
// how fast the host is).
func budgetLine(st *search.Stats) string {
	bs := st.Budget
	return fmt.Sprintf("timeouts=%d panics=%d execfail=%d degraded=%d/%d rungs=%v timedout=%v cancelled=%v",
		bs.ProofTimeouts, bs.ProverPanics, bs.ExecFailures, bs.DegradedQF, bs.DegradedConc,
		bs.TestsByRung, bs.TimedOut, bs.Cancelled)
}

// TestGenerousBudgetBitIdentical checks the pay-when-fired contract: a budget
// whose ceilings never fire must leave the whole search trajectory — runs,
// tests, coverage, bugs, prover verdicts, cache traffic — bit-identical to an
// unbudgeted search, at one worker and at many.
func TestGenerousBudgetBitIdentical(t *testing.T) {
	w := lexapp.Lexer()
	base := fingerprint(runWorkers(w, concolic.ModeHigherOrder, search.Options{MaxRuns: 80}, 1, false))
	generous := search.Budget{ProofTimeout: time.Hour, TargetTimeout: time.Hour, SearchTimeout: time.Hour}
	for _, workers := range []int{1, 4} {
		st := runWorkers(lexapp.Lexer(), concolic.ModeHigherOrder,
			search.Options{MaxRuns: 80, Budget: generous}, workers, false)
		if got := fingerprint(st); got != base {
			t.Errorf("workers=%d: generous budget changed the trajectory\n--- unbudgeted:\n%s--- budgeted:\n%s",
				workers, base, got)
		}
		if st.Budget.ProofTimeouts != 0 || st.Budget.Degraded() != 0 || st.Budget.TimedOut {
			t.Errorf("workers=%d: generous ceilings fired: %s", workers, budgetLine(st))
		}
		if !st.Budget.Configured {
			t.Errorf("workers=%d: Budget.Configured not set despite ceilings", workers)
		}
	}
}

// TestDegradeDeterministicAcrossWorkers checks that the degradation ladder
// preserves the parallel-exactness guarantee when nothing wall-clock-dependent
// fires: with every proof cut by an injected (deterministic) timeout, the
// degraded trajectory and the budget section are bit-identical at every
// worker count.
func TestDegradeDeterministicAcrossWorkers(t *testing.T) {
	defer faults.Set(&faults.Plan{ProveTimeout: true})()
	run := func(workers int) *search.Stats {
		return runWorkers(lexapp.Lexer(), concolic.ModeHigherOrder,
			search.Options{MaxRuns: 80, Budget: search.Budget{Degrade: true}}, workers, false)
	}
	ref := run(1)
	base := fingerprint(ref) + budgetLine(ref)
	if ref.Budget.ProofTimeouts == 0 {
		t.Fatal("injected prover timeouts never fired")
	}
	for _, workers := range []int{2, 8} {
		st := run(workers)
		if got := fingerprint(st) + budgetLine(st); got != base {
			t.Errorf("workers=%d: degraded trajectory differs\n--- workers=1:\n%s\n--- workers=%d:\n%s",
				workers, base, workers, got)
		}
	}
}

// TestDegradedLadderKeepsDARTFloor is the graceful-degradation acceptance
// check: with every validity proof cut short, the higher-order search must
// fall to the lower rungs and still generate at least as many tests — and
// cover at least as many branch sides — as plain DART, because rung 2 still
// reasons over recorded samples and rung 1 replicates DART's concretization.
func TestDegradedLadderKeepsDARTFloor(t *testing.T) {
	dart := runWorkers(lexapp.Lexer(), concolic.ModeUnsound, search.Options{MaxRuns: 120}, 1, false)
	restore := faults.Set(&faults.Plan{ProveTimeout: true})
	ladder := runWorkers(lexapp.Lexer(), concolic.ModeHigherOrder,
		search.Options{MaxRuns: 120, Budget: search.Budget{Degrade: true}}, 1, false)
	restore()
	if ladder.ProverProved != 0 {
		t.Fatalf("expected every proof cut short, got %d proved", ladder.ProverProved)
	}
	if ladder.Budget.Degraded() == 0 || ladder.Budget.TestsByRung[search.RungProof] != 0 {
		t.Fatalf("expected a fully degraded run, got %s", budgetLine(ladder))
	}
	if ladder.TestsGenerated < dart.TestsGenerated {
		t.Errorf("degraded ladder generated %d tests, below plain DART's %d",
			ladder.TestsGenerated, dart.TestsGenerated)
	}
	if ladder.BranchSidesCovered() < dart.BranchSidesCovered() {
		t.Errorf("degraded ladder covered %d branch sides, below plain DART's %d",
			ladder.BranchSidesCovered(), dart.BranchSidesCovered())
	}
	if !strings.Contains(ladder.Summary(), "rungs=") {
		t.Errorf("Summary misses the budget section: %s", ladder.Summary())
	}
	if ladder.BudgetSummary() == "" {
		t.Error("BudgetSummary empty for a degraded run")
	}
}

// TestTightWallClockBudgetCompletes exercises a real (machine-dependent)
// per-proof deadline: the search must complete within its run budget and
// report its budget activity, whatever the host speed makes of 1ms.
func TestTightWallClockBudgetCompletes(t *testing.T) {
	st := runWorkers(lexapp.Lexer(), concolic.ModeHigherOrder,
		search.Options{MaxRuns: 60, Budget: search.Budget{ProofTimeout: time.Millisecond, Degrade: true}},
		4, false)
	if st.Runs > 60 {
		t.Errorf("run budget overrun: %d runs", st.Runs)
	}
	if !st.Budget.Configured {
		t.Error("budget not reported as configured")
	}
}

// TestSearchTimeoutReturnsPartialResults checks the search-wide ceiling: a
// deadline far below the workload's natural runtime stops all workers
// promptly and returns well-formed partial statistics flagged TimedOut.
func TestSearchTimeoutReturnsPartialResults(t *testing.T) {
	start := time.Now()
	st := runWorkers(lexapp.Lexer(), concolic.ModeHigherOrder,
		search.Options{MaxRuns: 100000, Budget: search.Budget{SearchTimeout: 50 * time.Millisecond}},
		4, false)
	elapsed := time.Since(start)
	if !st.Budget.TimedOut {
		t.Fatalf("expected TimedOut, got %s", budgetLine(st))
	}
	if st.Runs >= 100000 {
		t.Errorf("expected partial results, got %d runs", st.Runs)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation was not prompt: search took %v after a 50ms deadline", elapsed)
	}
	if !strings.Contains(st.Summary(), "(timed out)") {
		t.Errorf("Summary misses the timeout marker: %s", st.Summary())
	}
	// Partial stats must still be internally consistent.
	if st.Runs != len(st.CovTrace) {
		t.Errorf("CovTrace length %d does not match %d runs", len(st.CovTrace), st.Runs)
	}
	if st.Exhausted {
		t.Error("a timed-out search must not report exhaustion")
	}
}

// TestExternalCancellation checks cooperative cancellation through a caller
// context: cancel mid-search, get partial results flagged Cancelled.
func TestExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	st := runWorkers(lexapp.Lexer(), concolic.ModeHigherOrder,
		search.Options{MaxRuns: 100000, Ctx: ctx}, 4, false)
	if !st.Budget.Cancelled {
		t.Fatalf("expected Cancelled, got %s", budgetLine(st))
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation was not prompt: %v", elapsed)
	}
	if !strings.Contains(st.Summary(), "(cancelled)") {
		t.Errorf("Summary misses the cancel marker: %s", st.Summary())
	}
}

// TestZeroBudgetIsInert pins the zero-value contract at the Options level:
// constructing the search with an explicit zero Budget must not print a
// budget section anywhere.
func TestZeroBudgetIsInert(t *testing.T) {
	st := runWorkers(lexapp.Lexer(), concolic.ModeHigherOrder,
		search.Options{MaxRuns: 20, Budget: search.Budget{}}, 1, false)
	if st.Budget.Configured {
		t.Error("zero Budget reported as configured")
	}
	if strings.Contains(st.Summary(), "rungs=") {
		t.Errorf("zero Budget leaked into Summary: %s", st.Summary())
	}
	if st.BudgetSummary() != "" {
		t.Errorf("zero Budget produced a BudgetSummary: %s", st.BudgetSummary())
	}
}
