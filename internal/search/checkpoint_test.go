package search_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"hotg/internal/concolic"
	"hotg/internal/lexapp"
	"hotg/internal/obs"
	"hotg/internal/search"
)

// boundaryKinds are session markers, not search events: they appear at
// different positions (or not at all) depending on where a session starts and
// stops, so cross-session stream comparisons filter them (DESIGN.md §9).
var boundaryKinds = map[string]bool{
	"run_start": true, "run_end": true, "resume": true,
	"cancel": true, "checkpoint": true, "checkpoint_error": true,
}

// canonicalLine renders one event for cross-session comparison: the canonical
// projection (no timestamps/durations/worker IDs) with the sequence number
// also stripped, since a resumed session restarts its tracer at zero.
func canonicalLine(ev obs.Event) string {
	ev.Seq, ev.TS, ev.Dur, ev.Worker = 0, 0, 0, 0
	b, err := json.Marshal(ev)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// filteredStream returns the comparable event lines of a whole session.
func filteredStream(o *obs.Obs) []string {
	var out []string
	for _, ev := range o.Trace.Events() {
		if boundaryKinds[ev.Kind] {
			continue
		}
		out = append(out, canonicalLine(ev))
	}
	return out
}

// streamAfterCheckpoint returns the comparable event lines that follow the
// n-th (1-based) checkpoint event of a session.
func streamAfterCheckpoint(o *obs.Obs, n int) []string {
	seen := 0
	var out []string
	for _, ev := range o.Trace.Events() {
		if ev.Kind == "checkpoint" {
			seen++
			continue
		}
		if boundaryKinds[ev.Kind] || seen < n {
			continue
		}
		out = append(out, canonicalLine(ev))
	}
	return out
}

func diffLines(t *testing.T, label string, want, got []string) {
	t.Helper()
	for i := 0; i < len(want) && i < len(got); i++ {
		if want[i] != got[i] {
			t.Fatalf("%s: streams diverge at event %d:\nuninterrupted: %s\nresumed:       %s",
				label, i+1, want[i], got[i])
		}
	}
	if len(want) != len(got) {
		t.Fatalf("%s: stream length differs: uninterrupted %d events, resumed %d", label, len(want), len(got))
	}
}

// checkpointedRun performs one traced search that snapshots every `every`
// runs, returning the observer, stats, and collected snapshots (re-decoded
// from JSON, as a campaign store would hand them back).
func checkpointedRun(t *testing.T, w *lexapp.Workload, mode concolic.Mode, opts search.Options, workers, every int) (*obs.Obs, *search.Stats, []*search.Snapshot) {
	t.Helper()
	eng := concolic.New(w.Build(), mode)
	o := obs.New()
	o.Trace = obs.NewTracer(nil).Keep()
	if opts.Seeds == nil {
		opts.Seeds = w.Seeds
	}
	if opts.Bounds == nil {
		opts.Bounds = w.Bounds
	}
	opts.Workers = workers
	opts.Obs = o
	var snaps []*search.Snapshot
	opts.Checkpoint = search.CheckpointOptions{
		Every: every,
		Sink: func(s *search.Snapshot) error {
			// Round-trip through JSON: resumption in production reads bytes
			// from disk, and the round trip catches any field the codec
			// misses.
			raw, err := json.Marshal(s)
			if err != nil {
				return err
			}
			var cp search.Snapshot
			if err := json.Unmarshal(raw, &cp); err != nil {
				return err
			}
			snaps = append(snaps, &cp)
			return nil
		},
	}
	st := search.Run(eng, opts)
	return o, st, snaps
}

// resumeRun restores a snapshot into a fresh engine and runs to completion
// with the same search configuration.
func resumeRun(t *testing.T, w *lexapp.Workload, mode concolic.Mode, opts search.Options, workers int, snap *search.Snapshot) (*obs.Obs, *search.Stats) {
	t.Helper()
	eng := concolic.New(w.Build(), mode)
	if err := snap.Validate(eng); err != nil {
		t.Fatalf("snapshot failed validation: %v", err)
	}
	o := obs.New()
	o.Trace = obs.NewTracer(nil).Keep()
	if opts.Seeds == nil {
		opts.Seeds = w.Seeds
	}
	if opts.Bounds == nil {
		opts.Bounds = w.Bounds
	}
	opts.Workers = workers
	opts.Obs = o
	opts.Restore = snap
	st := search.Run(eng, opts)
	if !st.Resumed {
		t.Fatal("restored run did not set Stats.Resumed")
	}
	return o, st
}

func mustCanonical(t *testing.T, st *search.Stats) string {
	t.Helper()
	b, err := st.Canonical()
	if err != nil {
		t.Fatalf("Stats.Canonical: %v", err)
	}
	return string(b)
}

// TestCheckpointResumeDeterminism is the campaign acceptance test: for the
// lexer/foo/bar/kstep workloads, kill a search at an arbitrary checkpoint and
// resume it in a fresh process (fresh engine, snapshot round-tripped through
// JSON) — the final Stats, TestsByRung, and the canonical trace stream are
// identical to the uninterrupted run, at workers 1 and 4.
func TestCheckpointResumeDeterminism(t *testing.T) {
	cases := []struct {
		workload string
		opts     search.Options
		every    int
	}{
		{"lexer", search.Options{MaxRuns: 120}, 10},
		{"foo", search.Options{MaxRuns: 60}, 2},
		{"bar", search.Options{MaxRuns: 60}, 2},
		{"kstep-2", search.Options{MaxRuns: 60, MaxMultiStep: 4}, 2},
	}
	for _, tc := range cases {
		w, ok := lexapp.Get(tc.workload)
		if !ok {
			t.Fatalf("workload %q not registered", tc.workload)
		}
		for _, workers := range []int{1, 4} {
			base, baseStats, snaps := checkpointedRun(t, w, concolic.ModeHigherOrder, tc.opts, workers, tc.every)
			if len(snaps) == 0 {
				t.Fatalf("%s workers=%d: no checkpoints taken (runs=%d, every=%d)",
					tc.workload, workers, baseStats.Runs, tc.every)
			}
			if baseStats.Checkpoints != len(snaps) {
				t.Errorf("%s workers=%d: Stats.Checkpoints=%d, sink saw %d",
					tc.workload, workers, baseStats.Checkpoints, len(snaps))
			}
			// "Arbitrary checkpoint": the middle one, plus the first to cover
			// the longest replay tail.
			for _, idx := range []int{0, len(snaps) / 2} {
				o, st := resumeRun(t, w, concolic.ModeHigherOrder, tc.opts, workers, snaps[idx])
				label := tc.workload
				if got, want := mustCanonical(t, st), mustCanonical(t, baseStats); got != want {
					t.Errorf("%s workers=%d resume@%d: final stats differ:\nuninterrupted: %s\nresumed:       %s",
						label, workers, idx, want, got)
				}
				if st.Budget.TestsByRung != baseStats.Budget.TestsByRung {
					t.Errorf("%s workers=%d resume@%d: TestsByRung %v != %v",
						label, workers, idx, st.Budget.TestsByRung, baseStats.Budget.TestsByRung)
				}
				diffLines(t, label, streamAfterCheckpoint(base, idx+1), filteredStream(o))
			}
		}
	}
}

// TestCheckpointResumeCallback extends the kill-and-resume drill to
// function-valued inputs: on every callback workload, a higher-order search
// killed at an arbitrary checkpoint and resumed in a fresh process (snapshot
// round-tripped through JSON) reproduces the uninterrupted run's canonical
// stats byte-for-byte, at workers 1 and 4 — so synthesized decision tables
// survive the snapshot codec in both the work queue and the bug reports.
func TestCheckpointResumeCallback(t *testing.T) {
	for _, wl := range lexapp.CallbackWorkloads() {
		opts := search.Options{MaxRuns: 60}
		for _, workers := range []int{1, 4} {
			base, baseStats, snaps := checkpointedRun(t, wl, concolic.ModeHigherOrder, opts, workers, 1)
			if len(snaps) == 0 {
				t.Fatalf("%s workers=%d: no checkpoints taken (runs=%d)", wl.Name, workers, baseStats.Runs)
			}
			if len(baseStats.ErrorSitesFound()) == 0 {
				t.Fatalf("%s workers=%d: baseline found no bug", wl.Name, workers)
			}
			for _, idx := range []int{0, len(snaps) / 2} {
				o, st := resumeRun(t, wl, concolic.ModeHigherOrder, opts, workers, snaps[idx])
				label := wl.Name
				if got, want := mustCanonical(t, st), mustCanonical(t, baseStats); got != want {
					t.Errorf("%s workers=%d resume@%d: final stats differ:\nuninterrupted: %s\nresumed:       %s",
						label, workers, idx, want, got)
				}
				for _, bug := range st.Bugs {
					if len(bug.Funcs) == 0 {
						t.Errorf("%s workers=%d resume@%d: resumed bug lost its function inputs: %v",
							label, workers, idx, bug)
					}
				}
				diffLines(t, label, streamAfterCheckpoint(base, idx+1), filteredStream(o))
			}
		}
	}
}

// TestCheckpointResumeAcrossWorkerCounts extends the PR 1 guarantee across
// the process boundary in the mixed case: a snapshot taken at workers=1,
// resumed at workers=4, still lands on the same final state.
func TestCheckpointResumeAcrossWorkerCounts(t *testing.T) {
	w, _ := lexapp.Get("lexer")
	opts := search.Options{MaxRuns: 120}
	_, baseStats, snaps := checkpointedRun(t, w, concolic.ModeHigherOrder, opts, 1, 10)
	if len(snaps) < 2 {
		t.Fatalf("want ≥2 checkpoints, got %d", len(snaps))
	}
	_, st := resumeRun(t, w, concolic.ModeHigherOrder, opts, 4, snaps[len(snaps)/2])
	if got, want := mustCanonical(t, st), mustCanonical(t, baseStats); got != want {
		t.Errorf("resume at workers=4 of a workers=1 snapshot diverged:\nuninterrupted: %s\nresumed:       %s", want, got)
	}
}

// TestCheckpointResumeSatMode covers the satisfiability cache restore path
// (solve entries with models) on a non-higher-order mode.
func TestCheckpointResumeSatMode(t *testing.T) {
	w, _ := lexapp.Get("lexer")
	opts := search.Options{MaxRuns: 60}
	_, baseStats, snaps := checkpointedRun(t, w, concolic.ModeSound, opts, 4, 5)
	if len(snaps) == 0 {
		t.Fatal("no checkpoints taken")
	}
	_, st := resumeRun(t, w, concolic.ModeSound, opts, 4, snaps[len(snaps)/2])
	if got, want := mustCanonical(t, st), mustCanonical(t, baseStats); got != want {
		t.Errorf("sat-mode resume diverged:\nuninterrupted: %s\nresumed:       %s", want, got)
	}
}

// TestSnapshotBytesStableAcrossResume: resuming from checkpoint i and
// checkpointing again reproduces the uninterrupted run's checkpoint i+1
// byte-for-byte — the durable artifacts themselves, not just the in-memory
// trajectory, are process-independent.
func TestSnapshotBytesStableAcrossResume(t *testing.T) {
	w, _ := lexapp.Get("lexer")
	opts := search.Options{MaxRuns: 120}
	_, _, snaps := checkpointedRun(t, w, concolic.ModeHigherOrder, opts, 1, 10)
	if len(snaps) < 3 {
		t.Fatalf("want ≥3 checkpoints, got %d", len(snaps))
	}
	idx := len(snaps) / 2
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	var resumedSnaps []*search.Snapshot
	opts.Seeds, opts.Bounds, opts.Workers = w.Seeds, w.Bounds, 1
	opts.Restore = snaps[idx]
	opts.Checkpoint = search.CheckpointOptions{
		Every: 10,
		Sink:  func(s *search.Snapshot) error { resumedSnaps = append(resumedSnaps, s); return nil },
	}
	search.Run(eng, opts)
	if len(resumedSnaps) == 0 {
		t.Fatal("resumed session took no checkpoints")
	}
	want, err := json.Marshal(snaps[idx+1])
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(resumedSnaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("checkpoint %d differs between uninterrupted and resumed sessions:\nuninterrupted: %.400s\nresumed:       %.400s",
			idx+1, want, got)
	}
}

// TestSnapshotValidateRejects exercises the compatibility checks: version
// drift, mode and program mismatches, and non-fresh engines all fail loudly.
func TestSnapshotValidateRejects(t *testing.T) {
	w, _ := lexapp.Get("foo")
	_, _, snaps := checkpointedRun(t, w, concolic.ModeHigherOrder, search.Options{MaxRuns: 40}, 1, 2)
	if len(snaps) == 0 {
		t.Fatal("no checkpoints taken")
	}
	snap := snaps[0]

	bad := *snap
	bad.FormatVersion = search.SnapshotFormatVersion + 1
	if err := bad.Validate(concolic.New(w.Build(), concolic.ModeHigherOrder)); err == nil {
		t.Error("future format version accepted")
	}
	if err := snap.Validate(concolic.New(w.Build(), concolic.ModeSound)); err == nil {
		t.Error("mode mismatch accepted")
	}
	other, _ := lexapp.Get("lexer")
	if err := snap.Validate(concolic.New(other.Build(), concolic.ModeHigherOrder)); err == nil {
		t.Error("program mismatch accepted")
	}
	if err := snap.Validate(concolic.New(w.Build(), concolic.ModeHigherOrder)); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}

// TestCheckpointSinkFailure: a failing sink is reported once, disables
// further checkpointing, and does not disturb the search.
func TestCheckpointSinkFailure(t *testing.T) {
	w, _ := lexapp.Get("foo")
	eng := concolic.New(w.Build(), concolic.ModeHigherOrder)
	calls := 0
	st := search.Run(eng, search.Options{
		MaxRuns: 40, Seeds: w.Seeds, Bounds: w.Bounds, Workers: 1,
		Checkpoint: search.CheckpointOptions{
			Every: 2,
			Sink:  func(*search.Snapshot) error { calls++; return errors.New("disk full") },
		},
	})
	if calls != 1 {
		t.Errorf("failing sink called %d times, want 1", calls)
	}
	if st.Checkpoints != 0 {
		t.Errorf("Stats.Checkpoints = %d after sink failure, want 0", st.Checkpoints)
	}
	if st.CheckpointError == "" {
		t.Error("Stats.CheckpointError empty after sink failure")
	}
	ref := search.Run(concolic.New(w.Build(), concolic.ModeHigherOrder),
		search.Options{MaxRuns: 40, Seeds: w.Seeds, Bounds: w.Bounds, Workers: 1})
	if got, want := mustCanonical(t, st), mustCanonical(t, ref); got != want {
		t.Errorf("sink failure changed the trajectory:\nplain:       %s\nfailing-sink: %s", want, got)
	}
}
