// Package search implements the systematic directed search of DART/SAGE
// (Section 2 of the paper) on top of the concolic engine: run the program,
// negate path-constraint conjuncts, generate new inputs, detect divergences,
// and repeat. Depending on the engine's mode, new inputs come from
// satisfiability checks (static/DART modes) or from constructive validity
// proofs with uninterpreted function samples (higher-order mode), including
// the multi-step probe sequences of Example 7.
package search

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hotg/internal/mini"
)

// Bug is one discovered defect: an error(...) site or a runtime fault.
type Bug struct {
	Kind  mini.StopKind
	Site  int    // error-site ID for StopError, -1 for faults
	Msg   string // error message or fault description
	Input []int64
	// Funcs are the function-valued inputs of the discovering run, in
	// canonical text, one per function parameter (nil for first-order
	// programs — omitted from serialized stats so their bytes are unchanged).
	Funcs []string `json:"Funcs,omitempty"`
	Run   int      // which execution found it (1-based)
}

func (b Bug) String() string {
	if len(b.Funcs) > 0 {
		return fmt.Sprintf("run %d: %s %q input=%v funcs=%v", b.Run, b.Kind, b.Msg, b.Input, b.Funcs)
	}
	return fmt.Sprintf("run %d: %s %q input=%v", b.Run, b.Kind, b.Msg, b.Input)
}

// Stats aggregates the outcome of one search.
type Stats struct {
	Mode string

	Runs              int // program executions performed
	TestsGenerated    int // inputs produced by constraint solving / strategies
	IntermediateTests int // extra executions run only to collect samples (multi-step)

	Divergences int // generated tests whose run left the predicted path

	SolverCalls   int // satisfiability queries
	SolverSat     int
	ProverCalls   int // validity-proof attempts (higher-order mode)
	ProverProved  int
	ProverInvalid int
	ProverUnknown int

	MultiStepChains int // targets that needed ≥1 intermediate test
	SamplesLearned  int // IOF entries accumulated

	// CallbackTargets counts targets whose alternate constraint mentions a
	// function-valued input; FuncsSynthesized counts the decision tables the
	// search invented for them (tier-2 witness construction). Both are part
	// of the canonical trajectory — callback targets are discharged in
	// constraint order on the coordinator.
	CallbackTargets  int
	FuncsSynthesized int

	// Workers is the resolved worker count the search ran with.
	Workers int
	// ProofCacheHits and ProofCacheMisses account the formula-keyed proof
	// cache, in coordinator apply order — deterministic at any worker count.
	ProofCacheHits   int
	ProofCacheMisses int
	// ProofCacheEvictions counts LRU evictions from a capped proof cache
	// (Options.CacheCap); zero for unbounded runs. Deterministic at any
	// worker count, but session-local like Resumed: a resumed session
	// rebuilds recency from the snapshot's sorted entries, so the count is
	// resource bookkeeping, not trajectory — absent from snapshots and
	// Canonical.
	ProofCacheEvictions int64
	// ProofsPerWorker[w] counts the prover/solver tasks worker w executed.
	// The total is deterministic; the split depends on scheduling.
	ProofsPerWorker []int64
	// WallTime is the elapsed time of the whole search; SolveTime is the sum
	// of the individual prover/solver task durations across all workers.
	// SolveTime greater than WallTime is the parallel speedup showing up.
	WallTime  time.Duration
	SolveTime time.Duration

	// Checkpoints counts coordinator-state snapshots taken, cumulatively
	// across resumed sessions (a restored snapshot carries its count).
	Checkpoints int
	// CheckpointError holds the first checkpoint-sink failure, after which
	// checkpointing was disabled for the rest of the search ("" = none).
	// Session-local: not part of snapshots or Canonical.
	CheckpointError string
	// Resumed reports that this session was restored from a snapshot.
	// Session-local: not part of snapshots or Canonical.
	Resumed bool
	// DispatchError holds the first Options.Dispatch failure, which stopped
	// the search at the next boundary ("" = none); Budget.Cancelled is set
	// alongside it. Session-local: not part of snapshots or Canonical.
	DispatchError string

	// Budget is the resource-budget and degradation section: what the
	// ceilings cut short, which ladder rungs produced the tests, and whether
	// the search ended early. Zero-valued (and absent from Summary) for
	// unbudgeted runs.
	Budget BudgetStats

	Incomplete bool // some branch produced no constraint (static mode)

	// Exhausted reports that the search drained its entire worklist before
	// hitting the execution budget. Together with sound *and complete*
	// constraint generation (pure programs, no unknown functions), this is
	// the verification condition of Theorem 1: every feasible path was
	// exercised, so unexecuted statements are unreachable.
	Exhausted bool

	// Coverage: per branch point, whether each polarity was executed.
	branchCov map[int]*[2]bool
	numBranch int

	// Bugs, deduplicated by site/message.
	Bugs    []Bug
	bugSeen map[string]bool

	// Paths explored (distinct branch traces).
	paths map[string]bool

	// CovTrace[i] is the cumulative branch-side coverage after run i+1 —
	// the series behind coverage-vs-runs plots.
	CovTrace []int
}

// BudgetStats accounts resource-budget activity during one search: proofs cut
// short, targets degraded down the precision ladder, recovered failures, and
// how the generated tests distribute over the ladder rungs.
type BudgetStats struct {
	// Configured reports that a budget ceiling, the degradation ladder, or an
	// external cancellation context was supplied to the search.
	Configured bool
	// ProofTimeouts counts proof and satisfiability attempts cut off by a
	// wall-clock deadline, including degraded-rung retries.
	ProofTimeouts int
	// ProverPanics counts validity proofs that panicked and were recovered;
	// each is treated as an unknown (degradable) outcome.
	ProverPanics int
	// ExecFailures counts program executions that panicked inside the engine
	// and were dropped (the input is consumed, no run is recorded).
	ExecFailures int
	// DegradedQF and DegradedConc count targets that finished on the
	// quantifier-free and concretization rungs after their validity proof was
	// cut short — each one is precision given up to stay within budget.
	DegradedQF   int
	DegradedConc int
	// TestsByRung counts generated tests by the ladder rung that produced
	// them. Higher-order searches generate at RungProof unless degraded;
	// lower modes generate at RungQF.
	TestsByRung [NumRungs]int
	// TimedOut and Cancelled report that the search ended early — on a fired
	// deadline or an explicit context cancellation — with partial results.
	TimedOut  bool
	Cancelled bool
}

// Degraded returns how many targets fell below the proof rung.
func (b BudgetStats) Degraded() int { return b.DegradedQF + b.DegradedConc }

// show reports whether the budget section carries any information worth
// printing: a budget was configured or some budget event fired.
func (b BudgetStats) show() bool {
	return b.Configured || b.ProofTimeouts > 0 || b.ProverPanics > 0 || b.ExecFailures > 0 ||
		b.Degraded() > 0 || b.TimedOut || b.Cancelled
}

// NewFuzzStats creates a Stats collector for the blackbox-random baseline.
func NewFuzzStats(numBranches int) *Stats {
	return newStats("blackbox-random", numBranches)
}

// RecordFuzzRun records one baseline execution.
func (s *Stats) RecordFuzzRun(res *mini.Result, input []int64) {
	s.recordRun(res, input)
}

func newStats(mode string, numBranches int) *Stats {
	return &Stats{
		Mode:      mode,
		branchCov: make(map[int]*[2]bool),
		numBranch: numBranches,
		bugSeen:   make(map[string]bool),
		paths:     make(map[string]bool),
	}
}

// recordRun accounts one execution and returns how many previously-uncovered
// branch sides it covered (the generational-search score of SAGE).
func (s *Stats) recordRun(res *mini.Result, input []int64) int {
	return s.recordRunFuncs(res, input, nil)
}

// recordRunFuncs is recordRun for runs carrying function-valued inputs; the
// canonical renderings ride on any bug the run records.
func (s *Stats) recordRunFuncs(res *mini.Result, input []int64, funcs []string) int {
	s.Runs++
	gained := 0
	for _, ev := range res.Branches {
		c := s.branchCov[ev.ID]
		if c == nil {
			c = new([2]bool)
			s.branchCov[ev.ID] = c
		}
		side := 0
		if ev.Taken {
			side = 1
		}
		if !c[side] {
			c[side] = true
			gained++
		}
	}
	s.paths[res.Path()] = true
	s.CovTrace = append(s.CovTrace, s.BranchSidesCovered())
	switch res.Kind {
	case mini.StopError:
		s.addBug(Bug{Kind: res.Kind, Site: res.ErrorSite, Msg: res.ErrorMsg, Input: input, Funcs: funcs, Run: s.Runs})
	case mini.StopRuntime:
		s.addBug(Bug{Kind: res.Kind, Site: -1, Msg: res.RuntimeMsg, Input: input, Funcs: funcs, Run: s.Runs})
	}
	return gained
}

func (s *Stats) addBug(b Bug) {
	key := fmt.Sprintf("%d/%d/%s", b.Kind, b.Site, b.Msg)
	if s.bugSeen[key] {
		return
	}
	s.bugSeen[key] = true
	cp := make([]int64, len(b.Input))
	copy(cp, b.Input)
	b.Input = cp
	s.Bugs = append(s.Bugs, b)
}

// SideCovered reports whether the given polarity of branch id was executed.
func (s *Stats) SideCovered(id int, taken bool) bool {
	c := s.branchCov[id]
	if c == nil {
		return false
	}
	if taken {
		return c[1]
	}
	return c[0]
}

// BranchSidesCovered returns how many of the 2·NumBranches branch polarities
// were executed.
func (s *Stats) BranchSidesCovered() int {
	n := 0
	for _, c := range s.branchCov {
		if c[0] {
			n++
		}
		if c[1] {
			n++
		}
	}
	return n
}

// BranchSidesTotal returns 2 × the number of static branch points.
func (s *Stats) BranchSidesTotal() int { return 2 * s.numBranch }

// Coverage returns branch-side coverage in [0,1].
func (s *Stats) Coverage() float64 {
	if s.numBranch == 0 {
		return 1
	}
	return float64(s.BranchSidesCovered()) / float64(s.BranchSidesTotal())
}

// Paths returns the number of distinct control paths executed.
func (s *Stats) Paths() int { return len(s.paths) }

// ErrorSitesFound returns the distinct error-site IDs reached.
func (s *Stats) ErrorSitesFound() []int {
	var out []int
	seen := map[int]bool{}
	for _, b := range s.Bugs {
		if b.Kind == mini.StopError && !seen[b.Site] {
			seen[b.Site] = true
			out = append(out, b.Site)
		}
	}
	sort.Ints(out)
	return out
}

// Summary renders a one-line report.
func (s *Stats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s runs=%-4d tests=%-4d cov=%d/%d paths=%-4d bugs=%d div=%d",
		s.Mode, s.Runs, s.TestsGenerated, s.BranchSidesCovered(), s.BranchSidesTotal(),
		s.Paths(), len(s.ErrorSitesFound()), s.Divergences)
	if s.ProverCalls > 0 {
		fmt.Fprintf(&b, " prove=%d/%d inv=%d multi=%d", s.ProverProved, s.ProverCalls,
			s.ProverInvalid, s.MultiStepChains)
	}
	if s.ProofCacheHits+s.ProofCacheMisses > 0 {
		fmt.Fprintf(&b, " cache=%d/%d", s.ProofCacheHits, s.ProofCacheHits+s.ProofCacheMisses)
	}
	if s.Budget.show() {
		fmt.Fprintf(&b, " rungs=%d/%d/%d degraded=%d timeouts=%d",
			s.Budget.TestsByRung[RungProof], s.Budget.TestsByRung[RungQF],
			s.Budget.TestsByRung[RungConcretize], s.Budget.Degraded(), s.Budget.ProofTimeouts)
	}
	if s.Workers > 1 {
		fmt.Fprintf(&b, " workers=%d wall=%v solve=%v", s.Workers,
			s.WallTime.Round(time.Millisecond), s.SolveTime.Round(time.Millisecond))
	}
	if s.Incomplete {
		b.WriteString(" (incomplete)")
	}
	if s.Exhausted {
		b.WriteString(" (exhausted)")
	}
	if s.Budget.TimedOut {
		b.WriteString(" (timed out)")
	}
	if s.Budget.Cancelled {
		b.WriteString(" (cancelled)")
	}
	return b.String()
}

// BudgetSummary renders a one-line report of budget activity: how the tests
// distribute over the precision ladder, what the ceilings cut short, and what
// was recovered. Returns "" when no budget was configured and nothing fired.
func (s *Stats) BudgetSummary() string {
	bs := s.Budget
	if !bs.show() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rungs: proof=%d qf=%d concretize=%d | degraded=%d (qf=%d conc=%d) proof_timeouts=%d",
		bs.TestsByRung[RungProof], bs.TestsByRung[RungQF], bs.TestsByRung[RungConcretize],
		bs.Degraded(), bs.DegradedQF, bs.DegradedConc, bs.ProofTimeouts)
	if bs.ProverPanics > 0 || bs.ExecFailures > 0 {
		fmt.Fprintf(&b, " | recovered: prover_panics=%d exec_failures=%d", bs.ProverPanics, bs.ExecFailures)
	}
	if bs.TimedOut {
		b.WriteString(" | search hit its deadline (partial results)")
	}
	if bs.Cancelled {
		b.WriteString(" | search cancelled (partial results)")
	}
	return b.String()
}

// ParallelSummary renders a one-line report of the concurrency figures: the
// per-worker task split and how the aggregate solving time compares to the
// wall clock. Returns "" for single-worker searches.
func (s *Stats) ParallelSummary() string {
	if s.Workers <= 1 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "workers=%d wall=%v solve=%v tasks=[", s.Workers,
		s.WallTime.Round(time.Millisecond), s.SolveTime.Round(time.Millisecond))
	for w, n := range s.ProofsPerWorker {
		if w > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	fmt.Fprintf(&b, "] cache=%d/%d", s.ProofCacheHits, s.ProofCacheHits+s.ProofCacheMisses)
	return b.String()
}
