package search

// This file is the witness-constructor path for higher-order inputs: targets
// whose alternate path constraint mentions a function-valued input (a
// callback parameter of main) are not just solved for scalar values — the
// search *constructs* the function. Each generated test carries a concrete
// finite decision table (mini.FuncValue) per callback parameter, built from
// one of two tiers:
//
//   Tier 1 (validity proof, RungProof): ProveCore over the engine's sample
//   store overlaid with this run's callback samples. A proved strategy may
//   probe callback applications whose samples were never observed; unlike
//   environment unknowns, those probes need no intermediate execution — the
//   parent run's function inputs ARE the ground truth, so the coordinator
//   answers them by evaluating the parent's decision tables directly. The
//   child test inherits the parent's function inputs unchanged.
//
//   Tier 2 (satisfiability, RungQF): smt.Solve of the alternate constraint
//   treats each callback application as a free uninterpreted point, and the
//   model's Ackermann assignments become rows of a *new* decision table: the
//   function itself is invented to drive the program down the flipped branch.
//   Tier 2 runs even when tier 1 returned invalid — "invalid under the
//   observed samples" only rules out the parent's function, not every
//   function, and the function is part of the input.
//
// Callback targets never touch the proof cache: their verdicts depend on the
// parent execution's private callback samples, which are not part of the
// versioned shared store, so a cache entry would leak one test's function
// into another's proof. They are discharged synchronously on the coordinator
// in constraint order (the two tiers are pure given the frozen stores, and
// the per-target work is small), so the canonical trajectory is identical at
// every worker count and under every dispatcher.

import (
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hotg/internal/concolic"
	"hotg/internal/fol"
	"hotg/internal/mini"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// probeRounds bounds the tier-1 probe-answering loop. Each round answers at
// least one callback probe from the parent's tables or exits, and a strategy
// only probes applications its own definitions mention, so the bound is never
// reached in practice; it guards against a resolution cycle.
const probeRounds = 64

// solveTargetsCallback discharges the expansion's callback targets: for each,
// try the validity-proof tier, then fall back to function synthesis.
func (s *searcher) solveTargetsCallback(targets []*target, ex *concolic.Execution, hot bool) {
	fallback := ex.Input
	fb := make(map[int]int64, len(fallback))
	for i, v := range s.eng.InputVars {
		fb[v.ID] = fallback[i]
	}
	// The proof store: shared cross-run samples plus this run's callback
	// observations. Callback symbols never enter the shared store (their
	// ground truth changes per test), so the overlay cannot conflict.
	store := sym.NewOverlay(s.eng.Samples)
	if ex.CallbackSamples != nil {
		for _, smp := range ex.CallbackSamples.All() {
			store.Add(smp.Fn, smp.Args, smp.Out)
		}
	}
	for _, t := range targets {
		t0 := time.Now()
		t.worker, t.start = 0, t0
		s.stats.CallbackTargets++
		tier := "proof"
		if !s.callbackProve(t, ex, store, fb, hot, t0) {
			tier = "synth"
			s.callbackSynthesize(t, ex, hot, t0)
		}
		t.dur = time.Since(t0)
		t.done = true
		atomic.AddInt64(&s.solveNanos, int64(t.dur))
		s.stats.ProofsPerWorker[0]++
		if s.tracing() {
			s.taskEvent("callback", 0, t0, t.dur,
				map[string]int64{"k": int64(t.k), "formula_size": int64(len(t.alt.Key()))},
				map[string]string{"tier": tier, "verdict": t.outcome.String(), "status": t.status.String()})
		}
	}
}

// callbackProve is tier 1: a validity proof whose missing callback samples
// are answered from the parent's own function inputs. It reports whether a
// test was enqueued; false routes the target to tier 2.
func (s *searcher) callbackProve(t *target, ex *concolic.Execution, store *sym.SampleStore, fb map[int]int64, hot bool, t0 time.Time) bool {
	prove := func() (st *fol.Strategy, out fol.Outcome) {
		defer func() {
			if rec := recover(); rec != nil {
				st, out, t.panicked = nil, fol.OutcomeUnknown, true
			}
		}()
		return fol.ProveCore(t.alt, store, fol.Options{
			Pool:             s.eng.Pool,
			VarBounds:        s.varBounds,
			NoRefute:         !s.opts.Refute,
			MaxNodes:         s.opts.ProverNodes,
			Obs:              s.obs,
			Ctx:              s.ctx,
			Deadline:         s.proofDeadline(t0),
			NoIncrementalSMT: s.opts.NoIncrementalSMT,
		})
	}
	s.stats.ProverCalls++
	t.strategy, t.outcome = prove()
	if t.panicked {
		s.stats.Budget.ProverPanics++
	}
	switch t.outcome {
	case fol.OutcomeInvalid:
		s.stats.ProverInvalid++
		return false
	case fol.OutcomeTimeout:
		s.stats.Budget.ProofTimeouts++
		s.stats.ProverUnknown++
		return false
	case fol.OutcomeUnknown:
		s.stats.ProverUnknown++
		return false
	}
	s.stats.ProverProved++
	st := fol.FillFallback(t.strategy, t.alt, fb)
	var res *fol.Resolution
	for round := 0; round < probeRounds; round++ {
		res = st.Resolve(store)
		if res.Complete {
			break
		}
		answered := false
		for _, p := range res.Probes {
			if !p.Fn.Input {
				continue
			}
			// The probe asks for a sample of the parent's own function input:
			// its table is the ground truth, no intermediate run needed.
			if idx := s.callbackIndex(p.Fn); idx >= 0 {
				var fv *mini.FuncValue
				if idx < len(ex.Funcs) {
					fv = ex.Funcs[idx]
				}
				store.Add(p.Fn, p.Args, fv.Eval(p.Args))
				answered = true
			}
		}
		if !answered {
			// Only environment-unknown probes remain; completing them needs
			// intermediate executions. Fall back to synthesis rather than
			// spending runs — the function is an input we can construct.
			return false
		}
	}
	if !res.Complete {
		return false
	}
	input := s.inputFrom(res.Values, ex.Input)
	if !s.inBounds(input) {
		return false
	}
	values := map[int]int64{}
	for i, v := range s.eng.InputVars {
		values[v.ID] = input[i]
	}
	if ok, probes := fol.Holds(t.alt, values, store); len(probes) == 0 && !ok {
		return false
	}
	s.enqueueTest(input, ex.Funcs, t.expected, t.k+1, hot, RungProof)
	return true
}

// callbackSynthesize is tier 2: solve the alternate constraint with every
// callback application free, then read the invented function off the model.
// Each callback symbol mentioned in the formula gets a fresh decision table
// whose rows are the model's Ackermann assignments (default 0); unmentioned
// parameters inherit the parent's function unchanged, keeping the rest of the
// replayed path stable.
func (s *searcher) callbackSynthesize(t *target, ex *concolic.Execution, hot bool, t0 time.Time) {
	s.stats.SolverCalls++
	t.status, t.model = smt.Solve(t.alt, smt.Options{
		Pool: s.eng.Pool, VarBounds: s.varBounds, Obs: s.obs,
		Ctx: s.ctx, Deadline: s.proofDeadline(t0),
	})
	if t.status == smt.StatusTimeout {
		s.stats.Budget.ProofTimeouts++
	}
	if t.status != smt.StatusSat {
		return
	}
	s.stats.SolverSat++
	input := s.inputFrom(t.model.Vars, ex.Input)
	if !s.inBounds(input) {
		return
	}
	applies := sym.Applies(t.alt)
	shape := s.eng.FuncShape()
	funcs := make([]*mini.FuncValue, len(shape))
	for i := range shape {
		if i < len(ex.Funcs) {
			funcs[i] = ex.Funcs[i]
		}
	}
	for i, fn := range s.eng.CallbackFns {
		if !mentions(applies, fn) {
			continue
		}
		fv := &mini.FuncValue{Arity: fn.Arity}
		seen := map[string]bool{}
		for _, row := range t.model.FuncRows {
			if row.Fn != fn.Name || len(row.Args) != fn.Arity {
				continue
			}
			// Functional consistency in the model means two applications with
			// equal evaluated arguments carry equal outputs, so keeping the
			// first row of a duplicate tuple loses nothing; the dedup guards
			// Canon against panicking if that invariant ever slipped.
			k := concreteArgsKey(row.Args)
			if seen[k] {
				continue
			}
			seen[k] = true
			fv.Rows = append(fv.Rows, mini.FuncRow{Args: row.Args, Out: row.Out})
		}
		funcs[i] = fv.Canon()
		s.stats.FuncsSynthesized++
	}
	s.enqueueTest(input, funcs, t.expected, t.k+1, hot, RungQF)
}

// callbackIndex maps a callback symbol to its function-parameter index, or -1
// for symbols that are not function-valued inputs of this engine.
func (s *searcher) callbackIndex(fn *sym.Func) int {
	for i, f := range s.eng.CallbackFns {
		if f == fn {
			return i
		}
	}
	return -1
}

// mentions reports whether any application in the list is of fn.
func mentions(applies []*sym.Apply, fn *sym.Func) bool {
	for _, a := range applies {
		if a.Fn == fn {
			return true
		}
	}
	return false
}

// concreteArgsKey renders an evaluated argument tuple for row deduplication.
func concreteArgsKey(args []int64) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = strconv.FormatInt(a, 10)
	}
	return strings.Join(parts, ",")
}
