package search_test

import (
	"fmt"
	"strings"
	"testing"

	"hotg/internal/concolic"
	"hotg/internal/lexapp"
	"hotg/internal/search"
)

// fingerprint renders every deterministic observable of a search outcome —
// the whole trajectory, not just the headline numbers. Two searches with
// equal fingerprints executed the same runs in the same order and drew the
// same conclusions from them.
func fingerprint(st *search.Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "runs=%d tests=%d inter=%d div=%d\n",
		st.Runs, st.TestsGenerated, st.IntermediateTests, st.Divergences)
	fmt.Fprintf(&b, "solver=%d/%d prover=%d proved=%d inv=%d unk=%d\n",
		st.SolverSat, st.SolverCalls, st.ProverCalls, st.ProverProved,
		st.ProverInvalid, st.ProverUnknown)
	fmt.Fprintf(&b, "multi=%d samples=%d incomplete=%v exhausted=%v\n",
		st.MultiStepChains, st.SamplesLearned, st.Incomplete, st.Exhausted)
	fmt.Fprintf(&b, "cache=%d/%d\n", st.ProofCacheHits, st.ProofCacheHits+st.ProofCacheMisses)
	fmt.Fprintf(&b, "cov=%d/%d paths=%d covtrace=%v\n",
		st.BranchSidesCovered(), st.BranchSidesTotal(), st.Paths(), st.CovTrace)
	fmt.Fprintf(&b, "sites=%v\n", st.ErrorSitesFound())
	for _, bug := range st.Bugs {
		fmt.Fprintf(&b, "bug: %v\n", bug)
	}
	return b.String()
}

// runWorkers performs one search of the workload at the given worker count.
func runWorkers(w *lexapp.Workload, mode concolic.Mode, opts search.Options, workers int, summaries bool) *search.Stats {
	prog := w.Build()
	eng := concolic.New(prog, mode)
	if summaries {
		eng.Summaries = concolic.NewSummaryCache()
	}
	if len(opts.Seeds) == 0 {
		opts.Seeds = w.Seeds
	}
	if opts.Bounds == nil {
		opts.Bounds = w.Bounds
	}
	opts.Workers = workers
	return search.Run(eng, opts)
}

// assertSameAcrossWorkers checks that the search trajectory is bit-identical
// at every worker count — the central exactness guarantee of the parallel
// coordinator (batches contain only independent work; results merge in
// enqueue order).
func assertSameAcrossWorkers(t *testing.T, name string, w *lexapp.Workload, mode concolic.Mode, opts search.Options, summaries bool) {
	t.Helper()
	base := fingerprint(runWorkers(w, mode, opts, 1, summaries))
	for _, workers := range []int{2, 8} {
		got := fingerprint(runWorkers(w, mode, opts, workers, summaries))
		if got != base {
			t.Errorf("%s: workers=%d fingerprint differs from workers=1\n--- workers=1:\n%s--- workers=%d:\n%s",
				name, workers, base, workers, got)
		}
	}
}

// TestSearchDeterministicAcrossWorkers is the headline determinism check on
// the E12 lexer case study: the multi-worker search finds the same bugs with
// the same coverage, the same generated tests, and the same per-run coverage
// trace as the sequential one.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	w := lexapp.Lexer()
	opts := search.Options{MaxRuns: 120}
	base := runWorkers(w, concolic.ModeHigherOrder, opts, 1, false)
	if len(base.Bugs) == 0 {
		t.Fatal("sequential lexer search found no bugs; workload regressed")
	}
	if base.ProverCalls == 0 {
		t.Fatal("sequential lexer search made no prover calls")
	}
	fp := fingerprint(base)
	for _, workers := range []int{2, 4, 8} {
		got := fingerprint(runWorkers(w, concolic.ModeHigherOrder, opts, workers, false))
		if got != fp {
			t.Errorf("workers=%d fingerprint differs from workers=1\n--- workers=1:\n%s--- workers=%d:\n%s",
				workers, fp, workers, got)
		}
	}
}

// TestSearchDeterministicWorkloads sweeps the remaining search flavors:
// multi-step continuations, the invalidity prover, summaries, and the
// satisfiability (non-higher-order) path with its own solve cache.
func TestSearchDeterministicWorkloads(t *testing.T) {
	t.Run("foo", func(t *testing.T) {
		assertSameAcrossWorkers(t, "foo", lexapp.Foo(), concolic.ModeHigherOrder,
			search.Options{MaxRuns: 30}, false)
	})
	t.Run("bar-refute", func(t *testing.T) {
		assertSameAcrossWorkers(t, "bar-refute", lexapp.Bar(), concolic.ModeHigherOrder,
			search.Options{MaxRuns: 40, Refute: true}, false)
	})
	t.Run("kstep3", func(t *testing.T) {
		assertSameAcrossWorkers(t, "kstep3", lexapp.KStep(3), concolic.ModeHigherOrder,
			search.Options{MaxRuns: 60, MaxMultiStep: 4}, false)
	})
	t.Run("scanner-summaries", func(t *testing.T) {
		assertSameAcrossWorkers(t, "scanner-summaries", lexapp.Scanner(), concolic.ModeHigherOrder,
			search.Options{MaxRuns: 60}, true)
	})
	t.Run("lexer-dart-sound", func(t *testing.T) {
		assertSameAcrossWorkers(t, "lexer-dart-sound", lexapp.Lexer(), concolic.ModeSound,
			search.Options{MaxRuns: 60}, false)
	})
}

// TestProofCacheHitsOnLexer asserts the cache actually fires on the lexer
// workload — re-derived targets and shared formulas must not re-run the
// prover.
func TestProofCacheHitsOnLexer(t *testing.T) {
	st := runWorkers(lexapp.Lexer(), concolic.ModeHigherOrder, search.Options{MaxRuns: 120}, 1, false)
	if st.ProofCacheMisses == 0 {
		t.Fatal("no proof-cache misses recorded; cache accounting broken")
	}
	if st.ProofCacheHits+st.ProofCacheMisses != st.ProverCalls {
		t.Fatalf("cache accounting mismatch: hits=%d misses=%d prover calls=%d",
			st.ProofCacheHits, st.ProofCacheMisses, st.ProverCalls)
	}
}

// TestWorkersDefault checks the zero value resolves to a positive count and
// is reported in Stats.
func TestWorkersDefault(t *testing.T) {
	st := runWorkers(lexapp.Foo(), concolic.ModeHigherOrder, search.Options{MaxRuns: 5}, 0, false)
	if st.Workers < 1 {
		t.Fatalf("Workers not resolved: %d", st.Workers)
	}
	if len(st.ProofsPerWorker) != st.Workers {
		t.Fatalf("ProofsPerWorker has %d slots for %d workers", len(st.ProofsPerWorker), st.Workers)
	}
}
