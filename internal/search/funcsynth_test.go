package search_test

import (
	"testing"

	"hotg/internal/concolic"
	"hotg/internal/lexapp"
	"hotg/internal/search"
)

// TestCallbackSynthesisFindsBugs is the tentpole property: on every callback
// workload the higher-order searcher constructs function inputs that reach
// the bug, while the DART-style baselines (which concretize callback results)
// never see the predicate branches' true sides and find nothing.
func TestCallbackSynthesisFindsBugs(t *testing.T) {
	for _, wl := range lexapp.CallbackWorkloads() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			p := wl.Build()
			ho := search.Run(concolic.New(p, concolic.ModeHigherOrder),
				search.Options{MaxRuns: 60, Seeds: wl.Seeds, Bounds: wl.Bounds})
			if len(ho.ErrorSitesFound()) == 0 {
				t.Fatalf("higher-order found no bug: %+v", ho.Summary())
			}
			for _, bug := range ho.Bugs {
				if len(bug.Funcs) == 0 {
					t.Fatalf("bug %v carries no function inputs", bug)
				}
			}
			for _, mode := range []concolic.Mode{concolic.ModeUnsound, concolic.ModeSound} {
				base := search.Run(concolic.New(wl.Build(), mode),
					search.Options{MaxRuns: 60, Seeds: wl.Seeds, Bounds: wl.Bounds})
				if len(base.ErrorSitesFound()) != 0 {
					t.Fatalf("%v baseline reached the callback bug: %+v", mode, base.Summary())
				}
			}
		})
	}
}

// TestCallbackBranchSideDomination checks the E16 claim at test scale: the
// higher-order searcher's covered branch-side set strictly contains every
// baseline's on each callback workload.
func TestCallbackBranchSideDomination(t *testing.T) {
	for _, wl := range lexapp.CallbackWorkloads() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			numBranches := wl.Build().NumBranches
			cover := func(mode concolic.Mode) map[[2]int]bool {
				st := search.Run(concolic.New(wl.Build(), mode),
					search.Options{MaxRuns: 60, Seeds: wl.Seeds, Bounds: wl.Bounds})
				out := make(map[[2]int]bool)
				for id := 0; id < numBranches; id++ {
					for side := 0; side < 2; side++ {
						if st.SideCovered(id, side == 1) {
							out[[2]int{id, side}] = true
						}
					}
				}
				return out
			}
			ho := cover(concolic.ModeHigherOrder)
			for _, mode := range []concolic.Mode{concolic.ModeUnsound, concolic.ModeSound} {
				base := cover(mode)
				for s := range base {
					if !ho[s] {
						t.Fatalf("%v covered branch %d side %d, higher-order did not", mode, s[0], s[1])
					}
				}
				if len(ho) <= len(base) {
					t.Fatalf("no strict domination over %v: ho=%d base=%d", mode, len(ho), len(base))
				}
			}
		})
	}
}
