package search

import (
	"fmt"

	"hotg/internal/concolic"
	"hotg/internal/fol"
	"hotg/internal/mini"
	"hotg/internal/smt"
	"hotg/internal/sym"
)

// Options configures a directed search.
type Options struct {
	// MaxRuns bounds the number of program executions (default 100).
	MaxRuns int
	// Seeds are the initial inputs; at least one is required.
	Seeds [][]int64
	// Bounds restricts each flat input's domain, aligned with the program
	// shape (nil entries or a nil slice mean the solver default domain).
	Bounds []smt.Bound
	// MaxMultiStep bounds the intermediate tests per target (default 3;
	// the paper bounds k by the number of program inputs).
	MaxMultiStep int
	// StopAtFirstBug ends the search as soon as any error site is reached.
	StopAtFirstBug bool
	// Refute enables the invalidity prover, which distinguishes provably
	// invalid targets from unknown ones. The distinction is reporting-only
	// (neither produces a test), so it is off by default for speed.
	Refute bool
	// ProverNodes caps the validity-proof search per target (default 4000).
	ProverNodes int
}

// item is one unit of search work: an input to execute, with the trace
// prediction used for divergence checking and the generational bound.
type item struct {
	input    []int64
	expected []mini.BranchEvent
	bound    int
	pending  *pendingTarget
	// noExpand marks sample-collection (intermediate) runs, which are not
	// expanded into new targets.
	noExpand bool
}

// pendingTarget is a multi-step continuation: a proved strategy whose
// resolution is blocked on unobserved samples.
type pendingTarget struct {
	strategy *fol.Strategy
	alt      sym.Expr
	expected []mini.BranchEvent
	fallback []int64
	bound    int
	retries  int
	hot      bool
}

// Run performs the directed search and returns its statistics.
func Run(eng *concolic.Engine, opts Options) *Stats {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 100
	}
	if opts.MaxMultiStep <= 0 {
		opts.MaxMultiStep = 3
	}
	if opts.ProverNodes <= 0 {
		opts.ProverNodes = 4000
	}
	if len(opts.Seeds) == 0 {
		panic("search: at least one seed input is required")
	}
	s := &searcher{eng: eng, opts: opts, stats: newStats(eng.Mode.String(), eng.Prog.NumBranches)}
	s.varBounds = make(map[int]smt.Bound)
	for i, v := range eng.InputVars {
		if i < len(opts.Bounds) {
			b := opts.Bounds[i]
			if b.HasLo || b.HasHi {
				s.varBounds[v.ID] = b
			}
		}
	}
	for _, seed := range opts.Seeds {
		s.hot = append(s.hot, item{input: seed})
	}
	s.run()
	s.stats.SamplesLearned = eng.Samples.Len()
	return s.stats
}

type searcher struct {
	eng   *concolic.Engine
	opts  Options
	stats *Stats
	// Two-tier work queue (SAGE-style generational scoring): children of
	// runs that covered new branch sides are processed before the rest, so
	// productive chains — extend a chunk, invert its hash, classify the next
	// chunk — stay hot instead of drowning in breadth-first noise.
	hot, cold []item
	varBounds map[int]smt.Bound
	tried     map[string]bool
	targeted  map[string]bool
	// curHot marks whether children of the run being expanded go to the
	// hot queue.
	curHot bool
}

func inputKey(in []int64) string { return fmt.Sprint(in) }

func (s *searcher) pop() (item, bool) {
	if len(s.hot) > 0 {
		it := s.hot[0]
		s.hot = s.hot[1:]
		return it, true
	}
	if len(s.cold) > 0 {
		it := s.cold[0]
		s.cold = s.cold[1:]
		return it, true
	}
	return item{}, false
}

func (s *searcher) run() {
	s.tried = map[string]bool{}
	s.targeted = map[string]bool{}
	for s.stats.Runs < s.opts.MaxRuns {
		it, ok := s.pop()
		if !ok {
			s.stats.Exhausted = true
			return
		}

		if it.pending != nil {
			if !s.resumePending(it.pending) {
				continue
			}
			// resumePending enqueued follow-up work.
			continue
		}

		key := inputKey(it.input)
		if s.tried[key] {
			continue
		}
		s.tried[key] = true

		ex := s.eng.Run(it.input)
		gained := s.stats.recordRun(ex.Result, it.input)
		if ex.Incomplete {
			s.stats.Incomplete = true
		}
		if it.expected != nil && diverged(ex.Result.Branches, it.expected) {
			s.stats.Divergences++
		}
		if s.opts.StopAtFirstBug && len(s.stats.ErrorSitesFound()) > 0 {
			return
		}
		if !it.noExpand {
			s.curHot = gained > 0
			s.expand(ex, it.bound)
		}
	}
}

// diverged reports whether the actual trace fails to realize the prediction.
func diverged(actual, expected []mini.BranchEvent) bool {
	if len(actual) < len(expected) {
		return true
	}
	for i := range expected {
		if actual[i] != expected[i] {
			return true
		}
	}
	return false
}

// expand generates new work items by negating each negatable constraint of
// the execution from the generational bound onward. Each target is sliced to
// its related constraints and deduplicated before any solver work.
func (s *searcher) expand(ex *concolic.Execution, bound int) {
	prefix := make([]sym.Expr, 0, len(ex.PC))
	for i := 0; i < bound && i < len(ex.PC); i++ {
		prefix = append(prefix, ex.PC[i].Expr)
	}
	for k := bound; k < len(ex.PC); k++ {
		c := ex.PC[k]
		if c.IsConcretization {
			prefix = append(prefix, c.Expr)
			continue
		}
		negated := sym.NotExpr(c.Expr)
		expected := ex.ExpectedTrace(k)
		key := targetKey(expected, negated)
		if !s.targeted[key] {
			s.targeted[key] = true
			alt := sliceAlt(prefix, negated)
			if s.eng.Mode == concolic.ModeHigherOrder {
				s.targetHigherOrder(alt, expected, ex.Input, k)
			} else {
				s.targetSat(alt, expected, ex.Input, k)
			}
		}
		prefix = append(prefix, c.Expr)
	}
}

// targetSat is classic test generation: a satisfiability check of ALT(pc).
func (s *searcher) targetSat(alt sym.Expr, expected []mini.BranchEvent, fallback []int64, k int) {
	s.stats.SolverCalls++
	st, model := smt.Solve(alt, smt.Options{Pool: s.eng.Pool, VarBounds: s.varBounds})
	if st != smt.StatusSat {
		return
	}
	s.stats.SolverSat++
	input := make([]int64, len(fallback))
	copy(input, fallback)
	for i, v := range s.eng.InputVars {
		if val, ok := model.Vars[v.ID]; ok {
			input[i] = val
		}
	}
	s.enqueueTest(input, expected, k+1, s.curHot)
}

// targetHigherOrder derives a test from a validity proof of POST(ALT(pc)).
func (s *searcher) targetHigherOrder(alt sym.Expr, expected []mini.BranchEvent, fallback []int64, k int) {
	s.stats.ProverCalls++
	fb := make(map[int]int64, len(fallback))
	for i, v := range s.eng.InputVars {
		fb[v.ID] = fallback[i]
	}
	strategy, outcome := fol.Prove(alt, s.eng.Samples, fol.Options{
		Pool:      s.eng.Pool,
		VarBounds: s.varBounds,
		Fallback:  fb,
		NoRefute:  !s.opts.Refute,
		MaxNodes:  s.opts.ProverNodes,
	})
	switch outcome {
	case fol.OutcomeInvalid:
		s.stats.ProverInvalid++
		return
	case fol.OutcomeUnknown:
		s.stats.ProverUnknown++
		return
	}
	s.stats.ProverProved++
	pt := &pendingTarget{
		strategy: strategy,
		alt:      alt,
		expected: expected,
		fallback: fallback,
		bound:    k + 1,
		retries:  s.opts.MaxMultiStep,
		hot:      s.curHot,
	}
	if !s.resolveAndEnqueue(pt, true) {
		return
	}
}

// resolveAndEnqueue tries to turn a proved strategy into a concrete test; on
// missing samples it schedules an intermediate test plus a continuation.
// first marks the initial attempt (for multi-step accounting).
func (s *searcher) resolveAndEnqueue(pt *pendingTarget, first bool) bool {
	res := pt.strategy.Resolve(s.eng.Samples)
	if res.Complete {
		input := s.inputFrom(res.Values, pt.fallback)
		if !s.inBounds(input) {
			return false
		}
		// Final sanity check against the samples: the strategy is a proof,
		// so this must hold; it guards the implementation.
		values := map[int]int64{}
		for i, v := range s.eng.InputVars {
			values[v.ID] = input[i]
		}
		if ok, probes := fol.Holds(pt.alt, values, s.eng.Samples); len(probes) == 0 && !ok {
			return false
		}
		s.enqueueTest(input, pt.expected, pt.bound, pt.hot)
		return true
	}
	if pt.retries <= 0 {
		return false
	}
	// Multi-step test generation (Example 7): run an intermediate test with
	// the resolved values filled in, hoping the program samples the probes.
	if first {
		s.stats.MultiStepChains++
	}
	pt.retries--
	intermediate := s.inputFrom(res.Values, pt.fallback)
	if !s.inBounds(intermediate) {
		return false
	}
	s.stats.IntermediateTests++
	// Intermediate sample-collection runs and their continuations always go
	// hot: they complete a proof already in hand.
	s.hot = append(s.hot, item{input: intermediate, noExpand: true})
	s.hot = append(s.hot, item{pending: pt})
	return true
}

// resumePending re-resolves a blocked strategy after intermediate tests.
func (s *searcher) resumePending(pt *pendingTarget) bool {
	return s.resolveAndEnqueue(pt, false)
}

func (s *searcher) inputFrom(values map[int]int64, fallback []int64) []int64 {
	input := make([]int64, len(fallback))
	copy(input, fallback)
	for i, v := range s.eng.InputVars {
		if val, ok := values[v.ID]; ok {
			input[i] = val
		}
	}
	return input
}

func (s *searcher) inBounds(input []int64) bool {
	for i, v := range s.eng.InputVars {
		b, ok := s.varBounds[v.ID]
		if !ok {
			continue
		}
		if b.HasLo && input[i] < b.Lo {
			return false
		}
		if b.HasHi && input[i] > b.Hi {
			return false
		}
	}
	return true
}

func (s *searcher) enqueueTest(input []int64, expected []mini.BranchEvent, bound int, hot bool) {
	if s.tried[inputKey(input)] {
		return
	}
	s.stats.TestsGenerated++
	it := item{input: input, expected: expected, bound: bound}
	if hot {
		s.hot = append(s.hot, it)
	} else {
		s.cold = append(s.cold, it)
	}
}
